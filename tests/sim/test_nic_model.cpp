#include "sim/nic_model.hpp"

#include <gtest/gtest.h>

namespace mado::sim {
namespace {

NicModelParams base_params() {
  NicModelParams p;
  p.pio_overhead = 300;
  p.dma_overhead = 1200;
  p.per_segment = 80;
  p.pio_threshold = 128;
  p.pio_bytes_per_us = 350.0;
  p.link_bytes_per_us = 2000.0;
  p.gap = 100;
  p.latency = 2000;
  p.copy_bytes_per_us = 4000.0;
  return p;
}

TEST(NicModel, PioBelowThreshold) {
  NicModel m(base_params());
  EXPECT_TRUE(m.uses_pio(1));
  EXPECT_TRUE(m.uses_pio(128));
  EXPECT_FALSE(m.uses_pio(129));
}

TEST(NicModel, InjectionPioIncludesByteCost) {
  NicModel m(base_params());
  // 35 bytes at 350 B/us = 100 ns, plus 300 ns overhead.
  EXPECT_EQ(m.injection_time(35, 1), 400u);
}

TEST(NicModel, InjectionDmaIsFlatInBytes) {
  NicModel m(base_params());
  EXPECT_EQ(m.injection_time(1000, 1), 1200u);
  EXPECT_EQ(m.injection_time(100000, 1), 1200u);
}

TEST(NicModel, PerSegmentCostCharged) {
  NicModel m(base_params());
  EXPECT_EQ(m.injection_time(1000, 4) - m.injection_time(1000, 1), 3u * 80u);
  // Zero segments treated as one.
  EXPECT_EQ(m.injection_time(1000, 0), m.injection_time(1000, 1));
}

TEST(NicModel, WireTimeLinearInBytes) {
  NicModel m(base_params());
  EXPECT_EQ(m.wire_time(2000), 1000u);   // 2000 B at 2000 B/us
  EXPECT_EQ(m.wire_time(4000), 2000u);
  EXPECT_EQ(m.wire_time(0), 0u);
}

TEST(NicModel, BusyIsMaxOfInjectAndWirePlusGap) {
  NicModel m(base_params());
  // Large DMA: wire dominates. 200000 B / 2000 B/us = 100 us.
  EXPECT_EQ(m.busy_time(200000, 1), 100000u + 100u);
  // Tiny PIO: injection dominates (400 ns vs 17 ns wire for 35 B).
  EXPECT_EQ(m.busy_time(35, 1), 400u + 100u);
}

TEST(NicModel, CopyTime) {
  NicModel m(base_params());
  EXPECT_EQ(m.copy_time(4000), 1000u);
}

TEST(NicModel, AggregationWinsForSmallPackets) {
  // The core premise of the paper's headline claim, expressed on the model:
  // sending k small fragments separately costs k full transactions, while
  // one aggregated packet costs a single (slightly larger) transaction.
  NicModel m(base_params());
  const std::size_t frag = 64;
  const std::size_t k = 8;
  const Nanos separate = static_cast<Nanos>(k) * m.busy_time(frag, 1);
  const Nanos aggregated = m.busy_time(frag * k, k);
  EXPECT_LT(aggregated, separate / 2);
}

TEST(NicModel, GatherBeatsFlattenForModestSizes) {
  NicModel m(base_params());
  const std::size_t bytes = 4096;
  const Nanos gather = m.busy_time(bytes, 8);
  const Nanos flatten = m.copy_time(bytes) + m.busy_time(bytes, 1);
  EXPECT_LT(gather, flatten);
}

}  // namespace
}  // namespace mado::sim
