#include "sim/fabric.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mado::sim {
namespace {

TEST(Fabric, ClockStartsAtZero) {
  Fabric f;
  EXPECT_EQ(f.now(), 0u);
  EXPECT_FALSE(f.has_events());
}

TEST(Fabric, StepAdvancesClockToEventTime) {
  Fabric f;
  Nanos seen = 0;
  f.post_at(500, [&] { seen = f.now(); });
  EXPECT_TRUE(f.step());
  EXPECT_EQ(seen, 500u);
  EXPECT_EQ(f.now(), 500u);
  EXPECT_FALSE(f.step());
}

TEST(Fabric, PostInIsRelative) {
  Fabric f;
  f.post_at(100, [] {});
  f.step();
  Nanos seen = 0;
  f.post_in(50, [&] { seen = f.now(); });
  f.step();
  EXPECT_EQ(seen, 150u);
}

TEST(Fabric, PastPostsClampToNow) {
  Fabric f;
  f.post_at(100, [] {});
  f.step();
  Nanos seen = 0;
  f.post_at(10, [&] { seen = f.now(); });  // in the past
  f.step();
  EXPECT_EQ(seen, 100u);  // clamped, time never goes backwards
}

TEST(Fabric, RunUntilIdleCountsEvents) {
  Fabric f;
  int runs = 0;
  for (int i = 0; i < 5; ++i)
    f.post_at(static_cast<Nanos>(i), [&] { ++runs; });
  EXPECT_EQ(f.run_until_idle(), 5u);
  EXPECT_EQ(runs, 5);
}

TEST(Fabric, RunUntilIdleHonorsCap) {
  Fabric f;
  // Self-perpetuating event chain.
  std::function<void()> tick = [&] { f.post_in(1, tick); };
  f.post_at(0, tick);
  EXPECT_EQ(f.run_until_idle(100), 100u);
  EXPECT_TRUE(f.has_events());
}

TEST(Fabric, RunUntilStopsAtDeadline) {
  Fabric f;
  std::vector<Nanos> fired;
  f.post_at(10, [&] { fired.push_back(10); });
  f.post_at(20, [&] { fired.push_back(20); });
  f.post_at(30, [&] { fired.push_back(30); });
  f.run_until(20);
  EXPECT_EQ(fired, (std::vector<Nanos>{10, 20}));
  EXPECT_EQ(f.now(), 20u);
  f.run_until_idle();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Fabric, RunWhilePendingStopsOnPredicate) {
  Fabric f;
  int count = 0;
  for (int i = 0; i < 10; ++i)
    f.post_at(static_cast<Nanos>(i), [&] { ++count; });
  EXPECT_TRUE(f.run_while_pending([&] { return count >= 3; }));
  EXPECT_EQ(count, 3);
}

TEST(Fabric, RunWhilePendingReturnsFalseWhenDrained) {
  Fabric f;
  f.post_at(1, [] {});
  EXPECT_FALSE(f.run_while_pending([] { return false; }));
}

}  // namespace
}  // namespace mado::sim
