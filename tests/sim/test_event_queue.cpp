#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mado::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.post_at(30, [&] { order.push_back(3); });
  q.post_at(10, [&] { order.push_back(1); });
  q.post_at(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    auto ev = q.pop();
    ev.action();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableForEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.post_at(5, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReflectsEarliest) {
  EventQueue q;
  q.post_at(100, [] {});
  q.post_at(50, [] {});
  EXPECT_EQ(q.next_time(), 50u);
  q.pop();
  EXPECT_EQ(q.next_time(), 100u);
}

TEST(EventQueue, ReentrantPostDuringDrain) {
  EventQueue q;
  std::vector<int> order;
  q.post_at(1, [&] {
    order.push_back(1);
    q.post_at(2, [&] { order.push_back(2); });
  });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace mado::sim
