// Engine over the real UDP datagram driver: lossy wire, go-back-N recovery,
// striping across UDP rails, and failover when a rail dies mid-transfer.
// Everything here runs over genuine 127.0.0.1 datagrams — kernel socket
// buffers, epoll wakeups, real loss injection — with the engine's
// reliability layer (forced on by UdpWorld) doing the recovery the driver
// honestly refuses to promise.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/engine.hpp"
#include "core/world.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

class UdpEngineTest : public ::testing::Test {
 protected:
  void build(EngineConfig cfg = {}, std::size_t rails = 1,
             const drv::UdpConfig& ucfg = {}) {
    world_ = std::make_unique<UdpWorld>(cfg, rails, ucfg);
    a_ = world_->node(0).open_channel(1, 7);
    b_ = world_->node(1).open_channel(0, 7);
  }

  std::unique_ptr<UdpWorld> world_;
  Channel a_, b_;
};

TEST_F(UdpEngineTest, SmallMessageRoundTrip) {
  build();
  send_bytes(a_, pattern(100));
  EXPECT_EQ(recv_bytes(b_, 100), pattern(100));
}

TEST_F(UdpEngineTest, ManyMessagesInOrder) {
  build();
  constexpr int kN = 100;
  for (int i = 0; i < kN; ++i)
    send_bytes(a_, pattern(64, static_cast<std::uint32_t>(i)));
  for (int i = 0; i < kN; ++i)
    EXPECT_EQ(recv_bytes(b_, 64), pattern(64, static_cast<std::uint32_t>(i)));
}

TEST_F(UdpEngineTest, RendezvousBulkOverRealDatagrams) {
  build();
  const Bytes data = pattern(1 << 20);
  SendHandle h = send_bytes(a_, data, SendMode::Later);
  EXPECT_EQ(recv_bytes(b_, data.size()), data);
  EXPECT_TRUE(world_->node(0).wait_send(h));
}

TEST_F(UdpEngineTest, LossyWireRecoveredByReliability) {
  // 2% of DATA datagrams vanish in each direction. The driver delivers
  // what survives (in order, with gap skips); the engine's go-back-N
  // layer retransmits until every message lands byte-exact.
  build();
  world_->endpoint(0).set_rx_loss(0.02, 1);
  world_->endpoint(1).set_rx_loss(0.02, 2);
  constexpr int kN = 200;
  for (int i = 0; i < kN; ++i)
    send_bytes(a_, pattern(256, static_cast<std::uint32_t>(i)));
  for (int i = 0; i < kN; ++i)
    EXPECT_EQ(recv_bytes(b_, 256), pattern(256, static_cast<std::uint32_t>(i)))
        << i;
  EXPECT_TRUE(world_->node(0).flush());
  // The wire really did lose datagrams — this is not a clean-link pass.
  EXPECT_GT(world_->endpoint(1).counters().rx_loss_injected.load(), 0u);
}

TEST_F(UdpEngineTest, LossyBulkTransferCompletes) {
  build();
  world_->endpoint(1).set_rx_loss(0.01, 7);
  const Bytes data = pattern(512 * 1024, 9);
  send_bytes(a_, data, SendMode::Later);
  EXPECT_EQ(recv_bytes(b_, data.size()), data);
  EXPECT_TRUE(world_->node(0).flush());
}

TEST_F(UdpEngineTest, BidirectionalLossyTraffic) {
  build();
  world_->endpoint(0).set_rx_loss(0.02, 3);
  world_->endpoint(1).set_rx_loss(0.02, 4);
  constexpr int kN = 50;
  for (int i = 0; i < kN; ++i) {
    send_bytes(a_, pattern(128, static_cast<std::uint32_t>(i)));
    send_bytes(b_, pattern(128, 1000u + static_cast<std::uint32_t>(i)));
  }
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(recv_bytes(b_, 128), pattern(128, static_cast<std::uint32_t>(i)));
    EXPECT_EQ(recv_bytes(a_, 128),
              pattern(128, 1000u + static_cast<std::uint32_t>(i)));
  }
}

TEST_F(UdpEngineTest, StripeAcrossTwoUdpRails) {
  EngineConfig cfg;
  cfg.multirail = MultirailPolicy::DynamicSplit;
  cfg.rdv_chunk = 64 * 1024;
  build(cfg, /*rails=*/2);
  EXPECT_EQ(world_->node(0).rail_count(1), 2u);
  const Bytes data = pattern(2 << 20);
  send_bytes(a_, data, SendMode::Later);
  EXPECT_EQ(recv_bytes(b_, data.size()), data);
  // Bulk chunks reference `data` zero-copy: quiesce the sender before the
  // buffer dies (a straggling RTO may still retransmit the last chunks).
  EXPECT_TRUE(world_->node(0).flush());
  // Both rails actually carried datagrams.
  EXPECT_GT(world_->endpoint(0, 0).counters().datagrams_tx.load(), 0u);
  EXPECT_GT(world_->endpoint(0, 1).counters().datagrams_tx.load(), 0u);
}

TEST_F(UdpEngineTest, FailoverDrainsToSurvivingRail) {
  // Kill one of two UDP rails mid-bulk-transfer: the reliability layer
  // must replay the dead rail's in-flight chunks on the survivor and the
  // message must still arrive byte-exact, exactly once.
  EngineConfig cfg;
  cfg.multirail = MultirailPolicy::DynamicSplit;
  cfg.rdv_chunk = 64 * 1024;
  build(cfg, /*rails=*/2);
  const Bytes data = pattern(2 << 20, 5);
  send_bytes(a_, data, SendMode::Later);
  // Let the transfer get going, then sever rail 0 (both directions — a
  // dead process takes its whole socket with it).
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  world_->endpoint(0, 0).inject_failure();
  world_->endpoint(1, 0).inject_failure();
  EXPECT_EQ(recv_bytes(b_, data.size()), data);
  EXPECT_TRUE(world_->node(0).flush());
  EXPECT_EQ(world_->node(1).stats().counter("rx.msgs_completed"), 1u);
}

}  // namespace
}  // namespace mado::core
