// Failure injection: a "raw peer" holds one side of a simulated link and
// speaks the wire protocol by hand, injecting malformed and hostile
// packets. The engine must count + drop them (rx.malformed) and keep
// serving well-formed traffic. Also covers socket-driver teardown.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/engine.hpp"
#include "core/packet.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "drivers/sim_driver.hpp"
#include "drivers/socket_driver.hpp"
#include "tests/core/engine_test_util.hpp"
#include "util/crc32.hpp"

namespace mado::core {
namespace {

using testing::pattern;

/// Records everything the engine sends us; lets the test transmit raw bytes.
struct RawPeer final : drv::EndpointHandler {
  std::unique_ptr<drv::SimEndpoint> ep;
  std::vector<Bytes> packets;  // eager-track arrivals

  void on_send_complete(drv::TrackId, std::uint64_t) override {}
  void on_packet(drv::TrackId, Bytes payload) override {
    packets.push_back(std::move(payload));
  }

  void transmit(const Bytes& raw, drv::TrackId track = drv::kTrackEager) {
    GatherList gl;
    gl.add(raw.data(), raw.size());
    ep->send(track, gl, 0);
  }
};

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    timers_ = std::make_unique<SimTimerHost>(fabric_);
    rebuild(EngineConfig{});
  }

  void rebuild(const EngineConfig& cfg) {
    engine_ = std::make_unique<Engine>(0, cfg, *timers_);
    engine_->set_external_progress([this] { return fabric_.step(); });
    auto pair = drv::SimEndpoint::make_pair(fabric_, drv::test_profile());
    engine_->add_rail(/*peer=*/1, std::move(pair.a));
    raw_.ep = std::move(pair.b);
    raw_.ep->set_handler(&raw_);
  }

  std::uint64_t malformed() {
    return engine_->stats().counter("rx.malformed");
  }

  /// A well-formed single-fragment data packet for (channel, seq).
  Bytes good_packet(ChannelId ch, MsgSeq seq, const Bytes& payload) {
    PacketHeader ph;
    ph.nfrags = 1;
    ph.src_node = 1;
    FragHeader fh;
    fh.channel = ch;
    fh.msg_seq = seq;
    fh.frag_idx = 0;
    fh.nfrags_total = 1;
    fh.flags = kFlagLastFrag;
    fh.len = static_cast<std::uint32_t>(payload.size());
    Bytes pkt;
    encode_header_block(pkt, ph, {fh});
    pkt.insert(pkt.end(), payload.begin(), payload.end());
    return pkt;
  }

  sim::Fabric fabric_;
  std::unique_ptr<SimTimerHost> timers_;
  std::unique_ptr<Engine> engine_;
  RawPeer raw_;
};

TEST_F(FailureInjectionTest, GarbageBytesDropped) {
  Bytes junk(64);
  for (std::size_t i = 0; i < junk.size(); ++i)
    junk[i] = static_cast<Byte>(i * 37);
  raw_.transmit(junk);
  fabric_.run_until_idle();
  EXPECT_EQ(malformed(), 1u);
}

TEST_F(FailureInjectionTest, RuntPacketDropped) {
  raw_.transmit(Bytes{0x01, 0x02});
  fabric_.run_until_idle();
  EXPECT_EQ(malformed(), 1u);
}

TEST_F(FailureInjectionTest, TruncatedPacketDropped) {
  Bytes pkt = good_packet(7, 0, pattern(32));
  pkt.resize(pkt.size() - 10);
  raw_.transmit(pkt);
  fabric_.run_until_idle();
  EXPECT_EQ(malformed(), 1u);
}

TEST_F(FailureInjectionTest, CorruptedCrcDropped) {
  Bytes pkt = good_packet(7, 0, pattern(32));
  pkt[6] ^= 0x10;  // inside the header block
  raw_.transmit(pkt);
  fabric_.run_until_idle();
  EXPECT_EQ(malformed(), 1u);
}

TEST_F(FailureInjectionTest, TrailingGarbageDropped) {
  Bytes pkt = good_packet(7, 0, pattern(32));
  pkt.push_back(0xff);
  raw_.transmit(pkt);
  fabric_.run_until_idle();
  EXPECT_EQ(malformed(), 1u);
}

TEST_F(FailureInjectionTest, GoodTrafficSurvivesAfterGarbage) {
  Channel ch = engine_->open_channel(1, 7);
  raw_.transmit(Bytes(40, Byte{0xee}));
  const Bytes payload = pattern(32);
  raw_.transmit(good_packet(7, 0, payload));
  fabric_.run_until_idle();
  EXPECT_EQ(malformed(), 1u);
  Bytes out(32);
  IncomingMessage im = ch.begin_recv();
  im.unpack(out.data(), out.size(), RecvMode::Express);
  im.finish();
  EXPECT_EQ(out, payload);
}

TEST_F(FailureInjectionTest, CtsForUnknownRendezvousDropped) {
  PacketHeader ph;
  ph.nfrags = 1;
  FragHeader fh;
  fh.channel = 7;
  fh.nfrags_total = 1;
  fh.flags = kFlagLastFrag;
  fh.kind = FragKind::RdvCts;
  Bytes body;
  encode_cts(body, CtsBody{0xdead});
  fh.len = static_cast<std::uint32_t>(body.size());
  Bytes pkt;
  encode_header_block(pkt, ph, {fh});
  pkt.insert(pkt.end(), body.begin(), body.end());
  raw_.transmit(pkt);
  fabric_.run_until_idle();
  EXPECT_EQ(malformed(), 1u);
}

TEST_F(FailureInjectionTest, BulkChunkForUnknownTokenDropped) {
  Bytes pkt;
  BulkHeader bh;
  bh.src_node = 1;
  bh.token = 0xbadf00d;
  bh.offset = 0;
  bh.len = 8;
  encode_bulk_header(pkt, bh);
  Bytes data(8, Byte{1});
  pkt.insert(pkt.end(), data.begin(), data.end());
  raw_.transmit(pkt, drv::kTrackBulk);
  fabric_.run_until_idle();
  EXPECT_EQ(malformed(), 1u);
}

TEST_F(FailureInjectionTest, UnknownRmaAckDropped) {
  PacketHeader ph;
  ph.nfrags = 1;
  FragHeader fh;
  fh.channel = kRmaChannel;
  fh.nfrags_total = 1;
  fh.flags = kFlagLastFrag;
  fh.kind = FragKind::RmaAck;
  Bytes body;
  encode_rma_ack(body, RmaAckBody{12345});
  fh.len = static_cast<std::uint32_t>(body.size());
  Bytes pkt;
  encode_header_block(pkt, ph, {fh});
  pkt.insert(pkt.end(), body.begin(), body.end());
  raw_.transmit(pkt);
  fabric_.run_until_idle();
  EXPECT_EQ(malformed(), 1u);
}

TEST_F(FailureInjectionTest, DuplicateFragmentDropsSecondCopy) {
  Channel ch = engine_->open_channel(1, 7);
  const Bytes payload = pattern(32);
  raw_.transmit(good_packet(7, 0, payload));
  raw_.transmit(good_packet(7, 0, payload));  // replay
  fabric_.run_until_idle();
  EXPECT_EQ(malformed(), 1u);
  Bytes out(32);
  IncomingMessage im = ch.begin_recv();
  im.unpack(out.data(), out.size(), RecvMode::Express);
  im.finish();
  EXPECT_EQ(out, payload);
}

TEST_F(FailureInjectionTest, EnginePacketsParseCleanly) {
  // Compatibility in the other direction: what the engine emits must be
  // decodable with the public packet API.
  Channel ch = engine_->open_channel(1, 7);
  Message m;
  const Bytes payload = pattern(48);
  m.pack(payload.data(), payload.size(), SendMode::Safe);
  ch.post(std::move(m));
  fabric_.run_until_idle();
  ASSERT_EQ(raw_.packets.size(), 1u);
  const DecodedPacket d = parse_packet(ByteSpan(raw_.packets[0]), true);
  ASSERT_EQ(d.frags.size(), 1u);
  EXPECT_EQ(d.frags[0].channel, 7u);
  EXPECT_EQ(Bytes(d.payloads[0].begin(), d.payloads[0].end()), payload);
}

TEST_F(FailureInjectionTest, ZeroFragmentPacketIsHarmless) {
  PacketHeader ph;
  ph.nfrags = 0;
  Bytes pkt;
  encode_header_block(pkt, ph, {});
  raw_.transmit(pkt);
  fabric_.run_until_idle();
  EXPECT_EQ(malformed(), 0u);
  EXPECT_EQ(engine_->stats().counter("rx.packets"), 1u);
}

// Satellite (ISSUE 2): a corrupted eager payload under the reliability
// layer is charged to rel.payload_crc_drops — NOT rx.malformed — and the
// sequence number is not consumed, so a clean retransmit of the same seq
// still delivers.
TEST_F(FailureInjectionTest, CorruptedEagerPayloadCountsPayloadCrcDrop) {
  EngineConfig cfg;
  cfg.reliability = true;
  cfg.payload_crc = true;
  rebuild(cfg);
  Channel ch = engine_->open_channel(1, 7);

  const Bytes payload = pattern(64);
  PacketHeader ph;
  ph.nfrags = 1;
  ph.src_node = 1;
  ph.flags = kPhFlagRelSeq | kPhFlagPayloadCrc;
  ph.pkt_seq = 0;
  ph.payload_crc = Crc32::of(payload.data(), payload.size());
  FragHeader fh;
  fh.channel = 7;
  fh.msg_seq = 0;
  fh.frag_idx = 0;
  fh.nfrags_total = 1;
  fh.flags = kFlagLastFrag;
  fh.len = static_cast<std::uint32_t>(payload.size());
  Bytes pkt;
  encode_header_block(pkt, ph, {fh});
  pkt.insert(pkt.end(), payload.begin(), payload.end());

  Bytes corrupted = pkt;
  corrupted[corrupted.size() - 5] ^= 0x40;  // flip a payload bit
  raw_.transmit(corrupted);
  fabric_.run_until_idle();
  EXPECT_EQ(engine_->stats().counter("rel.payload_crc_drops"), 1u);
  EXPECT_EQ(malformed(), 0u);

  // The "retransmit" (same seq, intact payload) is accepted and delivered.
  raw_.transmit(pkt);
  fabric_.run_until_idle();
  Bytes out(payload.size());
  IncomingMessage im = ch.begin_recv();
  im.unpack(out.data(), out.size(), RecvMode::Express);
  im.finish();
  EXPECT_EQ(out, payload);
  EXPECT_EQ(engine_->stats().counter("rel.payload_crc_drops"), 1u);
}

// Bulk-track variant: a flipped bit in a rendezvous chunk is caught by the
// chunk payload CRC and charged to the same counter.
TEST_F(FailureInjectionTest, CorruptedBulkPayloadCountsPayloadCrcDrop) {
  EngineConfig cfg;
  cfg.reliability = true;
  cfg.payload_crc = true;
  rebuild(cfg);

  Bytes data(256, Byte{0x5a});
  BulkHeader bh;
  bh.src_node = 1;
  bh.token = 42;
  bh.offset = 0;
  bh.len = static_cast<std::uint32_t>(data.size());
  bh.flags = kPhFlagRelSeq | kPhFlagPayloadCrc;
  bh.pkt_seq = 0;
  bh.payload_crc = Crc32::of(data.data(), data.size());
  Bytes pkt;
  encode_bulk_header(pkt, bh);
  pkt.insert(pkt.end(), data.begin(), data.end());
  pkt.back() = static_cast<Byte>(pkt.back() ^ 0x01);
  raw_.transmit(pkt, drv::kTrackBulk);
  fabric_.run_until_idle();
  EXPECT_EQ(engine_->stats().counter("rel.payload_crc_drops"), 1u);
  EXPECT_EQ(malformed(), 0u);
}

TEST(SocketFailure, PeerDeathMidTrafficIsContained) {
  auto pair = drv::SocketEndpoint::make_pair(drv::mx_myrinet_profile());
  RealTimerHost timers_a;
  Engine a(0, EngineConfig{}, timers_a);
  drv::SocketEndpoint* raw_a = pair.a.get();
  a.add_rail(1, std::move(pair.a));
  a.start_progress_thread();
  Channel ch = a.open_channel(1, 7);

  // Peer vanishes without a word.
  pair.b->close();

  Message m;
  const Bytes payload(1 << 20, Byte{1});
  m.pack(payload.data(), payload.size(), SendMode::Later);
  SendHandle h = ch.post(std::move(m));  // rendezvous: CTS will never come
  EXPECT_FALSE(a.wait_send(h, /*timeout=*/5 * kNanosPerSec));
  // The break surfaced as a rail failure, not just a timeout: the send is
  // marked failed and the rail is Down in the snapshot.
  EXPECT_TRUE(a.send_failed(h));
  EXPECT_FALSE(raw_a->link_up());
  Engine::Snapshot snap = a.snapshot();
  ASSERT_EQ(snap.peers.size(), 1u);
  EXPECT_EQ(snap.peers[0].rails[0].state, RailState::Down);
  a.stop_progress_thread();
}

/// Counts driver callbacks; remembers how many packets had been delivered
/// when on_link_down fired.
struct CountingHandler final : drv::EndpointHandler {
  std::vector<Bytes> packets;
  int link_downs = 0;
  std::size_t packets_at_down = 0;
  void on_send_complete(drv::TrackId, std::uint64_t) override {}
  void on_packet(drv::TrackId, Bytes p) override {
    packets.push_back(std::move(p));
  }
  void on_link_down() override {
    ++link_downs;
    packets_at_down = packets.size();
  }
};

// Satellite (ISSUE 2): socket teardown race. Packets that were already on
// the wire when the peer died must all be delivered by progress() BEFORE
// the (exactly one) on_link_down notification; further progress() calls
// are quiet.
TEST(SocketFailure, LinkDownReportedOnceAfterDrainingArrivals) {
  auto pair = drv::SocketEndpoint::make_pair(drv::mx_myrinet_profile());
  CountingHandler ha;
  pair.a->set_handler(&ha);
  CountingHandler hb;
  pair.b->set_handler(&hb);

  constexpr std::size_t kPackets = 8;
  const Bytes payload = pattern(256);
  for (std::size_t i = 0; i < kPackets; ++i) {
    GatherList gl;
    gl.add(payload.data(), payload.size());
    pair.b->send(drv::kTrackEager, gl, i);
  }
  // Wait for every frame to hit the wire, then kill the peer.
  while (pair.b->packets_sent() < kPackets)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  pair.b->close();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ha.link_downs == 0 && std::chrono::steady_clock::now() < deadline) {
    pair.a->progress();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(ha.link_downs, 1);
  EXPECT_EQ(ha.packets.size(), kPackets);
  EXPECT_EQ(ha.packets_at_down, kPackets)
      << "on_link_down fired before queued arrivals were drained";
  EXPECT_TRUE(pair.a->broken());
  EXPECT_FALSE(pair.a->link_up());
  for (int i = 0; i < 5; ++i) pair.a->progress();
  EXPECT_EQ(ha.link_downs, 1) << "on_link_down must fire exactly once";
}

// A deliberate local close() is teardown, not failure: no on_link_down.
TEST(SocketFailure, LocalCloseIsNotReportedAsLinkDown) {
  auto pair = drv::SocketEndpoint::make_pair(drv::mx_myrinet_profile());
  CountingHandler ha;
  pair.a->set_handler(&ha);
  CountingHandler hb;
  pair.b->set_handler(&hb);
  pair.a->close();
  for (int i = 0; i < 5; ++i) pair.a->progress();
  EXPECT_EQ(ha.link_downs, 0);
}

}  // namespace
}  // namespace mado::core
