// Size-boundary matrix: byte-exact round trips at every interesting edge of
// each driver profile — around the eager packet budget (single-fragment
// packets may exceed it), the PIO/DMA threshold, and the rendezvous
// threshold — where off-by-one bugs in packing and protocol selection live.
#include <gtest/gtest.h>

#include <tuple>

#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

using Params = std::tuple<std::string /*profile*/, int /*edge*/>;

/// The interesting sizes for a profile, derived from its capabilities.
std::vector<std::size_t> edge_sizes(const drv::Capabilities& caps) {
  std::vector<std::size_t> sizes = {
      1,
      caps.cost.pio_threshold > 1 ? caps.cost.pio_threshold - 1 : 1,
      caps.cost.pio_threshold + 1,
      caps.max_eager - FragHeader::kWireSize - 1,  // last size that packs
      caps.max_eager,      // single-fragment oversized packet
      caps.max_eager + 1,
      caps.rdv_threshold - 1,  // largest eager
      caps.rdv_threshold,      // smallest rendezvous
      caps.rdv_threshold + 1,
      caps.rdv_threshold * 3 + 7,  // several chunks, non-aligned tail
  };
  for (auto& s : sizes)
    if (s == 0) s = 1;
  return sizes;
}

class SizeBoundaryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SizeBoundaryTest, RoundTripAtEveryEdge) {
  const drv::Capabilities caps = drv::profile_by_name(GetParam());
  SimWorld w(2);
  w.connect(0, 1, caps);
  Channel a = w.node(0).open_channel(1, 7);
  Channel b = w.node(1).open_channel(0, 7);
  std::uint32_t seed = 1;
  for (const std::size_t size : edge_sizes(caps)) {
    const Bytes data = pattern(size, seed++);
    send_bytes(a, data, SendMode::Later);
    ASSERT_EQ(recv_bytes(b, size), data)
        << GetParam() << " size " << size;
  }
  EXPECT_TRUE(w.node(0).flush());
  // Rendezvous fired exactly for the sizes at/above the threshold.
  EXPECT_EQ(w.node(0).stats().counter("tx.rdv_rts"), 3u);
}

TEST_P(SizeBoundaryTest, EdgesInsideOneMultiFragmentMessage) {
  const drv::Capabilities caps = drv::profile_by_name(GetParam());
  SimWorld w(2);
  w.connect(0, 1, caps);
  Channel a = w.node(0).open_channel(1, 7);
  Channel b = w.node(1).open_channel(0, 7);
  const auto sizes = edge_sizes(caps);
  Message m;
  std::vector<Bytes> frags;
  std::uint32_t seed = 100;
  for (const std::size_t size : sizes) frags.push_back(pattern(size, seed++));
  for (const Bytes& f : frags) m.pack(f.data(), f.size(), SendMode::Later);
  a.post(std::move(m));
  IncomingMessage im = b.begin_recv();
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    Bytes out(sizes[i]);
    im.unpack(out.data(), out.size(), RecvMode::Express);
    ASSERT_EQ(out, frags[i]) << GetParam() << " frag " << i;
  }
  im.finish();
  EXPECT_TRUE(w.node(0).flush());
}

TEST_P(SizeBoundaryTest, RmaPutAtEveryEdge) {
  const drv::Capabilities caps = drv::profile_by_name(GetParam());
  SimWorld w(2);
  w.connect(0, 1, caps);
  const auto sizes = edge_sizes(caps);
  const std::size_t win_len = *std::max_element(sizes.begin(), sizes.end());
  Bytes window(win_len, Byte{0});
  w.node(1).expose_window(1, window.data(), window.size());
  std::uint32_t seed = 200;
  for (const std::size_t size : sizes) {
    const Bytes data = pattern(size, seed++);
    SendHandle h = w.node(0).rma_put(1, 1, 0, data.data(), size);
    ASSERT_TRUE(w.node(0).wait_send(h)) << GetParam() << " size " << size;
    ASSERT_EQ(Bytes(window.begin(), window.begin() + static_cast<long>(size)),
              data)
        << GetParam() << " size " << size;
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, SizeBoundaryTest,
                         ::testing::Values("mx", "elan", "tcp", "shm",
                                           "test"),
                         [](const ::testing::TestParamInfo<std::string>& pi) {
                           return pi.param;
                         });

}  // namespace
}  // namespace mado::core
