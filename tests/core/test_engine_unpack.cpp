// Incremental-unpack semantics: express vs cheaper interleavings, multiple
// attached receives, messages split across several packets, and consumption
// ordering across concurrent messages.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::send_bytes;

class UnpackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<SimWorld>(2);
    world_->connect(0, 1, drv::test_profile());  // max_eager = 1024
    a_ = world_->node(0).open_channel(1, 7);
    b_ = world_->node(1).open_channel(0, 7);
  }

  void post_frags(std::initializer_list<std::uint32_t> sizes,
                  std::uint32_t seed = 1) {
    Message m;
    std::uint32_t i = 0;
    for (std::uint32_t s : sizes) {
      const Bytes d = pattern(s, seed + i++);
      m.pack(d.data(), d.size(), SendMode::Safe);
    }
    a_.post(std::move(m));
  }

  std::unique_ptr<SimWorld> world_;
  Channel a_, b_;
};

TEST_F(UnpackTest, AllCheaperThenFinish) {
  post_frags({16, 32, 64});
  Bytes r1(16), r2(32), r3(64);
  IncomingMessage im = b_.begin_recv();
  im.unpack(r1.data(), 16, RecvMode::Cheaper);
  im.unpack(r2.data(), 32, RecvMode::Cheaper);
  im.unpack(r3.data(), 64, RecvMode::Cheaper);
  im.finish();  // the only blocking point
  EXPECT_EQ(r1, pattern(16, 1));
  EXPECT_EQ(r2, pattern(32, 2));
  EXPECT_EQ(r3, pattern(64, 3));
}

TEST_F(UnpackTest, ExpressAfterFullArrivalIsInstant) {
  post_frags({64});
  world_->run();  // everything delivered and buffered
  const Nanos before = world_->now();
  Bytes r(64);
  IncomingMessage im = b_.begin_recv();
  im.unpack(r.data(), 64, RecvMode::Express);
  im.finish();
  EXPECT_EQ(world_->now(), before);  // no extra virtual time consumed
  EXPECT_EQ(r, pattern(64, 1));
}

TEST_F(UnpackTest, MessageSplitAcrossPackets) {
  // 5 x 400 B with a 1024 B eager limit: at least 3 packets.
  post_frags({400, 400, 400, 400, 400});
  IncomingMessage im = b_.begin_recv();
  for (std::uint32_t i = 0; i < 5; ++i) {
    Bytes r(400);
    im.unpack(r.data(), 400, RecvMode::Express);
    EXPECT_EQ(r, pattern(400, 1 + i)) << i;
  }
  im.finish();
  EXPECT_GE(world_->node(0).stats().counter("tx.packets"), 3u);
}

TEST_F(UnpackTest, ManyFragments) {
  Message m;
  std::vector<Bytes> frags;
  for (std::uint32_t i = 0; i < 50; ++i) {
    frags.push_back(pattern(20, 100 + i));
    m.pack(frags.back().data(), frags.back().size(), SendMode::Safe);
  }
  a_.post(std::move(m));
  IncomingMessage im = b_.begin_recv();
  for (std::uint32_t i = 0; i < 50; ++i) {
    Bytes r(20);
    im.unpack(r.data(), 20, RecvMode::Express);
    EXPECT_EQ(r, pattern(20, 100 + i)) << i;
  }
  im.finish();
}

TEST_F(UnpackTest, TwoAttachedReceivesServedOutOfAttachOrder) {
  send_bytes(a_, pattern(32, 1));
  send_bytes(a_, pattern(32, 2));
  IncomingMessage im0 = b_.begin_recv();
  IncomingMessage im1 = b_.begin_recv();
  Bytes r1(32), r0(32);
  im1.unpack(r1.data(), 32, RecvMode::Express);  // consume seq 1 first
  EXPECT_EQ(r1, pattern(32, 2));
  im0.unpack(r0.data(), 32, RecvMode::Express);
  EXPECT_EQ(r0, pattern(32, 1));
  im1.finish();
  im0.finish();
}

TEST_F(UnpackTest, MixedExpressCheaperInterleavedMessages) {
  post_frags({16, 256}, 10);
  post_frags({16, 256}, 20);
  IncomingMessage first = b_.begin_recv();
  IncomingMessage second = b_.begin_recv();
  Bytes h1(16), h2(16), p1(256), p2(256);
  first.unpack(h1.data(), 16, RecvMode::Express);
  second.unpack(h2.data(), 16, RecvMode::Express);
  first.unpack(p1.data(), 256, RecvMode::Cheaper);
  second.unpack(p2.data(), 256, RecvMode::Cheaper);
  second.finish();
  first.finish();
  EXPECT_EQ(h1, pattern(16, 10));
  EXPECT_EQ(p1, pattern(256, 11));
  EXPECT_EQ(h2, pattern(16, 20));
  EXPECT_EQ(p2, pattern(256, 21));
}

TEST_F(UnpackTest, NextSizeDiscoversEagerFragmentLength) {
  post_frags({123, 456});
  IncomingMessage im = b_.begin_recv();
  EXPECT_EQ(im.next_size(), 123u);
  Bytes r1 = im.unpack_bytes();
  EXPECT_EQ(r1, pattern(123, 1));
  EXPECT_EQ(im.next_size(), 456u);
  Bytes r2 = im.unpack_bytes();
  EXPECT_EQ(r2, pattern(456, 2));
  im.finish();
}

TEST_F(UnpackTest, NextSizeFromRtsWithoutWaitingForBulk) {
  // 16 KiB rendezvous fragment: the size must be learnable from the RTS
  // alone (before any bulk data could have flowed — no CTS yet).
  post_frags({16 * 1024});
  IncomingMessage im = b_.begin_recv();
  EXPECT_EQ(im.next_size(), 16u * 1024);
  EXPECT_EQ(world_->node(1).stats().counter("rx.bulk_chunks"), 0u);
  Bytes r = im.unpack_bytes();
  EXPECT_EQ(r, pattern(16 * 1024, 1));
  im.finish();
}

TEST_F(UnpackTest, UnknownSizeProtocolWithoutHeaderFragment) {
  // A sender that packs arbitrary-size payloads with no size header: the
  // receiver discovers each message's shape from the wire.
  for (std::uint32_t s : {7u, 900u, 5000u})
    send_bytes(a_, pattern(s, s));
  for (std::uint32_t s : {7u, 900u, 5000u}) {
    IncomingMessage im = b_.begin_recv();
    Bytes r = im.unpack_bytes();
    im.finish();
    EXPECT_EQ(r.size(), s);
    EXPECT_EQ(r, pattern(s, s));
  }
}

TEST_F(UnpackTest, FinishWithNothingUnpackedThrows) {
  send_bytes(a_, pattern(8));
  IncomingMessage im = b_.begin_recv();
  EXPECT_THROW(im.finish(), CheckError);
}

TEST_F(UnpackTest, UnpackAfterFinishThrows) {
  send_bytes(a_, pattern(8));
  Bytes r(8);
  IncomingMessage im = b_.begin_recv();
  im.unpack(r.data(), 8, RecvMode::Express);
  im.finish();
  EXPECT_THROW(im.unpack(r.data(), 8, RecvMode::Express), CheckError);
}

TEST_F(UnpackTest, DoubleFinishThrows) {
  send_bytes(a_, pattern(8));
  Bytes r(8);
  IncomingMessage im = b_.begin_recv();
  im.unpack(r.data(), 8, RecvMode::Express);
  im.finish();
  EXPECT_THROW(im.finish(), CheckError);
}

TEST_F(UnpackTest, ExpressHeaderWhilePayloadStillInFlight) {
  // Header and payload in separate packets (payload exceeds eager budget,
  // below rdv threshold): the express header must be deliverable before
  // the payload packet lands.
  post_frags({16, 2000});
  IncomingMessage im = b_.begin_recv();
  Bytes h(16);
  im.unpack(h.data(), 16, RecvMode::Express);
  EXPECT_EQ(h, pattern(16, 1));
  Bytes p(2000);
  im.unpack(p.data(), 2000, RecvMode::Cheaper);
  im.finish();
  EXPECT_EQ(p, pattern(2000, 2));
}

}  // namespace
}  // namespace mado::core
