// TokenTable / TokenSet property tests (ISSUE 7): randomized operation
// parity against std::map / std::set, backward-shift deletion correctness
// under heavy collision load, growth/shrink hysteresis with wired counters,
// value lifetime accounting across rehashes, and move semantics.
#include "core/token_table.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace mado::core {
namespace {

TEST(TokenTable, BasicInsertFindErase) {
  TokenTable<int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.find(42), nullptr);
  auto [v, inserted] = t.emplace(42, 7);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*v, 7);
  EXPECT_EQ(t.size(), 1u);
  ASSERT_NE(t.find(42), nullptr);
  EXPECT_EQ(*t.find(42), 7);
  // Duplicate emplace: try_emplace semantics, existing value untouched.
  auto [v2, inserted2] = t.emplace(42, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*v2, 7);
  EXPECT_TRUE(t.erase(42));
  EXPECT_FALSE(t.erase(42));
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.find(42), nullptr);
}

TEST(TokenTable, InsertOrAssignOverwrites) {
  TokenTable<std::string> t;
  t.insert_or_assign(5, "one");
  EXPECT_EQ(*t.find(5), "one");
  t.insert_or_assign(5, "two");
  EXPECT_EQ(*t.find(5), "two");
  EXPECT_EQ(t.size(), 1u);
}

TEST(TokenTable, ZeroKeyIsAnOrdinaryKey) {
  // Sequence numbers start at 0, so key 0 must not collide with any "empty"
  // sentinel (the state byte array exists for exactly this).
  TokenTable<int> t;
  EXPECT_TRUE(t.emplace(0, 10).second);
  ASSERT_NE(t.find(0), nullptr);
  EXPECT_EQ(*t.find(0), 10);
  EXPECT_TRUE(t.erase(0));
  EXPECT_EQ(t.find(0), nullptr);
}

TEST(TokenTable, RandomizedParityAgainstStdMap) {
  // Small key universe forces dense collision chains and repeated
  // insert/erase of the same keys — the regime backward-shift deletion has
  // to get right (tombstone-free tables corrupt probe chains when the shift
  // condition is off by one).
  for (int seed = 0; seed < 50; ++seed) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed));
    TokenTable<std::uint64_t> t;
    std::map<std::uint64_t, std::uint64_t> ref;
    for (int op = 0; op < 2000; ++op) {
      const std::uint64_t key = rng() % 128;
      switch (rng() % 3) {
        case 0: {
          const std::uint64_t val = rng();
          const bool inserted = t.emplace(key, val).second;
          EXPECT_EQ(inserted, ref.emplace(key, val).second)
              << "seed " << seed << " op " << op;
          break;
        }
        case 1: {
          EXPECT_EQ(t.erase(key), ref.erase(key) != 0)
              << "seed " << seed << " op " << op;
          break;
        }
        case 2: {
          auto it = ref.find(key);
          std::uint64_t* p = t.find(key);
          ASSERT_EQ(p != nullptr, it != ref.end())
              << "seed " << seed << " op " << op;
          if (p) {
            EXPECT_EQ(*p, it->second);
          }
          break;
        }
      }
      ASSERT_EQ(t.size(), ref.size()) << "seed " << seed << " op " << op;
    }
    // Full-content parity via for_each.
    std::map<std::uint64_t, std::uint64_t> dumped;
    t.for_each([&](std::uint64_t k, const std::uint64_t& v) {
      EXPECT_TRUE(dumped.emplace(k, v).second) << "duplicate visit, seed "
                                               << seed;
    });
    EXPECT_EQ(dumped, ref) << "seed " << seed;
  }
}

TEST(TokenTable, SequentialKeysStayFast) {
  // Tokens are often sequential; the mix function must spread them so the
  // table neither clusters nor loses entries at scale.
  TokenTable<std::uint64_t> t;
  constexpr std::uint64_t kN = 100'000;
  for (std::uint64_t k = 0; k < kN; ++k) EXPECT_TRUE(t.emplace(k, k * 3).second);
  EXPECT_EQ(t.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    auto* p = t.find(k);
    ASSERT_NE(p, nullptr) << "lost key " << k;
    EXPECT_EQ(*p, k * 3);
  }
  // Load factor stays within the 0.75 growth bound.
  EXPECT_GE(t.capacity() * 3, t.size() * 4);
}

TEST(TokenTable, BurstDrainsBackToMinCapacity) {
  std::atomic<std::uint64_t> growths{0}, shrinks{0};
  TokenTableOpts opts;
  opts.min_capacity = 16;
  opts.shrink = true;
  opts.growths = &growths;
  opts.shrinks = &shrinks;
  TokenTable<std::uint64_t> t(opts);
  constexpr std::uint64_t kBurst = 10'000;
  for (std::uint64_t k = 0; k < kBurst; ++k) t.emplace(k, k);
  EXPECT_GE(t.capacity(), kBurst);
  EXPECT_GT(growths.load(), 0u);
  const std::size_t peak = t.capacity();
  for (std::uint64_t k = 0; k < kBurst; ++k) EXPECT_TRUE(t.erase(k));
  // The burst drained: the slot array must have shrunk back toward the
  // floor — a peer that once saw an incast must not pin the peak RAM.
  EXPECT_TRUE(t.empty());
  EXPECT_LT(t.capacity(), peak / 8);
  EXPECT_LE(t.capacity(), 16u * 4);  // within hysteresis of the floor
  EXPECT_GT(shrinks.load(), 0u);
  // And the table still works after the round trip.
  EXPECT_TRUE(t.emplace(7, 7).second);
  EXPECT_NE(t.find(7), nullptr);
}

TEST(TokenTable, ShrinkDisabledKeepsCapacity) {
  TokenTableOpts opts;
  opts.min_capacity = 16;
  opts.shrink = false;
  TokenTable<std::uint64_t> t(opts);
  for (std::uint64_t k = 0; k < 1000; ++k) t.emplace(k, k);
  const std::size_t peak = t.capacity();
  for (std::uint64_t k = 0; k < 1000; ++k) t.erase(k);
  EXPECT_EQ(t.capacity(), peak);
}

TEST(TokenTable, ClearReleasesAllMemory) {
  TokenTable<std::uint64_t> t;
  for (std::uint64_t k = 0; k < 1000; ++k) t.emplace(k, k);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.capacity(), 0u);  // a cleared table holds no slot array
  EXPECT_EQ(t.find(3), nullptr);
  EXPECT_TRUE(t.emplace(3, 9).second);  // and re-grows on demand
  EXPECT_EQ(*t.find(3), 9u);
}

/// Value type that counts live instances: catches double-destroy /
/// leaked-slot bugs across rehash, backshift, clear and table destruction.
struct Counted {
  static std::atomic<int> live;
  int v;
  explicit Counted(int x) : v(x) { live.fetch_add(1); }
  Counted(Counted&& o) noexcept : v(o.v) { live.fetch_add(1); }
  Counted& operator=(Counted&& o) noexcept {
    v = o.v;
    return *this;
  }
  Counted(const Counted&) = delete;
  Counted& operator=(const Counted&) = delete;
  ~Counted() { live.fetch_sub(1); }
};
std::atomic<int> Counted::live{0};

TEST(TokenTable, ValueLifetimesBalanceAcrossRehashes) {
  Counted::live.store(0);
  {
    TokenTable<Counted> t;
    std::mt19937_64 rng(1234);
    std::set<std::uint64_t> present;
    for (int op = 0; op < 20'000; ++op) {
      const std::uint64_t key = rng() % 512;
      if (rng() % 2 == 0) {
        if (t.emplace(key, static_cast<int>(key)).second)
          present.insert(key);
      } else {
        EXPECT_EQ(t.erase(key), present.erase(key) != 0);
      }
      ASSERT_EQ(Counted::live.load(), static_cast<int>(present.size()))
          << "op " << op;
    }
    t.clear();
    EXPECT_EQ(Counted::live.load(), 0);
    for (std::uint64_t k = 0; k < 100; ++k) t.emplace(k, 1);
    EXPECT_EQ(Counted::live.load(), 100);
  }  // destructor path
  EXPECT_EQ(Counted::live.load(), 0);
}

TEST(TokenTable, MoveTransfersContents) {
  TokenTable<std::uint64_t> a;
  for (std::uint64_t k = 0; k < 100; ++k) a.emplace(k, k + 1);
  TokenTable<std::uint64_t> b(std::move(a));
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.capacity(), 0u);
  EXPECT_EQ(b.size(), 100u);
  for (std::uint64_t k = 0; k < 100; ++k) {
    ASSERT_NE(b.find(k), nullptr);
    EXPECT_EQ(*b.find(k), k + 1);
  }
  TokenTable<std::uint64_t> c;
  c.emplace(999, 0);
  c = std::move(b);
  EXPECT_EQ(c.size(), 100u);
  EXPECT_EQ(c.find(999), nullptr);
  EXPECT_NE(c.find(50), nullptr);
}

TEST(TokenSet, RandomizedParityAgainstStdSet) {
  for (int seed = 0; seed < 20; ++seed) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed + 7000));
    TokenSet s;
    std::set<std::uint64_t> ref;
    for (int op = 0; op < 2000; ++op) {
      const std::uint64_t key = rng() % 96;
      switch (rng() % 3) {
        case 0:
          EXPECT_EQ(s.insert(key), ref.insert(key).second)
              << "seed " << seed << " op " << op;
          break;
        case 1:
          EXPECT_EQ(s.erase(key), ref.erase(key) != 0)
              << "seed " << seed << " op " << op;
          break;
        case 2:
          EXPECT_EQ(s.contains(key), ref.count(key) != 0)
              << "seed " << seed << " op " << op;
          break;
      }
      ASSERT_EQ(s.size(), ref.size());
    }
    std::set<std::uint64_t> dumped;
    s.for_each([&](std::uint64_t k) { dumped.insert(k); });
    EXPECT_EQ(dumped, ref) << "seed " << seed;
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.capacity(), 0u);
  }
}

TEST(TokenSet, StripeReassemblyShape) {
  // The engine's seen_offsets usage: chunk offsets inserted once, duplicates
  // reported via the insert() bool, table dropped wholesale at completion.
  TokenSet s;
  for (std::uint64_t off = 0; off < 1 << 20; off += 64 * 1024)
    EXPECT_TRUE(s.insert(off));
  for (std::uint64_t off = 0; off < 1 << 20; off += 64 * 1024)
    EXPECT_FALSE(s.insert(off));  // replayed chunk
  EXPECT_EQ(s.size(), 16u);
  s.clear();
  EXPECT_EQ(s.capacity(), 0u);
}

}  // namespace
}  // namespace mado::core
