#include "core/packet.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mado::core {
namespace {

FragHeader make_frag(ChannelId ch, MsgSeq seq, FragIdx idx,
                     std::uint16_t total, std::uint32_t len,
                     FragKind kind = FragKind::Data) {
  FragHeader fh;
  fh.channel = ch;
  fh.msg_seq = seq;
  fh.frag_idx = idx;
  fh.nfrags_total = total;
  fh.kind = kind;
  fh.flags = (idx + 1 == total) ? kFlagLastFrag : std::uint8_t{0};
  fh.len = len;
  return fh;
}

Bytes encode_full_packet(const PacketHeader& ph,
                         const std::vector<FragHeader>& fhs,
                         const std::vector<Bytes>& payloads) {
  Bytes out;
  encode_header_block(out, ph, fhs);
  for (const auto& p : payloads) out.insert(out.end(), p.begin(), p.end());
  return out;
}

TEST(Packet, HeaderSizesMatchWireConstants) {
  PacketHeader ph;
  ph.nfrags = 0;
  Bytes out;
  encode_header_block(out, ph, {});
  EXPECT_EQ(out.size(), PacketHeader::kWireSize);

  Bytes out2;
  PacketHeader ph2;
  ph2.nfrags = 2;
  encode_header_block(
      out2, ph2,
      {make_frag(1, 0, 0, 2, 0), make_frag(1, 0, 1, 2, 0)});
  EXPECT_EQ(out2.size(),
            PacketHeader::kWireSize + 2 * FragHeader::kWireSize);
}

TEST(Packet, RoundTripSingleFragment) {
  PacketHeader ph;
  ph.nfrags = 1;
  ph.pkt_seq = 42;
  ph.src_node = 3;
  Bytes payload = {1, 2, 3, 4, 5};
  Bytes pkt = encode_full_packet(
      ph, {make_frag(7, 9, 0, 1, 5)}, {payload});

  DecodedPacket d = parse_packet(ByteSpan(pkt), true);
  EXPECT_EQ(d.header.nfrags, 1u);
  EXPECT_EQ(d.header.pkt_seq, 42u);
  EXPECT_EQ(d.header.src_node, 3u);
  ASSERT_EQ(d.frags.size(), 1u);
  EXPECT_EQ(d.frags[0].channel, 7u);
  EXPECT_EQ(d.frags[0].msg_seq, 9u);
  EXPECT_EQ(d.frags[0].frag_idx, 0u);
  EXPECT_TRUE(d.frags[0].last());
  ASSERT_EQ(d.payloads[0].size(), 5u);
  EXPECT_EQ(Bytes(d.payloads[0].begin(), d.payloads[0].end()), payload);
}

TEST(Packet, RoundTripAggregatedFragments) {
  PacketHeader ph;
  ph.nfrags = 3;
  std::vector<FragHeader> fhs = {
      make_frag(1, 0, 0, 1, 4),
      make_frag(2, 5, 1, 3, 0),  // zero-length middle fragment
      make_frag(3, 2, 2, 3, 8),
  };
  std::vector<Bytes> payloads = {{9, 9, 9, 9}, {}, {1, 2, 3, 4, 5, 6, 7, 8}};
  Bytes pkt = encode_full_packet(ph, fhs, payloads);
  DecodedPacket d = parse_packet(ByteSpan(pkt), true);
  ASSERT_EQ(d.frags.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(d.frags[i].channel, fhs[i].channel);
    EXPECT_EQ(d.frags[i].len, fhs[i].len);
    EXPECT_EQ(Bytes(d.payloads[i].begin(), d.payloads[i].end()), payloads[i]);
  }
}

TEST(Packet, KindsRoundTrip) {
  PacketHeader ph;
  ph.nfrags = 2;
  Bytes rts_body, cts_body;
  encode_rts(rts_body, RtsBody{0xdeadbeefcafeull, 1 << 20});
  encode_cts(cts_body, CtsBody{0xdeadbeefcafeull});
  std::vector<FragHeader> fhs = {
      make_frag(1, 0, 0, 1, static_cast<std::uint32_t>(rts_body.size()),
                FragKind::RdvRts),
      make_frag(2, 0, 0, 1, static_cast<std::uint32_t>(cts_body.size()),
                FragKind::RdvCts),
  };
  Bytes pkt = encode_full_packet(ph, fhs, {rts_body, cts_body});
  DecodedPacket d = parse_packet(ByteSpan(pkt), true);
  EXPECT_EQ(d.frags[0].kind, FragKind::RdvRts);
  EXPECT_EQ(d.frags[1].kind, FragKind::RdvCts);
  const RtsBody rts = decode_rts(d.payloads[0]);
  EXPECT_EQ(rts.token, 0xdeadbeefcafeull);
  EXPECT_EQ(rts.total_len, 1u << 20);
  EXPECT_EQ(decode_cts(d.payloads[1]).token, 0xdeadbeefcafeull);
}

TEST(Packet, CorruptedHeaderCrcDetected) {
  PacketHeader ph;
  ph.nfrags = 1;
  Bytes pkt = encode_full_packet(ph, {make_frag(1, 0, 0, 1, 2)}, {{7, 7}});
  for (std::size_t byte : {0u, 5u, 21u, 30u}) {  // magic, header, fraghdr
    Bytes bad = pkt;
    bad[byte] ^= 0x40;
    EXPECT_THROW(parse_packet(ByteSpan(bad), true), CheckError)
        << "flip at byte " << byte;
  }
}

TEST(Packet, CrcCheckCanBeDisabled) {
  PacketHeader ph;
  ph.nfrags = 1;
  Bytes pkt = encode_full_packet(ph, {make_frag(1, 0, 0, 1, 2)}, {{7, 7}});
  // Flip a bit inside the frag header's reserved area — harmless content,
  // but it breaks the CRC.
  pkt[PacketHeader::kWireSize + 14] ^= 0x01;
  EXPECT_THROW(parse_packet(ByteSpan(pkt), true), CheckError);
  EXPECT_NO_THROW(parse_packet(ByteSpan(pkt), false));
}

TEST(Packet, TruncatedPacketThrows) {
  PacketHeader ph;
  ph.nfrags = 1;
  Bytes pkt = encode_full_packet(ph, {make_frag(1, 0, 0, 1, 8)},
                                 {{1, 2, 3, 4, 5, 6, 7, 8}});
  for (std::size_t cut = 1; cut < pkt.size(); cut += 5) {
    Bytes bad(pkt.begin(), pkt.begin() + static_cast<long>(cut));
    EXPECT_THROW(parse_packet(ByteSpan(bad), true), CheckError);
  }
}

TEST(Packet, TrailingGarbageThrows) {
  PacketHeader ph;
  ph.nfrags = 1;
  Bytes pkt = encode_full_packet(ph, {make_frag(1, 0, 0, 1, 2)}, {{7, 7}});
  pkt.push_back(0);
  EXPECT_THROW(parse_packet(ByteSpan(pkt), true), CheckError);
}

TEST(Packet, BadMagicThrows) {
  Bytes pkt(64, 0);
  EXPECT_THROW(parse_packet(ByteSpan(pkt), true), CheckError);
}

TEST(Packet, BadFragKindThrows) {
  PacketHeader ph;
  ph.nfrags = 1;
  Bytes pkt = encode_full_packet(ph, {make_frag(1, 0, 0, 1, 0)}, {{}});
  pkt[PacketHeader::kWireSize + 12] = 0x77;  // kind byte
  EXPECT_THROW(parse_packet(ByteSpan(pkt), false), CheckError);
}

TEST(Packet, BulkRoundTrip) {
  BulkHeader bh;
  bh.src_node = 2;
  bh.token = 0x123456789abcull;
  bh.offset = 65536;
  bh.len = 5;
  Bytes pkt;
  encode_bulk_header(pkt, bh);
  EXPECT_EQ(pkt.size(), BulkHeader::kWireSize);
  const Bytes data = {10, 20, 30, 40, 50};
  pkt.insert(pkt.end(), data.begin(), data.end());

  ByteSpan view;
  const BulkHeader out = decode_bulk(ByteSpan(pkt), view, true);
  EXPECT_EQ(out.src_node, 2u);
  EXPECT_EQ(out.token, 0x123456789abcull);
  EXPECT_EQ(out.offset, 65536u);
  EXPECT_EQ(out.len, 5u);
  EXPECT_EQ(Bytes(view.begin(), view.end()), data);
}

TEST(Packet, BulkCrcDetectsCorruption) {
  BulkHeader bh;
  bh.token = 7;
  bh.len = 1;
  Bytes pkt;
  encode_bulk_header(pkt, bh);
  pkt.push_back(0xaa);
  Bytes bad = pkt;
  bad[8] ^= 0x01;  // token byte
  ByteSpan view;
  EXPECT_THROW(decode_bulk(ByteSpan(bad), view, true), CheckError);
  EXPECT_NO_THROW(decode_bulk(ByteSpan(bad), view, false));
}

TEST(Packet, BulkLengthMismatchThrows) {
  BulkHeader bh;
  bh.len = 10;
  Bytes pkt;
  encode_bulk_header(pkt, bh);
  pkt.resize(pkt.size() + 5);  // five bytes short
  ByteSpan view;
  EXPECT_THROW(decode_bulk(ByteSpan(pkt), view, false), CheckError);
}

// Property: random packets survive encode → parse byte-exactly.
TEST(Packet, RandomRoundTripProperty) {
  Rng rng(77);
  for (int iter = 0; iter < 100; ++iter) {
    const auto nfrags = static_cast<std::uint16_t>(rng.range(1, 16));
    PacketHeader ph;
    ph.nfrags = nfrags;
    ph.pkt_seq = static_cast<std::uint32_t>(rng.next());
    ph.src_node = static_cast<NodeId>(rng.below(8));
    std::vector<FragHeader> fhs;
    std::vector<Bytes> payloads;
    for (std::uint16_t i = 0; i < nfrags; ++i) {
      const auto len = static_cast<std::uint32_t>(rng.below(512));
      Bytes p(len);
      for (auto& c : p) c = static_cast<Byte>(rng.next());
      const auto total = static_cast<std::uint16_t>(rng.range(i + 1, i + 4));
      fhs.push_back(make_frag(static_cast<ChannelId>(rng.below(100)),
                              static_cast<MsgSeq>(rng.below(1000)), i, total,
                              len));
      payloads.push_back(std::move(p));
    }
    const Bytes pkt = encode_full_packet(ph, fhs, payloads);
    const DecodedPacket d = parse_packet(ByteSpan(pkt), true);
    ASSERT_EQ(d.frags.size(), nfrags);
    for (std::uint16_t i = 0; i < nfrags; ++i) {
      EXPECT_EQ(d.frags[i].channel, fhs[i].channel);
      EXPECT_EQ(d.frags[i].msg_seq, fhs[i].msg_seq);
      EXPECT_EQ(d.frags[i].frag_idx, fhs[i].frag_idx);
      EXPECT_EQ(d.frags[i].nfrags_total, fhs[i].nfrags_total);
      EXPECT_EQ(d.frags[i].len, fhs[i].len);
      EXPECT_EQ(Bytes(d.payloads[i].begin(), d.payloads[i].end()),
                payloads[i]);
    }
  }
}

}  // namespace
}  // namespace mado::core
