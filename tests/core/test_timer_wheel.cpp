// Hierarchical timing wheel tests (ISSUE 7): cascade boundaries across all
// levels and the overflow list, cancel-while-due, re-arm semantics (including
// from inside a firing callback), and a randomized equivalence oracle that
// replays seeded arm/cancel/advance sequences against a simple sorted-map
// reference model.
//
// All tests drive the wheel through the fake-clock constructor: the wheel's
// coarse levels span minutes to hours, which no real-clock test can sleep
// out.
#include "core/timer_host.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <vector>

namespace mado::core {
namespace {

constexpr Nanos kTick = 1024;  // RealTimerHost::kTickShift == 10

/// Fake time source shared with the host under test. Starts at a non-zero
/// epoch so t0-relative and absolute arithmetic cannot be conflated.
struct FakeClock {
  Nanos t = 1'000'000;
  RealTimerHost host{[this] { return t; }};

  std::size_t advance_to(Nanos when) {
    t = std::max(t, when);
    return host.run_due();
  }
};

TEST(TimerWheel, FiresAtEveryLevelHorizon) {
  // One timer per wheel level plus one beyond the ~19.5h horizon (overflow
  // list). Each must stay pending until its exact tick and fire at it.
  const std::uint64_t deltas_ticks[] = {
      1,                       // level 0
      63,                      // level 0, last slot before the boundary
      64,                      // level 1, slot boundary
      64 * 64,                 // level 2 boundary
      64 * 64 + 7,             // level 2, off-boundary
      64ull * 64 * 64,         // level 3
      64ull * 64 * 64 * 64,    // level 4
      64ull * 64 * 64 * 64 * 64,        // level 5
      3 * 64ull * 64 * 64 * 64 * 64,    // level 5, deep slot
      64ull * 64 * 64 * 64 * 64 * 64 + 100,  // beyond horizon: overflow
  };
  for (const std::uint64_t delta : deltas_ticks) {
    FakeClock clk;
    bool fired = false;
    const Nanos deadline = clk.t + delta * kTick;
    clk.host.schedule_at(deadline, [&] { fired = true; });
    EXPECT_TRUE(clk.host.has_pending());
    // A tick before the deadline: nothing may fire.
    EXPECT_EQ(clk.advance_to(deadline - kTick), 0u) << "delta " << delta;
    EXPECT_FALSE(fired);
    // At the deadline tick: exactly this timer fires.
    EXPECT_EQ(clk.advance_to(deadline), 1u) << "delta " << delta;
    EXPECT_TRUE(fired);
    EXPECT_FALSE(clk.host.has_pending());
  }
}

TEST(TimerWheel, CascadeStepwiseAdvanceMatchesJump) {
  // Walking the clock in small increments across several cascade boundaries
  // must fire the same timers at the same times as one big jump would —
  // cascading re-distributes entries without losing or duplicating them.
  const std::uint64_t deltas[] = {5, 64, 100, 64 * 64, 64 * 64 + 64 + 5,
                                  3 * 64 * 64, 64ull * 64 * 64 + 1};
  FakeClock clk;
  std::multimap<std::uint64_t, int> expected;  // fire tick -> id
  std::vector<int> fired;
  int id = 0;
  for (const std::uint64_t d : deltas) {
    const int i = id++;
    clk.host.schedule_at(clk.t + d * kTick, [&fired, i] { fired.push_back(i); });
    expected.emplace(d, i);
  }
  std::multimap<std::uint64_t, int> seen;
  const std::uint64_t horizon = 64ull * 64 * 64 + 2;
  for (std::uint64_t step = 0; step <= horizon; step += 17) {
    const std::uint64_t before = fired.size();
    clk.advance_to(1'000'000 + step * kTick);
    for (std::size_t j = before; j < fired.size(); ++j)
      seen.emplace(step, fired[j]);
  }
  clk.advance_to(1'000'000 + (horizon + 17) * kTick);
  ASSERT_EQ(fired.size(), std::size(deltas));
  // Every timer fired at the first step whose tick reached its deadline
  // (steps stride by 17, so "first step >= delta").
  for (const auto& [step, i] : seen) {
    std::uint64_t d = 0;
    for (const auto& [ed, ei] : expected)
      if (ei == i) d = ed;
    EXPECT_GE(step, d) << "timer " << i << " fired early";
    EXPECT_LT(step - d, 17u) << "timer " << i << " fired late";
  }
}

TEST(TimerWheel, SameTickFiresInScheduleOrder) {
  FakeClock clk;
  std::vector<int> fired;
  const Nanos deadline = clk.t + 10 * kTick;
  for (int i = 0; i < 100; ++i)
    clk.host.schedule_at(deadline, [&fired, i] { fired.push_back(i); });
  EXPECT_EQ(clk.advance_to(deadline), 100u);
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(fired[i], static_cast<int>(i));
}

TEST(TimerWheel, CancelWhileDueSuppressesFiring) {
  // The deadline has already passed, but cancel() lands before run_due():
  // the callback must NOT run, and the wheel must forget the entry entirely.
  FakeClock clk;
  TimerHandle h;
  bool fired = false;
  h.set_callback([&](std::uint64_t) { fired = true; });
  clk.host.arm(h, clk.t + kTick);
  clk.t += 100 * kTick;  // due, not yet run
  EXPECT_TRUE(clk.host.cancel(h));
  EXPECT_FALSE(h.armed());
  EXPECT_EQ(clk.host.run_due(), 0u);
  EXPECT_FALSE(fired);
  EXPECT_FALSE(clk.host.has_pending());
  EXPECT_EQ(clk.host.next_deadline(), TimerHost::kNoDeadline);
  EXPECT_EQ(clk.host.cancelled_count(), 1u);
}

TEST(TimerWheel, CancelIdleHandleReturnsFalse) {
  FakeClock clk;
  TimerHandle h;
  h.set_callback([](std::uint64_t) {});
  EXPECT_FALSE(clk.host.cancel(h));
  clk.host.arm(h, clk.t + kTick);
  EXPECT_TRUE(clk.host.cancel(h));
  EXPECT_FALSE(clk.host.cancel(h));  // second cancel: already gone
  EXPECT_EQ(clk.host.cancelled_count(), 1u);
}

TEST(TimerWheel, ReArmMovesDeadlineBothWays) {
  // Later: the original deadline must not fire. Earlier: the new one must.
  FakeClock clk;
  TimerHandle h;
  int fires = 0;
  h.set_callback([&](std::uint64_t) { ++fires; });
  clk.host.arm(h, clk.t + 10 * kTick);
  clk.host.arm(h, clk.t + 1000 * kTick);  // push out
  EXPECT_EQ(clk.advance_to(clk.t + 500 * kTick), 0u);
  EXPECT_EQ(fires, 0);
  clk.host.arm(h, clk.t + 2 * kTick);  // pull in
  EXPECT_EQ(clk.advance_to(clk.t + 2 * kTick), 1u);
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(h.armed());
  // Re-arm after firing works (the handle is persistent).
  clk.host.arm(h, clk.t + kTick);
  EXPECT_EQ(clk.advance_to(clk.t + kTick), 1u);
  EXPECT_EQ(fires, 2);
}

TEST(TimerWheel, ReArmInsideCallbackChains) {
  // A callback re-arming its own handle is the engine's RTO backoff shape.
  FakeClock clk;
  TimerHandle h;
  int fires = 0;
  h.set_callback([&](std::uint64_t) {
    if (++fires < 5) clk.host.arm(h, clk.t + 10 * kTick);
  });
  clk.host.arm(h, clk.t + 10 * kTick);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(clk.advance_to(clk.t + 10 * kTick), 1u) << "hop " << i;
  }
  EXPECT_EQ(fires, 5);
  EXPECT_FALSE(clk.host.has_pending());
}

TEST(TimerWheel, ScheduleDueNowInsideCallbackRunsSameDrain) {
  // Matches the legacy heap behavior relied on by the rebalance tick.
  FakeClock clk;
  int count = 0;
  clk.host.schedule_at(clk.t, [&] {
    ++count;
    clk.host.schedule_at(clk.t, [&] { ++count; });
  });
  clk.host.run_due();
  EXPECT_EQ(count, 2);
}

TEST(TimerWheel, StaleGenerationVisibleToCallback) {
  // The callback receives the generation of the arm it belongs to; a re-arm
  // between firing decision and owner processing is detectable by the owner
  // comparing against h.gen(). Here: fire, then check gen advances per arm.
  FakeClock clk;
  TimerHandle h;
  std::uint64_t seen_gen = 0;
  h.set_callback([&](std::uint64_t g) { seen_gen = g; });
  clk.host.arm(h, clk.t + kTick);
  const std::uint64_t g1 = h.gen();
  clk.advance_to(clk.t + kTick);
  EXPECT_EQ(seen_gen, g1);
  clk.host.arm(h, clk.t + kTick);
  EXPECT_GT(h.gen(), g1);  // every arm bumps the generation
  clk.host.cancel(h);
}

TEST(TimerWheel, NextDeadlineIsLowerBound) {
  FakeClock clk;
  EXPECT_EQ(clk.host.next_deadline(), TimerHost::kNoDeadline);
  TimerHandle h;
  h.set_callback([](std::uint64_t) {});
  // A coarse-level deadline: the hint may point at the slot's window start,
  // but must never exceed the true deadline (parks would oversleep).
  const Nanos deadline = clk.t + 64ull * 64 * 64 * kTick + 12345 * kTick;
  clk.host.arm(h, deadline);
  EXPECT_NE(clk.host.next_deadline(), TimerHost::kNoDeadline);
  EXPECT_LE(clk.host.next_deadline(), deadline);
  // A near deadline dominates the hint.
  TimerHandle h2;
  h2.set_callback([](std::uint64_t) {});
  clk.host.arm(h2, clk.t + 2 * kTick);
  EXPECT_LE(clk.host.next_deadline(), clk.t + 2 * kTick);
  clk.host.cancel(h);
  clk.host.cancel(h2);
}

TEST(TimerWheel, CancelFromCallbackSuppressesAlreadyExtractedFire) {
  // The cancel window, asserted as a hard invariant instead of the old
  // "benign because owners guard semantically" comment: two timers due at
  // the same tick are BOTH extracted from the wheel (armed=false) before
  // any callback runs. The first callback cancels the second — too late to
  // unlink it, so cancel() returns false — but the generation bump must
  // still suppress the in-flight fire. The second callback NEVER runs.
  FakeClock clk;
  TimerHandle first, second;
  bool second_fired = false;
  std::uint64_t gen_before_cancel = 0;
  bool cancel_returned = true;
  second.set_callback([&](std::uint64_t) { second_fired = true; });
  first.set_callback([&](std::uint64_t) {
    gen_before_cancel = second.gen();
    cancel_returned = clk.host.cancel(second);
  });
  const Nanos deadline = clk.t + kTick;
  clk.host.arm(first, deadline);
  clk.host.arm(second, deadline);
  clk.advance_to(deadline);
  // The entry had already left the wheel when cancel() ran...
  EXPECT_FALSE(cancel_returned);
  // ...but the generation was bumped anyway (the asserted invariant)...
  EXPECT_GT(second.gen(), gen_before_cancel);
  // ...so the stale fire was suppressed at the host layer.
  EXPECT_FALSE(second_fired);
  EXPECT_EQ(clk.host.stale_suppressed_count(), 1u);
  EXPECT_FALSE(clk.host.has_pending());
}

TEST(TimerWheel, ReArmFromCallbackSuppressesPriorExtractedFire) {
  // Same window, re-arm flavor: the first callback re-arms the second
  // handle to a later deadline while the second's ORIGINAL fire is already
  // extracted. The original fire must be suppressed (its generation is
  // stale) and only the re-armed deadline may run the callback.
  FakeClock clk;
  TimerHandle first, second;
  int second_fires = 0;
  first.set_callback(
      [&](std::uint64_t) { clk.host.arm(second, clk.t + 100 * kTick); });
  second.set_callback([&](std::uint64_t) { ++second_fires; });
  const Nanos deadline = clk.t + kTick;
  clk.host.arm(first, deadline);
  clk.host.arm(second, deadline);
  clk.advance_to(deadline);
  EXPECT_EQ(second_fires, 0);  // original fire suppressed
  EXPECT_EQ(clk.host.stale_suppressed_count(), 1u);
  clk.advance_to(clk.t + 100 * kTick);
  EXPECT_EQ(second_fires, 1);  // the re-arm fires normally
}

TEST(TimerWheel, HandleDestructionCancelsArmedTimer) {
  FakeClock clk;
  bool fired = false;
  {
    TimerHandle h;
    h.set_callback([&](std::uint64_t) { fired = true; });
    clk.host.arm(h, clk.t + kTick);
  }  // ~TimerHandle auto-cancels
  EXPECT_EQ(clk.advance_to(clk.t + 10 * kTick), 0u);
  EXPECT_FALSE(fired);
  EXPECT_FALSE(clk.host.has_pending());
}

// ---------------------------------------------------------------------------
// Randomized equivalence oracle: the wheel vs a sorted-map reference.
//
// Model: a timer armed at deadline d fires at the first run_due whose
// now-tick reaches floor(d) — deadlines quantize DOWN to the tick. Per
// advance the oracle compares the SET of fired handles (cross-level cascade
// order within one tick is unspecified; loss, duplication, early and late
// firing are all detected).
// ---------------------------------------------------------------------------

TEST(TimerWheel, RandomizedHeapEquivalenceOracle) {
  constexpr int kSequences = 10'000;
  constexpr int kHandles = 6;
  constexpr int kOps = 24;
  std::uint64_t total_fired = 0;
  for (int seed = 0; seed < kSequences; ++seed) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed));
    FakeClock clk;
    TimerHandle handles[kHandles];
    std::vector<int> fired;
    for (int i = 0; i < kHandles; ++i)
      handles[i].set_callback(
          [&fired, i](std::uint64_t) { fired.push_back(i); });
    // Reference: handle -> armed deadline tick (absolute ns).
    std::map<int, Nanos> model;

    // Deadline deltas drawn log-uniform so every level (and the overflow
    // list) sees traffic across the sequence corpus.
    auto random_delta = [&rng]() -> std::uint64_t {
      const int mag = static_cast<int>(rng() % 38);  // up to ~2^37 ticks
      return (rng() % 2 == 0 ? 1 : (std::uint64_t{1} << mag)) +
             rng() % (std::uint64_t{1} << mag);
    };

    for (int op = 0; op < kOps; ++op) {
      switch (rng() % 4) {
        case 0:
        case 1: {  // arm / re-arm
          const int i = static_cast<int>(rng() % kHandles);
          const Nanos dl = clk.t + random_delta() * kTick + rng() % kTick;
          clk.host.arm(handles[i], dl);
          model[i] = dl;
          break;
        }
        case 2: {  // cancel
          const int i = static_cast<int>(rng() % kHandles);
          const bool was_armed = model.count(i) != 0;
          EXPECT_EQ(clk.host.cancel(handles[i]), was_armed)
              << "seed " << seed << " op " << op;
          model.erase(i);
          break;
        }
        case 3: {  // advance + run_due, compare fired sets
          clk.t += random_delta() * kTick;
          // Pending hint must never point past the earliest deadline.
          if (!model.empty()) {
            Nanos earliest = TimerHost::kNoDeadline;
            for (const auto& [i, dl] : model)
              earliest = std::min(earliest, dl);
            EXPECT_LE(clk.host.next_deadline(), earliest)
                << "seed " << seed << " op " << op;
          }
          fired.clear();
          const std::size_t n = clk.host.run_due();
          std::vector<int> expected;
          const std::uint64_t now_tick = (clk.t - 1'000'000) / kTick;
          for (auto it = model.begin(); it != model.end();) {
            const std::uint64_t dl_tick = (it->second - 1'000'000) / kTick;
            if (dl_tick <= now_tick) {
              expected.push_back(it->first);
              it = model.erase(it);
            } else {
              ++it;
            }
          }
          std::vector<int> got = fired;
          std::sort(got.begin(), got.end());
          std::sort(expected.begin(), expected.end());
          EXPECT_EQ(got, expected) << "seed " << seed << " op " << op;
          EXPECT_EQ(n, expected.size()) << "seed " << seed << " op " << op;
          total_fired += n;
          break;
        }
      }
    }
    // Drain: everything still armed must fire eventually.
    fired.clear();
    clk.t += (std::uint64_t{1} << 40) * kTick;
    const std::size_t n = clk.host.run_due();
    EXPECT_EQ(n, model.size()) << "seed " << seed << " final drain";
    EXPECT_FALSE(clk.host.has_pending()) << "seed " << seed;
  }
  EXPECT_GT(total_fired, 0u);  // the corpus exercised the fire path
}

}  // namespace
}  // namespace mado::core
