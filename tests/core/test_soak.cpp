// Soak test over the real socket driver: several application threads on
// both nodes concurrently exercise eager sends, rendezvous transfers and
// one-sided put/get for a bounded wall-clock while progress threads run —
// hunting for races between the engine lock, driver IO threads and timers.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"
#include "util/rng.hpp"

namespace mado::core {
namespace {

using testing::pattern;

TEST(Soak, ConcurrentMixedTrafficOverSockets) {
  EngineConfig cfg;
  cfg.strategy = "aggreg";
  SocketWorld w(cfg, drv::mx_myrinet_profile(), /*rails=*/2);

  Bytes window(1 << 20, Byte{0});
  w.node(1).expose_window(9, window.data(), window.size());

  constexpr int kStreams = 3;
  constexpr int kMsgsPerStream = 60;
  std::atomic<int> failures{0};

  // Stream threads: node 0 sends, node 1 receives, per-channel.
  std::vector<std::thread> threads;
  std::vector<Channel> tx, rx;
  for (ChannelId c = 0; c < kStreams; ++c) {
    tx.push_back(w.node(0).open_channel(1, c));
    rx.push_back(w.node(1).open_channel(0, c));
  }
  for (int s = 0; s < kStreams; ++s) {
    threads.emplace_back([&, s] {
      Rng rng(static_cast<std::uint64_t>(s) + 1);
      for (int i = 0; i < kMsgsPerStream; ++i) {
        const std::size_t len =
            rng.chance(0.15) ? 40'000 + rng.below(40'000) : 16 + rng.below(700);
        const auto seed =
            static_cast<std::uint32_t>(s * 100'000 + i);
        const Bytes data = pattern(len, seed);
        Message m;
        m.pack(data.data(), data.size(), SendMode::Safe);
        tx[static_cast<std::size_t>(s)].post(std::move(m));
      }
    });
    threads.emplace_back([&, s] {
      Rng rng(static_cast<std::uint64_t>(s) + 1);
      for (int i = 0; i < kMsgsPerStream; ++i) {
        const std::size_t len =
            rng.chance(0.15) ? 40'000 + rng.below(40'000) : 16 + rng.below(700);
        const auto seed =
            static_cast<std::uint32_t>(s * 100'000 + i);
        Bytes out(len);
        IncomingMessage im = rx[static_cast<std::size_t>(s)].begin_recv();
        im.unpack(out.data(), out.size(), RecvMode::Express);
        im.finish();
        if (out != pattern(len, seed)) ++failures;
      }
    });
  }
  // RMA thread from node 0 into node 1's window, verified via gets.
  threads.emplace_back([&] {
    Rng rng(77);
    for (int i = 0; i < 40; ++i) {
      const std::size_t len = 64 + rng.below(8000);
      const std::uint64_t off = rng.below(window.size() - len);
      const Bytes data = pattern(len, static_cast<std::uint32_t>(1000 + i));
      SendHandle h = w.node(0).rma_put(1, 9, off, data.data(), len);
      if (!w.node(0).wait_send(h)) {
        ++failures;
        continue;
      }
      Bytes out(len);
      SendHandle g = w.node(0).rma_get(1, 9, off, out.data(), len);
      if (!w.node(0).wait_send(g) || out != data) ++failures;
    }
  });

  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(w.node(0).flush());
  EXPECT_TRUE(w.node(1).flush());
  EXPECT_EQ(w.node(0).stats().counter("rx.malformed"), 0u);
  EXPECT_EQ(w.node(1).stats().counter("rx.malformed"), 0u);
}

TEST(Soak, ShmConcurrentStreams) {
  // Same shape as the socket soak but over the shared-memory driver:
  // exercises the no-IO-thread transport under application concurrency.
  ShmWorld w(EngineConfig{});
  constexpr int kStreams = 3;
  constexpr int kMsgs = 80;
  std::atomic<int> failures{0};
  std::vector<Channel> tx, rx;
  for (ChannelId c = 0; c < kStreams; ++c) {
    tx.push_back(w.node(0).open_channel(1, c));
    rx.push_back(w.node(1).open_channel(0, c));
  }
  std::vector<std::thread> threads;
  for (int s = 0; s < kStreams; ++s) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < kMsgs; ++i) {
        const Bytes data =
            pattern(32 + static_cast<std::size_t>(i % 7) * 100,
                    static_cast<std::uint32_t>(s * 1000 + i));
        Message m;
        m.pack(data.data(), data.size(), SendMode::Safe);
        tx[static_cast<std::size_t>(s)].post(std::move(m));
      }
    });
    threads.emplace_back([&, s] {
      for (int i = 0; i < kMsgs; ++i) {
        const std::size_t len = 32 + static_cast<std::size_t>(i % 7) * 100;
        Bytes out(len);
        IncomingMessage im = rx[static_cast<std::size_t>(s)].begin_recv();
        im.unpack(out.data(), out.size(), RecvMode::Express);
        im.finish();
        if (out != pattern(len, static_cast<std::uint32_t>(s * 1000 + i)))
          ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(w.node(0).flush());
}

TEST(Soak, SimLongRunStaysConsistent) {
  // A longer deterministic run: thousands of messages across strategies,
  // checking conservation of counted fragments at the end.
  for (const char* strategy : {"fifo", "aggreg", "aggreg_exhaustive"}) {
    EngineConfig cfg;
    cfg.strategy = strategy;
    SimWorld w(2, cfg);
    w.connect(0, 1, drv::mx_myrinet_profile());
    constexpr ChannelId kFlows = 6;
    std::vector<Channel> tx, rx;
    for (ChannelId f = 0; f < kFlows; ++f) {
      tx.push_back(w.node(0).open_channel(1, f));
      rx.push_back(w.node(1).open_channel(0, f));
    }
    constexpr int kMsgs = 300;
    Rng rng(5);
    for (int i = 0; i < kMsgs; ++i)
      for (ChannelId f = 0; f < kFlows; ++f) {
        const std::size_t len = 16 + rng.below(500);
        const Bytes data = pattern(len, f * 10'000u +
                                            static_cast<std::uint32_t>(i));
        Message m;
        m.pack(data.data(), data.size(), SendMode::Safe);
        tx[f].post(std::move(m));
      }
    Rng rng2(5);
    for (int i = 0; i < kMsgs; ++i)
      for (ChannelId f = 0; f < kFlows; ++f) {
        const std::size_t len = 16 + rng2.below(500);
        Bytes out(len);
        IncomingMessage im = rx[f].begin_recv();
        im.unpack(out.data(), out.size(), RecvMode::Express);
        im.finish();
        ASSERT_EQ(out, pattern(len, f * 10'000u +
                                        static_cast<std::uint32_t>(i)))
            << strategy;
      }
    ASSERT_TRUE(w.node(0).flush());
    EXPECT_EQ(w.node(0).stats().counter("tx.frags"),
              w.node(1).stats().counter("rx.frags"))
        << strategy;
    EXPECT_EQ(w.node(1).stats().counter("rx.msgs_completed"),
              static_cast<std::uint64_t>(kMsgs) * kFlows)
        << strategy;
  }
}

}  // namespace
}  // namespace mado::core
