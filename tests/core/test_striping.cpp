// Heterogeneous multi-rail bulk striping (MultirailPolicy::Stripe).
//
// Two layers of coverage:
//   * Model tests drive strategy_detail::stripe_shares / stripe_rail_rate
//     directly — pure functions of the cost model, no engine involved — and
//     check the water-filling invariants (shares sum to the total, Down
//     rails carry nothing, backlogs shift bytes away, min_chunk crumbs are
//     folded, the bandwidth hint overrides the profile's nominal rate).
//   * Engine tests run whole transfers over 2–4 heterogeneous simulated
//     rails, including work stealing, out-of-order cross-rail reassembly,
//     composition with the reliability layer (loss, duplication, scheduled
//     mid-transfer link failure) and a randomized many-seed soak with an
//     exact-delivery oracle.
//
// Everything runs on the deterministic SimWorld fabric; each soak seed is a
// bit-identical replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <numeric>
#include <vector>

#include "core/engine.hpp"
#include "core/strategy.hpp"
#include "core/trace.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using strategy_detail::StripeRail;
using strategy_detail::stripe_rail_rate;
using strategy_detail::stripe_shares;
using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

EngineConfig stripe_cfg() {
  EngineConfig cfg;
  cfg.multirail = MultirailPolicy::Stripe;
  cfg.rdv_chunk = 16 * 1024;
  return cfg;
}

// ---- model layer -----------------------------------------------------------

TEST(StripeModel, RailRateScalesWithBandwidthHint) {
  drv::Capabilities slow = drv::tcp_gige_profile();
  drv::Capabilities fast = slow;
  fast.bandwidth_hint_bytes_per_us = slow.cost.link_bytes_per_us * 4.0;
  const double r_slow = stripe_rail_rate(slow, 64 * 1024);
  const double r_fast = stripe_rail_rate(fast, 64 * 1024);
  EXPECT_GT(r_slow, 0.0);
  // A 4x hint cannot make the rail 4x faster end to end (injection setup is
  // unchanged), but it must be decisively faster.
  EXPECT_GT(r_fast, r_slow * 1.5);
}

TEST(StripeModel, SharesSumToTotalAndFavorTheFastRail) {
  drv::Capabilities fast = drv::elan_quadrics_profile();
  drv::Capabilities slow = drv::tcp_gige_profile();
  std::vector<StripeRail> rails{{&fast, 0, true}, {&slow, 0, true}};
  std::vector<std::uint64_t> shares;
  const std::uint64_t total = 4u << 20;
  stripe_shares(rails, total, 64 * 1024, 8 * 1024, shares);
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_EQ(shares[0] + shares[1], total);
  // elan ~900 B/us vs tcp ~110 B/us: the fast rail must dominate.
  EXPECT_GT(shares[0], shares[1] * 2);
  EXPECT_GT(shares[1], 0u) << "the slow rail should still participate";
}

TEST(StripeModel, DownRailsGetZero) {
  drv::Capabilities a = drv::mx_myrinet_profile();
  drv::Capabilities b = drv::mx_myrinet_profile();
  std::vector<StripeRail> rails{{&a, 0, false}, {&b, 0, true}};
  std::vector<std::uint64_t> shares;
  stripe_shares(rails, 1u << 20, 64 * 1024, 8 * 1024, shares);
  EXPECT_EQ(shares[0], 0u);
  EXPECT_EQ(shares[1], 1u << 20);
}

TEST(StripeModel, BacklogShiftsBytesToTheIdleRail) {
  drv::Capabilities a = drv::mx_myrinet_profile();
  drv::Capabilities b = drv::mx_myrinet_profile();
  // Identical rails, but rail 0 must first drain 2 MB of queued traffic.
  std::vector<StripeRail> rails{{&a, 2u << 20, true}, {&b, 0, true}};
  std::vector<std::uint64_t> shares;
  stripe_shares(rails, 1u << 20, 64 * 1024, 8 * 1024, shares);
  EXPECT_EQ(shares[0] + shares[1], 1u << 20);
  EXPECT_GT(shares[1], shares[0])
      << "the loaded rail must receive fewer new bytes";
}

TEST(StripeModel, HugeBacklogExcludesARailEntirely) {
  drv::Capabilities a = drv::mx_myrinet_profile();
  drv::Capabilities b = drv::mx_myrinet_profile();
  // Rail 0's backlog alone takes longer than the whole transfer on rail 1.
  std::vector<StripeRail> rails{{&a, 64u << 20, true}, {&b, 0, true}};
  std::vector<std::uint64_t> shares;
  stripe_shares(rails, 256 * 1024, 64 * 1024, 8 * 1024, shares);
  EXPECT_EQ(shares[0], 0u);
  EXPECT_EQ(shares[1], 256u * 1024);
}

TEST(StripeModel, CrumbSharesFoldIntoTheFastestRail) {
  drv::Capabilities fast = drv::elan_quadrics_profile();
  drv::Capabilities slow = drv::tcp_gige_profile();
  std::vector<StripeRail> rails{{&fast, 0, true}, {&slow, 0, true}};
  std::vector<std::uint64_t> shares;
  // A small transfer whose slow-rail share would fall below min_chunk: the
  // slow rail must not join the stripe for a pittance.
  stripe_shares(rails, 64 * 1024, 16 * 1024, 32 * 1024, shares);
  EXPECT_EQ(shares[0], 64u * 1024);
  EXPECT_EQ(shares[1], 0u);
}

TEST(StripeModel, EqualRailsSplitNearEvenlyWithLowImbalance) {
  drv::Capabilities a = drv::mx_myrinet_profile();
  drv::Capabilities b = drv::mx_myrinet_profile();
  std::vector<StripeRail> rails{{&a, 0, true}, {&b, 0, true}};
  std::vector<std::uint64_t> shares;
  const double imbalance =
      stripe_shares(rails, 2u << 20, 64 * 1024, 8 * 1024, shares);
  EXPECT_EQ(shares[0] + shares[1], 2u << 20);
  const auto hi = std::max(shares[0], shares[1]);
  const auto lo = std::min(shares[0], shares[1]);
  EXPECT_LE(hi - lo, 64u * 1024) << "equal rails should split evenly";
  EXPECT_LT(imbalance, 10.0);
}

TEST(StripeModel, AllRailsDownYieldsNoShares) {
  drv::Capabilities a = drv::mx_myrinet_profile();
  std::vector<StripeRail> rails{{&a, 0, false}, {&a, 0, false}};
  std::vector<std::uint64_t> shares;
  stripe_shares(rails, 1u << 20, 64 * 1024, 8 * 1024, shares);
  EXPECT_EQ(shares[0], 0u);
  EXPECT_EQ(shares[1], 0u);
}

// Randomized model property: for arbitrary rail mixes, backlogs and totals,
// shares always sum to the total and Down rails never carry bytes.
TEST(StripeModel, RandomizedInvariants) {
  const drv::Capabilities profiles[] = {drv::mx_myrinet_profile(),
                                        drv::elan_quadrics_profile(),
                                        drv::tcp_gige_profile()};
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t nrails = 2 + next() % 3;
    std::vector<StripeRail> rails(nrails);
    for (std::size_t i = 0; i < nrails; ++i) {
      rails[i].caps = &profiles[next() % 3];
      rails[i].backlog_bytes = (next() % 8) * 256 * 1024;
      rails[i].up = (next() % 5) != 0;  // ~20% down
    }
    const std::uint64_t total = 4096 + next() % (8u << 20);
    std::vector<std::uint64_t> shares;
    stripe_shares(rails, total, 64 * 1024, 8 * 1024, shares);
    ASSERT_EQ(shares.size(), nrails);
    bool any_up = false;
    for (const StripeRail& r : rails) any_up |= r.up;
    const std::uint64_t sum =
        std::accumulate(shares.begin(), shares.end(), std::uint64_t{0});
    if (any_up)
      EXPECT_EQ(sum, total) << "iter " << iter;
    else
      EXPECT_EQ(sum, 0u) << "iter " << iter;
    for (std::size_t i = 0; i < nrails; ++i) {
      if (!rails[i].up) {
        EXPECT_EQ(shares[i], 0u) << "iter " << iter;
      }
    }
  }
}

// ---- engine layer ----------------------------------------------------------

/// Count BulkTx bytes per rail from a tracer attached to the sender.
std::map<RailId, std::uint64_t> bulk_tx_bytes_by_rail(const Tracer& tracer) {
  std::map<RailId, std::uint64_t> out;
  for (const TraceRecord& r : tracer.snapshot())
    if (r.event == TraceEvent::BulkTx && r.node == 0) out[r.rail] += r.c;
  return out;
}

TEST(StripeEngine, HeterogeneousRailsShareOneTransfer) {
  SimWorld world(2, stripe_cfg());
  world.connect(0, 1, drv::tcp_gige_profile());   // rail 0: ~110 B/us
  world.connect(0, 1, drv::elan_quadrics_profile());  // rail 1: ~900 B/us
  Tracer tracer(1 << 16);
  world.node(0).set_tracer(&tracer);
  Channel a = world.node(0).open_channel(1, 7, TrafficClass::Bulk);
  Channel b = world.node(1).open_channel(0, 7, TrafficClass::Bulk);

  const Bytes big = pattern(2u << 20, 5);
  send_bytes(a, big, SendMode::Later);
  EXPECT_EQ(recv_bytes(b, big.size()), big);
  EXPECT_TRUE(world.node(0).flush());

  auto& st = world.node(0).stats();
  EXPECT_GE(st.counter("stripe.transfers"), 1u);
  EXPECT_GT(st.counter("stripe.chunks"), 2u);

  // Both rails carried bytes, and the fast rail carried decisively more.
  const auto by_rail = bulk_tx_bytes_by_rail(tracer);
  ASSERT_EQ(by_rail.size(), 2u);
  EXPECT_GT(by_rail.at(1), by_rail.at(0) * 2)
      << "elan (rail 1) should out-carry tcp (rail 0)";

  // The receiver saw cross-rail interleaving: chunks above the contiguous
  // watermark landed early.
  EXPECT_GT(world.node(1).stats().counter("stripe.reassembly_ooo"), 0u);
  world.node(0).set_tracer(nullptr);
}

TEST(StripeEngine, FourRailMixDeliversExactBytes) {
  SimWorld world(2, stripe_cfg());
  world.connect(0, 1, drv::mx_myrinet_profile());
  world.connect(0, 1, drv::elan_quadrics_profile());
  world.connect(0, 1, drv::tcp_gige_profile());
  world.connect(0, 1, drv::mx_myrinet_profile());
  Channel a = world.node(0).open_channel(1, 7, TrafficClass::Bulk);
  Channel b = world.node(1).open_channel(0, 7, TrafficClass::Bulk);
  for (std::size_t i = 0; i < 4; ++i) {
    const Bytes big = pattern(768 * 1024 + i * 4096,
                              static_cast<std::uint32_t>(100 + i));
    send_bytes(a, big, SendMode::Later);
    EXPECT_EQ(recv_bytes(b, big.size()), big) << "transfer " << i;
  }
  EXPECT_TRUE(world.node(0).flush());
  EXPECT_EQ(world.node(1).stats().counter("rx.msgs_completed"), 4u);
  EXPECT_GE(world.node(0).stats().counter("stripe.transfers"), 4u);
}

// Work stealing: feed the planner a lying bandwidth hint so it overloads
// rail 0; rail 1 (equally fast in reality) drains its thin share and must
// steal queued chunks from rail 0's tail to keep the transfer balanced.
TEST(StripeEngine, IdleRailStealsFromMispredictedPlan) {
  SimWorld world(2, stripe_cfg());
  drv::Capabilities lying = drv::mx_myrinet_profile();
  lying.bandwidth_hint_bytes_per_us = lying.cost.link_bytes_per_us * 10.0;
  world.connect(0, 1, lying);                       // planner thinks: 10x
  world.connect(0, 1, drv::mx_myrinet_profile());   // reality: equal
  Channel a = world.node(0).open_channel(1, 7, TrafficClass::Bulk);
  Channel b = world.node(1).open_channel(0, 7, TrafficClass::Bulk);

  const Bytes big = pattern(4u << 20, 9);
  send_bytes(a, big, SendMode::Later);
  EXPECT_EQ(recv_bytes(b, big.size()), big);
  EXPECT_TRUE(world.node(0).flush());
  EXPECT_GT(world.node(0).stats().counter("stripe.steals"), 0u)
      << "the idle rail should rob the mispredicted queue";
}

TEST(StripeEngine, StealDisabledKeepsThePlan) {
  EngineConfig cfg = stripe_cfg();
  cfg.stripe.steal = false;
  SimWorld world(2, cfg);
  drv::Capabilities lying = drv::mx_myrinet_profile();
  lying.bandwidth_hint_bytes_per_us = lying.cost.link_bytes_per_us * 10.0;
  world.connect(0, 1, lying);
  world.connect(0, 1, drv::mx_myrinet_profile());
  Channel a = world.node(0).open_channel(1, 7, TrafficClass::Bulk);
  Channel b = world.node(1).open_channel(0, 7, TrafficClass::Bulk);
  const Bytes big = pattern(2u << 20, 9);
  send_bytes(a, big, SendMode::Later);
  EXPECT_EQ(recv_bytes(b, big.size()), big);
  EXPECT_TRUE(world.node(0).flush());
  EXPECT_EQ(world.node(0).stats().counter("stripe.steals"), 0u);
}

TEST(StripeEngine, SingleRailDegeneratesCleanly) {
  SimWorld world(2, stripe_cfg());
  world.connect(0, 1, drv::mx_myrinet_profile());
  Channel a = world.node(0).open_channel(1, 7, TrafficClass::Bulk);
  Channel b = world.node(1).open_channel(0, 7, TrafficClass::Bulk);
  const Bytes big = pattern(512 * 1024, 2);
  send_bytes(a, big, SendMode::Later);
  EXPECT_EQ(recv_bytes(b, big.size()), big);
  EXPECT_TRUE(world.node(0).flush());
  EXPECT_EQ(world.node(0).stats().counter("stripe.steals"), 0u);
}

// Striping composes with the reliability layer: killing a rail mid-transfer
// fails its queued/in-flight chunks over to the survivor, and the receiver's
// offset bookkeeping never double-counts a replayed chunk.
TEST(StripeEngine, MidTransferRailFailureCompletesOnSurvivor) {
  EngineConfig cfg = stripe_cfg();
  cfg.reliability = true;
  cfg.payload_crc = true;
  SimWorld world(2, cfg);
  world.connect(0, 1, drv::mx_myrinet_profile());
  world.connect(0, 1, drv::mx_myrinet_profile());
  Channel a = world.node(0).open_channel(1, 7, TrafficClass::Bulk);
  Channel b = world.node(1).open_channel(0, 7, TrafficClass::Bulk);

  const Bytes big = pattern(1u << 20, 3);
  send_bytes(a, big, SendMode::Later);
  Bytes out(big.size());
  IncomingMessage im = b.begin_recv();
  im.unpack(out.data(), out.size(), RecvMode::Cheaper);
  world.run_until([&] {
    return world.node(1).stats().counter("rx.bulk_chunks") >= 8;
  });
  world.fail_link(0, 1, 0);
  im.finish();
  EXPECT_EQ(out, big);
  EXPECT_TRUE(world.node(0).flush());
  EXPECT_GE(world.node(0).stats().counter("rel.rail_failovers"), 1u);
  EXPECT_EQ(world.node(1).stats().counter("rx.msgs_completed"), 1u)
      << "exactly one completion despite the replay";
}

// A transfer whose CTS arrives after a rail already died must be planned
// around the corpse (Down rails get zero shares).
TEST(StripeEngine, PlanSkipsAlreadyDeadRail) {
  EngineConfig cfg = stripe_cfg();
  cfg.reliability = true;
  SimWorld world(2, cfg);
  world.connect(0, 1, drv::mx_myrinet_profile());
  world.connect(0, 1, drv::mx_myrinet_profile());
  Channel a = world.node(0).open_channel(1, 7, TrafficClass::Bulk);
  Channel b = world.node(1).open_channel(0, 7, TrafficClass::Bulk);
  // Warm up, then kill rail 0 before the big transfer is submitted.
  send_bytes(a, pattern(64, 1));
  EXPECT_EQ(recv_bytes(b, 64), pattern(64, 1));
  world.fail_link(0, 1, 0);
  world.run();
  const Bytes big = pattern(1u << 20, 4);
  send_bytes(a, big, SendMode::Later);
  EXPECT_EQ(recv_bytes(b, big.size()), big);
  EXPECT_TRUE(world.node(0).flush());
}

// ---- randomized soak (acceptance) ------------------------------------------
//
// Per seed: 2–4 rails with heterogeneous profiles, seeded loss/duplication/
// reordering on every rail, and (for odd seeds) a scheduled mid-soak link
// failure on the last rail. Oracle: every message arrives exactly once with
// exact payload bytes, message count matches, no completion double-fires.
void run_stripe_soak(std::uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << "seed " << seed);
  std::uint64_t rng = seed * 0x9e3779b97f4a7c15ull + 1;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  EngineConfig cfg = stripe_cfg();
  cfg.reliability = true;
  cfg.payload_crc = true;
  cfg.rdv_chunk = 8 * 1024;
  cfg.stripe.min_chunk = 4 * 1024;
  SimWorld world(2, cfg);

  const drv::Capabilities profiles[] = {drv::mx_myrinet_profile(),
                                        drv::elan_quadrics_profile(),
                                        drv::tcp_gige_profile()};
  const std::size_t nrails = 2 + next() % 3;
  const bool kill_rail = (seed % 2) == 1 && nrails > 2;
  for (std::size_t r = 0; r < nrails; ++r) {
    drv::FaultPlan ab, ba;
    ab.drop = ba.drop = 0.01;
    ab.duplicate = ba.duplicate = 0.005;
    ab.reorder = ba.reorder = 0.005;
    ab.seed = next();
    ba.seed = next();
    // Early enough to land while the first bulk transfers are streaming
    // (the fabric only executes the scheduled failure if the soak's virtual
    // time actually passes it).
    if (kill_rail && r == nrails - 1)
      ab.fail_at = 100 * kNanosPerMicro + next() % (400 * kNanosPerMicro);
    world.connect(0, 1, profiles[next() % 3], ab, ba);
  }

  Channel a = world.node(0).open_channel(1, 7, TrafficClass::Bulk);
  Channel b = world.node(1).open_channel(0, 7, TrafficClass::Bulk);
  Channel a_small = world.node(0).open_channel(1, 8);
  Channel b_small = world.node(1).open_channel(0, 8);

  const std::size_t nbulk = 3 + next() % 4;
  const std::size_t nsmall = 20 + next() % 30;
  std::vector<Bytes> bulks;  // SendMode::Later references in place
  bulks.reserve(nbulk);
  std::vector<std::size_t> bulk_sizes;
  for (std::size_t i = 0; i < nbulk; ++i) {
    bulk_sizes.push_back(96 * 1024 + next() % (384 * 1024));
    bulks.push_back(
        pattern(bulk_sizes.back(), static_cast<std::uint32_t>(seed * 97 + i)));
    send_bytes(a, bulks.back(), SendMode::Later);
  }
  for (std::size_t i = 0; i < nsmall; ++i)
    send_bytes(a_small,
               pattern(48 + i % 700, static_cast<std::uint32_t>(seed + i)));

  for (std::size_t i = 0; i < nbulk; ++i)
    EXPECT_EQ(recv_bytes(b, bulk_sizes[i]),
              pattern(bulk_sizes[i], static_cast<std::uint32_t>(seed * 97 + i)))
        << "bulk " << i;
  for (std::size_t i = 0; i < nsmall; ++i)
    EXPECT_EQ(recv_bytes(b_small,
                         48 + i % 700),
              pattern(48 + i % 700, static_cast<std::uint32_t>(seed + i)))
        << "small " << i;

  EXPECT_TRUE(world.node(0).flush());
  EXPECT_TRUE(world.node(1).flush());
  auto& rx = world.node(1).stats();
  // Exactly once: completion count matches the submit count even though
  // duplicates, retransmits and (sometimes) a rail failover replayed chunks.
  EXPECT_EQ(rx.counter("rx.msgs_completed"), nbulk + nsmall);
  EXPECT_GE(world.node(0).stats().counter("stripe.transfers"), nbulk);
  if (kill_rail) {
    EXPECT_GE(world.node(0).stats().counter("rel.rail_failovers"), 1u);
  }
}

class StripeSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StripeSoak, LossyHeterogeneousRailsDeliverExactlyOnce) {
  run_stripe_soak(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StripeSoak,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace mado::core
