// Reliable delivery over faulty rails (ISSUE 2): lossy-link injection,
// ack/retransmit with exponential backoff, duplicate/out-of-order
// suppression, payload CRC repair, and rail failover.
//
// All tests run on the deterministic SimWorld fabric with seeded fault
// plans, so every loss/duplication/reordering pattern replays
// bit-identically.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

EngineConfig reliable_cfg() {
  EngineConfig cfg;
  cfg.reliability = true;
  cfg.payload_crc = true;
  return cfg;
}

drv::FaultPlan lossy_plan(std::uint64_t seed) {
  drv::FaultPlan plan;
  plan.drop = 0.01;
  plan.corrupt = 0.001;
  plan.duplicate = 0.005;
  plan.reorder = 0.005;
  plan.seed = seed;
  return plan;
}

class ReliabilityTest : public ::testing::Test {
 protected:
  void build(const EngineConfig& cfg, const drv::FaultPlan& plan_ab,
             const drv::FaultPlan& plan_ba,
             const drv::Capabilities& caps = drv::test_profile()) {
    world_ = std::make_unique<SimWorld>(2, cfg);
    world_->connect(0, 1, caps, plan_ab, plan_ba);
    a_ = world_->node(0).open_channel(1, 7);
    b_ = world_->node(1).open_channel(0, 7);
  }

  std::unique_ptr<SimWorld> world_;
  Channel a_, b_;
};

// Acceptance: 1% drop + 0.1% corrupt + duplication + reordering still
// delivers every message exactly once, in per-channel order, with the
// retransmit machinery visibly doing work.
TEST_F(ReliabilityTest, LossyEagerDeliversExactlyOnceInOrder) {
  build(reliable_cfg(), lossy_plan(11), lossy_plan(22));
  constexpr std::size_t kMsgs = 300;
  std::vector<SendHandle> handles;
  handles.reserve(kMsgs);
  for (std::size_t i = 0; i < kMsgs; ++i) {
    const std::size_t n = 64 + (i % 7) * 199;
    handles.push_back(
        send_bytes(a_, pattern(n, static_cast<std::uint32_t>(i))));
  }
  for (std::size_t i = 0; i < kMsgs; ++i) {
    const std::size_t n = 64 + (i % 7) * 199;
    EXPECT_EQ(recv_bytes(b_, n), pattern(n, static_cast<std::uint32_t>(i)))
        << "message " << i;
  }
  for (const SendHandle& h : handles) EXPECT_TRUE(world_->node(0).wait_send(h));
  EXPECT_TRUE(world_->node(0).flush());

  // The wire really was faulty, and the reliability layer really repaired it.
  const drv::FaultStats& faults = world_->endpoint(0, 1, 0).fault_stats();
  EXPECT_GT(faults.dropped, 0u);
  auto& tx = world_->node(0).stats();
  auto& rx = world_->node(1).stats();
  EXPECT_GT(tx.counter("rel.retransmits"), 0u);
  EXPECT_GT(tx.counter("rel.acks_rx"), 0u);
  EXPECT_GT(rx.counter("rel.acks_tx"), 0u);
  // Exactly once: the receiver completed precisely kMsgs messages even
  // though duplicates and retransmits arrived.
  EXPECT_EQ(rx.counter("rx.msgs_completed"), kMsgs);
}

// Rendezvous bulk (stream 1) under the same faults: RTS/CTS control and the
// chunk stream are both retransmitted until the transfer completes.
TEST_F(ReliabilityTest, LossyRendezvousDeliversExactlyOnce) {
  EngineConfig cfg = reliable_cfg();
  cfg.rdv_chunk = 4096;
  build(cfg, lossy_plan(33), lossy_plan(44));
  const Bytes big = pattern(256 * 1024, 9);
  send_bytes(a_, big, SendMode::Later);
  EXPECT_EQ(recv_bytes(b_, big.size()), big);
  EXPECT_TRUE(world_->node(0).flush());
  EXPECT_EQ(world_->node(1).stats().counter("rx.msgs_completed"), 1u);
  EXPECT_GT(world_->node(0).stats().counter("rel.retransmits"), 0u);
}

// A flipped payload bit is caught by the payload CRC (or, if it lands in
// the header, by the header CRC), the packet is dropped, and retransmission
// repairs the stream — the application sees clean bytes.
TEST_F(ReliabilityTest, CorruptedPayloadIsDroppedAndRepaired) {
  drv::FaultPlan plan;
  plan.corrupt = 0.10;
  plan.seed = 55;
  build(reliable_cfg(), plan, {});
  constexpr std::size_t kMsgs = 200;
  for (std::size_t i = 0; i < kMsgs; ++i)
    send_bytes(a_, pattern(512, static_cast<std::uint32_t>(i)));
  for (std::size_t i = 0; i < kMsgs; ++i)
    EXPECT_EQ(recv_bytes(b_, 512), pattern(512, static_cast<std::uint32_t>(i)));
  EXPECT_TRUE(world_->node(0).flush());
  const drv::FaultStats& faults = world_->endpoint(0, 1, 0).fault_stats();
  EXPECT_GT(faults.corrupted, 0u);
  auto& rx = world_->node(1).stats();
  // Every corrupted packet was rejected by one of the two CRC layers.
  EXPECT_GT(rx.counter("rel.payload_crc_drops") + rx.counter("rx.malformed"),
            0u);
  EXPECT_EQ(rx.counter("rx.msgs_completed"), kMsgs);
}

// Duplicated and reordered packets are suppressed on RX: the go-back-N
// receiver only ever accepts the next expected sequence.
TEST_F(ReliabilityTest, DuplicationAndReorderingAreSuppressed) {
  drv::FaultPlan plan;
  plan.duplicate = 0.2;
  plan.reorder = 0.2;
  plan.seed = 66;
  build(reliable_cfg(), plan, {});
  constexpr std::size_t kMsgs = 150;
  for (std::size_t i = 0; i < kMsgs; ++i)
    send_bytes(a_, pattern(128, static_cast<std::uint32_t>(i)));
  for (std::size_t i = 0; i < kMsgs; ++i)
    EXPECT_EQ(recv_bytes(b_, 128), pattern(128, static_cast<std::uint32_t>(i)));
  EXPECT_TRUE(world_->node(0).flush());
  const drv::FaultStats& faults = world_->endpoint(0, 1, 0).fault_stats();
  EXPECT_GT(faults.duplicated, 0u);
  auto& rx = world_->node(1).stats();
  EXPECT_GT(rx.counter("rel.dup_drops") + rx.counter("rel.ooo_drops"), 0u);
  EXPECT_EQ(rx.counter("rx.msgs_completed"), kMsgs);
}

// Acceptance: killing one of two rails mid-stream completes the transfer on
// the survivor. The un-acked chunks on the dead rail are replayed.
TEST_F(ReliabilityTest, FailoverMidStreamCompletesOnSurvivor) {
  EngineConfig cfg = reliable_cfg();
  cfg.rdv_chunk = 16 * 1024;
  world_ = std::make_unique<SimWorld>(2, cfg);
  world_->connect(0, 1, drv::mx_myrinet_profile());
  world_->connect(0, 1, drv::mx_myrinet_profile());
  a_ = world_->node(0).open_channel(1, 7, TrafficClass::Bulk);
  b_ = world_->node(1).open_channel(0, 7, TrafficClass::Bulk);

  const Bytes big = pattern(1 << 20, 3);
  send_bytes(a_, big, SendMode::Later);
  Bytes out(big.size());
  IncomingMessage im = b_.begin_recv();
  im.unpack(out.data(), out.size(), RecvMode::Cheaper);
  // Let the split bulk stream make real progress on both rails...
  world_->run_until([&] {
    return world_->node(1).stats().counter("rx.bulk_chunks") >= 8;
  });
  // ...then pull the cable on rail 0.
  world_->fail_link(0, 1, 0);
  im.finish();
  EXPECT_EQ(out, big);
  EXPECT_TRUE(world_->node(0).flush());
  EXPECT_GE(world_->node(0).stats().counter("rel.rail_failovers"), 1u);

  // Post-failover traffic routes to the survivor transparently.
  send_bytes(a_, pattern(256, 42));
  EXPECT_EQ(recv_bytes(b_, 256), pattern(256, 42));
}

// Eager backlog + in-flight packets fail over too: kill the rail right
// after posting, before anything is acknowledged.
TEST_F(ReliabilityTest, EagerBacklogFailsOverInOrder) {
  EngineConfig cfg = reliable_cfg();
  world_ = std::make_unique<SimWorld>(2, cfg);
  world_->connect(0, 1, drv::test_profile());
  world_->connect(0, 1, drv::test_profile());
  a_ = world_->node(0).open_channel(1, 7);
  b_ = world_->node(1).open_channel(0, 7);
  constexpr std::size_t kMsgs = 40;
  for (std::size_t i = 0; i < kMsgs; ++i)
    send_bytes(a_, pattern(96, static_cast<std::uint32_t>(i)));
  world_->fail_link(0, 1, 0);  // in-flight packets are lost on the wire
  for (std::size_t i = 0; i < kMsgs; ++i)
    EXPECT_EQ(recv_bytes(b_, 96), pattern(96, static_cast<std::uint32_t>(i)))
        << "message " << i;
  EXPECT_TRUE(world_->node(0).flush());
  EXPECT_GE(world_->node(0).stats().counter("rel.rail_failovers"), 1u);
}

// Snapshot rail state stays consistent with the failure machinery
// (satellite: RailInfo state / unacked bookkeeping).
TEST_F(ReliabilityTest, SnapshotReportsRailStates) {
  EngineConfig cfg = reliable_cfg();
  world_ = std::make_unique<SimWorld>(2, cfg);
  world_->connect(0, 1, drv::test_profile());
  world_->connect(0, 1, drv::test_profile());
  a_ = world_->node(0).open_channel(1, 7);
  b_ = world_->node(1).open_channel(0, 7);
  send_bytes(a_, pattern(64, 1));
  EXPECT_EQ(recv_bytes(b_, 64), pattern(64, 1));

  Engine::Snapshot before = world_->node(0).snapshot();
  ASSERT_EQ(before.peers.size(), 1u);
  ASSERT_EQ(before.peers[0].rails.size(), 2u);
  for (const auto& ri : before.peers[0].rails)
    EXPECT_EQ(ri.state, RailState::Up);

  world_->fail_link(0, 1, 0);
  world_->run();

  for (NodeId n = 0; n < 2; ++n) {
    Engine::Snapshot after = world_->node(n).snapshot();
    ASSERT_EQ(after.peers[0].rails.size(), 2u);
    EXPECT_EQ(after.peers[0].rails[0].state, RailState::Down);
    EXPECT_EQ(after.peers[0].rails[1].state, RailState::Up);
    EXPECT_EQ(after.peers[0].rails[0].unacked_packets, 0u)
        << "dead rail must hold no un-acked traffic after failover";
    EXPECT_NE(after.to_string().find("state=down"), std::string::npos);
  }

  // The dead rail never carries new traffic.
  send_bytes(a_, pattern(64, 2));
  EXPECT_EQ(recv_bytes(b_, 64), pattern(64, 2));
  EXPECT_TRUE(world_->node(0).flush());
}

// With every rail dead and no survivor, sends fail fast instead of hanging:
// wait_send() returns false, send_failed() turns true, flush() still
// terminates.
TEST_F(ReliabilityTest, AllRailsDeadFailsSendsFast) {
  build(reliable_cfg(), {}, {});
  send_bytes(a_, pattern(64, 1));
  EXPECT_EQ(recv_bytes(b_, 64), pattern(64, 1));

  world_->fail_link(0, 1, 0);
  world_->run();

  SendHandle h = send_bytes(a_, pattern(64, 2));
  EXPECT_FALSE(world_->node(0).wait_send(h));
  EXPECT_TRUE(world_->node(0).send_failed(h));
  EXPECT_TRUE(world_->node(0).flush());
  EXPECT_GT(world_->node(0).stats().counter("rel.failed_sends"), 0u);
}

// A black-hole link (100% loss one way) exhausts the retry budget: the RTO
// backs off exponentially, the rail degrades, and the engine finally gives
// up and declares it Down.
TEST_F(ReliabilityTest, RetryBudgetExhaustionFailsRail) {
  drv::FaultPlan black_hole;
  black_hole.drop = 1.0;
  black_hole.seed = 77;
  build(reliable_cfg(), black_hole, {});
  SendHandle h = send_bytes(a_, pattern(256, 1));
  EXPECT_FALSE(world_->node(0).wait_send(h));
  EXPECT_TRUE(world_->node(0).send_failed(h));
  auto& st = world_->node(0).stats();
  EXPECT_GE(st.counter("rel.rto_backoffs"),
            world_->node(0).config().rel_max_retries);
  EXPECT_GT(st.counter("rel.retransmits"), 0u);
  Engine::Snapshot snap = world_->node(0).snapshot();
  EXPECT_EQ(snap.peers[0].rails[0].state, RailState::Down);
  EXPECT_TRUE(world_->node(0).flush());
}

// Randomized soak (satellite): two lossy rails, three channels with mixed
// eager/rendezvous sizes, bidirectional traffic, and a scheduled
// mid-transfer link failure on rail 1 (FaultPlan::fail_at). Everything must
// arrive exactly once, in per-channel order.
TEST_F(ReliabilityTest, RandomizedLossySoakWithScheduledFailover) {
  EngineConfig cfg = reliable_cfg();
  cfg.rdv_chunk = 8 * 1024;
  world_ = std::make_unique<SimWorld>(2, cfg);
  drv::FaultPlan heavy_ab = lossy_plan(101);
  drv::FaultPlan heavy_ba = lossy_plan(102);
  heavy_ab.drop = heavy_ba.drop = 0.02;
  world_->connect(0, 1, drv::mx_myrinet_profile(), heavy_ab, heavy_ba);
  drv::FaultPlan dying = lossy_plan(103);
  dying.fail_at = 2 * kNanosPerMilli;  // cable pulled mid-soak
  world_->connect(0, 1, drv::mx_myrinet_profile(), dying, lossy_plan(104));

  Channel a1 = world_->node(0).open_channel(1, 7);
  Channel b1 = world_->node(1).open_channel(0, 7);
  Channel a2 = world_->node(0).open_channel(1, 8, TrafficClass::Bulk);
  Channel b2 = world_->node(1).open_channel(0, 8, TrafficClass::Bulk);
  Channel a3 = world_->node(0).open_channel(1, 9);
  Channel b3 = world_->node(1).open_channel(0, 9);

  constexpr std::size_t kSmall = 120;
  constexpr std::size_t kBulk = 12;
  constexpr std::size_t kBack = 60;
  for (std::size_t i = 0; i < kSmall; ++i) {
    const std::size_t n = 32 + (i % 11) * 331;
    send_bytes(a1, pattern(n, static_cast<std::uint32_t>(1000 + i)));
  }
  std::vector<Bytes> bulk_payloads;  // SendMode::Later references in place
  bulk_payloads.reserve(kBulk);
  for (std::size_t i = 0; i < kBulk; ++i) {
    bulk_payloads.push_back(
        pattern(48 * 1024, static_cast<std::uint32_t>(2000 + i)));
    send_bytes(a2, bulk_payloads.back(), SendMode::Later);
  }
  for (std::size_t i = 0; i < kBack; ++i)
    send_bytes(b3, pattern(512, static_cast<std::uint32_t>(3000 + i)));

  for (std::size_t i = 0; i < kSmall; ++i) {
    const std::size_t n = 32 + (i % 11) * 331;
    EXPECT_EQ(recv_bytes(b1, n),
              pattern(n, static_cast<std::uint32_t>(1000 + i)))
        << "small " << i;
  }
  for (std::size_t i = 0; i < kBulk; ++i)
    EXPECT_EQ(recv_bytes(b2, 48 * 1024),
              pattern(48 * 1024, static_cast<std::uint32_t>(2000 + i)))
        << "bulk " << i;
  for (std::size_t i = 0; i < kBack; ++i)
    EXPECT_EQ(recv_bytes(a3, 512),
              pattern(512, static_cast<std::uint32_t>(3000 + i)))
        << "back " << i;

  EXPECT_TRUE(world_->node(0).flush());
  EXPECT_TRUE(world_->node(1).flush());
  auto& s0 = world_->node(0).stats();
  auto& s1 = world_->node(1).stats();
  EXPECT_EQ(s1.counter("rx.msgs_completed"), kSmall + kBulk);
  EXPECT_EQ(s0.counter("rx.msgs_completed"), kBack);
  EXPECT_GT(s0.counter("rel.retransmits") + s1.counter("rel.retransmits"), 0u);
  EXPECT_GE(s0.counter("rel.rail_failovers") + s1.counter("rel.rail_failovers"),
            1u);
  // Rail 1 really died on both sides.
  EXPECT_EQ(world_->node(0).snapshot().peers[0].rails[1].state,
            RailState::Down);
  EXPECT_EQ(world_->node(1).snapshot().peers[0].rails[1].state,
            RailState::Down);
}

// Reliability off (the default) must be wire-compatible with itself and pay
// nothing: no rel counters move on a clean link.
TEST_F(ReliabilityTest, ReliabilityOffCostsNothingOnCleanLink) {
  EngineConfig cfg;  // defaults: reliability off
  build(cfg, {}, {});
  for (std::size_t i = 0; i < 50; ++i)
    send_bytes(a_, pattern(256, static_cast<std::uint32_t>(i)));
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_EQ(recv_bytes(b_, 256), pattern(256, static_cast<std::uint32_t>(i)));
  EXPECT_TRUE(world_->node(0).flush());
  auto& st = world_->node(0).stats();
  EXPECT_EQ(st.counter("rel.retransmits"), 0u);
  EXPECT_EQ(st.counter("rel.acks_rx"), 0u);
  EXPECT_EQ(world_->node(1).stats().counter("rel.acks_tx"), 0u);
}

}  // namespace
}  // namespace mado::core
