// Per-message latency instrumentation: the engine records, per traffic
// class, submit→first-transmit hold time (lat.hold.*) and submit→complete
// time (lat.complete.*), plus rendezvous handshake/completion latency. All
// in virtual time here, so the distributions are deterministic.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

TEST(LatencyStats, EagerMessagesFeedHoldAndCompleteHistograms) {
  SimWorld w(2);
  w.connect(0, 1, drv::test_profile());
  Channel a = w.node(0).open_channel(1, 7);
  Channel b = w.node(1).open_channel(0, 7);
  constexpr int kMsgs = 16;
  for (int i = 0; i < kMsgs; ++i) send_bytes(a, pattern(64));
  for (int i = 0; i < kMsgs; ++i) recv_bytes(b, 64);
  ASSERT_TRUE(w.node(0).flush());

  const auto& st = w.node(0).stats();
  const auto* hold = st.histogram("lat.hold.small_eager");
  ASSERT_NE(hold, nullptr);
  EXPECT_EQ(hold->count(), static_cast<std::uint64_t>(kMsgs));
  const auto* complete = st.histogram("lat.complete.small_eager");
  ASSERT_NE(complete, nullptr);
  EXPECT_EQ(complete->count(), static_cast<std::uint64_t>(kMsgs));
  // Completion includes the wire round of the packet; it cannot be faster
  // than the optimizer hold for the same workload.
  EXPECT_GE(complete->quantile_upper_bound(1.0),
            hold->quantile_upper_bound(0.0));
}

TEST(LatencyStats, HoldTimeGrowsWhenNicIsBusy) {
  // A burst behind a busy NIC waits in the backlog; the tail of the hold
  // distribution must exceed the (zero) hold of an uncontended message.
  SimWorld w(2);
  w.connect(0, 1, drv::test_profile());
  Channel a = w.node(0).open_channel(1, 7);
  Channel b = w.node(1).open_channel(0, 7);
  for (int i = 0; i < 32; ++i) send_bytes(a, pattern(512));
  for (int i = 0; i < 32; ++i) recv_bytes(b, 512);
  ASSERT_TRUE(w.node(0).flush());
  const auto* hold = w.node(0).stats().histogram("lat.hold.small_eager");
  ASSERT_NE(hold, nullptr);
  // First message leaves with ~0 hold; later ones queued behind the wire.
  EXPECT_GT(hold->quantile_upper_bound(1.0), 1u);
}

TEST(LatencyStats, RendezvousHandshakeAndCompletionLatency) {
  SimWorld w(2);
  w.connect(0, 1, drv::test_profile());
  Channel a = w.node(0).open_channel(1, 7, TrafficClass::Bulk);
  Channel b = w.node(1).open_channel(0, 7, TrafficClass::Bulk);
  // Later mode is zero-copy: the buffer must outlive the transfer.
  const Bytes data = pattern(128 * 1024);
  send_bytes(a, data, SendMode::Later);
  recv_bytes(b, data.size());
  ASSERT_TRUE(w.node(0).flush());

  const auto& st = w.node(0).stats();
  const auto* handshake = st.histogram("lat.rdv_handshake");
  ASSERT_NE(handshake, nullptr);
  EXPECT_EQ(handshake->count(), 1u);
  const auto* done = st.histogram("lat.rdv_complete");
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->count(), 1u);
  // RTS→CTS is a strict prefix of RTS→all-chunks-acked.
  EXPECT_LE(handshake->sum(), done->sum());
  // The message rode a Bulk-class channel, so its completion latency lands
  // in the bulk histogram, not the eager one.
  const auto* bulk = st.histogram("lat.complete.bulk");
  ASSERT_NE(bulk, nullptr);
  EXPECT_EQ(bulk->count(), 1u);
  EXPECT_EQ(st.histogram("lat.complete.small_eager"), nullptr);
}

TEST(LatencyStats, ClassesAreSplit) {
  // Completion latency is keyed by the channel's traffic class: one message
  // per class-typed channel must land in exactly its own histogram.
  SimWorld w(2);
  w.connect(0, 1, drv::test_profile());
  Channel a1 = w.node(0).open_channel(1, 7, TrafficClass::SmallEager);
  Channel b1 = w.node(1).open_channel(0, 7, TrafficClass::SmallEager);
  Channel a2 = w.node(0).open_channel(1, 8, TrafficClass::Bulk);
  Channel b2 = w.node(1).open_channel(0, 8, TrafficClass::Bulk);
  send_bytes(a1, pattern(64));
  recv_bytes(b1, 64);
  const Bytes big = pattern(96 * 1024);  // Later mode: buffer must outlive
  send_bytes(a2, big, SendMode::Later);
  recv_bytes(b2, big.size());
  ASSERT_TRUE(w.node(0).flush());
  const auto& st = w.node(0).stats();
  const auto* eager = st.histogram("lat.complete.small_eager");
  ASSERT_NE(eager, nullptr);
  EXPECT_EQ(eager->count(), 1u);
  const auto* bulk = st.histogram("lat.complete.bulk");
  ASSERT_NE(bulk, nullptr);
  EXPECT_EQ(bulk->count(), 1u);
}

}  // namespace
}  // namespace mado::core
