// One-sided put/get tests: window exposure, eager and rendezvous puts with
// remote-completion acks, gets (eager and bulk reply), bounds checking,
// and mixing one-sided traffic with two-sided channels.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

// test_profile: rdv threshold 4096.
class EngineRmaTest : public ::testing::Test {
 protected:
  void SetUp() override { build({}); }

  void build(EngineConfig cfg) {
    world_ = std::make_unique<SimWorld>(2, cfg);
    world_->connect(0, 1, drv::test_profile());
    window_.assign(64 * 1024, Byte{0});
    world_->node(1).expose_window(5, window_.data(), window_.size());
  }

  std::unique_ptr<SimWorld> world_;
  Bytes window_;
};

TEST_F(EngineRmaTest, EagerPutWritesWindow) {
  const Bytes data = pattern(256);
  SendHandle h = world_->node(0).rma_put(1, 5, 100, data.data(), data.size());
  EXPECT_TRUE(world_->node(0).wait_send(h));
  EXPECT_EQ(Bytes(window_.begin() + 100, window_.begin() + 356), data);
  EXPECT_EQ(world_->node(0).stats().counter("rma.puts_completed"), 1u);
  EXPECT_EQ(world_->node(1).stats().counter("rx.rma_puts"), 1u);
}

TEST_F(EngineRmaTest, PutCompletionMeansRemoteCompletion) {
  const Bytes data = pattern(64);
  SendHandle h = world_->node(0).rma_put(1, 5, 0, data.data(), data.size());
  EXPECT_FALSE(world_->node(0).send_done(h));
  EXPECT_TRUE(world_->node(0).wait_send(h));
  // Handle completed → the bytes are already visible in the window.
  EXPECT_EQ(Bytes(window_.begin(), window_.begin() + 64), data);
}

TEST_F(EngineRmaTest, LargePutUsesRendezvousBulkPath) {
  const Bytes data = pattern(32 * 1024);  // >= 4096 threshold
  SendHandle h = world_->node(0).rma_put(1, 5, 0, data.data(), data.size());
  EXPECT_TRUE(world_->node(0).wait_send(h));
  EXPECT_EQ(Bytes(window_.begin(), window_.begin() + 32 * 1024), data);
  EXPECT_GE(world_->node(1).stats().counter("rx.bulk_chunks"), 1u);
  EXPECT_EQ(world_->node(1).stats().counter("rx.rma_put_rts"), 1u);
  // No application receive was ever posted on node 1.
  EXPECT_EQ(world_->node(1).stats().counter("rx.msgs_completed"), 0u);
}

TEST_F(EngineRmaTest, EagerGetReadsWindow) {
  const Bytes data = pattern(512, 9);
  std::copy(data.begin(), data.end(), window_.begin() + 1000);
  Bytes out(512);
  SendHandle h = world_->node(0).rma_get(1, 5, 1000, out.data(), out.size());
  EXPECT_TRUE(world_->node(0).wait_send(h));
  EXPECT_EQ(out, data);
  EXPECT_EQ(world_->node(1).stats().counter("rx.rma_gets"), 1u);
}

TEST_F(EngineRmaTest, LargeGetUsesRendezvousReply) {
  const Bytes data = pattern(48 * 1024, 3);
  std::copy(data.begin(), data.end(), window_.begin());
  Bytes out(data.size());
  SendHandle h = world_->node(0).rma_get(1, 5, 0, out.data(), out.size());
  EXPECT_TRUE(world_->node(0).wait_send(h));
  EXPECT_EQ(out, data);
  EXPECT_GE(world_->node(0).stats().counter("rx.bulk_chunks"), 1u);
}

TEST_F(EngineRmaTest, PutThenGetRoundTrip) {
  const Bytes data = pattern(2048, 4);
  world_->node(0).wait_send(
      world_->node(0).rma_put(1, 5, 4096, data.data(), data.size()));
  Bytes out(2048);
  world_->node(0).wait_send(
      world_->node(0).rma_get(1, 5, 4096, out.data(), out.size()));
  EXPECT_EQ(out, data);
}

TEST_F(EngineRmaTest, ManyConcurrentPuts) {
  constexpr int kN = 16;
  std::vector<Bytes> bufs;
  std::vector<SendHandle> handles;
  for (int i = 0; i < kN; ++i) {
    bufs.push_back(pattern(128, static_cast<std::uint32_t>(i)));
    handles.push_back(world_->node(0).rma_put(
        1, 5, static_cast<std::uint64_t>(i) * 128, bufs.back().data(), 128));
  }
  for (auto& h : handles) EXPECT_TRUE(world_->node(0).wait_send(h));
  for (int i = 0; i < kN; ++i)
    EXPECT_EQ(Bytes(window_.begin() + i * 128,
                    window_.begin() + (i + 1) * 128),
              bufs[static_cast<std::size_t>(i)]);
}

TEST_F(EngineRmaTest, PutsToSameRegionKeepOrder) {
  // Puts travel one flow (per-flow FIFO) — the last write wins.
  Bytes a = pattern(64, 1), b = pattern(64, 2);
  world_->node(0).rma_put(1, 5, 0, a.data(), a.size());
  SendHandle h = world_->node(0).rma_put(1, 5, 0, b.data(), b.size());
  EXPECT_TRUE(world_->node(0).wait_send(h));
  world_->run();
  EXPECT_EQ(Bytes(window_.begin(), window_.begin() + 64), b);
}

TEST_F(EngineRmaTest, OutOfBoundsPutRejectedAtTarget) {
  const Bytes data = pattern(128);
  SendHandle h = world_->node(0).rma_put(1, 5, window_.size() - 64,
                                         data.data(), data.size());
  world_->run();
  // The target dropped the malformed access; the ack never comes.
  EXPECT_FALSE(world_->node(0).send_done(h));
  EXPECT_EQ(world_->node(1).stats().counter("rx.malformed"), 1u);
}

TEST_F(EngineRmaTest, UnknownWindowRejectedAtTarget) {
  const Bytes data = pattern(16);
  world_->node(0).rma_put(1, 99, 0, data.data(), data.size());
  world_->run();
  EXPECT_EQ(world_->node(1).stats().counter("rx.malformed"), 1u);
}

TEST_F(EngineRmaTest, DuplicateWindowExposureRejected) {
  EXPECT_THROW(world_->node(1).expose_window(5, window_.data(), 16),
               CheckError);
}

TEST_F(EngineRmaTest, RmaAggregatesWithTwoSidedTraffic) {
  Channel a = world_->node(0).open_channel(1, 7);
  Channel b = world_->node(1).open_channel(0, 7);
  // Interleave sends and puts while the NIC is busy: they should share
  // packets (all are small eager fragments on the same rail).
  const Bytes msg = pattern(64, 1), put = pattern(64, 2);
  for (int i = 0; i < 10; ++i) {
    send_bytes(a, msg);
    world_->node(0).rma_put(1, 5, static_cast<std::uint64_t>(i) * 64,
                            put.data(), put.size());
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(recv_bytes(b, 64), msg);
  world_->node(0).flush();
  const auto* h = world_->node(0).stats().histogram("tx.pkt_frags");
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->quantile_upper_bound(1.0), 3u);  // mixed packets existed
}

TEST_F(EngineRmaTest, GetChunkingRespectsConfig) {
  EngineConfig cfg;
  cfg.rdv_chunk = 1024;
  build(cfg);
  const Bytes data = pattern(8 * 1024, 5);
  std::copy(data.begin(), data.end(), window_.begin());
  Bytes out(data.size());
  SendHandle h = world_->node(0).rma_get(1, 5, 0, out.data(), out.size());
  EXPECT_TRUE(world_->node(0).wait_send(h));
  EXPECT_EQ(out, data);
  EXPECT_EQ(world_->node(0).stats().counter("rx.bulk_chunks"), 8u);
}

TEST_F(EngineRmaTest, PutGetOverSockets) {
  SocketWorld sw({}, drv::mx_myrinet_profile());
  Bytes win(1 << 20, Byte{0});
  sw.node(1).expose_window(3, win.data(), win.size());
  const Bytes data = pattern(256 * 1024, 6);
  SendHandle h = sw.node(0).rma_put(1, 3, 0, data.data(), data.size());
  EXPECT_TRUE(sw.node(0).wait_send(h));
  Bytes out(data.size());
  SendHandle g = sw.node(0).rma_get(1, 3, 0, out.data(), out.size());
  EXPECT_TRUE(sw.node(0).wait_send(g));
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace mado::core
