#include "core/trace.hpp"

#include <gtest/gtest.h>

#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

TraceRecord make_rec(Nanos t, TraceEvent ev) {
  TraceRecord r;
  r.time = t;
  r.event = ev;
  return r;
}

TEST(Tracer, RecordsInOrder) {
  Tracer tr(16);
  tr.record(make_rec(1, TraceEvent::MsgSubmit));
  tr.record(make_rec(2, TraceEvent::PacketTx));
  auto snap = tr.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].time, 1u);
  EXPECT_EQ(snap[1].event, TraceEvent::PacketTx);
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(Tracer, RingOverwritesOldest) {
  Tracer tr(4);
  for (Nanos t = 0; t < 10; ++t) tr.record(make_rec(t, TraceEvent::PacketTx));
  auto snap = tr.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].time, 6u);
  EXPECT_EQ(snap[3].time, 9u);
  EXPECT_EQ(tr.dropped(), 6u);
}

TEST(Tracer, ExactlyAtCapacityDropsNothing) {
  // Wraparound boundary: capacity records fit exactly; the (capacity+1)th
  // is the first to evict.
  Tracer tr(4);
  for (Nanos t = 0; t < 4; ++t) tr.record(make_rec(t, TraceEvent::PacketTx));
  auto snap = tr.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(tr.dropped(), 0u);
  EXPECT_EQ(snap[0].time, 0u);
  EXPECT_EQ(snap[3].time, 3u);

  tr.record(make_rec(4, TraceEvent::PacketTx));
  snap = tr.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(tr.dropped(), 1u);
  EXPECT_EQ(snap[0].time, 1u);  // oldest record evicted, order preserved
  EXPECT_EQ(snap[3].time, 4u);
}

TEST(Tracer, ClearResets) {
  Tracer tr(4);
  tr.record(make_rec(1, TraceEvent::MsgSubmit));
  tr.clear();
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_TRUE(tr.snapshot().empty());
}

TEST(Tracer, ZeroCapacityRejected) { EXPECT_THROW(Tracer(0), CheckError); }

TEST(Tracer, EventNamesDistinct) {
  EXPECT_STREQ(Tracer::event_name(TraceEvent::PacketTx), "PacketTx");
  EXPECT_STREQ(Tracer::event_name(TraceEvent::RdvCts), "RdvCts");
  EXPECT_STREQ(Tracer::event_name(TraceEvent::NagleWait), "NagleWait");
}

TEST(Tracer, RenderContainsFields) {
  TraceRecord r;
  r.time = 1500;
  r.event = TraceEvent::PacketTx;
  r.node = 0;
  r.peer = 1;
  r.a = 42;
  const std::string line = Tracer::render(r);
  EXPECT_NE(line.find("PacketTx"), std::string::npos);
  EXPECT_NE(line.find("1.500us"), std::string::npos);
  EXPECT_NE(line.find("a=42"), std::string::npos);
}

TEST(TracerEngine, EngineEmitsFullMessageLifecycle) {
  SimWorld w(2);
  w.connect(0, 1, drv::test_profile());
  Tracer tr;
  w.node(0).set_tracer(&tr);
  w.node(1).set_tracer(&tr);
  Channel a = w.node(0).open_channel(1, 7);
  Channel b = w.node(1).open_channel(0, 7);
  send_bytes(a, pattern(64));
  recv_bytes(b, 64);

  bool submit = false, decision = false, tx = false, rx = false;
  for (const auto& rec : tr.snapshot()) {
    submit |= rec.event == TraceEvent::MsgSubmit;
    decision |= rec.event == TraceEvent::Decision;
    tx |= rec.event == TraceEvent::PacketTx;
    rx |= rec.event == TraceEvent::PacketRx;
  }
  EXPECT_TRUE(submit && decision && tx && rx);
}

TEST(TracerEngine, RendezvousEventsTraced) {
  SimWorld w(2);
  w.connect(0, 1, drv::test_profile());
  Tracer tr;
  w.node(0).set_tracer(&tr);
  w.node(1).set_tracer(&tr);
  Channel a = w.node(0).open_channel(1, 7);
  Channel b = w.node(1).open_channel(0, 7);
  send_bytes(a, pattern(16 * 1024));
  recv_bytes(b, 16 * 1024);
  bool cts = false, bulk_tx = false, bulk_rx = false;
  for (const auto& rec : tr.snapshot()) {
    cts |= rec.event == TraceEvent::RdvCts;
    bulk_tx |= rec.event == TraceEvent::BulkTx;
    bulk_rx |= rec.event == TraceEvent::BulkRx;
  }
  EXPECT_TRUE(cts && bulk_tx && bulk_rx);
}

TEST(TracerEngine, TimestampsMonotonicInVirtualTime) {
  SimWorld w(2);
  w.connect(0, 1, drv::test_profile());
  Tracer tr;
  w.node(0).set_tracer(&tr);
  Channel a = w.node(0).open_channel(1, 7);
  w.node(1).open_channel(0, 7);
  for (int i = 0; i < 5; ++i) send_bytes(a, pattern(64));
  w.node(0).flush();
  Nanos last = 0;
  for (const auto& rec : tr.snapshot()) {
    EXPECT_GE(rec.time, last);
    last = rec.time;
  }
}

TEST(TracerEngine, DetachStopsEmission) {
  SimWorld w(2);
  w.connect(0, 1, drv::test_profile());
  Tracer tr;
  w.node(0).set_tracer(&tr);
  w.node(0).set_tracer(nullptr);
  Channel a = w.node(0).open_channel(1, 7);
  w.node(1).open_channel(0, 7);
  send_bytes(a, pattern(64));
  w.run();
  EXPECT_EQ(tr.size(), 0u);
}

}  // namespace
}  // namespace mado::core
