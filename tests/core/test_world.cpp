#include "core/world.hpp"

#include <gtest/gtest.h>

#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

TEST(SimWorld, RejectsEmpty) {
  EXPECT_THROW(SimWorld(std::vector<EngineConfig>{}), CheckError);
}

TEST(SimWorld, NodesGetSequentialIds) {
  SimWorld w(3);
  EXPECT_EQ(w.size(), 3u);
  for (NodeId i = 0; i < 3; ++i) EXPECT_EQ(w.node(i).self(), i);
}

TEST(SimWorld, PerNodeConfigs) {
  EngineConfig fifo_cfg;
  fifo_cfg.strategy = "fifo";
  EngineConfig aggreg_cfg;
  aggreg_cfg.strategy = "aggreg";
  SimWorld w({fifo_cfg, aggreg_cfg});
  EXPECT_EQ(w.node(0).strategy_name(), "fifo");
  EXPECT_EQ(w.node(1).strategy_name(), "aggreg");
}

TEST(SimWorld, ConnectRejectsSelfAndOutOfRange) {
  SimWorld w(2);
  EXPECT_THROW(w.connect(0, 0, drv::test_profile()), CheckError);
  EXPECT_THROW(w.connect(0, 5, drv::test_profile()), CheckError);
}

TEST(SimWorld, ThreeNodeStar) {
  // Node 0 talks to nodes 1 and 2 over separate links; multi-peer routing
  // must keep the streams apart.
  SimWorld w(3);
  w.connect(0, 1, drv::test_profile());
  w.connect(0, 2, drv::test_profile());
  Channel to1 = w.node(0).open_channel(1, 7);
  Channel to2 = w.node(0).open_channel(2, 7);
  Channel at1 = w.node(1).open_channel(0, 7);
  Channel at2 = w.node(2).open_channel(0, 7);
  send_bytes(to1, pattern(64, 1));
  send_bytes(to2, pattern(64, 2));
  EXPECT_EQ(recv_bytes(at1, 64), pattern(64, 1));
  EXPECT_EQ(recv_bytes(at2, 64), pattern(64, 2));
}

TEST(SimWorld, RingOfFourAllPairsCommunicate) {
  SimWorld w(4);
  for (NodeId i = 0; i < 4; ++i)
    w.connect(i, (i + 1) % 4, drv::test_profile());
  std::vector<Channel> fwd, back;
  for (NodeId i = 0; i < 4; ++i) {
    fwd.push_back(w.node(i).open_channel((i + 1) % 4, 1));
    back.push_back(w.node((i + 1) % 4).open_channel(i, 1));
  }
  for (NodeId i = 0; i < 4; ++i) send_bytes(fwd[i], pattern(32, i));
  for (NodeId i = 0; i < 4; ++i)
    EXPECT_EQ(recv_bytes(back[i], 32), pattern(32, i));
}

TEST(SimWorld, DeterministicAcrossRuns) {
  auto run_once = [] {
    EngineConfig cfg;
    cfg.strategy = "aggreg";
    SimWorld w(2, cfg);
    w.connect(0, 1, drv::mx_myrinet_profile());
    Channel a = w.node(0).open_channel(1, 7);
    Channel b = w.node(1).open_channel(0, 7);
    for (int i = 0; i < 20; ++i)
      send_bytes(a, pattern(64, static_cast<std::uint32_t>(i)));
    for (int i = 0; i < 20; ++i) recv_bytes(b, 64);
    w.node(0).flush();
    return std::tuple(w.now(), w.node(0).stats().counter("tx.packets"),
                      w.node(0).stats().counter("tx.bytes"));
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SocketWorld, TwoNodesTalk) {
  SocketWorld w({}, drv::test_profile());
  Channel a = w.node(0).open_channel(1, 7);
  Channel b = w.node(1).open_channel(0, 7);
  send_bytes(a, pattern(64));
  EXPECT_EQ(recv_bytes(b, 64), pattern(64));
}

TEST(SocketWorld, MultiRailConstruction) {
  SocketWorld w({}, drv::test_profile(), /*rails=*/3);
  EXPECT_EQ(w.node(0).rail_count(1), 3u);
  EXPECT_EQ(w.node(1).rail_count(0), 3u);
}

}  // namespace
}  // namespace mado::core
