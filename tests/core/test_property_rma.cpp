// RMA property test: a randomized sequence of puts and gets against one
// window must behave exactly like the same sequence applied to a local
// shadow buffer — for every strategy, spanning eager and rendezvous sizes.
//
// Operations are issued one at a time and waited (puts complete on remote
// application, so the shadow stays in lockstep).
#include <gtest/gtest.h>

#include <tuple>

#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"
#include "util/rng.hpp"

namespace mado::core {
namespace {

using testing::pattern;

using Params = std::tuple<std::string, std::uint64_t>;

class RmaPropertyTest : public ::testing::TestWithParam<Params> {};

TEST_P(RmaPropertyTest, MatchesShadowBufferModel) {
  const auto& [strategy, seed] = GetParam();
  EngineConfig cfg;
  cfg.strategy = strategy;
  cfg.nagle_delay = strategy == "nagle" ? usec(1) : 0;
  SimWorld w(2, cfg);
  w.connect(0, 1, drv::test_profile());  // rdv threshold 4096

  constexpr std::size_t kWin = 64 * 1024;
  Bytes window(kWin, Byte{0});
  Bytes shadow(kWin, Byte{0});
  w.node(1).expose_window(1, window.data(), window.size());

  Rng rng(seed);
  for (int op = 0; op < 60; ++op) {
    // Sizes: mostly eager, sometimes rendezvous, occasionally tiny.
    std::size_t len;
    const double roll = rng.uniform();
    if (roll < 0.5) len = 1 + rng.below(256);
    else if (roll < 0.85) len = 1024 + rng.below(2048);
    else len = 4096 + rng.below(16 * 1024);
    const std::uint64_t off = rng.below(kWin - len + 1);

    if (rng.chance(0.6)) {  // put
      const Bytes data = pattern(len, static_cast<std::uint32_t>(op + 1));
      SendHandle h = w.node(0).rma_put(1, 1, off, data.data(), len);
      ASSERT_TRUE(w.node(0).wait_send(h)) << "op " << op;
      std::copy(data.begin(), data.end(),
                shadow.begin() + static_cast<long>(off));
    } else {  // get
      Bytes out(len);
      SendHandle h = w.node(0).rma_get(1, 1, off, out.data(), len);
      ASSERT_TRUE(w.node(0).wait_send(h)) << "op " << op;
      ASSERT_EQ(out, Bytes(shadow.begin() + static_cast<long>(off),
                           shadow.begin() + static_cast<long>(off + len)))
          << "op " << op << " off " << off << " len " << len;
    }
  }
  // Final: the whole window matches the shadow.
  Bytes out(kWin);
  SendHandle h = w.node(0).rma_get(1, 1, 0, out.data(), kWin);
  ASSERT_TRUE(w.node(0).wait_send(h));
  EXPECT_EQ(out, shadow);
  EXPECT_EQ(w.node(0).stats().counter("rx.malformed"), 0u);
  EXPECT_EQ(w.node(1).stats().counter("rx.malformed"), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    StrategySeedMatrix, RmaPropertyTest,
    ::testing::Combine(::testing::Values("fifo", "aggreg",
                                         "aggreg_exhaustive", "nagle",
                                         "adaptive"),
                       ::testing::Values(std::uint64_t{11},
                                         std::uint64_t{23},
                                         std::uint64_t{31})),
    [](const ::testing::TestParamInfo<Params>& pi) {
      return std::get<0>(pi.param) + "_s" +
             std::to_string(std::get<1>(pi.param));
    });

}  // namespace
}  // namespace mado::core
