// StatsSampler: periodic counter snapshots driven by the engine's TimerHost.
// Under virtual time the series is fully deterministic (ticks land at exact
// multiples of the interval); under the socket world's wall-clock timers the
// same code samples from the real timer thread.
#include "core/stats_sampler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/engine.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

constexpr Nanos kTick = 5 * kNanosPerMicro;

TEST(StatsSampler, VirtualTimeSeriesIsDeterministic) {
  SimWorld w(2);
  w.connect(0, 1, drv::test_profile());
  StatsSampler sampler(w.node(0), kTick);
  sampler.start();

  Channel a = w.node(0).open_channel(1, 7);
  Channel b = w.node(1).open_channel(0, 7);
  constexpr int kMsgs = 20;
  for (int i = 0; i < kMsgs; ++i) send_bytes(a, pattern(64));
  for (int i = 0; i < kMsgs; ++i) recv_bytes(b, 64);
  w.node(0).flush();
  // Let several more ticks elapse in virtual time (the self-re-arming tick
  // keeps the fabric non-idle, so run_until always makes progress).
  const Nanos target = w.now() + 4 * kTick;
  w.run_until([&] { return w.now() >= target; });
  sampler.stop();

  const auto samples = sampler.samples();
  ASSERT_GE(samples.size(), 4u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Ticks land at exact multiples of the interval — that is what makes
    // the series reproducible across runs.
    EXPECT_EQ(samples[i].time, (i + 1) * kTick);
  }
  // The last snapshot has seen the whole workload.
  const auto it = samples.back().counters.find("tx.msgs");
  ASSERT_NE(it, samples.back().counters.end());
  EXPECT_EQ(it->second, static_cast<std::uint64_t>(kMsgs));
}

TEST(StatsSampler, StopHaltsSampling) {
  SimWorld w(2);
  w.connect(0, 1, drv::test_profile());
  StatsSampler sampler(w.node(0), kTick);
  sampler.start();
  const Nanos t1 = w.now() + 3 * kTick;
  w.run_until([&] { return w.now() >= t1; });
  sampler.stop();
  const std::size_t n = sampler.samples().size();
  EXPECT_GE(n, 2u);
  // A dead sampler's closures no-op; nothing further is recorded. Post an
  // unrelated event so the fabric has something to run toward.
  const Nanos t2 = w.now() + 3 * kTick;
  w.fabric().post_at(t2, [] {});
  w.run_until([&] { return w.now() >= t2; });
  EXPECT_EQ(sampler.samples().size(), n);
}

TEST(StatsSampler, CsvHasHeaderAndDeltaRows) {
  SimWorld w(2);
  w.connect(0, 1, drv::test_profile());
  StatsSampler sampler(w.node(0), kTick);
  sampler.start();
  Channel a = w.node(0).open_channel(1, 7);
  Channel b = w.node(1).open_channel(0, 7);
  for (int i = 0; i < 10; ++i) send_bytes(a, pattern(64));
  for (int i = 0; i < 10; ++i) recv_bytes(b, 64);
  w.node(0).flush();
  const Nanos target = w.now() + 2 * kTick;
  w.run_until([&] { return w.now() >= target; });
  sampler.stop();

  const std::string csv = sampler.to_csv();
  ASSERT_EQ(csv.rfind("time_ns,", 0), 0u) << csv;
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, sampler.samples().size() + 1);  // header + one per tick
  EXPECT_NE(csv.find(",tx.msgs"), std::string::npos);

  // Deltas must re-sum to the cumulative total (10 messages overall, spread
  // across however many ticks the run took).
  std::uint64_t sum = 0, prev = 0;
  for (const auto& s : sampler.samples()) {
    const auto it = s.counters.find("tx.msgs");
    const std::uint64_t cur = it == s.counters.end() ? 0 : it->second;
    sum += cur - prev;
    prev = cur;
  }
  EXPECT_EQ(sum, 10u);
}

TEST(StatsSampler, JsonSeriesShape) {
  SimWorld w(2);
  w.connect(0, 1, drv::test_profile());
  StatsSampler sampler(w.node(0), kTick);
  sampler.start();
  const Nanos target = w.now() + 2 * kTick;
  w.run_until([&] { return w.now() >= target; });
  sampler.stop();
  const std::string json = sampler.to_json();
  EXPECT_NE(json.find("\"interval_ns\":5000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"samples\":["), std::string::npos);
  EXPECT_NE(json.find("\"t\":5000"), std::string::npos);
}

TEST(StatsSampler, SamplesOverWallClockTimers) {
  // Socket world: RealTimerHost ticks fire from the engines' progress
  // machinery on real threads. Just prove the plumbing works — counts and
  // spacing are inherently nondeterministic here.
  SocketWorld w({}, drv::mx_myrinet_profile());
  StatsSampler sampler(w.node(0), kNanosPerMilli);
  sampler.start();
  Channel a = w.node(0).open_channel(1, 7);
  Channel b = w.node(1).open_channel(0, 7);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  std::size_t seen = 0;
  while (seen < 3 && std::chrono::steady_clock::now() < deadline) {
    send_bytes(a, pattern(64));
    recv_bytes(b, 64);
    seen = sampler.samples().size();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.stop();
  ASSERT_GE(seen, 3u);
  const auto samples = sampler.samples();
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_GT(samples[i].time, samples[i - 1].time);
}

}  // namespace
}  // namespace mado::core
