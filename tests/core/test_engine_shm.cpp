// Engine over the shared-memory driver: intra-node (thread-to-thread)
// traffic through the same engine code path, including rendezvous and RMA.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

class ShmEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<ShmWorld>(EngineConfig{});
    a_ = world_->node(0).open_channel(1, 7);
    b_ = world_->node(1).open_channel(0, 7);
  }
  std::unique_ptr<ShmWorld> world_;
  Channel a_, b_;
};

TEST_F(ShmEngineTest, SmallMessageRoundTrip) {
  send_bytes(a_, pattern(64));
  EXPECT_EQ(recv_bytes(b_, 64), pattern(64));
}

TEST_F(ShmEngineTest, ManyMessagesInOrder) {
  constexpr int kN = 200;
  for (int i = 0; i < kN; ++i)
    send_bytes(a_, pattern(48, static_cast<std::uint32_t>(i)));
  for (int i = 0; i < kN; ++i)
    EXPECT_EQ(recv_bytes(b_, 48), pattern(48, static_cast<std::uint32_t>(i)));
}

TEST_F(ShmEngineTest, RendezvousAboveShmThreshold) {
  // shm profile threshold: 64 KiB.
  const Bytes data = pattern(128 * 1024);
  SendHandle h = send_bytes(a_, data, SendMode::Later);
  EXPECT_EQ(recv_bytes(b_, data.size()), data);
  EXPECT_TRUE(world_->node(0).wait_send(h));
  EXPECT_GE(world_->node(0).stats().counter("tx.rdv_completed"), 1u);
}

TEST_F(ShmEngineTest, RmaPutGetIntraNode) {
  Bytes window(64 * 1024, Byte{0});
  world_->node(1).expose_window(2, window.data(), window.size());
  const Bytes data = pattern(4096, 5);
  SendHandle h = world_->node(0).rma_put(1, 2, 512, data.data(), data.size());
  EXPECT_TRUE(world_->node(0).wait_send(h));
  Bytes out(data.size());
  SendHandle g =
      world_->node(0).rma_get(1, 2, 512, out.data(), out.size());
  EXPECT_TRUE(world_->node(0).wait_send(g));
  EXPECT_EQ(out, data);
}

TEST_F(ShmEngineTest, AggregationHappensOverShm) {
  constexpr ChannelId kFlows = 8;
  std::vector<Channel> tx, rx;
  for (ChannelId f = 0; f < kFlows; ++f) {
    tx.push_back(world_->node(0).open_channel(1, 100 + f));
    rx.push_back(world_->node(1).open_channel(0, 100 + f));
  }
  for (int i = 0; i < 25; ++i)
    for (ChannelId f = 0; f < kFlows; ++f)
      send_bytes(tx[f], pattern(64, f * 1000u + static_cast<std::uint32_t>(i)));
  for (int i = 0; i < 25; ++i)
    for (ChannelId f = 0; f < kFlows; ++f)
      EXPECT_EQ(recv_bytes(rx[f], 64),
                pattern(64, f * 1000u + static_cast<std::uint32_t>(i)));
  EXPECT_LT(world_->node(0).stats().counter("tx.packets"),
            world_->node(0).stats().counter("tx.frags"));
}

}  // namespace
}  // namespace mado::core
