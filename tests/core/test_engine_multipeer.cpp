// Multi-peer engine behaviour: one engine talking to several peers keeps
// per-peer collect layers, schedules each peer's rails independently, and
// serves its RMA windows to all peers.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

class MultiPeerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<SimWorld>(3);
    world_->connect(0, 1, drv::test_profile());
    world_->connect(0, 2, drv::test_profile());
  }
  std::unique_ptr<SimWorld> world_;
};

TEST_F(MultiPeerTest, SameChannelIdPerPeerIsIndependent) {
  Channel to1 = world_->node(0).open_channel(1, 7);
  Channel to2 = world_->node(0).open_channel(2, 7);  // same id, other peer
  Channel at1 = world_->node(1).open_channel(0, 7);
  Channel at2 = world_->node(2).open_channel(0, 7);
  send_bytes(to1, pattern(32, 1));
  send_bytes(to2, pattern(32, 2));
  EXPECT_EQ(recv_bytes(at1, 32), pattern(32, 1));
  EXPECT_EQ(recv_bytes(at2, 32), pattern(32, 2));
}

TEST_F(MultiPeerTest, BacklogsAreSeparatePerPeer) {
  Channel to1 = world_->node(0).open_channel(1, 1);
  Channel to2 = world_->node(0).open_channel(2, 1);
  world_->node(1).open_channel(0, 1);
  world_->node(2).open_channel(0, 1);
  for (int i = 0; i < 5; ++i) send_bytes(to1, pattern(64));
  EXPECT_GT(world_->node(0).backlog_frags(1, 0), 0u);
  EXPECT_EQ(world_->node(0).backlog_frags(2, 0), 0u);
  for (int i = 0; i < 5; ++i) send_bytes(to2, pattern(64));
  EXPECT_GT(world_->node(0).backlog_frags(2, 0), 0u);
  world_->node(0).flush();
}

TEST_F(MultiPeerTest, AggregationIsPerPeer) {
  // Messages to different peers can never share a packet.
  EngineConfig cfg;
  cfg.strategy = "aggreg";
  world_ = std::make_unique<SimWorld>(3, cfg);
  world_->connect(0, 1, drv::test_profile());
  world_->connect(0, 2, drv::test_profile());
  Channel to1 = world_->node(0).open_channel(1, 1);
  Channel to2 = world_->node(0).open_channel(2, 1);
  Channel at1 = world_->node(1).open_channel(0, 1);
  Channel at2 = world_->node(2).open_channel(0, 1);
  for (int i = 0; i < 10; ++i) {
    send_bytes(to1, pattern(16, static_cast<std::uint32_t>(i)));
    send_bytes(to2, pattern(16, 100u + static_cast<std::uint32_t>(i)));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(recv_bytes(at1, 16), pattern(16, static_cast<std::uint32_t>(i)));
    EXPECT_EQ(recv_bytes(at2, 16),
              pattern(16, 100u + static_cast<std::uint32_t>(i)));
  }
  // Each receiver saw only its own fragments.
  EXPECT_EQ(world_->node(1).stats().counter("rx.frags"), 10u);
  EXPECT_EQ(world_->node(2).stats().counter("rx.frags"), 10u);
}

TEST_F(MultiPeerTest, OneWindowServesAllPeers) {
  Bytes window(4096, Byte{0});
  world_->node(0).expose_window(9, window.data(), window.size());
  const Bytes d1 = pattern(256, 1), d2 = pattern(256, 2);
  SendHandle h1 = world_->node(1).rma_put(0, 9, 0, d1.data(), d1.size());
  SendHandle h2 = world_->node(2).rma_put(0, 9, 1024, d2.data(), d2.size());
  EXPECT_TRUE(world_->node(1).wait_send(h1));
  EXPECT_TRUE(world_->node(2).wait_send(h2));
  EXPECT_EQ(Bytes(window.begin(), window.begin() + 256), d1);
  EXPECT_EQ(Bytes(window.begin() + 1024, window.begin() + 1280), d2);
  // Both peers can read each other's region through the hub.
  Bytes out(256);
  SendHandle g = world_->node(1).rma_get(0, 9, 1024, out.data(), out.size());
  EXPECT_TRUE(world_->node(1).wait_send(g));
  EXPECT_EQ(out, d2);
}

TEST_F(MultiPeerTest, RendezvousToTwoPeersConcurrently) {
  Channel to1 = world_->node(0).open_channel(1, 1);
  Channel to2 = world_->node(0).open_channel(2, 1);
  Channel at1 = world_->node(1).open_channel(0, 1);
  Channel at2 = world_->node(2).open_channel(0, 1);
  const Bytes d1 = pattern(16 * 1024, 1), d2 = pattern(16 * 1024, 2);
  send_bytes(to1, d1, SendMode::Later);
  send_bytes(to2, d2, SendMode::Later);
  EXPECT_EQ(recv_bytes(at1, d1.size()), d1);
  EXPECT_EQ(recv_bytes(at2, d2.size()), d2);
  EXPECT_EQ(world_->node(0).stats().counter("tx.rdv_completed"), 2u);
}

TEST_F(MultiPeerTest, FlushCoversAllPeers) {
  Channel to1 = world_->node(0).open_channel(1, 1);
  Channel to2 = world_->node(0).open_channel(2, 1);
  world_->node(1).open_channel(0, 1);
  world_->node(2).open_channel(0, 1);
  for (int i = 0; i < 10; ++i) {
    send_bytes(to1, pattern(64));
    send_bytes(to2, pattern(64));
  }
  EXPECT_TRUE(world_->node(0).flush());
  EXPECT_TRUE(world_->node(0).snapshot().quiescent());
}

TEST(MultiPeerConfig, CrcCheckCanBeDisabledEndToEnd) {
  EngineConfig cfg;
  cfg.crc_check = false;
  SimWorld w(2, cfg);
  w.connect(0, 1, drv::test_profile());
  Channel a = w.node(0).open_channel(1, 7);
  Channel b = w.node(1).open_channel(0, 7);
  send_bytes(a, pattern(4096, 3));
  EXPECT_EQ(recv_bytes(b, 4096), pattern(4096, 3));
  send_bytes(a, pattern(16 * 1024, 4));  // rendezvous path too
  EXPECT_EQ(recv_bytes(b, 16 * 1024), pattern(16 * 1024, 4));
}

}  // namespace
}  // namespace mado::core
