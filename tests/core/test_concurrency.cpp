// Multi-threaded multi-peer stress suite for the sharded engine lock
// (ISSUE 5): application threads submitting concurrently across peers, the
// lock-free submit ring (including its full-ring fallback), per-peer
// condition-variable waits, lock-free monitoring reads racing the hot path,
// and single-threaded determinism of the ring-enabled submit path.
//
// All tests here carry the ctest label "concurrency" and are part of the
// TSan matrix: their value is as much what the sanitizer sees as what the
// assertions check.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/timer_host.hpp"
#include "core/world.hpp"
#include "drivers/driver.hpp"
#include "drivers/profiles.hpp"
#include "drivers/shm_driver.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

/// Hub topology: engine 0 with one shm rail to each of `npeers` sink
/// engines, progress threads everywhere — the threaded regime the sharded
/// lock targets (same shape as bench_e12).
struct HubWorld {
  std::vector<std::unique_ptr<RealTimerHost>> timers;
  std::unique_ptr<Engine> hub;
  std::vector<std::unique_ptr<Engine>> peers;

  explicit HubWorld(std::size_t npeers, const EngineConfig& cfg) {
    timers.push_back(std::make_unique<RealTimerHost>());
    hub = std::make_unique<Engine>(0, cfg, *timers.back());
    for (std::size_t m = 0; m < npeers; ++m) {
      timers.push_back(std::make_unique<RealTimerHost>());
      auto peer = std::make_unique<Engine>(static_cast<NodeId>(m + 1), cfg,
                                           *timers.back());
      auto pair = drv::ShmEndpoint::make_pair();
      hub->add_rail(static_cast<NodeId>(m + 1), std::move(pair.a));
      peer->add_rail(0, std::move(pair.b));
      peers.push_back(std::move(peer));
    }
    hub->start_progress_thread();
    for (auto& p : peers) p->start_progress_thread();
  }

  ~HubWorld() {
    hub->stop_progress_thread();
    for (auto& p : peers) p->stop_progress_thread();
  }
};

/// T threads × M peers, every thread posts `per_thread` messages
/// round-robin across its own per-peer channels with a bounded window of
/// outstanding handles, then drains the window. Returns total completions.
std::uint64_t submit_storm(Engine& hub, std::size_t threads,
                           std::size_t npeers, std::size_t per_thread,
                           std::size_t msg_bytes = 128,
                           std::size_t window = 32) {
  std::vector<std::vector<Channel>> chans(threads);
  for (std::size_t t = 0; t < threads; ++t)
    for (std::size_t m = 0; m < npeers; ++m)
      chans[t].push_back(hub.open_channel(static_cast<NodeId>(m + 1),
                                          static_cast<ChannelId>(t),
                                          TrafficClass::SmallEager));
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const Bytes data = pattern(msg_bytes, static_cast<std::uint32_t>(t));
      std::deque<SendHandle> inflight;
      for (std::size_t i = 0; i < per_thread; ++i) {
        Message m;
        m.pack(data.data(), data.size(), SendMode::Safe);
        inflight.push_back(chans[t][i % npeers].post(std::move(m)));
        while (inflight.size() >= window) {
          if (hub.wait_send(inflight.front()))
            completed.fetch_add(1, std::memory_order_relaxed);
          inflight.pop_front();
        }
      }
      while (!inflight.empty()) {
        if (hub.wait_send(inflight.front()))
          completed.fetch_add(1, std::memory_order_relaxed);
        inflight.pop_front();
      }
    });
  }
  for (auto& w : workers) w.join();
  return completed.load();
}

// T application threads × M peers hammering the submit path concurrently:
// every message must complete and the hub must be quiescent afterwards.
// (Whether the submit ring actually carries any of them depends on observed
// contention — on a single-core host the threads serialize and uncontended
// posts combine inline, legitimately never touching the ring. The
// deterministic ring-engagement proof is ContendedPostsParkInRing below.)
TEST(ConcurrencyStress, MultiPeerSubmitStorm) {
  constexpr std::size_t kThreads = 4, kPeers = 4, kPerThread = 400;
  HubWorld w(kPeers, EngineConfig{});
  const std::uint64_t done =
      submit_storm(*w.hub, kThreads, kPeers, kPerThread);
  EXPECT_EQ(done, kThreads * kPerThread);
  EXPECT_TRUE(w.hub->flush());
  auto counters = w.hub->counters_snapshot();
  EXPECT_EQ(counters["tx.msgs"], kThreads * kPerThread);
}

/// Endpoint whose send() parks on a flag: a pump that reaches the driver
/// then holds the peer-shard lock for as long as the test wants, making
/// submit-path contention deterministic instead of scheduler-dependent.
class BlockingEndpoint final : public drv::DriverEndpoint {
 public:
  const drv::Capabilities& caps() const override { return caps_; }
  void set_handler(drv::EndpointHandler* h) override { handler_ = h; }
  void send(drv::TrackId track, const GatherList&,
            std::uint64_t token) override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      pending_.emplace_back(track, token);
    }
    in_send_.store(true, std::memory_order_release);
    while (hold_.load(std::memory_order_acquire)) std::this_thread::yield();
  }
  void progress() override {
    std::vector<std::pair<drv::TrackId, std::uint64_t>> done;
    {
      std::lock_guard<std::mutex> lk(mu_);
      done.swap(pending_);
    }
    for (const auto& [track, token] : done)
      handler_->on_send_complete(track, token);
  }

  bool in_send() const { return in_send_.load(std::memory_order_acquire); }
  void release() { hold_.store(false, std::memory_order_release); }

 private:
  drv::Capabilities caps_;
  drv::EndpointHandler* handler_ = nullptr;
  std::mutex mu_;
  std::vector<std::pair<drv::TrackId, std::uint64_t>> pending_;
  std::atomic<bool> in_send_{false};
  std::atomic<bool> hold_{true};
};

// Deterministic ring engagement: a pump thread is parked inside the driver's
// send() — holding the peer-shard lock — while this thread posts. Every one
// of those posts MUST find the lock busy and park in the submit ring; after
// the pump is released they all drain, complete, and are counted by
// submit.ring_ops exactly.
TEST(ConcurrencyStress, ContendedPostsParkInRing) {
  RealTimerHost timer;
  Engine hub(0, EngineConfig{}, timer);
  auto ep = std::make_unique<BlockingEndpoint>();
  BlockingEndpoint* raw = ep.get();
  hub.add_rail(1, std::move(ep));
  Channel ch = hub.open_channel(1, 1);

  std::thread pumper([&] {
    send_bytes(ch, pattern(64));  // uncontended: combines inline
    hub.progress();               // pump reaches send() and parks there
  });
  while (!raw->in_send()) std::this_thread::yield();

  // The shard lock is held inside the pump: these posts cannot take it.
  constexpr std::uint64_t kParked = 8;
  std::vector<SendHandle> handles;
  for (std::uint64_t i = 0; i < kParked; ++i)
    handles.push_back(send_bytes(ch, pattern(64)));

  raw->release();
  pumper.join();
  for (SendHandle& h : handles) EXPECT_TRUE(hub.wait_send(h));
  EXPECT_TRUE(hub.flush());

  auto counters = hub.counters_snapshot();
  EXPECT_EQ(counters["submit.ring_ops"], kParked)
      << "posts against a held shard must ride the ring";
  EXPECT_EQ(counters["tx.msgs"], kParked + 1);
}

// Senders and receivers in separate threads over two channels: data
// integrity end to end while the per-peer cv machinery (wait_frag /
// finish_recv) runs concurrently with submits on the same peer shard.
TEST(ConcurrencyStress, SendRecvThreadsDataIntegrity) {
  constexpr int kMsgs = 300;
  ShmWorld world{EngineConfig{}};
  std::vector<std::thread> ts;
  for (ChannelId c = 1; c <= 2; ++c) {
    ts.emplace_back([&world, c] {
      Channel tx = world.node(0).open_channel(1, c);
      for (int i = 0; i < kMsgs; ++i)
        send_bytes(tx, pattern(96, static_cast<std::uint32_t>(c) * 1000u + static_cast<std::uint32_t>(i)));
      world.node(0).flush();
    });
    ts.emplace_back([&world, c] {
      Channel rx = world.node(1).open_channel(0, c);
      for (int i = 0; i < kMsgs; ++i)
        EXPECT_EQ(recv_bytes(rx, 96),
                  pattern(96, static_cast<std::uint32_t>(c) * 1000u + static_cast<std::uint32_t>(i)))
            << "channel " << c << " message " << i;
    });
  }
  for (auto& t : ts) t.join();
}

// A monitoring thread hammers counters_snapshot() + snapshot() +
// stats().to_string() while traffic flows: no locks are shared with the hot
// path, reads must stay consistent (counters monotonic) and never crash.
TEST(ConcurrencyStress, SnapshotsRaceTheHotPath) {
  HubWorld w(2, EngineConfig{});
  std::atomic<bool> stop{false};
  std::uint64_t last_tx = 0;
  bool monotonic = true;
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto counters = w.hub->counters_snapshot();
      const std::uint64_t tx = counters["tx.packets"];
      if (tx < last_tx) monotonic = false;
      last_tx = tx;
      Engine::Snapshot snap = w.hub->snapshot();
      for (const auto& p : snap.peers)
        if (p.rails.empty()) monotonic = false;  // never observed torn
      (void)w.hub->stats().to_string();
    }
  });
  const std::uint64_t done = submit_storm(*w.hub, 2, 2, 300);
  stop.store(true, std::memory_order_release);
  monitor.join();
  EXPECT_EQ(done, 600u);
  EXPECT_TRUE(monotonic) << "aggregated counters went backwards";
  EXPECT_TRUE(w.hub->flush());
}

// A deliberately tiny submit ring (capacity 2) overflows constantly under
// two submitter threads; the locked fallback path must carry the overflow
// without losing or reordering anything within a channel.
TEST(ConcurrencyStress, TinySubmitRingFallsBackWhenFull) {
  EngineConfig cfg;
  cfg.submit_ring = 2;
  HubWorld w(1, cfg);
  const std::uint64_t done = submit_storm(*w.hub, 2, 1, 500);
  EXPECT_EQ(done, 1000u);
  EXPECT_TRUE(w.hub->flush());
  auto counters = w.hub->counters_snapshot();
  // Ring-carried and fallback submits must add up to every message posted.
  EXPECT_EQ(counters["tx.msgs"], 1000u);
}

// With the ring disabled entirely every submit takes the locked path; the
// engine must behave identically from the application's point of view.
TEST(ConcurrencyStress, RingDisabledLockedPathOnly) {
  EngineConfig cfg;
  cfg.submit_ring = 0;
  HubWorld w(1, cfg);
  const std::uint64_t done = submit_storm(*w.hub, 2, 1, 300);
  EXPECT_EQ(done, 600u);
  EXPECT_TRUE(w.hub->flush());
  auto counters = w.hub->counters_snapshot();
  EXPECT_EQ(counters["submit.ring_ops"], 0u);
}

// Many threads blocked in wait_send() on the SAME peer: per-peer cv
// notify-with-token must wake all of them exactly as completions land.
TEST(ConcurrencyStress, WaitSendManyThreadsOnePeer) {
  HubWorld w(1, EngineConfig{});
  constexpr std::size_t kThreads = 8;
  std::vector<Channel> chans;
  for (std::size_t t = 0; t < kThreads; ++t)
    chans.push_back(w.hub->open_channel(1, static_cast<ChannelId>(t)));
  std::atomic<std::uint64_t> ok{0};
  std::vector<std::thread> ts;
  for (std::size_t t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        SendHandle h = send_bytes(chans[t], pattern(64));
        if (w.hub->wait_send(h)) ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(ok.load(), kThreads * 50);
}

// Concurrent one-sided traffic: rma_put and rma_get threads against the
// same exposed window exercise the receive-side RMA tables (pending_gets /
// rma_acks — now peer-shard state) under contention.
TEST(ConcurrencyStress, RmaPutGetConcurrent) {
  ShmWorld world{EngineConfig{}};
  Bytes window(64 * 1024, Byte{0});
  world.node(1).expose_window(3, window.data(), window.size());
  constexpr int kOps = 100;
  std::atomic<std::uint64_t> ok{0};
  std::thread putter([&] {
    const Bytes data = pattern(1024, 7);
    for (int i = 0; i < kOps; ++i) {
      SendHandle h = world.node(0).rma_put(1, 3, 0, data.data(), data.size());
      if (world.node(0).wait_send(h)) ok.fetch_add(1);
    }
  });
  std::thread getter([&] {
    Bytes out(1024);
    for (int i = 0; i < kOps; ++i) {
      SendHandle h =
          world.node(0).rma_get(1, 3, 32 * 1024, out.data(), out.size());
      if (world.node(0).wait_send(h)) ok.fetch_add(1);
    }
  });
  putter.join();
  getter.join();
  EXPECT_EQ(ok.load(), 2u * kOps);
}

// Single-threaded determinism: with one application thread the flat-combining
// try_lock always succeeds, so the ring-enabled engine bypasses the ring and
// must produce the EXACT same packetization as the ring-disabled one in the
// deterministic simulation world — and must never have touched the ring
// (submit.ring_ops stays 0; the ring only carries under contention).
TEST(ConcurrencyStress, SingleThreadSimDeterminismRingOnVsOff) {
  auto run = [](std::size_t ring) {
    EngineConfig cfg;
    cfg.submit_ring = ring;
    SimWorld world(2, cfg);
    world.connect(0, 1, drv::test_profile());
    Channel tx = world.node(0).open_channel(1, 4);
    Channel rx = world.node(1).open_channel(0, 4);
    for (int i = 0; i < 64; ++i)
      send_bytes(tx, pattern(100, static_cast<std::uint32_t>(i)));
    for (int i = 0; i < 64; ++i)
      EXPECT_EQ(recv_bytes(rx, 100),
                pattern(100, static_cast<std::uint32_t>(i)));
    world.node(0).flush();
    return world.node(0).counters_snapshot();
  };
  auto with_ring = run(256);
  auto no_ring = run(0);
  for (const char* key : {"tx.packets", "tx.msgs", "tx.frags", "tx.bytes"})
    EXPECT_EQ(with_ring[key], no_ring[key])
        << key << " diverged between ring-on and ring-off";
  // Uncontended posts combine inline; the ring is a contention escape
  // hatch, so a single-threaded run never pays its round-trip.
  EXPECT_EQ(with_ring["submit.ring_ops"], 0u);
  EXPECT_EQ(no_ring["submit.ring_ops"], 0u);
}

}  // namespace
}  // namespace mado::core
