// Multi-threaded multi-peer stress suite for the sharded engine lock
// (ISSUE 5): application threads submitting concurrently across peers, the
// lock-free submit ring (including its full-ring fallback), per-peer
// condition-variable waits, lock-free monitoring reads racing the hot path,
// and single-threaded determinism of the ring-enabled submit path.
//
// ISSUE 6 additions: the shard-owning progress threads — post-idle wakeup
// latency (lost-wakeup park regression), waiter self-pump gating, per-shard
// pump exclusivity, work stealing off a wedged owner, ring parity across
// progress_threads, and shutdown under load.
//
// All tests here carry the ctest label "concurrency" and are part of the
// TSan matrix: their value is as much what the sanitizer sees as what the
// assertions check.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/timer_host.hpp"
#include "core/world.hpp"
#include "drivers/driver.hpp"
#include "drivers/profiles.hpp"
#include "drivers/shm_driver.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

/// Hub topology: engine 0 with one shm rail to each of `npeers` sink
/// engines, progress threads everywhere — the threaded regime the sharded
/// lock targets (same shape as bench_e12).
struct HubWorld {
  std::vector<std::unique_ptr<RealTimerHost>> timers;
  std::unique_ptr<Engine> hub;
  std::vector<std::unique_ptr<Engine>> peers;

  explicit HubWorld(std::size_t npeers, const EngineConfig& cfg) {
    timers.push_back(std::make_unique<RealTimerHost>());
    hub = std::make_unique<Engine>(0, cfg, *timers.back());
    for (std::size_t m = 0; m < npeers; ++m) {
      timers.push_back(std::make_unique<RealTimerHost>());
      auto peer = std::make_unique<Engine>(static_cast<NodeId>(m + 1), cfg,
                                           *timers.back());
      auto pair = drv::ShmEndpoint::make_pair();
      hub->add_rail(static_cast<NodeId>(m + 1), std::move(pair.a));
      peer->add_rail(0, std::move(pair.b));
      peers.push_back(std::move(peer));
    }
    hub->start_progress_thread();
    for (auto& p : peers) p->start_progress_thread();
  }

  ~HubWorld() {
    hub->stop_progress_thread();
    for (auto& p : peers) p->stop_progress_thread();
  }
};

/// T threads × M peers, every thread posts `per_thread` messages
/// round-robin across its own per-peer channels with a bounded window of
/// outstanding handles, then drains the window. Returns total completions.
std::uint64_t submit_storm(Engine& hub, std::size_t threads,
                           std::size_t npeers, std::size_t per_thread,
                           std::size_t msg_bytes = 128,
                           std::size_t window = 32) {
  std::vector<std::vector<Channel>> chans(threads);
  for (std::size_t t = 0; t < threads; ++t)
    for (std::size_t m = 0; m < npeers; ++m)
      chans[t].push_back(hub.open_channel(static_cast<NodeId>(m + 1),
                                          static_cast<ChannelId>(t),
                                          TrafficClass::SmallEager));
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const Bytes data = pattern(msg_bytes, static_cast<std::uint32_t>(t));
      std::deque<SendHandle> inflight;
      for (std::size_t i = 0; i < per_thread; ++i) {
        Message m;
        m.pack(data.data(), data.size(), SendMode::Safe);
        inflight.push_back(chans[t][i % npeers].post(std::move(m)));
        while (inflight.size() >= window) {
          if (hub.wait_send(inflight.front()))
            completed.fetch_add(1, std::memory_order_relaxed);
          inflight.pop_front();
        }
      }
      while (!inflight.empty()) {
        if (hub.wait_send(inflight.front()))
          completed.fetch_add(1, std::memory_order_relaxed);
        inflight.pop_front();
      }
    });
  }
  for (auto& w : workers) w.join();
  return completed.load();
}

// T application threads × M peers hammering the submit path concurrently:
// every message must complete and the hub must be quiescent afterwards.
// (Whether the submit ring actually carries any of them depends on observed
// contention — on a single-core host the threads serialize and uncontended
// posts combine inline, legitimately never touching the ring. The
// deterministic ring-engagement proof is ContendedPostsParkInRing below.)
TEST(ConcurrencyStress, MultiPeerSubmitStorm) {
  constexpr std::size_t kThreads = 4, kPeers = 4, kPerThread = 400;
  HubWorld w(kPeers, EngineConfig{});
  const std::uint64_t done =
      submit_storm(*w.hub, kThreads, kPeers, kPerThread);
  EXPECT_EQ(done, kThreads * kPerThread);
  EXPECT_TRUE(w.hub->flush());
  auto counters = w.hub->counters_snapshot();
  EXPECT_EQ(counters["tx.msgs"], kThreads * kPerThread);
}

/// Endpoint whose send() parks on a flag: a pump that reaches the driver
/// then holds the peer-shard lock for as long as the test wants, making
/// submit-path contention deterministic instead of scheduler-dependent.
class BlockingEndpoint final : public drv::DriverEndpoint {
 public:
  const drv::Capabilities& caps() const override { return caps_; }
  void set_handler(drv::EndpointHandler* h) override { handler_ = h; }
  void send(drv::TrackId track, const GatherList&,
            std::uint64_t token) override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      pending_.emplace_back(track, token);
    }
    in_send_.store(true, std::memory_order_release);
    while (hold_.load(std::memory_order_acquire)) std::this_thread::yield();
  }
  void progress() override {
    std::vector<std::pair<drv::TrackId, std::uint64_t>> done;
    {
      std::lock_guard<std::mutex> lk(mu_);
      done.swap(pending_);
    }
    for (const auto& [track, token] : done)
      handler_->on_send_complete(track, token);
  }

  bool in_send() const { return in_send_.load(std::memory_order_acquire); }
  void release() { hold_.store(false, std::memory_order_release); }

 private:
  drv::Capabilities caps_;
  drv::EndpointHandler* handler_ = nullptr;
  std::mutex mu_;
  std::vector<std::pair<drv::TrackId, std::uint64_t>> pending_;
  std::atomic<bool> in_send_{false};
  std::atomic<bool> hold_{true};
};

// Deterministic ring engagement: a pump thread is parked inside the driver's
// send() — holding the peer-shard lock — while this thread posts. Every one
// of those posts MUST find the lock busy and park in the submit ring; after
// the pump is released they all drain, complete, and are counted by
// submit.ring_ops exactly.
TEST(ConcurrencyStress, ContendedPostsParkInRing) {
  RealTimerHost timer;
  Engine hub(0, EngineConfig{}, timer);
  auto ep = std::make_unique<BlockingEndpoint>();
  BlockingEndpoint* raw = ep.get();
  hub.add_rail(1, std::move(ep));
  Channel ch = hub.open_channel(1, 1);

  std::thread pumper([&] {
    send_bytes(ch, pattern(64));  // uncontended: combines inline
    hub.progress();               // pump reaches send() and parks there
  });
  while (!raw->in_send()) std::this_thread::yield();

  // The shard lock is held inside the pump: these posts cannot take it.
  constexpr std::uint64_t kParked = 8;
  std::vector<SendHandle> handles;
  for (std::uint64_t i = 0; i < kParked; ++i)
    handles.push_back(send_bytes(ch, pattern(64)));

  raw->release();
  pumper.join();
  for (SendHandle& h : handles) EXPECT_TRUE(hub.wait_send(h));
  EXPECT_TRUE(hub.flush());

  auto counters = hub.counters_snapshot();
  EXPECT_EQ(counters["submit.ring_ops"], kParked)
      << "posts against a held shard must ride the ring";
  EXPECT_EQ(counters["tx.msgs"], kParked + 1);
}

// Senders and receivers in separate threads over two channels: data
// integrity end to end while the per-peer cv machinery (wait_frag /
// finish_recv) runs concurrently with submits on the same peer shard.
TEST(ConcurrencyStress, SendRecvThreadsDataIntegrity) {
  constexpr int kMsgs = 300;
  ShmWorld world{EngineConfig{}};
  std::vector<std::thread> ts;
  for (ChannelId c = 1; c <= 2; ++c) {
    ts.emplace_back([&world, c] {
      Channel tx = world.node(0).open_channel(1, c);
      for (int i = 0; i < kMsgs; ++i)
        send_bytes(tx, pattern(96, static_cast<std::uint32_t>(c) * 1000u + static_cast<std::uint32_t>(i)));
      world.node(0).flush();
    });
    ts.emplace_back([&world, c] {
      Channel rx = world.node(1).open_channel(0, c);
      for (int i = 0; i < kMsgs; ++i)
        EXPECT_EQ(recv_bytes(rx, 96),
                  pattern(96, static_cast<std::uint32_t>(c) * 1000u + static_cast<std::uint32_t>(i)))
            << "channel " << c << " message " << i;
    });
  }
  for (auto& t : ts) t.join();
}

// A monitoring thread hammers counters_snapshot() + snapshot() +
// stats().to_string() while traffic flows: no locks are shared with the hot
// path, reads must stay consistent (counters monotonic) and never crash.
TEST(ConcurrencyStress, SnapshotsRaceTheHotPath) {
  HubWorld w(2, EngineConfig{});
  std::atomic<bool> stop{false};
  std::uint64_t last_tx = 0;
  bool monotonic = true;
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto counters = w.hub->counters_snapshot();
      const std::uint64_t tx = counters["tx.packets"];
      if (tx < last_tx) monotonic = false;
      last_tx = tx;
      Engine::Snapshot snap = w.hub->snapshot();
      for (const auto& p : snap.peers)
        if (p.rails.empty()) monotonic = false;  // never observed torn
      (void)w.hub->stats().to_string();
    }
  });
  const std::uint64_t done = submit_storm(*w.hub, 2, 2, 300);
  stop.store(true, std::memory_order_release);
  monitor.join();
  EXPECT_EQ(done, 600u);
  EXPECT_TRUE(monotonic) << "aggregated counters went backwards";
  EXPECT_TRUE(w.hub->flush());
}

// A deliberately tiny submit ring (capacity 2) overflows constantly under
// two submitter threads; the locked fallback path must carry the overflow
// without losing or reordering anything within a channel.
TEST(ConcurrencyStress, TinySubmitRingFallsBackWhenFull) {
  EngineConfig cfg;
  cfg.submit_ring = 2;
  HubWorld w(1, cfg);
  const std::uint64_t done = submit_storm(*w.hub, 2, 1, 500);
  EXPECT_EQ(done, 1000u);
  EXPECT_TRUE(w.hub->flush());
  auto counters = w.hub->counters_snapshot();
  // Ring-carried and fallback submits must add up to every message posted.
  EXPECT_EQ(counters["tx.msgs"], 1000u);
}

// With the ring disabled entirely every submit takes the locked path; the
// engine must behave identically from the application's point of view.
TEST(ConcurrencyStress, RingDisabledLockedPathOnly) {
  EngineConfig cfg;
  cfg.submit_ring = 0;
  HubWorld w(1, cfg);
  const std::uint64_t done = submit_storm(*w.hub, 2, 1, 300);
  EXPECT_EQ(done, 600u);
  EXPECT_TRUE(w.hub->flush());
  auto counters = w.hub->counters_snapshot();
  EXPECT_EQ(counters["submit.ring_ops"], 0u);
}

// Many threads blocked in wait_send() on the SAME peer: per-peer cv
// notify-with-token must wake all of them exactly as completions land.
TEST(ConcurrencyStress, WaitSendManyThreadsOnePeer) {
  HubWorld w(1, EngineConfig{});
  constexpr std::size_t kThreads = 8;
  std::vector<Channel> chans;
  for (std::size_t t = 0; t < kThreads; ++t)
    chans.push_back(w.hub->open_channel(1, static_cast<ChannelId>(t)));
  std::atomic<std::uint64_t> ok{0};
  std::vector<std::thread> ts;
  for (std::size_t t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        SendHandle h = send_bytes(chans[t], pattern(64));
        if (w.hub->wait_send(h)) ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(ok.load(), kThreads * 50);
}

// Concurrent one-sided traffic: rma_put and rma_get threads against the
// same exposed window exercise the receive-side RMA tables (pending_gets /
// rma_acks — now peer-shard state) under contention.
TEST(ConcurrencyStress, RmaPutGetConcurrent) {
  ShmWorld world{EngineConfig{}};
  Bytes window(64 * 1024, Byte{0});
  world.node(1).expose_window(3, window.data(), window.size());
  constexpr int kOps = 100;
  std::atomic<std::uint64_t> ok{0};
  std::thread putter([&] {
    const Bytes data = pattern(1024, 7);
    for (int i = 0; i < kOps; ++i) {
      SendHandle h = world.node(0).rma_put(1, 3, 0, data.data(), data.size());
      if (world.node(0).wait_send(h)) ok.fetch_add(1);
    }
  });
  std::thread getter([&] {
    Bytes out(1024);
    for (int i = 0; i < kOps; ++i) {
      SendHandle h =
          world.node(0).rma_get(1, 3, 32 * 1024, out.data(), out.size());
      if (world.node(0).wait_send(h)) ok.fetch_add(1);
    }
  });
  putter.join();
  getter.join();
  EXPECT_EQ(ok.load(), 2u * kOps);
}

// Single-threaded determinism: with one application thread the flat-combining
// try_lock always succeeds, so the ring-enabled engine bypasses the ring and
// must produce the EXACT same packetization as the ring-disabled one in the
// deterministic simulation world — and must never have touched the ring
// (submit.ring_ops stays 0; the ring only carries under contention).
TEST(ConcurrencyStress, SingleThreadSimDeterminismRingOnVsOff) {
  auto run = [](std::size_t ring) {
    EngineConfig cfg;
    cfg.submit_ring = ring;
    SimWorld world(2, cfg);
    world.connect(0, 1, drv::test_profile());
    Channel tx = world.node(0).open_channel(1, 4);
    Channel rx = world.node(1).open_channel(0, 4);
    for (int i = 0; i < 64; ++i)
      send_bytes(tx, pattern(100, static_cast<std::uint32_t>(i)));
    for (int i = 0; i < 64; ++i)
      EXPECT_EQ(recv_bytes(rx, 100),
                pattern(100, static_cast<std::uint32_t>(i)));
    world.node(0).flush();
    return world.node(0).counters_snapshot();
  };
  auto with_ring = run(256);
  auto no_ring = run(0);
  for (const char* key : {"tx.packets", "tx.msgs", "tx.frags", "tx.bytes"})
    EXPECT_EQ(with_ring[key], no_ring[key])
        << key << " diverged between ring-on and ring-off";
  // Uncontended posts combine inline; the ring is a contention escape
  // hatch, so a single-threaded run never pays its round-trip.
  EXPECT_EQ(with_ring["submit.ring_ops"], 0u);
  EXPECT_EQ(no_ring["submit.ring_ops"], 0u);
}

// ---------------------------------------------------------------------------
// ISSUE 6: shard-owning progress threads.
// ---------------------------------------------------------------------------

// Regression for the lost-wakeup park race: a submit landing in the gap
// between the progress thread's idle check and its cv wait used to sleep out
// the whole prog_idle_wait before being noticed. Make the park long (200ms)
// and the spin/yield window tiny so an un-woken park is unmissable, then
// assert post-idle submit-to-complete latency stays far below the park bound.
TEST(ProgressWakeup, PostIdleSubmitLatencyBounded) {
  EngineConfig hub_cfg;
  hub_cfg.prog_spin_laps = 4;
  hub_cfg.prog_yield_laps = 4;
  hub_cfg.prog_idle_wait = 200 * kNanosPerMilli;
  RealTimerHost hub_timer, peer_timer;
  Engine hub(0, hub_cfg, hub_timer);
  Engine peer(1, EngineConfig{}, peer_timer);
  auto pair = drv::ShmEndpoint::make_pair();
  hub.add_rail(1, std::move(pair.a));
  peer.add_rail(0, std::move(pair.b));
  hub.start_progress_thread();
  peer.start_progress_thread();
  Channel ch = hub.open_channel(1, 1);
  for (int i = 0; i < 8; ++i) {
    // Let the hub's progress thread run dry and park.
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    const auto t0 = std::chrono::steady_clock::now();
    SendHandle h = send_bytes(ch, pattern(64));
    ASSERT_TRUE(hub.wait_send(h));
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    EXPECT_LT(ms, 100)
        << "post-idle submit slept out the park (lost wakeup), iter " << i;
  }
  hub.stop_progress_thread();
  peer.stop_progress_thread();
}

// With a progress thread attached, blocked waiters must park on their cv
// instead of pumping the engine themselves; self-pumping resumes (and is
// counted) only once the threads are stopped.
TEST(ProgressWakeup, WaitersParkWithProgressThreadAttached) {
  HubWorld w(1, EngineConfig{});
  const std::uint64_t before = w.hub->counters_snapshot()["prog.self_pumps"];
  std::atomic<bool> flag{false};
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    flag.store(true, std::memory_order_release);
  });
  EXPECT_TRUE(
      w.hub->wait_until([&] { return flag.load(std::memory_order_acquire); }));
  setter.join();
  EXPECT_EQ(w.hub->counters_snapshot()["prog.self_pumps"], before)
      << "waiters must not pump while progress threads run";
  w.hub->stop_progress_thread();
  EXPECT_TRUE(w.hub->wait_until([] { return true; }));
  EXPECT_GT(w.hub->counters_snapshot()["prog.self_pumps"], before)
      << "with no progress thread the waiter must pump for itself";
}

/// Decorator that detects two threads inside the wrapped endpoint's
/// progress() at once. The shard pump claim promises this never happens, no
/// matter how owners, stealers and manual progress() calls interleave.
class ExclusivePumpEndpoint final : public drv::DriverEndpoint {
 public:
  ExclusivePumpEndpoint(std::unique_ptr<drv::DriverEndpoint> inner,
                        std::atomic<std::uint64_t>* violations)
      : inner_(std::move(inner)), violations_(violations) {}
  const drv::Capabilities& caps() const override { return inner_->caps(); }
  void set_handler(drv::EndpointHandler* h) override {
    inner_->set_handler(h);
  }
  void send(drv::TrackId track, const GatherList& gl,
            std::uint64_t token) override {
    inner_->send(track, gl, token);
  }
  void progress() override {
    if (entered_.exchange(true, std::memory_order_acq_rel))
      violations_->fetch_add(1, std::memory_order_relaxed);
    inner_->progress();
    entered_.store(false, std::memory_order_release);
  }
  void close() override { inner_->close(); }
  bool link_up() const override { return inner_->link_up(); }

 private:
  std::unique_ptr<drv::DriverEndpoint> inner_;
  std::atomic<std::uint64_t>* violations_;
  std::atomic<bool> entered_{false};
};

// Shard-ownership determinism: under four progress threads and a full
// submit storm, every peer's endpoints are pumped by exactly one thread at
// a time (the claim holder) — the decorator sees zero concurrent entries.
TEST(ShardOwnership, ExclusivePumpPerShard) {
  EngineConfig cfg;
  cfg.progress_threads = 4;
  std::atomic<std::uint64_t> violations{0};
  std::vector<std::unique_ptr<RealTimerHost>> timers;
  timers.push_back(std::make_unique<RealTimerHost>());
  Engine hub(0, cfg, *timers.back());
  std::vector<std::unique_ptr<Engine>> peers;
  constexpr std::size_t kPeers = 8;
  for (std::size_t m = 0; m < kPeers; ++m) {
    timers.push_back(std::make_unique<RealTimerHost>());
    auto peer = std::make_unique<Engine>(static_cast<NodeId>(m + 1),
                                         EngineConfig{}, *timers.back());
    auto pair = drv::ShmEndpoint::make_pair();
    hub.add_rail(static_cast<NodeId>(m + 1),
                 std::make_unique<ExclusivePumpEndpoint>(std::move(pair.a),
                                                         &violations));
    peer->add_rail(0, std::move(pair.b));
    peer->start_progress_thread();
    peers.push_back(std::move(peer));
  }
  hub.start_progress_thread();
  const std::uint64_t done = submit_storm(hub, 4, kPeers, 200);
  EXPECT_EQ(done, 800u);
  EXPECT_TRUE(hub.flush());
  hub.stop_progress_thread();
  for (auto& p : peers) p->stop_progress_thread();
  EXPECT_EQ(violations.load(), 0u)
      << "a shard's endpoints were pumped by two threads at once";
  auto counters = hub.counters_snapshot();
  EXPECT_GT(counters["prog.shard_laps"], 0u);
}

/// Endpoint whose progress() wedges its pumping thread until released.
/// Sleeps rather than spins: a single-core CI host must keep scheduling the
/// healthy threads while this owner stays stuck.
class StallEndpoint final : public drv::DriverEndpoint {
 public:
  const drv::Capabilities& caps() const override { return caps_; }
  void set_handler(drv::EndpointHandler*) override {}
  void send(drv::TrackId, const GatherList&, std::uint64_t) override {}
  void progress() override {
    if (!stall_.load(std::memory_order_acquire)) return;
    stalled_.store(true, std::memory_order_release);
    while (stall_.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  bool stalled() const { return stalled_.load(std::memory_order_acquire); }
  void release() { stall_.store(false, std::memory_order_release); }

 private:
  drv::Capabilities caps_;
  std::atomic<bool> stall_{true};
  std::atomic<bool> stalled_{false};
};

// Work stealing: owners are assigned in peer-insertion order modulo
// progress_threads, so with two threads peers 1 and 3 land on thread 0 and
// peer 2 on thread 1. Wedge thread 0 inside peer 1's driver pump; traffic
// to peer 3 can then only complete if thread 1 steals the orphaned shard.
TEST(ShardOwnership, StalledOwnerShardIsStolen) {
  EngineConfig cfg;
  cfg.progress_threads = 2;
  cfg.prog_spin_laps = 4;
  cfg.prog_yield_laps = 4;
  RealTimerHost t0, t2, t3;
  Engine hub(0, cfg, t0);
  auto stall = std::make_unique<StallEndpoint>();
  StallEndpoint* wedge = stall.get();
  hub.add_rail(1, std::move(stall));
  Engine peer2(2, EngineConfig{}, t2);
  auto p2 = drv::ShmEndpoint::make_pair();
  hub.add_rail(2, std::move(p2.a));
  peer2.add_rail(0, std::move(p2.b));
  Engine peer3(3, EngineConfig{}, t3);
  auto p3 = drv::ShmEndpoint::make_pair();
  hub.add_rail(3, std::move(p3.a));
  peer3.add_rail(0, std::move(p3.b));
  peer2.start_progress_thread();
  peer3.start_progress_thread();
  hub.start_progress_thread();
  while (!wedge->stalled()) std::this_thread::yield();

  Channel ch = hub.open_channel(3, 1);
  for (int i = 0; i < 50; ++i) {
    SendHandle h = send_bytes(ch, pattern(64));
    ASSERT_TRUE(hub.wait_send(h, 5 * kNanosPerSec))
        << "message " << i << " wedged behind the stalled owner: steal failed";
  }
  auto counters = hub.counters_snapshot();
  EXPECT_GE(counters["prog.steals"], 1u);
  EXPECT_GE(counters["prog.t1.steals"], 1u)
      << "the healthy thread must be the one stealing";
  wedge->release();
  hub.stop_progress_thread();
  peer2.stop_progress_thread();
  peer3.stop_progress_thread();
}

// Ring-on vs ring-off parity must hold at every progress-thread count: the
// submit ring and the shard pump are independent axes, and neither may lose
// or double-count messages as threads scale.
TEST(ShardOwnership, RingParityAcrossProgressThreads) {
  for (const std::size_t pt : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    auto run = [pt](std::size_t ring) {
      EngineConfig cfg;
      cfg.submit_ring = ring;
      cfg.progress_threads = pt;
      HubWorld w(2, cfg);
      const std::uint64_t done = submit_storm(*w.hub, 2, 2, 200);
      EXPECT_EQ(done, 400u);
      EXPECT_TRUE(w.hub->flush());
      return w.hub->counters_snapshot();
    };
    auto with_ring = run(256);
    auto no_ring = run(0);
    // Wire-level counters (tx.bytes/tx.packets) legitimately vary with
    // real-time coalescing; the message-level accounting may not. Exact
    // packetization parity is SingleThreadSimDeterminismRingOnVsOff's job.
    for (const char* key : {"tx.msgs", "tx.frags_submitted", "tx.msgs_completed"})
      EXPECT_EQ(with_ring[key], no_ring[key])
          << key << " diverged at progress_threads=" << pt;
    EXPECT_EQ(no_ring["submit.ring_ops"], 0u);
  }
}

// Teardown under load: stop_progress_thread() races live posters, yet every
// staged RxEvent and parked submit-ring op must still drain — first by the
// stopping thread's final sweep, then by the waiters' own self-pumping — and
// the engine must restart cleanly afterwards. ASan/TSan runs of this test
// are the real assertion.
TEST(ConcurrencyTeardown, ShutdownUnderLoadDrainsStagedWork) {
  for (int round = 0; round < 3; ++round) {
    HubWorld w(2, EngineConfig{});
    std::vector<Channel> chans;
    chans.push_back(w.hub->open_channel(1, 1));
    chans.push_back(w.hub->open_channel(2, 1));
    std::mutex handles_mu;
    std::vector<SendHandle> handles;
    std::vector<std::thread> posters;
    for (int t = 0; t < 2; ++t) {
      posters.emplace_back([&, t] {
        for (int i = 0; i < 300; ++i) {
          SendHandle h = send_bytes(chans[static_cast<std::size_t>(t)],
                                    pattern(128));
          std::lock_guard<std::mutex> lk(handles_mu);
          handles.push_back(std::move(h));
        }
      });
    }
    // Stop the progress threads mid-burst, racing the posters.
    w.hub->stop_progress_thread();
    for (auto& th : posters) th.join();
    // No progress threads left: the waits below self-pump the drain.
    for (SendHandle& h : handles) EXPECT_TRUE(w.hub->wait_send(h));
    EXPECT_TRUE(w.hub->flush());
    auto counters = w.hub->counters_snapshot();
    EXPECT_EQ(counters["tx.msgs"], 600u) << "round " << round;
    Engine::Snapshot snap = w.hub->snapshot();
    EXPECT_TRUE(snap.quiescent()) << snap.to_string();
    // And the engine must come back up after a stop.
    w.hub->start_progress_thread();
    SendHandle h = send_bytes(chans[0], pattern(128));
    EXPECT_TRUE(w.hub->wait_send(h)) << "restart after stop failed";
  }
}

// ---------------------------------------------------------------------------
// ISSUE 7: timer wheel integration — idle engines hold no timers, and a
// parked owner honors a deadline armed after it went to sleep.
// ---------------------------------------------------------------------------

// Regression for the stale-timer family: superseded nagle/RTO entries used
// to linger in the heap until their deadline passed, so a logically idle
// engine still reported pending timers (and parks woke for nothing). With
// true cancellation the timer host must drain to empty once traffic stops:
// acks cancel RTO timers, an empty backlog cancels the rail's nagle timer.
TEST(TimerIntegration, IdleEngineHasNoPendingTimers) {
  EngineConfig hub_cfg;
  hub_cfg.reliability = true;
  hub_cfg.strategy = "nagle";
  hub_cfg.nagle_delay = 50 * kNanosPerMicro;
  EngineConfig peer_cfg;
  peer_cfg.reliability = true;
  RealTimerHost hub_timer, peer_timer;
  Engine hub(0, hub_cfg, hub_timer);
  Engine peer(1, peer_cfg, peer_timer);
  auto pair = drv::ShmEndpoint::make_pair();
  hub.add_rail(1, std::move(pair.a));
  peer.add_rail(0, std::move(pair.b));
  hub.start_progress_thread();
  peer.start_progress_thread();
  Channel ch = hub.open_channel(1, 1);
  for (int i = 0; i < 32; ++i) {
    SendHandle h = send_bytes(ch, pattern(64, static_cast<std::uint32_t>(i)));
    ASSERT_TRUE(hub.wait_send(h));
  }
  ASSERT_TRUE(hub.flush());
  // Everything is sent and acked; RTO/nagle cancellation races the last ack
  // by at most one progress lap — poll briefly, then the host must be empty.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (hub_timer.has_pending() &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_FALSE(hub_timer.has_pending())
      << "idle engine left timers armed (stale nagle/RTO entries)";
  EXPECT_EQ(hub_timer.next_deadline(), TimerHost::kNoDeadline);
  auto counters = hub.counters_snapshot();
  EXPECT_GT(counters["timer.arms"], 0u);
  EXPECT_GT(counters["timer.cancelled"], 0u)
      << "acks/empty-backlog must cancel timers, not abandon them";
  hub.stop_progress_thread();
  peer.stop_progress_thread();
}

// Regression alongside PostIdleSubmitLatencyBounded: a progress thread
// parked against a 200ms bound must re-derive that bound when a nagle hold
// arms a much earlier deadline after the park began. If the arm path fails
// to wake the shard owner, the lone fragment sleeps out the full park.
TEST(TimerIntegration, ParkedOwnerHonorsTimerArmedAfterPark) {
  EngineConfig hub_cfg;
  hub_cfg.strategy = "nagle";
  hub_cfg.nagle_delay = 2 * kNanosPerMilli;
  hub_cfg.prog_spin_laps = 4;
  hub_cfg.prog_yield_laps = 4;
  hub_cfg.prog_idle_wait = 200 * kNanosPerMilli;
  RealTimerHost hub_timer, peer_timer;
  Engine hub(0, hub_cfg, hub_timer);
  Engine peer(1, EngineConfig{}, peer_timer);
  auto pair = drv::ShmEndpoint::make_pair();
  hub.add_rail(1, std::move(pair.a));
  peer.add_rail(0, std::move(pair.b));
  hub.start_progress_thread();
  peer.start_progress_thread();
  Channel ch = hub.open_channel(1, 1);
  for (int i = 0; i < 8; ++i) {
    // Let the hub's progress thread run dry and park.
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    const auto t0 = std::chrono::steady_clock::now();
    // A lone small fragment: the nagle strategy holds it and arms a 2ms
    // timer — the only thing that can flush it on an otherwise idle engine.
    SendHandle h = send_bytes(ch, pattern(16));
    ASSERT_TRUE(hub.wait_send(h));
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    EXPECT_LT(ms, 100)
        << "nagle deadline slept out the park bound, iter " << i;
  }
  hub.stop_progress_thread();
  peer.stop_progress_thread();
}

}  // namespace
}  // namespace mado::core
