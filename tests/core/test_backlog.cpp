#include "core/backlog.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "util/rng.hpp"

namespace mado::core {
namespace {

TxFrag make_frag(ChannelId ch, MsgSeq seq, FragIdx idx, std::size_t len,
                 std::uint64_t order) {
  TxFrag f;
  f.channel = ch;
  f.msg_seq = seq;
  f.idx = idx;
  f.nfrags_total = static_cast<std::uint16_t>(idx + 1);
  f.last = true;
  f.owned.assign(len, Byte{0xab});
  f.len = len;
  f.order = order;
  f.submit_time = order * 10;
  return f;
}

TEST(TxBacklog, StartsEmpty) {
  TxBacklog b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.frag_count(), 0u);
  EXPECT_EQ(b.byte_count(), 0u);
  EXPECT_FALSE(b.has_control());
  EXPECT_TRUE(b.active_flows().empty());
  EXPECT_EQ(b.oldest_submit_time(), 0u);
}

TEST(TxBacklog, PushPopAccounting) {
  TxBacklog b;
  b.push(make_frag(1, 0, 0, 100, 1));
  b.push(make_frag(1, 1, 0, 50, 2));
  EXPECT_EQ(b.frag_count(), 2u);
  EXPECT_EQ(b.byte_count(), 150u);
  TxFrag f = b.pop(1);
  EXPECT_EQ(f.len, 100u);
  EXPECT_EQ(b.frag_count(), 1u);
  EXPECT_EQ(b.byte_count(), 50u);
  b.pop(1);
  EXPECT_TRUE(b.empty());
}

TEST(TxBacklog, PerFlowFifo) {
  TxBacklog b;
  for (std::uint64_t i = 0; i < 5; ++i)
    b.push(make_frag(3, static_cast<MsgSeq>(i), 0, 8, i));
  for (std::uint64_t i = 0; i < 5; ++i)
    EXPECT_EQ(b.pop(3).msg_seq, static_cast<MsgSeq>(i));
}

TEST(TxBacklog, ActiveFlowsOrderedByHeadAge) {
  TxBacklog b;
  b.push(make_frag(5, 0, 0, 8, 10));
  b.push(make_frag(2, 0, 0, 8, 5));
  b.push(make_frag(9, 0, 0, 8, 7));
  b.push(make_frag(2, 1, 0, 8, 20));  // behind flow 2's head
  const auto flows = b.active_flows();
  ASSERT_EQ(flows.size(), 3u);
  EXPECT_EQ(flows[0], 2u);
  EXPECT_EQ(flows[1], 9u);
  EXPECT_EQ(flows[2], 5u);
}

TEST(TxBacklog, PeekDepth) {
  TxBacklog b;
  b.push(make_frag(1, 0, 0, 8, 1));
  b.push(make_frag(1, 1, 0, 16, 2));
  EXPECT_EQ(b.flow_depth(1), 2u);
  EXPECT_EQ(b.peek(1, 0).len, 8u);
  EXPECT_EQ(b.peek(1, 1).len, 16u);
  EXPECT_EQ(b.flow_depth(42), 0u);
}

TEST(TxBacklog, ControlQueueSeparateAndPrioritizable) {
  TxBacklog b;
  b.push(make_frag(1, 0, 0, 8, 1));
  TxFrag ctrl = make_frag(1, 0, 0, 4, 2);
  ctrl.kind = FragKind::RdvCts;
  b.push_control(std::move(ctrl));
  EXPECT_TRUE(b.has_control());
  EXPECT_EQ(b.frag_count(), 2u);
  EXPECT_EQ(b.peek_control().kind, FragKind::RdvCts);
  TxFrag out = b.pop_control();
  EXPECT_EQ(out.kind, FragKind::RdvCts);
  EXPECT_FALSE(b.has_control());
  EXPECT_EQ(b.frag_count(), 1u);
}

TEST(TxBacklog, OldestSubmitTimeAcrossQueues) {
  TxBacklog b;
  b.push(make_frag(1, 0, 0, 8, 5));   // t = 50
  b.push(make_frag(2, 0, 0, 8, 3));   // t = 30
  EXPECT_EQ(b.oldest_submit_time(), 30u);
  TxFrag ctrl = make_frag(9, 0, 0, 4, 1);  // t = 10
  b.push_control(std::move(ctrl));
  EXPECT_EQ(b.oldest_submit_time(), 10u);
}

TEST(TxBacklog, FlowDisappearsWhenDrained) {
  TxBacklog b;
  b.push(make_frag(1, 0, 0, 8, 1));
  b.pop(1);
  EXPECT_TRUE(b.active_flows().empty());
  EXPECT_EQ(b.flow_depth(1), 0u);
}

TEST(TxBacklog, FlowViewAndPopN) {
  TxBacklog b;
  for (std::uint64_t i = 0; i < 4; ++i)
    b.push(make_frag(1, static_cast<MsgSeq>(i), 0, 8, i + 1));
  b.push(make_frag(2, 0, 0, 8, 5));

  // flow() exposes the whole queue through one lookup.
  const std::deque<TxFrag>& q = b.flow(1);
  ASSERT_EQ(q.size(), 4u);
  EXPECT_EQ(q[0].msg_seq, 0u);
  EXPECT_EQ(q[3].msg_seq, 3u);

  // pop_n consumes a prefix and keeps the index consistent: flow 1's head
  // advances to order 4, still older than flow 2's head (order 5).
  std::vector<TxFrag> out;
  b.pop_n(1, 3, out);
  ASSERT_EQ(out.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i)
    EXPECT_EQ(out[i].msg_seq, static_cast<MsgSeq>(i));
  EXPECT_EQ(b.frag_count(), 2u);
  EXPECT_EQ(b.oldest_flow(), 1u);

  b.pop_n(1, 1, out);  // drains flow 1 entirely
  EXPECT_EQ(b.flow_depth(1), 0u);
  EXPECT_EQ(b.active_flows(), std::vector<ChannelId>{2});
}

// Property: the incrementally maintained flow index is always identical to
// an index rebuilt from scratch — same flows, oldest head first — under an
// arbitrary interleaving of pushes and pops. This pins the invariant every
// strategy's fair-scan order rests on.
TEST(TxBacklog, FlowIndexMatchesRebuildUnderRandomOps) {
  mado::Rng rng(0xfeedface);
  TxBacklog b;
  // Shadow model: plain per-flow queues of submit orders.
  std::map<ChannelId, std::deque<std::uint64_t>> shadow;
  std::uint64_t order = 0;

  auto check = [&] {
    // Rebuild the expected index from the shadow model.
    std::vector<std::pair<std::uint64_t, ChannelId>> expect;
    for (const auto& [ch, q] : shadow)
      if (!q.empty()) expect.emplace_back(q.front(), ch);
    std::sort(expect.begin(), expect.end());
    const auto got = b.active_flows();
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], expect[i].second);
      ASSERT_EQ(b.peek(got[i]).order, expect[i].first);
    }
    if (!expect.empty()) {
      ASSERT_EQ(b.oldest_flow(), expect.front().second);
      // submit_time is monotone in order (order * 10 here), so the oldest
      // head also carries the minimum submit time.
      ASSERT_EQ(b.oldest_submit_time(), expect.front().first * 10);
    }
  };

  for (int step = 0; step < 2000; ++step) {
    const bool can_pop = b.frag_count() > 0;
    if (!can_pop || rng.chance(0.55)) {
      const ChannelId ch = static_cast<ChannelId>(rng.below(8));
      ++order;  // global submit order is strictly increasing
      b.push(make_frag(ch, static_cast<MsgSeq>(order), 0, 8, order));
      shadow[ch].push_back(order);
    } else if (rng.chance(0.3)) {
      // pop_n of a random prefix from a random active flow
      const auto flows = b.active_flows();
      const ChannelId ch =
          flows[static_cast<std::size_t>(rng.below(flows.size()))];
      const std::size_t n = 1 + rng.below(b.flow_depth(ch));
      std::vector<TxFrag> out;
      b.pop_n(ch, n, out);
      ASSERT_EQ(out.size(), n);
      for (const TxFrag& f : out) {
        ASSERT_EQ(f.order, shadow[ch].front());
        shadow[ch].pop_front();
      }
    } else {
      // single pop from a random active flow
      const auto flows = b.active_flows();
      const ChannelId ch =
          flows[static_cast<std::size_t>(rng.below(flows.size()))];
      const TxFrag f = b.pop(ch);
      ASSERT_EQ(f.order, shadow[ch].front());
      shadow[ch].pop_front();
    }
    if (step % 7 == 0 || step > 1900) check();
  }
  // Drain completely; index must empty out cleanly.
  while (b.frag_count() > 0) {
    const ChannelId ch = b.oldest_flow();
    b.pop(ch);
    shadow[ch].pop_front();
    check();
  }
  EXPECT_EQ(b.active_flow_count(), 0u);
  EXPECT_GT(b.flow_index_ops(), 0u);
}

TEST(SendState, PendingCountsDown) {
  auto s = std::make_shared<SendState>();
  s->pending = 3;
  EXPECT_NE(s->pending, 0u);
  s->pending -= 3;
  EXPECT_EQ(s->pending, 0u);
}

TEST(TxFrag, HeaderReflectsFields) {
  TxFrag f = make_frag(7, 3, 0, 16, 1);
  const FragHeader fh = f.header();
  EXPECT_EQ(fh.channel, 7u);
  EXPECT_EQ(fh.msg_seq, 3u);
  EXPECT_EQ(fh.len, 16u);
  EXPECT_TRUE(fh.last());
  EXPECT_EQ(fh.kind, FragKind::Data);
}

TEST(TxFrag, DataPointsToOwnedOrExt) {
  TxFrag f;
  Bytes ext = {1, 2, 3};
  f.ext = ext.data();
  f.len = 3;
  EXPECT_EQ(f.data(), ext.data());
  f.owned = {9, 9};
  EXPECT_EQ(f.data(), f.owned.data());
}

}  // namespace
}  // namespace mado::core
