// Validates the Chrome trace-event exporter against the schema the Perfetto
// and chrome://tracing loaders actually enforce: every event carries
// name/ph/ts/pid/tid, complete ("X") events carry a duration, and flow
// events come in matched s/f pairs bound by id. Uses a self-contained JSON
// parser (objects/arrays/strings/numbers) so the test needs no external
// dependency.
#include "core/trace_export.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

// ---- minimal JSON parser ----------------------------------------------------

struct Json {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  bool has(const std::string& key) const {
    return type == Type::Object && obj.count(key) > 0;
  }
  const Json& at(const std::string& key) const { return obj.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  /// Parses the whole document; sets ok=false (with a position) on any
  /// syntax error or trailing garbage.
  Json parse(bool& ok) {
    Json v = value();
    skip_ws();
    ok = !failed_ && pos_ == s_.size();
    return v;
  }

 private:
  void fail() { failed_ = true; }
  char peek() { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  char get() { return pos_ < s_.size() ? s_[pos_++] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool expect(char c) {
    skip_ws();
    if (peek() != c) {
      fail();
      return false;
    }
    ++pos_;
    return true;
  }

  Json value() {
    skip_ws();
    if (failed_) return {};
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return bool_value();
      case 'n':
        return null_value();
      default:
        return number();
    }
  }

  Json object() {
    Json v;
    v.type = Json::Type::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      Json key = string_value();
      if (failed_ || !expect(':')) return v;
      v.obj[key.str] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    Json v;
    v.type = Json::Type::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Json string_value() {
    Json v;
    v.type = Json::Type::String;
    if (!expect('"')) return v;
    while (pos_ < s_.size() && peek() != '"') {
      char c = get();
      if (c == '\\') {
        const char e = get();
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          default: fail(); return v;
        }
      }
      v.str += c;
    }
    expect('"');
    return v;
  }

  Json bool_value() {
    Json v;
    v.type = Json::Type::Bool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.b = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
    } else {
      fail();
    }
    return v;
  }

  Json null_value() {
    Json v;
    if (s_.compare(pos_, 4, "null") == 0)
      pos_ += 4;
    else
      fail();
    return v;
  }

  Json number() {
    Json v;
    v.type = Json::Type::Number;
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start) {
      fail();
      return v;
    }
    v.num = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

Json parse_or_die(const std::string& text) {
  bool ok = false;
  JsonParser p(text);
  Json doc = p.parse(ok);
  EXPECT_TRUE(ok) << "exporter produced invalid JSON:\n" << text;
  return doc;
}

/// Collect a traced run of the standard mixed workload (eager burst + one
/// rendezvous) over one shared tracer, so tx and rx sides pair up.
std::vector<TraceRecord> traced_workload() {
  SimWorld w(2);
  w.connect(0, 1, drv::test_profile());
  Tracer tr;
  w.node(0).set_tracer(&tr);
  w.node(1).set_tracer(&tr);
  Channel a = w.node(0).open_channel(1, 7);
  Channel b = w.node(1).open_channel(0, 7);
  for (int i = 0; i < 4; ++i) send_bytes(a, pattern(64));
  for (int i = 0; i < 4; ++i) recv_bytes(b, 64);
  const Bytes big = pattern(64 * 1024);  // Later mode: buffer must outlive
  send_bytes(a, big, SendMode::Later);
  recv_bytes(b, big.size());
  w.node(0).flush();
  return tr.snapshot();
}

// ---- tests ------------------------------------------------------------------

TEST(TraceExport, EmptyTraceIsValidAndLoadable) {
  const Json doc = parse_or_die(to_chrome_trace({}));
  ASSERT_TRUE(doc.has("traceEvents"));
  EXPECT_EQ(doc.at("traceEvents").type, Json::Type::Array);
  EXPECT_TRUE(doc.at("traceEvents").arr.empty());
  ASSERT_TRUE(doc.has("displayTimeUnit"));
  EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");
}

TEST(TraceExport, EveryEventCarriesRequiredFields) {
  const Json doc = parse_or_die(to_chrome_trace(traced_workload()));
  const auto& events = doc.at("traceEvents").arr;
  ASSERT_FALSE(events.empty());
  for (const auto& e : events) {
    ASSERT_EQ(e.type, Json::Type::Object);
    ASSERT_TRUE(e.has("name"));
    EXPECT_EQ(e.at("name").type, Json::Type::String);
    ASSERT_TRUE(e.has("ph"));
    ASSERT_EQ(e.at("ph").str.size(), 1u);
    const char ph = e.at("ph").str[0];
    EXPECT_TRUE(ph == 'M' || ph == 'i' || ph == 'X' || ph == 's' || ph == 'f')
        << "unexpected phase " << ph;
    ASSERT_TRUE(e.has("ts"));
    EXPECT_EQ(e.at("ts").type, Json::Type::Number);
    EXPECT_GE(e.at("ts").num, 0.0);
    ASSERT_TRUE(e.has("pid"));
    ASSERT_TRUE(e.has("tid"));
    if (ph == 'X') {
      ASSERT_TRUE(e.has("dur")) << "complete event without duration";
      EXPECT_GT(e.at("dur").num, 0.0);
    }
    if (ph == 'i') {
      EXPECT_TRUE(e.has("s"));  // instant scope
    }
  }
}

TEST(TraceExport, FlowEventsPairAcrossEngines) {
  const Json doc = parse_or_die(to_chrome_trace(traced_workload()));
  const auto& events = doc.at("traceEvents").arr;
  std::map<std::string, int> starts, finishes;
  double last_start_ts = -1;
  for (const auto& e : events) {
    if (e.at("ph").str == "s") {
      starts[e.at("id").str]++;
      last_start_ts = e.at("ts").num;
    } else if (e.at("ph").str == "f") {
      finishes[e.at("id").str]++;
      EXPECT_EQ(e.at("bp").str, "e");  // bind to enclosing slice
    }
  }
  (void)last_start_ts;
  // The workload crosses the wire, so token flows must exist and pair 1:1.
  ASSERT_FALSE(starts.empty());
  EXPECT_EQ(starts.size(), finishes.size());
  for (const auto& [id, n] : starts) {
    EXPECT_EQ(n, 1) << "duplicate flow start " << id;
    EXPECT_EQ(finishes[id], 1) << "unmatched flow " << id;
  }
  for (const auto& [id, n] : finishes)
    EXPECT_EQ(starts.count(id), 1u) << "finish without start " << id;
}

TEST(TraceExport, PacketSpansAppearOnBothNodes) {
  const Json doc = parse_or_die(to_chrome_trace(traced_workload()));
  bool tx_on_0 = false, rx_on_1 = false;
  for (const auto& e : doc.at("traceEvents").arr) {
    if (e.at("name").str == "PacketTx" && e.at("pid").num == 0) tx_on_0 = true;
    if (e.at("name").str == "PacketRx" && e.at("pid").num == 1) rx_on_1 = true;
  }
  EXPECT_TRUE(tx_on_0);
  EXPECT_TRUE(rx_on_1);
}

TEST(TraceExport, RendezvousLifecycleBecomesSpans) {
  const Json doc = parse_or_die(to_chrome_trace(traced_workload()));
  bool handshake = false, transfer = false, recv = false;
  for (const auto& e : doc.at("traceEvents").arr) {
    const std::string& n = e.at("name").str;
    if (n == "rdv.handshake") {
      handshake = true;
      EXPECT_EQ(e.at("ph").str, "X");
      EXPECT_EQ(e.at("pid").num, 0);  // sender side
    }
    if (n == "rdv.transfer") transfer = true;
    if (n == "rdv.recv") {
      recv = true;
      EXPECT_EQ(e.at("pid").num, 1);  // receiver side
    }
  }
  EXPECT_TRUE(handshake);
  EXPECT_TRUE(transfer);
  EXPECT_TRUE(recv);
}

TEST(TraceExport, MetadataNamesProcessesAndTracks) {
  const Json doc = parse_or_die(to_chrome_trace(traced_workload()));
  bool proc0 = false, thread_named = false;
  for (const auto& e : doc.at("traceEvents").arr) {
    if (e.at("ph").str != "M") continue;
    if (e.at("name").str == "process_name" && e.at("pid").num == 0) {
      proc0 = true;
      EXPECT_EQ(e.at("args").at("name").str, "node 0");
    }
    if (e.at("name").str == "thread_name") thread_named = true;
  }
  EXPECT_TRUE(proc0);
  EXPECT_TRUE(thread_named);
}

TEST(TraceExport, WriteFileRoundTrips) {
  const auto records = traced_workload();
  const std::string path =
      ::testing::TempDir() + "mado_trace_export_test.json";
  ASSERT_TRUE(write_chrome_trace_file(path, records));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(text, to_chrome_trace(records));
}

TEST(TraceExport, FlowEventsCanBeDisabled) {
  ChromeTraceOptions opts;
  opts.flow_events = false;
  const Json doc = parse_or_die(to_chrome_trace(traced_workload(), opts));
  for (const auto& e : doc.at("traceEvents").arr) {
    EXPECT_NE(e.at("ph").str, "s");
    EXPECT_NE(e.at("ph").str, "f");
  }
}

}  // namespace
}  // namespace mado::core
