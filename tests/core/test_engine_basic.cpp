// End-to-end engine tests on the simulated fabric (single rail).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

class EngineBasicTest : public ::testing::Test {
 protected:
  void SetUp() override { build({}); }

  void build(const EngineConfig& cfg) {
    world_ = std::make_unique<SimWorld>(2, cfg);
    world_->connect(0, 1, drv::test_profile());
  }

  std::unique_ptr<SimWorld> world_;
};

TEST_F(EngineBasicTest, SingleFragmentRoundTrip) {
  Channel a = world_->node(0).open_channel(1, 7);
  Channel b = world_->node(1).open_channel(0, 7);
  const Bytes data = pattern(100);
  SendHandle h = send_bytes(a, data);
  EXPECT_EQ(recv_bytes(b, 100), data);
  EXPECT_TRUE(world_->node(0).wait_send(h));
}

TEST_F(EngineBasicTest, PostReturnsImmediately) {
  Channel a = world_->node(0).open_channel(1, 1);
  world_->node(1).open_channel(0, 1);
  const Bytes data = pattern(64);
  SendHandle h = send_bytes(a, data);
  // The collect layer enqueued and the first packet may be in flight, but
  // post() must not have waited for completion events (no fabric steps ran).
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(world_->now(), 0u);
}

TEST_F(EngineBasicTest, MultiFragmentMessage) {
  Channel a = world_->node(0).open_channel(1, 7);
  Channel b = world_->node(1).open_channel(0, 7);
  const Bytes h1 = pattern(16, 1), h2 = pattern(32, 2), body = pattern(200, 3);
  Message m;
  m.pack(h1.data(), h1.size(), SendMode::Safe);
  m.pack(h2.data(), h2.size(), SendMode::Safe);
  m.pack(body.data(), body.size(), SendMode::Safe);
  a.post(std::move(m));

  Bytes r1(16), r2(32), rbody(200);
  IncomingMessage im = b.begin_recv();
  im.unpack(r1.data(), r1.size(), RecvMode::Express);
  im.unpack(r2.data(), r2.size(), RecvMode::Express);
  im.unpack(rbody.data(), rbody.size(), RecvMode::Cheaper);
  im.finish();
  EXPECT_EQ(r1, h1);
  EXPECT_EQ(r2, h2);
  EXPECT_EQ(rbody, body);
}

TEST_F(EngineBasicTest, ManyMessagesInOrder) {
  Channel a = world_->node(0).open_channel(1, 7);
  Channel b = world_->node(1).open_channel(0, 7);
  constexpr int kN = 50;
  for (int i = 0; i < kN; ++i)
    send_bytes(a, pattern(64, static_cast<std::uint32_t>(i)));
  for (int i = 0; i < kN; ++i)
    EXPECT_EQ(recv_bytes(b, 64), pattern(64, static_cast<std::uint32_t>(i)))
        << "message " << i;
  a.flush();
}

TEST_F(EngineBasicTest, BidirectionalTraffic) {
  Channel a = world_->node(0).open_channel(1, 7);
  Channel b = world_->node(1).open_channel(0, 7);
  send_bytes(a, pattern(64, 1));
  send_bytes(b, pattern(64, 2));
  EXPECT_EQ(recv_bytes(b, 64), pattern(64, 1));
  EXPECT_EQ(recv_bytes(a, 64), pattern(64, 2));
}

TEST_F(EngineBasicTest, SafeModeBufferReusableImmediately) {
  Channel a = world_->node(0).open_channel(1, 7);
  Channel b = world_->node(1).open_channel(0, 7);
  Bytes buf = pattern(64, 1);
  const Bytes expect = buf;
  Message m;
  m.pack(buf.data(), buf.size(), SendMode::Safe);
  a.post(std::move(m));
  std::fill(buf.begin(), buf.end(), Byte{0xee});  // clobber after post
  EXPECT_EQ(recv_bytes(b, 64), expect);
}

TEST_F(EngineBasicTest, LaterModeReadsBufferAtPacketBuildTime) {
  Channel a = world_->node(0).open_channel(1, 7);
  Channel b = world_->node(1).open_channel(0, 7);
  Bytes buf = pattern(64, 1);
  Message m;
  m.pack(buf.data(), buf.size(), SendMode::Later);
  SendHandle h = a.post(std::move(m));
  EXPECT_EQ(recv_bytes(b, 64), pattern(64, 1));
  EXPECT_TRUE(world_->node(0).wait_send(h));  // buf must outlive completion
}

TEST_F(EngineBasicTest, ZeroLengthFragment) {
  Channel a = world_->node(0).open_channel(1, 7);
  Channel b = world_->node(1).open_channel(0, 7);
  const Bytes body = pattern(10);
  Message m;
  m.pack(nullptr, 0, SendMode::Safe);
  m.pack(body.data(), body.size(), SendMode::Safe);
  a.post(std::move(m));
  Bytes rbody(10);
  IncomingMessage im = b.begin_recv();
  im.unpack(nullptr, 0, RecvMode::Express);
  im.unpack(rbody.data(), 10, RecvMode::Express);
  im.finish();
  EXPECT_EQ(rbody, body);
}

TEST_F(EngineBasicTest, UnexpectedArrivalBuffered) {
  Channel a = world_->node(0).open_channel(1, 7);
  Channel b = world_->node(1).open_channel(0, 7);
  send_bytes(a, pattern(64));
  world_->run();  // deliver before any recv is posted
  EXPECT_GE(world_->node(1).stats().counter("rx.unexpected_frags"), 1u);
  EXPECT_EQ(recv_bytes(b, 64), pattern(64));
}

TEST_F(EngineBasicTest, EmptyMessageRejected) {
  Channel a = world_->node(0).open_channel(1, 7);
  Message m;
  EXPECT_THROW(a.post(std::move(m)), CheckError);
}

TEST_F(EngineBasicTest, WrongUnpackSizeThrows) {
  Channel a = world_->node(0).open_channel(1, 7);
  Channel b = world_->node(1).open_channel(0, 7);
  send_bytes(a, pattern(64));
  world_->run();
  Bytes out(63);
  IncomingMessage im = b.begin_recv();
  EXPECT_THROW(im.unpack(out.data(), out.size(), RecvMode::Express),
               CheckError);
}

TEST_F(EngineBasicTest, FinishWithoutUnpackingAllThrows) {
  Channel a = world_->node(0).open_channel(1, 7);
  Channel b = world_->node(1).open_channel(0, 7);
  Message m;
  const Bytes d = pattern(8);
  m.pack(d.data(), d.size(), SendMode::Safe);
  m.pack(d.data(), d.size(), SendMode::Safe);
  a.post(std::move(m));
  Bytes out(8);
  IncomingMessage im = b.begin_recv();
  im.unpack(out.data(), 8, RecvMode::Express);
  EXPECT_THROW(im.finish(), CheckError);
}

TEST_F(EngineBasicTest, InvalidHandlesRejected) {
  Channel unbound;
  EXPECT_FALSE(unbound.valid());
  Message m;
  const Bytes d = pattern(4);
  m.pack(d.data(), d.size(), SendMode::Safe);
  EXPECT_THROW(unbound.post(std::move(m)), CheckError);
  EXPECT_THROW(unbound.begin_recv(), CheckError);
  EXPECT_THROW(unbound.flush(), CheckError);
  SendHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_THROW(world_->node(0).wait_send(h), CheckError);
  EXPECT_THROW(world_->node(0).send_done(h), CheckError);
}

TEST_F(EngineBasicTest, ZeroRdvChunkConfigClampedToOne) {
  EngineConfig cfg;
  cfg.rdv_chunk = 0;  // engine must not divide by zero or loop forever
  cfg.rdv_threshold_override = 64;
  build(cfg);
  Channel a = world_->node(0).open_channel(1, 7);
  Channel b = world_->node(1).open_channel(0, 7);
  const Bytes data = pattern(80);  // 80 one-byte chunks
  send_bytes(a, data);
  EXPECT_EQ(recv_bytes(b, 80), data);
}

TEST_F(EngineBasicTest, ReservedRmaChannelIdRejected) {
  EXPECT_THROW(world_->node(0).open_channel(1, kRmaChannel), CheckError);
}

TEST_F(EngineBasicTest, DoubleChannelOpenRejected) {
  world_->node(0).open_channel(1, 7);
  EXPECT_THROW(world_->node(0).open_channel(1, 7), CheckError);
}

TEST_F(EngineBasicTest, PostOnUnopenedChannelRejected) {
  // Channel handle forged for a peer with rails but no such channel state
  // cannot be constructed through the public API; instead check that using
  // a channel toward an unknown peer fails cleanly at open time.
  EXPECT_THROW(world_->node(0).open_channel(9, 1), CheckError);
}

TEST_F(EngineBasicTest, MultipleChannelsIndependentStreams) {
  Channel a1 = world_->node(0).open_channel(1, 1);
  Channel a2 = world_->node(0).open_channel(1, 2);
  Channel b1 = world_->node(1).open_channel(0, 1);
  Channel b2 = world_->node(1).open_channel(0, 2);
  send_bytes(a1, pattern(32, 1));
  send_bytes(a2, pattern(32, 2));
  send_bytes(a1, pattern(32, 3));
  EXPECT_EQ(recv_bytes(b2, 32), pattern(32, 2));
  EXPECT_EQ(recv_bytes(b1, 32), pattern(32, 1));
  EXPECT_EQ(recv_bytes(b1, 32), pattern(32, 3));
}

TEST_F(EngineBasicTest, FlushDrainsEverything) {
  Channel a = world_->node(0).open_channel(1, 7);
  world_->node(1).open_channel(0, 7);
  for (int i = 0; i < 20; ++i) send_bytes(a, pattern(64));
  EXPECT_TRUE(world_->node(0).flush());
  EXPECT_EQ(world_->node(0).inflight_packets(), 0u);
  EXPECT_EQ(world_->node(0).backlog_frags(1, 0), 0u);
}

TEST_F(EngineBasicTest, StatsCountPacketsAndFrags) {
  Channel a = world_->node(0).open_channel(1, 7);
  Channel b = world_->node(1).open_channel(0, 7);
  send_bytes(a, pattern(64));
  recv_bytes(b, 64);
  auto& s = world_->node(0).stats();
  EXPECT_EQ(s.counter("tx.msgs"), 1u);
  EXPECT_GE(s.counter("tx.packets"), 1u);
  EXPECT_EQ(s.counter("tx.frags"), 1u);
  EXPECT_EQ(world_->node(1).stats().counter("rx.msgs_completed"), 1u);
}

TEST_F(EngineBasicTest, SendDoneReflectsCompletion) {
  Channel a = world_->node(0).open_channel(1, 7);
  world_->node(1).open_channel(0, 7);
  SendHandle h = send_bytes(a, pattern(64));
  EXPECT_FALSE(world_->node(0).send_done(h));
  world_->run();
  EXPECT_TRUE(world_->node(0).send_done(h));
}

TEST_F(EngineBasicTest, CheaperModeSmallFragmentIsCopied) {
  Channel a = world_->node(0).open_channel(1, 7);
  Channel b = world_->node(1).open_channel(0, 7);
  Bytes buf = pattern(32, 5);
  Message m;
  m.pack(buf.data(), buf.size(), SendMode::Cheaper);  // 32 <= copy bound
  a.post(std::move(m));
  std::fill(buf.begin(), buf.end(), Byte{0});
  EXPECT_EQ(recv_bytes(b, 32), pattern(32, 5));
}

TEST_F(EngineBasicTest, ProbeReflectsPendingMessage) {
  Channel a = world_->node(0).open_channel(1, 7);
  Channel b = world_->node(1).open_channel(0, 7);
  EXPECT_FALSE(b.probe());
  send_bytes(a, pattern(64));
  EXPECT_FALSE(b.probe());  // not delivered yet (no fabric steps)
  world_->run();
  EXPECT_TRUE(b.probe());
  recv_bytes(b, 64);
  EXPECT_FALSE(b.probe());
}

TEST_F(EngineBasicTest, SnapshotTracksQueuesAndQuiescence) {
  Channel a = world_->node(0).open_channel(1, 7);
  Channel b = world_->node(1).open_channel(0, 7);
  EXPECT_TRUE(world_->node(0).snapshot().quiescent());
  for (int i = 0; i < 5; ++i) send_bytes(a, pattern(64));
  const auto busy = world_->node(0).snapshot();
  EXPECT_FALSE(busy.quiescent());
  ASSERT_EQ(busy.peers.size(), 1u);
  EXPECT_EQ(busy.peers[0].open_channels, 1u);
  ASSERT_EQ(busy.peers[0].rails.size(), 1u);
  EXPECT_EQ(busy.peers[0].rails[0].driver, "test");
  EXPECT_EQ(busy.peers[0].rails[0].outstanding_packets, 1u);
  EXPECT_GT(busy.peers[0].rails[0].backlog_frags, 0u);
  EXPECT_NE(busy.to_string().find("rail 0 (test)"), std::string::npos);
  for (int i = 0; i < 5; ++i) recv_bytes(b, 64);
  world_->node(0).flush();
  EXPECT_TRUE(world_->node(0).snapshot().quiescent());
}

TEST_F(EngineBasicTest, BacklogAccumulatesWhileNicBusy) {
  // With track depth 1, only one packet is in flight; remaining fragments
  // pile up in the collect layer until the completion pump drains them.
  Channel a = world_->node(0).open_channel(1, 7);
  world_->node(1).open_channel(0, 7);
  for (int i = 0; i < 10; ++i) send_bytes(a, pattern(64));
  EXPECT_EQ(world_->node(0).inflight_packets(), 1u);
  EXPECT_GE(world_->node(0).backlog_frags(1, 0), 1u);
  world_->node(0).flush();
  EXPECT_EQ(world_->node(0).backlog_frags(1, 0), 0u);
}

}  // namespace
}  // namespace mado::core
