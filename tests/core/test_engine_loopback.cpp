// Manual progression mode: engines over the loopback driver with neither a
// simulation fabric nor progress threads — every blocking call pumps its
// own engine's progress() internally (the library-embedded usage mode).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/timer_host.hpp"
#include "drivers/loopback_driver.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;

class LoopbackEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = std::make_unique<Engine>(0, EngineConfig{}, timers_a_);
    b_ = std::make_unique<Engine>(1, EngineConfig{}, timers_b_);
    auto pair = drv::LoopbackEndpoint::make_pair(drv::test_profile());
    a_->add_rail(1, std::move(pair.a));
    b_->add_rail(0, std::move(pair.b));
    cha_ = a_->open_channel(1, 7);
    chb_ = b_->open_channel(0, 7);
  }

  RealTimerHost timers_a_, timers_b_;
  std::unique_ptr<Engine> a_, b_;
  Channel cha_, chb_;
};

TEST_F(LoopbackEngineTest, BlockingCallsSelfPump) {
  const Bytes data = pattern(64);
  Message m;
  m.pack(data.data(), data.size(), SendMode::Safe);
  SendHandle h = cha_.post(std::move(m));
  // b's blocking unpack pumps b's driver; a's wait pumps a's completions.
  Bytes out(64);
  IncomingMessage im = chb_.begin_recv();
  im.unpack(out.data(), 64, RecvMode::Express);
  im.finish();
  EXPECT_EQ(out, data);
  EXPECT_TRUE(a_->wait_send(h));
}

TEST_F(LoopbackEngineTest, RendezvousWorksWithManualPumping) {
  const Bytes data = pattern(16 * 1024);  // > test profile threshold
  Message m;
  m.pack(data.data(), data.size(), SendMode::Later);
  SendHandle h = cha_.post(std::move(m));
  Bytes out(data.size());
  IncomingMessage im = chb_.begin_recv();
  // The express unpack drives the whole handshake: b pumps (RTS in),
  // posts CTS; a's arrival processing happens when b's wait loop calls
  // b.progress() which delivers... the CTS sits in a's endpoint, drained
  // by a's progress — which the cross-engine dependency forces through
  // wait_send below. Use Cheaper + finish so b doesn't deadlock waiting
  // for data a hasn't pumped yet.
  im.unpack(out.data(), out.size(), RecvMode::Cheaper);
  // Interleave both engines' progression manually until done.
  for (int i = 0; i < 10000 && !a_->send_done(h); ++i) {
    a_->progress();
    b_->progress();
  }
  im.finish();
  EXPECT_EQ(out, data);
  EXPECT_TRUE(a_->send_done(h));
}

TEST_F(LoopbackEngineTest, ExplicitProgressDrainsBacklog) {
  for (int i = 0; i < 10; ++i) {
    const Bytes data = pattern(64, static_cast<std::uint32_t>(i));
    Message m;
    m.pack(data.data(), data.size(), SendMode::Safe);
    cha_.post(std::move(m));
  }
  for (int i = 0; i < 100 && a_->inflight_packets() + a_->backlog_frags(1, 0);
       ++i) {
    a_->progress();
    b_->progress();
  }
  EXPECT_EQ(a_->backlog_frags(1, 0), 0u);
  for (int i = 0; i < 10; ++i) {
    Bytes out(64);
    IncomingMessage im = chb_.begin_recv();
    im.unpack(out.data(), 64, RecvMode::Express);
    im.finish();
    EXPECT_EQ(out, pattern(64, static_cast<std::uint32_t>(i)));
  }
}

}  // namespace
}  // namespace mado::core
