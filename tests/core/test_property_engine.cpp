// End-to-end property sweep: randomized bidirectional traffic must arrive
// intact and in per-channel order under EVERY (strategy × driver profile)
// combination — the engine's correctness must not depend on which
// optimization policy reorders the packets underneath.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "util/rng.hpp"

namespace mado::core {
namespace {

using Params =
    std::tuple<std::string /*strategy*/, std::string /*profile*/,
               std::uint64_t /*seed*/>;

Bytes seeded_payload(std::uint64_t id, std::size_t len) {
  Bytes b(len);
  Rng rng(id * 0x9e3779b9u + 17);
  for (auto& c : b) c = static_cast<Byte>(rng.next());
  return b;
}

struct PlannedMessage {
  ChannelId channel;
  std::uint64_t id;       // payload seed
  std::vector<std::size_t> frag_sizes;
};

class EnginePropertyTest : public ::testing::TestWithParam<Params> {};

TEST_P(EnginePropertyTest, RandomTrafficArrivesIntactAndOrdered) {
  const auto& [strategy, profile, seed] = GetParam();
  EngineConfig cfg;
  cfg.strategy = strategy;
  cfg.nagle_delay = strategy == "nagle" ? usec(2) : 0;
  SimWorld w(2, cfg);
  w.connect(0, 1, drv::profile_by_name(profile));

  constexpr std::size_t kChannels = 4;
  std::vector<Channel> tx[2], rx[2];
  for (ChannelId c = 0; c < kChannels; ++c) {
    tx[0].push_back(w.node(0).open_channel(1, c));
    rx[1].push_back(w.node(1).open_channel(0, c));
    // Bidirectional: the same channel objects serve the reverse direction.
    tx[1].push_back(rx[1].back());
    rx[0].push_back(tx[0].back());
  }

  // Plan random traffic in both directions.
  Rng rng(seed);
  std::uint64_t next_id = 1;
  std::vector<PlannedMessage> plan[2];  // [direction]
  for (int dir = 0; dir < 2; ++dir) {
    const std::size_t nmsgs = 20 + rng.below(20);
    for (std::size_t m = 0; m < nmsgs; ++m) {
      PlannedMessage pm;
      pm.channel = static_cast<ChannelId>(rng.below(kChannels));
      pm.id = next_id++;
      const std::size_t nfrags = 1 + rng.below(3);
      for (std::size_t f = 0; f < nfrags; ++f) {
        // Tri-modal: tiny header-ish, medium eager, large rendezvous.
        const double roll = rng.uniform();
        std::size_t len;
        if (roll < 0.5) len = 4 + rng.below(60);
        else if (roll < 0.9) len = 256 + rng.below(2048);
        else len = 40'000 + rng.below(60'000);
        pm.frag_sizes.push_back(len);
      }
      plan[dir].push_back(std::move(pm));
    }
  }

  // Submit everything (interleaved across directions as planned order).
  std::vector<Bytes> keepalive;  // payload storage for Later-mode fragments
  for (int dir = 0; dir < 2; ++dir) {
    for (const PlannedMessage& pm : plan[dir]) {
      Message m;
      for (std::size_t f = 0; f < pm.frag_sizes.size(); ++f) {
        keepalive.push_back(
            seeded_payload(pm.id * 10 + f, pm.frag_sizes[f]));
        m.pack(keepalive.back().data(), keepalive.back().size(),
               core::SendMode::Later);
      }
      tx[dir][pm.channel].post(std::move(m));
    }
  }

  // Receive per channel in order, both directions, verifying payloads.
  for (int dir = 0; dir < 2; ++dir) {
    // Per channel, expected message sub-sequence of plan[dir].
    std::vector<std::vector<const PlannedMessage*>> per_ch(kChannels);
    for (const PlannedMessage& pm : plan[dir])
      per_ch[pm.channel].push_back(&pm);
    const int rx_side = dir == 0 ? 1 : 0;
    for (ChannelId c = 0; c < kChannels; ++c) {
      for (const PlannedMessage* pm : per_ch[c]) {
        IncomingMessage im = rx[rx_side][c].begin_recv();
        std::vector<Bytes> outs;
        for (std::size_t f = 0; f < pm->frag_sizes.size(); ++f) {
          outs.emplace_back(pm->frag_sizes[f]);
          im.unpack(outs.back().data(), outs.back().size(),
                    f == 0 ? RecvMode::Express : RecvMode::Cheaper);
        }
        im.finish();
        for (std::size_t f = 0; f < outs.size(); ++f)
          ASSERT_EQ(outs[f], seeded_payload(pm->id * 10 + f,
                                            pm->frag_sizes[f]))
              << "dir " << dir << " ch " << c << " msg id " << pm->id
              << " frag " << f << " (" << strategy << "/" << profile << ")";
      }
    }
  }
  EXPECT_TRUE(w.node(0).flush());
  EXPECT_TRUE(w.node(1).flush());
  EXPECT_EQ(w.node(0).stats().counter("rx.malformed"), 0u);
  EXPECT_EQ(w.node(1).stats().counter("rx.malformed"), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    StrategyProfileMatrix, EnginePropertyTest,
    ::testing::Combine(
        ::testing::Values("fifo", "aggreg", "aggreg_exhaustive", "nagle",
                          "adaptive"),
        ::testing::Values("mx", "elan", "tcp"),
        ::testing::Values(std::uint64_t{7}, std::uint64_t{99},
                          std::uint64_t{2026})),
    [](const ::testing::TestParamInfo<Params>& pi) {
      return std::get<0>(pi.param) + "_" + std::get<1>(pi.param) + "_s" +
             std::to_string(std::get<2>(pi.param));
    });

}  // namespace
}  // namespace mado::core
