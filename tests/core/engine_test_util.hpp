// Shared helpers for engine tests.
#pragma once

#include <cstdint>
#include <string>

#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "util/wire.hpp"

namespace mado::core::testing {

inline Bytes pattern(std::size_t n, std::uint32_t seed = 1) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = static_cast<Byte>((seed * 2654435761u + i * 40503u) >> 13);
  return b;
}

/// Post a single-fragment message.
inline SendHandle send_bytes(Channel& ch, const Bytes& data,
                             SendMode mode = SendMode::Safe) {
  Message m;
  m.pack(data.data(), data.size(), mode);
  return ch.post(std::move(m));
}

/// Receive a single-fragment message of known size.
inline Bytes recv_bytes(Channel& ch, std::size_t n) {
  Bytes out(n);
  IncomingMessage im = ch.begin_recv();
  im.unpack(out.data(), n, RecvMode::Express);
  im.finish();
  return out;
}

}  // namespace mado::core::testing
