#include "core/timer_host.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace mado::core {
namespace {

TEST(SimTimerHost, DelegatesToFabric) {
  sim::Fabric fabric;
  SimTimerHost timers(fabric);
  EXPECT_EQ(timers.now(), 0u);
  std::vector<int> fired;
  timers.schedule_at(100, [&] { fired.push_back(1); });
  timers.schedule_at(50, [&] { fired.push_back(0); });
  EXPECT_EQ(timers.run_due(), 0u);  // sim timers run via the fabric
  fabric.run_until_idle();
  EXPECT_EQ(fired, (std::vector<int>{0, 1}));
  EXPECT_EQ(timers.now(), 100u);
}

TEST(RealTimerHost, NowAdvances) {
  RealTimerHost timers;
  const Nanos t0 = timers.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(timers.now(), t0);
}

TEST(RealTimerHost, DueTimersRunInDeadlineOrder) {
  RealTimerHost timers;
  std::vector<int> fired;
  const Nanos now = timers.now();
  timers.schedule_at(now, [&] { fired.push_back(0); });
  timers.schedule_at(now + 1, [&] { fired.push_back(1); });
  timers.schedule_at(now + 2, [&] { fired.push_back(2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(timers.run_due(), 3u);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(timers.has_pending());
}

TEST(RealTimerHost, FutureTimersNotRunEarly) {
  RealTimerHost timers;
  bool fired = false;
  timers.schedule_at(timers.now() + kNanosPerSec * 3600, [&] { fired = true; });
  EXPECT_EQ(timers.run_due(), 0u);
  EXPECT_FALSE(fired);
  EXPECT_TRUE(timers.has_pending());
}

TEST(RealTimerHost, TimerMayScheduleAnotherTimer) {
  RealTimerHost timers;
  int count = 0;
  timers.schedule_at(timers.now(), [&] {
    ++count;
    timers.schedule_at(timers.now(), [&] { ++count; });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  timers.run_due();
  EXPECT_EQ(count, 2);
}

TEST(RealTimerHost, ConcurrentSchedulersAreSafe) {
  RealTimerHost timers;
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i)
        timers.schedule_at(timers.now(), [&] { ++fired; });
    });
  for (auto& t : threads) t.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  while (timers.has_pending()) timers.run_due();
  EXPECT_EQ(fired.load(), 4000);
}

}  // namespace
}  // namespace mado::core
