// Property tests (parameterized sweeps): every registered strategy must
// uphold the scheduler's universal invariants on randomized backlogs —
//   conservation: every pushed fragment is emitted exactly once;
//   per-flow FIFO: a flow's fragments leave in push order;
//   byte budget: multi-fragment packets respect caps.max_eager;
//   control priority: within a packet, control fragments come first;
//   progress: a non-empty backlog always drains in bounded steps.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "core/strategy.hpp"
#include "drivers/profiles.hpp"
#include "util/rng.hpp"

namespace mado::core {
namespace {

struct Pushed {
  ChannelId flow;
  MsgSeq seq;
  FragIdx idx;
  bool control;
};

using Params = std::tuple<std::string /*strategy*/, std::size_t /*window*/,
                          std::uint64_t /*seed*/>;

class StrategyPropertyTest : public ::testing::TestWithParam<Params> {};

TEST_P(StrategyPropertyTest, InvariantsHoldOnRandomBacklog) {
  const auto& [name, window, seed] = GetParam();
  auto strategy = StrategyRegistry::instance().create(name);
  drv::Capabilities caps = drv::test_profile();  // max_eager = 1024
  StatsRegistry stats;
  Rng rng(seed);

  // Build a random backlog: up to 12 flows, random per-flow message/frag
  // structure, sizes spanning tiny to oversized-eager, some control frags.
  TxBacklog backlog;
  std::vector<Pushed> pushed;
  std::uint64_t order = 1;
  const std::size_t nflows = 1 + rng.below(12);
  for (std::size_t f = 0; f < nflows; ++f) {
    const auto flow = static_cast<ChannelId>(f);
    const std::size_t nmsgs = 1 + rng.below(6);
    for (std::size_t msg = 0; msg < nmsgs; ++msg) {
      const auto nfrags = static_cast<FragIdx>(1 + rng.below(4));
      for (FragIdx i = 0; i < nfrags; ++i) {
        TxFrag tf;
        tf.channel = flow;
        tf.msg_seq = static_cast<MsgSeq>(msg);
        tf.idx = i;
        tf.nfrags_total = nfrags;
        tf.last = (i + 1 == nfrags);
        const std::size_t len =
            rng.chance(0.1) ? 1500 + rng.below(1500) : rng.below(300);
        tf.owned.assign(len, Byte{0x77});
        tf.len = len;
        tf.order = order++;
        tf.submit_time = tf.order;
        pushed.push_back({flow, tf.msg_seq, i, false});
        backlog.push(std::move(tf));
      }
    }
  }
  const std::size_t nctrl = rng.below(4);
  for (std::size_t c = 0; c < nctrl; ++c) {
    TxFrag tf;
    tf.channel = static_cast<ChannelId>(100 + c);
    tf.kind = FragKind::RdvCts;
    tf.nfrags_total = 1;
    tf.owned.assign(8, Byte{0});
    tf.len = 8;
    tf.order = order++;
    tf.submit_time = tf.order;
    pushed.push_back({tf.channel, 0, 0, true});
    backlog.push_control(std::move(tf));
  }

  // Drain. Nagle-style Wait decisions are honored by advancing `now`.
  const std::size_t total = backlog.frag_count();
  std::vector<Pushed> emitted;
  Nanos now = 0;
  std::size_t steps = 0;
  while (!backlog.empty()) {
    ASSERT_LT(steps++, 4 * total + 16) << "strategy failed to make progress";
    StrategyEnv env{caps, now, window, /*eval_budget=*/32, usec(5), &stats};
    PacketDecision d = strategy->next_packet(backlog, env);
    if (d.action == PacketDecision::Action::Wait) {
      ASSERT_GT(d.wait_until, now) << "Wait must move time forward";
      now = d.wait_until;
      continue;
    }
    ASSERT_EQ(d.action, PacketDecision::Action::Send);
    ASSERT_FALSE(d.frags.empty());

    // Byte budget (multi-data-fragment packets only) + control priority.
    std::size_t bytes = 0, data_count = 0;
    bool seen_data = false;
    for (const TxFrag& f : d.frags) {
      bytes += FragHeader::kWireSize + f.len;
      const bool is_ctrl = f.kind == FragKind::RdvCts;
      if (!is_ctrl) {
        ++data_count;
        seen_data = true;
      } else {
        EXPECT_FALSE(seen_data) << "control fragment after data fragment";
      }
      emitted.push_back({f.channel, f.msg_seq, f.idx, is_ctrl});
    }
    if (data_count > 1) {
      EXPECT_LE(bytes, caps.max_eager);
    }
  }

  // Conservation.
  ASSERT_EQ(emitted.size(), pushed.size());
  auto key = [](const Pushed& p) {
    return std::tuple(p.control, p.flow, p.seq, p.idx);
  };
  std::map<std::tuple<bool, ChannelId, MsgSeq, FragIdx>, int> want, got;
  for (const auto& p : pushed) want[key(p)]++;
  for (const auto& p : emitted) got[key(p)]++;
  EXPECT_EQ(want, got);

  // Per-flow FIFO across all emitted packets.
  std::map<ChannelId, std::pair<MsgSeq, FragIdx>> last;
  for (const auto& p : emitted) {
    if (p.control) continue;
    auto it = last.find(p.flow);
    if (it != last.end()) {
      const auto [pseq, pidx] = it->second;
      const bool in_order =
          p.seq > pseq || (p.seq == pseq && p.idx > pidx);
      EXPECT_TRUE(in_order) << "flow " << p.flow << " reordered";
    }
    last[p.flow] = {p.seq, p.idx};
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyPropertyTest,
    ::testing::Combine(
        ::testing::Values("fifo", "aggreg", "aggreg_exhaustive", "nagle",
                          "adaptive", "priority"),
        ::testing::Values(std::size_t{0}, std::size_t{1}, std::size_t{4},
                          std::size_t{16}),
        ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                          std::uint64_t{3}, std::uint64_t{42},
                          std::uint64_t{1234})),
    [](const ::testing::TestParamInfo<Params>& pi) {
      return std::get<0>(pi.param) + "_w" +
             std::to_string(std::get<1>(pi.param)) + "_s" +
             std::to_string(std::get<2>(pi.param));
    });

}  // namespace
}  // namespace mado::core
