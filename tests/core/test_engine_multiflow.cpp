// Cross-flow behaviour: the headline aggregation effect (several flows'
// eager fragments collapsing into shared packets), strategy comparison at
// the engine level, and ordering invariants under aggregation.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

struct MultiflowRun {
  std::uint64_t packets = 0;
  std::uint64_t frags = 0;
  Nanos finish_time = 0;
};

/// N flows each post `msgs` small messages back to back; receiver drains.
MultiflowRun run_multiflow(const std::string& strategy, std::size_t flows,
                           int msgs, std::size_t size) {
  EngineConfig cfg;
  cfg.strategy = strategy;
  SimWorld w(2, cfg);
  w.connect(0, 1, drv::mx_myrinet_profile());
  std::vector<Channel> tx, rx;
  for (std::size_t f = 0; f < flows; ++f) {
    tx.push_back(w.node(0).open_channel(1, static_cast<ChannelId>(f)));
    rx.push_back(w.node(1).open_channel(0, static_cast<ChannelId>(f)));
  }
  for (int i = 0; i < msgs; ++i)
    for (std::size_t f = 0; f < flows; ++f)
      send_bytes(tx[f],
                 pattern(size, static_cast<std::uint32_t>(f * 1000) +
                                   static_cast<std::uint32_t>(i)));
  for (int i = 0; i < msgs; ++i)
    for (std::size_t f = 0; f < flows; ++f)
      EXPECT_EQ(recv_bytes(rx[f], size),
                pattern(size, static_cast<std::uint32_t>(f * 1000) +
                                  static_cast<std::uint32_t>(i)));
  w.node(0).flush();
  MultiflowRun out;
  out.packets = w.node(0).stats().counter("tx.packets");
  out.frags = w.node(0).stats().counter("tx.frags");
  out.finish_time = w.now();
  return out;
}

TEST(Multiflow, AggregationReducesTransactions) {
  const auto fifo = run_multiflow("fifo", 8, 20, 64);
  const auto aggreg = run_multiflow("aggreg", 8, 20, 64);
  EXPECT_EQ(fifo.frags, aggreg.frags);
  EXPECT_EQ(fifo.packets, fifo.frags);  // baseline: one transaction each
  // The paper's headline: cross-flow aggregation collapses transactions.
  EXPECT_LT(aggreg.packets, fifo.packets / 2);
}

TEST(Multiflow, AggregationImprovesCompletionTime) {
  const auto fifo = run_multiflow("fifo", 16, 20, 64);
  const auto aggreg = run_multiflow("aggreg", 16, 20, 64);
  EXPECT_LT(aggreg.finish_time, fifo.finish_time);
}

TEST(Multiflow, SingleFlowNoRegression) {
  // With one flow and spaced messages there is little to aggregate; the
  // optimizer must not do worse than the baseline.
  const auto fifo = run_multiflow("fifo", 1, 50, 64);
  const auto aggreg = run_multiflow("aggreg", 1, 50, 64);
  EXPECT_LE(aggreg.finish_time, fifo.finish_time);
}

TEST(Multiflow, ExhaustiveAlsoAggregatesSmallFragments) {
  const auto fifo = run_multiflow("fifo", 8, 10, 64);
  const auto ex = run_multiflow("aggreg_exhaustive", 8, 10, 64);
  EXPECT_LT(ex.packets, fifo.packets);
}

TEST(Multiflow, PacketFragHistogramShowsAggregation) {
  EngineConfig cfg;
  cfg.strategy = "aggreg";
  SimWorld w(2, cfg);
  w.connect(0, 1, drv::mx_myrinet_profile());
  std::vector<Channel> tx, rx;
  for (ChannelId f = 0; f < 8; ++f) {
    tx.push_back(w.node(0).open_channel(1, f));
    rx.push_back(w.node(1).open_channel(0, f));
  }
  for (auto& ch : tx) send_bytes(ch, pattern(64));
  for (auto& ch : rx) recv_bytes(ch, 64);
  const auto* h = w.node(0).stats().histogram("tx.pkt_frags");
  ASSERT_NE(h, nullptr);
  // First packet goes out alone (NIC idle on first submit); while it is in
  // flight the other 7 fragments accumulate and ship together.
  EXPECT_GE(h->quantile_upper_bound(0.99), 7u);
}

TEST(Multiflow, PerFlowOrderingSurvivesAggregation) {
  EngineConfig cfg;
  cfg.strategy = "aggreg";
  SimWorld w(2, cfg);
  w.connect(0, 1, drv::test_profile());
  constexpr ChannelId kFlows = 4;
  constexpr int kMsgs = 25;
  std::vector<Channel> tx, rx;
  for (ChannelId f = 0; f < kFlows; ++f) {
    tx.push_back(w.node(0).open_channel(1, f));
    rx.push_back(w.node(1).open_channel(0, f));
  }
  // Interleave submissions across flows.
  for (int i = 0; i < kMsgs; ++i)
    for (ChannelId f = 0; f < kFlows; ++f) {
      const Bytes payload =
          pattern(32, static_cast<std::uint32_t>(f) * 7919u +
                          static_cast<std::uint32_t>(i));
      send_bytes(tx[f], payload);
    }
  // Every flow must observe its own messages in submit order.
  for (ChannelId f = 0; f < kFlows; ++f)
    for (int i = 0; i < kMsgs; ++i)
      EXPECT_EQ(recv_bytes(rx[f], 32),
                pattern(32, static_cast<std::uint32_t>(f) * 7919u +
                                static_cast<std::uint32_t>(i)))
          << "flow " << f << " msg " << i;
}

TEST(Multiflow, MultiFragmentMessagesAcrossFlows) {
  EngineConfig cfg;
  cfg.strategy = "aggreg";
  SimWorld w(2, cfg);
  w.connect(0, 1, drv::test_profile());
  Channel a1 = w.node(0).open_channel(1, 1);
  Channel a2 = w.node(0).open_channel(1, 2);
  Channel b1 = w.node(1).open_channel(0, 1);
  Channel b2 = w.node(1).open_channel(0, 2);

  auto post3 = [](Channel& ch, std::uint32_t seed) {
    Message m;
    const Bytes f1 = pattern(16, seed), f2 = pattern(24, seed + 1),
                f3 = pattern(32, seed + 2);
    m.pack(f1.data(), f1.size(), SendMode::Safe);
    m.pack(f2.data(), f2.size(), SendMode::Safe);
    m.pack(f3.data(), f3.size(), SendMode::Safe);
    ch.post(std::move(m));
  };
  auto check3 = [](Channel& ch, std::uint32_t seed) {
    Bytes r1(16), r2(24), r3(32);
    IncomingMessage im = ch.begin_recv();
    im.unpack(r1.data(), 16, RecvMode::Express);
    im.unpack(r2.data(), 24, RecvMode::Express);
    im.unpack(r3.data(), 32, RecvMode::Express);
    im.finish();
    EXPECT_EQ(r1, pattern(16, seed));
    EXPECT_EQ(r2, pattern(24, seed + 1));
    EXPECT_EQ(r3, pattern(32, seed + 2));
  };
  post3(a1, 100);
  post3(a2, 200);
  post3(a1, 300);
  check3(b1, 100);
  check3(b2, 200);
  check3(b1, 300);
}

TEST(Multiflow, ManyFlowsStress) {
  EngineConfig cfg;
  cfg.strategy = "aggreg";
  cfg.lookahead_window = 0;  // unbounded
  SimWorld w(2, cfg);
  w.connect(0, 1, drv::mx_myrinet_profile());
  constexpr ChannelId kFlows = 32;
  std::vector<Channel> tx, rx;
  for (ChannelId f = 0; f < kFlows; ++f) {
    tx.push_back(w.node(0).open_channel(1, f));
    rx.push_back(w.node(1).open_channel(0, f));
  }
  for (std::uint32_t round = 0; round < 10; ++round)
    for (ChannelId f = 0; f < kFlows; ++f)
      send_bytes(tx[f], pattern(16, f + 100u * round));
  for (std::uint32_t round = 0; round < 10; ++round)
    for (ChannelId f = 0; f < kFlows; ++f)
      EXPECT_EQ(recv_bytes(rx[f], 16), pattern(16, f + 100u * round));
}

TEST(Multiflow, LookaheadWindowBoundsPacketSize) {
  EngineConfig cfg;
  cfg.strategy = "aggreg";
  cfg.lookahead_window = 4;
  SimWorld w(2, cfg);
  w.connect(0, 1, drv::mx_myrinet_profile());
  std::vector<Channel> tx, rx;
  for (ChannelId f = 0; f < 16; ++f) {
    tx.push_back(w.node(0).open_channel(1, f));
    rx.push_back(w.node(1).open_channel(0, f));
  }
  for (auto& ch : tx) send_bytes(ch, pattern(16));
  for (auto& ch : rx) recv_bytes(ch, 16);
  const auto* h = w.node(0).stats().histogram("tx.pkt_frags");
  ASSERT_NE(h, nullptr);
  EXPECT_LE(h->quantile_upper_bound(1.0), 7u);  // log2 bucket of 4 → <=7
}

}  // namespace
}  // namespace mado::core
