#include "core/message.hpp"

#include <gtest/gtest.h>

namespace mado::core {
namespace {

TEST(Message, StartsEmpty) {
  Message m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.fragment_count(), 0u);
  EXPECT_EQ(m.total_bytes(), 0u);
}

TEST(Message, SafeModeCopiesAtPackTime) {
  Bytes buf = {1, 2, 3, 4};
  Message m;
  m.pack(buf.data(), buf.size(), SendMode::Safe);
  buf[0] = 99;  // mutate after pack
  const auto& f = m.fragments()[0];
  EXPECT_EQ(f.owned[0], 1);  // copy unaffected
  EXPECT_EQ(f.data()[0], 1);
  EXPECT_EQ(f.len, 4u);
}

TEST(Message, LaterModeReferences) {
  Bytes buf = {5, 6};
  Message m;
  m.pack(buf.data(), buf.size(), SendMode::Later);
  const auto& f = m.fragments()[0];
  EXPECT_TRUE(f.owned.empty());
  EXPECT_EQ(f.ext, buf.data());
  EXPECT_EQ(f.data(), buf.data());
}

TEST(Message, CheaperModeDefersDecision) {
  Bytes buf = {7};
  Message m;
  m.pack(buf.data(), buf.size());  // default Cheaper
  const auto& f = m.fragments()[0];
  EXPECT_EQ(f.mode, SendMode::Cheaper);
  EXPECT_TRUE(f.owned.empty());  // decision happens at submit, not pack
}

TEST(Message, AccountsTotals) {
  Bytes a(10), b(20);
  Message m;
  m.pack(a.data(), a.size(), SendMode::Safe);
  m.pack(b.data(), b.size(), SendMode::Later);
  EXPECT_EQ(m.fragment_count(), 2u);
  EXPECT_EQ(m.total_bytes(), 30u);
  EXPECT_FALSE(m.empty());
}

TEST(Message, ZeroLengthFragmentAllowed) {
  Message m;
  m.pack(nullptr, 0, SendMode::Safe);
  EXPECT_EQ(m.fragment_count(), 1u);
  EXPECT_EQ(m.total_bytes(), 0u);
}

TEST(Message, NullDataWithLengthRejected) {
  Message m;
  EXPECT_THROW(m.pack(nullptr, 4, SendMode::Safe), CheckError);
}

TEST(Message, MoveTransfersFragments) {
  Bytes buf = {1, 2};
  Message m;
  m.pack(buf.data(), buf.size(), SendMode::Safe);
  Message n = std::move(m);
  EXPECT_EQ(n.fragment_count(), 1u);
}

TEST(Message, PackOrderPreserved) {
  Message m;
  Bytes bufs[5];
  for (std::size_t i = 0; i < 5; ++i) {
    bufs[i].assign(i + 1, static_cast<Byte>(i));
    m.pack(bufs[i].data(), bufs[i].size(), SendMode::Safe);
  }
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(m.fragments()[i].len, i + 1);
}

}  // namespace
}  // namespace mado::core
