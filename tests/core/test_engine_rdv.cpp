// Rendezvous protocol tests: RTS/CTS handshake, zero-copy bulk delivery,
// chunking, mixed eager+rdv messages, express header driving a rdv payload.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

// test_profile: rdv_threshold = 4096.
class EngineRdvTest : public ::testing::Test {
 protected:
  void SetUp() override { build({}); }

  void build(EngineConfig cfg) {
    world_ = std::make_unique<SimWorld>(2, cfg);
    world_->connect(0, 1, drv::test_profile());
    a_ = world_->node(0).open_channel(1, 7);
    b_ = world_->node(1).open_channel(0, 7);
  }

  std::unique_ptr<SimWorld> world_;
  Channel a_, b_;
};

TEST_F(EngineRdvTest, LargeFragmentUsesRendezvous) {
  const Bytes data = pattern(64 * 1024);
  SendHandle h = send_bytes(a_, data);
  EXPECT_EQ(recv_bytes(b_, data.size()), data);
  EXPECT_TRUE(world_->node(0).wait_send(h));
  auto& tx = world_->node(0).stats();
  auto& rx = world_->node(1).stats();
  EXPECT_EQ(tx.counter("tx.rdv_rts"), 1u);
  EXPECT_EQ(tx.counter("tx.rdv_completed"), 1u);
  EXPECT_EQ(rx.counter("rx.rdv_rts"), 1u);
  EXPECT_EQ(rx.counter("rx.rdv_completed"), 1u);
  EXPECT_EQ(rx.counter("tx.rdv_cts"), 1u);  // receiver sent the CTS
  EXPECT_GE(rx.counter("rx.bulk_chunks"), 1u);
}

TEST_F(EngineRdvTest, SmallFragmentStaysEager) {
  send_bytes(a_, pattern(512));
  recv_bytes(b_, 512);
  EXPECT_EQ(world_->node(0).stats().counter("tx.rdv_rts"), 0u);
}

TEST_F(EngineRdvTest, ThresholdBoundaryExact) {
  // Exactly at threshold → rendezvous; one below → eager.
  const std::size_t thr = drv::test_profile().rdv_threshold;
  send_bytes(a_, pattern(thr - 1, 1));
  recv_bytes(b_, thr - 1);
  EXPECT_EQ(world_->node(0).stats().counter("tx.rdv_rts"), 0u);
  send_bytes(a_, pattern(thr, 2));
  recv_bytes(b_, thr);
  EXPECT_EQ(world_->node(0).stats().counter("tx.rdv_rts"), 1u);
}

TEST_F(EngineRdvTest, DataChunkedPerConfig) {
  EngineConfig cfg;
  cfg.rdv_chunk = 4096;
  build(cfg);
  const std::size_t n = 40 * 1024;
  send_bytes(a_, pattern(n));
  recv_bytes(b_, n);
  EXPECT_EQ(world_->node(1).stats().counter("rx.bulk_chunks"),
            (n + 4095) / 4096);
}

TEST_F(EngineRdvTest, NonChunkMultipleSize) {
  EngineConfig cfg;
  cfg.rdv_chunk = 4096;
  build(cfg);
  const std::size_t n = 10000;  // 2 full chunks + 1808 B tail
  send_bytes(a_, pattern(n));
  EXPECT_EQ(recv_bytes(b_, n), pattern(n));
  EXPECT_EQ(world_->node(1).stats().counter("rx.bulk_chunks"), 3u);
}

TEST_F(EngineRdvTest, SafeModeLargeFragmentCopiedOnce) {
  Bytes buf = pattern(8192, 3);
  const Bytes expect = buf;
  Message m;
  m.pack(buf.data(), buf.size(), SendMode::Safe);
  a_.post(std::move(m));
  std::fill(buf.begin(), buf.end(), Byte{0});  // clobber immediately
  EXPECT_EQ(recv_bytes(b_, 8192), expect);
}

TEST_F(EngineRdvTest, LaterModeZeroCopyPath) {
  Bytes buf = pattern(32 * 1024, 4);
  Message m;
  m.pack(buf.data(), buf.size(), SendMode::Later);
  SendHandle h = a_.post(std::move(m));
  EXPECT_EQ(recv_bytes(b_, buf.size()), buf);
  EXPECT_TRUE(world_->node(0).wait_send(h));
}

TEST_F(EngineRdvTest, ExpressHeaderThenRdvBody) {
  // The canonical middleware pattern: small express header says how big the
  // body is; the body itself goes rendezvous.
  struct Hdr {
    std::uint32_t body_len;
  };
  const Bytes body = pattern(16 * 1024, 9);
  Hdr hdr{static_cast<std::uint32_t>(body.size())};
  Message m;
  m.pack(&hdr, sizeof hdr, SendMode::Safe);
  m.pack(body.data(), body.size(), SendMode::Later);
  a_.post(std::move(m));

  IncomingMessage im = b_.begin_recv();
  Hdr rhdr{};
  im.unpack(&rhdr, sizeof rhdr, RecvMode::Express);
  ASSERT_EQ(rhdr.body_len, body.size());
  Bytes rbody(rhdr.body_len);
  im.unpack(rbody.data(), rbody.size(), RecvMode::Cheaper);
  im.finish();
  EXPECT_EQ(rbody, body);
}

TEST_F(EngineRdvTest, CtsOnlyAfterUnpackPosted) {
  const Bytes data = pattern(8192);
  send_bytes(a_, data);
  world_->run();  // RTS delivered; receiver has no unpack posted yet
  EXPECT_EQ(world_->node(1).stats().counter("rx.rdv_rts"), 1u);
  EXPECT_EQ(world_->node(1).stats().counter("tx.rdv_cts"), 0u);
  EXPECT_EQ(world_->node(1).stats().counter("rx.bulk_chunks"), 0u);
  // Posting the unpack triggers the CTS and the data flows.
  EXPECT_EQ(recv_bytes(b_, data.size()), data);
  EXPECT_EQ(world_->node(1).stats().counter("tx.rdv_cts"), 1u);
}

TEST_F(EngineRdvTest, MultipleConcurrentRendezvous) {
  constexpr int kN = 5;
  for (int i = 0; i < kN; ++i)
    send_bytes(a_, pattern(8192, static_cast<std::uint32_t>(i)));
  for (int i = 0; i < kN; ++i)
    EXPECT_EQ(recv_bytes(b_, 8192), pattern(8192, static_cast<std::uint32_t>(i)));
  EXPECT_EQ(world_->node(0).stats().counter("tx.rdv_completed"), kN);
}

TEST_F(EngineRdvTest, BidirectionalRendezvous) {
  const Bytes da = pattern(8192, 1), db = pattern(8192, 2);
  send_bytes(a_, da);
  send_bytes(b_, db);
  EXPECT_EQ(recv_bytes(b_, 8192), da);
  EXPECT_EQ(recv_bytes(a_, 8192), db);
}

TEST_F(EngineRdvTest, RdvMixedWithEagerTrafficOnSameChannel) {
  send_bytes(a_, pattern(64, 1));
  send_bytes(a_, pattern(8192, 2));
  send_bytes(a_, pattern(64, 3));
  EXPECT_EQ(recv_bytes(b_, 64), pattern(64, 1));
  EXPECT_EQ(recv_bytes(b_, 8192), pattern(8192, 2));
  EXPECT_EQ(recv_bytes(b_, 64), pattern(64, 3));
}

TEST_F(EngineRdvTest, WrongRdvUnpackSizeThrows) {
  send_bytes(a_, pattern(8192));
  world_->run();
  Bytes out(4096);  // wrong size for the 8192-byte rendezvous fragment
  IncomingMessage im = b_.begin_recv();
  EXPECT_THROW(im.unpack(out.data(), out.size(), RecvMode::Express),
               CheckError);
}

TEST_F(EngineRdvTest, RdvThresholdOverride) {
  EngineConfig cfg;
  cfg.rdv_threshold_override = 256;
  build(cfg);
  send_bytes(a_, pattern(512));  // eager by caps, rdv by override
  recv_bytes(b_, 512);
  EXPECT_EQ(world_->node(0).stats().counter("tx.rdv_rts"), 1u);
}

TEST_F(EngineRdvTest, SendCompletesOnlyAfterAllChunks) {
  EngineConfig cfg;
  cfg.rdv_chunk = 1024;
  build(cfg);
  const Bytes data = pattern(16 * 1024);
  SendHandle h = send_bytes(a_, data, SendMode::Later);
  // Drive until the receiver posts nothing: handle must stay incomplete
  // because no CTS was ever issued.
  world_->run();
  EXPECT_FALSE(world_->node(0).send_done(h));
  EXPECT_EQ(recv_bytes(b_, data.size()), data);
  EXPECT_TRUE(world_->node(0).wait_send(h));
}

}  // namespace
}  // namespace mado::core
