// Direct unit tests of the strategy database and the built-in strategies'
// decision behaviour and invariants.
#include <gtest/gtest.h>

#include <map>

#include "core/strategies.hpp"
#include "core/strategy.hpp"
#include "drivers/profiles.hpp"

namespace mado::core {
namespace {

TxFrag data_frag(ChannelId ch, MsgSeq seq, FragIdx idx, std::uint16_t total,
                 std::size_t len, std::uint64_t order, Nanos t = 0) {
  TxFrag f;
  f.channel = ch;
  f.msg_seq = seq;
  f.idx = idx;
  f.nfrags_total = total;
  f.last = (idx + 1 == total);
  f.owned.assign(len, Byte{0x5a});
  f.len = len;
  f.order = order;
  f.submit_time = t;
  return f;
}

TxFrag ctrl_frag(std::uint64_t order) {
  TxFrag f = data_frag(0, 0, 0, 1, 8, order);
  f.kind = FragKind::RdvCts;
  return f;
}

struct StrategyFixture : ::testing::Test {
  drv::Capabilities caps = drv::test_profile();  // max_eager = 1024
  StatsRegistry stats;

  StrategyEnv env(std::size_t window = 0, std::size_t budget = 0,
                  Nanos nagle = 0, Nanos now = 0) {
    return StrategyEnv{caps, now, window, budget, nagle, &stats};
  }

  /// Checks the universal invariants on a Send decision given the original
  /// per-flow contents.
  static void check_invariants(const PacketDecision& d,
                               const drv::Capabilities& caps) {
    ASSERT_EQ(d.action, PacketDecision::Action::Send);
    ASSERT_FALSE(d.frags.empty());
    // Per-flow indices must be non-decreasing (per-flow FIFO).
    std::map<ChannelId, std::pair<MsgSeq, FragIdx>> last;
    std::size_t bytes = 0;
    std::size_t data_count = 0;
    for (const TxFrag& f : d.frags) {
      if (f.kind == FragKind::Data) {
        ++data_count;
        auto it = last.find(f.channel);
        if (it != last.end()) {
          const auto [pseq, pidx] = it->second;
          const bool in_order =
              f.msg_seq > pseq || (f.msg_seq == pseq && f.idx > pidx);
          EXPECT_TRUE(in_order) << "flow " << f.channel << " reordered";
        }
        last[f.channel] = {f.msg_seq, f.idx};
      }
      bytes += FragHeader::kWireSize + f.len;
    }
    if (data_count > 1) {
      EXPECT_LE(bytes, caps.max_eager) << "aggregated packet over budget";
    }
  }
};

// ---- registry ---------------------------------------------------------------

TEST(StrategyRegistry, BuiltinsPresent) {
  auto& reg = StrategyRegistry::instance();
  for (const char* n : {"fifo", "aggreg", "aggreg_exhaustive", "nagle",
                        "adaptive", "priority"}) {
    EXPECT_TRUE(reg.contains(n)) << n;
    auto s = reg.create(n);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), n);
  }
}

TEST(StrategyRegistry, UnknownNameThrows) {
  EXPECT_THROW(StrategyRegistry::instance().create("no-such-strategy"),
               CheckError);
}

TEST(StrategyRegistry, UserExtensionAndOverride) {
  struct Custom final : Strategy {
    std::string name() const override { return "custom-test"; }
    PacketDecision next_packet(TxBacklog& b, const StrategyEnv&) override {
      PacketDecision d;
      if (b.empty()) return d;
      d.action = PacketDecision::Action::Send;
      d.frags.push_back(b.pop(b.active_flows().front()));
      return d;
    }
  };
  auto& reg = StrategyRegistry::instance();
  reg.register_strategy("custom-test",
                        [] { return std::make_unique<Custom>(); });
  EXPECT_TRUE(reg.contains("custom-test"));
  EXPECT_EQ(reg.create("custom-test")->name(), "custom-test");
  auto names = reg.names();
  EXPECT_NE(std::find(names.begin(), names.end(), "custom-test"),
            names.end());
}

TEST(StrategyRegistry, EmptyNameRejected) {
  EXPECT_THROW(StrategyRegistry::instance().register_strategy(
                   "", [] { return make_fifo_strategy(); }),
               CheckError);
}

// ---- fifo ---------------------------------------------------------------------

using FifoTest = StrategyFixture;

TEST_F(FifoTest, IdleOnEmptyBacklog) {
  TxBacklog b;
  auto s = make_fifo_strategy();
  EXPECT_EQ(s->next_packet(b, env()).action, PacketDecision::Action::Idle);
}

TEST_F(FifoTest, NeverAggregatesAcrossFlows) {
  TxBacklog b;
  b.push(data_frag(1, 0, 0, 1, 16, 1));
  b.push(data_frag(2, 0, 0, 1, 16, 2));
  auto s = make_fifo_strategy();
  auto d = s->next_packet(b, env());
  check_invariants(d, caps);
  EXPECT_EQ(d.frags.size(), 1u);
  EXPECT_EQ(d.frags[0].channel, 1u);
  d = s->next_packet(b, env());
  EXPECT_EQ(d.frags.size(), 1u);
  EXPECT_EQ(d.frags[0].channel, 2u);
}

TEST_F(FifoTest, NeverAggregatesAcrossMessages) {
  TxBacklog b;
  b.push(data_frag(1, 0, 0, 1, 16, 1));
  b.push(data_frag(1, 1, 0, 1, 16, 2));
  auto s = make_fifo_strategy();
  auto d = s->next_packet(b, env());
  EXPECT_EQ(d.frags.size(), 1u);
  EXPECT_EQ(d.frags[0].msg_seq, 0u);
}

TEST_F(FifoTest, AggregatesWithinOneMessage) {
  TxBacklog b;
  b.push(data_frag(1, 0, 0, 3, 16, 1));
  b.push(data_frag(1, 0, 1, 3, 16, 2));
  b.push(data_frag(1, 0, 2, 3, 16, 3));
  auto s = make_fifo_strategy();
  auto d = s->next_packet(b, env());
  check_invariants(d, caps);
  EXPECT_EQ(d.frags.size(), 3u);
  EXPECT_TRUE(b.empty());
}

TEST_F(FifoTest, FollowsGlobalSubmitOrder) {
  TxBacklog b;
  b.push(data_frag(5, 0, 0, 1, 16, 10));
  b.push(data_frag(3, 0, 0, 1, 16, 4));
  auto s = make_fifo_strategy();
  EXPECT_EQ(s->next_packet(b, env()).frags[0].channel, 3u);
}

TEST_F(FifoTest, ControlsGoFirst) {
  TxBacklog b;
  b.push(data_frag(1, 0, 0, 1, 16, 1));
  b.push_control(ctrl_frag(2));
  auto s = make_fifo_strategy();
  auto d = s->next_packet(b, env());
  ASSERT_EQ(d.frags.size(), 1u);
  EXPECT_EQ(d.frags[0].kind, FragKind::RdvCts);
}

TEST_F(FifoTest, SplitsOversizedMessageAcrossPackets) {
  TxBacklog b;
  for (FragIdx i = 0; i < 4; ++i)
    b.push(data_frag(1, 0, i, 4, 400, i + 1u));  // 4 x 400 > 1024
  auto s = make_fifo_strategy();
  std::size_t packets = 0, frags = 0;
  while (!b.empty()) {
    auto d = s->next_packet(b, env());
    check_invariants(d, caps);
    ++packets;
    frags += d.frags.size();
  }
  EXPECT_EQ(frags, 4u);
  EXPECT_GE(packets, 2u);
}

// ---- aggreg ----------------------------------------------------------------------

using AggregTest = StrategyFixture;

TEST_F(AggregTest, AggregatesAcrossFlows) {
  TxBacklog b;
  for (ChannelId ch = 1; ch <= 8; ++ch)
    b.push(data_frag(ch, 0, 0, 1, 32, ch));
  auto s = make_aggreg_strategy();
  auto d = s->next_packet(b, env());
  check_invariants(d, caps);
  EXPECT_EQ(d.frags.size(), 8u);
  EXPECT_TRUE(b.empty());
}

TEST_F(AggregTest, RespectsByteBudget) {
  TxBacklog b;
  for (ChannelId ch = 1; ch <= 10; ++ch)
    b.push(data_frag(ch, 0, 0, 1, 200, ch));  // 10 x (200+20) > 1024
  auto s = make_aggreg_strategy();
  auto d = s->next_packet(b, env());
  check_invariants(d, caps);
  EXPECT_LT(d.frags.size(), 10u);
  EXPECT_GE(d.frags.size(), 2u);
}

TEST_F(AggregTest, RespectsLookaheadWindow) {
  TxBacklog b;
  for (ChannelId ch = 1; ch <= 8; ++ch)
    b.push(data_frag(ch, 0, 0, 1, 8, ch));
  auto s = make_aggreg_strategy();
  auto d = s->next_packet(b, env(/*window=*/3));
  EXPECT_EQ(d.frags.size(), 3u);
}

TEST_F(AggregTest, WindowOneDegeneratesToSingleFragment) {
  TxBacklog b;
  b.push(data_frag(1, 0, 0, 1, 8, 1));
  b.push(data_frag(2, 0, 0, 1, 8, 2));
  auto s = make_aggreg_strategy();
  EXPECT_EQ(s->next_packet(b, env(1)).frags.size(), 1u);
}

TEST_F(AggregTest, OldestFlowFirstInPacket) {
  TxBacklog b;
  b.push(data_frag(9, 0, 0, 1, 8, 10));
  b.push(data_frag(4, 0, 0, 1, 8, 2));
  auto s = make_aggreg_strategy();
  auto d = s->next_packet(b, env());
  ASSERT_EQ(d.frags.size(), 2u);
  EXPECT_EQ(d.frags[0].channel, 4u);
  EXPECT_EQ(d.frags[1].channel, 9u);
}

TEST_F(AggregTest, OversizedSingleFragmentStillSent) {
  TxBacklog b;
  b.push(data_frag(1, 0, 0, 1, 3000, 1));  // > max_eager, < rdv threshold
  auto s = make_aggreg_strategy();
  auto d = s->next_packet(b, env());
  ASSERT_EQ(d.frags.size(), 1u);
  EXPECT_EQ(d.frags[0].len, 3000u);
}

TEST_F(AggregTest, SkipsTooBigHeadButTakesSmallerFlows) {
  TxBacklog b;
  b.push(data_frag(1, 0, 0, 1, 900, 1));  // fills most of the packet
  b.push(data_frag(2, 0, 0, 1, 800, 2));  // won't fit after flow 1
  b.push(data_frag(3, 0, 0, 1, 50, 3));   // fits
  auto s = make_aggreg_strategy();
  auto d = s->next_packet(b, env());
  check_invariants(d, caps);
  ASSERT_EQ(d.frags.size(), 2u);
  EXPECT_EQ(d.frags[0].channel, 1u);
  EXPECT_EQ(d.frags[1].channel, 3u);
}

TEST_F(AggregTest, ControlsIncludedBeforeData) {
  TxBacklog b;
  b.push(data_frag(1, 0, 0, 1, 16, 1));
  b.push_control(ctrl_frag(5));
  auto s = make_aggreg_strategy();
  auto d = s->next_packet(b, env());
  ASSERT_EQ(d.frags.size(), 2u);
  EXPECT_EQ(d.frags[0].kind, FragKind::RdvCts);
  EXPECT_EQ(d.frags[1].kind, FragKind::Data);
}

TEST_F(AggregTest, CountsAggregatedPacketsInStats) {
  TxBacklog b;
  b.push(data_frag(1, 0, 0, 1, 8, 1));
  b.push(data_frag(2, 0, 0, 1, 8, 2));
  auto s = make_aggreg_strategy();
  s->next_packet(b, env());
  EXPECT_EQ(stats.counter("opt.aggregated_packets"), 1u);
}

// ---- aggreg_exhaustive -------------------------------------------------------------

using ExhaustiveTest = StrategyFixture;

TEST_F(ExhaustiveTest, AggregatesManySmallFragments) {
  TxBacklog b;
  for (ChannelId ch = 1; ch <= 6; ++ch)
    b.push(data_frag(ch, 0, 0, 1, 16, ch));
  auto s = make_aggreg_exhaustive_strategy();
  auto d = s->next_packet(b, env(/*window=*/16, /*budget=*/0));
  check_invariants(d, caps);
  EXPECT_EQ(d.frags.size(), 6u);  // tiny fragments: aggregation dominates
}

TEST_F(ExhaustiveTest, PrefersPipeliningLargeFragments) {
  // Two ~400 B fragments on a NIC whose per-send overhead is tiny compared
  // with their serialization time: sending them separately lets the first
  // complete earlier (pipeline effect), so the optimizer should not merge.
  caps.cost.pio_threshold = 0;
  caps.cost.dma_overhead = 10;
  caps.cost.link_bytes_per_us = 1.0;  // 1 B/us: byte time dominates
  TxBacklog b;
  b.push(data_frag(1, 0, 0, 1, 400, 1));
  b.push(data_frag(2, 0, 0, 1, 400, 2));
  auto s = make_aggreg_exhaustive_strategy();
  auto d = s->next_packet(b, env(16, 0));
  check_invariants(d, caps);
  EXPECT_EQ(d.frags.size(), 1u);
  EXPECT_EQ(b.frag_count(), 1u);
}

TEST_F(ExhaustiveTest, MergesWhenOverheadDominates) {
  caps.cost.pio_threshold = 0;
  caps.cost.dma_overhead = 100000;  // 100 us per transaction
  caps.cost.link_bytes_per_us = 1e6;
  TxBacklog b;
  b.push(data_frag(1, 0, 0, 1, 400, 1));
  b.push(data_frag(2, 0, 0, 1, 400, 2));
  auto s = make_aggreg_exhaustive_strategy();
  auto d = s->next_packet(b, env(16, 0));
  EXPECT_EQ(d.frags.size(), 2u);
}

TEST_F(ExhaustiveTest, EvaluationBudgetBoundsSearch) {
  TxBacklog b;
  for (ChannelId ch = 1; ch <= 10; ++ch) {
    b.push(data_frag(ch, 0, 0, 2, 16, ch));
    b.push(data_frag(ch, 1, 0, 2, 16, ch + 100u));
  }
  auto s = make_aggreg_exhaustive_strategy();
  s->next_packet(b, env(/*window=*/20, /*budget=*/7));
  EXPECT_LE(stats.counter("opt.evals"), 7u);
  EXPECT_GE(stats.counter("opt.evals"), 1u);
}

TEST_F(ExhaustiveTest, UnboundedBudgetCountsAllCandidates) {
  TxBacklog b;
  b.push(data_frag(1, 0, 0, 1, 16, 1));
  b.push(data_frag(2, 0, 0, 1, 16, 2));
  auto s = make_aggreg_exhaustive_strategy();
  s->next_packet(b, env(16, 0));
  // Candidates: (1,0) (0,1) (1,1) — the empty tuple is not evaluated.
  EXPECT_EQ(stats.counter("opt.evals"), 3u);
}

TEST_F(ExhaustiveTest, ProgressGuaranteeWithTinyBudget) {
  TxBacklog b;
  b.push(data_frag(1, 0, 0, 1, 16, 1));
  auto s = make_aggreg_exhaustive_strategy();
  auto d = s->next_packet(b, env(16, 1));
  EXPECT_EQ(d.action, PacketDecision::Action::Send);
  EXPECT_EQ(d.frags.size(), 1u);
}

TEST_F(ExhaustiveTest, PerFlowPrefixRuleHolds) {
  TxBacklog b;
  for (FragIdx i = 0; i < 3; ++i)
    b.push(data_frag(1, 0, i, 3, 16, i + 1u));
  for (FragIdx i = 0; i < 3; ++i)
    b.push(data_frag(2, 0, i, 3, 16, i + 10u));
  auto s = make_aggreg_exhaustive_strategy();
  auto d = s->next_packet(b, env(6, 0));
  check_invariants(d, caps);
  // Whatever subset was chosen, each flow's fragments must form a prefix.
  std::map<ChannelId, FragIdx> next_expected;
  for (const TxFrag& f : d.frags) {
    EXPECT_EQ(f.idx, next_expected[f.channel]);
    ++next_expected[f.channel];
  }
}

TEST_F(ExhaustiveTest, ControlsAlwaysIncluded) {
  TxBacklog b;
  b.push_control(ctrl_frag(1));
  b.push(data_frag(1, 0, 0, 1, 16, 2));
  auto s = make_aggreg_exhaustive_strategy();
  auto d = s->next_packet(b, env(16, 4));
  ASSERT_GE(d.frags.size(), 1u);
  EXPECT_EQ(d.frags[0].kind, FragKind::RdvCts);
}

// ---- nagle ------------------------------------------------------------------------

using NagleTest = StrategyFixture;

TEST_F(NagleTest, WaitsOnSparseBacklog) {
  TxBacklog b;
  b.push(data_frag(1, 0, 0, 1, 8, 1, /*t=*/1000));
  auto s = make_nagle_strategy();
  auto d = s->next_packet(b, env(0, 0, /*nagle=*/5000, /*now=*/1200));
  EXPECT_EQ(d.action, PacketDecision::Action::Wait);
  EXPECT_EQ(d.wait_until, 6000u);
  EXPECT_EQ(b.frag_count(), 1u);  // nothing popped
  EXPECT_EQ(stats.counter("opt.nagle_waits"), 1u);
}

TEST_F(NagleTest, SendsWhenDeadlineReached) {
  TxBacklog b;
  b.push(data_frag(1, 0, 0, 1, 8, 1, 1000));
  auto s = make_nagle_strategy();
  auto d = s->next_packet(b, env(0, 0, 5000, /*now=*/6000));
  EXPECT_EQ(d.action, PacketDecision::Action::Send);
  EXPECT_EQ(d.frags.size(), 1u);
}

TEST_F(NagleTest, SendsWhenPacketHalfFull) {
  TxBacklog b;
  b.push(data_frag(1, 0, 0, 1, 500, 1, 1000));  // >= max_eager/2
  auto s = make_nagle_strategy();
  auto d = s->next_packet(b, env(0, 0, 5000, 1100));
  EXPECT_EQ(d.action, PacketDecision::Action::Send);
}

TEST_F(NagleTest, SendsWhenWindowFull) {
  TxBacklog b;
  for (ChannelId ch = 1; ch <= 4; ++ch)
    b.push(data_frag(ch, 0, 0, 1, 8, ch, 1000));
  auto s = make_nagle_strategy();
  auto d = s->next_packet(b, env(/*window=*/4, 0, 5000, 1100));
  EXPECT_EQ(d.action, PacketDecision::Action::Send);
  EXPECT_EQ(d.frags.size(), 4u);
}

TEST_F(NagleTest, ControlsFlushImmediately) {
  TxBacklog b;
  b.push_control(ctrl_frag(1));
  auto s = make_nagle_strategy();
  auto d = s->next_packet(b, env(0, 0, 5000, 0));
  EXPECT_EQ(d.action, PacketDecision::Action::Send);
}

TEST_F(NagleTest, ZeroDelayBehavesLikeAggreg) {
  TxBacklog b;
  b.push(data_frag(1, 0, 0, 1, 8, 1));
  b.push(data_frag(2, 0, 0, 1, 8, 2));
  auto s = make_nagle_strategy();
  auto d = s->next_packet(b, env(0, 0, /*nagle=*/0, 0));
  EXPECT_EQ(d.action, PacketDecision::Action::Send);
  EXPECT_EQ(d.frags.size(), 2u);
}

// ---- priority ----------------------------------------------------------------------

using PriorityTest = StrategyFixture;

TxFrag classed_frag(ChannelId ch, TrafficClass cls, std::size_t len,
                    std::uint64_t order) {
  TxFrag f = data_frag(ch, 0, 0, 1, len, order);
  f.cls = cls;
  return f;
}

TEST_F(PriorityTest, ControlClassOvertakesOlderBulk) {
  TxBacklog b;
  b.push(classed_frag(1, TrafficClass::Bulk, 400, 1));     // older
  b.push(classed_frag(2, TrafficClass::Control, 32, 2));   // newer, urgent
  auto s = make_priority_strategy();
  auto d = s->next_packet(b, env());
  ASSERT_EQ(d.frags.size(), 2u);
  EXPECT_EQ(d.frags[0].channel, 2u);  // Control first despite being newer
  EXPECT_EQ(d.frags[1].channel, 1u);
}

TEST_F(PriorityTest, FullClassOrdering) {
  TxBacklog b;
  b.push(classed_frag(1, TrafficClass::Bulk, 16, 1));
  b.push(classed_frag(2, TrafficClass::PutGet, 16, 2));
  b.push(classed_frag(3, TrafficClass::SmallEager, 16, 3));
  b.push(classed_frag(4, TrafficClass::Control, 16, 4));
  auto s = make_priority_strategy();
  auto d = s->next_packet(b, env());
  ASSERT_EQ(d.frags.size(), 4u);
  EXPECT_EQ(d.frags[0].cls, TrafficClass::Control);
  EXPECT_EQ(d.frags[1].cls, TrafficClass::SmallEager);
  EXPECT_EQ(d.frags[2].cls, TrafficClass::PutGet);
  EXPECT_EQ(d.frags[3].cls, TrafficClass::Bulk);
}

TEST_F(PriorityTest, AgeBreaksTiesWithinClass) {
  TxBacklog b;
  b.push(classed_frag(5, TrafficClass::SmallEager, 16, 9));
  b.push(classed_frag(3, TrafficClass::SmallEager, 16, 2));
  auto s = make_priority_strategy();
  auto d = s->next_packet(b, env());
  ASSERT_EQ(d.frags.size(), 2u);
  EXPECT_EQ(d.frags[0].channel, 3u);  // older first within equal class
}

TEST_F(PriorityTest, RespectsWindowAndBudget) {
  TxBacklog b;
  for (ChannelId ch = 1; ch <= 8; ++ch)
    b.push(classed_frag(ch, TrafficClass::SmallEager, 16, ch));
  auto s = make_priority_strategy();
  EXPECT_EQ(s->next_packet(b, env(/*window=*/3)).frags.size(), 3u);
}

// ---- adaptive ----------------------------------------------------------------------

using AdaptiveTest = StrategyFixture;

TEST_F(AdaptiveTest, HoldsLoneFragmentWhenCompanionLikely) {
  auto s = make_adaptive_strategy();
  // Warm-up: decisions ~1 µs apart (gap well below the 10 µs hold window)
  // teach it that a companion fragment tends to arrive quickly.
  for (int i = 0; i < 3; ++i) {
    TxBacklog b;
    b.push(data_frag(1, static_cast<MsgSeq>(i), 0, 1, 32, 1,
                     static_cast<Nanos>(i) * usec(1)));
    s->next_packet(b, env(0, 0, usec(10), static_cast<Nanos>(i) * usec(1)));
  }
  TxBacklog b;
  b.push(data_frag(1, 9, 0, 1, 32, 1, usec(4)));
  auto d = s->next_packet(b, env(0, 0, usec(10), usec(4)));
  EXPECT_EQ(d.action, PacketDecision::Action::Wait);
  EXPECT_EQ(d.wait_until, usec(14));
  EXPECT_GE(stats.counter("opt.adaptive_holds"), 1u);
}

TEST_F(AdaptiveTest, NoHoldWhenNothingWillCome) {
  auto s = make_adaptive_strategy();
  // Warm-up with gaps far beyond the hold window: holding a lone fragment
  // would be pure latency tax (the regime where a static nagle loses).
  for (int i = 0; i < 3; ++i) {
    TxBacklog b;
    b.push(data_frag(1, static_cast<MsgSeq>(i), 0, 1, 32, 1,
                     static_cast<Nanos>(i) * usec(500)));
    auto d = s->next_packet(
        b, env(0, 0, usec(10), static_cast<Nanos>(i) * usec(500)));
    EXPECT_EQ(d.action, PacketDecision::Action::Send) << "round " << i;
  }
  EXPECT_EQ(stats.counter("opt.adaptive_holds"), 0u);
}

TEST_F(AdaptiveTest, BusyBacklogNeverHeld) {
  auto s = make_adaptive_strategy();
  for (int i = 0; i < 3; ++i) {
    TxBacklog b;  // two fragments available: aggregate now, don't wait
    b.push(data_frag(1, static_cast<MsgSeq>(i), 0, 1, 32, 1,
                     static_cast<Nanos>(i) * usec(1)));
    b.push(data_frag(2, static_cast<MsgSeq>(i), 0, 1, 32, 2,
                     static_cast<Nanos>(i) * usec(1)));
    auto d = s->next_packet(b, env(0, 0, usec(10),
                                   static_cast<Nanos>(i) * usec(1)));
    EXPECT_EQ(d.action, PacketDecision::Action::Send);
    EXPECT_EQ(d.frags.size(), 2u);
  }
}

TEST_F(AdaptiveTest, HeldFragmentReleasedAtDeadline) {
  auto s = make_adaptive_strategy();
  for (int i = 0; i < 3; ++i) {
    TxBacklog warm;
    warm.push(data_frag(1, static_cast<MsgSeq>(i), 0, 1, 32, 1,
                        static_cast<Nanos>(i) * usec(1)));
    s->next_packet(warm,
                   env(0, 0, usec(10), static_cast<Nanos>(i) * usec(1)));
  }
  TxBacklog b;
  b.push(data_frag(1, 9, 0, 1, 32, 1, usec(4)));
  auto d = s->next_packet(b, env(0, 0, usec(10), usec(15)));  // past hold
  EXPECT_EQ(d.action, PacketDecision::Action::Send);
}

TEST_F(AdaptiveTest, ControlsNeverHeld) {
  auto s = make_adaptive_strategy();
  TxBacklog b;
  b.push_control(ctrl_frag(1));
  auto d = s->next_packet(b, env(0, 0, usec(10), usec(5000)));
  EXPECT_EQ(d.action, PacketDecision::Action::Send);
}

TEST_F(AdaptiveTest, OldestFlowLookupMatchesFullScan) {
  // The O(1) TxBacklog::oldest_flow() the hold check now relies on must
  // agree with a from-scratch scan for the minimum head submit order —
  // exactly what the old code computed by rebuilding (and heap-allocating)
  // the whole flow list via active_flows().
  TxBacklog b;
  std::uint64_t order = 1;
  for (ChannelId ch : {ChannelId{5}, ChannelId{2}, ChannelId{9}}) {
    b.push(data_frag(ch, 0, 0, 2, 16, order, static_cast<Nanos>(order)));
    ++order;
    b.push(data_frag(ch, 0, 1, 2, 16, order, static_cast<Nanos>(order)));
    ++order;
  }
  while (b.frag_count() > 0) {
    ChannelId brute = 0;
    std::uint64_t best = ~std::uint64_t{0};
    for (ChannelId ch : b.active_flows()) {
      if (b.peek(ch).order < best) {
        best = b.peek(ch).order;
        brute = ch;
      }
    }
    ASSERT_EQ(b.oldest_flow(), brute);
    ASSERT_EQ(b.oldest_submit_time(), b.peek(brute).submit_time);
    b.pop(b.oldest_flow());  // consume; the index must stay consistent
  }
}

TEST_F(AdaptiveTest, LargeLoneFragmentNotHeld) {
  // The hold-worthiness size check reads the lone fragment through
  // oldest_flow(); a fragment already a sizable share of max_eager is sent
  // immediately even when a companion is likely.
  auto s = make_adaptive_strategy();
  for (int i = 0; i < 3; ++i) {
    TxBacklog warm;
    warm.push(data_frag(1, static_cast<MsgSeq>(i), 0, 1, 32, 1,
                        static_cast<Nanos>(i) * usec(1)));
    s->next_packet(warm,
                   env(0, 0, usec(10), static_cast<Nanos>(i) * usec(1)));
  }
  TxBacklog b;
  b.push(data_frag(1, 9, 0, 1, 300, 1, usec(4)));  // 300 * 4 >= 1024
  auto d = s->next_packet(b, env(0, 0, usec(10), usec(4)));
  EXPECT_EQ(d.action, PacketDecision::Action::Send);
}

}  // namespace
}  // namespace mado::core
