// Rail-selection properties (dynamic traffic-class re-assignment + eager
// rail policies + failure handling):
//   * no selection path — class pinning, least-loaded balancing or
//     rebalance_classes() — may ever route new traffic onto a Down rail;
//   * the class→rail map follows load shifts and is restored once the load
//     drains;
//   * a Degraded rail (outstanding retransmit timeouts) recovers to Up as
//     soon as acks flow again, without sticking.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "core/engine.hpp"
#include "core/trace.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

// Randomized: four rails, two of which die at random points in a message
// stream. Every message still arrives (reliability replays), and the trace
// proves no packet was ever launched on a rail after its failover.
class RailSelectionProperty
    : public ::testing::TestWithParam<std::tuple<EagerRailPolicy,
                                                 std::uint64_t>> {};

TEST_P(RailSelectionProperty, NewTrafficNeverLaunchesOnADownRail) {
  const auto& [policy, seed] = GetParam();
  EngineConfig cfg;
  cfg.reliability = true;
  cfg.eager_rail = policy;
  SimWorld world(2, cfg);
  constexpr std::size_t kRails = 4;
  for (std::size_t r = 0; r < kRails; ++r)
    world.connect(0, 1, drv::test_profile());
  Tracer tracer(1 << 16);
  world.node(0).set_tracer(&tracer);
  Channel a = world.node(0).open_channel(1, 7);
  Channel b = world.node(1).open_channel(0, 7);

  std::uint64_t rng = seed * 0x9e3779b97f4a7c15ull + 1;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  constexpr std::size_t kMsgs = 120;
  const std::size_t kill1 = 20 + next() % 30;
  const std::size_t kill2 = 60 + next() % 30;
  const RailId dead1 = static_cast<RailId>(next() % kRails);
  RailId dead2 = static_cast<RailId>(next() % kRails);
  if (dead2 == dead1) dead2 = static_cast<RailId>((dead2 + 1) % kRails);

  std::size_t next_recv = 0;  // channel receives are FIFO — consume in order
  auto recv_one = [&] {
    EXPECT_EQ(recv_bytes(b, 64 + next_recv % 900),
              pattern(64 + next_recv % 900,
                      static_cast<std::uint32_t>(next_recv)))
        << "message " << next_recv;
    ++next_recv;
  };
  for (std::size_t i = 0; i < kMsgs; ++i) {
    if (i == kill1) world.fail_link(0, 1, dead1);
    if (i == kill2) world.fail_link(0, 1, dead2);
    send_bytes(a, pattern(64 + i % 900, static_cast<std::uint32_t>(i)));
    // Interleave: drain a receive every third send while rails keep dying.
    if (i % 3 == 2) recv_one();
  }
  // Drain everything the interleaved loop did not consume.
  while (next_recv < kMsgs) recv_one();
  EXPECT_TRUE(world.node(0).flush());

  // Oracle over the trace: once a rail's RailDown record appears, no
  // PacketTx/BulkTx may follow on that rail.
  std::map<RailId, bool> dead;
  std::size_t tx_after_down = 0;
  for (const TraceRecord& r : tracer.snapshot()) {
    if (r.node != 0) continue;
    if (r.event == TraceEvent::RailDown) dead[r.rail] = true;
    if ((r.event == TraceEvent::PacketTx || r.event == TraceEvent::BulkTx) &&
        dead.count(r.rail) != 0)
      ++tx_after_down;
  }
  EXPECT_EQ(tx_after_down, 0u)
      << "packets launched on a rail after its failover";
  EXPECT_EQ(dead.size(), 2u) << "both scheduled kills must have fired";
  world.node(0).set_tracer(nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, RailSelectionProperty,
    ::testing::Combine(::testing::Values(EagerRailPolicy::ClassPinned,
                                         EagerRailPolicy::LeastLoaded),
                       ::testing::Values(std::uint64_t{3}, std::uint64_t{17},
                                         std::uint64_t{51},
                                         std::uint64_t{204})),
    [](const ::testing::TestParamInfo<
        std::tuple<EagerRailPolicy, std::uint64_t>>& pi) {
      return std::string(std::get<0>(pi.param) == EagerRailPolicy::ClassPinned
                             ? "pinned"
                             : "leastloaded") +
             "_s" + std::to_string(std::get<1>(pi.param));
    });

// Randomized: rebalance_classes() must never assign Control/SmallEager to a
// rail that is Down, across random kill orders that always leave at least
// one survivor.
TEST(RebalanceProperty, NeverAssignsClassesToDownRails) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    EngineConfig cfg;
    cfg.reliability = true;
    SimWorld world(2, cfg);
    constexpr std::size_t kRails = 4;
    for (std::size_t r = 0; r < kRails; ++r)
      world.connect(0, 1, drv::test_profile());
    Channel a = world.node(0).open_channel(1, 7);
    Channel b = world.node(1).open_channel(0, 7);
    send_bytes(a, pattern(64, 1));
    EXPECT_EQ(recv_bytes(b, 64), pattern(64, 1));

    std::uint64_t rng = seed * 77 + 5;
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    std::vector<RailId> order{0, 1, 2, 3};
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[next() % i]);

    for (std::size_t k = 0; k + 1 < kRails; ++k) {  // keep one survivor
      world.fail_link(0, 1, order[k]);
      world.run();
      world.node(0).rebalance_classes();

      Engine::Snapshot snap = world.node(0).snapshot();
      ASSERT_EQ(snap.peers.size(), 1u);
      const auto& rails = snap.peers[0].rails;
      for (TrafficClass cls :
           {TrafficClass::Control, TrafficClass::SmallEager}) {
        const RailId r = static_cast<RailId>(
            world.node(0).class_rail(cls) % rails.size());
        EXPECT_NE(rails[r].state, RailState::Down)
            << "class " << static_cast<int>(cls) << " pinned to dead rail "
            << static_cast<int>(r) << " after killing "
            << static_cast<int>(order[k]);
      }
      // Traffic still flows after each kill + rebalance.
      send_bytes(a, pattern(128, static_cast<std::uint32_t>(100 + k)));
      EXPECT_EQ(recv_bytes(b, 128),
                pattern(128, static_cast<std::uint32_t>(100 + k)));
    }
    EXPECT_TRUE(world.node(0).flush());
  }
}

// Deterministic: the class map follows the load (rebalance moves the
// latency-sensitive classes off a loaded rail) and is restored once the
// load drains and a later rebalance runs.
TEST(RebalanceProperty, ClassMapFollowsLoadAndIsRestored) {
  EngineConfig cfg;  // ClassPinned, classes all on rail 0 by default
  SimWorld world(2, cfg);
  world.connect(0, 1, drv::mx_myrinet_profile());
  world.connect(0, 1, drv::mx_myrinet_profile());
  Channel a = world.node(0).open_channel(1, 7);
  Channel b = world.node(1).open_channel(0, 7);

  ASSERT_EQ(world.node(0).class_rail(TrafficClass::Control), 0);
  ASSERT_EQ(world.node(0).class_rail(TrafficClass::SmallEager), 0);

  // Pile submissions onto rail 0 without letting the fabric drain them:
  // track_depth is 1, so everything behind the first packet accumulates in
  // the rail-0 backlog.
  for (std::uint32_t i = 0; i < 40; ++i)
    send_bytes(a, pattern(2048, i));
  world.node(0).rebalance_classes();
  EXPECT_EQ(world.node(0).class_rail(TrafficClass::Control), 1)
      << "Control should flee the loaded rail";
  EXPECT_EQ(world.node(0).class_rail(TrafficClass::SmallEager), 1);

  // Drain, then rebalance again: with both rails idle the map returns to
  // rail 0 (the lowest-indexed least-loaded rail).
  for (std::uint32_t i = 0; i < 40; ++i)
    EXPECT_EQ(recv_bytes(b, 2048), pattern(2048, i));
  EXPECT_TRUE(world.node(0).flush());
  world.node(0).rebalance_classes();
  EXPECT_EQ(world.node(0).class_rail(TrafficClass::Control), 0)
      << "map should be restored once the load drains";
  EXPECT_EQ(world.node(0).class_rail(TrafficClass::SmallEager), 0);
}

// A rail that degrades (retransmit timeout on a black-holed link) returns
// to Up — and to full scheduling eligibility — once the link heals and acks
// make progress again.
TEST(RebalanceProperty, DegradedRailRecoversToUpWhenAcksResume) {
  EngineConfig cfg;
  cfg.reliability = true;
  SimWorld world(2, cfg);
  drv::FaultPlan black_hole;
  black_hole.drop = 1.0;
  black_hole.seed = 99;
  world.connect(0, 1, drv::test_profile(), black_hole, {});
  Channel a = world.node(0).open_channel(1, 7);
  Channel b = world.node(1).open_channel(0, 7);

  SendHandle h = send_bytes(a, pattern(256, 1));
  // Run until the RTO machinery marks the rail Degraded...
  world.run_until([&] {
    return world.node(0).snapshot().peers[0].rails[0].state ==
           RailState::Degraded;
  });
  ASSERT_EQ(world.node(0).snapshot().peers[0].rails[0].state,
            RailState::Degraded);
  // ...then heal the link; the pending retransmits now get through.
  world.endpoint(0, 1, 0).set_fault_plan({});
  EXPECT_EQ(recv_bytes(b, 256), pattern(256, 1));
  EXPECT_TRUE(world.node(0).wait_send(h));
  EXPECT_TRUE(world.node(0).flush());
  EXPECT_EQ(world.node(0).snapshot().peers[0].rails[0].state, RailState::Up)
      << "ack progress must clear the Degraded state";
  EXPECT_GT(world.node(0).stats().counter("rel.retransmits"), 0u);
}

}  // namespace
}  // namespace mado::core
