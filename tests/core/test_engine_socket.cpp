// Integration tests over the real socket driver: the engine against genuine
// asynchrony (IO threads, progress threads, wall-clock timers).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/engine.hpp"
#include "core/trace.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

class SocketEngineTest : public ::testing::Test {
 protected:
  void build(EngineConfig cfg = {}, std::size_t rails = 1) {
    world_ = std::make_unique<SocketWorld>(cfg, drv::mx_myrinet_profile(),
                                           rails);
    a_ = world_->node(0).open_channel(1, 7);
    b_ = world_->node(1).open_channel(0, 7);
  }

  std::unique_ptr<SocketWorld> world_;
  Channel a_, b_;
};

TEST_F(SocketEngineTest, SmallMessageRoundTrip) {
  build();
  send_bytes(a_, pattern(100));
  EXPECT_EQ(recv_bytes(b_, 100), pattern(100));
}

TEST_F(SocketEngineTest, ManyMessagesInOrder) {
  build();
  constexpr int kN = 100;
  for (int i = 0; i < kN; ++i)
    send_bytes(a_, pattern(64, static_cast<std::uint32_t>(i)));
  for (int i = 0; i < kN; ++i)
    EXPECT_EQ(recv_bytes(b_, 64), pattern(64, static_cast<std::uint32_t>(i)));
}

TEST_F(SocketEngineTest, RendezvousOverRealBytes) {
  build();
  const Bytes data = pattern(1 << 20);
  SendHandle h = send_bytes(a_, data, SendMode::Later);
  EXPECT_EQ(recv_bytes(b_, data.size()), data);
  EXPECT_TRUE(world_->node(0).wait_send(h));
  EXPECT_GE(world_->node(0).stats().counter("tx.rdv_completed"), 1u);
}

TEST_F(SocketEngineTest, CrossFlowAggregationHappensForReal) {
  build();
  constexpr ChannelId kFlows = 8;
  constexpr int kMsgs = 25;
  std::vector<Channel> tx, rx;
  for (ChannelId f = 0; f < kFlows; ++f) {
    tx.push_back(world_->node(0).open_channel(1, 100 + f));
    rx.push_back(world_->node(1).open_channel(0, 100 + f));
  }
  for (int i = 0; i < kMsgs; ++i)
    for (ChannelId f = 0; f < kFlows; ++f)
      send_bytes(tx[f], pattern(64, f * 1000u + static_cast<std::uint32_t>(i)));
  for (int i = 0; i < kMsgs; ++i)
    for (ChannelId f = 0; f < kFlows; ++f)
      EXPECT_EQ(recv_bytes(rx[f], 64),
                pattern(64, f * 1000u + static_cast<std::uint32_t>(i)));
  // With IO-thread latency per packet, the backlog builds and aggregation
  // must have fired at least occasionally.
  EXPECT_LT(world_->node(0).stats().counter("tx.packets"),
            world_->node(0).stats().counter("tx.frags"));
}

TEST_F(SocketEngineTest, BidirectionalConcurrent) {
  build();
  constexpr int kN = 50;
  for (int i = 0; i < kN; ++i) {
    send_bytes(a_, pattern(128, static_cast<std::uint32_t>(i)));
    send_bytes(b_, pattern(128, 1000u + static_cast<std::uint32_t>(i)));
  }
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(recv_bytes(b_, 128), pattern(128, static_cast<std::uint32_t>(i)));
    EXPECT_EQ(recv_bytes(a_, 128),
              pattern(128, 1000u + static_cast<std::uint32_t>(i)));
  }
}

TEST_F(SocketEngineTest, MultirailOverSockets) {
  EngineConfig cfg;
  cfg.multirail = MultirailPolicy::DynamicSplit;
  cfg.rdv_chunk = 64 * 1024;
  build(cfg, /*rails=*/2);
  EXPECT_EQ(world_->node(0).rail_count(1), 2u);
  const Bytes data = pattern(2 << 20);
  send_bytes(a_, data, SendMode::Later);
  EXPECT_EQ(recv_bytes(b_, data.size()), data);
}

TEST_F(SocketEngineTest, NagleDelayOverWallClock) {
  EngineConfig cfg;
  cfg.strategy = "nagle";
  cfg.nagle_delay = 2 * kNanosPerMilli;
  build(cfg);
  Channel a2 = world_->node(0).open_channel(1, 8);
  Channel b2 = world_->node(1).open_channel(0, 8);
  send_bytes(a_, pattern(16, 1));
  send_bytes(a2, pattern(16, 2));
  EXPECT_EQ(recv_bytes(b_, 16), pattern(16, 1));
  EXPECT_EQ(recv_bytes(b2, 16), pattern(16, 2));
}

TEST_F(SocketEngineTest, TracerAttachDetachMidTrafficIsSafe) {
  // The tracer pointer is read on the hot path from engine worker context
  // (progress threads, wall-clock timers) while this thread flips it.
  // Under ThreadSanitizer this test proves the attach/detach protocol:
  // atomic pointer for the read, engine lock held across the store so a
  // detach cannot race an in-progress record().
  build();
  Tracer tr;
  std::atomic<bool> done{false};
  std::thread toggler([&] {
    while (!done.load(std::memory_order_acquire)) {
      world_->node(0).set_tracer(&tr);
      world_->node(1).set_tracer(&tr);
      world_->node(0).set_tracer(nullptr);
      world_->node(1).set_tracer(nullptr);
    }
  });
  constexpr int kN = 200;
  for (int i = 0; i < kN; ++i) {
    send_bytes(a_, pattern(64, static_cast<std::uint32_t>(i)));
    EXPECT_EQ(recv_bytes(b_, 64), pattern(64, static_cast<std::uint32_t>(i)));
  }
  EXPECT_TRUE(world_->node(0).flush());
  done.store(true, std::memory_order_release);
  toggler.join();
  // No assertion on trace contents — attachment windows are arbitrary. The
  // test's value is the absence of data races and crashes.
}

TEST_F(SocketEngineTest, MixedEagerAndRdvStress) {
  build();
  constexpr int kRounds = 20;
  for (int i = 0; i < kRounds; ++i) {
    send_bytes(a_, pattern(64, static_cast<std::uint32_t>(i)));
    send_bytes(a_, pattern(64 * 1024, 500u + static_cast<std::uint32_t>(i)));
  }
  for (int i = 0; i < kRounds; ++i) {
    EXPECT_EQ(recv_bytes(b_, 64), pattern(64, static_cast<std::uint32_t>(i)));
    EXPECT_EQ(recv_bytes(b_, 64 * 1024),
              pattern(64 * 1024, 500u + static_cast<std::uint32_t>(i)));
  }
  EXPECT_TRUE(world_->node(0).flush());
}

}  // namespace
}  // namespace mado::core
