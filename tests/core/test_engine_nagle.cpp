// Nagle-style artificial delay at the engine level: timers in virtual time,
// flush-on-fill, flush-on-deadline, and the latency/transaction tradeoff.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

class NagleEngineTest : public ::testing::Test {
 protected:
  void build(Nanos delay, std::size_t window = 0) {
    EngineConfig cfg;
    cfg.strategy = "nagle";
    cfg.nagle_delay = delay;
    cfg.lookahead_window = window;
    world_ = std::make_unique<SimWorld>(2, cfg);
    world_->connect(0, 1, drv::test_profile());
    a_ = world_->node(0).open_channel(1, 7);
    b_ = world_->node(1).open_channel(0, 7);
  }

  std::unique_ptr<SimWorld> world_;
  Channel a_, b_;
};

TEST_F(NagleEngineTest, LoneFragmentDelayedUntilDeadline) {
  build(usec(10));
  send_bytes(a_, pattern(16));
  // Nothing sent yet: the strategy asked to wait.
  EXPECT_EQ(world_->node(0).stats().counter("tx.packets"), 0u);
  EXPECT_EQ(world_->node(0).backlog_frags(1, 0), 1u);
  EXPECT_EQ(recv_bytes(b_, 16), pattern(16));
  // Delivery time >= nagle delay + transfer costs.
  EXPECT_GE(world_->now(), usec(10));
  EXPECT_EQ(world_->node(0).stats().counter("opt.nagle_waits"), 1u);
}

TEST_F(NagleEngineTest, BurstFlushesWithoutWaitingFullDelay) {
  build(usec(1000), /*window=*/4);
  std::vector<Channel> rx;
  for (ChannelId f = 0; f < 4; ++f) {
    // separate flows so the window fills
    Channel ch = world_->node(0).open_channel(1, 100 + f);
    rx.push_back(world_->node(1).open_channel(0, 100 + f));
    send_bytes(ch, pattern(16, f));
  }
  // The 4th submission fills the window and flushes right away.
  EXPECT_EQ(world_->node(0).stats().counter("tx.packets"), 1u);
  for (ChannelId f = 0; f < 4; ++f)
    EXPECT_EQ(recv_bytes(rx[f], 16), pattern(16, f));
  EXPECT_LT(world_->now(), usec(1000));  // did not wait for the deadline
}

TEST_F(NagleEngineTest, HalfFullPacketFlushesImmediately) {
  build(usec(1000));
  send_bytes(a_, pattern(600));  // > max_eager(1024)/2
  world_->run();
  EXPECT_EQ(world_->node(0).stats().counter("tx.packets"), 1u);
  EXPECT_LT(world_->now(), usec(1000));
}

TEST_F(NagleEngineTest, DelayedFragmentsAggregate) {
  build(usec(50));
  Channel a2 = world_->node(0).open_channel(1, 8);
  Channel b2 = world_->node(1).open_channel(0, 8);
  send_bytes(a_, pattern(16, 1));
  send_bytes(a2, pattern(16, 2));  // arrives during the hold
  EXPECT_EQ(recv_bytes(b_, 16), pattern(16, 1));
  EXPECT_EQ(recv_bytes(b2, 16), pattern(16, 2));
  // Both fragments left in ONE packet.
  EXPECT_EQ(world_->node(0).stats().counter("tx.packets"), 1u);
}

TEST_F(NagleEngineTest, TimerFiresOnceDespiteRepeatedDecisions) {
  build(usec(10));
  send_bytes(a_, pattern(16));
  send_bytes(a_, pattern(16));  // second submit re-pumps; timer must dedupe
  world_->run();
  EXPECT_EQ(world_->node(0).stats().counter("tx.packets"), 1u);
}

TEST_F(NagleEngineTest, RendezvousControlNotDelayed) {
  build(usec(1000));
  const Bytes big = pattern(8192);
  send_bytes(a_, big);
  // The RTS itself is a data-queue fragment (tiny) — it is delayed like any
  // small fragment. But once the receiver posts the unpack and the CTS
  // comes back, the CTS on the receiver side must not wait 1 ms.
  EXPECT_EQ(recv_bytes(b_, big.size()), big);
  // RTS waited ~1 ms; everything after flowed promptly. Bound: well under
  // 2x the nagle delay.
  EXPECT_LT(world_->now(), usec(2000));
}

TEST_F(NagleEngineTest, ZeroDelayNeverWaits) {
  build(0);
  send_bytes(a_, pattern(16));
  world_->run();
  EXPECT_EQ(world_->node(0).stats().counter("opt.nagle_waits"), 0u);
  EXPECT_EQ(world_->node(0).stats().counter("tx.packets"), 1u);
}

TEST_F(NagleEngineTest, ManySparseMessagesAllDelivered) {
  build(usec(5));
  for (int i = 0; i < 20; ++i)
    send_bytes(a_, pattern(16, static_cast<std::uint32_t>(i)));
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(recv_bytes(b_, 16), pattern(16, static_cast<std::uint32_t>(i)));
  world_->node(0).flush();
}

// Regression: a Wait decision carrying an EARLIER deadline than the pending
// nagle timer must re-arm the timer. The engine used to drop any new
// deadline while a timer was pending, so a strategy that shortened its hold
// window on new traffic kept sleeping until the stale, later deadline —
// inflating latency by the difference.
TEST(NagleTimerRearm, EarlierDeadlineReArmsPendingTimer) {
  // Scripted strategy: the first decision asks for a long speculative hold
  // (1 ms); the next decision — triggered by a second submit — shortens the
  // deadline to 20 us. Once virtual time reaches the short deadline it
  // flushes everything in one packet.
  struct Rearm final : Strategy {
    int calls = 0;
    Nanos short_deadline = 0;
    std::string name() const override { return "test-rearm"; }
    PacketDecision next_packet(TxBacklog& b, const StrategyEnv& env) override {
      PacketDecision d;
      if (b.empty()) return d;
      ++calls;
      if (calls == 1) {
        d.action = PacketDecision::Action::Wait;
        d.wait_until = env.now + usec(1000);
        return d;
      }
      if (short_deadline == 0) short_deadline = env.now + usec(20);
      if (env.now < short_deadline) {
        d.action = PacketDecision::Action::Wait;
        d.wait_until = short_deadline;  // EARLIER than the pending 1 ms
        return d;
      }
      d.action = PacketDecision::Action::Send;
      while (b.has_control()) d.frags.push_back(b.pop_control());
      while (b.frag_count() > 0) d.frags.push_back(b.pop(b.oldest_flow()));
      return d;
    }
  };
  StrategyRegistry::instance().register_strategy(
      "test-rearm", [] { return std::make_unique<Rearm>(); });

  EngineConfig cfg;
  cfg.strategy = "test-rearm";
  SimWorld world(2, cfg);
  world.connect(0, 1, drv::test_profile());
  Channel a1 = world.node(0).open_channel(1, 7);
  Channel a2 = world.node(0).open_channel(1, 8);
  Channel b1 = world.node(1).open_channel(0, 7);
  Channel b2 = world.node(1).open_channel(0, 8);

  send_bytes(a1, pattern(16, 1));  // decision #1: Wait(now + 1 ms)
  send_bytes(a2, pattern(16, 2));  // decision #2: Wait(now + 20 us)
  EXPECT_EQ(recv_bytes(b1, 16), pattern(16, 1));
  EXPECT_EQ(recv_bytes(b2, 16), pattern(16, 2));
  // With the re-arm in place the flush happens at ~20 us (+ transfer
  // costs), far below the stale 1 ms deadline. The old code delivered at
  // >= 1 ms.
  EXPECT_LT(world.now(), usec(500));
  // Both fragments left in ONE packet at the short deadline.
  EXPECT_EQ(world.node(0).stats().counter("tx.packets"), 1u);
}

}  // namespace
}  // namespace mado::core
