// Multirail and traffic-class tests: bulk splitting policies over
// homogeneous and heterogeneous rails, class→rail assignment, and dynamic
// re-assignment (paper §2).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::core {
namespace {

using testing::pattern;
using testing::recv_bytes;
using testing::send_bytes;

class MultirailTest : public ::testing::Test {
 protected:
  void build(EngineConfig cfg, std::size_t rails,
             const drv::Capabilities& caps = drv::test_profile()) {
    world_ = std::make_unique<SimWorld>(2, cfg);
    for (std::size_t r = 0; r < rails; ++r) world_->connect(0, 1, caps);
    a_ = world_->node(0).open_channel(1, 7, TrafficClass::Bulk);
    b_ = world_->node(1).open_channel(0, 7, TrafficClass::Bulk);
  }

  std::unique_ptr<SimWorld> world_;
  Channel a_, b_;
};

TEST_F(MultirailTest, TwoRailsRoundTrip) {
  EngineConfig cfg;
  cfg.multirail = MultirailPolicy::DynamicSplit;
  build(cfg, 2);
  EXPECT_EQ(world_->node(0).rail_count(1), 2u);
  const Bytes data = pattern(64 * 1024);
  send_bytes(a_, data);
  EXPECT_EQ(recv_bytes(b_, data.size()), data);
}

TEST_F(MultirailTest, DynamicSplitUsesAllRails) {
  EngineConfig cfg;
  cfg.multirail = MultirailPolicy::DynamicSplit;
  cfg.rdv_chunk = 4096;
  build(cfg, 2);
  const Bytes data = pattern(128 * 1024);
  send_bytes(a_, data);
  EXPECT_EQ(recv_bytes(b_, data.size()), data);
  // Both rails carried bulk traffic: check per-endpoint counters via the
  // aggregate (32 chunks cannot all have gone over one rail and still have
  // left the shared pool empty at flush with depth-1 tracks).
  EXPECT_EQ(world_->node(0).pending_bulk_chunks(1), 0u);
  EXPECT_EQ(world_->node(1).stats().counter("rx.bulk_chunks"), 32u);
}

TEST_F(MultirailTest, SingleRailPolicyKeepsBulkOnOneRail) {
  EngineConfig cfg;
  cfg.multirail = MultirailPolicy::SingleRail;
  cfg.rdv_chunk = 4096;
  build(cfg, 2);
  const Bytes data = pattern(64 * 1024);
  send_bytes(a_, data);
  EXPECT_EQ(recv_bytes(b_, data.size()), data);
}

TEST_F(MultirailTest, StaticSplitDelivers) {
  EngineConfig cfg;
  cfg.multirail = MultirailPolicy::StaticSplit;
  cfg.rdv_chunk = 4096;
  build(cfg, 2);
  const Bytes data = pattern(96 * 1024);
  send_bytes(a_, data);
  EXPECT_EQ(recv_bytes(b_, data.size()), data);
}

TEST_F(MultirailTest, HeterogeneousRailsMxPlusElan) {
  EngineConfig cfg;
  cfg.multirail = MultirailPolicy::DynamicSplit;
  cfg.rdv_chunk = 16 * 1024;
  cfg.rdv_threshold_override = 32 * 1024;
  world_ = std::make_unique<SimWorld>(2, cfg);
  world_->connect(0, 1, drv::mx_myrinet_profile());
  world_->connect(0, 1, drv::elan_quadrics_profile());
  a_ = world_->node(0).open_channel(1, 7, TrafficClass::Bulk);
  b_ = world_->node(1).open_channel(0, 7, TrafficClass::Bulk);
  const Bytes data = pattern(1 << 20);
  send_bytes(a_, data, SendMode::Later);
  EXPECT_EQ(recv_bytes(b_, data.size()), data);
}

TEST_F(MultirailTest, DynamicBeatsSingleRailOnBandwidth) {
  auto run = [&](MultirailPolicy pol) {
    EngineConfig cfg;
    cfg.multirail = pol;
    cfg.rdv_chunk = 16 * 1024;
    build(cfg, 2, drv::mx_myrinet_profile());
    const Bytes data = pattern(1 << 20);
    send_bytes(a_, data, SendMode::Later);
    recv_bytes(b_, data.size());
    world_->node(0).flush();
    return world_->now();
  };
  const Nanos single = run(MultirailPolicy::SingleRail);
  const Nanos dynamic = run(MultirailPolicy::DynamicSplit);
  // Two equal rails: dynamic split should approach half the time.
  EXPECT_LT(dynamic, single * 3 / 4);
}

TEST_F(MultirailTest, ClassRailAssignmentRoutesEagerTraffic) {
  EngineConfig cfg;
  cfg.class_rail = {0, 1, 0, 0};  // SmallEager → rail 1
  world_ = std::make_unique<SimWorld>(2, cfg);
  world_->connect(0, 1, drv::test_profile());
  world_->connect(0, 1, drv::test_profile());
  Channel a = world_->node(0).open_channel(1, 1, TrafficClass::SmallEager);
  Channel b = world_->node(1).open_channel(0, 1, TrafficClass::SmallEager);
  send_bytes(a, pattern(64));
  EXPECT_EQ(world_->node(0).backlog_frags(1, 0), 0u);
  EXPECT_EQ(recv_bytes(b, 64), pattern(64));
}

TEST_F(MultirailTest, ClassRailWrapsModuloRailCount) {
  EngineConfig cfg;
  cfg.class_rail = {5, 5, 5, 5};  // only 1 rail exists → wraps to 0
  world_ = std::make_unique<SimWorld>(2, cfg);
  world_->connect(0, 1, drv::test_profile());
  Channel a = world_->node(0).open_channel(1, 1);
  Channel b = world_->node(1).open_channel(0, 1);
  send_bytes(a, pattern(64));
  EXPECT_EQ(recv_bytes(b, 64), pattern(64));
}

TEST_F(MultirailTest, SetClassRailTakesEffectForNewMessages) {
  EngineConfig cfg;
  world_ = std::make_unique<SimWorld>(2, cfg);
  world_->connect(0, 1, drv::test_profile());
  world_->connect(0, 1, drv::test_profile());
  Channel a = world_->node(0).open_channel(1, 1, TrafficClass::Control);
  Channel b = world_->node(1).open_channel(0, 1, TrafficClass::Control);
  EXPECT_EQ(world_->node(0).class_rail(TrafficClass::Control), 0);
  world_->node(0).set_class_rail(TrafficClass::Control, 1);
  send_bytes(a, pattern(32));
  EXPECT_EQ(world_->node(0).backlog_frags(1, 0), 0u);
  EXPECT_EQ(recv_bytes(b, 32), pattern(32));
}

TEST_F(MultirailTest, RebalanceMovesLatencyClassesOffLoadedRail) {
  EngineConfig cfg;
  cfg.multirail = MultirailPolicy::SingleRail;  // pin bulk to its rail
  cfg.class_rail = {0, 0, 0, 0};                // everything on rail 0
  world_ = std::make_unique<SimWorld>(2, cfg);
  world_->connect(0, 1, drv::mx_myrinet_profile());
  world_->connect(0, 1, drv::mx_myrinet_profile());
  Channel bulk_tx = world_->node(0).open_channel(1, 1, TrafficClass::Bulk);
  world_->node(1).open_channel(0, 1, TrafficClass::Bulk);
  // Load rail 0: one large eager message in flight, the rest queued in the
  // collect layer (nothing pumped yet — no fabric steps between posts).
  for (int i = 0; i < 4; ++i) send_bytes(bulk_tx, pattern(16 * 1024));
  EXPECT_GT(world_->node(0).backlog_frags(1, 0), 0u);
  world_->node(0).rebalance_classes();
  EXPECT_EQ(world_->node(0).class_rail(TrafficClass::Control), 1);
  EXPECT_EQ(world_->node(0).class_rail(TrafficClass::SmallEager), 1);
  EXPECT_EQ(world_->node(0).stats().counter("sched.rebalances"), 1u);
}

TEST_F(MultirailTest, RebalanceNoopWithSingleRail) {
  EngineConfig cfg;
  world_ = std::make_unique<SimWorld>(2, cfg);
  world_->connect(0, 1, drv::test_profile());
  world_->node(0).rebalance_classes();
  EXPECT_EQ(world_->node(0).stats().counter("sched.rebalances"), 0u);
}

TEST_F(MultirailTest, AutoRebalanceTicks) {
  EngineConfig cfg;
  world_ = std::make_unique<SimWorld>(2, cfg);
  world_->connect(0, 1, drv::test_profile());
  world_->connect(0, 1, drv::test_profile());
  world_->node(0).set_auto_rebalance(usec(10));
  world_->fabric().run_until(usec(35));
  EXPECT_GE(world_->node(0).stats().counter("sched.rebalances"), 3u);
}

TEST_F(MultirailTest, LeastLoadedEagerPolicySpreadsAcrossRails) {
  EngineConfig cfg;
  cfg.eager_rail = EagerRailPolicy::LeastLoaded;
  world_ = std::make_unique<SimWorld>(2, cfg);
  world_->connect(0, 1, drv::test_profile());
  world_->connect(0, 1, drv::test_profile());
  Channel a = world_->node(0).open_channel(1, 1);
  Channel b = world_->node(1).open_channel(0, 1);
  // Back-to-back posts with no fabric steps: the first loads rail 0, so
  // subsequent ones must flow to rail 1, and so on.
  for (int i = 0; i < 6; ++i)
    send_bytes(a, pattern(200, static_cast<std::uint32_t>(i)));
  EXPECT_GT(world_->node(0).backlog_frags(1, 0) +
                world_->node(0).inflight_packets(),
            0u);
  EXPECT_GT(world_->node(0).backlog_frags(1, 1), 0u);
  // Messages may now arrive out of rail order but each flow's channel
  // sequence is still respected by the addressed reassembly.
  for (int i = 0; i < 6; ++i)
    EXPECT_EQ(recv_bytes(b, 200), pattern(200, static_cast<std::uint32_t>(i)));
}

TEST_F(MultirailTest, LeastLoadedAvoidsBulkLoadedRail) {
  EngineConfig cfg;
  cfg.eager_rail = EagerRailPolicy::LeastLoaded;
  cfg.multirail = MultirailPolicy::SingleRail;
  world_ = std::make_unique<SimWorld>(2, cfg);
  world_->connect(0, 1, drv::mx_myrinet_profile());
  world_->connect(0, 1, drv::mx_myrinet_profile());
  Channel bulk = world_->node(0).open_channel(1, 1, TrafficClass::Bulk);
  world_->node(1).open_channel(0, 1, TrafficClass::Bulk);
  Channel small_tx = world_->node(0).open_channel(1, 2);
  Channel small_rx = world_->node(1).open_channel(0, 2);
  // Load rail 0 with large eager fragments (below rdv threshold).
  for (int i = 0; i < 3; ++i) send_bytes(bulk, pattern(16 * 1024));
  // A small message submitted now must take rail 1.
  send_bytes(small_tx, pattern(64, 7));
  EXPECT_GT(world_->node(0).backlog_frags(1, 1), 0u);
  EXPECT_EQ(recv_bytes(small_rx, 64), pattern(64, 7));
}

TEST_F(MultirailTest, SharedTrackCapsStillDeliverRdv) {
  // track_count == 1: eager packets and bulk chunks share one multiplexing
  // unit; the alternating pump must still drain both.
  auto caps = drv::test_profile();
  caps.track_count = 1;
  EngineConfig cfg;
  cfg.rdv_chunk = 1024;
  world_ = std::make_unique<SimWorld>(2, cfg);
  world_->connect(0, 1, caps);
  a_ = world_->node(0).open_channel(1, 7);
  b_ = world_->node(1).open_channel(0, 7);
  const Bytes big = pattern(16 * 1024, 1);
  send_bytes(a_, big);
  send_bytes(a_, pattern(64, 2));
  EXPECT_EQ(recv_bytes(b_, big.size()), big);
  EXPECT_EQ(recv_bytes(b_, 64), pattern(64, 2));
}

TEST_F(MultirailTest, EagerTrafficNotBlockedBehindBulk) {
  // Separate tracks: a small eager message posted after a huge rendezvous
  // must not wait for the bulk transfer to finish.
  EngineConfig cfg;
  cfg.rdv_chunk = 256 * 1024;
  world_ = std::make_unique<SimWorld>(2, cfg);
  world_->connect(0, 1, drv::mx_myrinet_profile());
  a_ = world_->node(0).open_channel(1, 7);
  b_ = world_->node(1).open_channel(0, 7);
  Channel a2 = world_->node(0).open_channel(1, 8);
  Channel b2 = world_->node(1).open_channel(0, 8);

  const Bytes big = pattern(4 << 20);
  send_bytes(a_, big, SendMode::Later);
  // Receiver posts the big unpack (starts the bulk flow), then reads the
  // small message; measure when the small one lands.
  Bytes rbig(big.size());
  IncomingMessage im = b_.begin_recv();
  im.unpack(rbig.data(), rbig.size(), RecvMode::Cheaper);

  send_bytes(a2, pattern(64, 5));
  const Bytes small = recv_bytes(b2, 64);
  const Nanos small_done = world_->now();
  EXPECT_EQ(small, pattern(64, 5));
  im.finish();
  const Nanos big_done = world_->now();
  EXPECT_LT(small_done, big_done / 4);
  EXPECT_EQ(rbig, big);
}

}  // namespace
}  // namespace mado::core
