// Wire-format fuzzing: random mutations of valid packets, and entirely
// random byte strings, must either parse or throw CheckError — never crash,
// never read out of bounds (run under sanitizers for full value).
#include <gtest/gtest.h>

#include "core/packet.hpp"
#include "util/rng.hpp"

namespace mado::core {
namespace {

Bytes valid_packet(Rng& rng) {
  const auto nfrags = static_cast<std::uint16_t>(1 + rng.below(6));
  PacketHeader ph;
  ph.nfrags = nfrags;
  ph.pkt_seq = static_cast<std::uint32_t>(rng.next());
  ph.src_node = 1;
  std::vector<FragHeader> fhs;
  Bytes payloads;
  for (std::uint16_t i = 0; i < nfrags; ++i) {
    FragHeader fh;
    fh.channel = static_cast<ChannelId>(rng.below(100));
    fh.msg_seq = static_cast<MsgSeq>(rng.below(100));
    fh.frag_idx = i;
    fh.nfrags_total = nfrags;
    fh.flags = (i + 1 == nfrags) ? kFlagLastFrag : std::uint8_t{0};
    fh.len = static_cast<std::uint32_t>(rng.below(200));
    fhs.push_back(fh);
    for (std::uint32_t k = 0; k < fh.len; ++k)
      payloads.push_back(static_cast<Byte>(rng.next()));
  }
  Bytes pkt;
  encode_header_block(pkt, ph, fhs);
  pkt.insert(pkt.end(), payloads.begin(), payloads.end());
  return pkt;
}

void try_parse(const Bytes& pkt, bool crc) {
  try {
    const DecodedPacket d = parse_packet(ByteSpan(pkt), crc);
    // If it parsed, the views must be internally consistent.
    ASSERT_EQ(d.frags.size(), d.header.nfrags);
    for (std::size_t i = 0; i < d.frags.size(); ++i)
      ASSERT_EQ(d.payloads[i].size(), d.frags[i].len);
  } catch (const CheckError&) {
    // Rejected cleanly — fine.
  }
}

TEST(PacketFuzz, SingleByteMutationsNeverCrash) {
  Rng rng(101);
  for (int iter = 0; iter < 50; ++iter) {
    const Bytes pkt = valid_packet(rng);
    for (std::size_t pos = 0; pos < pkt.size();
         pos += 1 + rng.below(3)) {
      Bytes bad = pkt;
      bad[pos] ^= static_cast<Byte>(1 + rng.below(255));
      try_parse(bad, true);
      try_parse(bad, false);  // without CRC the decoder works harder
    }
  }
}

TEST(PacketFuzz, TruncationsNeverCrash) {
  Rng rng(202);
  for (int iter = 0; iter < 50; ++iter) {
    const Bytes pkt = valid_packet(rng);
    for (std::size_t len = 0; len < pkt.size(); len += 1 + rng.below(5)) {
      const Bytes cut(pkt.begin(), pkt.begin() + static_cast<long>(len));
      try_parse(cut, false);
    }
  }
}

TEST(PacketFuzz, RandomBytesNeverCrash) {
  Rng rng(303);
  for (int iter = 0; iter < 500; ++iter) {
    Bytes junk(rng.below(600));
    for (auto& b : junk) b = static_cast<Byte>(rng.next());
    try_parse(junk, true);
  }
}

TEST(PacketFuzz, RandomBytesWithValidMagicNeverCrash) {
  Rng rng(404);
  for (int iter = 0; iter < 500; ++iter) {
    Bytes junk(8 + rng.below(600));
    for (auto& b : junk) b = static_cast<Byte>(rng.next());
    // Plant the magic + version so decoding goes deeper.
    junk[0] = 0x4d; junk[1] = 0x41; junk[2] = 0x44; junk[3] = 0x4f;
    junk[4] = kWireVersion;
    try_parse(junk, false);
  }
}

TEST(PacketFuzz, BulkMutationsNeverCrash) {
  Rng rng(505);
  for (int iter = 0; iter < 200; ++iter) {
    BulkHeader bh;
    bh.src_node = 1;
    bh.token = rng.next();
    bh.offset = rng.below(1 << 20);
    bh.len = static_cast<std::uint32_t>(rng.below(400));
    Bytes pkt;
    encode_bulk_header(pkt, bh);
    for (std::uint32_t k = 0; k < bh.len; ++k)
      pkt.push_back(static_cast<Byte>(rng.next()));
    Bytes bad = pkt;
    bad[rng.below(bad.size())] ^= static_cast<Byte>(1 + rng.below(255));
    ByteSpan view;
    try {
      (void)decode_bulk(ByteSpan(bad), view, true);
    } catch (const CheckError&) {
    }
    try {
      (void)decode_bulk(ByteSpan(bad), view, false);
    } catch (const CheckError&) {
    }
  }
}

}  // namespace
}  // namespace mado::core
