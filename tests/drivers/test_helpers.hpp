// Shared test handler that records driver callbacks.
#pragma once

#include <cstdint>
#include <vector>

#include "drivers/driver.hpp"

namespace mado::drv::testing {

struct RecordingHandler final : EndpointHandler {
  struct Sent {
    TrackId track;
    std::uint64_t token;
  };
  struct Got {
    TrackId track;
    Bytes payload;
  };
  std::vector<Sent> completions;
  std::vector<Got> packets;
  std::vector<Sent> failures;
  int link_downs = 0;
  /// failures.size() at the moment on_link_down fired (contract: every
  /// doomed send is failed BEFORE link-down is reported).
  std::size_t failures_at_link_down = 0;

  void on_send_complete(TrackId track, std::uint64_t token) override {
    completions.push_back({track, token});
  }
  void on_packet(TrackId track, Bytes payload) override {
    packets.push_back({track, std::move(payload)});
  }
  void on_send_failed(TrackId track, std::uint64_t token) override {
    failures.push_back({track, token});
  }
  void on_link_down() override {
    ++link_downs;
    failures_at_link_down = failures.size();
  }
};

inline Bytes make_payload(std::size_t n, std::uint8_t seed = 1) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = static_cast<std::uint8_t>(seed + i * 7);
  return b;
}

}  // namespace mado::drv::testing
