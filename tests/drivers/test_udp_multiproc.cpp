// Multi-process UDP tests: the driver serving REAL traffic between separate
// OS processes over 127.0.0.1 — the configuration the single-process suites
// can only approximate. The harness forks echo children BEFORE the parent
// creates any UdpLoop (so no thread exists at fork time — fork+threads is
// undefined enough that TSan refuses it), exchanges ephemeral ports over
// pipes, and runs the bind()/connect() handshake exactly the way two
// unrelated processes would.
//
// The SIGKILL test is the acceptance scenario from the transport roadmap:
// kill -9 one peer, watch its rail die honestly (every in-flight token gets
// exactly one outcome, then one on_link_down), then drain the remaining
// workload to a surviving peer.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

#include "drivers/profiles.hpp"
#include "drivers/udp_driver.hpp"
#include "tests/drivers/test_helpers.hpp"

namespace mado::drv {
namespace {

using testing::RecordingHandler;
using testing::make_payload;
using namespace std::chrono_literals;

bool write_exact(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_exact(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Echoes every arriving frame back on the same track.
struct EchoHandler final : EndpointHandler {
  UdpEndpoint* ep = nullptr;
  int link_downs = 0;
  std::uint64_t echoed = 0;

  void on_send_complete(TrackId, std::uint64_t) override {}
  void on_send_failed(TrackId, std::uint64_t) override {}
  void on_link_down() override { ++link_downs; }
  void on_packet(TrackId track, Bytes payload) override {
    GatherList gl;
    gl.add(payload.data(), payload.size());
    ep->send(track, gl, ++echoed);
  }
};

/// Child body: bind, swap ports over the pipe, connect, echo until the
/// parent's endpoint disappears (deliberate close or our own death by
/// SIGKILL). Never returns; exits 0 on clean link-down, 2 on timeout,
/// 3 on handshake failure. No gtest in here — assertion macros don't
/// propagate across processes; the parent checks the exit status.
[[noreturn]] void run_echo_child(int rfd, int wfd) {
  auto loop = UdpLoop::create();
  auto ep = UdpEndpoint::bind(loop, test_profile());
  EchoHandler h;
  h.ep = ep.get();
  ep->set_handler(&h);
  const std::uint16_t my_port = ep->local_port();
  if (!write_exact(wfd, &my_port, sizeof my_port)) ::_exit(3);
  std::uint16_t peer_port = 0;
  if (!read_exact(rfd, &peer_port, sizeof peer_port)) ::_exit(3);
  ep->connect("127.0.0.1", peer_port);
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while (h.link_downs == 0) {
    if (std::chrono::steady_clock::now() > deadline) ::_exit(2);
    ep->progress();
    std::this_thread::sleep_for(100us);
  }
  ep->close();
  ::_exit(0);
}

struct ChildProc {
  pid_t pid = -1;
  int rfd = -1;  ///< read child's port from here
  int wfd = -1;  ///< write our port here
};

/// Fork an echo child. MUST be called before the parent owns any UdpLoop
/// (i.e. before any thread exists).
ChildProc spawn_echo_child() {
  int p2c[2], c2p[2];
  if (::pipe(p2c) != 0 || ::pipe(c2p) != 0) return {};
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::close(p2c[1]);
    ::close(c2p[0]);
    run_echo_child(p2c[0], c2p[1]);
  }
  ::close(p2c[0]);
  ::close(c2p[1]);
  ChildProc c;
  c.pid = pid;
  c.rfd = c2p[0];
  c.wfd = p2c[1];
  return c;
}

/// Parent-side handshake against a spawned child.
std::unique_ptr<UdpEndpoint> connect_to_child(std::shared_ptr<UdpLoop> loop,
                                              ChildProc& c,
                                              RecordingHandler& h) {
  auto ep = UdpEndpoint::bind(std::move(loop), test_profile());
  ep->set_handler(&h);
  std::uint16_t child_port = 0;
  EXPECT_TRUE(read_exact(c.rfd, &child_port, sizeof child_port));
  const std::uint16_t my_port = ep->local_port();
  EXPECT_TRUE(write_exact(c.wfd, &my_port, sizeof my_port));
  ep->connect("127.0.0.1", child_port);
  return ep;
}

bool pump_until(UdpEndpoint& ep, const std::function<bool()>& pred,
                std::chrono::milliseconds timeout = 20000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    ep.progress();
    std::this_thread::sleep_for(100us);
  }
  return true;
}

int wait_for_exit(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

TEST(UdpMultiProcess, BindConnectHandshakeAndEchoAcrossProcesses) {
  ChildProc child = spawn_echo_child();
  ASSERT_GT(child.pid, 0);
  // Only now may the parent grow threads.
  RecordingHandler h;
  auto ep = connect_to_child(UdpLoop::create(), child, h);

  // Small frames and a multi-fragment bulk frame, echoed byte-exact.
  constexpr std::uint64_t kSmall = 16;
  for (std::uint64_t i = 0; i < kSmall; ++i) {
    GatherList gl;
    const Bytes p = make_payload(512, static_cast<std::uint8_t>(i));
    gl.add(p.data(), p.size());
    ep->send(kTrackEager, gl, i);
  }
  const Bytes big = make_payload(200 * 1024, 0xAB);
  {
    GatherList gl;
    gl.add(big.data(), big.size());
    ep->send(kTrackBulk, gl, 999);
  }
  ASSERT_TRUE(pump_until(*ep, [&] { return h.packets.size() == kSmall + 1; }));
  std::size_t small_seen = 0;
  bool big_seen = false;
  for (const auto& pkt : h.packets) {
    if (pkt.track == kTrackBulk) {
      EXPECT_EQ(pkt.payload, big);
      big_seen = true;
    } else {
      EXPECT_EQ(pkt.payload,
                make_payload(512, static_cast<std::uint8_t>(small_seen)))
          << small_seen;
      ++small_seen;
    }
  }
  EXPECT_EQ(small_seen, kSmall);
  EXPECT_TRUE(big_seen);
  EXPECT_EQ(h.link_downs, 0);

  // Deliberate close tears the child down cleanly (its pings get refused).
  ep->close();
  const int status = wait_for_exit(child.pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child status " << status;
  ::close(child.rfd);
  ::close(child.wfd);
}

TEST(UdpMultiProcess, LossyEchoAcrossProcesses) {
  // Receive-side loss on the parent's endpoint: echoes vanish at 3%, but
  // the link must stay up (acks keep flowing) and the surviving echoes
  // arrive in order. Recovery-to-completeness belongs to the engine's
  // reliability layer; here the wire's honesty is the contract under test.
  ChildProc child = spawn_echo_child();
  ASSERT_GT(child.pid, 0);
  RecordingHandler h;
  auto ep = connect_to_child(UdpLoop::create(), child, h);
  ep->set_rx_loss(0.03, 77);

  constexpr std::uint64_t kN = 300;
  for (std::uint64_t i = 0; i < kN; ++i) {
    GatherList gl;
    const Bytes p = make_payload(64, static_cast<std::uint8_t>(i));
    gl.add(p.data(), p.size());
    ep->send(kTrackEager, gl, i);
  }
  // Every send completes; the echo stream settles at kN minus the losses.
  ASSERT_TRUE(pump_until(*ep, [&] { return h.completions.size() == kN; }));
  ASSERT_TRUE(pump_until(*ep, [&] {
    return h.packets.size() + ep->counters().rx_loss_injected.load() >= kN;
  }));
  EXPECT_GT(ep->counters().rx_loss_injected.load(), 0u);
  EXPECT_FALSE(ep->broken());
  EXPECT_EQ(h.link_downs, 0);

  ep->close();
  const int status = wait_for_exit(child.pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ::close(child.rfd);
  ::close(child.wfd);
}

TEST(UdpMultiProcess, SigkillPeerFailsOverToSurvivor) {
  // Two echo children; SIGKILL the first mid-workload. Its rail must die
  // honestly — every token one outcome, exactly one on_link_down — and the
  // unacknowledged workload then drains to the survivor.
  ChildProc victim = spawn_echo_child();
  ChildProc survivor = spawn_echo_child();
  ASSERT_GT(victim.pid, 0);
  ASSERT_GT(survivor.pid, 0);
  auto loop = UdpLoop::create();
  RecordingHandler hv, hs;
  auto ep_v = connect_to_child(loop, victim, hv);
  auto ep_s = connect_to_child(loop, survivor, hs);

  auto send_to = [](UdpEndpoint& ep, std::uint64_t token, std::uint8_t seed) {
    GatherList gl;
    const Bytes p = make_payload(1024, seed);
    gl.add(p.data(), p.size());
    ep.send(kTrackEager, gl, token);
  };

  // Warm traffic through the victim.
  constexpr std::uint64_t kWarm = 8;
  for (std::uint64_t i = 0; i < kWarm; ++i)
    send_to(*ep_v, i, static_cast<std::uint8_t>(i));
  ASSERT_TRUE(pump_until(*ep_v, [&] { return hv.packets.size() == kWarm; }));

  // kill -9: the kernel closes the victim's socket; our datagrams now draw
  // ICMP port-unreachable → ECONNREFUSED on the connected fd.
  ASSERT_EQ(::kill(victim.pid, SIGKILL), 0);
  wait_for_exit(victim.pid);

  // Push the second batch at the corpse.
  constexpr std::uint64_t kBatch = 16;
  for (std::uint64_t i = 0; i < kBatch; ++i)
    send_to(*ep_v, 100 + i, static_cast<std::uint8_t>(i));
  ASSERT_TRUE(pump_until(*ep_v, [&] {
    return hv.completions.size() + hv.failures.size() == kWarm + kBatch &&
           hv.link_downs == 1;
  }));
  EXPECT_TRUE(ep_v->broken());
  EXPECT_EQ(hv.link_downs, 1);
  // Link-down came only after every failed token was reported.
  EXPECT_EQ(hv.failures_at_link_down, hv.failures.size());

  // Fail over: drain the same workload to the survivor.
  for (std::uint64_t i = 0; i < kBatch; ++i)
    send_to(*ep_s, 100 + i, static_cast<std::uint8_t>(i));
  ASSERT_TRUE(pump_until(*ep_s, [&] { return hs.packets.size() == kBatch; }));
  for (std::uint64_t i = 0; i < kBatch; ++i)
    EXPECT_EQ(hs.packets[i].payload,
              make_payload(1024, static_cast<std::uint8_t>(i)))
        << i;
  EXPECT_FALSE(ep_s->broken());
  EXPECT_EQ(hs.link_downs, 0);

  ep_v->close();
  ep_s->close();
  const int status = wait_for_exit(survivor.pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  for (int fd : {victim.rfd, victim.wfd, survivor.rfd, survivor.wfd})
    ::close(fd);
}

}  // namespace
}  // namespace mado::drv
