#include "drivers/socket_driver.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "drivers/profiles.hpp"
#include "tests/drivers/test_helpers.hpp"

namespace mado::drv {
namespace {

using testing::RecordingHandler;
using testing::make_payload;
using namespace std::chrono_literals;

class SocketDriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pair = SocketEndpoint::make_pair(test_profile());
    a_ = std::move(pair.a);
    b_ = std::move(pair.b);
    a_->set_handler(&ha_);
    b_->set_handler(&hb_);
  }

  void TearDown() override {
    if (a_) a_->close();
    if (b_) b_->close();
  }

  void send(SocketEndpoint& ep, TrackId track, const Bytes& payload,
            std::uint64_t token) {
    GatherList gl;
    gl.add(payload.data(), payload.size());
    ep.send(track, gl, token);
  }

  /// Pump progress on both ends until pred() or timeout.
  bool pump_until(const std::function<bool()>& pred,
                  std::chrono::milliseconds timeout = 5000ms) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!pred()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      a_->progress();
      b_->progress();
      std::this_thread::sleep_for(100us);
    }
    return true;
  }

  std::unique_ptr<SocketEndpoint> a_, b_;
  RecordingHandler ha_, hb_;
};

TEST_F(SocketDriverTest, RoundTripSmallPacket) {
  Bytes p = make_payload(64);
  send(*a_, kTrackEager, p, 5);
  ASSERT_TRUE(pump_until([&] {
    return ha_.completions.size() == 1 && hb_.packets.size() == 1;
  }));
  EXPECT_EQ(ha_.completions[0].token, 5u);
  EXPECT_EQ(hb_.packets[0].track, kTrackEager);
  EXPECT_EQ(hb_.packets[0].payload, p);
}

TEST_F(SocketDriverTest, EmptyPayload) {
  Bytes p;
  GatherList gl;
  a_->send(kTrackEager, gl, 1);
  ASSERT_TRUE(pump_until([&] { return hb_.packets.size() == 1; }));
  EXPECT_TRUE(hb_.packets[0].payload.empty());
}

TEST_F(SocketDriverTest, LargePayloadCrossesPartialIo) {
  // 8 MiB comfortably exceeds socket buffer sizes, forcing partial
  // reads/writes inside the IO threads.
  Bytes p = make_payload(8 * 1024 * 1024);
  send(*a_, kTrackBulk, p, 9);
  ASSERT_TRUE(pump_until([&] { return hb_.packets.size() == 1; }));
  EXPECT_EQ(hb_.packets[0].payload, p);
  EXPECT_EQ(a_->bytes_sent(), p.size());
}

TEST_F(SocketDriverTest, ManyPacketsKeepFifoOrder) {
  constexpr std::uint64_t kN = 200;
  for (std::uint64_t i = 0; i < kN; ++i)
    send(*a_, kTrackEager, make_payload(32, static_cast<std::uint8_t>(i)), i);
  ASSERT_TRUE(pump_until([&] { return hb_.packets.size() == kN; }));
  for (std::uint64_t i = 0; i < kN; ++i)
    EXPECT_EQ(hb_.packets[i].payload,
              make_payload(32, static_cast<std::uint8_t>(i)));
  ASSERT_EQ(ha_.completions.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i)
    EXPECT_EQ(ha_.completions[i].token, i);
}

TEST_F(SocketDriverTest, TracksMultiplexOverOneStream) {
  send(*a_, kTrackEager, make_payload(8, 1), 1);
  send(*a_, kTrackBulk, make_payload(8, 2), 2);
  ASSERT_TRUE(pump_until([&] { return hb_.packets.size() == 2; }));
  EXPECT_EQ(hb_.packets[0].track, kTrackEager);
  EXPECT_EQ(hb_.packets[1].track, kTrackBulk);
}

TEST_F(SocketDriverTest, BidirectionalTraffic) {
  send(*a_, kTrackEager, make_payload(16, 1), 1);
  send(*b_, kTrackEager, make_payload(16, 2), 2);
  ASSERT_TRUE(pump_until([&] {
    return ha_.packets.size() == 1 && hb_.packets.size() == 1;
  }));
  EXPECT_EQ(ha_.packets[0].payload, make_payload(16, 2));
  EXPECT_EQ(hb_.packets[0].payload, make_payload(16, 1));
}

TEST_F(SocketDriverTest, PeerCloseMarksBroken) {
  b_->close();
  // a_'s RX thread observes EOF.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!a_->broken() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(a_->broken());
}

TEST_F(SocketDriverTest, CloseIsIdempotent) {
  a_->close();
  EXPECT_NO_THROW(a_->close());
}

TEST_F(SocketDriverTest, SendAfterCloseThrows) {
  a_->close();
  GatherList gl;
  Bytes p = make_payload(4);
  gl.add(p.data(), p.size());
  EXPECT_THROW(a_->send(kTrackEager, gl, 1), CheckError);
}

TEST_F(SocketDriverTest, SendsAfterPeerDeathAreFailedNotDropped) {
  // Regression: the TX thread used to exit silently on a broken wire,
  // dropping every queued item — no completion, no failure — which leaked
  // the engine's in-flight records forever. Now every doomed send must get
  // exactly one on_send_failed, all delivered before on_link_down.
  b_->close();
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!a_->broken() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(a_->broken());

  constexpr std::uint64_t kN = 16;
  for (std::uint64_t i = 0; i < kN; ++i)
    send(*a_, kTrackEager, make_payload(64, static_cast<std::uint8_t>(i)), i);
  ASSERT_TRUE(pump_until([&] {
    return ha_.failures.size() == kN && ha_.link_downs == 1;
  }));
  EXPECT_TRUE(ha_.completions.empty());
  for (std::uint64_t i = 0; i < kN; ++i)
    EXPECT_EQ(ha_.failures[i].token, i);
  // on_link_down fired only after every doomed token was failed.
  EXPECT_EQ(ha_.failures_at_link_down, kN);
}

TEST_F(SocketDriverTest, EveryTokenGetsExactlyOneOutcomeAcrossPeerDeath) {
  // Burst sends racing a peer close: tokens may complete (made it into the
  // socket buffer) or fail (wire broke first), but each must get exactly
  // one outcome — the sum must account for every send().
  constexpr std::uint64_t kN = 64;
  // Large payloads so the socket buffer fills and the TX thread is still
  // mid-queue when the peer vanishes.
  for (std::uint64_t i = 0; i < kN; ++i)
    send(*a_, kTrackBulk, make_payload(256 * 1024), i);
  b_->close();
  ASSERT_TRUE(pump_until([&] {
    return ha_.completions.size() + ha_.failures.size() == kN;
  }));
  std::vector<bool> seen(kN, false);
  for (const auto& c : ha_.completions) {
    EXPECT_FALSE(seen[c.token]) << "duplicate outcome for " << c.token;
    seen[c.token] = true;
  }
  for (const auto& f : ha_.failures) {
    EXPECT_FALSE(seen[f.token]) << "duplicate outcome for " << f.token;
    seen[f.token] = true;
  }
  if (!ha_.failures.empty()) {
    ASSERT_TRUE(pump_until([&] { return ha_.link_downs == 1; }));
    EXPECT_EQ(ha_.failures_at_link_down, ha_.failures.size());
  }
}

TEST_F(SocketDriverTest, IdleTxThreadNeverWakes) {
  // Regression for the 100 ms pop_wait poll tick: an idle TX thread used to
  // wake 10×/s forever doing nothing. With the blocking wait it must not
  // wake AT ALL while idle — one wakeup per queued item, one for the stop
  // sentinel, zero in between.
  std::this_thread::sleep_for(300ms);
  EXPECT_EQ(a_->tx_wakeups(), 0u);
  EXPECT_EQ(b_->tx_wakeups(), 0u);

  constexpr std::uint64_t kN = 4;
  for (std::uint64_t i = 0; i < kN; ++i)
    send(*a_, kTrackEager, make_payload(32), i);
  ASSERT_TRUE(pump_until([&] { return ha_.completions.size() == kN; }));
  EXPECT_EQ(a_->tx_wakeups(), kN);

  // Back to idle: the count must hold flat (a poll tick would keep it
  // climbing here).
  std::this_thread::sleep_for(300ms);
  EXPECT_EQ(a_->tx_wakeups(), kN);
}

TEST_F(SocketDriverTest, TeardownOfIdleEndpointsIsPrompt) {
  // close() wakes the TX thread with a sentinel rather than waiting out a
  // poll tick; tearing down a fleet of idle endpoints must be quick. With
  // the old 100 ms tick, 16 endpoints serialized through TearDown-style
  // close() could stack up to 1.6 s; bound well below that.
  constexpr std::size_t kPairs = 8;
  std::vector<std::unique_ptr<SocketEndpoint>> eps;
  for (std::size_t i = 0; i < kPairs; ++i) {
    auto pair = SocketEndpoint::make_pair(test_profile());
    eps.push_back(std::move(pair.a));
    eps.push_back(std::move(pair.b));
  }
  std::this_thread::sleep_for(50ms);  // let everything park idle
  const auto start = std::chrono::steady_clock::now();
  for (auto& ep : eps) ep->close();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, 500ms);
}

TEST_F(SocketDriverTest, ConcurrentSendsRacingPeerDeathOneLinkDown) {
  // Satellite for the LinkDownGate audit, shaped for TSan: a submitter
  // thread bursts bulk sends while the peer dies underneath it and this
  // thread pumps progress() concurrently. Contract: every accepted token
  // gets exactly one outcome, all failures precede on_link_down, and
  // on_link_down fires exactly once — no matter how the three threads
  // (submitter, TX drain pump, progress) interleave.
  constexpr std::uint64_t kN = 96;
  std::atomic<std::uint64_t> accepted{0};
  std::thread submitter([&] {
    for (std::uint64_t i = 0; i < kN; ++i) {
      GatherList gl;
      const Bytes p = make_payload(128 * 1024);
      gl.add(p.data(), p.size());
      a_->send(kTrackBulk, gl, i);
      accepted.fetch_add(1, std::memory_order_release);
      if (i == kN / 4) b_->close();  // peer dies mid-burst
    }
  });
  submitter.join();
  ASSERT_TRUE(pump_until([&] {
    return ha_.completions.size() + ha_.failures.size() ==
           accepted.load(std::memory_order_acquire);
  }));
  std::vector<bool> seen(kN, false);
  for (const auto& c : ha_.completions) {
    EXPECT_FALSE(seen[c.token]) << "duplicate outcome for " << c.token;
    seen[c.token] = true;
  }
  for (const auto& f : ha_.failures) {
    EXPECT_FALSE(seen[f.token]) << "duplicate outcome for " << f.token;
    seen[f.token] = true;
  }
  if (!ha_.failures.empty()) {
    ASSERT_TRUE(pump_until([&] { return ha_.link_downs == 1; }));
    EXPECT_EQ(ha_.link_downs, 1);
    EXPECT_EQ(ha_.failures_at_link_down, ha_.failures.size());
    // Extra pumps must never produce a second report.
    for (int i = 0; i < 100; ++i) a_->progress();
    EXPECT_EQ(ha_.link_downs, 1);
  }
}

TEST_F(SocketDriverTest, GatherSegmentsConcatenated) {
  Bytes p1 = make_payload(16, 3), p2 = make_payload(16, 4);
  GatherList gl;
  gl.add(p1.data(), p1.size());
  gl.add(p2.data(), p2.size());
  a_->send(kTrackEager, gl, 1);
  ASSERT_TRUE(pump_until([&] { return hb_.packets.size() == 1; }));
  Bytes expect = p1;
  expect.insert(expect.end(), p2.begin(), p2.end());
  EXPECT_EQ(hb_.packets[0].payload, expect);
}

}  // namespace
}  // namespace mado::drv
