#include "drivers/socket_driver.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "drivers/profiles.hpp"
#include "tests/drivers/test_helpers.hpp"

namespace mado::drv {
namespace {

using testing::RecordingHandler;
using testing::make_payload;
using namespace std::chrono_literals;

class SocketDriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pair = SocketEndpoint::make_pair(test_profile());
    a_ = std::move(pair.a);
    b_ = std::move(pair.b);
    a_->set_handler(&ha_);
    b_->set_handler(&hb_);
  }

  void TearDown() override {
    if (a_) a_->close();
    if (b_) b_->close();
  }

  void send(SocketEndpoint& ep, TrackId track, const Bytes& payload,
            std::uint64_t token) {
    GatherList gl;
    gl.add(payload.data(), payload.size());
    ep.send(track, gl, token);
  }

  /// Pump progress on both ends until pred() or timeout.
  bool pump_until(const std::function<bool()>& pred,
                  std::chrono::milliseconds timeout = 5000ms) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!pred()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      a_->progress();
      b_->progress();
      std::this_thread::sleep_for(100us);
    }
    return true;
  }

  std::unique_ptr<SocketEndpoint> a_, b_;
  RecordingHandler ha_, hb_;
};

TEST_F(SocketDriverTest, RoundTripSmallPacket) {
  Bytes p = make_payload(64);
  send(*a_, kTrackEager, p, 5);
  ASSERT_TRUE(pump_until([&] {
    return ha_.completions.size() == 1 && hb_.packets.size() == 1;
  }));
  EXPECT_EQ(ha_.completions[0].token, 5u);
  EXPECT_EQ(hb_.packets[0].track, kTrackEager);
  EXPECT_EQ(hb_.packets[0].payload, p);
}

TEST_F(SocketDriverTest, EmptyPayload) {
  Bytes p;
  GatherList gl;
  a_->send(kTrackEager, gl, 1);
  ASSERT_TRUE(pump_until([&] { return hb_.packets.size() == 1; }));
  EXPECT_TRUE(hb_.packets[0].payload.empty());
}

TEST_F(SocketDriverTest, LargePayloadCrossesPartialIo) {
  // 8 MiB comfortably exceeds socket buffer sizes, forcing partial
  // reads/writes inside the IO threads.
  Bytes p = make_payload(8 * 1024 * 1024);
  send(*a_, kTrackBulk, p, 9);
  ASSERT_TRUE(pump_until([&] { return hb_.packets.size() == 1; }));
  EXPECT_EQ(hb_.packets[0].payload, p);
  EXPECT_EQ(a_->bytes_sent(), p.size());
}

TEST_F(SocketDriverTest, ManyPacketsKeepFifoOrder) {
  constexpr std::uint64_t kN = 200;
  for (std::uint64_t i = 0; i < kN; ++i)
    send(*a_, kTrackEager, make_payload(32, static_cast<std::uint8_t>(i)), i);
  ASSERT_TRUE(pump_until([&] { return hb_.packets.size() == kN; }));
  for (std::uint64_t i = 0; i < kN; ++i)
    EXPECT_EQ(hb_.packets[i].payload,
              make_payload(32, static_cast<std::uint8_t>(i)));
  ASSERT_EQ(ha_.completions.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i)
    EXPECT_EQ(ha_.completions[i].token, i);
}

TEST_F(SocketDriverTest, TracksMultiplexOverOneStream) {
  send(*a_, kTrackEager, make_payload(8, 1), 1);
  send(*a_, kTrackBulk, make_payload(8, 2), 2);
  ASSERT_TRUE(pump_until([&] { return hb_.packets.size() == 2; }));
  EXPECT_EQ(hb_.packets[0].track, kTrackEager);
  EXPECT_EQ(hb_.packets[1].track, kTrackBulk);
}

TEST_F(SocketDriverTest, BidirectionalTraffic) {
  send(*a_, kTrackEager, make_payload(16, 1), 1);
  send(*b_, kTrackEager, make_payload(16, 2), 2);
  ASSERT_TRUE(pump_until([&] {
    return ha_.packets.size() == 1 && hb_.packets.size() == 1;
  }));
  EXPECT_EQ(ha_.packets[0].payload, make_payload(16, 2));
  EXPECT_EQ(hb_.packets[0].payload, make_payload(16, 1));
}

TEST_F(SocketDriverTest, PeerCloseMarksBroken) {
  b_->close();
  // a_'s RX thread observes EOF.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!a_->broken() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(a_->broken());
}

TEST_F(SocketDriverTest, CloseIsIdempotent) {
  a_->close();
  EXPECT_NO_THROW(a_->close());
}

TEST_F(SocketDriverTest, SendAfterCloseThrows) {
  a_->close();
  GatherList gl;
  Bytes p = make_payload(4);
  gl.add(p.data(), p.size());
  EXPECT_THROW(a_->send(kTrackEager, gl, 1), CheckError);
}

TEST_F(SocketDriverTest, SendsAfterPeerDeathAreFailedNotDropped) {
  // Regression: the TX thread used to exit silently on a broken wire,
  // dropping every queued item — no completion, no failure — which leaked
  // the engine's in-flight records forever. Now every doomed send must get
  // exactly one on_send_failed, all delivered before on_link_down.
  b_->close();
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!a_->broken() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(a_->broken());

  constexpr std::uint64_t kN = 16;
  for (std::uint64_t i = 0; i < kN; ++i)
    send(*a_, kTrackEager, make_payload(64, static_cast<std::uint8_t>(i)), i);
  ASSERT_TRUE(pump_until([&] {
    return ha_.failures.size() == kN && ha_.link_downs == 1;
  }));
  EXPECT_TRUE(ha_.completions.empty());
  for (std::uint64_t i = 0; i < kN; ++i)
    EXPECT_EQ(ha_.failures[i].token, i);
  // on_link_down fired only after every doomed token was failed.
  EXPECT_EQ(ha_.failures_at_link_down, kN);
}

TEST_F(SocketDriverTest, EveryTokenGetsExactlyOneOutcomeAcrossPeerDeath) {
  // Burst sends racing a peer close: tokens may complete (made it into the
  // socket buffer) or fail (wire broke first), but each must get exactly
  // one outcome — the sum must account for every send().
  constexpr std::uint64_t kN = 64;
  // Large payloads so the socket buffer fills and the TX thread is still
  // mid-queue when the peer vanishes.
  for (std::uint64_t i = 0; i < kN; ++i)
    send(*a_, kTrackBulk, make_payload(256 * 1024), i);
  b_->close();
  ASSERT_TRUE(pump_until([&] {
    return ha_.completions.size() + ha_.failures.size() == kN;
  }));
  std::vector<bool> seen(kN, false);
  for (const auto& c : ha_.completions) {
    EXPECT_FALSE(seen[c.token]) << "duplicate outcome for " << c.token;
    seen[c.token] = true;
  }
  for (const auto& f : ha_.failures) {
    EXPECT_FALSE(seen[f.token]) << "duplicate outcome for " << f.token;
    seen[f.token] = true;
  }
  if (!ha_.failures.empty()) {
    ASSERT_TRUE(pump_until([&] { return ha_.link_downs == 1; }));
    EXPECT_EQ(ha_.failures_at_link_down, ha_.failures.size());
  }
}

TEST_F(SocketDriverTest, GatherSegmentsConcatenated) {
  Bytes p1 = make_payload(16, 3), p2 = make_payload(16, 4);
  GatherList gl;
  gl.add(p1.data(), p1.size());
  gl.add(p2.data(), p2.size());
  a_->send(kTrackEager, gl, 1);
  ASSERT_TRUE(pump_until([&] { return hb_.packets.size() == 1; }));
  Bytes expect = p1;
  expect.insert(expect.end(), p2.begin(), p2.end());
  EXPECT_EQ(hb_.packets[0].payload, expect);
}

}  // namespace
}  // namespace mado::drv
