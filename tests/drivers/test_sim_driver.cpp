#include "drivers/sim_driver.hpp"

#include <gtest/gtest.h>

#include "drivers/profiles.hpp"
#include "sim/fabric.hpp"
#include "tests/drivers/test_helpers.hpp"

namespace mado::drv {
namespace {

using testing::RecordingHandler;
using testing::make_payload;

class SimDriverTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(test_profile(), test_profile()); }

  void reset(const Capabilities& ca, const Capabilities& cb) {
    auto pair = SimEndpoint::make_pair(fabric_, ca, cb);
    a_ = std::move(pair.a);
    b_ = std::move(pair.b);
    a_->set_handler(&ha_);
    b_->set_handler(&hb_);
  }

  void send(SimEndpoint& ep, TrackId track, const Bytes& payload,
            std::uint64_t token) {
    GatherList gl;
    gl.add(payload.data(), payload.size());
    ep.send(track, gl, token);
  }

  sim::Fabric fabric_;
  std::unique_ptr<SimEndpoint> a_, b_;
  RecordingHandler ha_, hb_;
};

TEST_F(SimDriverTest, NoSynchronousCallbacks) {
  Bytes p = make_payload(16);
  send(*a_, kTrackEager, p, 1);
  EXPECT_TRUE(ha_.completions.empty());
  EXPECT_TRUE(hb_.packets.empty());
  EXPECT_TRUE(fabric_.has_events());
}

TEST_F(SimDriverTest, CompletionThenDelivery) {
  Bytes p = make_payload(16);
  send(*a_, kTrackEager, p, 7);
  fabric_.run_until_idle();
  ASSERT_EQ(ha_.completions.size(), 1u);
  EXPECT_EQ(ha_.completions[0].token, 7u);
  ASSERT_EQ(hb_.packets.size(), 1u);
  EXPECT_EQ(hb_.packets[0].payload, p);
}

TEST_F(SimDriverTest, DeliveryLaterThanCompletion) {
  Bytes p = make_payload(16);
  send(*a_, kTrackEager, p, 1);
  // First event: completion (accept time). Clock then < delivery time.
  fabric_.step();
  EXPECT_EQ(ha_.completions.size(), 1u);
  EXPECT_TRUE(hb_.packets.empty());
  const Nanos completion_time = fabric_.now();
  fabric_.run_until_idle();
  EXPECT_EQ(hb_.packets.size(), 1u);
  EXPECT_GT(fabric_.now(), completion_time);
}

TEST_F(SimDriverTest, LatencyMatchesModel) {
  auto caps = test_profile();
  const sim::NicModel m(caps.cost);
  Bytes p = make_payload(64);
  send(*a_, kTrackEager, p, 1);
  fabric_.run_until_idle();
  const Nanos expect_accept = m.busy_time(p.size(), 1);
  EXPECT_EQ(fabric_.now(), expect_accept + m.propagation_latency());
}

TEST_F(SimDriverTest, BackToBackSendsSerializeOnLink) {
  auto caps = test_profile();
  const sim::NicModel m(caps.cost);
  Bytes p = make_payload(64);
  send(*a_, kTrackEager, p, 1);
  send(*a_, kTrackEager, p, 2);
  fabric_.run_until_idle();
  // Second packet waits for the first: total = 2 * busy + latency.
  EXPECT_EQ(fabric_.now(),
            2 * m.busy_time(p.size(), 1) + m.propagation_latency());
  ASSERT_EQ(hb_.packets.size(), 2u);
}

TEST_F(SimDriverTest, DirectionsDoNotSerializeAgainstEachOther) {
  auto caps = test_profile();
  const sim::NicModel m(caps.cost);
  Bytes p = make_payload(64);
  send(*a_, kTrackEager, p, 1);
  send(*b_, kTrackEager, p, 2);
  fabric_.run_until_idle();
  // Full duplex: both finish at single-packet time.
  EXPECT_EQ(fabric_.now(), m.busy_time(p.size(), 1) + m.propagation_latency());
}

TEST_F(SimDriverTest, FifoPerTrack) {
  for (std::uint64_t i = 0; i < 8; ++i)
    send(*a_, kTrackEager, make_payload(8, static_cast<std::uint8_t>(i)), i);
  fabric_.run_until_idle();
  ASSERT_EQ(ha_.completions.size(), 8u);
  ASSERT_EQ(hb_.packets.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(ha_.completions[i].token, i);
    EXPECT_EQ(hb_.packets[i].payload,
              make_payload(8, static_cast<std::uint8_t>(i)));
  }
}

TEST_F(SimDriverTest, FlattenChargedWithoutGatherSupport) {
  auto caps = test_profile();
  caps.gather_scatter = false;
  reset(caps, caps);
  Bytes p1 = make_payload(32, 1), p2 = make_payload(32, 2);
  GatherList gl;
  gl.add(p1.data(), p1.size());
  gl.add(p2.data(), p2.size());
  a_->send(kTrackEager, gl, 1);
  fabric_.run_until_idle();
  EXPECT_EQ(a_->flatten_copies(), 1u);
  ASSERT_EQ(hb_.packets.size(), 1u);
  EXPECT_EQ(hb_.packets[0].payload.size(), 64u);
}

TEST_F(SimDriverTest, TooManySegmentsAlsoFlattens) {
  auto caps = test_profile();
  caps.gather_scatter = true;
  caps.max_gather_segments = 2;
  reset(caps, caps);
  Bytes p = make_payload(8);
  GatherList gl;
  gl.add(p.data(), 4);
  gl.add(p.data() + 4, 2);
  gl.add(p.data() + 6, 2);
  a_->send(kTrackEager, gl, 1);
  fabric_.run_until_idle();
  EXPECT_EQ(a_->flatten_copies(), 1u);
}

TEST_F(SimDriverTest, HeterogeneousCapsPerSide) {
  auto fast = test_profile();
  auto slow = test_profile();
  slow.cost.latency = 1000;
  reset(fast, slow);
  // a_ -> b_ uses fast's model; b_ -> a_ uses slow's.
  Bytes p = make_payload(16);
  send(*b_, kTrackEager, p, 1);
  fabric_.run_until_idle();
  const sim::NicModel m(slow.cost);
  EXPECT_EQ(fabric_.now(), m.busy_time(p.size(), 1) + m.propagation_latency());
}

TEST_F(SimDriverTest, StatsCounters) {
  Bytes p = make_payload(100);
  send(*a_, kTrackEager, p, 1);
  send(*a_, kTrackEager, p, 2);
  fabric_.run_until_idle();
  EXPECT_EQ(a_->packets_sent(), 2u);
  EXPECT_EQ(a_->bytes_sent(), 200u);
  EXPECT_EQ(b_->packets_sent(), 0u);
}

TEST_F(SimDriverTest, DeliveryToDestroyedPeerIsDropped) {
  Bytes p = make_payload(16);
  send(*a_, kTrackEager, p, 1);
  b_.reset();
  EXPECT_NO_THROW(fabric_.run_until_idle());
  EXPECT_EQ(ha_.completions.size(), 1u);
}

TEST_F(SimDriverTest, InvalidTrackThrows) {
  Bytes p = make_payload(4);
  GatherList gl;
  gl.add(p.data(), p.size());
  EXPECT_THROW(a_->send(TrackId{5}, gl, 1), CheckError);
}

}  // namespace
}  // namespace mado::drv
