#include "drivers/loopback_driver.hpp"

#include <gtest/gtest.h>

#include "drivers/profiles.hpp"
#include "tests/drivers/test_helpers.hpp"

namespace mado::drv {
namespace {

using testing::RecordingHandler;
using testing::make_payload;

class LoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pair = LoopbackEndpoint::make_pair(test_profile());
    a_ = std::move(pair.a);
    b_ = std::move(pair.b);
    a_->set_handler(&ha_);
    b_->set_handler(&hb_);
  }

  std::unique_ptr<LoopbackEndpoint> a_, b_;
  RecordingHandler ha_, hb_;
};

TEST_F(LoopbackTest, NoSynchronousCallbacks) {
  GatherList gl;
  Bytes p = make_payload(16);
  gl.add(p.data(), p.size());
  a_->send(kTrackEager, gl, 1);
  EXPECT_TRUE(ha_.completions.empty());
  EXPECT_TRUE(hb_.packets.empty());
}

TEST_F(LoopbackTest, ProgressDeliversCompletionToSender) {
  GatherList gl;
  Bytes p = make_payload(16);
  gl.add(p.data(), p.size());
  a_->send(kTrackEager, gl, 42);
  a_->progress();
  ASSERT_EQ(ha_.completions.size(), 1u);
  EXPECT_EQ(ha_.completions[0].token, 42u);
  EXPECT_EQ(ha_.completions[0].track, kTrackEager);
}

TEST_F(LoopbackTest, ProgressDeliversPacketToReceiver) {
  GatherList gl;
  Bytes p = make_payload(32);
  gl.add(p.data(), p.size());
  a_->send(kTrackBulk, gl, 1);
  b_->progress();
  ASSERT_EQ(hb_.packets.size(), 1u);
  EXPECT_EQ(hb_.packets[0].track, kTrackBulk);
  EXPECT_EQ(hb_.packets[0].payload, p);
}

TEST_F(LoopbackTest, GatherSegmentsConcatenated) {
  Bytes p1 = make_payload(8, 1), p2 = make_payload(8, 2);
  GatherList gl;
  gl.add(p1.data(), p1.size());
  gl.add(p2.data(), p2.size());
  a_->send(kTrackEager, gl, 1);
  b_->progress();
  ASSERT_EQ(hb_.packets.size(), 1u);
  Bytes expect = p1;
  expect.insert(expect.end(), p2.begin(), p2.end());
  EXPECT_EQ(hb_.packets[0].payload, expect);
}

TEST_F(LoopbackTest, FifoOrderPreserved) {
  for (std::uint64_t i = 0; i < 10; ++i) {
    GatherList gl;
    Bytes p = make_payload(4, static_cast<std::uint8_t>(i));
    gl.add(p.data(), p.size());
    a_->send(kTrackEager, gl, i);
  }
  a_->progress();
  b_->progress();
  ASSERT_EQ(ha_.completions.size(), 10u);
  ASSERT_EQ(hb_.packets.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(ha_.completions[i].token, i);
    EXPECT_EQ(hb_.packets[i].payload[0], static_cast<Byte>(i));
  }
}

TEST_F(LoopbackTest, BothDirectionsIndependent) {
  GatherList ga, gb;
  Bytes pa = make_payload(8, 10), pb = make_payload(8, 20);
  ga.add(pa.data(), pa.size());
  gb.add(pb.data(), pb.size());
  a_->send(kTrackEager, ga, 1);
  b_->send(kTrackEager, gb, 2);
  a_->progress();
  b_->progress();
  ASSERT_EQ(ha_.packets.size(), 1u);
  ASSERT_EQ(hb_.packets.size(), 1u);
  EXPECT_EQ(ha_.packets[0].payload, pb);
  EXPECT_EQ(hb_.packets[0].payload, pa);
}

TEST_F(LoopbackTest, InvalidTrackThrows) {
  GatherList gl;
  Bytes p = make_payload(4);
  gl.add(p.data(), p.size());
  EXPECT_THROW(a_->send(TrackId{9}, gl, 1), CheckError);
}

TEST_F(LoopbackTest, PeerDestructionIsSafe) {
  GatherList gl;
  Bytes p = make_payload(4);
  gl.add(p.data(), p.size());
  a_->send(kTrackEager, gl, 1);
  b_.reset();          // destroy receiver with a packet in flight
  a_->progress();      // completion still delivered to sender
  EXPECT_EQ(ha_.completions.size(), 1u);
}

}  // namespace
}  // namespace mado::drv
