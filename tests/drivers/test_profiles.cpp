#include "drivers/profiles.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace mado::drv {
namespace {

TEST(Profiles, LookupByName) {
  EXPECT_EQ(profile_by_name("mx").name, "mx");
  EXPECT_EQ(profile_by_name("elan").name, "elan");
  EXPECT_EQ(profile_by_name("tcp").name, "tcp");
  EXPECT_EQ(profile_by_name("test").name, "test");
}

TEST(Profiles, UnknownNameThrows) {
  EXPECT_THROW(profile_by_name("infiniband-verbs"), CheckError);
}

TEST(Profiles, NamesListMatchesLookups) {
  for (const auto& n : profile_names())
    EXPECT_EQ(profile_by_name(n).name, n);
}

TEST(Profiles, RelativePerformanceOrdering) {
  const auto mx = mx_myrinet_profile();
  const auto elan = elan_quadrics_profile();
  const auto tcp = tcp_gige_profile();
  // Elan: lowest latency; TCP: highest. Matches 2006-era hardware.
  EXPECT_LT(elan.cost.latency, mx.cost.latency);
  EXPECT_LT(mx.cost.latency, tcp.cost.latency);
  // Elan: highest bandwidth; TCP: lowest.
  EXPECT_GT(elan.cost.link_bytes_per_us, mx.cost.link_bytes_per_us);
  EXPECT_GT(mx.cost.link_bytes_per_us, tcp.cost.link_bytes_per_us);
}

TEST(Profiles, TcpLacksGatherSupport) {
  EXPECT_FALSE(tcp_gige_profile().gather_scatter);
  EXPECT_TRUE(mx_myrinet_profile().gather_scatter);
  EXPECT_TRUE(elan_quadrics_profile().gather_scatter);
}

TEST(Profiles, SaneStructure) {
  for (const auto& n : profile_names()) {
    const auto c = profile_by_name(n);
    EXPECT_GE(c.track_count, 2u) << n;
    EXPECT_GT(c.max_eager, 0u) << n;
    EXPECT_GT(c.rdv_threshold, c.max_eager) << n
        << ": rendezvous must kick in above the eager packet limit";
    EXPECT_GT(c.cost.link_bytes_per_us, 0.0) << n;
  }
}

TEST(Profiles, EagerBelowRdvThresholdFitsAggregation) {
  // Aggregation only makes sense if several small fragments fit in one
  // eager packet.
  for (const auto& n : profile_names()) {
    const auto c = profile_by_name(n);
    EXPECT_GE(c.max_eager, 1024u) << n;
  }
}

}  // namespace
}  // namespace mado::drv
