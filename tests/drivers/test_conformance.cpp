// Driver conformance kit: one parameterized suite that checks the
// DriverEndpoint contract (drivers/driver.hpp) against EVERY transport —
// loopback, shared-memory, simulated NIC and real sockets. Anyone adding a
// driver (docs/internals.md §9) plugs it in here.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <thread>

#include "drivers/loopback_driver.hpp"
#include "drivers/profiles.hpp"
#include "drivers/shm_driver.hpp"
#include "drivers/sim_driver.hpp"
#include "drivers/socket_driver.hpp"
#include "drivers/udp_driver.hpp"
#include "sim/fabric.hpp"
#include "tests/drivers/test_helpers.hpp"

namespace mado::drv {
namespace {

using testing::RecordingHandler;
using testing::make_payload;

/// Uniform harness over one endpoint pair plus its progression mechanism.
struct Harness {
  std::unique_ptr<DriverEndpoint> a, b;
  RecordingHandler ha, hb;
  std::function<void()> pump_once;  // advance the world a little
  std::unique_ptr<sim::Fabric> fabric;  // sim only

  void init() {
    a->set_handler(&ha);
    b->set_handler(&hb);
  }

  /// Pump until `pred` or timeout; returns pred().
  bool pump_until(const std::function<bool()>& pred) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!pred()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      pump_once();
    }
    return true;
  }

  void send(DriverEndpoint& ep, TrackId track, const Bytes& payload,
            std::uint64_t token) {
    GatherList gl;
    gl.add(payload.data(), payload.size());
    ep.send(track, gl, token);
  }
};

enum class Kind { Loopback, Shm, Sim, Socket, Udp };

std::unique_ptr<Harness> make_harness(Kind kind) {
  auto h = std::make_unique<Harness>();
  switch (kind) {
    case Kind::Loopback: {
      auto pair = LoopbackEndpoint::make_pair(test_profile());
      h->a = std::move(pair.a);
      h->b = std::move(pair.b);
      break;
    }
    case Kind::Shm: {
      auto pair = ShmEndpoint::make_pair();
      h->a = std::move(pair.a);
      h->b = std::move(pair.b);
      break;
    }
    case Kind::Sim: {
      h->fabric = std::make_unique<sim::Fabric>();
      auto pair = SimEndpoint::make_pair(*h->fabric, test_profile());
      h->a = std::move(pair.a);
      h->b = std::move(pair.b);
      break;
    }
    case Kind::Socket: {
      auto pair = SocketEndpoint::make_pair(test_profile());
      h->a = std::move(pair.a);
      h->b = std::move(pair.b);
      break;
    }
    case Kind::Udp: {
      // Real datagrams over 127.0.0.1. A clean loopback with the driver's
      // flow-control window engaged delivers everything the contract asks
      // for, including per-track FIFO (seq-ordered release).
      auto pair = UdpEndpoint::make_pair(test_profile());
      h->a = std::move(pair.a);
      h->b = std::move(pair.b);
      break;
    }
  }
  Harness* raw = h.get();
  if (h->fabric) {
    h->pump_once = [raw] { raw->fabric->step(); };
  } else {
    h->pump_once = [raw] {
      raw->a->progress();
      raw->b->progress();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    };
  }
  h->init();
  return h;
}

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::Loopback: return "loopback";
    case Kind::Shm: return "shm";
    case Kind::Sim: return "sim";
    case Kind::Socket: return "socket";
    case Kind::Udp: return "udp";
  }
  return "?";
}

class DriverConformanceTest : public ::testing::TestWithParam<Kind> {
 protected:
  void SetUp() override { h_ = make_harness(GetParam()); }
  void TearDown() override {
    if (h_) {
      h_->a->close();
      h_->b->close();
    }
  }
  std::unique_ptr<Harness> h_;
};

TEST_P(DriverConformanceTest, SendNeverInvokesHandlersSynchronously) {
  h_->send(*h_->a, kTrackEager, make_payload(64), 1);
  EXPECT_TRUE(h_->ha.completions.empty());
  EXPECT_TRUE(h_->hb.packets.empty());
}

TEST_P(DriverConformanceTest, CompletionCarriesTrackAndToken) {
  h_->send(*h_->a, kTrackBulk, make_payload(64), 0xfeed);
  ASSERT_TRUE(h_->pump_until([&] { return !h_->ha.completions.empty(); }));
  EXPECT_EQ(h_->ha.completions[0].track, kTrackBulk);
  EXPECT_EQ(h_->ha.completions[0].token, 0xfeedu);
}

TEST_P(DriverConformanceTest, PayloadDeliveredByteExact) {
  const Bytes p = make_payload(777, 9);
  h_->send(*h_->a, kTrackEager, p, 1);
  ASSERT_TRUE(h_->pump_until([&] { return !h_->hb.packets.empty(); }));
  EXPECT_EQ(h_->hb.packets[0].payload, p);
  EXPECT_EQ(h_->hb.packets[0].track, kTrackEager);
}

TEST_P(DriverConformanceTest, LargePayloadSurvives) {
  const Bytes p = make_payload(2 * 1024 * 1024, 3);
  h_->send(*h_->a, kTrackBulk, p, 1);
  ASSERT_TRUE(h_->pump_until([&] { return !h_->hb.packets.empty(); }));
  EXPECT_EQ(h_->hb.packets[0].payload, p);
}

TEST_P(DriverConformanceTest, ZeroLengthPayload) {
  GatherList gl;
  h_->a->send(kTrackEager, gl, 5);
  ASSERT_TRUE(h_->pump_until([&] {
    return !h_->hb.packets.empty() && !h_->ha.completions.empty();
  }));
  EXPECT_TRUE(h_->hb.packets[0].payload.empty());
}

TEST_P(DriverConformanceTest, PerTrackFifoOrder) {
  constexpr std::uint64_t kN = 64;
  for (std::uint64_t i = 0; i < kN; ++i)
    h_->send(*h_->a, kTrackEager, make_payload(16, static_cast<std::uint8_t>(i)),
             i);
  ASSERT_TRUE(h_->pump_until([&] { return h_->hb.packets.size() == kN; }));
  for (std::uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(h_->hb.packets[i].payload,
              make_payload(16, static_cast<std::uint8_t>(i)))
        << i;
    EXPECT_EQ(h_->ha.completions[i].token, i);
  }
}

TEST_P(DriverConformanceTest, GatherSegmentsConcatenate) {
  const Bytes p1 = make_payload(32, 1), p2 = make_payload(48, 2),
              p3 = make_payload(16, 3);
  GatherList gl;
  gl.add(p1.data(), p1.size());
  gl.add(p2.data(), p2.size());
  gl.add(p3.data(), p3.size());
  h_->a->send(kTrackEager, gl, 1);
  ASSERT_TRUE(h_->pump_until([&] { return !h_->hb.packets.empty(); }));
  Bytes expect = p1;
  expect.insert(expect.end(), p2.begin(), p2.end());
  expect.insert(expect.end(), p3.begin(), p3.end());
  EXPECT_EQ(h_->hb.packets[0].payload, expect);
}

TEST_P(DriverConformanceTest, DirectionsAreIndependent) {
  h_->send(*h_->a, kTrackEager, make_payload(16, 1), 1);
  h_->send(*h_->b, kTrackEager, make_payload(16, 2), 2);
  ASSERT_TRUE(h_->pump_until([&] {
    return !h_->ha.packets.empty() && !h_->hb.packets.empty();
  }));
  EXPECT_EQ(h_->ha.packets[0].payload, make_payload(16, 2));
  EXPECT_EQ(h_->hb.packets[0].payload, make_payload(16, 1));
}

TEST_P(DriverConformanceTest, SegmentsReusableAfterCompletion) {
  Bytes buf = make_payload(64, 1);
  h_->send(*h_->a, kTrackEager, buf, 1);
  ASSERT_TRUE(h_->pump_until([&] { return !h_->ha.completions.empty(); }));
  std::fill(buf.begin(), buf.end(), Byte{0});  // allowed after completion
  ASSERT_TRUE(h_->pump_until([&] { return !h_->hb.packets.empty(); }));
  EXPECT_EQ(h_->hb.packets[0].payload, make_payload(64, 1));
}

TEST_P(DriverConformanceTest, ConcurrentTracksShareOnePeerWithoutInterference) {
  // Two tracks in flight at once toward the same peer: a stream of large
  // bulk chunks raced against a stream of small eager packets, interleaved
  // at submission time. The contract: per-track FIFO survives, every
  // payload stays byte-exact, and completions for both tracks arrive in
  // per-track submission order — neither track may starve or reorder the
  // other. This is exactly the shape the engine's striped rendezvous path
  // produces (eager control packets racing bulk chunks on one rail).
  constexpr std::uint64_t kN = 8;
  constexpr std::size_t kBulkSize = 192 * 1024;
  for (std::uint64_t i = 0; i < kN; ++i) {
    h_->send(*h_->a, kTrackBulk,
             make_payload(kBulkSize, static_cast<std::uint8_t>(0x40 + i)),
             0x100 + i);
    h_->send(*h_->a, kTrackEager,
             make_payload(24, static_cast<std::uint8_t>(i)), 0x200 + i);
  }
  ASSERT_TRUE(h_->pump_until([&] {
    return h_->hb.packets.size() == 2 * kN &&
           h_->ha.completions.size() == 2 * kN;
  }));

  // Per-track FIFO + byte-exact payloads, whatever the interleaving.
  std::uint64_t eager_seen = 0, bulk_seen = 0;
  for (const auto& pkt : h_->hb.packets) {
    if (pkt.track == kTrackEager) {
      EXPECT_EQ(pkt.payload,
                make_payload(24, static_cast<std::uint8_t>(eager_seen)))
          << "eager #" << eager_seen;
      ++eager_seen;
    } else {
      ASSERT_EQ(pkt.track, kTrackBulk);
      EXPECT_EQ(pkt.payload,
                make_payload(kBulkSize,
                             static_cast<std::uint8_t>(0x40 + bulk_seen)))
          << "bulk #" << bulk_seen;
      ++bulk_seen;
    }
  }
  EXPECT_EQ(eager_seen, kN);
  EXPECT_EQ(bulk_seen, kN);

  // Completions are per-track FIFO too.
  std::uint64_t eager_done = 0, bulk_done = 0;
  for (const auto& c : h_->ha.completions) {
    if (c.track == kTrackEager) {
      EXPECT_EQ(c.token, 0x200 + eager_done);
      ++eager_done;
    } else {
      ASSERT_EQ(c.track, kTrackBulk);
      EXPECT_EQ(c.token, 0x100 + bulk_done);
      ++bulk_done;
    }
  }
  EXPECT_EQ(eager_done, kN);
  EXPECT_EQ(bulk_done, kN);
  EXPECT_TRUE(h_->ha.failures.empty());
}

TEST_P(DriverConformanceTest, InvalidTrackRejected) {
  GatherList gl;
  const Bytes p = make_payload(8);
  gl.add(p.data(), p.size());
  EXPECT_THROW(h_->a->send(TrackId{200}, gl, 1), CheckError);
}

INSTANTIATE_TEST_SUITE_P(AllDrivers, DriverConformanceTest,
                         ::testing::Values(Kind::Loopback, Kind::Shm,
                                           Kind::Sim, Kind::Socket,
                                           Kind::Udp),
                         [](const ::testing::TestParamInfo<Kind>& pi) {
                           return kind_name(pi.param);
                         });

}  // namespace
}  // namespace mado::drv
