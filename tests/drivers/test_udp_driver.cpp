// UDP driver unit tests: real datagrams over 127.0.0.1 inside one process.
// Covers what the conformance kit cannot: fragmentation across the MTU,
// flow-control under bulk pressure, injected receive-side loss (the driver
// must keep flowing and report honest counters — recovery is the engine
// reliability layer's job, exercised in test_engine_udp.cpp), and the
// failure paths (inject_failure, peer close).
#include "drivers/udp_driver.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "drivers/profiles.hpp"
#include "tests/drivers/test_helpers.hpp"

namespace mado::drv {
namespace {

using testing::RecordingHandler;
using testing::make_payload;
using namespace std::chrono_literals;

class UdpDriverTest : public ::testing::Test {
 protected:
  void build(const UdpConfig& cfg = {}) {
    auto pair = UdpEndpoint::make_pair(test_profile(), cfg);
    a_ = std::move(pair.a);
    b_ = std::move(pair.b);
    a_->set_handler(&ha_);
    b_->set_handler(&hb_);
  }

  void TearDown() override {
    if (a_) a_->close();
    if (b_) b_->close();
  }

  void send(UdpEndpoint& ep, TrackId track, const Bytes& payload,
            std::uint64_t token) {
    GatherList gl;
    gl.add(payload.data(), payload.size());
    ep.send(track, gl, token);
  }

  bool pump_until(const std::function<bool()>& pred,
                  std::chrono::milliseconds timeout = 10000ms) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!pred()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      a_->progress();
      b_->progress();
      std::this_thread::sleep_for(100us);
    }
    return true;
  }

  std::unique_ptr<UdpEndpoint> a_, b_;
  RecordingHandler ha_, hb_;
};

TEST_F(UdpDriverTest, RoundTripSingleDatagram) {
  build();
  const Bytes p = make_payload(512);
  send(*a_, kTrackEager, p, 7);
  ASSERT_TRUE(pump_until([&] {
    return ha_.completions.size() == 1 && hb_.packets.size() == 1;
  }));
  EXPECT_EQ(ha_.completions[0].token, 7u);
  EXPECT_EQ(hb_.packets[0].payload, p);
  EXPECT_GE(a_->counters().datagrams_tx.load(), 1u);
  EXPECT_GE(b_->counters().datagrams_rx.load(), 1u);
}

TEST_F(UdpDriverTest, FrameLargerThanMtuIsFragmentedAndReassembled) {
  UdpConfig cfg;
  cfg.mtu = 2048;  // force many fragments
  build(cfg);
  const Bytes p = make_payload(100 * 1024, 5);
  send(*a_, kTrackBulk, p, 1);
  ASSERT_TRUE(pump_until([&] { return hb_.packets.size() == 1; }));
  EXPECT_EQ(hb_.packets[0].payload, p);
  // ceil(100 KiB / (2048-16)) fragments at minimum.
  EXPECT_GE(a_->counters().datagrams_tx.load(), 50u);
  EXPECT_EQ(b_->counters().frames_rx.load(), 1u);
}

TEST_F(UdpDriverTest, BulkStreamEngagesFlowControlWithoutLoss) {
  // Far more data than the loopback receive buffer: without the ack-driven
  // window this drops silently at the kernel and the test times out.
  build();
  constexpr std::uint64_t kN = 64;
  constexpr std::size_t kSize = 256 * 1024;
  for (std::uint64_t i = 0; i < kN; ++i)
    send(*a_, kTrackBulk, make_payload(kSize, static_cast<std::uint8_t>(i)),
         i);
  ASSERT_TRUE(pump_until([&] {
    return hb_.packets.size() == kN && ha_.completions.size() == kN;
  }, 30000ms));
  for (std::uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hb_.packets[i].payload,
              make_payload(kSize, static_cast<std::uint8_t>(i)))
        << i;
    EXPECT_EQ(ha_.completions[i].token, i);
  }
  // 16 MiB against a ≤1 MiB window must have stalled the sender at least
  // once — proof the window was actually exercised, not bypassed.
  EXPECT_GT(a_->counters().window_stalls.load(), 0u);
  EXPECT_GT(b_->counters().acks_tx.load(), 0u);
}

TEST_F(UdpDriverTest, InjectedRxLossDoesNotStallDelivery) {
  // 5% of DATA datagrams vanish after flow-control accounting. The driver
  // must (a) keep delivering the frames that do arrive, in seq order,
  // (b) skip lost frames after the gap hold, and (c) count what it dropped.
  // No retransmission here — that layer sits above the driver.
  build();
  b_->set_rx_loss(0.05, 42);
  constexpr std::uint64_t kN = 400;
  for (std::uint64_t i = 0; i < kN; ++i)
    send(*a_, kTrackEager, make_payload(64, static_cast<std::uint8_t>(i)), i);
  // All sends complete (completion = handed to the wire, not delivery).
  ASSERT_TRUE(pump_until([&] { return ha_.completions.size() == kN; }));
  // Wait for the receive side to settle: everything not lost gets through.
  ASSERT_TRUE(pump_until([&] {
    return hb_.packets.size() + b_->counters().rx_loss_injected.load() >= kN;
  }));
  EXPECT_GT(b_->counters().rx_loss_injected.load(), 0u);
  EXPECT_LT(hb_.packets.size(), kN);
  // Delivered subsequence preserves submission order (payload seeds ascend).
  std::uint8_t last = 0;
  bool first = true;
  for (const auto& pkt : hb_.packets) {
    ASSERT_FALSE(pkt.payload.empty());
    const std::uint8_t seed = static_cast<std::uint8_t>(pkt.payload[0]);
    if (!first) {
      EXPECT_NE(seed, last) << "duplicate delivery";
    }
    first = false;
    last = seed;
  }
}

TEST_F(UdpDriverTest, InjectFailureFailsQueuedAndFutureSendsThenLinkDown) {
  build();
  a_->inject_failure();
  constexpr std::uint64_t kN = 8;
  for (std::uint64_t i = 0; i < kN; ++i)
    send(*a_, kTrackEager, make_payload(64), i);
  ASSERT_TRUE(pump_until([&] {
    return ha_.failures.size() == kN && ha_.link_downs == 1;
  }));
  EXPECT_TRUE(ha_.completions.empty());
  // Contract: every doomed token failed BEFORE on_link_down, exactly once.
  EXPECT_EQ(ha_.failures_at_link_down, kN);
  EXPECT_TRUE(a_->broken());
  EXPECT_FALSE(a_->link_up());
}

TEST_F(UdpDriverTest, PeerCloseSurfacesAsConnRefused) {
  // Closing b_'s socket makes the kernel answer a_'s datagrams with ICMP
  // port-unreachable → ECONNREFUSED on the connected socket. This is the
  // same fast-path that detects a SIGKILLed peer process.
  build();
  b_->close();
  send(*a_, kTrackEager, make_payload(64), 1);
  ASSERT_TRUE(pump_until(
      [&] {
        // Keep nudging the wire: the refusal arrives on a subsequent
        // send/recv, and a keepalive ping also picks it up.
        return a_->broken();
      },
      5000ms));
  ASSERT_TRUE(pump_until([&] { return ha_.link_downs == 1; }));
  EXPECT_EQ(ha_.completions.size() + ha_.failures.size(), 1u);
}

TEST_F(UdpDriverTest, CloseIsIdempotentAndSendAfterCloseThrows) {
  build();
  a_->close();
  EXPECT_NO_THROW(a_->close());
  GatherList gl;
  const Bytes p = make_payload(4);
  gl.add(p.data(), p.size());
  EXPECT_THROW(a_->send(kTrackEager, gl, 1), CheckError);
}

TEST_F(UdpDriverTest, ManyEndpointsShareOneLoop) {
  // Four pairs multiplexed on one epoll loop each carry traffic without
  // cross-talk — the "N peers, one event loop" scaling claim in miniature.
  constexpr std::size_t kPairs = 4;
  std::vector<std::unique_ptr<UdpEndpoint>> eps;
  std::vector<RecordingHandler> handlers(2 * kPairs);
  for (std::size_t i = 0; i < kPairs; ++i) {
    auto pair = UdpEndpoint::make_pair(test_profile());
    pair.a->set_handler(&handlers[2 * i]);
    pair.b->set_handler(&handlers[2 * i + 1]);
    eps.push_back(std::move(pair.a));
    eps.push_back(std::move(pair.b));
  }
  for (std::size_t i = 0; i < kPairs; ++i) {
    GatherList gl;
    const Bytes p = make_payload(1024, static_cast<std::uint8_t>(i));
    gl.add(p.data(), p.size());
    eps[2 * i]->send(kTrackEager, gl, i);
  }
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  auto all_done = [&] {
    for (std::size_t i = 0; i < kPairs; ++i)
      if (handlers[2 * i + 1].packets.empty()) return false;
    return true;
  };
  while (!all_done() && std::chrono::steady_clock::now() < deadline) {
    for (auto& ep : eps) ep->progress();
    std::this_thread::sleep_for(100us);
  }
  ASSERT_TRUE(all_done());
  for (std::size_t i = 0; i < kPairs; ++i) {
    EXPECT_EQ(handlers[2 * i + 1].packets[0].payload,
              make_payload(1024, static_cast<std::uint8_t>(i)))
        << i;
    EXPECT_TRUE(handlers[2 * i].packets.empty()) << i;  // no cross-talk
  }
  for (auto& ep : eps) ep->close();
}

TEST_F(UdpDriverTest, CapabilitiesAreHonest) {
  build();
  EXPECT_FALSE(a_->caps().lossless);
  EXPECT_GT(a_->caps().datagram_mtu, 0u);
  const Capabilities prof = udp_loopback_profile();
  EXPECT_FALSE(prof.lossless);
  EXPECT_FALSE(prof.gather_scatter);
}

}  // namespace
}  // namespace mado::drv
