// Planner schedules executed over live engines (ISSUE 9).
//
// The property suite proves schedules are well-formed symbolically; this
// suite proves the ScheduleOp executor moves real bytes through real
// engines:
//   * data correctness for every forced algorithm family across rank
//     counts, payload sizes and non-zero roots on the deterministic
//     SimWorld;
//   * virtual-time optimality: measured fabric time for auto-planned
//     collectives stays within the stated gap of the alpha-beta oracle
//     bound, and beats the linear baseline at scale;
//   * the threaded UDP world: collectives over genuine lossy datagrams,
//     recovered by the go-back-N reliability layer;
//   * a seeded mid-collective rail-failure soak (PR 4 pattern): killing a
//     rail while an allreduce is in flight must fail over, not corrupt.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "mw/collectives.hpp"
#include "tests/mw/collective_oracle.hpp"

namespace mado::mw {
namespace {

using Rank = Collectives::Rank;

/// Fully connected SimWorld, one Collectives per rank, forced algorithm.
struct AlgoWorld {
  AlgoWorld(Rank n, CollAlgo algo,
            const drv::Capabilities& caps = drv::test_profile(),
            const core::EngineConfig& cfg = {})
      : world(n, cfg) {
    for (Rank a = 0; a < n; ++a)
      for (Rank b = static_cast<Rank>(a + 1); b < n; ++b)
        world.connect(a, b, caps);
    for (Rank r = 0; r < n; ++r) {
      colls.push_back(std::make_unique<Collectives>(world.node(r), r, n));
      colls.back()->set_algorithm(algo);
    }
  }

  bool drive(std::vector<std::unique_ptr<Collectives::Op>>& ops) {
    std::vector<Collectives::Op*> raw;
    for (auto& op : ops) raw.push_back(op.get());
    return drive_all([this] { return world.fabric().step(); }, raw);
  }

  core::SimWorld world;
  std::vector<std::unique_ptr<Collectives>> colls;
};

class AlgoCorrectness
    : public ::testing::TestWithParam<std::tuple<CollAlgo, Rank>> {};

TEST_P(AlgoCorrectness, BcastEveryRootByteExact) {
  const auto [algo, n] = GetParam();
  for (Rank root : {Rank{0}, static_cast<Rank>(n - 1)}) {
    AlgoWorld w(n, algo);
    constexpr std::size_t kLen = 96;
    std::vector<Bytes> bufs(n, Bytes(kLen, Byte{0}));
    for (std::size_t i = 0; i < kLen; ++i)
      bufs[root][i] = static_cast<Byte>(i * 5 + root + 1);
    std::vector<std::unique_ptr<Collectives::Op>> ops;
    for (Rank r = 0; r < n; ++r)
      ops.push_back(w.colls[r]->bcast(bufs[r].data(), kLen, root));
    ASSERT_TRUE(w.drive(ops)) << "root " << root;
    for (Rank r = 0; r < n; ++r)
      EXPECT_EQ(bufs[r], bufs[root])
          << to_string(algo) << " n=" << n << " rank " << r;
  }
}

TEST_P(AlgoCorrectness, ReduceToNonzeroRoot) {
  const auto [algo, n] = GetParam();
  const Rank root = static_cast<Rank>(n - 1);
  AlgoWorld w(n, algo);
  constexpr std::size_t kN = 24;
  std::vector<std::vector<double>> in(n), out(n,
                                              std::vector<double>(kN, -7));
  for (Rank r = 0; r < n; ++r) {
    in[r].resize(kN);
    for (std::size_t i = 0; i < kN; ++i)
      in[r][i] = static_cast<double>(r + 1) + static_cast<double>(i) * 0.5;
  }
  std::vector<std::unique_ptr<Collectives::Op>> ops;
  for (Rank r = 0; r < n; ++r)
    ops.push_back(
        w.colls[r]->reduce_sum(in[r].data(), out[r].data(), kN, root));
  ASSERT_TRUE(w.drive(ops));
  for (std::size_t i = 0; i < kN; ++i) {
    const double want = n * (n + 1) / 2.0 +
                        static_cast<double>(n) * static_cast<double>(i) * 0.5;
    EXPECT_DOUBLE_EQ(out[root][i], want)
        << to_string(algo) << " n=" << n << " i=" << i;
  }
}

TEST_P(AlgoCorrectness, AllreduceEveryRank) {
  const auto [algo, n] = GetParam();
  AlgoWorld w(n, algo);
  constexpr std::size_t kN = 24;
  std::vector<std::vector<double>> in(n), out(n, std::vector<double>(kN, 0));
  for (Rank r = 0; r < n; ++r) {
    in[r].resize(kN);
    for (std::size_t i = 0; i < kN; ++i)
      in[r][i] = static_cast<double>((r + 2) * (i + 1));
  }
  std::vector<std::unique_ptr<Collectives::Op>> ops;
  for (Rank r = 0; r < n; ++r)
    ops.push_back(
        w.colls[r]->allreduce_sum(in[r].data(), out[r].data(), kN));
  ASSERT_TRUE(w.drive(ops));
  for (Rank r = 0; r < n; ++r)
    for (std::size_t i = 0; i < kN; ++i) {
      double want = 0;
      for (Rank q = 0; q < n; ++q)
        want += static_cast<double>((q + 2) * (i + 1));
      EXPECT_DOUBLE_EQ(out[r][i], want)
          << to_string(algo) << " n=" << n << " rank " << r << " i=" << i;
    }
}

TEST_P(AlgoCorrectness, AlltoallDeliversEveryBlock) {
  const auto [algo, n] = GetParam();
  AlgoWorld w(n, algo);
  constexpr std::size_t kBlock = 48;
  std::vector<Bytes> send(n, Bytes(kBlock * n)),
      recv(n, Bytes(kBlock * n, Byte{0}));
  for (Rank r = 0; r < n; ++r)
    for (Rank d = 0; d < n; ++d)
      for (std::size_t j = 0; j < kBlock; ++j)
        send[r][d * kBlock + j] =
            static_cast<Byte>(r * 31 + d * 7 + j);
  std::vector<std::unique_ptr<Collectives::Op>> ops;
  for (Rank r = 0; r < n; ++r)
    ops.push_back(
        w.colls[r]->alltoall(send[r].data(), recv[r].data(), kBlock));
  ASSERT_TRUE(w.drive(ops));
  for (Rank r = 0; r < n; ++r)
    for (Rank s = 0; s < n; ++s)
      for (std::size_t j = 0; j < kBlock; ++j)
        ASSERT_EQ(recv[r][s * kBlock + j],
                  static_cast<Byte>(s * 31 + r * 7 + j))
            << to_string(algo) << " n=" << n << " rank " << r << " from "
            << s;
}

TEST_P(AlgoCorrectness, BarrierThenAllreduceStayOrdered) {
  const auto [algo, n] = GetParam();
  AlgoWorld w(n, algo);
  for (int round = 0; round < 2; ++round) {
    std::vector<std::unique_ptr<Collectives::Op>> ops;
    for (auto& c : w.colls) ops.push_back(c->barrier());
    ASSERT_TRUE(w.drive(ops));
  }
  double in = 1.0;
  std::vector<double> outs(n, 0);
  std::vector<std::unique_ptr<Collectives::Op>> ops;
  for (Rank r = 0; r < n; ++r)
    ops.push_back(w.colls[r]->allreduce_sum(&in, &outs[r], 1));
  ASSERT_TRUE(w.drive(ops));
  for (Rank r = 0; r < n; ++r)
    EXPECT_DOUBLE_EQ(outs[r], static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Families, AlgoCorrectness,
    ::testing::Combine(::testing::Values(CollAlgo::Auto, CollAlgo::Linear,
                                         CollAlgo::Tree, CollAlgo::Ring,
                                         CollAlgo::Bucket),
                       ::testing::Values(Rank{2}, Rank{3}, Rank{5},
                                         Rank{8}, Rank{12})),
    [](const auto& pinfo) {
      return std::string(to_string(std::get<0>(pinfo.param))) + "_n" +
             std::to_string(std::get<1>(pinfo.param));
    });

// ---- virtual-time optimality on the mx-profile fabric ----------------------

Nanos timed_allreduce(Rank n, CollAlgo algo, std::size_t doubles) {
  AlgoWorld w(n, algo, drv::mx_myrinet_profile());
  std::vector<std::vector<double>> in(n, std::vector<double>(doubles, 1.0)),
      out(n, std::vector<double>(doubles, 0));
  std::vector<std::unique_ptr<Collectives::Op>> ops;
  for (Rank r = 0; r < n; ++r)
    ops.push_back(
        w.colls[r]->allreduce_sum(in[r].data(), out[r].data(), doubles));
  std::vector<Collectives::Op*> raw;
  for (auto& op : ops) raw.push_back(op.get());
  const Nanos t0 = w.world.now();
  EXPECT_TRUE(drive_all([&w] { return w.world.fabric().step(); }, raw));
  for (Rank r = 0; r < n; ++r)
    EXPECT_DOUBLE_EQ(out[r][0], static_cast<double>(n))
        << to_string(algo) << " n=" << n;
  return w.world.now() - t0;
}

TEST(CollectiveOptimality, MeasuredSimTimeWithinOracleGap) {
  const drv::Capabilities caps = drv::mx_myrinet_profile();
  for (Rank n : {Rank{8}, Rank{16}}) {
    constexpr std::size_t kDoubles = 32 * 1024;  // 256 KiB vector
    const Nanos measured = timed_allreduce(n, CollAlgo::Auto, kDoubles);
    const Nanos bound =
        oracle::lower_bound(CollKind::Allreduce, n, kDoubles * 8, caps);
    EXPECT_GE(measured, bound) << "n=" << n;
    EXPECT_LE(oracle::gap(measured, bound), 3.0)
        << "n=" << n << ": measured " << measured << "ns vs bound "
        << bound << "ns";
  }
}

TEST(CollectiveOptimality, PlannedBeatsLinearAtScale) {
  constexpr std::size_t kDoubles = 16 * 1024;  // 128 KiB vector
  const Nanos planned = timed_allreduce(16, CollAlgo::Auto, kDoubles);
  const Nanos linear = timed_allreduce(16, CollAlgo::Linear, kDoubles);
  EXPECT_GE(linear, 2 * planned)
      << "auto-planned allreduce should be >= 2x faster than the linear "
         "fan-out at 16 ranks";
}

// ---- real UDP datagrams (threaded world, go-back-N recovery) ---------------

void drive_threaded(Collectives::Op& op0, Collectives::Op& op1) {
  std::thread t([&] {
    while (!op1.done()) {
      op1.step();
      std::this_thread::yield();
    }
  });
  while (!op0.done()) {
    op0.step();
    std::this_thread::yield();
  }
  t.join();
}

TEST(CollectivesUdp, AllreduceBcastAlltoallOverRealDatagrams) {
  core::UdpWorld w({});
  Collectives c0(w.node(0), 0, 2), c1(w.node(1), 1, 2);

  constexpr std::size_t kN = 512;
  std::vector<double> in0(kN), in1(kN), out0(kN, 0), out1(kN, 0);
  for (std::size_t i = 0; i < kN; ++i) {
    in0[i] = static_cast<double>(i);
    in1[i] = static_cast<double>(2 * i + 1);
  }
  {
    auto op0 = c0.allreduce_sum(in0.data(), out0.data(), kN);
    auto op1 = c1.allreduce_sum(in1.data(), out1.data(), kN);
    drive_threaded(*op0, *op1);
  }
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_DOUBLE_EQ(out0[i], static_cast<double>(3 * i + 1)) << i;
    EXPECT_DOUBLE_EQ(out1[i], static_cast<double>(3 * i + 1)) << i;
  }

  Bytes b0(4096), b1(4096, Byte{0});
  for (std::size_t i = 0; i < b0.size(); ++i)
    b0[i] = static_cast<Byte>(i * 11);
  {
    auto op0 = c0.bcast(b0.data(), b0.size(), 0);
    auto op1 = c1.bcast(b1.data(), b1.size(), 0);
    drive_threaded(*op0, *op1);
  }
  EXPECT_EQ(b1, b0);

  constexpr std::size_t kBlock = 256;
  Bytes s0(2 * kBlock), s1(2 * kBlock), r0(2 * kBlock, Byte{0}),
      r1(2 * kBlock, Byte{0});
  for (std::size_t i = 0; i < 2 * kBlock; ++i) {
    s0[i] = static_cast<Byte>(i);
    s1[i] = static_cast<Byte>(i + 100);
  }
  {
    auto op0 = c0.alltoall(s0.data(), r0.data(), kBlock);
    auto op1 = c1.alltoall(s1.data(), r1.data(), kBlock);
    drive_threaded(*op0, *op1);
  }
  EXPECT_EQ(Bytes(r0.begin(), r0.begin() + kBlock),
            Bytes(s0.begin(), s0.begin() + kBlock));
  EXPECT_EQ(Bytes(r0.begin() + kBlock, r0.end()),
            Bytes(s1.begin(), s1.begin() + kBlock));
  EXPECT_EQ(Bytes(r1.begin(), r1.begin() + kBlock),
            Bytes(s0.begin() + kBlock, s0.end()));
  EXPECT_EQ(Bytes(r1.begin() + kBlock, r1.end()),
            Bytes(s1.begin() + kBlock, s1.end()));
}

TEST(CollectivesUdp, LossyAllreduceRecoveredByGoBackN) {
  // 2% receive-side datagram loss in both directions: the reliability
  // layer must retransmit until the collective lands numerically exact.
  core::UdpWorld w({});
  w.endpoint(0).set_rx_loss(0.02, 11);
  w.endpoint(1).set_rx_loss(0.02, 12);
  Collectives c0(w.node(0), 0, 2), c1(w.node(1), 1, 2);
  constexpr std::size_t kN = 8192;  // 64 KiB: rendezvous over lossy UDP
  std::vector<double> in0(kN, 1.5), in1(kN, 2.5), out0(kN, 0), out1(kN, 0);
  for (int round = 0; round < 5; ++round) {
    std::fill(out0.begin(), out0.end(), 0.0);
    std::fill(out1.begin(), out1.end(), 0.0);
    auto op0 = c0.allreduce_sum(in0.data(), out0.data(), kN);
    auto op1 = c1.allreduce_sum(in1.data(), out1.data(), kN);
    drive_threaded(*op0, *op1);
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_DOUBLE_EQ(out0[i], 4.0) << "round " << round << " i=" << i;
      ASSERT_DOUBLE_EQ(out1[i], 4.0) << "round " << round << " i=" << i;
    }
  }
  // The wire really dropped datagrams — this was not a clean-link pass.
  EXPECT_GT(w.endpoint(0).counters().rx_loss_injected.load() +
                w.endpoint(1).counters().rx_loss_injected.load(),
            0u);
}

// ---- mid-collective rail failure (seeded soak, PR 4 pattern) ---------------

TEST(CollectivesFailover, MidAllreduceRailDeathSoak) {
  // Two mx rails with reliability on; kill rail 0 after the receiver has
  // seen `threshold` bulk chunks of the in-flight allreduce. Every seed
  // must still produce exact sums, and at least one seed must exercise a
  // genuine failover (failure landing before completion).
  std::uint64_t failovers = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    core::EngineConfig cfg;
    cfg.multirail = core::MultirailPolicy::Stripe;
    cfg.reliability = true;
    cfg.payload_crc = true;
    cfg.rdv_chunk = 16 * 1024;
    core::SimWorld world(2, cfg);
    world.connect(0, 1, drv::mx_myrinet_profile());
    world.connect(0, 1, drv::mx_myrinet_profile());
    Collectives c0(world.node(0), 0, 2), c1(world.node(1), 1, 2);

    constexpr std::size_t kN = 32 * 1024;  // 256 KiB vector
    std::vector<double> in0(kN), in1(kN), out0(kN, 0), out1(kN, 0);
    for (std::size_t i = 0; i < kN; ++i) {
      in0[i] = static_cast<double>(i % 97);
      in1[i] = static_cast<double>(i % 89);
    }
    auto op0 = c0.allreduce_sum(in0.data(), out0.data(), kN);
    auto op1 = c1.allreduce_sum(in1.data(), out1.data(), kN);

    const std::uint64_t threshold = 1 + seed * 2;
    bool failed = false;
    while (!(op0->done() && op1->done())) {
      bool any = world.fabric().step();
      any = op0->step() || any;
      any = op1->step() || any;
      if (!failed &&
          world.node(1).stats().counter("rx.bulk_chunks") >= threshold) {
        world.fail_link(0, 1, 0);
        failed = true;
      }
      ASSERT_TRUE(any || op0->done() || op1->done())
          << "seed " << seed << ": world drained mid-collective";
    }
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_DOUBLE_EQ(out0[i],
                       static_cast<double>(i % 97) +
                           static_cast<double>(i % 89))
          << "seed " << seed << " i=" << i;
    ASSERT_EQ(out1, out0) << "seed " << seed;
    ASSERT_TRUE(failed) << "seed " << seed
                        << ": failure never triggered; lower threshold";
    failovers += world.node(0).stats().counter("rel.rail_failovers") +
                 world.node(1).stats().counter("rel.rail_failovers");

    // The fabric must still carry traffic on the surviving rail.
    std::vector<double> o0(1, 0), o1(1, 0);
    double one = 1.0;
    auto p0 = c0.allreduce_sum(&one, o0.data(), 1);
    auto p1 = c1.allreduce_sum(&one, o1.data(), 1);
    std::vector<Collectives::Op*> raw{p0.get(), p1.get()};
    ASSERT_TRUE(
        drive_all([&world] { return world.fabric().step(); }, raw))
        << "seed " << seed << ": post-failure collective stalled";
    EXPECT_DOUBLE_EQ(o0[0], 2.0);
    EXPECT_DOUBLE_EQ(o1[0], 2.0);
  }
  EXPECT_GT(failovers, 0u)
      << "no seed exercised a real failover: thresholds all too late";
}

}  // namespace
}  // namespace mado::mw
