#include "mw/workload.hpp"

#include <gtest/gtest.h>

#include "drivers/profiles.hpp"
#include "mw/workload_runner.hpp"

namespace mado::mw {
namespace {

bool is_sorted_by_time(const Schedule& s) {
  for (std::size_t i = 1; i < s.size(); ++i)
    if (s[i].at < s[i - 1].at) return false;
  return true;
}

TEST(Workload, UniformShape) {
  UniformSpec spec;
  spec.flows = 3;
  spec.msgs_per_flow = 5;
  spec.size = 128;
  spec.interval = usec(2);
  spec.stagger = usec(0.5);
  const Schedule s = make_uniform(spec);
  EXPECT_EQ(s.size(), 15u);
  EXPECT_TRUE(is_sorted_by_time(s));
  EXPECT_EQ(flow_count(s), 3u);
  const auto counts = per_flow_counts(s);
  for (int c : counts) EXPECT_EQ(c, 5);
  for (const Submission& sub : s) EXPECT_EQ(sub.size, 128u);
  // Flow 0's messages land exactly at i * interval.
  std::size_t seen = 0;
  for (const Submission& sub : s) {
    if (sub.flow == 0) {
      EXPECT_EQ(sub.at, seen++ * usec(2));
    }
  }
}

TEST(Workload, BurstyShape) {
  BurstySpec spec;
  spec.flows = 2;
  spec.bursts = 3;
  spec.burst_len = 4;
  spec.inter_gap = usec(50);
  const Schedule s = make_bursty(spec);
  EXPECT_EQ(s.size(), 2u * 3 * 4);
  EXPECT_TRUE(is_sorted_by_time(s));
  // With intra_gap 0, every submission of one burst shares a timestamp.
  EXPECT_EQ(s[0].at, s[7].at);
  EXPECT_GE(s[8].at, s[7].at + usec(50));
}

TEST(Workload, PoissonDeterministicPerSeed) {
  PoissonSpec spec;
  spec.seed = 42;
  const Schedule a = make_poisson(spec);
  const Schedule b = make_poisson(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].flow, b[i].flow);
  }
  spec.seed = 43;
  const Schedule c = make_poisson(spec);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i)
    differs = a[i].at != c[i].at;
  EXPECT_TRUE(differs);
}

TEST(Workload, PoissonMeanGapRoughlyMatches) {
  PoissonSpec spec;
  spec.flows = 1;
  spec.msgs_per_flow = 5000;
  spec.mean_gap_us = 3.0;
  spec.seed = 9;
  const Schedule s = make_poisson(spec);
  const double total_us = to_usec(s.back().at);
  EXPECT_NEAR(total_us / 5000.0, 3.0, 0.3);
}

TEST(Workload, MixedSizesPerFlow) {
  MixedSpec spec;
  spec.flow_sizes = {16, 2048};
  spec.msgs_per_flow = 3;
  const Schedule s = make_mixed(spec);
  EXPECT_EQ(s.size(), 6u);
  for (const Submission& sub : s)
    EXPECT_EQ(sub.size, sub.flow == 0 ? 16u : 2048u);
}

TEST(Workload, ReplayDeliversEverything) {
  UniformSpec spec;
  spec.flows = 4;
  spec.msgs_per_flow = 20;
  spec.interval = usec(1);
  core::EngineConfig cfg;
  cfg.strategy = "aggreg";
  const ReplayResult r =
      replay(cfg, drv::mx_myrinet_profile(), make_uniform(spec));
  EXPECT_EQ(r.frags, 80u);
  EXPECT_GT(r.packets, 0u);
  EXPECT_GT(r.mean_latency_us, 0.0);
  EXPECT_GT(r.completion, usec(19));  // last submission is at 19 us
}

TEST(Workload, ReplayShowsAggregationOnBursts) {
  BurstySpec spec;
  spec.flows = 4;
  spec.bursts = 5;
  spec.burst_len = 5;
  core::EngineConfig fifo_cfg, aggreg_cfg;
  fifo_cfg.strategy = "fifo";
  aggreg_cfg.strategy = "aggreg";
  const Schedule s = make_bursty(spec);
  const auto fifo = replay(fifo_cfg, drv::mx_myrinet_profile(), s);
  const auto aggreg = replay(aggreg_cfg, drv::mx_myrinet_profile(), s);
  EXPECT_EQ(fifo.frags, aggreg.frags);
  EXPECT_LT(aggreg.packets, fifo.packets / 2);
}

TEST(Workload, EmptySpecsRejected) {
  UniformSpec u;
  u.flows = 0;
  EXPECT_THROW(make_uniform(u), CheckError);
  PoissonSpec p;
  p.mean_gap_us = 0;
  EXPECT_THROW(make_poisson(p), CheckError);
  MixedSpec m;
  m.flow_sizes.clear();
  EXPECT_THROW(make_mixed(m), CheckError);
}

}  // namespace
}  // namespace mado::mw
