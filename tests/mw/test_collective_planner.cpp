// Property suite for the topology-aware collective planner (ISSUE 9).
//
// Every schedule the planner emits is validated WITHOUT any engine or
// transport, three ways:
//
//   1. Structurally: steps reference valid peers/rails/buffers, no step
//      rides a Down rail, nothing writes into the read-only input.
//   2. Graph-theoretically: the dependency graph (local program order plus
//      k-th-send -> k-th-recv channel matching) is acyclic (Kahn), and for
//      barriers every rank's completion transitively depends on every
//      other rank.
//   3. Symbolically: a per-byte interpreter executes the schedule with
//      FIFO channels. Each byte carries {contributor bitmask, source
//      offset}; RecvReduce merges masks and flags duplicate contributions,
//      so "every node contributes exactly once", "bcast reaches all
//      nodes", and "alltoall delivers every (src,dst) block once" are
//      checked exactly, along with deadlock-freedom and fully drained
//      channels.
//
// The randomized sweep runs >= 50 seeds per algorithm family across
// random node counts, rail profiles (mixed technologies, random per-node
// Down rails, bandwidth hints) and payload sizes.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/strategy.hpp"
#include "drivers/profiles.hpp"
#include "mw/collective_planner.hpp"
#include "tests/mw/collective_oracle.hpp"
#include "util/rng.hpp"

namespace {

using namespace mado;
using namespace mado::mw;
using drv::Capabilities;
using Kind = CollStep::Kind;
using Buf = CollStep::Buf;
using u64 = std::uint64_t;

constexpr u64 kGarbage = ~u64{0};

/// Symbolic content of one byte: which ranks' contributions are summed
/// into it (mask) and which source byte it carries (off).
struct Cell {
  u64 mask = 0;
  u64 off = kGarbage;
  bool operator==(const Cell& o) const {
    return mask == o.mask && off == o.off;
  }
};

u64 in_bytes(const CollSchedule& s) {
  switch (s.kind) {
    case CollKind::Reduce:
    case CollKind::Allreduce: return s.bytes;
    case CollKind::Alltoall: return s.bytes * s.size;
    default: return 0;
  }
}

u64 out_bytes(const CollSchedule& s) {
  switch (s.kind) {
    case CollKind::Bcast:
    case CollKind::Reduce:
    case CollKind::Allreduce: return s.bytes;
    case CollKind::Alltoall: return s.bytes * s.size;
    default: return 0;
  }
}

/// Returns "" if the schedule passes every check, else a description of
/// the first violation.
std::string validate(const CollSchedule& s, const CollTopology& topo) {
  const CollRank n = s.size;
  std::ostringstream err;
  auto fail = [&](const std::string& what) { return what; };

  if (s.ranks.size() != n) return fail("rank plan count != size");

  // ---- pass 1: structural ----
  for (CollRank r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < s.ranks[r].steps.size(); ++i) {
      const CollStep& st = s.ranks[r].steps[i];
      std::ostringstream at;
      at << to_string(s.kind) << "/" << to_string(s.algo) << " rank " << r
         << " step " << i << ": ";
      if (st.len == 0) return fail(at.str() + "zero-length step");
      const bool comm = st.kind != Kind::Copy;
      if (comm) {
        if (st.peer >= n || st.peer == r)
          return fail(at.str() + "bad peer");
        if (!topo.rail_up(r, st.peer, st.rail))
          return fail(at.str() + "step uses a Down/absent rail");
      }
      auto cap = [&](Buf b) -> u64 {
        switch (b) {
          case Buf::In: return in_bytes(s);
          case Buf::Out: return out_bytes(s);
          case Buf::Scratch: return s.scratch_bytes;
        }
        return 0;
      };
      if (st.offset + st.len > cap(st.buf))
        return fail(at.str() + "range exceeds buffer");
      const bool writes = st.kind == Kind::Recv ||
                          st.kind == Kind::RecvReduce ||
                          st.kind == Kind::Copy;
      if (writes && st.buf == Buf::In)
        return fail(at.str() + "writes into read-only input");
      if (st.kind == Kind::Copy &&
          st.src_offset + st.len > cap(st.src_buf))
        return fail(at.str() + "copy source exceeds buffer");
      if (st.kind == Kind::RecvReduce && st.len % s.elem != 0)
        return fail(at.str() + "unaligned reduction");
    }
  }

  // ---- pass 2: dependency graph (local order + FIFO matching) ----
  // Global step ids; match the k-th send a->b with the k-th recv b<-a.
  std::vector<std::size_t> base(n + 1, 0);
  for (CollRank r = 0; r < n; ++r)
    base[r + 1] = base[r] + s.ranks[r].steps.size();
  const std::size_t total = base[n];
  std::vector<std::vector<std::size_t>> adj(total);
  std::vector<std::size_t> indeg(total, 0);
  auto add_edge = [&](std::size_t a, std::size_t b) {
    adj[a].push_back(b);
    ++indeg[b];
  };
  std::map<std::pair<CollRank, CollRank>, std::deque<std::size_t>> sends,
      recvs;
  for (CollRank r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < s.ranks[r].steps.size(); ++i) {
      const std::size_t id = base[r] + i;
      if (i > 0) add_edge(id - 1, id);
      const CollStep& st = s.ranks[r].steps[i];
      if (st.kind == Kind::Send)
        sends[{r, st.peer}].push_back(id);
      else if (st.kind == Kind::Recv || st.kind == Kind::RecvReduce)
        recvs[{st.peer, r}].push_back(id);
    }
  }
  for (auto& [pair, sq] : sends) {
    auto& rq = recvs[pair];
    if (sq.size() != rq.size()) {
      err << "pair " << pair.first << "->" << pair.second << " has "
          << sq.size() << " sends but " << rq.size() << " recvs";
      return fail(err.str());
    }
    for (std::size_t k = 0; k < sq.size(); ++k) add_edge(sq[k], rq[k]);
  }
  for (auto& [pair, rq] : recvs) {
    if (sends.find(pair) == sends.end() && !rq.empty()) {
      err << "recv without matching send on pair " << pair.first << "->"
          << pair.second;
      return fail(err.str());
    }
  }
  {  // Kahn
    std::vector<std::size_t> q;
    for (std::size_t i = 0; i < total; ++i)
      if (indeg[i] == 0) q.push_back(i);
    std::size_t seen = 0;
    while (!q.empty()) {
      const std::size_t v = q.back();
      q.pop_back();
      ++seen;
      for (std::size_t w : adj[v])
        if (--indeg[w] == 0) q.push_back(w);
    }
    if (seen != total) return fail("dependency graph has a cycle");
  }

  // Barrier: rank r's completion must depend on every other rank having
  // entered (reverse reachability from r's last step touches all ranks).
  if (s.kind == CollKind::Barrier && n > 1) {
    std::vector<std::vector<std::size_t>> radj(total);
    for (std::size_t v = 0; v < total; ++v)
      for (std::size_t w : adj[v]) radj[w].push_back(v);
    for (CollRank r = 0; r < n; ++r) {
      if (s.ranks[r].steps.empty())
        return fail("barrier rank with empty plan");
      std::vector<char> vis(total, 0);
      std::vector<std::size_t> stack = {base[r + 1] - 1};
      vis[stack[0]] = 1;
      std::vector<char> rank_seen(n, 0);
      while (!stack.empty()) {
        const std::size_t v = stack.back();
        stack.pop_back();
        const CollRank owner = static_cast<CollRank>(
            std::upper_bound(base.begin(), base.end(), v) - base.begin() -
            1);
        rank_seen[owner] = 1;
        for (std::size_t w : radj[v])
          if (!vis[w]) {
            vis[w] = 1;
            stack.push_back(w);
          }
      }
      for (CollRank q = 0; q < n; ++q)
        if (!rank_seen[q]) {
          err << "barrier: rank " << r << " completes without rank " << q;
          return fail(err.str());
        }
    }
  }

  // ---- pass 3: symbolic per-byte execution over FIFO channels ----
  struct RankState {
    std::vector<Cell> in, out, scratch;
    std::size_t pc = 0;
  };
  std::vector<RankState> st(n);
  for (CollRank r = 0; r < n; ++r) {
    st[r].in.resize(static_cast<std::size_t>(in_bytes(s)));
    for (u64 i = 0; i < in_bytes(s); ++i)
      st[r].in[static_cast<std::size_t>(i)] = Cell{u64{1} << r, i};
    st[r].out.assign(static_cast<std::size_t>(out_bytes(s)), Cell{});
    if (s.kind == CollKind::Bcast && r == s.root)
      for (u64 i = 0; i < out_bytes(s); ++i)
        st[r].out[static_cast<std::size_t>(i)] = Cell{u64{1} << r, i};
    // Executor zero-fills scratch: blank but initialized.
    st[r].scratch.assign(static_cast<std::size_t>(s.scratch_bytes),
                         Cell{0, 0});
  }
  std::map<std::pair<CollRank, CollRank>, std::deque<std::vector<Cell>>>
      chan;
  auto span = [&](RankState& rs, Buf b, u64 off,
                  u64 len) -> std::vector<Cell>* {
    auto& v = b == Buf::In ? rs.in : b == Buf::Out ? rs.out : rs.scratch;
    (void)off;
    (void)len;
    return &v;
  };
  std::size_t remaining = total;
  while (remaining > 0) {
    bool progressed = false;
    for (CollRank r = 0; r < n; ++r) {
      auto& steps = s.ranks[r].steps;
      while (st[r].pc < steps.size()) {
        const CollStep& cs = steps[st[r].pc];
        std::ostringstream at;
        at << to_string(s.kind) << "/" << to_string(s.algo) << " rank "
           << r << " step " << st[r].pc << ": ";
        if (cs.kind == Kind::Send) {
          auto* src = span(st[r], cs.buf, cs.offset, cs.len);
          std::vector<Cell> payload(
              src->begin() + static_cast<std::ptrdiff_t>(cs.offset),
              src->begin() + static_cast<std::ptrdiff_t>(cs.offset +
                                                         cs.len));
          for (const Cell& c : payload)
            if (c.off == kGarbage)
              return fail(at.str() + "sends uninitialized bytes");
          chan[{r, cs.peer}].push_back(std::move(payload));
        } else if (cs.kind == Kind::Recv || cs.kind == Kind::RecvReduce) {
          auto& q = chan[{cs.peer, r}];
          if (q.empty()) break;  // blocked; revisit on the next sweep
          std::vector<Cell> payload = std::move(q.front());
          q.pop_front();
          if (payload.size() != cs.len)
            return fail(at.str() + "length mismatch with matched send");
          auto* dst = span(st[r], cs.buf, cs.offset, cs.len);
          for (u64 i = 0; i < cs.len; ++i) {
            Cell& d = (*dst)[static_cast<std::size_t>(cs.offset + i)];
            const Cell& p = payload[static_cast<std::size_t>(i)];
            if (cs.kind == Kind::Recv) {
              d = p;
            } else {
              if (d.off == kGarbage)
                return fail(at.str() + "reduces into uninitialized bytes");
              if (d.off != p.off)
                return fail(at.str() + "reduces misaligned source bytes");
              if ((d.mask & p.mask) != 0)
                return fail(at.str() +
                            "duplicate reduction contribution (a rank "
                            "counted twice)");
              d.mask |= p.mask;
            }
          }
        } else {  // Copy
          auto* src = span(st[r], cs.src_buf, cs.src_offset, cs.len);
          std::vector<Cell> tmp(
              src->begin() + static_cast<std::ptrdiff_t>(cs.src_offset),
              src->begin() + static_cast<std::ptrdiff_t>(cs.src_offset +
                                                         cs.len));
          auto* dst = span(st[r], cs.buf, cs.offset, cs.len);
          std::copy(tmp.begin(), tmp.end(),
                    dst->begin() + static_cast<std::ptrdiff_t>(cs.offset));
        }
        ++st[r].pc;
        --remaining;
        progressed = true;
      }
    }
    if (!progressed && remaining > 0)
      return fail(std::string(to_string(s.kind)) + "/" +
                  to_string(s.algo) + ": schedule deadlocked");
  }
  for (auto& [pair, q] : chan)
    if (!q.empty()) {
      err << "channel " << pair.first << "->" << pair.second << " has "
          << q.size() << " undelivered messages";
      return fail(err.str());
    }

  // ---- final content checks ----
  const u64 full = n >= 64 ? ~u64{0} : (u64{1} << n) - 1;
  auto expect_cell = [&](CollRank r, u64 i, const Cell& want,
                         const char* what) -> std::string {
    const Cell& got = st[r].out[static_cast<std::size_t>(i)];
    if (got == want) return "";
    std::ostringstream o;
    o << to_string(s.kind) << "/" << to_string(s.algo) << " rank " << r
      << " out[" << i << "]: " << what << " (mask " << std::hex << got.mask
      << " want " << want.mask << std::dec << ", off " << got.off
      << " want " << want.off << ")";
    return o.str();
  };
  switch (s.kind) {
    case CollKind::Barrier:
      break;
    case CollKind::Bcast:
      for (CollRank r = 0; r < n; ++r)
        for (u64 i = 0; i < s.bytes; ++i) {
          auto e = expect_cell(r, i, Cell{u64{1} << s.root, i},
                               "bcast did not deliver the root's byte");
          if (!e.empty()) return e;
        }
      break;
    case CollKind::Reduce:
      for (u64 i = 0; i < s.bytes; ++i) {
        auto e = expect_cell(s.root, i, Cell{full, i},
                             "reduce missing a contribution");
        if (!e.empty()) return e;
      }
      break;
    case CollKind::Allreduce:
      for (CollRank r = 0; r < n; ++r)
        for (u64 i = 0; i < s.bytes; ++i) {
          auto e = expect_cell(r, i, Cell{full, i},
                               "allreduce missing a contribution");
          if (!e.empty()) return e;
        }
      break;
    case CollKind::Alltoall:
      for (CollRank r = 0; r < n; ++r)
        for (CollRank src = 0; src < n; ++src)
          for (u64 j = 0; j < s.bytes; ++j) {
            auto e = expect_cell(
                r, u64{src} * s.bytes + j,
                Cell{u64{1} << src, u64{r} * s.bytes + j},
                "alltoall block not delivered exactly once");
            if (!e.empty()) return e;
          }
      break;
  }
  return "";
}

// ---- random topology / parameter generation --------------------------------

Capabilities random_caps(Rng& rng) {
  static const char* kNames[] = {"mx", "elan", "tcp", "test"};
  Capabilities c = drv::profile_by_name(kNames[rng.below(4)]);
  if (rng.chance(0.5)) {
    // Heterogeneous rails: scale the advertised bandwidth.
    c.bandwidth_hint_bytes_per_us =
        c.effective_bandwidth() * (0.25 + rng.uniform() * 1.5);
  }
  return c;
}

CollTopology random_topo(Rng& rng, CollRank n) {
  const std::size_t rails = 1 + rng.below(3);  // 1..3
  CollTopology t;
  t.nodes.resize(n);
  for (auto& node : t.nodes) {
    for (std::size_t r = 0; r < rails; ++r) {
      CollRail rail{random_caps(rng), true};
      // Rail 0 stays up everywhere so every pair is schedulable; extra
      // rails go down with 20% probability per node.
      if (r > 0) rail.up = !rng.chance(0.2);
      node.rails.push_back(std::move(rail));
    }
  }
  return t;
}

struct Params {
  CollRank n;
  CollRank root;
  u64 bytes;
};

Params random_params(Rng& rng, CollKind kind) {
  Params p;
  p.n = static_cast<CollRank>(2 + rng.below(19));  // 2..20
  p.root = static_cast<CollRank>(rng.below(p.n));
  switch (kind) {
    case CollKind::Barrier: p.bytes = 0; break;
    case CollKind::Alltoall: p.bytes = 1 + rng.below(48); break;
    default:
      // Vector of doubles, including empty and non-divisible-by-n sizes.
      p.bytes = 8 * rng.below(17);  // 0..128 bytes
      break;
  }
  return p;
}

class PlannerProperty
    : public ::testing::TestWithParam<std::tuple<CollAlgo, CollKind>> {};

TEST_P(PlannerProperty, FiftyRandomSeedsZeroViolations) {
  const auto [algo, kind] = GetParam();
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed * 7919 + 17);
    const Params p = random_params(rng, kind);
    const CollTopology topo = random_topo(rng, p.n);
    CollectivePlanner planner(topo);
    auto s = planner.plan(kind, p.bytes, p.root, algo,
                          kind == CollKind::Barrier ||
                                  kind == CollKind::Bcast ||
                                  kind == CollKind::Alltoall
                              ? 1
                              : 8);
    ASSERT_NE(s, nullptr);
    const std::string violation = validate(*s, topo);
    EXPECT_EQ(violation, "")
        << "seed " << seed << " n=" << p.n << " root=" << p.root
        << " bytes=" << p.bytes;
    if (!violation.empty()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, PlannerProperty,
    ::testing::Combine(::testing::Values(CollAlgo::Auto, CollAlgo::Linear,
                                         CollAlgo::Tree, CollAlgo::Ring,
                                         CollAlgo::Bucket),
                       ::testing::Values(CollKind::Barrier, CollKind::Bcast,
                                         CollKind::Reduce,
                                         CollKind::Allreduce,
                                         CollKind::Alltoall)),
    [](const auto& pinfo) {
      return std::string(to_string(std::get<0>(pinfo.param))) + "_" +
             to_string(std::get<1>(pinfo.param));
    });

// ---- targeted structural properties ----------------------------------------

TEST(CollectivePlanner, PowerOfTwoBucketAllreduceUsesRecursiveHalving) {
  // pow2 sizes take the recursive-halving path; both it and the ring path
  // must validate. 8 ranks, 64 doubles.
  for (CollRank n : {8u, 16u}) {
    CollTopology topo = CollTopology::uniform(n, drv::mx_myrinet_profile());
    CollectivePlanner planner(topo);
    auto s = planner.plan(CollKind::Allreduce, 512, 0, CollAlgo::Bucket, 8);
    EXPECT_EQ(validate(*s, topo), "");
    // log2(n) rounds each way + the initial copy.
    EXPECT_EQ(s->ranks[0].steps.size(),
              1 + 4 * oracle::ceil_log2(n));
  }
}

TEST(CollectivePlanner, DownRailsAreRoutedAround) {
  CollTopology topo =
      CollTopology::uniform(6, drv::mx_myrinet_profile(), /*rails=*/2);
  // Faster second rail, but down on node 2: pairs touching node 2 must
  // fall back to rail 0, everyone else should prefer rail 1.
  for (auto& node : topo.nodes)
    node.rails[1].caps.bandwidth_hint_bytes_per_us = 4000.0;
  topo.nodes[2].rails[1].up = false;
  CollectivePlanner planner(topo);
  auto s = planner.plan(CollKind::Allreduce, 1024, 0, CollAlgo::Ring, 8);
  EXPECT_EQ(validate(*s, topo), "");
  bool saw_rail1 = false;
  for (CollRank r = 0; r < 6; ++r)
    for (const CollStep& st : s->ranks[r].steps) {
      if (st.kind == Kind::Copy) continue;
      if (r == 2 || st.peer == 2) {
        EXPECT_EQ(st.rail, 0) << "rank " << r << " peer " << st.peer;
      }
      saw_rail1 = saw_rail1 || st.rail == 1;
    }
  EXPECT_TRUE(saw_rail1);  // the fast rail is used where it is up
}

TEST(CollectivePlanner, AllRailsDownBetweenPairIsRejected) {
  CollTopology topo = CollTopology::uniform(4, drv::mx_myrinet_profile());
  topo.nodes[3].rails[0].up = false;
  CollectivePlanner planner(topo);
  EXPECT_THROW(planner.plan(CollKind::Bcast, 64, 0, CollAlgo::Tree),
               CheckError);
}

TEST(CollectivePlanner, SingleRankPlansAreLocal) {
  CollTopology topo = CollTopology::uniform(1, drv::test_profile());
  CollectivePlanner planner(topo);
  for (CollKind k : {CollKind::Barrier, CollKind::Bcast, CollKind::Reduce,
                     CollKind::Allreduce, CollKind::Alltoall}) {
    auto s = planner.plan(k, k == CollKind::Barrier ? 0 : 64, 0,
                          CollAlgo::Auto, 8);
    EXPECT_EQ(validate(*s, topo), "");
    for (const CollStep& st : s->ranks[0].steps)
      EXPECT_EQ(st.kind, Kind::Copy);
  }
}

// ---- cost-model selection and chunking -------------------------------------

TEST(CollectivePlanner, AutoBeatsOrMatchesEveryForcedAlgorithm) {
  CollTopology topo = CollTopology::uniform(32, drv::mx_myrinet_profile());
  CollectivePlanner planner(topo);
  for (CollKind kind : {CollKind::Barrier, CollKind::Bcast,
                        CollKind::Allreduce, CollKind::Alltoall}) {
    const u64 bytes = kind == CollKind::Barrier ? 0
                      : kind == CollKind::Alltoall ? 1024
                                                   : 256 * 1024;
    auto best = planner.plan(kind, bytes, 0, CollAlgo::Auto, 8);
    for (CollAlgo a : {CollAlgo::Linear, CollAlgo::Tree, CollAlgo::Ring,
                       CollAlgo::Bucket}) {
      auto forced = planner.plan(kind, bytes, 0, a, 8);
      EXPECT_LE(best->predicted, forced->predicted)
          << to_string(kind) << " auto lost to " << to_string(a);
    }
  }
}

TEST(CollectivePlanner, AutoAvoidsLinearFanoutAtScale) {
  CollTopology topo = CollTopology::uniform(64, drv::mx_myrinet_profile());
  CollectivePlanner planner(topo);
  auto s = planner.plan(CollKind::Allreduce, 1 << 20, 0, CollAlgo::Auto, 8);
  EXPECT_NE(s->algo, CollAlgo::Linear);
  auto lin = planner.plan(CollKind::Allreduce, 1 << 20, 0, CollAlgo::Linear,
                          8);
  EXPECT_GE(lin->predicted, 2 * s->predicted)
      << "linear fan-out should cost >= 2x the planned schedule at 64 "
         "nodes";
}

TEST(CollectivePlanner, LargeVectorsArePipelinedInChunks) {
  CollTopology topo = CollTopology::uniform(16, drv::mx_myrinet_profile());
  CollectivePlanner planner(topo);
  auto s = planner.plan(CollKind::Bcast, 1 << 20, 0, CollAlgo::Tree, 1);
  ASSERT_GT(s->chunk, 0u);
  // The chunk respects the rendezvous floor and actually splits the
  // vector.
  EXPECT_GE(s->chunk, drv::mx_myrinet_profile().rdv_threshold);
  EXPECT_LT(s->chunk, u64{1} << 20);
  // Root emits one send per (child, chunk).
  const auto& root_steps = s->ranks[0].steps;
  EXPECT_GT(root_steps.size(), 4u);
  EXPECT_EQ(validate(*s, topo), "");
}

TEST(CollectivePlanner, PredictionsRespectTheAlphaBetaOracle) {
  const Capabilities caps = drv::mx_myrinet_profile();
  for (CollRank n : {4u, 8u, 32u}) {
    CollTopology topo = CollTopology::uniform(n, caps);
    CollectivePlanner planner(topo);
    for (CollKind kind : {CollKind::Barrier, CollKind::Bcast,
                          CollKind::Allreduce, CollKind::Alltoall}) {
      const u64 bytes = kind == CollKind::Barrier ? 0
                        : kind == CollKind::Alltoall ? 2048
                                                     : 64 * 1024;
      auto s = planner.plan(kind, bytes, 0, CollAlgo::Auto, 8);
      const Nanos bound = oracle::lower_bound(kind, n, bytes, caps);
      EXPECT_GE(s->predicted, bound)
          << to_string(kind) << " n=" << n
          << ": the oracle bound must lower-bound the model simulation";
      EXPECT_LE(oracle::gap(s->predicted, bound), 3.0)
          << to_string(kind) << " n=" << n
          << ": planned schedule strays >3x from the alpha-beta bound";
    }
  }
}

// ---- rate-pricing helpers (strategy_detail) --------------------------------

TEST(RatePricing, ChunkedSpanIsMonotonicInBytes) {
  const Capabilities caps = drv::mx_myrinet_profile();
  Nanos prev = 0;
  for (u64 b : {u64{1}, u64{512}, u64{64} << 10, u64{1} << 20}) {
    const Nanos t = core::strategy_detail::chunked_span(caps, b, 32 << 10);
    EXPECT_GE(t, prev);
    prev = t;
  }
  EXPECT_EQ(core::strategy_detail::chunked_span(caps, 0, 4096), 0u);
}

TEST(RatePricing, StripedSpanMatchesSingleRail) {
  const Capabilities caps = drv::mx_myrinet_profile();
  std::vector<core::strategy_detail::StripeRail> rails(1);
  rails[0].caps = &caps;
  const u64 bytes = 1 << 20;
  const Nanos striped =
      core::strategy_detail::striped_span(rails, bytes, 32 << 10, 4096);
  const Nanos chunked =
      core::strategy_detail::chunked_span(caps, bytes, 32 << 10);
  // Same pricing arithmetic: within rounding of each other.
  EXPECT_NEAR(static_cast<double>(striped), static_cast<double>(chunked),
              static_cast<double>(chunked) * 0.01);
}

TEST(RatePricing, StripedSpanSplitsAcrossEqualRails) {
  const Capabilities caps = drv::mx_myrinet_profile();
  std::vector<core::strategy_detail::StripeRail> one(1), two(2);
  one[0].caps = &caps;
  two[0].caps = &caps;
  two[1].caps = &caps;
  const u64 bytes = 4 << 20;
  const Nanos t1 =
      core::strategy_detail::striped_span(one, bytes, 32 << 10, 4096);
  const Nanos t2 =
      core::strategy_detail::striped_span(two, bytes, 32 << 10, 4096);
  EXPECT_LT(static_cast<double>(t2), static_cast<double>(t1) * 0.6);
}

TEST(RatePricing, PipelineChunkBalancesDepthAndOverhead) {
  const Capabilities caps = drv::mx_myrinet_profile();
  // No pipelining possible: keep the whole vector.
  EXPECT_EQ(core::strategy_detail::pipeline_chunk(caps, 1 << 20, 1, 4096),
            u64{1} << 20);
  // Deep pipelines want chunks smaller than the vector but not below the
  // floor.
  const std::size_t c =
      core::strategy_detail::pipeline_chunk(caps, 1 << 20, 16, 32 << 10);
  EXPECT_GE(c, std::size_t{32} << 10);
  EXPECT_LT(c, std::size_t{1} << 20);
}

}  // namespace
