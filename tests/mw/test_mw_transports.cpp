// Middlewares over the real (threaded) transports: the same MPI/RPC code
// paths validated on sockets and shared memory, with the server side on
// its own application thread.
#include <gtest/gtest.h>

#include <thread>

#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "mw/collectives.hpp"
#include "mw/mini_mpi.hpp"
#include "mw/rpc.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::mw {
namespace {

using core::testing::pattern;

TEST(MwTransports, MpiPingPongOverSockets) {
  core::SocketWorld w({}, drv::mx_myrinet_profile());
  MpiEndpoint a(w.node(0), 1, 42);
  MpiEndpoint b(w.node(1), 0, 42);
  std::thread echo([&] {
    for (int i = 0; i < 30; ++i) {
      Bytes buf(128);
      b.recv(1, buf.data(), buf.size());
      b.send(2, buf.data(), buf.size());
    }
  });
  for (int i = 0; i < 30; ++i) {
    const Bytes msg = pattern(128, static_cast<std::uint32_t>(i));
    a.send(1, msg.data(), msg.size());
    Bytes back(128);
    a.recv(2, back.data(), back.size());
    EXPECT_EQ(back, msg);
  }
  echo.join();
}

TEST(MwTransports, MpiLargeMessagesOverShm) {
  core::ShmWorld w({});
  MpiEndpoint a(w.node(0), 1, 42);
  MpiEndpoint b(w.node(1), 0, 42);
  const Bytes big = pattern(256 * 1024);  // rendezvous over shm
  std::thread rx([&] {
    Bytes buf(big.size());
    b.recv(7, buf.data(), buf.size());
    EXPECT_EQ(buf, big);
  });
  a.send(7, big.data(), big.size());
  rx.join();
}

TEST(MwTransports, RpcServerThreadOverSockets) {
  core::SocketWorld w({}, drv::mx_myrinet_profile());
  RpcServer server(w.node(1), 0, 5);
  server.register_handler(1, [](ByteSpan args) {
    Bytes out(args.begin(), args.end());
    std::reverse(out.begin(), out.end());
    return out;
  });
  constexpr int kCalls = 40;
  std::thread st([&] { server.serve(kCalls); });
  RpcClient client(w.node(0), 1, 5);
  for (int i = 0; i < kCalls; ++i) {
    Bytes args = pattern(64, static_cast<std::uint32_t>(i));
    Bytes expect = args;
    std::reverse(expect.begin(), expect.end());
    EXPECT_EQ(client.call(1, ByteSpan(args)), expect);
  }
  st.join();
  EXPECT_EQ(server.served(), static_cast<std::uint64_t>(kCalls));
}

TEST(MwTransports, RpcOverShmWithLargeResults) {
  core::ShmWorld w({});
  RpcServer server(w.node(1), 0, 5);
  server.register_handler(2, [](ByteSpan args) {
    // Inflate: return args repeated 1024 times (drives rendezvous reply).
    Bytes out;
    for (int k = 0; k < 1024; ++k)
      out.insert(out.end(), args.begin(), args.end());
    return out;
  });
  std::thread st([&] { server.serve(3); });
  RpcClient client(w.node(0), 1, 5);
  for (int i = 0; i < 3; ++i) {
    const Bytes args = pattern(128, static_cast<std::uint32_t>(i));
    const Bytes result = client.call(2, ByteSpan(args));
    ASSERT_EQ(result.size(), 128u * 1024);
    EXPECT_EQ(Bytes(result.begin(), result.begin() + 128), args);
    EXPECT_EQ(Bytes(result.end() - 128, result.end()), args);
  }
  st.join();
}

TEST(MwTransports, CollectivesThreadedOverShm) {
  // Each rank's ops driven from its own thread (step() in a loop), the
  // threaded equivalent of drive_all.
  core::ShmWorld w({});
  Collectives c0(w.node(0), 0, 2);
  Collectives c1(w.node(1), 1, 2);
  double in0 = 3.0, in1 = 4.0, out0 = 0, out1 = 0;
  auto op0 = c0.allreduce_sum(&in0, &out0, 1);
  auto op1 = c1.allreduce_sum(&in1, &out1, 1);
  std::thread t1([&] {
    while (!op1->done()) {
      op1->step();
      std::this_thread::yield();
    }
  });
  while (!op0->done()) {
    op0->step();
    std::this_thread::yield();
  }
  t1.join();
  EXPECT_DOUBLE_EQ(out0, 7.0);
  EXPECT_DOUBLE_EQ(out1, 7.0);
}

}  // namespace
}  // namespace mado::mw
