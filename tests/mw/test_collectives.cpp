#include "mw/collectives.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/world.hpp"
#include "drivers/profiles.hpp"

namespace mado::mw {
namespace {

using Rank = Collectives::Rank;

/// Fully connected SimWorld + one Collectives instance per rank.
struct CollWorld {
  explicit CollWorld(Rank n) : world(n) {
    for (Rank a = 0; a < n; ++a)
      for (Rank b = static_cast<Rank>(a + 1); b < n; ++b)
        world.connect(a, b, drv::test_profile());
    for (Rank r = 0; r < n; ++r)
      colls.push_back(std::make_unique<Collectives>(world.node(r), r, n));
  }

  bool drive(std::vector<std::unique_ptr<Collectives::Op>>& ops) {
    std::vector<Collectives::Op*> raw;
    for (auto& op : ops) raw.push_back(op.get());
    return drive_all([this] { return world.fabric().step(); }, raw);
  }

  core::SimWorld world;
  std::vector<std::unique_ptr<Collectives>> colls;
};

class CollectivesTest : public ::testing::TestWithParam<Rank> {};

TEST_P(CollectivesTest, BarrierCompletesOnAllRanks) {
  CollWorld w(GetParam());
  std::vector<std::unique_ptr<Collectives::Op>> ops;
  for (auto& c : w.colls) ops.push_back(c->barrier());
  ASSERT_TRUE(w.drive(ops));
  for (auto& op : ops) EXPECT_TRUE(op->done());
}

TEST_P(CollectivesTest, BcastFromEveryRoot) {
  const Rank n = GetParam();
  for (Rank root = 0; root < n; ++root) {
    CollWorld w(n);
    std::vector<Bytes> bufs(n, Bytes(64, Byte{0}));
    for (std::size_t i = 0; i < 64; ++i)
      bufs[root][i] = static_cast<Byte>(i * 3 + root);
    std::vector<std::unique_ptr<Collectives::Op>> ops;
    for (Rank r = 0; r < n; ++r)
      ops.push_back(w.colls[r]->bcast(bufs[r].data(), 64, root));
    ASSERT_TRUE(w.drive(ops)) << "root " << root;
    for (Rank r = 0; r < n; ++r)
      EXPECT_EQ(bufs[r], bufs[root]) << "rank " << r << " root " << root;
  }
}

TEST_P(CollectivesTest, ReduceSumsToRoot) {
  const Rank n = GetParam();
  CollWorld w(n);
  constexpr std::size_t kN = 16;
  std::vector<std::vector<double>> in(n), out(n, std::vector<double>(kN, -1));
  for (Rank r = 0; r < n; ++r) {
    in[r].resize(kN);
    for (std::size_t i = 0; i < kN; ++i)
      in[r][i] = static_cast<double>(r + 1) * static_cast<double>(i);
  }
  std::vector<std::unique_ptr<Collectives::Op>> ops;
  for (Rank r = 0; r < n; ++r)
    ops.push_back(w.colls[r]->reduce_sum(in[r].data(), out[r].data(), kN,
                                         /*root=*/0));
  ASSERT_TRUE(w.drive(ops));
  const double rank_sum = n * (n + 1) / 2.0;
  for (std::size_t i = 0; i < kN; ++i)
    EXPECT_DOUBLE_EQ(out[0][i], rank_sum * static_cast<double>(i)) << i;
}

TEST_P(CollectivesTest, ReduceSumsToEveryRoot) {
  // Pinned regression: the old linear code was only ever exercised with
  // root 0; tree/ring schedules must deliver the sum to any root.
  const Rank n = GetParam();
  constexpr std::size_t kN = 12;
  for (Rank root = 0; root < n; ++root) {
    CollWorld w(n);
    std::vector<std::vector<double>> in(n),
        out(n, std::vector<double>(kN, -1));
    for (Rank r = 0; r < n; ++r) {
      in[r].resize(kN);
      for (std::size_t i = 0; i < kN; ++i)
        in[r][i] = static_cast<double>(r) * 1000.0 + static_cast<double>(i);
    }
    std::vector<std::unique_ptr<Collectives::Op>> ops;
    for (Rank r = 0; r < n; ++r)
      ops.push_back(w.colls[r]->reduce_sum(in[r].data(), out[r].data(), kN,
                                           root));
    ASSERT_TRUE(w.drive(ops)) << "root " << root;
    for (std::size_t i = 0; i < kN; ++i) {
      double expect = 0;
      for (Rank r = 0; r < n; ++r) expect += in[r][i];
      EXPECT_DOUBLE_EQ(out[root][i], expect)
          << "root " << root << " elem " << i;
    }
  }
}

TEST_P(CollectivesTest, AllreduceEveryRankGetsSum) {
  const Rank n = GetParam();
  CollWorld w(n);
  constexpr std::size_t kN = 8;
  std::vector<std::vector<double>> in(n), out(n, std::vector<double>(kN, 0));
  for (Rank r = 0; r < n; ++r) {
    in[r].assign(kN, static_cast<double>(r + 1));
  }
  std::vector<std::unique_ptr<Collectives::Op>> ops;
  for (Rank r = 0; r < n; ++r)
    ops.push_back(w.colls[r]->allreduce_sum(in[r].data(), out[r].data(), kN));
  ASSERT_TRUE(w.drive(ops));
  const double expect = n * (n + 1) / 2.0;
  for (Rank r = 0; r < n; ++r)
    for (std::size_t i = 0; i < kN; ++i)
      EXPECT_DOUBLE_EQ(out[r][i], expect) << "rank " << r;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesTest,
                         ::testing::Values(Rank{2}, Rank{3}, Rank{4},
                                           Rank{5}, Rank{7}, Rank{8}),
                         [](const ::testing::TestParamInfo<Rank>& pi) {
                           return "n" + std::to_string(pi.param);
                         });

TEST(Collectives, SingleRankOpsTrivial) {
  core::SimWorld w(1);
  Collectives c(w.node(0), 0, 1);
  auto b = c.barrier();
  EXPECT_TRUE(b->step() || b->done());
  EXPECT_TRUE(b->done());
  double x = 3.0, y = 0;
  auto r = c.allreduce_sum(&x, &y, 1);
  while (!r->done()) r->step();
  EXPECT_DOUBLE_EQ(y, 3.0);
}

TEST(Collectives, InvalidRankRejected) {
  core::SimWorld w(2);
  EXPECT_THROW(Collectives(w.node(0), 5, 2), CheckError);
}

TEST(Collectives, LargeBcastUsesRendezvous) {
  CollWorld w(4);
  std::vector<Bytes> bufs(4, Bytes(64 * 1024, Byte{0}));
  for (std::size_t i = 0; i < bufs[0].size(); ++i)
    bufs[0][i] = static_cast<Byte>(i * 7);
  std::vector<std::unique_ptr<Collectives::Op>> ops;
  for (Rank r = 0; r < 4; ++r)
    ops.push_back(w.colls[r]->bcast(bufs[r].data(), bufs[r].size(), 0));
  ASSERT_TRUE(w.drive(ops));
  for (Rank r = 1; r < 4; ++r) EXPECT_EQ(bufs[r], bufs[0]);
  EXPECT_GE(w.world.node(0).stats().counter("tx.rdv_rts"), 1u);
}

TEST(Collectives, BackToBackOperationsStayOrdered) {
  // Two barriers followed by an allreduce on the same channels: FIFO
  // channel semantics must keep rounds from different ops apart.
  CollWorld w(4);
  double in = 1.0;
  std::vector<double> outs(4, 0);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::unique_ptr<Collectives::Op>> ops;
    for (Rank r = 0; r < 4; ++r) ops.push_back(w.colls[r]->barrier());
    ASSERT_TRUE(w.drive(ops));
  }
  std::vector<std::unique_ptr<Collectives::Op>> ops;
  for (Rank r = 0; r < 4; ++r)
    ops.push_back(w.colls[r]->allreduce_sum(&in, &outs[r], 1));
  ASSERT_TRUE(w.drive(ops));
  for (Rank r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(outs[r], 4.0);
}

}  // namespace
}  // namespace mado::mw
