// Virtual-time optimality oracle for collective schedules (ISSUE 9).
//
// Lower-bounds each collective's completion time from the NicModel alone —
// the classic alpha-beta (LogGP-without-g) argument:
//
//   alpha = cheapest possible per-hop cost: the NIC busy time of a minimal
//           (1-byte, 1-segment) injection plus the propagation latency;
//   beta  = 1 / effective bandwidth (ns per byte).
//
//   barrier    >= ceil(log2 n) * alpha            (information dissemination:
//                                                  one hop at most doubles
//                                                  the informed set)
//   bcast      >= ceil(log2 n) * alpha + bytes * beta
//                                                 (the last-informed node
//                                                  still receives the whole
//                                                  vector through one NIC)
//   reduce     >= ceil(log2 n) * alpha + bytes * beta
//   allreduce  >= ceil(log2 n) * alpha + 2 * bytes * beta * (n-1)/n
//                                                 (every node must both ship
//                                                  its contribution out and
//                                                  absorb the n-1 foreign
//                                                  shares: the reduce-scatter
//                                                  + allgather volume floor)
//   alltoall   >= alpha + (n-1) * block * beta    (each node receives n-1
//                                                  distinct blocks through
//                                                  one NIC; unlike bcast no
//                                                  log factor applies — every
//                                                  source can inject its
//                                                  block directly, so bytes
//                                                  flow after a single hop)
//
// Deliberately independent of CollectivePlanner's own pricing: the oracle
// reads only Capabilities/NicModel, so "measured sim time <= gap * bound"
// genuinely cross-checks planner + engine + simulator against the model,
// instead of the planner grading its own homework.
#pragma once

#include <algorithm>
#include <cstdint>

#include "drivers/capabilities.hpp"
#include "mw/collective_planner.hpp"
#include "sim/nic_model.hpp"
#include "util/clock.hpp"

namespace mado::mw::oracle {

struct AlphaBeta {
  double alpha_ns = 0.0;      ///< per-hop floor (ns)
  double beta_ns_per_byte = 0.0;
};

inline AlphaBeta link_cost(const drv::Capabilities& caps) {
  const sim::NicModel model(caps.cost);
  AlphaBeta ab;
  ab.alpha_ns = static_cast<double>(model.busy_time(1, 1) +
                                    model.propagation_latency());
  // effective_bandwidth() is bytes/us; beta is ns/byte.
  ab.beta_ns_per_byte = 1000.0 / std::max(caps.effective_bandwidth(), 1e-9);
  return ab;
}

inline std::uint32_t ceil_log2(std::uint32_t n) {
  std::uint32_t l = 0;
  while ((std::uint32_t{1} << l) < n) ++l;
  return l;
}

/// Alpha-beta lower bound (ns) for `kind` over n uniform nodes. `bytes` is
/// the vector size (bcast/reduce/allreduce) or the per-(src,dst) block
/// size (alltoall), matching CollectivePlanner::plan's convention.
inline Nanos lower_bound(CollKind kind, std::uint32_t n, std::uint64_t bytes,
                         const drv::Capabilities& caps) {
  if (n <= 1) return 0;
  const AlphaBeta ab = link_cost(caps);
  const double hops = static_cast<double>(ceil_log2(n));
  const double b = static_cast<double>(bytes);
  double t = hops * ab.alpha_ns;
  switch (kind) {
    case CollKind::Barrier:
      break;
    case CollKind::Bcast:
    case CollKind::Reduce:
      t += b * ab.beta_ns_per_byte;
      break;
    case CollKind::Allreduce:
      t += 2.0 * b * ab.beta_ns_per_byte * static_cast<double>(n - 1) /
           static_cast<double>(n);
      break;
    case CollKind::Alltoall:
      t = ab.alpha_ns + static_cast<double>(n - 1) * b * ab.beta_ns_per_byte;
      break;
  }
  return static_cast<Nanos>(t);
}

/// measured / bound, with a 0-bound guard (returns 1 when both are 0).
inline double gap(Nanos measured, Nanos bound) {
  if (bound == 0) return measured == 0 ? 1.0 : 1e9;
  return static_cast<double>(measured) / static_cast<double>(bound);
}

}  // namespace mado::mw::oracle
