#include "mw/mini_mpi.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::mw {
namespace {

using core::testing::pattern;

class MiniMpiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<core::SimWorld>(2);
    world_->connect(0, 1, drv::test_profile());
    a_ = std::make_unique<MpiEndpoint>(world_->node(0), 1, 42);
    b_ = std::make_unique<MpiEndpoint>(world_->node(1), 0, 42);
  }

  std::unique_ptr<core::SimWorld> world_;
  std::unique_ptr<MpiEndpoint> a_, b_;
};

TEST_F(MiniMpiTest, SendRecvSameTag) {
  const Bytes data = pattern(100);
  a_->isend(5, data.data(), data.size());
  Bytes out(100);
  b_->recv(5, out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST_F(MiniMpiTest, BlockingSendCompletesForEager) {
  const Bytes data = pattern(64);
  a_->send(1, data.data(), data.size());
  Bytes out(64);
  b_->recv(1, out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST_F(MiniMpiTest, TagMatchingOutOfOrder) {
  const Bytes d1 = pattern(32, 1), d2 = pattern(48, 2);
  a_->isend(10, d1.data(), d1.size());
  a_->isend(20, d2.data(), d2.size());
  // Receive tag 20 first: the tag-10 message must be buffered, not lost.
  Bytes o2(48), o1(32);
  b_->recv(20, o2.data(), o2.size());
  EXPECT_EQ(o2, d2);
  EXPECT_TRUE(b_->has_buffered(10));
  b_->recv(10, o1.data(), o1.size());
  EXPECT_EQ(o1, d1);
  EXPECT_FALSE(b_->has_buffered(10));
}

TEST_F(MiniMpiTest, SameTagFifoOrder) {
  for (int i = 0; i < 10; ++i) {
    const Bytes d = pattern(16, static_cast<std::uint32_t>(i));
    a_->isend(7, d.data(), d.size());
  }
  for (int i = 0; i < 10; ++i) {
    Bytes o(16);
    b_->recv(7, o.data(), o.size());
    EXPECT_EQ(o, pattern(16, static_cast<std::uint32_t>(i)));
  }
}

TEST_F(MiniMpiTest, RecvAny) {
  const Bytes d = pattern(24, 9);
  a_->isend(33, d.data(), d.size());
  auto msg = b_->recv_any();
  EXPECT_EQ(msg.tag, 33);
  EXPECT_EQ(msg.payload, d);
}

TEST_F(MiniMpiTest, RecvAnyDrainsUnexpectedFirst) {
  const Bytes d1 = pattern(8, 1), d2 = pattern(8, 2);
  a_->isend(1, d1.data(), d1.size());
  a_->isend(2, d2.data(), d2.size());
  Bytes o2(8);
  b_->recv(2, o2.data(), o2.size());  // buffers tag 1
  auto msg = b_->recv_any();
  EXPECT_EQ(msg.tag, 1);
  EXPECT_EQ(msg.payload, d1);
}

TEST_F(MiniMpiTest, LargePayloadGoesRendezvous) {
  const Bytes data = pattern(32 * 1024);  // above test profile rdv threshold
  a_->isend(3, data.data(), data.size());
  Bytes out(data.size());
  b_->recv(3, out.data(), out.size());
  EXPECT_EQ(out, data);
  EXPECT_GE(world_->node(0).stats().counter("tx.rdv_rts"), 1u);
}

TEST_F(MiniMpiTest, WrongSizeRecvThrows) {
  const Bytes d = pattern(32);
  a_->isend(1, d.data(), d.size());
  Bytes o(16);
  EXPECT_THROW(b_->recv(1, o.data(), o.size()), CheckError);
}

TEST_F(MiniMpiTest, ZeroLengthMessage) {
  a_->isend(4, nullptr, 0);
  b_->recv(4, nullptr, 0);
  SUCCEED();
}

TEST_F(MiniMpiTest, PingPongManyRounds) {
  for (int i = 0; i < 25; ++i) {
    const Bytes d = pattern(64, static_cast<std::uint32_t>(i));
    a_->isend(1, d.data(), d.size());
    Bytes o(64);
    b_->recv(1, o.data(), o.size());
    b_->isend(2, o.data(), o.size());
    Bytes back(64);
    a_->recv(2, back.data(), back.size());
    EXPECT_EQ(back, d);
  }
}

// ---- MpiCommunicator (blocking collectives over the planner) ---------------

TEST(MpiCommunicator, BlockingCollectivesOverShmThreads) {
  // Threaded world: each rank calls the blocking API from its own thread,
  // no progress hook needed.
  core::ShmWorld w({});
  MpiCommunicator m0(w.node(0), 0, 2);
  MpiCommunicator m1(w.node(1), 1, 2);

  Bytes b0 = pattern(96, 5), b1(96, Byte{0});
  double in0[4] = {1, 2, 3, 4}, in1[4] = {10, 20, 30, 40};
  double red0[4] = {0}, red1[4] = {0};
  double all0[4] = {0}, all1[4] = {0};
  Bytes s0 = pattern(32, 100), s1 = pattern(32, 200);
  Bytes r0(32), r1(32);

  std::thread t1([&] {
    m1.barrier();
    m1.bcast(b1.data(), b1.size(), /*root=*/0);
    m1.reduce_sum(in1, red1, 4, /*root=*/1);
    m1.allreduce_sum(in1, all1, 4);
    m1.alltoall(s1.data(), r1.data(), 16);
  });
  m0.barrier();
  m0.bcast(b0.data(), b0.size(), /*root=*/0);
  m0.reduce_sum(in0, red0, 4, /*root=*/1);
  m0.allreduce_sum(in0, all0, 4);
  m0.alltoall(s0.data(), r0.data(), 16);
  t1.join();

  EXPECT_EQ(b1, b0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(red1[i], in0[i] + in1[i]) << i;  // root=1 holds the sum
    EXPECT_DOUBLE_EQ(all0[i], in0[i] + in1[i]) << i;
    EXPECT_DOUBLE_EQ(all1[i], in0[i] + in1[i]) << i;
  }
  // alltoall: rank r's block d comes from rank d's block r.
  EXPECT_EQ(Bytes(r0.begin(), r0.begin() + 16),
            Bytes(s0.begin(), s0.begin() + 16));
  EXPECT_EQ(Bytes(r0.begin() + 16, r0.end()),
            Bytes(s1.begin(), s1.begin() + 16));
  EXPECT_EQ(Bytes(r1.begin(), r1.begin() + 16),
            Bytes(s0.begin() + 16, s0.end()));
  EXPECT_EQ(Bytes(r1.begin() + 16, r1.end()),
            Bytes(s1.begin() + 16, s1.end()));
}

TEST(MpiCommunicator, CooperativeSimWithProgressHook) {
  // Single-threaded sim world: rank 0 uses the blocking API with a progress
  // hook that pumps the fabric and steps rank 1's non-blocking ops.
  core::SimWorld w(2);
  w.connect(0, 1, drv::test_profile());
  MpiCommunicator m0(w.node(0), 0, 2);
  MpiCommunicator m1(w.node(1), 1, 2);

  std::unique_ptr<Collectives::Op> op1;
  m0.set_progress([&] {
    bool moved = w.fabric().step();
    if (op1 && !op1->done() && op1->step()) moved = true;
    return moved;
  });

  double in0[8], in1[8], out0[8] = {0}, out1[8] = {0};
  for (int i = 0; i < 8; ++i) {
    in0[i] = static_cast<double>(i);
    in1[i] = static_cast<double>(100 - i);
  }
  op1 = m1.collectives().allreduce_sum(in1, out1, 8);
  m0.allreduce_sum(in0, out0, 8);
  while (!op1->done()) {
    op1->step();
    w.fabric().step();
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(out0[i], 100.0) << i;
    EXPECT_DOUBLE_EQ(out1[i], 100.0) << i;
  }

  // Second round with a different op proves the communicator is reusable.
  Bytes buf0 = pattern(48, 3), buf1(48, Byte{0});
  op1 = m1.collectives().bcast(buf1.data(), 48, /*root=*/0);
  m0.bcast(buf0.data(), 48, /*root=*/0);
  while (!op1->done()) {
    op1->step();
    w.fabric().step();
  }
  EXPECT_EQ(buf1, buf0);
}

TEST(MpiCommunicator, DrainedWorldCheckFailsInsteadOfSpinning) {
  // With no peer making progress the fabric drains and the blocked
  // collective must CHECK-fail rather than spin forever.
  core::SimWorld w(2);
  w.connect(0, 1, drv::test_profile());
  MpiCommunicator m0(w.node(0), 0, 2);
  m0.set_progress([&] { return w.fabric().step(); });
  double in = 1.0, out = 0.0;
  EXPECT_THROW(m0.allreduce_sum(&in, &out, 1), CheckError);
}

}  // namespace
}  // namespace mado::mw
