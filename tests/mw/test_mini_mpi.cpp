#include "mw/mini_mpi.hpp"

#include <gtest/gtest.h>

#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::mw {
namespace {

using core::testing::pattern;

class MiniMpiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<core::SimWorld>(2);
    world_->connect(0, 1, drv::test_profile());
    a_ = std::make_unique<MpiEndpoint>(world_->node(0), 1, 42);
    b_ = std::make_unique<MpiEndpoint>(world_->node(1), 0, 42);
  }

  std::unique_ptr<core::SimWorld> world_;
  std::unique_ptr<MpiEndpoint> a_, b_;
};

TEST_F(MiniMpiTest, SendRecvSameTag) {
  const Bytes data = pattern(100);
  a_->isend(5, data.data(), data.size());
  Bytes out(100);
  b_->recv(5, out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST_F(MiniMpiTest, BlockingSendCompletesForEager) {
  const Bytes data = pattern(64);
  a_->send(1, data.data(), data.size());
  Bytes out(64);
  b_->recv(1, out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST_F(MiniMpiTest, TagMatchingOutOfOrder) {
  const Bytes d1 = pattern(32, 1), d2 = pattern(48, 2);
  a_->isend(10, d1.data(), d1.size());
  a_->isend(20, d2.data(), d2.size());
  // Receive tag 20 first: the tag-10 message must be buffered, not lost.
  Bytes o2(48), o1(32);
  b_->recv(20, o2.data(), o2.size());
  EXPECT_EQ(o2, d2);
  EXPECT_TRUE(b_->has_buffered(10));
  b_->recv(10, o1.data(), o1.size());
  EXPECT_EQ(o1, d1);
  EXPECT_FALSE(b_->has_buffered(10));
}

TEST_F(MiniMpiTest, SameTagFifoOrder) {
  for (int i = 0; i < 10; ++i) {
    const Bytes d = pattern(16, static_cast<std::uint32_t>(i));
    a_->isend(7, d.data(), d.size());
  }
  for (int i = 0; i < 10; ++i) {
    Bytes o(16);
    b_->recv(7, o.data(), o.size());
    EXPECT_EQ(o, pattern(16, static_cast<std::uint32_t>(i)));
  }
}

TEST_F(MiniMpiTest, RecvAny) {
  const Bytes d = pattern(24, 9);
  a_->isend(33, d.data(), d.size());
  auto msg = b_->recv_any();
  EXPECT_EQ(msg.tag, 33);
  EXPECT_EQ(msg.payload, d);
}

TEST_F(MiniMpiTest, RecvAnyDrainsUnexpectedFirst) {
  const Bytes d1 = pattern(8, 1), d2 = pattern(8, 2);
  a_->isend(1, d1.data(), d1.size());
  a_->isend(2, d2.data(), d2.size());
  Bytes o2(8);
  b_->recv(2, o2.data(), o2.size());  // buffers tag 1
  auto msg = b_->recv_any();
  EXPECT_EQ(msg.tag, 1);
  EXPECT_EQ(msg.payload, d1);
}

TEST_F(MiniMpiTest, LargePayloadGoesRendezvous) {
  const Bytes data = pattern(32 * 1024);  // above test profile rdv threshold
  a_->isend(3, data.data(), data.size());
  Bytes out(data.size());
  b_->recv(3, out.data(), out.size());
  EXPECT_EQ(out, data);
  EXPECT_GE(world_->node(0).stats().counter("tx.rdv_rts"), 1u);
}

TEST_F(MiniMpiTest, WrongSizeRecvThrows) {
  const Bytes d = pattern(32);
  a_->isend(1, d.data(), d.size());
  Bytes o(16);
  EXPECT_THROW(b_->recv(1, o.data(), o.size()), CheckError);
}

TEST_F(MiniMpiTest, ZeroLengthMessage) {
  a_->isend(4, nullptr, 0);
  b_->recv(4, nullptr, 0);
  SUCCEED();
}

TEST_F(MiniMpiTest, PingPongManyRounds) {
  for (int i = 0; i < 25; ++i) {
    const Bytes d = pattern(64, static_cast<std::uint32_t>(i));
    a_->isend(1, d.data(), d.size());
    Bytes o(64);
    b_->recv(1, o.data(), o.size());
    b_->isend(2, o.data(), o.size());
    Bytes back(64);
    a_->recv(2, back.data(), back.size());
    EXPECT_EQ(back, d);
  }
}

}  // namespace
}  // namespace mado::mw
