#include "mw/rpc.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::mw {
namespace {

using core::testing::pattern;

Bytes to_bytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}
std::string to_string(ByteSpan b) {
  return std::string(b.begin(), b.end());
}

class RpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<core::SimWorld>(2);
    world_->connect(0, 1, drv::test_profile());
    client_ = std::make_unique<RpcClient>(world_->node(0), 1, 50);
    server_ = std::make_unique<RpcServer>(world_->node(1), 0, 50);
    server_->register_handler(1, [](ByteSpan args) {  // echo
      return Bytes(args.begin(), args.end());
    });
    server_->register_handler(2, [](ByteSpan args) {  // upper-case
      Bytes out(args.begin(), args.end());
      for (auto& c : out)
        if (c >= 'a' && c <= 'z') c = static_cast<Byte>(c - 32);
      return out;
    });
  }

  std::unique_ptr<core::SimWorld> world_;
  std::unique_ptr<RpcClient> client_;
  std::unique_ptr<RpcServer> server_;
};

TEST_F(RpcTest, EchoCallSplitPhase) {
  const Bytes args = to_bytes("hello rpc");
  const auto id = client_->issue(1, ByteSpan(args));
  server_->serve_one();
  EXPECT_EQ(client_->collect(id), args);
}

TEST_F(RpcTest, DispatchByFunctionId) {
  const Bytes args = to_bytes("mixed Case");
  const auto id = client_->issue(2, ByteSpan(args));
  server_->serve_one();
  EXPECT_EQ(to_string(ByteSpan(client_->collect(id))), "MIXED CASE");
}

TEST_F(RpcTest, PipelinedRequests) {
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    const Bytes args = pattern(64, static_cast<std::uint32_t>(i));
    ids.push_back(client_->issue(1, ByteSpan(args)));
  }
  server_->serve(10);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(client_->collect(ids[static_cast<std::size_t>(i)]),
              pattern(64, static_cast<std::uint32_t>(i)));
  EXPECT_EQ(server_->served(), 10u);
}

TEST_F(RpcTest, CollectOutOfIssueOrder) {
  const Bytes a1 = pattern(16, 1), a2 = pattern(16, 2);
  const auto id1 = client_->issue(1, ByteSpan(a1));
  const auto id2 = client_->issue(1, ByteSpan(a2));
  server_->serve(2);
  EXPECT_EQ(client_->collect(id2), a2);  // later request first
  EXPECT_EQ(client_->collect(id1), a1);
}

TEST_F(RpcTest, EmptyArgsAndResult) {
  server_->register_handler(9, [](ByteSpan) { return Bytes{}; });
  const auto id = client_->issue(9, {});
  server_->serve_one();
  EXPECT_TRUE(client_->collect(id).empty());
}

TEST_F(RpcTest, LargeArgumentsUseRendezvous) {
  const Bytes args = pattern(64 * 1024);
  const auto id = client_->issue(1, ByteSpan(args));
  server_->serve_one();
  EXPECT_EQ(client_->collect(id), args);
  EXPECT_GE(world_->node(0).stats().counter("tx.rdv_rts"), 1u);
}

TEST_F(RpcTest, PendingReflectsArrival) {
  EXPECT_FALSE(server_->pending());
  client_->issue(1, {});
  world_->run();
  EXPECT_TRUE(server_->pending());
  server_->serve_one();
  EXPECT_FALSE(server_->pending());
}

TEST_F(RpcTest, UnknownFunctionThrowsOnServer) {
  client_->issue(777, {});
  EXPECT_THROW(server_->serve_one(), CheckError);
}

TEST(Rpc, RawPointerCallOverloadBlocking) {
  // The (fn, void*, len) overload wraps the span path; exercised through
  // the blocking call() over a threaded world so the server can serve
  // concurrently.
  core::SocketWorld sw({}, drv::mx_myrinet_profile());
  RpcClient client(sw.node(0), 1, 52);
  RpcServer server(sw.node(1), 0, 52);
  server.register_handler(7, [](ByteSpan args) {  // sum of doubles
    const auto* d = reinterpret_cast<const double*>(args.data());
    double sum = 0;
    for (std::size_t i = 0; i < args.size() / sizeof(double); ++i)
      sum += d[i];
    Bytes out(sizeof(double));
    std::memcpy(out.data(), &sum, sizeof(double));
    return out;
  });
  std::thread t([&] { server.serve(2); });
  const double vals[3] = {1.5, 2.25, 3.25};
  Bytes resp = client.call(7, vals, sizeof vals);
  ASSERT_EQ(resp.size(), sizeof(double));
  double sum = 0;
  std::memcpy(&sum, resp.data(), sizeof(double));
  EXPECT_DOUBLE_EQ(sum, 7.0);
  resp = client.call(7, nullptr, 0);  // empty raw-pointer args
  std::memcpy(&sum, resp.data(), sizeof(double));
  EXPECT_DOUBLE_EQ(sum, 0.0);
  t.join();
  EXPECT_EQ(server.served(), 2u);
}

TEST_F(RpcTest, TwoClientsDifferentChannels) {
  RpcClient c2(world_->node(0), 1, 51);
  RpcServer s2(world_->node(1), 0, 51);
  s2.register_handler(1, [](ByteSpan) { return to_bytes("from-s2"); });
  const auto id1 = client_->issue(1, ByteSpan(to_bytes("x")));
  const auto id2 = c2.issue(1, {});
  server_->serve_one();
  s2.serve_one();
  EXPECT_EQ(to_string(ByteSpan(client_->collect(id1))), "x");
  EXPECT_EQ(to_string(ByteSpan(c2.collect(id2))), "from-s2");
}

}  // namespace
}  // namespace mado::mw
