#include "mw/dsm.hpp"

#include <gtest/gtest.h>

#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "tests/core/engine_test_util.hpp"

namespace mado::mw {
namespace {

using core::testing::pattern;

constexpr std::size_t kPage = 4096;
constexpr std::size_t kPages = 16;

class DsmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<core::SimWorld>(2);
    world_->connect(0, 1, drv::test_profile());
    home_ = std::make_unique<DsmHome>(world_->node(1), 0, 60, kPage, kPages);
    client_ = std::make_unique<DsmClient>(world_->node(0), 1, 60, kPage);
  }

  std::unique_ptr<core::SimWorld> world_;
  std::unique_ptr<DsmHome> home_;
  std::unique_ptr<DsmClient> client_;
};

TEST_F(DsmTest, GetReturnsHomeContents) {
  home_->page(3) = pattern(kPage, 33);
  client_->issue_get(3);
  home_->serve_one();
  EXPECT_EQ(client_->complete_get(3), pattern(kPage, 33));
  EXPECT_EQ(home_->gets_served(), 1u);
}

TEST_F(DsmTest, PutUpdatesHomeAndAcks) {
  const Bytes data = pattern(kPage, 7);
  client_->issue_put(5, ByteSpan(data));
  home_->serve_one();
  client_->complete_put(5);
  EXPECT_EQ(home_->page(5), data);
  EXPECT_EQ(home_->puts_served(), 1u);
}

TEST_F(DsmTest, PutThenGetRoundTrip) {
  const Bytes data = pattern(kPage, 11);
  client_->issue_put(0, ByteSpan(data));
  home_->serve_one();
  client_->complete_put(0);
  client_->issue_get(0);
  home_->serve_one();
  EXPECT_EQ(client_->complete_get(0), data);
}

TEST_F(DsmTest, FreshPagesAreZero) {
  client_->issue_get(9);
  home_->serve_one();
  EXPECT_EQ(client_->complete_get(9), Bytes(kPage, Byte{0}));
}

TEST_F(DsmTest, ManyPagesSweep) {
  for (std::uint32_t p = 0; p < kPages; ++p) {
    client_->issue_put(p, ByteSpan(pattern(kPage, p)));
    home_->serve_one();
    client_->complete_put(p);
  }
  for (std::uint32_t p = 0; p < kPages; ++p) {
    client_->issue_get(p);
    home_->serve_one();
    EXPECT_EQ(client_->complete_get(p), pattern(kPage, p));
  }
}

TEST_F(DsmTest, PageOutOfRangeCaughtAtHome) {
  client_->issue_get(kPages + 5);
  EXPECT_THROW(home_->serve_one(), CheckError);
}

TEST_F(DsmTest, PartialPagePutRejectedClientSide) {
  const Bytes small = pattern(kPage / 2);
  EXPECT_THROW(client_->issue_put(1, ByteSpan(small)), CheckError);
}

TEST_F(DsmTest, PendingProbe) {
  EXPECT_FALSE(home_->pending());
  client_->issue_get(1);
  world_->run();
  EXPECT_TRUE(home_->pending());
  home_->serve_one();
  client_->complete_get(1);
}

TEST_F(DsmTest, PipelinedSplitPhaseRequests) {
  // Several gets in flight before the home serves any: responses come back
  // in issue order and each complete_get matches its own page.
  for (std::uint32_t p = 0; p < 4; ++p) {
    client_->issue_put(p, ByteSpan(pattern(kPage, p + 40)));
    home_->serve_one();
    client_->complete_put(p);
  }
  for (std::uint32_t p = 0; p < 4; ++p) client_->issue_get(p);
  for (std::uint32_t p = 0; p < 4; ++p) home_->serve_one();
  for (std::uint32_t p = 0; p < 4; ++p)
    EXPECT_EQ(client_->complete_get(p), pattern(kPage, p + 40)) << p;
  EXPECT_EQ(home_->gets_served(), 4u);
}

TEST_F(DsmTest, MismatchedCompletePageThrows) {
  client_->issue_get(2);
  home_->serve_one();
  EXPECT_THROW(client_->complete_get(3), CheckError);
}

TEST(Dsm, RendezvousSizedPagesRoundTrip) {
  // Pages above the rendezvous threshold travel as RTS/CTS bulk.
  constexpr std::size_t kBig = 64 * 1024;
  core::SimWorld w(2);
  w.connect(0, 1, drv::test_profile());
  DsmHome home(w.node(1), 0, 62, kBig, 4);
  DsmClient client(w.node(0), 1, 62, kBig);
  const Bytes data = core::testing::pattern(kBig, 77);
  client.issue_put(1, ByteSpan(data));
  home.serve_one();
  client.complete_put(1);
  client.issue_get(1);
  home.serve_one();
  EXPECT_EQ(client.complete_get(1), data);
  EXPECT_GE(w.node(0).stats().counter("tx.rdv_rts"), 1u);
  EXPECT_GE(w.node(1).stats().counter("tx.rdv_rts"), 1u);
}

TEST_F(DsmTest, BlockingApiWorksOverThreads) {
  // Real-driver world: the home is served from its own thread, so the
  // client's blocking get/put can be used directly.
  core::SocketWorld sw({}, drv::mx_myrinet_profile());
  DsmHome home(sw.node(1), 0, 61, kPage, kPages);
  DsmClient client(sw.node(0), 1, 61, kPage);
  std::thread server([&] { home.serve(4); });
  const Bytes data = pattern(kPage, 1);
  client.put(2, ByteSpan(data));
  EXPECT_EQ(client.get(2), data);
  client.put(3, ByteSpan(pattern(kPage, 2)));
  EXPECT_EQ(client.get(3), pattern(kPage, 2));
  server.join();
}

}  // namespace
}  // namespace mado::mw
