#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace mado {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EmptyCommandLine) {
  Flags f = make({});
  EXPECT_FALSE(f.has("anything"));
  EXPECT_TRUE(f.positional().empty());
  EXPECT_EQ(f.get("x", "d"), "d");
}

TEST(Flags, EqualsForm) {
  Flags f = make({"--profile=elan", "--window=4"});
  EXPECT_EQ(f.get("profile"), "elan");
  EXPECT_EQ(f.get_int("window", 0), 4);
}

TEST(Flags, SpaceForm) {
  Flags f = make({"--profile", "mx", "--rounds", "10"});
  EXPECT_EQ(f.get("profile"), "mx");
  EXPECT_EQ(f.get_int("rounds", 0), 10);
}

TEST(Flags, BareSwitchIsTrue) {
  Flags f = make({"--verbose", "--dry-run"});
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_TRUE(f.get_bool("dry-run"));
  EXPECT_FALSE(f.get_bool("absent"));
}

TEST(Flags, ExplicitFalseValues) {
  EXPECT_FALSE(make({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=no"}).get_bool("x", true));
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x", false));
}

TEST(Flags, PositionalsKeptInOrder) {
  Flags f = make({"pingpong", "--size=8", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "pingpong");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(Flags, SwitchBeforePositionalDoesNotEatIt) {
  // "--verbose pingpong" — a following non-flag IS consumed as the value
  // (documented space form); callers put switches last or use =true.
  Flags f = make({"--verbose", "--x", "pingpong"});
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_EQ(f.get("x"), "pingpong");
}

TEST(Flags, GetDoubleAndErrors) {
  Flags f = make({"--ratio=2.5", "--bad=abc"});
  EXPECT_DOUBLE_EQ(f.get_double("ratio", 0), 2.5);
  EXPECT_DOUBLE_EQ(f.get_double("absent", 1.25), 1.25);
  EXPECT_THROW(f.get_int("bad", 0), CheckError);
  EXPECT_THROW(f.get_double("bad", 0), CheckError);
}

TEST(Flags, LastValueWins) {
  Flags f = make({"--x=1", "--x=2"});
  EXPECT_EQ(f.get_int("x", 0), 2);
}

}  // namespace
}  // namespace mado
