#include "util/wire.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.hpp"

namespace mado {
namespace {

TEST(Wire, U8RoundTrip) {
  Bytes buf;
  WireWriter w(buf);
  w.u8(0);
  w.u8(0x7f);
  w.u8(0xff);
  WireReader r(buf);
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_EQ(r.u8(), 0x7fu);
  EXPECT_EQ(r.u8(), 0xffu);
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, U16IsLittleEndian) {
  Bytes buf;
  WireWriter w(buf);
  w.u16(0x1234);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0x34);
  EXPECT_EQ(buf[1], 0x12);
}

TEST(Wire, U32IsLittleEndian) {
  Bytes buf;
  WireWriter w(buf);
  w.u32(0xdeadbeef);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0xef);
  EXPECT_EQ(buf[1], 0xbe);
  EXPECT_EQ(buf[2], 0xad);
  EXPECT_EQ(buf[3], 0xde);
}

TEST(Wire, U64IsLittleEndian) {
  Bytes buf;
  WireWriter w(buf);
  w.u64(0x0102030405060708ull);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ(buf[0], 0x08);
  EXPECT_EQ(buf[7], 0x01);
}

TEST(Wire, MixedRoundTrip) {
  Bytes buf;
  WireWriter w(buf);
  w.u8(7);
  w.u16(65535);
  w.u32(std::numeric_limits<std::uint32_t>::max());
  w.u64(std::numeric_limits<std::uint64_t>::max());
  const char payload[] = "hello";
  w.bytes(payload, 5);

  WireReader r(buf);
  EXPECT_EQ(r.u8(), 7u);
  EXPECT_EQ(r.u16(), 65535u);
  EXPECT_EQ(r.u32(), std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
  char out[5];
  r.copy_to(out, 5);
  EXPECT_EQ(std::string(out, 5), "hello");
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, UnderrunThrows) {
  Bytes buf;
  WireWriter w(buf);
  w.u16(42);
  WireReader r(buf);
  EXPECT_THROW(r.u32(), CheckError);
}

TEST(Wire, SkipAndRemaining) {
  Bytes buf;
  WireWriter w(buf);
  w.u32(1);
  w.u32(2);
  WireReader r(buf);
  EXPECT_EQ(r.remaining(), 8u);
  r.skip(4);
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_EQ(r.u32(), 2u);
  EXPECT_THROW(r.skip(1), CheckError);
}

TEST(Wire, BytesViewIsZeroCopy) {
  Bytes buf;
  WireWriter w(buf);
  w.bytes("abcdef", 6);
  WireReader r(buf);
  ByteSpan s = r.bytes(6);
  EXPECT_EQ(s.data(), buf.data());
  EXPECT_EQ(s.size(), 6u);
}

TEST(Wire, PatchU32) {
  Bytes buf;
  WireWriter w(buf);
  w.u32(0);  // placeholder
  w.u8(9);
  w.patch_u32(0, 0xabcd1234);
  WireReader r(buf);
  EXPECT_EQ(r.u32(), 0xabcd1234u);
  EXPECT_EQ(r.u8(), 9u);
}

TEST(Wire, PatchOutOfRangeThrows) {
  Bytes buf;
  WireWriter w(buf);
  w.u16(1);
  EXPECT_THROW(w.patch_u32(0, 5), CheckError);
}

// Property: any sequence of writes reads back identically.
TEST(Wire, RandomRoundTripProperty) {
  Rng rng(1234);
  for (int iter = 0; iter < 200; ++iter) {
    Bytes buf;
    WireWriter w(buf);
    std::vector<std::pair<int, std::uint64_t>> ops;
    const int n = static_cast<int>(rng.range(1, 32));
    for (int i = 0; i < n; ++i) {
      const int kind = static_cast<int>(rng.below(4));
      const std::uint64_t v = rng.next();
      ops.emplace_back(kind, v);
      switch (kind) {
        case 0: w.u8(static_cast<std::uint8_t>(v)); break;
        case 1: w.u16(static_cast<std::uint16_t>(v)); break;
        case 2: w.u32(static_cast<std::uint32_t>(v)); break;
        default: w.u64(v); break;
      }
    }
    WireReader r(buf);
    for (const auto& [kind, v] : ops) {
      switch (kind) {
        case 0: EXPECT_EQ(r.u8(), static_cast<std::uint8_t>(v)); break;
        case 1: EXPECT_EQ(r.u16(), static_cast<std::uint16_t>(v)); break;
        case 2: EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(v)); break;
        default: EXPECT_EQ(r.u64(), v); break;
      }
    }
    EXPECT_TRUE(r.at_end());
  }
}

}  // namespace
}  // namespace mado
