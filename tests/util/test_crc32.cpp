#include "util/crc32.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mado {
namespace {

TEST(Crc32, KnownVectors) {
  // Standard IEEE CRC-32 check value.
  const std::string s = "123456789";
  EXPECT_EQ(Crc32::of(s.data(), s.size()), 0xcbf43926u);
  EXPECT_EQ(Crc32::of(nullptr, 0), 0x00000000u);
  const std::string a = "a";
  EXPECT_EQ(Crc32::of(a.data(), a.size()), 0xe8b7be43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string s = "the quick brown fox jumps over the lazy dog";
  Crc32 c;
  c.update(s.data(), 10);
  c.update(s.data() + 10, s.size() - 10);
  EXPECT_EQ(c.value(), Crc32::of(s.data(), s.size()));
}

TEST(Crc32, ResetRestartsState) {
  Crc32 c;
  c.update("junk", 4);
  c.reset();
  c.update("123456789", 9);
  EXPECT_EQ(c.value(), 0xcbf43926u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  Bytes data(64, 0x5a);
  const std::uint32_t base = Crc32::of(data.data(), data.size());
  for (std::size_t i = 0; i < data.size(); i += 7) {
    Bytes mut = data;
    mut[i] ^= 0x01;
    EXPECT_NE(Crc32::of(mut.data(), mut.size()), base) << "at byte " << i;
  }
}

}  // namespace
}  // namespace mado
