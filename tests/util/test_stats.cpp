#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace mado {
namespace {

TEST(Welford, MeanAndVariance) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_EQ(w.count(), 8u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, SingleSampleHasZeroVariance) {
  Welford w;
  w.add(3.5);
  EXPECT_DOUBLE_EQ(w.mean(), 3.5);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
}

TEST(Log2Histogram, BucketOf) {
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 0);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 1);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 1);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 2);
  EXPECT_EQ(Log2Histogram::bucket_of(1023), 9);
  EXPECT_EQ(Log2Histogram::bucket_of(1024), 10);
}

TEST(Log2Histogram, CountSumMean) {
  Log2Histogram h;
  h.add(10);
  h.add(20);
  h.add(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Log2Histogram, QuantileBounds) {
  Log2Histogram h;
  for (int i = 0; i < 99; ++i) h.add(8);    // bucket 3: [8,16)
  h.add(1 << 20);                           // one outlier
  EXPECT_LE(h.quantile_upper_bound(0.5), 15u);
  EXPECT_GE(h.quantile_upper_bound(0.999), (1u << 20) - 1);
}

TEST(StatsRegistry, Counters) {
  StatsRegistry s;
  EXPECT_EQ(s.counter("x"), 0u);
  s.inc("x");
  s.inc("x", 4);
  EXPECT_EQ(s.counter("x"), 5u);
  s.reset();
  EXPECT_EQ(s.counter("x"), 0u);
}

TEST(StatsRegistry, Histograms) {
  StatsRegistry s;
  EXPECT_EQ(s.histogram("lat"), nullptr);
  s.observe("lat", 100);
  s.observe("lat", 200);
  ASSERT_NE(s.histogram("lat"), nullptr);
  EXPECT_EQ(s.histogram("lat")->count(), 2u);
}

TEST(StatsRegistry, ToStringContainsEntries) {
  StatsRegistry s;
  s.inc("packets", 7);
  s.observe("lat", 4);
  const std::string out = s.to_string();
  EXPECT_NE(out.find("packets=7"), std::string::npos);
  EXPECT_NE(out.find("lat:"), std::string::npos);
}

}  // namespace
}  // namespace mado
