#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mado {
namespace {

TEST(Welford, MeanAndVariance) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_EQ(w.count(), 8u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, SingleSampleHasZeroVariance) {
  Welford w;
  w.add(3.5);
  EXPECT_DOUBLE_EQ(w.mean(), 3.5);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
}

TEST(Welford, EmptyMinMaxAreNaNNotZero) {
  // Regression: min()/max() returned 0 for an empty accumulator, which is
  // indistinguishable from a genuine 0-valued sample in reports.
  Welford w;
  EXPECT_TRUE(std::isnan(w.min()));
  EXPECT_TRUE(std::isnan(w.max()));
  w.add(-3.0);
  EXPECT_DOUBLE_EQ(w.min(), -3.0);
  EXPECT_DOUBLE_EQ(w.max(), -3.0);
}

TEST(Log2Histogram, BucketOf) {
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 0);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 1);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 1);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 2);
  EXPECT_EQ(Log2Histogram::bucket_of(1023), 9);
  EXPECT_EQ(Log2Histogram::bucket_of(1024), 10);
}

TEST(Log2Histogram, CountSumMean) {
  Log2Histogram h;
  h.add(10);
  h.add(20);
  h.add(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Log2Histogram, QuantileBounds) {
  Log2Histogram h;
  for (int i = 0; i < 99; ++i) h.add(8);    // bucket 3: [8,16)
  h.add(1 << 20);                           // one outlier
  EXPECT_LE(h.quantile_upper_bound(0.5), 15u);
  EXPECT_GE(h.quantile_upper_bound(0.999), (1u << 20) - 1);
}

TEST(Log2Histogram, QuantileEdges) {
  Log2Histogram empty;
  EXPECT_EQ(empty.quantile_upper_bound(0.0), 0u);
  EXPECT_EQ(empty.quantile_upper_bound(1.0), 0u);

  Log2Histogram h;
  h.add(8);    // bucket 3
  h.add(100);  // bucket 6
  // q=0 → bucket of the smallest sample; q=1 → bucket of the largest.
  EXPECT_EQ(h.quantile_upper_bound(0.0), 15u);
  EXPECT_EQ(h.quantile_upper_bound(1.0), 127u);
}

TEST(Log2Histogram, BucketZeroHoldsZeroAndOne) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.count(), 2u);
  // Bucket 0's upper bound is (1<<1)-1 = 1: both samples fit under it.
  EXPECT_EQ(h.quantile_upper_bound(1.0), 1u);
}

TEST(StatsRegistry, Counters) {
  StatsRegistry s;
  EXPECT_EQ(s.counter("x"), 0u);
  s.inc("x");
  s.inc("x", 4);
  EXPECT_EQ(s.counter("x"), 5u);
  s.reset();
  EXPECT_EQ(s.counter("x"), 0u);
}

TEST(StatsRegistry, Histograms) {
  StatsRegistry s;
  EXPECT_EQ(s.histogram("lat"), nullptr);
  s.observe("lat", 100);
  s.observe("lat", 200);
  ASSERT_NE(s.histogram("lat"), nullptr);
  EXPECT_EQ(s.histogram("lat")->count(), 2u);
}

TEST(StatsRegistry, ToStringContainsEntries) {
  StatsRegistry s;
  s.inc("packets", 7);
  s.observe("lat", 4);
  const std::string out = s.to_string();
  EXPECT_NE(out.find("packets=7"), std::string::npos);
  EXPECT_NE(out.find("lat:"), std::string::npos);
}

TEST(StatsRegistry, ToStringRendersHistogramSummary) {
  StatsRegistry s;
  for (int i = 0; i < 100; ++i) s.observe("lat", 8);
  const std::string out = s.to_string();
  EXPECT_NE(out.find("count=100"), std::string::npos);
  EXPECT_NE(out.find("mean=8"), std::string::npos);
  EXPECT_NE(out.find("p50<=15"), std::string::npos);
  EXPECT_NE(out.find("p99<=15"), std::string::npos);
}

TEST(StatsRegistry, HistogramsAccessor) {
  StatsRegistry s;
  s.observe("a", 1);
  s.observe("b", 2);
  EXPECT_EQ(s.histograms().size(), 2u);
  EXPECT_EQ(s.histograms().count("a"), 1u);
}

}  // namespace
}  // namespace mado
