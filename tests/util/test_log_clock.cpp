#include <gtest/gtest.h>

#include <thread>

#include "util/clock.hpp"
#include "util/log.hpp"

namespace mado {
namespace {

TEST(VirtualClock, StartsAtZeroAndAdvances) {
  VirtualClock c;
  EXPECT_EQ(c.now(), 0u);
  c.advance_to(100);
  EXPECT_EQ(c.now(), 100u);
  c.advance_by(50);
  EXPECT_EQ(c.now(), 150u);
}

TEST(VirtualClock, NeverGoesBackwards) {
  VirtualClock c;
  c.advance_to(100);
  c.advance_to(40);  // ignored
  EXPECT_EQ(c.now(), 100u);
}

TEST(SteadyClock, MonotonicAndMoving) {
  SteadyClock c;
  const Nanos a = c.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const Nanos b = c.now();
  EXPECT_GT(b, a);
}

TEST(TimeUnits, Conversions) {
  EXPECT_EQ(usec(1.0), 1000u);
  EXPECT_EQ(usec(2.5), 2500u);
  EXPECT_DOUBLE_EQ(to_usec(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_sec(2 * kNanosPerSec), 2.0);
}

TEST(Log, LevelFilteringAndRestore) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // A disabled-level macro must not evaluate its stream expression.
  int evaluated = 0;
  MADO_DEBUG("side effect " << ++evaluated);
  EXPECT_EQ(evaluated, 0);
  set_log_level(LogLevel::Trace);
  MADO_DEBUG("now enabled " << ++evaluated);
  EXPECT_EQ(evaluated, 1);
  set_log_level(before);
}

}  // namespace
}  // namespace mado
