#include "util/iovec.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mado {
namespace {

TEST(GatherList, EmptyList) {
  GatherList gl;
  EXPECT_TRUE(gl.empty());
  EXPECT_EQ(gl.total_bytes(), 0u);
  EXPECT_EQ(gl.segment_count(), 0u);
  EXPECT_TRUE(gl.flatten().empty());
}

TEST(GatherList, SkipsZeroLengthSegments) {
  GatherList gl;
  gl.add("abc", 0);
  EXPECT_TRUE(gl.empty());
  gl.add("abc", 3);
  gl.add(nullptr, 0);
  EXPECT_EQ(gl.segment_count(), 1u);
}

TEST(GatherList, FlattenConcatenatesInOrder) {
  const std::string a = "hello ", b = "gather ", c = "world";
  GatherList gl;
  gl.add(a.data(), a.size());
  gl.add(b.data(), b.size());
  gl.add(c.data(), c.size());
  EXPECT_EQ(gl.segment_count(), 3u);
  EXPECT_EQ(gl.total_bytes(), a.size() + b.size() + c.size());
  Bytes flat = gl.flatten();
  EXPECT_EQ(std::string(flat.begin(), flat.end()), "hello gather world");
}

TEST(GatherList, FlattenIntoCallerBuffer) {
  const std::string a = "xy", b = "z";
  GatherList gl;
  gl.add(a.data(), a.size());
  gl.add(b.data(), b.size());
  char out[3];
  gl.flatten_into(out);
  EXPECT_EQ(std::string(out, 3), "xyz");
}

TEST(GatherList, ClearResets) {
  GatherList gl;
  gl.add("abcd", 4);
  gl.clear();
  EXPECT_TRUE(gl.empty());
  EXPECT_EQ(gl.total_bytes(), 0u);
}

TEST(GatherList, IterationExposesSegments) {
  const std::string a = "12", b = "345";
  GatherList gl;
  gl.add(a.data(), a.size());
  gl.add(b.data(), b.size());
  std::size_t total = 0;
  for (const Segment& s : gl) total += s.len;
  EXPECT_EQ(total, 5u);
  EXPECT_EQ(gl[1].len, 3u);
}

TEST(Scatter, SplitsAcrossDestinations) {
  Bytes src = {'a', 'b', 'c', 'd', 'e'};
  Byte d1[2], d2[3];
  ScatterDest dests[] = {{d1, 2}, {d2, 3}};
  scatter(ByteSpan(src), dests);
  EXPECT_EQ(d1[0], 'a');
  EXPECT_EQ(d1[1], 'b');
  EXPECT_EQ(d2[2], 'e');
}

TEST(Scatter, LengthMismatchThrows) {
  Bytes src = {'a', 'b', 'c'};
  Byte d1[2];
  ScatterDest dests[] = {{d1, 2}};
  EXPECT_THROW(scatter(ByteSpan(src), dests), CheckError);
}

TEST(Scatter, OverrunThrows) {
  Bytes src = {'a'};
  Byte d1[2];
  ScatterDest dests[] = {{d1, 2}};
  EXPECT_THROW(scatter(ByteSpan(src), dests), CheckError);
}

}  // namespace
}  // namespace mado
