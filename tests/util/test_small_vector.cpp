#include "util/small_vector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace mado {
namespace {

TEST(SmallVector, StartsEmptyAndInline) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVector, PushWithinInlineCapacity) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, SpillsToHeapAndPreservesContents) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, NonTrivialElements) {
  SmallVector<std::string, 2> v;
  v.push_back("alpha");
  v.push_back("beta");
  v.push_back("gamma-long-enough-to-defeat-sso-optimizations");
  EXPECT_EQ(v[0], "alpha");
  EXPECT_EQ(v[2], "gamma-long-enough-to-defeat-sso-optimizations");
}

TEST(SmallVector, MoveOnlyElements) {
  SmallVector<std::unique_ptr<int>, 2> v;
  v.push_back(std::make_unique<int>(1));
  v.push_back(std::make_unique<int>(2));
  v.push_back(std::make_unique<int>(3));  // forces spill with move-only T
  EXPECT_EQ(*v[0], 1);
  EXPECT_EQ(*v[2], 3);
}

TEST(SmallVector, CopyConstruct) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  SmallVector<int, 2> w(v);
  EXPECT_EQ(w.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(w[static_cast<std::size_t>(i)], i);
  w.push_back(99);
  EXPECT_EQ(v.size(), 10u);  // deep copy
}

TEST(SmallVector, MoveConstructHeap) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  SmallVector<int, 2> w(std::move(v));
  EXPECT_EQ(w.size(), 10u);
  EXPECT_EQ(v.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
}

TEST(SmallVector, MoveConstructInline) {
  SmallVector<std::string, 4> v;
  v.push_back("x");
  v.push_back("y");
  SmallVector<std::string, 4> w(std::move(v));
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], "x");
}

TEST(SmallVector, CopyAssign) {
  SmallVector<int, 2> v;
  v.push_back(1);
  SmallVector<int, 2> w;
  w.push_back(7);
  w.push_back(8);
  w.push_back(9);
  w = v;
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0], 1);
}

TEST(SmallVector, MoveAssign) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 6; ++i) v.push_back(i);
  SmallVector<int, 2> w;
  w.push_back(42);
  w = std::move(v);
  EXPECT_EQ(w.size(), 6u);
  EXPECT_EQ(w[5], 5);
}

TEST(SmallVector, PopBack) {
  SmallVector<int, 2> v{1, 2, 3};
  v.pop_back();
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 2);
}

TEST(SmallVector, ClearKeepsCapacity) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  const auto cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
}

TEST(SmallVector, ResizeGrowsWithDefaults) {
  SmallVector<int, 2> v;
  v.resize(5);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v[4], 0);
  v.resize(1);
  EXPECT_EQ(v.size(), 1u);
}

TEST(SmallVector, IterationMatchesIndexing) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 20; ++i) v.push_back(i * i);
  int idx = 0;
  for (int x : v) {
    EXPECT_EQ(x, idx * idx);
    ++idx;
  }
  EXPECT_EQ(idx, 20);
}

TEST(SmallVector, InitializerList) {
  SmallVector<int, 8> v{5, 6, 7};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.front(), 5);
  EXPECT_EQ(v.back(), 7);
}

struct DtorCounter {
  static int live;
  DtorCounter() { ++live; }
  DtorCounter(const DtorCounter&) { ++live; }
  DtorCounter(DtorCounter&&) noexcept { ++live; }
  ~DtorCounter() { --live; }
};
int DtorCounter::live = 0;

TEST(SmallVector, DestroysAllElements) {
  DtorCounter::live = 0;
  {
    SmallVector<DtorCounter, 2> v;
    for (int i = 0; i < 9; ++i) v.emplace_back();
    EXPECT_EQ(DtorCounter::live, 9);
  }
  EXPECT_EQ(DtorCounter::live, 0);
}

TEST(SmallVector, InsertAtPositionsAndAcrossGrowth) {
  SmallVector<int, 4> v;
  v.push_back(1);
  v.push_back(3);
  auto it = v.insert(v.begin() + 1, 2);  // middle
  EXPECT_EQ(*it, 2);
  v.insert(v.begin(), 0);           // front
  v.insert(v.end(), 4);             // back (spills past inline capacity)
  v.insert(v.begin() + 5, 5);
  ASSERT_EQ(v.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  EXPECT_FALSE(v.is_inline());
}

TEST(SmallVector, EraseShiftsAndReturnsNext) {
  SmallVector<int, 4> v{10, 20, 30, 40};
  auto it = v.erase(v.begin() + 1);  // remove 20
  EXPECT_EQ(*it, 30);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 30);
  EXPECT_EQ(v[2], 40);
  it = v.erase(v.begin() + 2);  // remove last
  EXPECT_EQ(it, v.end());
  EXPECT_EQ(v.size(), 2u);
}

TEST(SmallVector, InsertEraseNonTrivial) {
  SmallVector<std::string, 2> v;
  v.push_back("a");
  v.push_back("c-long-enough-to-defeat-sso-optimizations");
  v.insert(v.begin() + 1, "b-long-enough-to-defeat-sso-optimizations");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], "b-long-enough-to-defeat-sso-optimizations");
  v.erase(v.begin());
  EXPECT_EQ(v[0], "b-long-enough-to-defeat-sso-optimizations");
  EXPECT_EQ(v[1], "c-long-enough-to-defeat-sso-optimizations");
}

}  // namespace
}  // namespace mado
