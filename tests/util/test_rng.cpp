#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mado {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t bound = 1 + (rng.next() & 0xffff);
    EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceRespectsProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, NoShortCycle) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.next());
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace mado
