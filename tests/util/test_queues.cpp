#include "util/queues.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mado {
namespace {

TEST(SpscRing, RejectsNonPowerOfTwo) {
  EXPECT_THROW(SpscRing<int>(3), CheckError);
  EXPECT_THROW(SpscRing<int>(0), CheckError);
  EXPECT_THROW(SpscRing<int>(1), CheckError);
  EXPECT_NO_THROW(SpscRing<int>(2));
}

TEST(SpscRing, FifoOrder) {
  SpscRing<int> q(8);
  for (int i = 0; i < 7; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(7));  // capacity-1 elements
  for (int i = 0; i < 7; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SpscRing, SizeTracksOccupancy) {
  SpscRing<int> q(4);
  EXPECT_TRUE(q.empty());
  q.try_push(1);
  q.try_push(2);
  EXPECT_EQ(q.size(), 2u);
  q.try_pop();
  EXPECT_EQ(q.size(), 1u);
}

// Instrumented element type whose move behaves like an element-wise /
// copy-on-move type (e.g. an inline small-vector or a shared handle): the
// moved-from source still counts as holding its resource until it is
// destroyed or reassigned. `live` counts resource-holding instances.
struct StickyResource {
  static inline int live = 0;
  int value = 0;
  bool active = false;
  StickyResource() = default;
  explicit StickyResource(int v) : value(v), active(true) { ++live; }
  StickyResource(StickyResource&& o) noexcept
      : value(o.value), active(o.active) {
    if (active) ++live;  // source stays active — the sticky part
  }
  StickyResource& operator=(StickyResource&& o) noexcept {
    if (this == &o) return *this;
    if (active) --live;
    value = o.value;
    active = o.active;
    if (active) ++live;
    return *this;
  }
  StickyResource(const StickyResource&) = delete;
  StickyResource& operator=(const StickyResource&) = delete;
  ~StickyResource() {
    if (active) --live;
  }
};

TEST(SpscRing, PopResetsSlotSoNoResourceIsPinned) {
  // Regression: try_pop used to leave the moved-from element in its slot.
  // For element types whose move does not empty the source, a quiet ring
  // then pinned the last popped element's resources until the slot was
  // overwritten a full lap later. try_pop must reset the slot to a
  // default-constructed T.
  StickyResource::live = 0;
  {
    SpscRing<StickyResource> q(8);
    EXPECT_TRUE(q.try_push(StickyResource(7)));
    EXPECT_EQ(StickyResource::live, 1);  // held by the ring slot only
    {
      auto v = q.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(v->value, 7);
      // Only the popped copy remains live; the ring slot was reset.
      EXPECT_EQ(StickyResource::live, 1);
    }
    EXPECT_EQ(StickyResource::live, 0);  // nothing pinned in the idle ring
  }
  EXPECT_EQ(StickyResource::live, 0);
}

TEST(SpscRing, WrapAround) {
  SpscRing<int> q(4);
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(q.try_push(round));
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, round);
  }
}

TEST(SpscRing, TwoThreadStress) {
  SpscRing<std::uint64_t> q(1024);
  constexpr std::uint64_t kN = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kN;) {
      if (q.try_push(i)) ++i;
    }
  });
  std::uint64_t expect = 0;
  while (expect < kN) {
    if (auto v = q.try_pop()) {
      ASSERT_EQ(*v, expect);
      ++expect;
    }
  }
  producer.join();
  EXPECT_TRUE(q.empty());
}

TEST(MpscQueue, PushPop) {
  MpscQueue<int> q;
  EXPECT_TRUE(q.empty());
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpscQueue, PopWaitTimesOut) {
  MpscQueue<int> q;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_wait(std::chrono::milliseconds(20)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(15));
}

TEST(MpscQueue, PopWaitWakesOnPush) {
  MpscQueue<int> q;
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.push(42);
  });
  auto v = q.pop_wait(std::chrono::seconds(5));
  t.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(MpscQueue, DrainTakesEverything) {
  MpscQueue<int> q;
  for (int i = 0; i < 5; ++i) q.push(i);
  std::vector<int> out;
  EXPECT_EQ(q.drain(out), 5u);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.drain(out), 0u);
}

TEST(MpscQueue, MultiProducerCountsMatch) {
  MpscQueue<int> q;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t)
    producers.emplace_back([&q] {
      for (int i = 0; i < kPerThread; ++i) q.push(i);
    });
  for (auto& t : producers) t.join();
  std::vector<int> out;
  q.drain(out);
  EXPECT_EQ(out.size(), 4u * kPerThread);
}

}  // namespace
}  // namespace mado
