// RPC over REAL bytes: two engines joined by a socketpair rail, each with
// its own progress thread; client and server run on separate application
// threads using the blocking APIs. Demonstrates that the same engine code
// drives both the deterministic simulator and a real asynchronous
// transport.
//
// Build & run:  ./build/examples/rpc_pingpong
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "mw/rpc.hpp"

using namespace mado;
using namespace mado::core;
using namespace mado::mw;

int main() {
  SocketWorld world({}, drv::mx_myrinet_profile());

  RpcServer server(world.node(1), 0, 1);
  server.register_handler(1, [](ByteSpan args) {  // sum of bytes
    std::uint64_t sum = 0;
    for (Byte b : args) sum += b;
    Bytes out(sizeof sum);
    std::memcpy(out.data(), &sum, sizeof sum);
    return out;
  });

  constexpr int kCalls = 2000;
  std::thread server_thread([&] { server.serve(kCalls); });

  RpcClient client(world.node(0), 1, 1);
  Bytes args(64);
  for (std::size_t i = 0; i < args.size(); ++i)
    args[i] = static_cast<Byte>(i);

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t checksum = 0;
  for (int i = 0; i < kCalls; ++i) {
    Bytes r = client.call(1, ByteSpan(args));
    std::uint64_t sum;
    std::memcpy(&sum, r.data(), sizeof sum);
    checksum += sum;
  }
  const auto dt = std::chrono::steady_clock::now() - t0;
  server_thread.join();

  const double us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          dt)
          .count();
  std::printf("%d RPC round trips over a real socketpair\n", kCalls);
  std::printf("mean round-trip: %.1f us   (checksum %llu, expected %llu)\n",
              us / kCalls, static_cast<unsigned long long>(checksum),
              static_cast<unsigned long long>(kCalls * 2016ull));
  std::printf("server served %llu requests; sender stats:\n%s",
              static_cast<unsigned long long>(server.served()),
              world.node(0).stats().to_string().c_str());
  return 0;
}
