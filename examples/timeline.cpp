// Event timeline: attach a Tracer to both engines and render exactly what
// the optimizing layer did, in deterministic virtual time — submissions
// accumulating while the NIC is busy, the idle-triggered aggregation
// decisions, the rendezvous handshake, bulk chunks.
//
// Build & run:  ./build/examples/timeline
//
// Flags:
//   --trace-out=trace.json   also write the trace as Chrome trace-event
//                            JSON; open in chrome://tracing or
//                            https://ui.perfetto.dev
#include <cstdio>

#include "core/trace.hpp"
#include "core/trace_export.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "util/flags.hpp"

using namespace mado;
using namespace mado::core;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);

  EngineConfig cfg;
  cfg.strategy = "aggreg";
  SimWorld world(2, cfg);
  world.connect(0, 1, drv::mx_myrinet_profile());

  // One shared Tracer across both engines so the exporter can pair PacketTx
  // on node 0 with PacketRx on node 1 (flow arrows in the Perfetto UI).
  Tracer tracer;
  world.node(0).set_tracer(&tracer);
  world.node(1).set_tracer(&tracer);

  Channel a1 = world.node(0).open_channel(1, 1);
  Channel a2 = world.node(0).open_channel(1, 2);
  Channel b1 = world.node(1).open_channel(0, 1);
  Channel b2 = world.node(1).open_channel(0, 2);

  // Flow 1: a burst of small messages. Flow 2: one rendezvous transfer.
  Bytes small(64, Byte{1});
  for (int i = 0; i < 4; ++i) {
    Message m;
    m.pack(small.data(), small.size(), SendMode::Safe);
    a1.post(std::move(m));
  }
  Bytes big(64 * 1024, Byte{2});
  Message m;
  m.pack(big.data(), big.size(), SendMode::Later);
  a2.post(std::move(m));

  // Drain on node 1.
  for (int i = 0; i < 4; ++i) {
    Bytes out(64);
    IncomingMessage im = b1.begin_recv();
    im.unpack(out.data(), out.size(), RecvMode::Express);
    im.finish();
  }
  Bytes bout(big.size());
  IncomingMessage im = b2.begin_recv();
  im.unpack(bout.data(), bout.size(), RecvMode::Cheaper);
  im.finish();
  world.node(0).flush();

  std::printf("timeline (virtual time; n0->1 = node 0 event toward node 1):\n");
  std::printf("%s", tracer.render_all().c_str());
  std::printf("\n%zu events traced, %zu dropped\n", tracer.size(),
              tracer.dropped());
  std::printf("note: the first small message leaves alone (NIC idle); the "
              "rest aggregate behind it.\n");

  const std::string trace_out = flags.get("trace-out");
  if (!trace_out.empty()) {
    if (!write_chrome_trace_file(trace_out, tracer.snapshot())) {
      std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n",
                trace_out.c_str());
  }
  return 0;
}
