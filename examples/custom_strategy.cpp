// Extending the strategy database (paper abstract: "The database of
// predefined strategies can be easily extended").
//
// Registers a user-defined "smallest-first" strategy — it always packs the
// smallest available head fragments first, a shortest-job-first flavor —
// and runs it against the built-ins on a mixed-size workload. The point is
// the mechanism: nothing in the engine changes; the strategy is selected by
// name through EngineConfig.
//
// Build & run:  ./build/examples/custom_strategy
#include <algorithm>
#include <cstdio>

#include "core/world.hpp"
#include "drivers/profiles.hpp"

using namespace mado;
using namespace mado::core;

namespace {

/// Shortest-fragment-first packing: scan all flow heads, repeatedly take
/// the smallest head that still fits. Demonstrates a complete third-party
/// Strategy: honoring control priority, the byte budget and per-flow FIFO
/// comes from using only TxBacklog's head-consuming interface.
class SmallestFirstStrategy final : public Strategy {
 public:
  std::string name() const override { return "smallest_first"; }

  PacketDecision next_packet(TxBacklog& backlog,
                             const StrategyEnv& env) override {
    PacketDecision d;
    std::size_t used = strategy_detail::take_controls(
        backlog, env.caps.max_eager, d.frags);
    for (;;) {
      if (env.lookahead_window != 0 &&
          d.frags.size() >= env.lookahead_window)
        break;
      // Find the smallest head fragment that fits.
      ChannelId best = 0;
      std::size_t best_len = SIZE_MAX;
      for (ChannelId ch : backlog.active_flows()) {
        const TxFrag& head = backlog.peek(ch);
        const std::size_t need = FragHeader::kWireSize + head.len;
        const bool fits = d.frags.empty() || used + need <= env.caps.max_eager;
        if (fits && head.len < best_len) {
          best_len = head.len;
          best = ch;
        }
      }
      if (best_len == SIZE_MAX) break;
      used += FragHeader::kWireSize + best_len;
      d.frags.push_back(backlog.pop(best));
    }
    if (d.frags.empty()) return d;  // Idle
    d.action = PacketDecision::Action::Send;
    return d;
  }
};

Nanos run(const std::string& strategy) {
  EngineConfig cfg;
  cfg.strategy = strategy;
  SimWorld world(2, cfg);
  world.connect(0, 1, drv::mx_myrinet_profile());
  std::vector<Channel> tx, rx;
  for (ChannelId f = 0; f < 8; ++f) {
    tx.push_back(world.node(0).open_channel(1, f));
    rx.push_back(world.node(1).open_channel(0, f));
  }
  // Mixed sizes: small control-ish messages interleaved with medium ones.
  for (int round = 0; round < 20; ++round) {
    for (ChannelId f = 0; f < 8; ++f) {
      const std::size_t len = (f % 2 == 0) ? 32 : 1500;
      Bytes data(len, static_cast<Byte>(round));
      Message m;
      m.pack(data.data(), data.size(), SendMode::Safe);
      tx[f].post(std::move(m));
    }
  }
  for (int round = 0; round < 20; ++round) {
    for (ChannelId f = 0; f < 8; ++f) {
      const std::size_t len = (f % 2 == 0) ? 32 : 1500;
      Bytes out(len);
      IncomingMessage im = rx[f].begin_recv();
      im.unpack(out.data(), out.size(), RecvMode::Express);
      im.finish();
    }
  }
  world.node(0).flush();
  return world.now();
}

}  // namespace

int main() {
  // One line extends the database; engines pick it up by name.
  StrategyRegistry::instance().register_strategy(
      "smallest_first", [] { return std::make_unique<SmallestFirstStrategy>(); });

  std::printf("strategy database now contains:");
  for (const auto& n : StrategyRegistry::instance().names())
    std::printf(" %s", n.c_str());
  std::printf("\n\nmixed-size 8-flow workload, completion time:\n");
  for (const char* s : {"fifo", "aggreg", "smallest_first"})
    std::printf("  %-16s %10.1f us\n", s, to_usec(run(s)));
  return 0;
}
