// Quickstart: the three-layer architecture of the paper (Figure 1) in ~80
// lines. Two simulated nodes, one Myrinet/MX-profile rail, one channel.
//
//   Application layer  — pack a structured message, post it, keep computing
//   Optimizing layer   — the strategy packs backlog fragments into packets
//                        whenever the NIC goes idle
//   Transfer layer     — the simulated MX driver charges realistic costs
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/world.hpp"
#include "drivers/profiles.hpp"

using namespace mado;
using namespace mado::core;

int main() {
  // One deterministic world: two engines over a shared discrete-event
  // fabric. The engine config selects the optimization strategy from the
  // strategy database ("aggreg" = cross-flow aggregation, the paper's
  // headline optimization).
  EngineConfig cfg;
  cfg.strategy = "aggreg";
  SimWorld world(2, cfg);
  world.connect(0, 1, drv::mx_myrinet_profile());

  // A channel is one logical communication flow. Both sides open id 7.
  Channel tx = world.node(0).open_channel(1, 7);
  Channel rx = world.node(1).open_channel(0, 7);

  // --- Application layer: structured message = header + payload ---------
  struct Header {
    std::uint32_t kind;
    std::uint32_t payload_len;
  };
  Bytes payload(256);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<Byte>(i);
  Header hdr{1, static_cast<std::uint32_t>(payload.size())};

  Message m;
  m.pack(&hdr, sizeof hdr, SendMode::Safe);      // copied now
  m.pack(payload.data(), payload.size(), SendMode::Later);  // referenced
  SendHandle h = tx.post(std::move(m));  // enqueue and return immediately
  std::printf("posted: collect layer holds %zu fragment(s), %zu in flight\n",
              world.node(0).backlog_frags(1, 0),
              world.node(0).inflight_packets());

  // --- Receive: express header first, then the payload ------------------
  IncomingMessage im = rx.begin_recv();
  Header rhdr{};
  im.unpack(&rhdr, sizeof rhdr, RecvMode::Express);  // blocks for the header
  std::printf("received header: kind=%u payload_len=%u (t = %.2f us)\n",
              rhdr.kind, rhdr.payload_len, to_usec(world.now()));
  Bytes rpayload(rhdr.payload_len);
  im.unpack(rpayload.data(), rpayload.size(), RecvMode::Cheaper);
  im.finish();

  world.node(0).wait_send(h);
  std::printf("payload delivered intact: %s (t = %.2f us)\n",
              rpayload == payload ? "yes" : "NO", to_usec(world.now()));

  // --- What the engine did, layer by layer -------------------------------
  std::printf("\nsender counters:\n%s",
              world.node(0).stats().to_string().c_str());
  std::printf("\nstrategy database: ");
  for (const auto& name : StrategyRegistry::instance().names())
    std::printf("%s ", name.c_str());
  std::printf("\n");
  return 0;
}
