// Halo exchange on a 4-node ring with mini-MPI — the classic regular HPC
// communication pattern (paper §2: Madeleine must perform well "with
// regular communication schemes commonly encountered with MPI-like
// programming environments" too, not only with irregular middleware mixes).
//
// Each node owns a strip of a 1-D field and exchanges one halo column with
// each neighbor per iteration, then relaxes its interior. All four nodes
// run in one deterministic simulated world.
//
// Build & run:  ./build/examples/halo_exchange
#include <cstdio>
#include <vector>

#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "mw/mini_mpi.hpp"

using namespace mado;
using namespace mado::core;
using namespace mado::mw;

namespace {
constexpr std::size_t kNodes = 4;
constexpr std::size_t kStrip = 256;  // interior cells per node
constexpr int kIters = 50;
constexpr MpiEndpoint::Tag kLeftTag = 1, kRightTag = 2;
}  // namespace

int main() {
  SimWorld world(kNodes);
  for (NodeId i = 0; i < kNodes; ++i)
    world.connect(i, (i + 1) % kNodes, drv::mx_myrinet_profile());

  // Each node has an MPI endpoint per neighbor (ring).
  std::vector<std::unique_ptr<MpiEndpoint>> to_right(kNodes), to_left(kNodes);
  for (NodeId i = 0; i < kNodes; ++i) {
    const NodeId right = (i + 1) % kNodes;
    const NodeId left = (i + kNodes - 1) % kNodes;
    to_right[i] = std::make_unique<MpiEndpoint>(world.node(i), right, 10);
    to_left[i] = std::make_unique<MpiEndpoint>(world.node(i), left, 10);
  }

  // Field strips with two ghost cells: [ghost_l | interior... | ghost_r].
  std::vector<std::vector<double>> field(kNodes,
                                         std::vector<double>(kStrip + 2, 0));
  for (NodeId i = 0; i < kNodes; ++i)
    field[i][kStrip / 2] = 100.0 * (i + 1);  // initial heat spikes

  for (int it = 0; it < kIters; ++it) {
    // Post all halo sends (boundary cells to both neighbors)...
    for (NodeId i = 0; i < kNodes; ++i) {
      to_right[i]->isend(kLeftTag, &field[i][kStrip], sizeof(double));
      to_left[i]->isend(kRightTag, &field[i][1], sizeof(double));
    }
    // ...then receive ghosts (the simulated world progresses lazily inside
    // the blocking recv calls).
    for (NodeId i = 0; i < kNodes; ++i) {
      to_left[i]->recv(kLeftTag, &field[i][0], sizeof(double));
      to_right[i]->recv(kRightTag, &field[i][kStrip + 1], sizeof(double));
    }
    // Jacobi relaxation on the interior.
    for (NodeId i = 0; i < kNodes; ++i) {
      std::vector<double> next = field[i];
      for (std::size_t x = 1; x <= kStrip; ++x)
        next[x] = 0.25 * field[i][x - 1] + 0.5 * field[i][x] +
                  0.25 * field[i][x + 1];
      field[i] = std::move(next);
    }
  }

  double total = 0;
  for (NodeId i = 0; i < kNodes; ++i)
    for (std::size_t x = 1; x <= kStrip; ++x) total += field[i][x];
  std::printf("halo exchange: %zu nodes x %d iterations, %.2f us simulated\n",
              kNodes, kIters, to_usec(world.now()));
  std::printf("heat conserved: total=%.3f (expected ~%.3f)\n", total,
              100.0 * (1 + 2 + 3 + 4));
  std::uint64_t packets = 0, frags = 0;
  for (NodeId i = 0; i < kNodes; ++i) {
    packets += world.node(i).stats().counter("tx.packets");
    frags += world.node(i).stats().counter("tx.frags");
  }
  std::printf("network: %llu fragments in %llu packets (%.2f frags/packet "
              "— each halo's header+payload fragments share one packet)\n",
              static_cast<unsigned long long>(frags),
              static_cast<unsigned long long>(packets),
              static_cast<double>(frags) / static_cast<double>(packets));
  return 0;
}
