// Multirail bulk transfer over heterogeneous rails (paper §2: "dynamic load
// balancing on multiple resources, multiple NICs, or even NICs from
// multiple technologies"): one Myrinet/MX rail + one Quadrics/Elan rail,
// comparing the three bulk distribution policies.
//
// Build & run:  ./build/examples/multirail_transfer
#include <cstdio>

#include "core/world.hpp"
#include "drivers/profiles.hpp"

using namespace mado;
using namespace mado::core;

namespace {

double run_mbps(MultirailPolicy policy, std::size_t bytes) {
  EngineConfig cfg;
  cfg.multirail = policy;
  cfg.rdv_chunk = 64 * 1024;
  cfg.rdv_threshold_override = 32 * 1024;
  SimWorld world(2, cfg);
  world.connect(0, 1, drv::mx_myrinet_profile());    // ~250 MB/s
  world.connect(0, 1, drv::elan_quadrics_profile()); // ~900 MB/s

  Channel tx = world.node(0).open_channel(1, 7, TrafficClass::Bulk);
  Channel rx = world.node(1).open_channel(0, 7, TrafficClass::Bulk);

  Bytes data(bytes, Byte{0x42});
  Message m;
  m.pack(data.data(), data.size(), SendMode::Later);
  tx.post(std::move(m));

  Bytes out(bytes);
  IncomingMessage im = rx.begin_recv();
  const Nanos t0 = world.now();
  im.unpack(out.data(), out.size(), RecvMode::Cheaper);
  im.finish();
  const Nanos dt = world.now() - t0;
  return static_cast<double>(bytes) / to_usec(dt);  // bytes/us == MB/s
}

const char* name_of(MultirailPolicy p) {
  switch (p) {
    case MultirailPolicy::SingleRail: return "single-rail";
    case MultirailPolicy::StaticSplit: return "static-split";
    case MultirailPolicy::DynamicSplit: return "dynamic-split";
    case MultirailPolicy::Stripe: return "stripe";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("bulk transfer over MX (250 MB/s) + Elan (900 MB/s) rails\n\n");
  std::printf("%-14s", "size");
  for (auto p : {MultirailPolicy::SingleRail, MultirailPolicy::StaticSplit,
                 MultirailPolicy::DynamicSplit})
    std::printf(" %14s", name_of(p));
  std::printf("   (MB/s)\n");
  for (std::size_t bytes : {256u << 10, 1u << 20, 4u << 20, 8u << 20}) {
    std::printf("%10zu KiB", bytes >> 10);
    for (auto p : {MultirailPolicy::SingleRail, MultirailPolicy::StaticSplit,
                   MultirailPolicy::DynamicSplit})
      std::printf(" %14.1f", run_mbps(p, bytes));
    std::printf("\n");
  }
  std::printf(
      "\nsingle-rail is capped by the Bulk class's rail; the split policies "
      "approach the 1150 MB/s aggregate,\nwith dynamic-split pulling chunks "
      "onto whichever NIC goes idle first (no per-technology tuning).\n");
  return 0;
}
