// mado_perf: NetPIPE-style command-line microbenchmark driver — the kind of
// tool Madeleine-family papers measured with, exposed over this engine.
//
// Patterns:
//   pingpong   half round-trip latency vs message size
//   stream     one-way bandwidth vs message size
//   multiflow  N flows of small messages: transactions + completion time
//   putget     one-sided put/get latency vs size
//   allreduce  collective completion vs node count
//
// Usage examples:
//   ./build/examples/mado_perf pingpong --profile mx --strategy aggreg
//   ./build/examples/mado_perf stream --profile elan --min 1024 --max 4194304
//   ./build/examples/mado_perf multiflow --flows 16 --msgs 50 --size 64
//       (add --strategy fifo to compare with the baseline)
//   ./build/examples/mado_perf multiflow --transport socket   (real bytes)
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "core/stats_sampler.hpp"
#include "mado.hpp"
#include "mw/collectives.hpp"
#include "util/flags.hpp"

using namespace mado;
using namespace mado::core;

namespace {

struct Setup {
  EngineConfig cfg;
  drv::Capabilities caps;
  bool socket = false;
};

Setup parse_setup(const Flags& flags) {
  Setup s;
  s.cfg.strategy = flags.get("strategy", "aggreg");
  s.cfg.lookahead_window =
      static_cast<std::size_t>(flags.get_int("window", 16));
  s.cfg.eval_budget = static_cast<std::size_t>(flags.get_int("budget", 64));
  s.cfg.nagle_delay = usec(flags.get_double("nagle-us", 0.0));
  s.caps = drv::profile_by_name(flags.get("profile", "mx"));
  s.socket = flags.get("transport", "sim") == "socket";
  return s;
}

void run_pingpong(const Setup& s, std::size_t min_size, std::size_t max_size,
                  int rounds) {
  std::printf("# pingpong  profile=%s strategy=%s transport=%s\n",
              s.caps.name.c_str(), s.cfg.strategy.c_str(),
              s.socket ? "socket" : "sim");
  std::printf("%12s %16s\n", "size(B)", "half-RTT(us)");
  for (std::size_t size = min_size; size <= max_size; size *= 2) {
    double half_rtt_us;
    if (s.socket) {
      SocketWorld w(s.cfg, s.caps);
      Channel a = w.node(0).open_channel(1, 7);
      Channel b = w.node(1).open_channel(0, 7);
      Bytes data(size, Byte{1}), out(size);
      SteadyClock clock;
      const Nanos t0 = clock.now();
      for (int i = 0; i < rounds; ++i) {
        Message m;
        m.pack(data.data(), size, SendMode::Later);
        a.post(std::move(m));
        IncomingMessage im = b.begin_recv();
        im.unpack(out.data(), size, RecvMode::Express);
        im.finish();
        Message r;
        r.pack(out.data(), size, SendMode::Later);
        b.post(std::move(r));
        IncomingMessage im2 = a.begin_recv();
        im2.unpack(out.data(), size, RecvMode::Express);
        im2.finish();
      }
      half_rtt_us = to_usec(clock.now() - t0) / (2.0 * rounds);
    } else {
      SimWorld w(2, s.cfg);
      w.connect(0, 1, s.caps);
      Channel a = w.node(0).open_channel(1, 7);
      Channel b = w.node(1).open_channel(0, 7);
      Bytes data(size, Byte{1}), out(size);
      const Nanos t0 = w.now();
      for (int i = 0; i < rounds; ++i) {
        Message m;
        m.pack(data.data(), size, SendMode::Later);
        a.post(std::move(m));
        IncomingMessage im = b.begin_recv();
        im.unpack(out.data(), size, RecvMode::Express);
        im.finish();
        Message r;
        r.pack(out.data(), size, SendMode::Later);
        b.post(std::move(r));
        IncomingMessage im2 = a.begin_recv();
        im2.unpack(out.data(), size, RecvMode::Express);
        im2.finish();
      }
      half_rtt_us = to_usec(w.now() - t0) / (2.0 * rounds);
    }
    std::printf("%12zu %16.3f\n", size, half_rtt_us);
  }
}

void run_stream(const Setup& s, std::size_t min_size, std::size_t max_size,
                std::size_t total) {
  std::printf("# stream  profile=%s strategy=%s\n", s.caps.name.c_str(),
              s.cfg.strategy.c_str());
  std::printf("%12s %14s\n", "size(B)", "MB/s");
  for (std::size_t size = min_size; size <= max_size; size *= 2) {
    SimWorld w(2, s.cfg);
    w.connect(0, 1, s.caps);
    Channel a = w.node(0).open_channel(1, 7);
    Channel b = w.node(1).open_channel(0, 7);
    const std::size_t n = std::max<std::size_t>(1, total / size);
    Bytes data(size, Byte{1}), out(size);
    for (std::size_t i = 0; i < n; ++i) {
      Message m;
      m.pack(data.data(), size, SendMode::Later);
      a.post(std::move(m));
    }
    for (std::size_t i = 0; i < n; ++i) {
      IncomingMessage im = b.begin_recv();
      im.unpack(out.data(), size, RecvMode::Express);
      im.finish();
    }
    w.node(0).flush();
    std::printf("%12zu %14.1f\n", size,
                static_cast<double>(n * size) / to_usec(w.now()));
  }
}

/// Write a sampler time series to `path` (JSON when the path ends in
/// ".json", CSV otherwise). Returns false on IO failure.
bool write_stats_series(const StatsSampler& sampler, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  out << (json ? sampler.to_json() : sampler.to_csv());
  return static_cast<bool>(out.flush());
}

void run_multiflow(const Setup& s, std::size_t flows, int msgs,
                   std::size_t size, Nanos sample_interval,
                   const std::string& stats_out) {
  std::printf("# multiflow  flows=%zu msgs=%d size=%zu strategy=%s\n", flows,
              msgs, size, s.cfg.strategy.c_str());
  SimWorld w(2, s.cfg);
  w.connect(0, 1, s.caps);
  // Periodic counter sampling in virtual time: every tick lands at an exact
  // multiple of the interval, so the series is deterministic.
  std::unique_ptr<StatsSampler> sampler;
  if (sample_interval > 0) {
    sampler = std::make_unique<StatsSampler>(w.node(0), sample_interval);
    sampler->start();
  }
  std::vector<Channel> tx, rx;
  for (ChannelId f = 0; f < flows; ++f) {
    tx.push_back(w.node(0).open_channel(1, f));
    rx.push_back(w.node(1).open_channel(0, f));
  }
  Bytes data(size, Byte{1}), out(size);
  for (int i = 0; i < msgs; ++i)
    for (auto& ch : tx) {
      Message m;
      m.pack(data.data(), size, SendMode::Safe);
      ch.post(std::move(m));
    }
  for (int i = 0; i < msgs; ++i)
    for (auto& ch : rx) {
      IncomingMessage im = ch.begin_recv();
      im.unpack(out.data(), size, RecvMode::Express);
      im.finish();
    }
  w.node(0).flush();
  if (sampler) sampler->stop();
  auto& st = w.node(0).stats();
  std::printf("completion      %12.1f us\n", to_usec(w.now()));
  std::printf("transactions    %12llu\n",
              static_cast<unsigned long long>(st.counter("tx.packets")));
  std::printf("frags/packet    %12.2f\n",
              static_cast<double>(st.counter("tx.frags")) /
                  static_cast<double>(st.counter("tx.packets")));
  if (const auto* h = st.histogram("lat.complete.small_eager")) {
    std::printf("msg latency     p50<=%llu ns  p99<=%llu ns  (n=%llu)\n",
                static_cast<unsigned long long>(h->quantile_upper_bound(0.50)),
                static_cast<unsigned long long>(h->quantile_upper_bound(0.99)),
                static_cast<unsigned long long>(h->count()));
  }
  if (sampler) {
    std::printf("sampler         %12zu ticks every %.1f us\n",
                sampler->samples().size(), to_usec(sampler->interval()));
    if (!stats_out.empty()) {
      if (!write_stats_series(*sampler, stats_out)) {
        std::fprintf(stderr, "failed to write %s\n", stats_out.c_str());
      } else {
        std::printf("wrote %s\n", stats_out.c_str());
      }
    }
  }
}

/// One-way stream throughput over an already-built threaded world
/// (SocketWorld or UdpWorld): post everything, drain everything, wall clock.
template <typename World>
double stream_mbps(World& w, std::size_t size, std::size_t total) {
  Channel a = w.node(0).open_channel(1, 7);
  Channel b = w.node(1).open_channel(0, 7);
  const std::size_t n = std::max<std::size_t>(1, total / size);
  Bytes data(size, Byte{1}), out(size);
  SteadyClock clock;
  const Nanos t0 = clock.now();
  for (std::size_t i = 0; i < n; ++i) {
    Message m;
    m.pack(data.data(), size, SendMode::Safe);
    a.post(std::move(m));
  }
  for (std::size_t i = 0; i < n; ++i) {
    IncomingMessage im = b.begin_recv();
    im.unpack(out.data(), size, RecvMode::Express);
    im.finish();
  }
  w.node(0).flush();
  return static_cast<double>(n * size) / to_usec(clock.now() - t0);
}

/// Real-datagram benchmark: per-size throughput over UDP loopback against
/// the socketpair transport as the clean-link baseline, plus a node×flow
/// sweep (engine pairs × channels per pair) of small-message transactions.
/// Emits a JSON artifact via --out; the 4 KiB throughput ratio gates CI
/// (UDP must stay within 20% of socketpair) unless --no-assert.
int run_udp(const Setup& s, std::size_t min_size, std::size_t max_size,
            std::size_t total, int msgs, const std::string& out_path,
            bool assert_ratio) {
  EngineConfig cfg = s.cfg;
  cfg.reliability = true;  // both transports run the same engine stack
  std::printf("# udp  strategy=%s total=%zu\n", cfg.strategy.c_str(), total);
  std::printf("%12s %14s %14s %8s\n", "size(B)", "udp(MB/s)", "socket(MB/s)",
              "ratio");
  struct Row {
    std::size_t size;
    double udp_mbps, socket_mbps;
  };
  std::vector<Row> rows;
  double gate_ratio = -1.0;
  for (std::size_t size = std::max<std::size_t>(min_size, 1024);
       size <= max_size; size *= 4) {
    double udp_mbps, socket_mbps;
    {
      UdpWorld w(cfg);
      udp_mbps = stream_mbps(w, size, total);
    }
    {
      SocketWorld w(cfg, s.caps);
      socket_mbps = stream_mbps(w, size, total);
    }
    const double ratio = udp_mbps / socket_mbps;
    if (size == 4096) gate_ratio = ratio;
    std::printf("%12zu %14.1f %14.1f %8.2f\n", size, udp_mbps, socket_mbps,
                ratio);
    rows.push_back({size, udp_mbps, socket_mbps});
  }

  // Node×flow sweep: `pairs` independent engine pairs (each with its own
  // UDP sockets and epoll loop) × `flows` channels per pair, small
  // messages, one completion clock over everything.
  std::printf("%8s %8s %14s %16s\n", "pairs", "flows", "msgs/s",
              "completion(us)");
  struct FlowRow {
    std::size_t pairs, flows;
    double msgs_per_sec, completion_us;
  };
  std::vector<FlowRow> flow_rows;
  for (std::size_t pairs = 1; pairs <= 2; ++pairs) {
    for (std::size_t flows = 1; flows <= 8; flows *= 2) {
      std::vector<std::unique_ptr<UdpWorld>> worlds;
      for (std::size_t p = 0; p < pairs; ++p)
        worlds.push_back(std::make_unique<UdpWorld>(cfg));
      std::vector<Channel> tx, rx;
      for (auto& w : worlds)
        for (ChannelId f = 0; f < flows; ++f) {
          tx.push_back(w->node(0).open_channel(1, f));
          rx.push_back(w->node(1).open_channel(0, f));
        }
      Bytes data(64, Byte{1}), out(64);
      SteadyClock clock;
      const Nanos t0 = clock.now();
      for (int i = 0; i < msgs; ++i)
        for (auto& ch : tx) {
          Message m;
          m.pack(data.data(), data.size(), SendMode::Safe);
          ch.post(std::move(m));
        }
      for (int i = 0; i < msgs; ++i)
        for (auto& ch : rx) {
          IncomingMessage im = ch.begin_recv();
          im.unpack(out.data(), out.size(), RecvMode::Express);
          im.finish();
        }
      for (auto& w : worlds) w->node(0).flush();
      const double us = to_usec(clock.now() - t0);
      const double rate =
          static_cast<double>(pairs * flows) * msgs / (us / 1e6);
      std::printf("%8zu %8zu %14.0f %16.1f\n", pairs, flows, rate, us);
      flow_rows.push_back({pairs, flows, rate, us});
    }
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    out << "{\n  \"pattern\": \"udp\",\n  \"throughput\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"size\": " << r.size << ", \"udp_mbps\": " << r.udp_mbps
          << ", \"socket_mbps\": " << r.socket_mbps
          << ", \"ratio\": " << r.udp_mbps / r.socket_mbps << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"node_flow_sweep\": [\n";
    for (std::size_t i = 0; i < flow_rows.size(); ++i) {
      const FlowRow& r = flow_rows[i];
      out << "    {\"pairs\": " << r.pairs << ", \"flows\": " << r.flows
          << ", \"msgs_per_sec\": " << r.msgs_per_sec
          << ", \"completion_us\": " << r.completion_us << "}"
          << (i + 1 < flow_rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!out.flush()) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (assert_ratio && gate_ratio >= 0 && gate_ratio < 0.8) {
    std::fprintf(stderr,
                 "FAIL: UDP 4KiB throughput is %.2fx socketpair "
                 "(floor 0.80)\n",
                 gate_ratio);
    return 1;
  }
  return 0;
}

void run_putget(const Setup& s, std::size_t min_size, std::size_t max_size) {
  std::printf("# putget  profile=%s strategy=%s\n", s.caps.name.c_str(),
              s.cfg.strategy.c_str());
  std::printf("%12s %14s %14s\n", "size(B)", "put(us)", "get(us)");
  for (std::size_t size = min_size; size <= max_size; size *= 4) {
    SimWorld w(2, s.cfg);
    w.connect(0, 1, s.caps);
    Bytes window(size, Byte{0});
    w.node(1).expose_window(1, window.data(), window.size());
    Bytes data(size, Byte{1}), out(size);
    constexpr int kRounds = 10;
    const Nanos t0 = w.now();
    for (int i = 0; i < kRounds; ++i)
      w.node(0).wait_send(w.node(0).rma_put(1, 1, 0, data.data(), size));
    const Nanos t1 = w.now();
    for (int i = 0; i < kRounds; ++i)
      w.node(0).wait_send(w.node(0).rma_get(1, 1, 0, out.data(), size));
    const Nanos t2 = w.now();
    std::printf("%12zu %14.3f %14.3f\n", size, to_usec(t1 - t0) / kRounds,
                to_usec(t2 - t1) / kRounds);
  }
}

void run_allreduce(const Setup& s, std::size_t max_nodes, std::size_t elems) {
  std::printf("# allreduce  profile=%s strategy=%s elems=%zu\n",
              s.caps.name.c_str(), s.cfg.strategy.c_str(), elems);
  std::printf("%8s %16s\n", "nodes", "completion(us)");
  for (std::size_t n = 2; n <= max_nodes; n *= 2) {
    SimWorld w(n, s.cfg);
    for (std::size_t a = 0; a < n; ++a)
      for (std::size_t b = a + 1; b < n; ++b)
        w.connect(static_cast<NodeId>(a), static_cast<NodeId>(b), s.caps);
    std::vector<std::unique_ptr<mw::Collectives>> colls;
    for (std::size_t r = 0; r < n; ++r)
      colls.push_back(std::make_unique<mw::Collectives>(
          w.node(static_cast<NodeId>(r)),
          static_cast<mw::Collectives::Rank>(r),
          static_cast<mw::Collectives::Rank>(n)));
    std::vector<std::vector<double>> in(n, std::vector<double>(elems, 1.0));
    std::vector<std::vector<double>> out(n, std::vector<double>(elems, 0.0));
    std::vector<std::unique_ptr<mw::Collectives::Op>> ops;
    for (std::size_t r = 0; r < n; ++r)
      ops.push_back(
          colls[r]->allreduce_sum(in[r].data(), out[r].data(), elems));
    std::vector<mw::Collectives::Op*> raw;
    for (auto& op : ops) raw.push_back(op.get());
    mw::drive_all([&w] { return w.fabric().step(); }, raw);
    std::printf("%8zu %16.1f\n", n, to_usec(w.now()));
  }
}

void usage() {
  std::printf(
      "usage: mado_perf <pingpong|stream|multiflow|putget|allreduce|udp> "
      "[options]\n"
      "  --profile mx|elan|tcp|test   driver capability profile\n"
      "  --strategy NAME              fifo|aggreg|aggreg_exhaustive|nagle|"
      "adaptive\n"
      "  --window N --budget K --nagle-us D\n"
      "  --min B --max B              size sweep bounds\n"
      "  --flows N --msgs N --size B  multiflow shape\n"
      "  --sample-us D --stats-out F  multiflow: periodic counter sampling\n"
      "                               (F ending in .json → JSON, else CSV)\n"
      "  --transport sim|socket       (pingpong/multiflow: sim only for "
      "multiflow)\n"
      "  udp: real-datagram sweep vs socketpair baseline + node×flow grid\n"
      "  --total B --msgs N --out F   udp: bytes per size, flow msgs, JSON\n"
      "  --no-assert                  udp: skip the 4KiB ≥0.8 ratio gate\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.positional().empty()) {
    usage();
    return 2;
  }
  const Setup s = parse_setup(flags);
  const std::string pattern = flags.positional()[0];
  const auto min_size =
      static_cast<std::size_t>(flags.get_int("min", 4));
  const auto max_size =
      static_cast<std::size_t>(flags.get_int("max", 1 << 20));
  if (pattern == "pingpong") {
    run_pingpong(s, min_size, max_size,
                 static_cast<int>(flags.get_int("rounds", 20)));
  } else if (pattern == "stream") {
    run_stream(s, std::max<std::size_t>(min_size, 64), max_size,
               static_cast<std::size_t>(flags.get_int("total", 16 << 20)));
  } else if (pattern == "multiflow") {
    run_multiflow(s, static_cast<std::size_t>(flags.get_int("flows", 8)),
                  static_cast<int>(flags.get_int("msgs", 50)),
                  static_cast<std::size_t>(flags.get_int("size", 64)),
                  usec(flags.get_double("sample-us", 0.0)),
                  flags.get("stats-out"));
  } else if (pattern == "udp") {
    return run_udp(s, std::max<std::size_t>(min_size, 1024),
                   std::min<std::size_t>(max_size, 1 << 20),
                   static_cast<std::size_t>(flags.get_int("total", 8 << 20)),
                   static_cast<int>(flags.get_int("msgs", 200)),
                   flags.get("out"), !flags.get_bool("no-assert", false));
  } else if (pattern == "putget") {
    run_putget(s, std::max<std::size_t>(min_size, 64), max_size);
  } else if (pattern == "allreduce") {
    run_allreduce(s, static_cast<std::size_t>(flags.get_int("nodes", 16)),
                  static_cast<std::size_t>(flags.get_int("elems", 256)));
  } else {
    usage();
    return 2;
  }
  return 0;
}
