// The paper's motivating scenario (§1): a "complex conglomerate of multiple
// communication middlewares" — MPI-style, RPC and DSM flows sharing one
// pair of nodes — and how the optimizer mixes their fragments into shared
// packets.
//
// Runs the same workload under the previous-Madeleine baseline ("fifo") and
// the dynamic optimizer ("aggreg") and prints the transaction counts.
//
// Build & run:  ./build/examples/middleware_mix
#include <cstdio>

#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "mw/dsm.hpp"
#include "mw/mini_mpi.hpp"
#include "mw/rpc.hpp"

using namespace mado;
using namespace mado::core;
using namespace mado::mw;

namespace {

struct RunResult {
  Nanos finish;
  std::uint64_t packets;
  std::uint64_t frags;
};

RunResult run(const std::string& strategy) {
  EngineConfig cfg;
  cfg.strategy = strategy;
  SimWorld world(2, cfg);
  world.connect(0, 1, drv::mx_myrinet_profile());

  // Three middlewares, three independent flows between the same two nodes.
  MpiEndpoint mpi_a(world.node(0), 1, 1);
  MpiEndpoint mpi_b(world.node(1), 0, 1);
  RpcClient rpc_client(world.node(0), 1, 2);
  RpcServer rpc_server(world.node(1), 0, 2);
  DsmClient dsm_client(world.node(0), 1, 3, /*page=*/1024);
  DsmHome dsm_home(world.node(1), 0, 3, 1024, /*pages=*/8);

  rpc_server.register_handler(1, [](ByteSpan args) {
    return Bytes(args.begin(), args.end());  // echo
  });

  // The middlewares run concurrently: every flow keeps several operations
  // in flight (as real middleware stacks do), so the collect layer holds
  // fragments from all three at once — the optimizer's opportunity.
  constexpr int kRounds = 30;
  Bytes mpi_buf(96, Byte{1});
  Bytes page(1024, Byte{2});
  std::vector<std::uint64_t> rpc_ids;
  for (int i = 0; i < kRounds; ++i) {
    mpi_a.isend(10, mpi_buf.data(), mpi_buf.size());   // MPI-like stream
    rpc_ids.push_back(rpc_client.issue(1, as_bytes(mpi_buf.data(), 32)));
    dsm_client.issue_put(static_cast<std::uint32_t>(i % 8), ByteSpan(page));
  }
  for (int i = 0; i < kRounds; ++i) {
    Bytes mpi_out(96);
    mpi_b.recv(10, mpi_out.data(), mpi_out.size());
    rpc_server.serve_one();
    dsm_home.serve_one();
  }
  for (int i = 0; i < kRounds; ++i) {
    rpc_client.collect(rpc_ids[static_cast<std::size_t>(i)]);
    dsm_client.complete_put(static_cast<std::uint32_t>(i % 8));
  }
  world.node(0).flush();
  world.node(1).flush();

  RunResult r;
  r.finish = world.now();
  r.packets = world.node(0).stats().counter("tx.packets") +
              world.node(1).stats().counter("tx.packets");
  r.frags = world.node(0).stats().counter("tx.frags") +
            world.node(1).stats().counter("tx.frags");
  return r;
}

}  // namespace

int main() {
  std::printf("middleware mix: MPI + RPC + DSM over one MX rail, 30 rounds\n\n");
  std::printf("%-22s %12s %12s %14s %12s\n", "strategy", "packets", "frags",
              "frags/packet", "time (us)");
  RunResult fifo{}, aggreg{};
  for (const char* s : {"fifo", "aggreg", "aggreg_exhaustive"}) {
    const RunResult r = run(s);
    std::printf("%-22s %12llu %12llu %14.2f %12.1f\n", s,
                static_cast<unsigned long long>(r.packets),
                static_cast<unsigned long long>(r.frags),
                static_cast<double>(r.frags) / static_cast<double>(r.packets),
                to_usec(r.finish));
    if (std::string(s) == "fifo") fifo = r;
    if (std::string(s) == "aggreg") aggreg = r;
  }
  std::printf(
      "\ncross-flow aggregation sent %.1fx fewer network transactions and "
      "finished %.2fx faster\n",
      static_cast<double>(fifo.packets) / static_cast<double>(aggreg.packets),
      static_cast<double>(fifo.finish) / static_cast<double>(aggreg.finish));
  return 0;
}
