// E6 — paper §2: "dynamic load balancing on multiple resources, multiple
// NICs, or even NICs from multiple technologies."
//
// Workload: one rendezvous bulk transfer over a heterogeneous pair of rails
// (MX/Myrinet ≈ 250 MB/s + Elan/Quadrics ≈ 900 MB/s), under the three bulk
// distribution policies.
//
// Expected shape: single-rail caps at the chosen rail's bandwidth;
// static-split approaches the 1150 MB/s aggregate for large transfers;
// dynamic-split matches or beats static (it adapts chunk by chunk without
// knowing the rails' speeds) — dynamic ≥ static > single.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

namespace {

using namespace mado;
using namespace mado::bench;

double run_bulk_mbps(core::MultirailPolicy policy, std::size_t bytes) {
  EngineConfig cfg;
  cfg.multirail = policy;
  cfg.rdv_chunk = 64 * 1024;
  cfg.rdv_threshold_override = 32 * 1024;
  SimWorld w(2, cfg);
  w.connect(0, 1, drv::mx_myrinet_profile());
  w.connect(0, 1, drv::elan_quadrics_profile());
  core::Channel tx = w.node(0).open_channel(1, 7, core::TrafficClass::Bulk);
  core::Channel rx = w.node(1).open_channel(0, 7, core::TrafficClass::Bulk);
  Bytes data = payload(bytes);
  post_bytes(tx, data, core::SendMode::Later);
  Bytes out(bytes);
  recv_into(rx, out);
  w.node(0).flush();
  return static_cast<double>(bytes) / to_usec(w.now());
}

const char* kPolicyNames[] = {"single-rail", "static-split", "dynamic-split"};
const core::MultirailPolicy kPolicies[] = {
    core::MultirailPolicy::SingleRail, core::MultirailPolicy::StaticSplit,
    core::MultirailPolicy::DynamicSplit};

void BM_E6_Multirail(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const auto policy = kPolicies[state.range(1)];
  double mbps = 0;
  for (auto _ : state) mbps = run_bulk_mbps(policy, bytes);
  state.counters["MBps"] = mbps;
  state.counters["size_KiB"] = static_cast<double>(bytes >> 10);
  state.SetLabel(kPolicyNames[state.range(1)]);
}

}  // namespace

BENCHMARK(BM_E6_Multirail)
    ->ArgsProduct({{256 << 10, 1 << 20, 4 << 20, 8 << 20}, {0, 1, 2}})
    ->ArgNames({"bytes", "policy"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
