// E6 — paper §2: "dynamic load balancing on multiple resources, multiple
// NICs, or even NICs from multiple technologies."
//
// Workload: one rendezvous bulk transfer over a heterogeneous pair of rails
// (MX/Myrinet ≈ 250 MB/s + Elan/Quadrics ≈ 900 MB/s), under the three bulk
// distribution policies.
//
// Expected shape: single-rail caps at the chosen rail's bandwidth;
// static-split approaches the 1150 MB/s aggregate for large transfers;
// dynamic-split matches or beats static (it adapts chunk by chunk without
// knowing the rails' speeds) — dynamic ≥ static > single.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"

namespace {

using namespace mado;
using namespace mado::bench;

double run_rails_mbps(core::MultirailPolicy policy, std::size_t bytes,
                      const std::vector<drv::Capabilities>& rails) {
  EngineConfig cfg;
  cfg.multirail = policy;
  cfg.rdv_chunk = 64 * 1024;
  cfg.rdv_threshold_override = 32 * 1024;
  SimWorld w(2, cfg);
  for (const auto& caps : rails) w.connect(0, 1, caps);
  core::Channel tx = w.node(0).open_channel(1, 7, core::TrafficClass::Bulk);
  core::Channel rx = w.node(1).open_channel(0, 7, core::TrafficClass::Bulk);
  Bytes data = payload(bytes);
  post_bytes(tx, data, core::SendMode::Later);
  Bytes out(bytes);
  recv_into(rx, out);
  w.node(0).flush();
  return static_cast<double>(bytes) / to_usec(w.now());
}

double run_bulk_mbps(core::MultirailPolicy policy, std::size_t bytes) {
  return run_rails_mbps(
      policy, bytes,
      {drv::mx_myrinet_profile(), drv::elan_quadrics_profile()});
}

const char* kPolicyNames[] = {"single-rail", "static-split", "dynamic-split"};
const core::MultirailPolicy kPolicies[] = {
    core::MultirailPolicy::SingleRail, core::MultirailPolicy::StaticSplit,
    core::MultirailPolicy::DynamicSplit};

void BM_E6_Multirail(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const auto policy = kPolicies[state.range(1)];
  double mbps = 0;
  for (auto _ : state) mbps = run_bulk_mbps(policy, bytes);
  state.counters["MBps"] = mbps;
  state.counters["size_KiB"] = static_cast<double>(bytes >> 10);
  state.SetLabel(kPolicyNames[state.range(1)]);
}

// ---- Heterogeneous striping sweep -----------------------------------------
//
// Rails of deliberately skewed speed: 10:1, 4:1 and the 2:1 "10G + 5G" pair
// (1250 / 625 bytes per µs). Rail 0 is the SLOW rail on purpose — the
// default class map pins Bulk to rail 0, so "pinned" below is exactly what
// a transfer gets today with no striping and no manual rail choice.
//
// Each configuration emits one machine-readable JSON line on stdout and the
// run *asserts* (via SkipWithError, which fails the bench):
//   * stripe ≥ 90% of the ideal sum of the two solo-rail bandwidths;
//   * stripe ≥ 1.5× the single-rail-pinned baseline;
//   * Stripe on ONE rail is within 2% of the pre-stripe SingleRail
//     baseline (the policy must degenerate cleanly).

struct RatePair {
  const char* name;
  double slow;  // bytes/µs of rail 0
  double fast;  // bytes/µs of rail 1
};
constexpr RatePair kRatios[] = {
    {"10:1", 125.0, 1250.0},
    {"4:1", 312.0, 1250.0},
    {"2:1(10G+5G)", 625.0, 1250.0},
};

drv::Capabilities rail_at(double bytes_per_us, const char* name) {
  drv::Capabilities caps = drv::elan_quadrics_profile();
  caps.name = name;
  caps.cost.link_bytes_per_us = bytes_per_us;
  caps.bandwidth_hint_bytes_per_us = 0.0;  // plan from the cost model
  return caps;
}

void BM_E6_HeteroStripe(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const RatePair& rp = kRatios[state.range(1)];
  const drv::Capabilities slow = rail_at(rp.slow, "slow");
  const drv::Capabilities fast = rail_at(rp.fast, "fast");

  double stripe = 0, pinned = 0, solo_slow = 0, solo_fast = 0;
  double one_rail_stripe = 0;
  for (auto _ : state) {
    stripe = run_rails_mbps(core::MultirailPolicy::Stripe, bytes,
                            {slow, fast});
    pinned = run_rails_mbps(core::MultirailPolicy::SingleRail, bytes,
                            {slow, fast});
    solo_slow =
        run_rails_mbps(core::MultirailPolicy::SingleRail, bytes, {slow});
    solo_fast =
        run_rails_mbps(core::MultirailPolicy::SingleRail, bytes, {fast});
    one_rail_stripe =
        run_rails_mbps(core::MultirailPolicy::Stripe, bytes, {fast});
  }
  const double ideal = solo_slow + solo_fast;
  const double efficiency = stripe / ideal;
  const double speedup = stripe / pinned;
  const double one_rail_delta = one_rail_stripe / solo_fast - 1.0;

  state.counters["stripe_MBps"] = stripe;
  state.counters["pinned_MBps"] = pinned;
  state.counters["ideal_MBps"] = ideal;
  state.counters["efficiency"] = efficiency;
  state.counters["speedup_vs_pinned"] = speedup;
  state.SetLabel(rp.name);

  std::printf(
      "{\"bench\":\"e6_hetero\",\"ratio\":\"%s\",\"bytes\":%zu,"
      "\"stripe_MBps\":%.1f,\"pinned_MBps\":%.1f,\"solo_slow_MBps\":%.1f,"
      "\"solo_fast_MBps\":%.1f,\"ideal_MBps\":%.1f,\"efficiency\":%.3f,"
      "\"speedup_vs_pinned\":%.2f,\"one_rail_stripe_MBps\":%.1f,"
      "\"one_rail_delta\":%.4f}\n",
      rp.name, bytes, stripe, pinned, solo_slow, solo_fast, ideal,
      efficiency, speedup, one_rail_stripe, one_rail_delta);

  if (efficiency < 0.90)
    state.SkipWithError("striping delivered < 90% of the ideal rail sum");
  if (speedup < 1.5)
    state.SkipWithError("striping < 1.5x over single-rail pinning");
  if (one_rail_delta < -0.02 || one_rail_delta > 0.02)
    state.SkipWithError(
        "Stripe on one rail is not within 2% of the SingleRail baseline");
}

}  // namespace

BENCHMARK(BM_E6_Multirail)
    ->ArgsProduct({{256 << 10, 1 << 20, 4 << 20, 8 << 20}, {0, 1, 2}})
    ->ArgNames({"bytes", "policy"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_E6_HeteroStripe)
    ->ArgsProduct({{4 << 20, 16 << 20}, {0, 1, 2}})
    ->ArgNames({"bytes", "ratio"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
