// E7 — paper §3: "If the NIC never stays busy long enough for packets to
// accumulate, the scheduler may ... artificially delay them for a short
// time to increase the potential of interesting aggregations (in a TCP
// Nagle's algorithm fashion)."
//
// Workload: 4 flows with staggered sparse submissions (one 64 B message per
// flow every 3 µs — longer than the NIC's busy time, so the backlog never
// builds naturally). The artificial delay D is swept.
//
// Expected shape: the classic Nagle tradeoff — as D grows, network
// transactions drop (more aggregation) while mean per-message latency
// rises by roughly D; D = 0 gives minimal latency and zero aggregation.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

namespace {

using namespace mado;
using namespace mado::bench;

struct E7Result {
  std::uint64_t packets = 0;
  double mean_latency_us = 0;
};

E7Result run_sparse(Nanos delay, const char* strategy = "nagle") {
  EngineConfig cfg;
  cfg.strategy = strategy;
  cfg.nagle_delay = delay;
  SimWorld w(2, cfg);
  w.connect(0, 1, drv::mx_myrinet_profile());
  constexpr std::size_t kFlows = 4;
  constexpr int kMsgs = 40;
  constexpr Nanos kInterArrival = usec(3);
  std::vector<core::Channel> tx, rx;
  for (std::size_t f = 0; f < kFlows; ++f) {
    tx.push_back(w.node(0).open_channel(1, static_cast<core::ChannelId>(f)));
    rx.push_back(w.node(1).open_channel(0, static_cast<core::ChannelId>(f)));
  }
  // Schedule sparse submissions in virtual time: flow f submits message i
  // at t = i*3µs + f*0.4µs (staggered so a short delay can capture peers).
  std::vector<std::vector<Nanos>> submit_at(kFlows,
                                            std::vector<Nanos>(kMsgs));
  for (int i = 0; i < kMsgs; ++i)
    for (std::size_t f = 0; f < kFlows; ++f) {
      const Nanos t = static_cast<Nanos>(i) * kInterArrival +
                      static_cast<Nanos>(f) * (usec(1) * 2 / 5);
      submit_at[f][static_cast<std::size_t>(i)] = t;
      w.fabric().post_at(t, [&w, &tx, f] {
        Bytes data = payload(64);
        post_bytes(tx[f], data);
      });
    }
  // Receive in global submit order (flow-major inner loop) and accumulate
  // latency = completion virtual time - submit time.
  double total_latency = 0;
  Bytes out(64);
  for (int i = 0; i < kMsgs; ++i)
    for (std::size_t f = 0; f < kFlows; ++f) {
      recv_into(rx[f], out);
      total_latency +=
          to_usec(w.now() - submit_at[f][static_cast<std::size_t>(i)]);
    }
  w.node(0).flush();
  E7Result r;
  r.packets = w.node(0).stats().counter("tx.packets");
  r.mean_latency_us = total_latency / (kFlows * kMsgs);
  return r;
}

void BM_E7_Nagle(benchmark::State& state) {
  const Nanos delay = usec(static_cast<double>(state.range(0)) / 10.0);
  E7Result r;
  for (auto _ : state) r = run_sparse(delay);
  state.counters["delay_us"] = static_cast<double>(state.range(0)) / 10.0;
  state.counters["net_transactions"] = static_cast<double>(r.packets);
  state.counters["mean_latency_us"] = r.mean_latency_us;
}

// The adaptive strategy senses the inter-arrival gap itself: on this
// workload (cross-flow gaps ≈ 0.75 µs, well inside its hold window) it
// should land near the nagle D=2µs point — fewer transactions at a modest
// latency cost — while on truly idle links it would charge no delay at all.
void BM_E7_Adaptive(benchmark::State& state) {
  E7Result r;
  for (auto _ : state) r = run_sparse(usec(2), "adaptive");
  state.counters["net_transactions"] = static_cast<double>(r.packets);
  state.counters["mean_latency_us"] = r.mean_latency_us;
  state.SetLabel("adaptive");
}

}  // namespace

// Delay in tenths of a microsecond: 0, 0.5, 1, 2, 4, 8 µs.
BENCHMARK(BM_E7_Nagle)
    ->Arg(0)->Arg(5)->Arg(10)->Arg(20)->Arg(40)->Arg(80)
    ->ArgNames({"delay_tenth_us"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_E7_Adaptive)->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
