// A2 — one-sided put/get characterization (extension; the paper names
// "put/get transfers" as a traffic class and lists remote memory access
// among the protocol choices, but does not evaluate them).
//
// Compared: one-sided put (remote completion: handle completes on the
// target's ack) and get vs. the two-sided send/recv path, across sizes
// spanning the eager → rendezvous transition, MX profile.
//
// Expected shape: small puts cost ~1 RTT (data + ack) like an eager
// send+recv turnaround; large puts/gets track the rendezvous bandwidth of
// two-sided transfers since they share the same bulk machinery; one-sided
// needs no receiver involvement (the target engine answers by itself).
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

namespace {

using namespace mado;
using namespace mado::bench;

enum class Op { Put, Get, SendRecv };
const char* kOpNames[] = {"put", "get", "send_recv"};

double run_op_us(Op op, std::size_t size, int rounds) {
  SimWorld w(2, EngineConfig{});
  w.connect(0, 1, drv::mx_myrinet_profile());
  Bytes window(std::max<std::size_t>(size, 1) , Byte{0});
  w.node(1).expose_window(1, window.data(), window.size());
  core::Channel tx = w.node(0).open_channel(1, 7);
  core::Channel rx = w.node(1).open_channel(0, 7);
  Bytes data = payload(size);
  Bytes out(size);
  const Nanos t0 = w.now();
  for (int i = 0; i < rounds; ++i) {
    switch (op) {
      case Op::Put:
        w.node(0).wait_send(w.node(0).rma_put(1, 1, 0, data.data(), size));
        break;
      case Op::Get:
        w.node(0).wait_send(w.node(0).rma_get(1, 1, 0, out.data(), size));
        break;
      case Op::SendRecv:
        post_bytes(tx, data, core::SendMode::Later);
        recv_into(rx, out);
        break;
    }
  }
  return to_usec(w.now() - t0) / rounds;
}

void BM_A2_PutGet(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto op = static_cast<Op>(state.range(1));
  double us = 0;
  for (auto _ : state) us = run_op_us(op, size, /*rounds=*/10);
  state.counters["op_us"] = us;
  state.counters["MBps"] = static_cast<double>(size) / us;
  state.SetLabel(kOpNames[state.range(1)]);
}

}  // namespace

BENCHMARK(BM_A2_PutGet)
    ->ArgsProduct({{64, 1024, 16384, 65536, 1048576}, {0, 1, 2}})
    ->ArgNames({"size", "op"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
