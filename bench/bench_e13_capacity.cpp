// E13 — million-flow capacity (ISSUE 7): proves the hierarchical timing
// wheel and the open-addressing state tables keep the engine's per-decision
// cost FLAT while it holds a million concurrent reliable flows across a
// hundred thousand peers, inside a bounded memory footprint.
//
// Topology: one hub engine with one NullEndpoint rail per simulated peer.
// The endpoint completes driver sends on progress() but never delivers
// anything, so with reliability on every sent packet parks in the
// retransmit tracking as a resident un-acked flow (its RTO is pushed out to
// 600s — armed in the wheel, never firing). 100k peers x 10 small messages
// = 1M resident flows and 100k armed RTO timers.
//
// Measurements (JSON artifact, one line each):
//   - probe decision cost: median ns per channel.post() on a designated
//     probe peer, measured first with ~1k resident flows, again with the
//     full population. GATE: ratio <= 1.25 (per-decision cost must not grow
//     with resident state — the tentpole claim).
//   - idle progress poll with 100k armed timers: ns per run_due() when
//     nothing is due (the wheel's two-atomic-load fast path).
//   - timer re-arm: ns and HEAP ALLOCATIONS per arm on a persistent
//     TimerHandle. GATE: 0 allocs per re-arm in steady state (the pooled /
//     intrusive wheel contract; the old heap allocated a std::function
//     closure per schedule).
//   - RSS: VmRSS after the full population is loaded. GATE: under the
//     configured per-peer budget (48 KB/peer + fixed base) — bounded
//     per-peer memory.
//
// Flags: --smoke (2k peers / 20k flows), --no-assert, --out PATH,
// --benchmark_* ignored.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/timer_host.hpp"
#include "drivers/driver.hpp"

// ---- counting global allocator (same pattern as bench_e9) -------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using namespace mado;
using namespace mado::core;

constexpr std::size_t kMsgBytes = 64;
constexpr std::size_t kFlowsPerPeer = 10;

/// Completes driver sends on progress(), never delivers, never acks: the
/// cheapest possible wire that still drives the engine's full TX + rel
/// bookkeeping. Deep tracks so probe batches never hit the busy gate.
class NullEndpoint final : public drv::DriverEndpoint {
 public:
  NullEndpoint() {
    caps_.name = "null";
    caps_.max_eager = 8 * 1024;
    caps_.rdv_threshold = 1u << 20;  // everything here is eager
    caps_.track_depth = 4096;
  }
  const drv::Capabilities& caps() const override { return caps_; }
  void set_handler(drv::EndpointHandler* h) override { handler_ = h; }
  void send(drv::TrackId track, const GatherList& gl,
            std::uint64_t token) override {
    (void)gl;
    pending_.emplace_back(track, token);
  }
  void progress() override {
    if (pending_.empty()) return;
    // Completions may trigger follow-on sends from inside the handler.
    scratch_.swap(pending_);
    for (const auto& [track, token] : scratch_)
      handler_->on_send_complete(track, token);
    scratch_.clear();
  }

 private:
  drv::Capabilities caps_;
  drv::EndpointHandler* handler_ = nullptr;
  std::vector<std::pair<drv::TrackId, std::uint64_t>> pending_, scratch_;
};

std::size_t vm_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::sscanf(line, "VmRSS: %zu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb * 1024;
}

double now_ns() {
  using clock = std::chrono::steady_clock;
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          clock::now().time_since_epoch())
          .count());
}

/// Pump the hub until a lap finds no work (all NullEndpoint completions
/// delivered and drained).
void drain(Engine& hub) {
  while (hub.progress()) {
  }
}

/// Load `flows` resident flows spread kFlowsPerPeer-per-peer starting at
/// `first_peer`. Handles are dropped: completion is driver-side only and
/// the flows stay resident as un-acked rel state by construction.
void load_flows(Engine& hub, std::vector<Channel>& chans,
                std::size_t first_peer, std::size_t flows) {
  const Bytes data(kMsgBytes, Byte{0x5a});
  std::size_t peer = first_peer;
  for (std::size_t i = 0; i < flows; ++i) {
    Message m;
    m.pack(data.data(), data.size(), SendMode::Safe);
    chans[peer].post(std::move(m));
    if (++peer == chans.size()) peer = first_peer;
  }
  drain(hub);
}

/// Median ns per channel.post() on the probe channel: `batches` bursts of
/// `per_batch` posts, each post timed individually, drained between bursts
/// (outside the timed region). The median over all posts is what the gate
/// compares — it is robust to the cold-cache tail right after a drain()
/// walked every peer's state, which would otherwise dominate a batch mean
/// once the resident population is large.
double probe_post_ns(Engine& hub, Channel& probe, std::size_t batches,
                     std::size_t per_batch) {
  const Bytes data(kMsgBytes, Byte{0x5a});
  std::vector<double> ns;
  ns.reserve(batches * per_batch);
  for (std::size_t b = 0; b < batches; ++b) {
    for (std::size_t i = 0; i < per_batch; ++i) {
      Message m;
      m.pack(data.data(), data.size(), SendMode::Safe);
      const double t0 = now_ns();
      probe.post(std::move(m));
      ns.push_back(now_ns() - t0);
    }
    drain(hub);
  }
  std::sort(ns.begin(), ns.end());
  return ns[ns.size() / 2];
}

void emit(std::FILE* out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  if (out) {
    va_start(args, fmt);
    std::vfprintf(out, fmt, args);
    va_end(args);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, do_assert = true;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--no-assert") == 0) do_assert = false;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    // --benchmark_* and anything else: ignored (generic smoke loop).
  }
  std::FILE* out = out_path ? std::fopen(out_path, "w") : nullptr;

  const std::size_t npeers = smoke ? 2'000 : 100'000;
  const std::size_t flows_full = npeers * kFlowsPerPeer;
  const std::size_t flows_base = 1'000;
  // The acceptance gate is a per-peer budget, not a flat number: 48 KB per
  // peer (10 resident 64 B flows, their retained wire images, rel tracking,
  // tables at min_capacity, a 4-slot submit ring) plus a fixed base for the
  // binary, the wheel and the channel vector. Measured: ~40 KB/peer at 100k
  // peers, ~45 KB/peer at 2k (fixed costs amortize less).
  const std::size_t kPerPeerBudget = 48 * 1024;
  const std::size_t rss_budget =
      std::size_t{128} * 1024 * 1024 + npeers * kPerPeerBudget;

  EngineConfig cfg;
  cfg.strategy = "aggreg";
  cfg.reliability = true;
  // Single application thread: the flat-combining inline path always wins,
  // so the per-peer MPMC submit ring would be 100k x ~40 KB of preallocated
  // slots serving nothing. At this peer count the ring is the single
  // largest per-peer allocation — size it down, don't disable it, so the
  // submit path stays the production one (try_lock fast path + ring code).
  cfg.submit_ring = 4;
  // Wide enough that the probe peer's cumulative un-acked packets never
  // close the go-back-N window mid-bench (a closed window short-circuits
  // the pump and would make late probes measure a different code path).
  cfg.rel_window = 1u << 20;
  // The flows must stay resident, not retransmit: park the RTO far beyond
  // the bench's wall time. 100k of these sit armed in the wheel throughout.
  cfg.rel_rto_initial = 600 * kNanosPerSec;
  cfg.rel_rto_max = 600 * kNanosPerSec;

  const std::size_t rss_start = vm_rss_bytes();
  RealTimerHost timers;
  Engine hub(0, cfg, timers);
  std::vector<Channel> chans;
  chans.reserve(npeers + 1);
  chans.push_back(Channel{});  // index 0 unused: peers are 1-based
  for (std::size_t p = 1; p <= npeers; ++p) {
    hub.add_rail(static_cast<NodeId>(p), std::make_unique<NullEndpoint>());
    chans.push_back(hub.open_channel(static_cast<NodeId>(p), 1,
                                     TrafficClass::SmallEager));
  }
  Channel probe = hub.open_channel(1, 2, TrafficClass::SmallEager);

  const std::size_t batches = 5;
  const std::size_t per_batch = smoke ? 200 : 400;

  // ---- phase A: ~1k resident flows -----------------------------------------
  load_flows(hub, chans, 2, flows_base);
  probe_post_ns(hub, probe, 2, per_batch);  // warmup
  const double base_ns = probe_post_ns(hub, probe, batches, per_batch);

  // ---- phase B: full population --------------------------------------------
  load_flows(hub, chans, 2, flows_full - flows_base);
  const double full_ns = probe_post_ns(hub, probe, batches, per_batch);

  auto counters = hub.counters_snapshot();
  const std::uint64_t sent_msgs = counters["tx.msgs"];
  const std::uint64_t acks_rx = counters["rel.acks_rx"];
  const std::size_t rss_now = vm_rss_bytes();
  const double per_flow =
      static_cast<double>(rss_now - std::min(rss_now, rss_start)) /
      static_cast<double>(flows_full);

  // ---- idle poll cost with ~npeers armed RTO timers ------------------------
  const std::size_t polls = 1'000'000;
  double t0 = now_ns();
  for (std::size_t i = 0; i < polls; ++i) timers.run_due();
  const double poll_ns = (now_ns() - t0) / static_cast<double>(polls);

  // ---- timer re-arm: O(1) and allocation-free ------------------------------
  double rearm_ns = 0;
  std::uint64_t rearm_allocs = 0;
  {
    RealTimerHost th;
    TimerHandle h;
    h.set_callback([](std::uint64_t) {});
    th.arm(h, th.now() + kNanosPerSec);  // first arm pins the keep-alive
    const std::size_t rearms = 1'000'000;
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    t0 = now_ns();
    for (std::size_t i = 0; i < rearms; ++i)
      th.arm(h, th.now() + kNanosPerSec + i);
    rearm_ns = (now_ns() - t0) / static_cast<double>(rearms);
    rearm_allocs = g_allocs.load(std::memory_order_relaxed) - a0;
    th.cancel(h);
  }

  const double ratio = base_ns > 0 ? full_ns / base_ns : 0;
  emit(out,
       "{\"bench\":\"e13_capacity\",\"peers\":%zu,\"flows\":%zu,"
       "\"msg_bytes\":%zu,\"sent_msgs\":%llu,\"acks_rx\":%llu,"
       "\"probe_ns_1k\":%.1f,\"probe_ns_full\":%.1f,\"cost_ratio\":%.3f,"
       "\"idle_poll_ns\":%.2f,\"rearm_ns\":%.1f,\"rearm_allocs\":%llu,"
       "\"rss_bytes\":%zu,\"rss_per_flow\":%.1f,"
       "\"timer_arms\":%llu,\"timer_cancelled\":%llu,"
       "\"table_growths\":%llu,\"table_shrinks\":%llu}\n",
       npeers, flows_full, kMsgBytes,
       static_cast<unsigned long long>(sent_msgs),
       static_cast<unsigned long long>(acks_rx), base_ns, full_ns, ratio,
       poll_ns, rearm_ns, static_cast<unsigned long long>(rearm_allocs),
       rss_now, per_flow,
       static_cast<unsigned long long>(counters["timer.arms"]),
       static_cast<unsigned long long>(counters["timer.cancelled"]),
       static_cast<unsigned long long>(counters["cap.table_growths"]),
       static_cast<unsigned long long>(counters["cap.table_shrinks"]));
  if (out) std::fclose(out);

  int rc = 0;
  if (do_assert) {
    if (sent_msgs < flows_full || acks_rx != 0) {
      std::fprintf(stderr,
                   "FAIL: flows not resident (sent %llu of %zu, acks %llu)\n",
                   static_cast<unsigned long long>(sent_msgs), flows_full,
                   static_cast<unsigned long long>(acks_rx));
      rc = 1;
    }
    if (ratio > 1.25) {
      std::fprintf(stderr,
                   "FAIL: per-decision cost grew %.2fx from 1k to %zu flows "
                   "(budget 1.25x): %.1f -> %.1f ns\n",
                   ratio, flows_full, base_ns, full_ns);
      rc = 1;
    }
    if (rearm_allocs != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu heap allocations across 1M timer re-arms "
                   "(contract: 0)\n",
                   static_cast<unsigned long long>(rearm_allocs));
      rc = 1;
    }
    if (rss_now > rss_budget) {
      std::fprintf(stderr,
                   "FAIL: RSS %zu exceeds per-peer budget %zu "
                   "(48 KB x %zu peers + 128 MB base)\n",
                   rss_now, rss_budget, npeers);
      rc = 1;
    }
  }
  if (rc == 0)
    std::printf("OK: %zu flows, cost ratio %.2fx, %.1f B/flow, "
                "re-arm %.0f ns / %llu allocs\n",
                flows_full, ratio, per_flow, rearm_ns,
                static_cast<unsigned long long>(rearm_allocs));
  return rc;
}
