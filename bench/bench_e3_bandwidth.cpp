// E3 — canonical bandwidth curve per driver profile (the figure every
// Madeleine-family paper reports): one-way streaming bandwidth vs message
// size for MX/Myrinet, Elan/Quadrics and TCP/GigE capability profiles.
//
// Expected shape: bandwidth rises with size toward each profile's link
// rate (MX ≈ 250 MB/s, Elan ≈ 900 MB/s, TCP ≈ 110 MB/s); the eager →
// rendezvous transition appears as a knee at the profile's threshold; the
// technology ordering Elan > MX > TCP holds at every size.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

namespace {

using namespace mado;
using namespace mado::bench;

const char* kProfiles[] = {"mx", "elan", "tcp"};

void BM_E3_Bandwidth(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto* profile = kProfiles[state.range(1)];
  EngineConfig cfg;
  cfg.strategy = "aggreg";

  double mbps = 0;
  for (auto _ : state)
    mbps = run_stream_mbps(cfg, drv::profile_by_name(profile), size,
                           /*total=*/16u << 20);
  state.counters["MBps"] = mbps;
  state.counters["size_B"] = static_cast<double>(size);
  state.SetLabel(profile);
}

}  // namespace

BENCHMARK(BM_E3_Bandwidth)
    ->ArgsProduct({{1024, 4096, 16384, 65536, 262144, 1048576, 4194304},
                   {0, 1, 2}})
    ->ArgNames({"size", "profile"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
