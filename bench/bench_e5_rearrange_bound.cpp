// E5 — future work #2 of the paper: "study how to bound the number of data
// rearrangements the optimizer has to evaluate so as to determine the best
// combination of optimization techniques."
//
// Workload: 8 flows with a bimodal size mix (48 B control-like and 1.8 KiB
// medium fragments), where whether to merge mediums or pipeline them is a
// genuine decision, under the search-based aggreg_exhaustive strategy with
// the candidate-evaluation budget K swept.
//
// Expected shape: solution quality (sim_us) improves from K=1 (first
// candidate only ≈ greedy) and saturates within a few tens of evaluations,
// while the optimizer's own CPU time (evals/decision, and the wall-time
// column) keeps growing with K — i.e., a small bound loses nothing, which
// is exactly the paper's motivation for bounding the search.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

namespace {

using namespace mado;
using namespace mado::bench;

struct E5Result {
  Nanos time = 0;
  std::uint64_t evals = 0;
  std::uint64_t decisions = 0;
};

E5Result run_mixed(std::size_t eval_budget) {
  EngineConfig cfg;
  cfg.strategy = "aggreg_exhaustive";
  cfg.eval_budget = eval_budget;
  cfg.lookahead_window = 12;
  SimWorld w(2, cfg);
  w.connect(0, 1, drv::mx_myrinet_profile());
  constexpr std::size_t kFlows = 8;
  constexpr int kMsgs = 40;
  std::vector<core::Channel> tx, rx;
  for (std::size_t f = 0; f < kFlows; ++f) {
    tx.push_back(w.node(0).open_channel(1, static_cast<core::ChannelId>(f)));
    rx.push_back(w.node(1).open_channel(0, static_cast<core::ChannelId>(f)));
  }
  for (int i = 0; i < kMsgs; ++i)
    for (std::size_t f = 0; f < kFlows; ++f)
      post_bytes(tx[f], payload(f % 2 ? 1800 : 48));
  for (int i = 0; i < kMsgs; ++i)
    for (std::size_t f = 0; f < kFlows; ++f) {
      Bytes out(f % 2 ? 1800 : 48);
      recv_into(rx[f], out);
    }
  w.node(0).flush();
  E5Result r;
  r.time = w.now();
  r.evals = w.node(0).stats().counter("opt.evals");
  r.decisions = w.node(0).stats().counter("opt.decisions");
  return r;
}

void BM_E5_RearrangeBound(benchmark::State& state) {
  const auto budget = static_cast<std::size_t>(state.range(0));
  E5Result r;
  for (auto _ : state) r = run_mixed(budget);
  state.counters["sim_us"] = to_usec(r.time);
  state.counters["evals_total"] = static_cast<double>(r.evals);
  state.counters["evals_per_decision"] =
      r.decisions ? static_cast<double>(r.evals) /
                        static_cast<double>(r.decisions)
                  : 0.0;
  state.SetLabel(budget == 0 ? "unbounded" : "K=" + std::to_string(budget));
}

}  // namespace

BENCHMARK(BM_E5_RearrangeBound)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(0)
    ->ArgNames({"eval_budget"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
