// A1 — ablations of engine design choices called out in DESIGN.md:
//
//   chunk:  rendezvous chunk size. Small chunks interleave better with
//           latency traffic but pay per-chunk overhead; large chunks reach
//           peak bandwidth but monopolize the link.
//   depth:  per-track pipeline depth. The paper's design keeps one packet
//           in flight (depth 1) so the backlog can accumulate; deeper
//           pipelines shrink the lookahead pool and the aggregation win.
//
// Expected shapes: bulk bandwidth rises with chunk size and saturates;
// the concurrent control RTT rises with chunk size (blocking grows).
// For depth: transactions grow (aggregation shrinks) as depth increases on
// the multiflow workload.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

namespace {

using namespace mado;
using namespace mado::bench;

// ---- chunk size -------------------------------------------------------------

struct ChunkResult {
  double bulk_mbps = 0;
  double ctrl_rtt_us = 0;
};

ChunkResult run_chunk(std::size_t chunk) {
  EngineConfig cfg;
  cfg.rdv_chunk = chunk;
  SimWorld w(2, cfg);
  w.connect(0, 1, drv::mx_myrinet_profile());
  core::Channel bulk_tx = w.node(0).open_channel(1, 1, core::TrafficClass::Bulk);
  core::Channel bulk_rx = w.node(1).open_channel(0, 1, core::TrafficClass::Bulk);
  core::Channel ping_a = w.node(0).open_channel(1, 2);
  core::Channel ping_b = w.node(1).open_channel(0, 2);

  const std::size_t kBytes = 8u << 20;
  Bytes bulk = payload(kBytes);
  const Nanos t0 = w.now();
  post_bytes(bulk_tx, bulk, core::SendMode::Later);
  Bytes out(kBytes);
  core::IncomingMessage im = bulk_rx.begin_recv();
  im.unpack(out.data(), out.size(), core::RecvMode::Cheaper);

  // Concurrent control ping-pong on the same rail (eager track vs bulk
  // track share the physical link, so chunk size sets the blocking grain).
  constexpr int kPings = 20;
  double total_rtt = 0;
  Bytes ping = payload(64), pong(64);
  for (int i = 0; i < kPings; ++i) {
    const Nanos p0 = w.now();
    post_bytes(ping_a, ping);
    recv_into(ping_b, pong);
    post_bytes(ping_b, pong);
    recv_into(ping_a, pong);
    total_rtt += to_usec(w.now() - p0);
  }
  im.finish();
  w.node(0).flush();
  ChunkResult r;
  r.bulk_mbps = static_cast<double>(kBytes) / to_usec(w.now() - t0);
  r.ctrl_rtt_us = total_rtt / kPings;
  return r;
}

void BM_A1_ChunkSize(benchmark::State& state) {
  const auto chunk = static_cast<std::size_t>(state.range(0));
  ChunkResult r;
  for (auto _ : state) r = run_chunk(chunk);
  state.counters["bulk_MBps"] = r.bulk_mbps;
  state.counters["ctrl_rtt_us"] = r.ctrl_rtt_us;
  state.counters["chunk_KiB"] = static_cast<double>(chunk >> 10);
}

// ---- track depth ------------------------------------------------------------

void BM_A1_TrackDepth(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  EngineConfig cfg;
  cfg.strategy = "aggreg";
  auto caps = drv::mx_myrinet_profile();
  caps.track_depth = depth;
  MultiflowResult r;
  for (auto _ : state)
    r = run_multiflow(cfg, caps, /*flows=*/16, /*msgs=*/50, /*size=*/64);
  state.counters["sim_us"] = to_usec(r.time);
  state.counters["net_transactions"] = static_cast<double>(r.packets);
  state.counters["frags_per_packet"] = r.frags_per_packet();
}

}  // namespace

BENCHMARK(BM_A1_ChunkSize)
    ->Arg(16 << 10)->Arg(64 << 10)->Arg(256 << 10)->Arg(1 << 20)
    ->ArgNames({"chunk"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_A1_TrackDepth)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgNames({"depth"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
