// E2 — baseline parity: single-flow ping-pong latency across message sizes.
//
// The paper claims improvements "in many cases" with no regression for
// regular traffic; with a single flow and strict request-response turn
// taking there is nothing to aggregate, so the optimizer must match the
// deterministic baseline. Expected shape: half-RTT(aggreg) ==
// half-RTT(fifo) for every size, with the rendezvous threshold (32 KiB for
// the MX profile) visible as a step.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

namespace {

using namespace mado;
using namespace mado::bench;

void BM_E2_PingPong(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const bool optimized = state.range(1) != 0;
  EngineConfig cfg;
  cfg.strategy = optimized ? "aggreg" : "fifo";

  Nanos half_rtt = 0;
  for (auto _ : state)
    half_rtt = run_pingpong_half_rtt(cfg, drv::mx_myrinet_profile(), size,
                                     /*rounds=*/20);
  state.counters["half_rtt_us"] = to_usec(half_rtt);
  state.counters["size_B"] = static_cast<double>(size);
  state.SetLabel(cfg.strategy);
}

}  // namespace

BENCHMARK(BM_E2_PingPong)
    ->ArgsProduct({{4, 64, 512, 4096, 16384, 65536, 262144, 1048576}, {0, 1}})
    ->ArgNames({"size", "optimized"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
