// E10 — reliable delivery over lossy rails (ISSUE 2): one-way streaming
// goodput vs wire drop rate, with the ack/retransmit layer turned on.
//
// Sweep: drop ∈ {0, 0.1%, 0.5%, 1%, 2%, 5%} (both directions — data AND
// acks are lossy) for an eager size and a rendezvous size.
//
// Expected shape: goodput degrades gracefully with loss — go-back-N
// retransmission costs roughly the dropped packets plus the tail they drag
// along, so a few percent loss should cost a few (not tens of) percent of
// bandwidth at eager sizes, more at bulk sizes where a lost chunk stalls
// the whole stream for one RTO. `retransmits` grows with the drop rate;
// at drop=0 it stays 0 and the reliability tax is pure header bytes.
//
// BM_E10_ReliabilityOverhead isolates that tax: the same clean-link stream
// with the layer off vs on (acceptance: the off-path is untouched and the
// on-path costs only the extra header fields + ack packets).
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

namespace {

using namespace mado;
using namespace mado::bench;

struct LossyResult {
  double mbps = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t rto_backoffs = 0;
  std::uint64_t dropped = 0;
};

LossyResult run_lossy_stream(const EngineConfig& cfg, double drop,
                             std::size_t size, std::size_t total) {
  SimWorld w(2, cfg);
  drv::FaultPlan plan_ab;
  plan_ab.drop = drop;
  plan_ab.seed = 0xe10a;
  drv::FaultPlan plan_ba = plan_ab;
  plan_ba.seed = 0xe10b;  // acks are lossy too
  w.connect(0, 1, drv::mx_myrinet_profile(), plan_ab, plan_ba);
  Channel a = w.node(0).open_channel(1, 7);
  Channel b = w.node(1).open_channel(0, 7);
  const std::size_t n = total / size;
  const Bytes data = payload(size);
  for (std::size_t i = 0; i < n; ++i)
    post_bytes(a, data, core::SendMode::Later);
  Bytes out(size);
  for (std::size_t i = 0; i < n; ++i) recv_into(b, out);
  w.node(0).flush();
  LossyResult r;
  r.mbps = static_cast<double>(n * size) / to_usec(w.now());
  r.retransmits = w.node(0).stats().counter("rel.retransmits");
  r.rto_backoffs = w.node(0).stats().counter("rel.rto_backoffs");
  r.dropped = w.endpoint(0, 1, 0).fault_stats().dropped;
  return r;
}

void BM_E10_LossyStream(benchmark::State& state) {
  const double drop =
      static_cast<double>(state.range(0)) / 1000.0;  // permille → fraction
  const auto size = static_cast<std::size_t>(state.range(1));
  EngineConfig cfg;
  cfg.strategy = "aggreg";
  cfg.reliability = true;
  cfg.payload_crc = true;

  LossyResult r;
  for (auto _ : state)
    r = run_lossy_stream(cfg, drop, size, /*total=*/4u << 20);
  state.counters["MBps"] = r.mbps;
  state.counters["drop_permille"] = static_cast<double>(state.range(0));
  state.counters["retransmits"] = static_cast<double>(r.retransmits);
  state.counters["rto_backoffs"] = static_cast<double>(r.rto_backoffs);
  state.counters["wire_drops"] = static_cast<double>(r.dropped);
}

void BM_E10_ReliabilityOverhead(benchmark::State& state) {
  const bool reliable = state.range(0) != 0;
  const auto size = static_cast<std::size_t>(state.range(1));
  EngineConfig cfg;
  cfg.strategy = "aggreg";
  cfg.reliability = reliable;
  cfg.payload_crc = reliable;

  LossyResult r;
  for (auto _ : state)
    r = run_lossy_stream(cfg, /*drop=*/0.0, size, /*total=*/4u << 20);
  state.counters["MBps"] = r.mbps;
  state.counters["retransmits"] = static_cast<double>(r.retransmits);
  state.SetLabel(reliable ? "reliable" : "baseline");
}

}  // namespace

BENCHMARK(BM_E10_LossyStream)
    ->ArgsProduct({{0, 1, 5, 10, 20, 50}, {4096, 65536}})
    ->ArgNames({"drop_pm", "size"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_E10_ReliabilityOverhead)
    ->ArgsProduct({{0, 1}, {4096, 65536}})
    ->ArgNames({"rel", "size"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
