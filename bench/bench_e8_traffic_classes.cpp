// E8 — paper §2: a scheduler with global control "may assign some of these
// resources to different classes of traffic" and "dynamically change the
// assignment of networking resources to traffic classes ... as the needs of
// the application evolve."
//
// Workload: a saturating rendezvous bulk stream pinned to rail 0, while a
// latency-sensitive control ping-pong runs. Three resource policies:
//   shared     — control class assigned to the bulk-loaded rail 0
//   separated  — control class statically assigned to rail 1
//   rebalanced — control starts on rail 0; Engine::rebalance_classes()
//                moves it off the loaded rail mid-run (dynamic policy)
//
// Expected shape: control RTT under "shared" inflates by the bulk chunk
// serialization it queues behind; "separated" stays near the unloaded
// RTT; "rebalanced" starts like shared and converges to separated.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

namespace {

using namespace mado;
using namespace mado::bench;

enum class Policy { Shared, Separated, Rebalanced };

struct E8Result {
  double mean_rtt_us = 0;
  double worst_rtt_us = 0;
};

E8Result run_classes(Policy policy) {
  EngineConfig cfg;
  cfg.multirail = core::MultirailPolicy::SingleRail;  // bulk pinned to rail 0
  cfg.rdv_chunk = 256 * 1024;
  cfg.class_rail = {0, 0, 0, 0};
  if (policy == Policy::Separated) cfg.class_rail[0] = 1;  // Control → rail 1
  SimWorld w(2, cfg);
  w.connect(0, 1, drv::mx_myrinet_profile());
  w.connect(0, 1, drv::mx_myrinet_profile());

  core::Channel bulk_tx = w.node(0).open_channel(1, 1, core::TrafficClass::Bulk);
  core::Channel bulk_rx = w.node(1).open_channel(0, 1, core::TrafficClass::Bulk);
  core::Channel ping_a = w.node(0).open_channel(1, 2, core::TrafficClass::Control);
  core::Channel ping_b = w.node(1).open_channel(0, 2, core::TrafficClass::Control);

  // Start a long bulk transfer; the receiver posts the unpack so the data
  // flows "in the background" while we pump for pings.
  const std::size_t kBulkBytes = 32u << 20;
  Bytes bulk = payload(kBulkBytes);
  post_bytes(bulk_tx, bulk, core::SendMode::Later);
  Bytes bulk_out(kBulkBytes);
  core::IncomingMessage bulk_im = bulk_rx.begin_recv();
  bulk_im.unpack(bulk_out.data(), bulk_out.size(), core::RecvMode::Cheaper);

  constexpr int kPings = 40;
  double total = 0, worst = 0;
  Bytes ping = payload(64);
  Bytes pong(64);
  for (int i = 0; i < kPings; ++i) {
    if (policy == Policy::Rebalanced && i == kPings / 4) {
      w.node(0).rebalance_classes();
      w.node(1).rebalance_classes();
    }
    const Nanos t0 = w.now();
    post_bytes(ping_a, ping);
    recv_into(ping_b, pong);
    post_bytes(ping_b, pong);
    recv_into(ping_a, pong);
    const double rtt = to_usec(w.now() - t0);
    total += rtt;
    worst = std::max(worst, rtt);
  }
  bulk_im.finish();
  w.node(0).flush();
  E8Result r;
  r.mean_rtt_us = total / kPings;
  r.worst_rtt_us = worst;
  return r;
}

const char* kNames[] = {"shared", "separated", "rebalanced"};

void BM_E8_TrafficClasses(benchmark::State& state) {
  const auto policy = static_cast<Policy>(state.range(0));
  E8Result r;
  for (auto _ : state) r = run_classes(policy);
  state.counters["mean_ctrl_rtt_us"] = r.mean_rtt_us;
  state.counters["worst_ctrl_rtt_us"] = r.worst_rtt_us;
  state.SetLabel(kNames[state.range(0)]);
}

// Second scenario: the contention is INSIDE one rail's collect layer —
// bulk-class eager messages (16 KiB, below the rdv threshold) pile up in
// the same backlog as control pings. The class-aware "priority" strategy
// lets control fragments overtake the queued bulk without any resource
// re-assignment; "aggreg" serves the backlog in age order.
double run_backlog_contention(const char* strategy) {
  EngineConfig cfg;
  cfg.strategy = strategy;
  SimWorld w(2, cfg);
  w.connect(0, 1, drv::mx_myrinet_profile());
  core::Channel bulk_tx = w.node(0).open_channel(1, 1, core::TrafficClass::Bulk);
  core::Channel bulk_rx = w.node(1).open_channel(0, 1, core::TrafficClass::Bulk);
  core::Channel ping_a = w.node(0).open_channel(1, 2, core::TrafficClass::Control);
  core::Channel ping_b = w.node(1).open_channel(0, 2, core::TrafficClass::Control);

  constexpr int kPings = 20;
  double total = 0;
  Bytes chunk = payload(16 * 1024);
  Bytes ping = payload(64), pong(64);
  Bytes sink(16 * 1024);
  for (int i = 0; i < kPings; ++i) {
    // Refill the backlog with bulk-class eager messages, then ping.
    for (int k = 0; k < 6; ++k)
      post_bytes(bulk_tx, chunk, core::SendMode::Later);
    const Nanos t0 = w.now();
    post_bytes(ping_a, ping);
    recv_into(ping_b, pong);
    post_bytes(ping_b, pong);
    recv_into(ping_a, pong);
    total += to_usec(w.now() - t0);
    for (int k = 0; k < 6; ++k) recv_into(bulk_rx, sink);
  }
  w.node(0).flush();
  return total / kPings;
}

void BM_E8_BacklogPriority(benchmark::State& state) {
  const char* strategy = state.range(0) ? "priority" : "aggreg";
  double rtt = 0;
  for (auto _ : state) rtt = run_backlog_contention(strategy);
  state.counters["mean_ctrl_rtt_us"] = rtt;
  state.SetLabel(strategy);
}

}  // namespace

BENCHMARK(BM_E8_TrafficClasses)
    ->Arg(0)->Arg(1)->Arg(2)
    ->ArgNames({"policy"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_E8_BacklogPriority)
    ->Arg(0)->Arg(1)
    ->ArgNames({"priority"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
