// E1 — the paper's headline claim (§4): "the aggregation of eager segments
// collected from several independent communication flows brings huge
// performance gains."
//
// Workload: N independent flows each streaming small messages over one
// MX-profile rail. Compared: "fifo" (previous Madeleine: deterministic
// per-flow handling, one network transaction per message) vs "aggreg"
// (dynamic cross-flow aggregation).
//
// Expected shape: identical fragment counts, but aggreg collapses
// transactions (net_transactions ↓, frags_per_packet ↑) and completion
// time drops; the gap grows with the number of flows.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

namespace {

using namespace mado;
using namespace mado::bench;

void BM_E1_Aggregation(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  const bool optimized = state.range(1) != 0;
  EngineConfig cfg;
  cfg.strategy = optimized ? "aggreg" : "fifo";
  cfg.lookahead_window = 0;  // unbounded: E4 studies the window separately

  MultiflowResult r;
  for (auto _ : state)
    r = run_multiflow(cfg, drv::mx_myrinet_profile(), flows, /*msgs=*/50,
                      /*size=*/64);
  state.counters["sim_us"] = to_usec(r.time);
  state.counters["net_transactions"] = static_cast<double>(r.packets);
  state.counters["frags_per_packet"] = r.frags_per_packet();
  state.counters["msg_rate_per_us"] =
      static_cast<double>(flows * 50) / to_usec(r.time);
  state.SetLabel(cfg.strategy);
}

}  // namespace

BENCHMARK(BM_E1_Aggregation)
    ->ArgsProduct({{1, 2, 4, 8, 16, 32}, {0, 1}})
    ->ArgNames({"flows", "optimized"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
