// E12 — multi-threaded multi-peer submit throughput (ISSUE 5): proves the
// sharded engine lock. A hub engine talks to M peer engines over real
// shared-memory rails (one progress thread per engine), while T application
// threads submit small eager messages round-robin across the peers and wait
// for completion in a bounded window. The metric is aggregate
// submit-to-complete throughput (messages/s across all threads).
//
// With the single global engine mutex, every submit, driver completion and
// counter read serializes: adding threads/peers adds contention, not
// throughput. With per-peer sharding + the lock-free submit ring, threads
// talking to different peers never touch the same lock and the enqueue
// fast path never blocks on the progressor.
//
// Output: one JSON line per configuration (machine-readable artifact), a
// trailing summary line, and a scaling assertion:
//   throughput(T=8, M=8)  >=  factor(hw) * throughput(T=1, M=1)
// where factor(hw) is 2.5 with >= 8 hardware threads, 1.5 with >= 4, and
// 1.02 with 2-3 (the win is reduced convoy overhead, not parallelism). On
// a 1-hardware-thread host 17 runnable threads timeslice one core, so no
// gain is possible; there the gate only requires the 8x8 config not to
// collapse (>= 0.5x — the sharded lock must not convoy under extreme
// oversubscription).
//
// Also measured: single-thread single-peer submit-to-complete latency over
// the loopback driver (pure engine-path cost, no timing model, no second
// thread) — the sharding must leave this flat.
//
// ISSUE 6 adds --progress-threads N: every engine (hub and peers) runs N
// shard-owning progress threads instead of one. With N > 1 the scaling gate
// tightens — on a >= 8-hardware-thread host the 8x8 config must reach 4x
// the 1x1 baseline (2x with >= 4 hardware threads), because completions now
// drain in parallel across shards instead of serializing behind one pump.
//
// Flags:
//   --smoke              short measurement windows (CI gate)
//   --no-assert          emit JSON only (used to capture the pre-PR baseline)
//   --out PATH           append JSON lines to PATH as well as stdout
//   --progress-threads N shard-owning progress threads per engine (default 1)
//   --benchmark_*        ignored (so the generic bench smoke loop can run this)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/timer_host.hpp"
#include "drivers/loopback_driver.hpp"
#include "drivers/profiles.hpp"
#include "drivers/shm_driver.hpp"

namespace {

using namespace mado;
using namespace mado::core;

constexpr std::size_t kMsgBytes = 256;
constexpr std::size_t kWindow = 64;  // outstanding sends per thread

double now_sec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Hub topology: engine 0 with one shm rail to each of `peers` peer
/// engines; progress threads everywhere (the threaded regime the sharding
/// targets). Peer engines only sink traffic.
struct HubWorld {
  std::vector<std::unique_ptr<RealTimerHost>> timers;
  std::unique_ptr<Engine> hub;
  std::vector<std::unique_ptr<Engine>> peers;

  explicit HubWorld(std::size_t npeers, const EngineConfig& cfg) {
    timers.push_back(std::make_unique<RealTimerHost>());
    hub = std::make_unique<Engine>(0, cfg, *timers.back());
    for (std::size_t m = 0; m < npeers; ++m) {
      timers.push_back(std::make_unique<RealTimerHost>());
      auto peer = std::make_unique<Engine>(static_cast<NodeId>(m + 1), cfg,
                                           *timers.back());
      auto pair = drv::ShmEndpoint::make_pair();
      hub->add_rail(static_cast<NodeId>(m + 1), std::move(pair.a));
      peer->add_rail(0, std::move(pair.b));
      peers.push_back(std::move(peer));
    }
    hub->start_progress_thread();
    for (auto& p : peers) p->start_progress_thread();
  }

  ~HubWorld() {
    hub->stop_progress_thread();
    for (auto& p : peers) p->stop_progress_thread();
  }
};

struct SweepPoint {
  std::size_t threads = 0;
  std::size_t npeers = 0;
  double msgs_per_sec = 0;
  double mb_per_sec = 0;
  std::uint64_t completed = 0;
  double wall_sec = 0;
};

/// T submitter threads × M peers for `duration_sec` of wall time. Each
/// thread owns one channel per peer (channel id = thread index), posts
/// kMsgBytes messages round-robin across peers with a bounded window of
/// outstanding handles, and counts completions. A watcher thread hammers
/// counters_snapshot()/snapshot() like a monitoring sampler would.
SweepPoint run_sweep(std::size_t threads, std::size_t npeers,
                     double duration_sec, const EngineConfig& cfg) {
  HubWorld w(npeers, cfg);
  // Channels: [thread][peer].
  std::vector<std::vector<Channel>> chans(threads);
  for (std::size_t t = 0; t < threads; ++t)
    for (std::size_t m = 0; m < npeers; ++m)
      chans[t].push_back(w.hub->open_channel(
          static_cast<NodeId>(m + 1), static_cast<ChannelId>(t),
          TrafficClass::SmallEager));

  std::atomic<bool> go{false}, stop{false};
  std::vector<std::uint64_t> done(threads, 0);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const Bytes data(kMsgBytes, Byte{0x5a});
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::deque<SendHandle> window;
      std::uint64_t n = 0;
      std::size_t rr = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Message m;
        m.pack(data.data(), data.size(), SendMode::Safe);
        window.push_back(chans[t][rr % npeers].post(std::move(m)));
        ++rr;
        if (window.size() >= kWindow) {
          w.hub->wait_send(window.front());
          window.pop_front();
          ++n;
        }
      }
      while (!window.empty()) {
        w.hub->wait_send(window.front());
        window.pop_front();
        ++n;
      }
      done[t] = n;
    });
  }
  // Monitoring reader: the sharded-counter satellite says snapshots must
  // not stall TX — run one all through the measurement so the number below
  // includes that load.
  std::thread watcher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto counters = w.hub->counters_snapshot();
      auto snap = w.hub->snapshot();
      (void)counters;
      (void)snap;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const double t0 = now_sec();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(duration_sec));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : workers) th.join();
  const double wall = now_sec() - t0;
  watcher.join();

  SweepPoint p;
  p.threads = threads;
  p.npeers = npeers;
  p.wall_sec = wall;
  for (std::uint64_t n : done) p.completed += n;
  p.msgs_per_sec = static_cast<double>(p.completed) / wall;
  p.mb_per_sec =
      p.msgs_per_sec * static_cast<double>(kMsgBytes) / (1024.0 * 1024.0);
  return p;
}

/// Single-thread single-peer submit-to-complete latency over loopback: no
/// progress threads, no timing model — the measuring thread pumps the hub
/// engine itself, so the number is the pure engine-path cost the sharding
/// must not regress.
double run_loopback_latency_ns(std::size_t iters, const EngineConfig& cfg) {
  RealTimerHost th_hub, th_peer;
  Engine hub(0, cfg, th_hub);
  Engine peer(1, cfg, th_peer);
  auto pair = drv::LoopbackEndpoint::make_pair(drv::mx_myrinet_profile());
  hub.add_rail(1, std::move(pair.a));
  peer.add_rail(0, std::move(pair.b));
  Channel ch = hub.open_channel(1, 7);
  const Bytes data(kMsgBytes, Byte{0x5a});

  // Warmup.
  for (int i = 0; i < 100; ++i) {
    Message m;
    m.pack(data.data(), data.size(), SendMode::Safe);
    SendHandle h = ch.post(std::move(m));
    while (!hub.send_done(h)) hub.progress();
    peer.progress();
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    Message m;
    m.pack(data.data(), data.size(), SendMode::Safe);
    SendHandle h = ch.post(std::move(m));
    while (!hub.send_done(h)) hub.progress();
    peer.progress();  // drain the peer inbox so memory stays flat
  }
  const auto dt = std::chrono::steady_clock::now() - t0;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                 .count()) /
         static_cast<double>(iters);
}

void emit(std::FILE* out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  if (out) {
    va_start(args, fmt);
    std::vfprintf(out, fmt, args);
    va_end(args);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, do_assert = true;
  const char* out_path = nullptr;
  std::size_t progress_threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--no-assert") == 0) do_assert = false;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else if (std::strcmp(argv[i], "--progress-threads") == 0 && i + 1 < argc)
      progress_threads =
          static_cast<std::size_t>(std::max(1, std::atoi(argv[++i])));
    // --benchmark_* and anything else: ignored (generic smoke loop).
  }
  std::FILE* out = out_path ? std::fopen(out_path, "w") : nullptr;

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const double dur = smoke ? 0.08 : 0.5;

  EngineConfig cfg;
  cfg.strategy = "aggreg";
  cfg.progress_threads = progress_threads;

  struct Cfg {
    std::size_t t, m;
  };
  std::vector<Cfg> points;
  if (smoke) {
    points = {{1, 1}, {8, 8}};
  } else {
    points = {{1, 1}, {1, 8}, {2, 2}, {4, 4}, {8, 1}, {8, 8}};
  }

  double base_11 = 0, top_88 = 0;
  for (const Cfg& c : points) {
    const SweepPoint p = run_sweep(c.t, c.m, dur, cfg);
    if (c.t == 1 && c.m == 1) base_11 = p.msgs_per_sec;
    if (c.t == 8 && c.m == 8) top_88 = p.msgs_per_sec;
    emit(out,
         "{\"bench\":\"e12_concurrency\",\"transport\":\"shm\","
         "\"threads\":%zu,\"peers\":%zu,\"progress_threads\":%zu,"
         "\"msg_bytes\":%zu,"
         "\"window\":%zu,\"duration_s\":%.3f,\"completed\":%llu,"
         "\"msgs_per_sec\":%.0f,\"MBps\":%.2f,\"hw_threads\":%u}\n",
         c.t, c.m, progress_threads, kMsgBytes, kWindow, p.wall_sec,
         static_cast<unsigned long long>(p.completed), p.msgs_per_sec,
         p.mb_per_sec, hw);
    std::fflush(stdout);
  }

  const double lat_ns =
      run_loopback_latency_ns(smoke ? 2000 : 20000, cfg);
  emit(out,
       "{\"bench\":\"e12_concurrency\",\"transport\":\"loopback\","
       "\"threads\":1,\"peers\":1,\"msg_bytes\":%zu,"
       "\"submit_to_complete_ns\":%.0f}\n",
       kMsgBytes, lat_ns);

  // Same measurement with the submit ring disabled: post() takes the locked
  // path directly. The spread between the two lines is the single-thread
  // cost (or saving) of the ring enqueue + flat-combining drain, isolated
  // from the rest of the sharding.
  EngineConfig cfg_no_ring = cfg;
  cfg_no_ring.submit_ring = 0;
  const double lat_no_ring_ns =
      run_loopback_latency_ns(smoke ? 2000 : 20000, cfg_no_ring);
  emit(out,
       "{\"bench\":\"e12_concurrency\",\"transport\":\"loopback\","
       "\"threads\":1,\"peers\":1,\"msg_bytes\":%zu,\"submit_ring\":0,"
       "\"submit_to_complete_ns\":%.0f}\n",
       kMsgBytes, lat_no_ring_ns);

  const double scaling = base_11 > 0 ? top_88 / base_11 : 0;
  // With parallel shard-owning progress threads the bar rises: completions
  // drain concurrently, so on real multi-core hardware the 8x8 config must
  // scale harder than the single-pump engine ever could. Oversubscribed
  // hosts keep the no-collapse floor.
  const double required =
      progress_threads > 1
          ? (hw >= 8 ? 4.0 : (hw >= 4 ? 2.0 : (hw >= 2 ? 1.02 : 0.5)))
          : (hw >= 8 ? 2.5 : (hw >= 4 ? 1.5 : (hw >= 2 ? 1.02 : 0.5)));
  emit(out,
       "{\"bench\":\"e12_concurrency\",\"summary\":true,"
       "\"progress_threads\":%zu,"
       "\"scaling_8x8_vs_1x1\":%.2f,\"required\":%.2f,"
       "\"loopback_latency_ns\":%.0f,\"hw_threads\":%u}\n",
       progress_threads, scaling, required, lat_ns, hw);
  if (out) std::fclose(out);

  if (do_assert && scaling < required) {
    std::fprintf(stderr,
                 "FAIL: 8x8 aggregate throughput is %.2fx the 1x1 baseline "
                 "(required >= %.2fx on %u hardware threads)\n",
                 scaling, required, hw);
    return 1;
  }
  std::printf("OK: scaling 8x8/1x1 = %.2fx (required %.2fx)\n", scaling,
              required);
  return 0;
}
