// E4 — future work #1 of the paper: "experiment with different packet
// lookahead window sizes."
//
// Workload: the E1 multiflow stream (16 flows x 50 msgs x 64 B) under the
// aggreg strategy with the lookahead window swept from 1 fragment to
// unbounded. Window = max fragments the optimizer may examine/combine per
// packet decision; 1 degenerates to no cross-flow aggregation.
//
// Expected shape: completion time falls and frags/packet rises steeply for
// the first few window steps, then saturates once the window covers the
// natural backlog depth — supporting the paper's plan to keep the window
// (and thus optimizer state) small.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

namespace {

using namespace mado;
using namespace mado::bench;

void BM_E4_Lookahead(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  EngineConfig cfg;
  cfg.strategy = "aggreg";
  cfg.lookahead_window = window;  // 0 = unbounded

  MultiflowResult r;
  for (auto _ : state)
    r = run_multiflow(cfg, drv::mx_myrinet_profile(), /*flows=*/16,
                      /*msgs=*/50, /*size=*/64);
  state.counters["sim_us"] = to_usec(r.time);
  state.counters["net_transactions"] = static_cast<double>(r.packets);
  state.counters["frags_per_packet"] = r.frags_per_packet();
  state.SetLabel(window == 0 ? "unbounded" : std::to_string(window));
}

}  // namespace

BENCHMARK(BM_E4_Lookahead)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(0)
    ->ArgNames({"window"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
