// E14 — collective scaling curves (ISSUE 9): sweeps the planner-backed
// allreduce and alltoall over 8..1024 simulated nodes and emits, per point,
// the engine-measured sim virtual time, the planner's prediction, the
// alpha-beta oracle lower bound and the optimality gap (measured / bound),
// plus the old linear fan-out as the baseline curve.
//
// The world is connected edge-lazily: the schedule is planned first (pure,
// no engine) and only the rank pairs it actually uses get a SimWorld link,
// which is what makes 1024-node points feasible (a full mesh would be half
// a million links). Every rank executes the SAME shared schedule instance
// via Collectives::run_schedule.
//
// GATES (--no-assert to disable):
//   - optimality: measured / alpha-beta-bound <= 3.0 at every swept point;
//   - scaling: the planner-chosen algorithm beats the linear fan-out by
//     >= 2x in sim virtual time for allreduce at >= 64 nodes.
//
// Flags: --smoke (nodes <= 64, smaller vectors), --no-assert, --out PATH,
// --benchmark_* ignored.
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "mw/collectives.hpp"
#include "tests/mw/collective_oracle.hpp"

namespace {

using namespace mado;
using mw::CollAlgo;
using mw::CollKind;
using mw::CollRank;
using mw::CollSchedule;
using mw::CollStep;
using mw::Collectives;

/// The undirected rank pairs a schedule moves bytes between.
std::set<std::pair<CollRank, CollRank>> used_pairs(const CollSchedule& s) {
  std::set<std::pair<CollRank, CollRank>> pairs;
  for (CollRank r = 0; r < s.size; ++r) {
    for (const CollStep& st : s.ranks[r].steps) {
      if (st.kind == CollStep::Kind::Copy) continue;
      pairs.emplace(std::min(r, st.peer), std::max(r, st.peer));
    }
  }
  return pairs;
}

struct Measure {
  Nanos measured = 0;
  CollAlgo algo = CollAlgo::Auto;   // what the planner actually emitted
  std::size_t chunk = 0;
  Nanos predicted = 0;
  std::size_t links = 0;
  bool verified = true;
};

/// Plan `kind` once, build an edge-only SimWorld, execute the shared
/// schedule on every rank and measure the virtual-time span. `bytes` is the
/// vector size (allreduce) or per-(src,dst) block size (alltoall).
Measure run_point(CollKind kind, CollRank n, std::uint64_t bytes,
                  CollAlgo algo, const drv::Capabilities& caps) {
  mw::CollectivePlanner planner(mw::CollTopology::uniform(n, caps));
  const std::size_t elem = kind == CollKind::Allreduce ? sizeof(double) : 1;
  auto sched = planner.plan(kind, bytes, /*root=*/0, algo, elem);

  const auto pairs = used_pairs(*sched);
  core::SimWorld world(n);
  for (const auto& [a, b] : pairs) world.connect(a, b, caps);

  std::vector<std::unique_ptr<Collectives>> colls;
  colls.reserve(n);
  for (CollRank r = 0; r < n; ++r)
    colls.push_back(std::make_unique<Collectives>(world.node(r), r, n));

  // Buffers + ops. Allreduce: rank r contributes the constant (r+1), so
  // every element of every result must equal n(n+1)/2. Alltoall: block d of
  // rank r is filled with a (r,d)-dependent byte.
  std::vector<std::vector<double>> din(n), dout(n);
  std::vector<Bytes> bin(n), bout(n);
  std::vector<std::unique_ptr<Collectives::Op>> ops;
  if (kind == CollKind::Allreduce) {
    const std::size_t cnt = static_cast<std::size_t>(bytes) / sizeof(double);
    for (CollRank r = 0; r < n; ++r) {
      din[r].assign(cnt, static_cast<double>(r + 1));
      dout[r].assign(cnt, 0.0);
      ops.push_back(colls[r]->run_schedule(sched, din[r].data(),
                                           dout[r].data()));
    }
  } else {
    const auto block = static_cast<std::size_t>(bytes);
    for (CollRank r = 0; r < n; ++r) {
      bin[r].resize(block * n);
      for (CollRank d = 0; d < n; ++d)
        std::memset(bin[r].data() + block * d,
                    static_cast<int>((r * 13 + d * 7) & 0xff), block);
      bout[r].assign(block * n, Byte{0});
      ops.push_back(colls[r]->run_schedule(sched, bin[r].data(),
                                           bout[r].data()));
    }
  }

  std::vector<Collectives::Op*> raw;
  raw.reserve(n);
  for (auto& op : ops) raw.push_back(op.get());
  const Nanos t0 = world.now();
  const bool completed =
      mw::drive_all([&world] { return world.fabric().step(); }, raw);

  Measure m;
  m.measured = world.now() - t0;
  m.algo = sched->algo;
  m.chunk = sched->chunk;
  m.predicted = sched->predicted;
  m.links = pairs.size();
  m.verified = completed;
  if (completed) {
    if (kind == CollKind::Allreduce) {
      const double expect = static_cast<double>(n) *
                            static_cast<double>(n + 1) / 2.0;
      for (CollRank r = 0; r < n && m.verified; ++r)
        for (std::size_t i = 0; i < dout[r].size();
             i += std::max<std::size_t>(1, dout[r].size() / 4))
          if (dout[r][i] != expect) m.verified = false;
    } else {
      const auto block = static_cast<std::size_t>(bytes);
      for (CollRank r = 0; r < n && m.verified; ++r)
        for (CollRank s = 0; s < n; ++s) {
          const auto want =
              static_cast<Byte>((s * 13 + r * 7) & 0xff);  // s's block r
          if (bout[r][block * s] != want ||
              bout[r][block * s + block - 1] != want) {
            m.verified = false;
            break;
          }
        }
    }
  }
  return m;
}

void emit(std::FILE* out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  if (out) {
    va_start(args, fmt);
    std::vfprintf(out, fmt, args);
    va_end(args);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, do_assert = true;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--no-assert") == 0) do_assert = false;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    // --benchmark_* and anything else: ignored (generic smoke loop).
  }
  std::FILE* out = out_path ? std::fopen(out_path, "w") : nullptr;

  const drv::Capabilities caps = drv::mx_myrinet_profile();
  constexpr double kMaxGap = 3.0;
  constexpr double kMinSpeedup = 2.0;
  int rc = 0;

  // Allreduce curve: vector sizes stay beta-dominated but are scaled down
  // at large node counts to bound the bench's own buffer footprint
  // (n ranks x 2 vectors each).
  const std::vector<CollRank> ar_nodes =
      smoke ? std::vector<CollRank>{8, 16, 32, 64}
            : std::vector<CollRank>{8, 16, 32, 64, 128, 256, 512, 1024};
  for (const CollRank n : ar_nodes) {
    const std::uint64_t bytes =
        smoke ? std::uint64_t{256} * 1024
              : std::min(std::uint64_t{1} << 20,
                         (std::uint64_t{128} << 20) / n);
    const Measure auto_m =
        run_point(CollKind::Allreduce, n, bytes, CollAlgo::Auto, caps);
    const Measure lin_m =
        run_point(CollKind::Allreduce, n, bytes, CollAlgo::Linear, caps);
    const Nanos bound =
        mw::oracle::lower_bound(CollKind::Allreduce, n, bytes, caps);
    const double gap = mw::oracle::gap(auto_m.measured, bound);
    const double speedup =
        auto_m.measured > 0
            ? static_cast<double>(lin_m.measured) /
                  static_cast<double>(auto_m.measured)
            : 0.0;
    emit(out,
         "{\"bench\":\"e14_collectives\",\"op\":\"allreduce\","
         "\"nodes\":%u,\"bytes\":%llu,\"algo\":\"%s\",\"chunk\":%zu,"
         "\"links\":%zu,\"predicted_ns\":%llu,\"measured_ns\":%llu,"
         "\"bound_ns\":%llu,\"gap\":%.3f,\"linear_ns\":%llu,"
         "\"speedup_vs_linear\":%.2f}\n",
         n, static_cast<unsigned long long>(bytes),
         mw::to_string(auto_m.algo), auto_m.chunk, auto_m.links,
         static_cast<unsigned long long>(auto_m.predicted),
         static_cast<unsigned long long>(auto_m.measured),
         static_cast<unsigned long long>(bound), gap,
         static_cast<unsigned long long>(lin_m.measured), speedup);
    if (!auto_m.verified || !lin_m.verified) {
      std::fprintf(stderr, "FAIL: allreduce n=%u produced wrong sums\n", n);
      rc = 1;
    }
    if (do_assert && gap > kMaxGap) {
      std::fprintf(stderr,
                   "FAIL: allreduce n=%u gap %.2fx exceeds %.1fx "
                   "(measured %llu vs bound %llu ns)\n",
                   n, gap, kMaxGap,
                   static_cast<unsigned long long>(auto_m.measured),
                   static_cast<unsigned long long>(bound));
      rc = 1;
    }
    if (do_assert && n >= 64 && speedup < kMinSpeedup) {
      std::fprintf(stderr,
                   "FAIL: allreduce n=%u only %.2fx over linear "
                   "(gate %.1fx)\n",
                   n, speedup, kMinSpeedup);
      rc = 1;
    }
  }

  // Alltoall curve: fixed per-(src,dst) block. No linear baseline sweep —
  // the direct exchange IS the linear family here, and at large n its
  // all-pairs mesh is exactly what the lazy-edge world avoids; the gate for
  // alltoall is the optimality gap alone.
  const std::vector<CollRank> a2a_nodes =
      smoke ? std::vector<CollRank>{8, 16}
            : std::vector<CollRank>{8, 16, 32, 64, 128};
  const std::uint64_t block = 4096;
  for (const CollRank n : a2a_nodes) {
    const Measure m =
        run_point(CollKind::Alltoall, n, block, CollAlgo::Auto, caps);
    const Nanos bound =
        mw::oracle::lower_bound(CollKind::Alltoall, n, block, caps);
    const double gap = mw::oracle::gap(m.measured, bound);
    emit(out,
         "{\"bench\":\"e14_collectives\",\"op\":\"alltoall\","
         "\"nodes\":%u,\"bytes\":%llu,\"algo\":\"%s\",\"chunk\":%zu,"
         "\"links\":%zu,\"predicted_ns\":%llu,\"measured_ns\":%llu,"
         "\"bound_ns\":%llu,\"gap\":%.3f}\n",
         n, static_cast<unsigned long long>(block), mw::to_string(m.algo),
         m.chunk, m.links, static_cast<unsigned long long>(m.predicted),
         static_cast<unsigned long long>(m.measured),
         static_cast<unsigned long long>(bound), gap);
    if (!m.verified) {
      std::fprintf(stderr, "FAIL: alltoall n=%u delivered wrong blocks\n", n);
      rc = 1;
    }
    if (do_assert && gap > kMaxGap) {
      std::fprintf(stderr,
                   "FAIL: alltoall n=%u gap %.2fx exceeds %.1fx "
                   "(measured %llu vs bound %llu ns)\n",
                   n, gap, kMaxGap,
                   static_cast<unsigned long long>(m.measured),
                   static_cast<unsigned long long>(bound));
      rc = 1;
    }
  }

  if (out) std::fclose(out);
  if (rc == 0)
    std::printf("OK: %zu allreduce + %zu alltoall points, every gap <= "
                "%.1fx, planner >= %.1fx over linear at >= 64 nodes\n",
                ar_nodes.size(), a2a_nodes.size(), kMaxGap, kMinSpeedup);
  return rc;
}
