// E11 — what observability costs: real CPU time per message for the same
// workload with (a) no tracer ever attached, (b) a tracer attached then
// detached, and (c) a tracer attached and recording. Like E9 these are
// measured wall time — virtual-time results are identical by construction
// (tracing never changes a decision), so simulated time cannot see the
// overhead at all.
//
// Expected shape: Detached == Baseline (the hot path's only residue is one
// relaxed-ish atomic load per trace site), and Attached within a few
// percent of Baseline (one ring write per traced event; the ring never
// allocates after construction).
#include <benchmark/benchmark.h>

#include "core/trace.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"

namespace {

using namespace mado;
using namespace mado::core;

constexpr std::size_t kFlows = 8;
constexpr int kMsgsPerFlow = 25;
constexpr std::size_t kMsgSize = 64;

enum class TracerMode { Never, AttachedThenDetached, Attached };

void pump_workload(benchmark::State& state, TracerMode mode) {
  EngineConfig cfg;
  cfg.strategy = "aggreg";
  SimWorld world(2, cfg);
  world.connect(0, 1, drv::mx_myrinet_profile());

  Tracer tracer;
  if (mode != TracerMode::Never) {
    world.node(0).set_tracer(&tracer);
    world.node(1).set_tracer(&tracer);
    if (mode == TracerMode::AttachedThenDetached) {
      world.node(0).set_tracer(nullptr);
      world.node(1).set_tracer(nullptr);
    }
  }

  std::vector<Channel> tx, rx;
  for (ChannelId f = 0; f < kFlows; ++f) {
    tx.push_back(world.node(0).open_channel(1, f));
    rx.push_back(world.node(1).open_channel(0, f));
  }
  Bytes data(kMsgSize, Byte{1}), out(kMsgSize);

  std::uint64_t msgs = 0;
  for (auto _ : state) {
    for (int i = 0; i < kMsgsPerFlow; ++i)
      for (auto& ch : tx) {
        Message m;
        m.pack(data.data(), data.size(), SendMode::Safe);
        ch.post(std::move(m));
      }
    for (int i = 0; i < kMsgsPerFlow; ++i)
      for (auto& ch : rx) {
        IncomingMessage im = ch.begin_recv();
        im.unpack(out.data(), out.size(), RecvMode::Express);
        im.finish();
      }
    world.node(0).flush();
    msgs += kFlows * kMsgsPerFlow;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(msgs));
  // Proof obligations: a detached tracer must record NOTHING (zero residual
  // work beyond the per-site atomic load); an attached one must be busy.
  state.counters["traced_records"] = static_cast<double>(
      mode == TracerMode::Attached ? tracer.size() + tracer.dropped() : 0);
  if (mode == TracerMode::AttachedThenDetached &&
      (tracer.size() != 0 || tracer.dropped() != 0)) {
    state.SkipWithError("detached tracer recorded events");
  }
}

void BM_E11_Baseline(benchmark::State& state) {
  pump_workload(state, TracerMode::Never);
}
void BM_E11_Detached(benchmark::State& state) {
  pump_workload(state, TracerMode::AttachedThenDetached);
}
void BM_E11_Attached(benchmark::State& state) {
  pump_workload(state, TracerMode::Attached);
}

}  // namespace

BENCHMARK(BM_E11_Baseline);
BENCHMARK(BM_E11_Detached);
BENCHMARK(BM_E11_Attached);

BENCHMARK_MAIN();
