// A3 — collective operations built on the engine (extension): allreduce
// and barrier completion time vs. node count, under the baseline and the
// optimizing strategy.
//
// Collectives stress the engine differently from E1's independent streams:
// each rank exchanges with log2(N) distinct peers over dedicated links, so
// cross-flow aggregation only helps where several collective edges share a
// rail pair — expected shape: log-scaling of completion time with N for
// barrier/allreduce, and parity between fifo and aggreg (few concurrent
// fragments per link pair), demonstrating the optimizer does not hurt
// latency-bound collective patterns.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "mw/collectives.hpp"

namespace {

using namespace mado;
using namespace mado::bench;
using mw::Collectives;
using Rank = Collectives::Rank;

struct CollWorld {
  explicit CollWorld(Rank n, const EngineConfig& cfg) : world(n, cfg) {
    for (Rank a = 0; a < n; ++a)
      for (Rank b = static_cast<Rank>(a + 1); b < n; ++b)
        world.connect(a, b, drv::mx_myrinet_profile());
    for (Rank r = 0; r < n; ++r)
      colls.push_back(std::make_unique<Collectives>(world.node(r), r, n));
  }
  SimWorld world;
  std::vector<std::unique_ptr<Collectives>> colls;
};

Nanos run_collective(Rank n, const std::string& strategy, bool allreduce,
                     std::size_t elems) {
  EngineConfig cfg;
  cfg.strategy = strategy;
  CollWorld w(n, cfg);
  std::vector<std::vector<double>> in(n, std::vector<double>(elems, 1.0));
  std::vector<std::vector<double>> out(n, std::vector<double>(elems, 0.0));
  std::vector<std::unique_ptr<Collectives::Op>> ops;
  for (Rank r = 0; r < n; ++r) {
    if (allreduce)
      ops.push_back(
          w.colls[r]->allreduce_sum(in[r].data(), out[r].data(), elems));
    else
      ops.push_back(w.colls[r]->barrier());
  }
  std::vector<Collectives::Op*> raw;
  for (auto& op : ops) raw.push_back(op.get());
  const bool ok =
      mw::drive_all([&w] { return w.world.fabric().step(); }, raw);
  return ok ? w.world.now() : 0;
}

void BM_A3_Barrier(benchmark::State& state) {
  const auto n = static_cast<Rank>(state.range(0));
  const bool optimized = state.range(1) != 0;
  Nanos t = 0;
  for (auto _ : state)
    t = run_collective(n, optimized ? "aggreg" : "fifo", false, 0);
  state.counters["sim_us"] = to_usec(t);
  state.SetLabel(optimized ? "aggreg" : "fifo");
}

void BM_A3_Allreduce(benchmark::State& state) {
  const auto n = static_cast<Rank>(state.range(0));
  const bool optimized = state.range(1) != 0;
  Nanos t = 0;
  for (auto _ : state)
    t = run_collective(n, optimized ? "aggreg" : "fifo", true, /*elems=*/256);
  state.counters["sim_us"] = to_usec(t);
  state.SetLabel(optimized ? "aggreg" : "fifo");
}

}  // namespace

BENCHMARK(BM_A3_Barrier)
    ->ArgsProduct({{2, 4, 8, 16}, {0, 1}})
    ->ArgNames({"nodes", "optimized"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_A3_Allreduce)
    ->ArgsProduct({{2, 4, 8, 16}, {0, 1}})
    ->ArgNames({"nodes", "optimized"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
