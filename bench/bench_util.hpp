// Shared workload generators for the experiment benches (E1–E9).
//
// All simulation benches report *virtual* time (deterministic, from the
// NIC cost model) through benchmark counters; the google-benchmark wall
// time column only reflects how long the simulation took to execute.
#pragma once

#include <string>
#include <vector>

#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "util/rng.hpp"

namespace mado::bench {

using core::Channel;
using core::EngineConfig;
using core::IncomingMessage;
using core::Message;
using core::SimWorld;

inline Bytes payload(std::size_t n, std::uint32_t seed = 1) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = static_cast<Byte>(seed + i * 13);
  return b;
}

inline void post_bytes(Channel& ch, const Bytes& data,
                       core::SendMode mode = core::SendMode::Safe) {
  Message m;
  m.pack(data.data(), data.size(), mode);
  ch.post(std::move(m));
}

inline void recv_into(Channel& ch, Bytes& out) {
  IncomingMessage im = ch.begin_recv();
  im.unpack(out.data(), out.size(), core::RecvMode::Express);
  im.finish();
}

struct MultiflowResult {
  Nanos time = 0;
  std::uint64_t packets = 0;
  std::uint64_t frags = 0;
  double frags_per_packet() const {
    return packets ? static_cast<double>(frags) / static_cast<double>(packets)
                   : 0.0;
  }
};

/// E1/E4 workload: `flows` independent channels each posting `msgs`
/// single-fragment messages of `size` bytes back to back; the receiver
/// drains everything; result is total completion (virtual) time and the
/// sender's transaction counters.
inline MultiflowResult run_multiflow(const EngineConfig& cfg,
                                     const drv::Capabilities& caps,
                                     std::size_t flows, int msgs,
                                     std::size_t size) {
  SimWorld w(2, cfg);
  w.connect(0, 1, caps);
  std::vector<Channel> tx, rx;
  tx.reserve(flows);
  rx.reserve(flows);
  for (std::size_t f = 0; f < flows; ++f) {
    tx.push_back(w.node(0).open_channel(1, static_cast<core::ChannelId>(f)));
    rx.push_back(w.node(1).open_channel(0, static_cast<core::ChannelId>(f)));
  }
  const Bytes data = payload(size);
  for (int i = 0; i < msgs; ++i)
    for (std::size_t f = 0; f < flows; ++f) post_bytes(tx[f], data);
  Bytes out(size);
  for (int i = 0; i < msgs; ++i)
    for (std::size_t f = 0; f < flows; ++f) recv_into(rx[f], out);
  w.node(0).flush();
  MultiflowResult r;
  r.time = w.now();
  r.packets = w.node(0).stats().counter("tx.packets");
  r.frags = w.node(0).stats().counter("tx.frags");
  return r;
}

/// E2 workload: `rounds` ping-pong exchanges of `size` bytes; returns the
/// mean half round trip in virtual nanoseconds.
inline Nanos run_pingpong_half_rtt(const EngineConfig& cfg,
                                   const drv::Capabilities& caps,
                                   std::size_t size, int rounds) {
  SimWorld w(2, cfg);
  w.connect(0, 1, caps);
  Channel a = w.node(0).open_channel(1, 7);
  Channel b = w.node(1).open_channel(0, 7);
  const Bytes data = payload(size);
  Bytes out(size);
  const Nanos t0 = w.now();
  for (int i = 0; i < rounds; ++i) {
    post_bytes(a, data, core::SendMode::Later);
    recv_into(b, out);
    post_bytes(b, out, core::SendMode::Later);
    recv_into(a, out);
  }
  return (w.now() - t0) / (2u * static_cast<unsigned>(rounds));
}

/// E3 workload: one-way stream of `total` bytes in `size`-byte messages;
/// returns achieved bandwidth in MB/s (== bytes per virtual microsecond).
inline double run_stream_mbps(const EngineConfig& cfg,
                              const drv::Capabilities& caps, std::size_t size,
                              std::size_t total) {
  SimWorld w(2, cfg);
  w.connect(0, 1, caps);
  Channel a = w.node(0).open_channel(1, 7);
  Channel b = w.node(1).open_channel(0, 7);
  const std::size_t n = total / size;
  const Bytes data = payload(size);
  for (std::size_t i = 0; i < n; ++i)
    post_bytes(a, data, core::SendMode::Later);
  Bytes out(size);
  for (std::size_t i = 0; i < n; ++i) recv_into(b, out);
  w.node(0).flush();
  return static_cast<double>(n * size) / to_usec(w.now());
}

}  // namespace mado::bench
