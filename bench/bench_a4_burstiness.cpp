// A4 — workload-shape ablation: how traffic burstiness selects the right
// policy. The same total load (4 flows × 80 messages × 64 B) is delivered
// with different arrival patterns, from back-to-back bursts to Poisson to
// sparse-uniform, under each relevant strategy.
//
// Expected shapes: bursty traffic → aggregation collapses transactions and
// fifo pays heavily; sparse traffic → aggreg ≈ fifo (nothing to combine)
// while nagle/adaptive trade latency for transactions; Poisson sits in
// between. This is the phase diagram behind the paper's argument that the
// policy must be selected dynamically.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "mw/workload.hpp"
#include "mw/workload_runner.hpp"

namespace {

using namespace mado;
using namespace mado::bench;
using namespace mado::mw;

Schedule make_schedule(int shape) {
  switch (shape) {
    case 0: {  // dense bursts separated by silence
      BurstySpec s;
      s.flows = 4;
      s.bursts = 10;
      s.burst_len = 8;
      s.inter_gap = usec(30);
      return make_bursty(s);
    }
    case 1: {  // Poisson arrivals, mean gap 2 us per flow
      PoissonSpec s;
      s.flows = 4;
      s.msgs_per_flow = 80;
      s.mean_gap_us = 2.0;
      s.seed = 7;
      return make_poisson(s);
    }
    default: {  // sparse uniform: one message per flow every 8 us
      UniformSpec s;
      s.flows = 4;
      s.msgs_per_flow = 80;
      s.interval = usec(8);
      s.stagger = usec(2);
      return make_uniform(s);
    }
  }
}

const char* kShapes[] = {"bursty", "poisson", "sparse"};
const char* kStrategies[] = {"fifo", "aggreg", "nagle", "adaptive"};

void BM_A4_Burstiness(benchmark::State& state) {
  const auto shape = static_cast<int>(state.range(0));
  const auto* strategy = kStrategies[state.range(1)];
  core::EngineConfig cfg;
  cfg.strategy = strategy;
  cfg.nagle_delay = usec(2);

  ReplayResult r;
  const Schedule schedule = make_schedule(shape);
  for (auto _ : state)
    r = replay(cfg, drv::mx_myrinet_profile(), schedule);
  state.counters["net_transactions"] = static_cast<double>(r.packets);
  state.counters["mean_latency_us"] = r.mean_latency_us;
  state.counters["frags_per_packet"] = r.frags_per_packet();
  state.SetLabel(std::string(kShapes[shape]) + "/" + strategy);
}

}  // namespace

BENCHMARK(BM_A4_Burstiness)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3}})
    ->ArgNames({"shape", "strategy"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
