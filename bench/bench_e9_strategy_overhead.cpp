// E9 — the optimizer's own cost: real CPU time per packet decision for each
// strategy in the database, on a standing backlog of 64 fragments across 8
// flows. This is the engine-side overhead the paper's future work #2 wants
// bounded; unlike E1–E8 these numbers are measured wall time, not
// simulated time.
//
// Expected shape: fifo < aggreg < nagle << aggreg_exhaustive, and the
// exhaustive strategy's cost scales with its evaluation budget.
#include <benchmark/benchmark.h>

#include "core/strategies.hpp"
#include "core/strategy.hpp"
#include "drivers/profiles.hpp"

namespace {

using namespace mado;
using namespace mado::core;

TxBacklog make_backlog(std::size_t flows, std::size_t per_flow,
                       std::uint64_t& order) {
  TxBacklog b;
  for (std::size_t f = 0; f < flows; ++f)
    for (std::size_t i = 0; i < per_flow; ++i) {
      TxFrag frag;
      frag.channel = static_cast<ChannelId>(f);
      frag.msg_seq = static_cast<MsgSeq>(i);
      frag.idx = 0;
      frag.nfrags_total = 1;
      frag.last = true;
      frag.owned.assign(i % 2 ? 700 : 48, Byte{0x5a});
      frag.len = frag.owned.size();
      frag.order = order++;
      b.push(std::move(frag));
    }
  return b;
}

void decide_all(benchmark::State& state, const std::string& name,
                std::size_t eval_budget) {
  auto strategy = StrategyRegistry::instance().create(name);
  const drv::Capabilities caps = drv::mx_myrinet_profile();
  StatsRegistry stats;
  StrategyEnv env{caps, 0, /*window=*/16, eval_budget, 0, &stats};
  std::uint64_t order = 1;
  std::uint64_t decisions = 0;

  for (auto _ : state) {
    state.PauseTiming();
    TxBacklog backlog = make_backlog(8, 8, order);
    state.ResumeTiming();
    while (!backlog.empty()) {
      auto d = strategy->next_packet(backlog, env);
      benchmark::DoNotOptimize(d.frags.data());
      ++decisions;
      if (d.action != PacketDecision::Action::Send) break;
    }
  }
  state.counters["decisions_per_fill"] =
      static_cast<double>(decisions) / static_cast<double>(state.iterations());
  state.SetLabel(name + (eval_budget ? "/K=" + std::to_string(eval_budget)
                                     : ""));
}

void BM_E9_Fifo(benchmark::State& state) { decide_all(state, "fifo", 0); }
void BM_E9_Aggreg(benchmark::State& state) { decide_all(state, "aggreg", 0); }
void BM_E9_Nagle(benchmark::State& state) { decide_all(state, "nagle", 0); }
void BM_E9_Adaptive(benchmark::State& state) {
  decide_all(state, "adaptive", 0);
}
void BM_E9_Exhaustive(benchmark::State& state) {
  decide_all(state, "aggreg_exhaustive",
             static_cast<std::size_t>(state.range(0)));
}

}  // namespace

BENCHMARK(BM_E9_Fifo);
BENCHMARK(BM_E9_Aggreg);
BENCHMARK(BM_E9_Nagle);
BENCHMARK(BM_E9_Adaptive);
BENCHMARK(BM_E9_Exhaustive)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->ArgNames({"eval_budget"});

BENCHMARK_MAIN();
