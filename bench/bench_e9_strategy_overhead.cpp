// E9 — the optimizer's own cost: real CPU time per packet decision for each
// strategy in the database, on a standing backlog of 64 fragments across 16
// flows. This is the engine-side overhead the paper's future work #2 wants
// bounded; unlike E1–E8 these numbers are measured wall time, not
// simulated time.
//
// This binary also instruments the GLOBAL allocator: every decision loop
// reports `allocs_per_decision`, which must stay at 0 in steady state (the
// zero-allocation contract of the optimizer hot path — fragments ride
// inline SmallVector scratch, the flow index is maintained incrementally,
// and counter bumps use transparent string_view lookup).
//
// Expected shape: fifo < aggreg ~ priority < nagle << aggreg_exhaustive,
// and the exhaustive strategy's cost scales with its evaluation budget.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/strategies.hpp"
#include "core/strategy.hpp"
#include "drivers/profiles.hpp"

// ---- counting global allocator ---------------------------------------------
// Counts every operator-new call so the benchmark can prove the decision
// loop is allocation-free. Deallocation is not counted (popping a deque
// block releases memory but allocates nothing).

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// The replacement operator new below allocates with std::malloc, so releasing
// with std::free in operator delete is correct; GCC's heuristic cannot see
// through the replacement and flags the pairing, so silence it locally.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using namespace mado;
using namespace mado::core;

constexpr std::size_t kFlows = 16;
constexpr std::size_t kPerFlow = 4;

TxBacklog make_backlog(std::size_t flows, std::size_t per_flow,
                       std::uint64_t& order) {
  TxBacklog b;
  for (std::size_t f = 0; f < flows; ++f)
    for (std::size_t i = 0; i < per_flow; ++i) {
      TxFrag frag;
      frag.channel = static_cast<ChannelId>(f);
      frag.msg_seq = static_cast<MsgSeq>(i);
      frag.idx = 0;
      frag.nfrags_total = 1;
      frag.last = true;
      frag.cls = f % 2 ? TrafficClass::SmallEager : TrafficClass::Bulk;
      frag.owned.assign(i % 2 ? 700 : 48, Byte{0x5a});
      frag.len = frag.owned.size();
      frag.order = order++;
      b.push(std::move(frag));
    }
  return b;
}

void decide_all(benchmark::State& state, const std::string& name,
                std::size_t eval_budget) {
  auto strategy = StrategyRegistry::instance().create(name);
  const drv::Capabilities caps = drv::mx_myrinet_profile();
  StatsRegistry stats;
  StrategyEnv env{caps, 0, /*window=*/16, eval_budget, 0, &stats};
  std::uint64_t order = 1;
  std::uint64_t decisions = 0;
  std::uint64_t decision_allocs = 0;

  // Warm-up fill+drain: lets one-time allocations (stats counter nodes,
  // scratch growth past inline capacity) happen outside the measurement.
  {
    TxBacklog backlog = make_backlog(kFlows, kPerFlow, order);
    while (!backlog.empty()) {
      auto d = strategy->next_packet(backlog, env);
      if (d.action != PacketDecision::Action::Send) break;
    }
  }

  for (auto _ : state) {
    state.PauseTiming();
    TxBacklog backlog = make_backlog(kFlows, kPerFlow, order);
    state.ResumeTiming();
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    while (!backlog.empty()) {
      auto d = strategy->next_packet(backlog, env);
      benchmark::DoNotOptimize(d.frags.data());
      ++decisions;
      if (d.action != PacketDecision::Action::Send) break;
    }
    decision_allocs += g_allocs.load(std::memory_order_relaxed) - a0;
  }
  state.counters["decisions_per_fill"] =
      static_cast<double>(decisions) / static_cast<double>(state.iterations());
  state.counters["allocs_per_decision"] =
      decisions ? static_cast<double>(decision_allocs) /
                      static_cast<double>(decisions)
                : 0.0;
  state.SetLabel(name + (eval_budget ? "/K=" + std::to_string(eval_budget)
                                     : ""));
}

void BM_E9_Fifo(benchmark::State& state) { decide_all(state, "fifo", 0); }
void BM_E9_Aggreg(benchmark::State& state) { decide_all(state, "aggreg", 0); }
void BM_E9_Priority(benchmark::State& state) {
  decide_all(state, "priority", 0);
}
void BM_E9_Nagle(benchmark::State& state) { decide_all(state, "nagle", 0); }
void BM_E9_Adaptive(benchmark::State& state) {
  decide_all(state, "adaptive", 0);
}
void BM_E9_Exhaustive(benchmark::State& state) {
  decide_all(state, "aggreg_exhaustive",
             static_cast<std::size_t>(state.range(0)));
}

}  // namespace

BENCHMARK(BM_E9_Fifo);
BENCHMARK(BM_E9_Aggreg);
BENCHMARK(BM_E9_Priority);
BENCHMARK(BM_E9_Nagle);
BENCHMARK(BM_E9_Adaptive);
BENCHMARK(BM_E9_Exhaustive)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->ArgNames({"eval_budget"});

BENCHMARK_MAIN();
