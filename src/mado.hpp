// Umbrella header: everything a typical application needs.
//
//   #include "mado.hpp"
//   using namespace mado::core;
//
// Fine-grained headers remain available (core/engine.hpp, drivers/*.hpp,
// mw/*.hpp) for faster builds.
#pragma once

#include "core/api.hpp"
#include "core/config.hpp"
#include "core/engine.hpp"
#include "core/message.hpp"
#include "core/strategies.hpp"
#include "core/strategy.hpp"
#include "core/trace.hpp"
#include "core/world.hpp"
#include "drivers/profiles.hpp"
#include "mw/dsm.hpp"
#include "mw/mini_mpi.hpp"
#include "mw/rpc.hpp"
