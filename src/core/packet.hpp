// Packet wire format.
//
// Eager-track packet layout (all integers little-endian):
//
//   PacketHeader (20 B)
//   FragHeader   (20 B) x nfrags     -- all fragment headers up front
//   payload area                      -- fragment payloads, same order
//
// Grouping the headers keeps the gather list short (one header block +
// one segment per payload) and lets the receiver demultiplex with a single
// linear scan — the receiver-side "help in sorting out incoming packets"
// the paper attributes to the scheduler's global view.
//
// Bulk-track packet layout (rendezvous data chunks):
//
//   BulkHeader (32 B) | raw bytes
//
// Control bodies (RTS/CTS) travel as regular fragment payloads inside
// eager packets, so they are aggregated with application traffic like any
// other small fragment.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "util/assert.hpp"
#include "util/wire.hpp"

namespace mado::core {

/// Thrown when a packet's *payload* CRC fails while the header block decoded
/// cleanly. Distinguished from plain CheckError so the engine can count it
/// as `rel.payload_crc_drops` (a link-level corruption the reliability layer
/// will repair by retransmission) instead of `rx.malformed`.
class PayloadCrcError : public CheckError {
 public:
  explicit PayloadCrcError(const std::string& what) : CheckError(what) {}
};

constexpr std::uint32_t kPacketMagic = 0x4f44414d;  // "MADO"
constexpr std::uint32_t kBulkMagic = 0x4b4c5542;    // "BULK"
constexpr std::uint8_t kWireVersion = 1;

enum class FragKind : std::uint8_t {
  Data = 0,
  RdvRts = 1,
  RdvCts = 2,
  // One-sided operations ("put/get transfers", paper §2). These are
  // engine-terminated: no application receive is involved on the target.
  RmaPut = 3,      ///< eager put: RmaPutBody + inline data
  RmaGet = 4,      ///< get request: RmaGetBody
  RmaGetData = 5,  ///< eager get reply: RmaGetDataBody + inline data
  RmaAck = 6,      ///< remote-completion ack for puts: RmaAckBody
};

constexpr FragKind kMaxFragKind = FragKind::RmaAck;

/// Flow id reserved for engine-internal one-sided traffic. Application
/// channels must not use it.
constexpr ChannelId kRmaChannel = 0xffffffffu;

/// FragHeader.flags bits.
constexpr std::uint8_t kFlagLastFrag = 0x01;

/// PacketHeader.flags / BulkHeader.flags bits (reliability layer).
/// kPhFlagRelSeq: pkt_seq participates in the per-(rail,track) reliable
/// sequence space — the receiver enforces in-order delivery and the sender
/// retransmits until acked. kPhFlagAck: ack_eager/ack_bulk carry valid
/// cumulative acks (next expected seq per track). kPhFlagPayloadCrc:
/// payload_crc covers the payload area (headers are always CRC-protected).
constexpr std::uint8_t kPhFlagRelSeq = 0x01;
constexpr std::uint8_t kPhFlagAck = 0x02;
constexpr std::uint8_t kPhFlagPayloadCrc = 0x04;

struct PacketHeader {
  std::uint8_t flags = 0;
  std::uint16_t nfrags = 0;
  std::uint32_t pkt_seq = 0;
  NodeId src_node = 0;
  /// Cumulative acks: next expected reliable seq on the peer's eager (track
  /// 0) and bulk (track 1) directions. Valid only with kPhFlagAck.
  std::uint32_t ack_eager = 0;
  std::uint32_t ack_bulk = 0;
  /// CRC-32 over the payload area. Valid only with kPhFlagPayloadCrc.
  std::uint32_t payload_crc = 0;

  static constexpr std::size_t kWireSize = 32;
};

struct FragHeader {
  ChannelId channel = 0;
  MsgSeq msg_seq = 0;
  FragIdx frag_idx = 0;
  std::uint16_t nfrags_total = 0;
  FragKind kind = FragKind::Data;
  std::uint8_t flags = 0;
  std::uint32_t len = 0;

  bool last() const { return (flags & kFlagLastFrag) != 0; }

  static constexpr std::size_t kWireSize = 20;
};

struct BulkHeader {
  std::uint8_t flags = 0;
  NodeId src_node = 0;
  std::uint64_t token = 0;
  std::uint64_t offset = 0;
  std::uint32_t len = 0;
  /// Reliable seq on the sender's bulk track. Valid only with kPhFlagRelSeq.
  std::uint32_t pkt_seq = 0;
  /// Cumulative acks, same semantics as PacketHeader. kPhFlagAck.
  std::uint32_t ack_eager = 0;
  std::uint32_t ack_bulk = 0;
  /// CRC-32 over the chunk data. Valid only with kPhFlagPayloadCrc.
  std::uint32_t payload_crc = 0;
  /// Stripe sequence: the chunk's index in the sender-side stripe plan for
  /// this transfer (MultirailPolicy::Stripe; 0 otherwise). Purely
  /// observability — reassembly keys on (token, offset) — but lets traces
  /// and tests reconstruct which rail carried which slice of the plan.
  std::uint32_t stripe = 0;

  static constexpr std::size_t kWireSize = 53;
};

/// What the bulk data of a rendezvous lands in on the receiving side.
enum class RdvTarget : std::uint8_t {
  Message = 0,    ///< a fragment slot of a posted receive (two-sided)
  Window = 1,     ///< an exposed RMA window (one-sided put)
  GetBuffer = 2,  ///< the requester's pending-get destination buffer
};

struct RtsBody {
  std::uint64_t token = 0;
  std::uint64_t total_len = 0;
  RdvTarget target = RdvTarget::Message;
  std::uint32_t window = 0;  ///< target==Window: destination window id
  std::uint64_t offset = 0;  ///< target==Window: offset within the window
  std::uint64_t aux = 0;     ///< ack token (Window) or get token (GetBuffer)

  static constexpr std::size_t kWireSize = 37;
};

struct RmaPutBody {
  std::uint32_t window = 0;
  std::uint64_t offset = 0;
  std::uint64_t ack_token = 0;
  // followed by the inline data

  static constexpr std::size_t kWireSize = 20;
};

struct RmaGetBody {
  std::uint32_t window = 0;
  std::uint64_t offset = 0;
  std::uint64_t len = 0;
  std::uint64_t get_token = 0;

  static constexpr std::size_t kWireSize = 28;
};

struct RmaGetDataBody {
  std::uint64_t get_token = 0;
  // followed by the inline data

  static constexpr std::size_t kWireSize = 8;
};

struct RmaAckBody {
  std::uint64_t ack_token = 0;

  static constexpr std::size_t kWireSize = 8;
};

struct CtsBody {
  std::uint64_t token = 0;

  static constexpr std::size_t kWireSize = 8;
};

/// Serialize the header block (PacketHeader + all FragHeaders, with CRC)
/// into `out`. The payload area is NOT written — the engine gathers payload
/// segments behind this block. Takes a span so any contiguous container
/// (std::vector, mado::SmallVector, a C array) works without a copy.
void encode_header_block(Bytes& out, const PacketHeader& ph,
                         std::span<const FragHeader> frags);

/// Braced-list convenience: encode_header_block(out, ph, {fh}) / (…, {}).
inline void encode_header_block(Bytes& out, const PacketHeader& ph,
                                std::initializer_list<FragHeader> frags) {
  encode_header_block(
      out, ph, std::span<const FragHeader>(frags.begin(), frags.size()));
}

void encode_rts(Bytes& out, const RtsBody& rts);
RtsBody decode_rts(ByteSpan payload);
void encode_cts(Bytes& out, const CtsBody& cts);
CtsBody decode_cts(ByteSpan payload);

void encode_rma_put(Bytes& out, const RmaPutBody& b);
/// Decodes the body header and sets `data` to the inline payload view.
RmaPutBody decode_rma_put(ByteSpan payload, ByteSpan& data);
void encode_rma_get(Bytes& out, const RmaGetBody& b);
RmaGetBody decode_rma_get(ByteSpan payload);
void encode_rma_get_data(Bytes& out, const RmaGetDataBody& b);
RmaGetDataBody decode_rma_get_data(ByteSpan payload, ByteSpan& data);
void encode_rma_ack(Bytes& out, const RmaAckBody& b);
RmaAckBody decode_rma_ack(ByteSpan payload);

void encode_bulk_header(Bytes& out, const BulkHeader& bh);
/// Decode a bulk packet; returns the header and sets `data` to the raw
/// byte view inside `packet`. Throws CheckError on malformed input.
BulkHeader decode_bulk(ByteSpan packet, ByteSpan& data, bool crc_check);

/// Decoded view of one eager packet. Fragment payload views point into the
/// packet buffer passed to parse(); keep it alive while using them.
struct DecodedPacket {
  PacketHeader header;
  std::vector<FragHeader> frags;
  std::vector<ByteSpan> payloads;  // parallel to frags
};

/// Parse an eager packet. Throws CheckError on malformed input (bad magic,
/// version, CRC, truncation, or payload-length mismatch).
DecodedPacket parse_packet(ByteSpan packet, bool crc_check);

}  // namespace mado::core
