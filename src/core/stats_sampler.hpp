// Timer-driven periodic sampling of an engine's counter registry.
//
// A StatsSampler snapshots Engine::counters_snapshot() every `interval`
// nanoseconds of TimerHost time, producing a time series of counter values
// that can be exported as CSV (one column per counter, one row per tick,
// values are per-interval deltas) or JSON. Because it runs off the engine's
// own TimerHost it works identically under virtual time (SimTimerHost —
// deterministic samples at exact virtual instants) and wall-clock time
// (RealTimerHost — samples on the timer thread).
//
// Contract:
//  - start() may be called once; stop() is idempotent and is also called by
//    the destructor. The sampler must be destroyed (or stopped) BEFORE the
//    engine it observes.
//  - Under simulation the self-re-arming tick keeps the fabric event queue
//    non-empty forever; drive such runs with run_until()/wait_until(), not
//    run_until_idle() (same caveat as Engine::set_auto_rebalance).
//  - samples()/to_csv()/to_json() may be called from any thread, including
//    while sampling is live.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.hpp"

namespace mado::core {

class Engine;

class StatsSampler {
 public:
  struct Sample {
    Nanos time = 0;  ///< TimerHost time at which the snapshot was taken.
    /// Cumulative counter values at `time` (not deltas; exporters derive
    /// per-interval deltas against the previous sample / start baseline).
    std::map<std::string, std::uint64_t, std::less<>> counters;
  };

  /// Observes `engine`'s counters every `interval` ns once started.
  StatsSampler(Engine& engine, Nanos interval);
  ~StatsSampler();

  StatsSampler(const StatsSampler&) = delete;
  StatsSampler& operator=(const StatsSampler&) = delete;

  /// Capture the baseline snapshot and arm the periodic tick.
  void start();

  /// Disarm the tick. Idempotent; safe to call concurrently with a firing
  /// tick (the tick checks an alive flag before touching the engine).
  void stop();

  Nanos interval() const { return interval_; }

  /// Copy of the samples recorded so far (excludes the start() baseline).
  std::vector<Sample> samples() const;

  /// CSV: header "time_ns,<name>,..." over the union of counter names seen
  /// in any sample; one row per tick with per-interval deltas. Counters
  /// absent from a snapshot (not yet created) read as 0.
  std::string to_csv() const;

  /// JSON: {"interval_ns":N,"samples":[{"t":ns,"counters":{name:delta}}]}.
  /// Deltas follow the same convention as to_csv().
  std::string to_json() const;

 private:
  void record_tick();

  Engine& engine_;
  const Nanos interval_;

  mutable std::mutex mu_;               // guards samples_, baseline_, started_
  std::vector<Sample> samples_;
  Sample baseline_;
  bool started_ = false;

  // Liveness handshake with in-flight timer closures: TimerHost cannot
  // cancel, so scheduled ticks hold this flag weakly and bail once cleared.
  std::shared_ptr<std::atomic<bool>> alive_ =
      std::make_shared<std::atomic<bool>>(true);
  // Strong owner of the tick chain; scheduled copies capture a weak_ptr so
  // the closure never owns itself (see Engine::set_auto_rebalance).
  std::shared_ptr<std::function<void()>> tick_;
};

}  // namespace mado::core
