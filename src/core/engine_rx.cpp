// Receive side of the engine: packet demultiplexing, fragment reassembly,
// the unexpected queue, rendezvous RTS/CTS handling and incremental unpack.
//
// Locking: every handler below runs under exactly one peer lock (ps.mu).
// on_packet() is the driver entry; during a progress lap (pump_shard, on
// whichever progress thread owns or stole the shard) it stages the packet
// into the lap's event batch instead of locking (see progress_lap.hpp), so
// a pump of N endpoints costs one lock acquisition, not N. Out-of-lap
// deliveries (a driver IO thread) additionally wake the shard's owning
// progress thread, never the others (per-shard wakeup routing).
#include <algorithm>
#include <cstring>
#include <mutex>

#include "core/engine.hpp"
#include "core/progress_lap.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mado::core {

// ---- driver entry ------------------------------------------------------------

void Engine::on_packet(NodeId peer, RailId rail_id, drv::TrackId track,
                       Bytes payload) {
  (void)track;  // demux is by magic, so shared-track configs need no branch
  if (detail::ProgressLap* lap = detail::t_progress_lap;
      lap && lap->engine == this && lap->peer == peer) {
    // Batched drain: progress() is pumping this peer's endpoints — stage
    // the arrival and let it apply the batch under ONE lock acquisition.
    auto* evs = static_cast<std::vector<RxEvent>*>(lap->events);
    RxEvent ev;
    ev.kind = RxEvent::Kind::Packet;
    ev.rail = rail_id;
    ev.payload = std::move(payload);
    evs->push_back(std::move(ev));
    return;
  }
  PeerState* ps = find_peer(peer);
  if (!ps) return;  // torn down
  {
    PeerLock lk(*ps);
    apply_packet_locked(*ps, rail_id, payload);
    drain_submit_ring_locked(*ps);
    // Arrivals can enqueue control fragments (CTS) or bulk chunks — pump.
    pump_peer_locked(*ps);
    // If the pump found nothing to piggyback the owed ack on, send it
    // standalone (rail may have gone Down meanwhile; the helper checks).
    if (cfg_.reliability && rail_id < ps->rails.size())
      maybe_send_ack_locked(*ps, *ps->rails[rail_id]);
  }
  wake_peer(*ps);
  // The arrival may have queued work only a progress lap can finish (CTS
  // responses to send, completions to poll): wake the shard's owner.
  note_activity(*ps);
}

void Engine::apply_packet_locked(PeerState& ps, RailId rail_id,
                                 const Bytes& payload) {
  if (rail_id >= ps.rails.size()) return;
  try {
    MADO_CHECK_MSG(payload.size() >= 4, "runt packet");
    const std::uint32_t magic =
        static_cast<std::uint32_t>(payload[0]) |
        (static_cast<std::uint32_t>(payload[1]) << 8) |
        (static_cast<std::uint32_t>(payload[2]) << 16) |
        (static_cast<std::uint32_t>(payload[3]) << 24);
    if (magic == kPacketMagic) {
      handle_eager_packet_locked(ps, rail_id, payload);
    } else if (magic == kBulkMagic) {
      handle_bulk_packet_locked(ps, rail_id, payload);
    } else {
      MADO_CHECK_MSG(false, "unknown packet magic");
    }
  } catch (const PayloadCrcError& err) {
    // Headers decoded cleanly but the payload was damaged on the wire.
    // The reliable sequence was NOT consumed, so the sender's retransmit
    // repairs this — counted separately from protocol violations.
    ps.stats.inc("rel.payload_crc_drops");
    MADO_WARN("node " << self_ << ": dropping corrupt payload from peer "
                      << ps.id << ": " << err.what());
  } catch (const CheckError& err) {
    // A malformed or protocol-violating packet must not take the engine
    // down with it (the socket driver's RX thread delivers these); count
    // and drop. The CRC makes corrupted headers land here.
    ps.stats.inc("rx.malformed");
    MADO_WARN("node " << self_ << ": dropping malformed packet from peer "
                      << ps.id << ": " << err.what());
  }
}

// ---- eager path ---------------------------------------------------------------

void Engine::handle_eager_packet_locked(PeerState& ps, RailId rail_id,
                                        const Bytes& payload) {
  DecodedPacket pkt = parse_packet(ByteSpan(payload), cfg_.crc_check);
  Rail& rail = *ps.rails[rail_id];
  const PacketHeader& ph = pkt.header;
  if (cfg_.reliability && (ph.flags & kPhFlagAck)) {
    // Piggybacked acks are processed FIRST — even a duplicate or
    // out-of-order packet carries fresh cumulative acks.
    process_acks_locked(ps, rail, ph.ack_eager, ph.ack_bulk);
  }
  if (cfg_.reliability && ph.nfrags == 0 && !(ph.flags & kPhFlagRelSeq)) {
    ps.stats.inc("rel.acks_rx");  // standalone ack: nothing else to deliver
    return;
  }
  if (!rel_rx_accept_locked(ps, rail, 0, ph.flags, ph.pkt_seq)) return;
  ps.stats.inc("rx.packets");
  ps.stats.inc("rx.bytes", payload.size());
  ps.stats.inc("rx.frags", pkt.frags.size());
  trace_locked(TraceEvent::PacketRx, ps.id, rail_id, pkt.frags.size(),
               payload.size(), 0, ph.pkt_seq);
  for (std::size_t i = 0; i < pkt.frags.size(); ++i) {
    const FragHeader& fh = pkt.frags[i];
    switch (fh.kind) {
      case FragKind::Data:
        deliver_data_frag_locked(ps, fh, pkt.payloads[i]);
        break;
      case FragKind::RdvRts:
        handle_rts_locked(ps, fh, pkt.payloads[i]);
        break;
      case FragKind::RdvCts:
        handle_cts_locked(ps, pkt.payloads[i]);
        break;
      case FragKind::RmaPut:
        handle_rma_put_locked(ps, pkt.payloads[i]);
        break;
      case FragKind::RmaGet:
        handle_rma_get_locked(ps, pkt.payloads[i]);
        break;
      case FragKind::RmaGetData:
        handle_rma_get_data_locked(ps, pkt.payloads[i]);
        break;
      case FragKind::RmaAck:
        handle_rma_ack_locked(ps, pkt.payloads[i]);
        break;
    }
  }
}

void Engine::note_nfrags_locked(RxMessage& msg, const FragHeader& fh) {
  MADO_CHECK_MSG(fh.nfrags_total > 0, "fragment with zero message size");
  MADO_CHECK_MSG(fh.frag_idx < fh.nfrags_total, "fragment index out of range");
  MADO_CHECK_MSG(fh.last() == (fh.frag_idx + 1 == fh.nfrags_total),
                 "inconsistent last-fragment flag");
  if (msg.nfrags_total == 0) {
    msg.nfrags_total = fh.nfrags_total;
  } else {
    MADO_CHECK_MSG(msg.nfrags_total == fh.nfrags_total,
                   "inconsistent message fragment count");
  }
}

void Engine::deliver_data_frag_locked(PeerState& ps, const FragHeader& fh,
                                      ByteSpan payload) {
  if (cfg_.reliability) {
    // Cross-rail replay after a failover can re-deliver a fragment whose
    // message already finished (delivered on the dead rail, ack lost) —
    // or one that landed twice. Dedup instead of treating it as protocol
    // abuse: with reliability on, duplicates are expected physics.
    auto cit = ps.channels.find(fh.channel);
    if (cit != ps.channels.end() &&
        fh.msg_seq < cit->second.rx_done_floor) {
      ps.stats.inc("rel.dup_drops");
      return;
    }
  }
  RxMessage& msg = ps.rx_msgs[{fh.channel, fh.msg_seq}];
  note_nfrags_locked(msg, fh);
  RxSlot& slot = msg.slot(fh.frag_idx);
  if (cfg_.reliability && (slot.have_data || slot.is_rdv)) {
    ps.stats.inc("rel.dup_drops");
    return;
  }
  MADO_CHECK_MSG(!slot.have_data && !slot.is_rdv, "duplicate fragment");
  slot.have_data = true;
  if (slot.posted) {
    MADO_CHECK_MSG(slot.dest_len == payload.size(),
                   "unpack size " << slot.dest_len
                                  << " != fragment size " << payload.size());
    if (!payload.empty())
      std::memcpy(slot.dest, payload.data(), payload.size());
    mark_slot_done_locked(msg, slot);
  } else {
    slot.buffered.assign(payload.begin(), payload.end());
    ps.stats.inc("rx.unexpected_frags");
  }
}

void Engine::mark_slot_done_locked(RxMessage& msg, RxSlot& slot) {
  MADO_ASSERT(!slot.done);
  slot.done = true;
  slot.buffered = Bytes();  // release any unexpected-queue copy
  ++msg.done_count;
}

// ---- rendezvous ----------------------------------------------------------------

void Engine::handle_rts_locked(PeerState& ps, const FragHeader& fh,
                               ByteSpan payload) {
  const RtsBody rts = decode_rts(payload);
  if (rdv_was_done_locked(ps, rts.token)) {
    ps.stats.inc("rel.dup_drops");  // replayed RTS of a finished rendezvous
    return;
  }
  trace_locked(TraceEvent::RdvRts, ps.id, 0, rts.token, rts.total_len);
  switch (rts.target) {
    case RdvTarget::Message: {
      if (cfg_.reliability) {
        auto cit = ps.channels.find(fh.channel);
        if (cit != ps.channels.end() &&
            fh.msg_seq < cit->second.rx_done_floor) {
          ps.stats.inc("rel.dup_drops");
          return;
        }
      }
      RxMessage& msg = ps.rx_msgs[{fh.channel, fh.msg_seq}];
      note_nfrags_locked(msg, fh);
      RxSlot& slot = msg.slot(fh.frag_idx);
      if (cfg_.reliability && (slot.have_data || slot.is_rdv)) {
        ps.stats.inc("rel.dup_drops");
        return;
      }
      MADO_CHECK_MSG(!slot.have_data && !slot.is_rdv, "duplicate RTS");
      slot.is_rdv = true;
      slot.token = rts.token;
      slot.total = rts.total_len;
      RdvRx rx;
      rx.target = RdvTarget::Message;
      rx.channel = fh.channel;
      rx.seq = fh.msg_seq;
      rx.idx = fh.frag_idx;
      ps.rdv_rx.insert_or_assign(rts.token, std::move(rx));
      ps.stats.inc("rx.rdv_rts");
      if (slot.posted) {
        MADO_CHECK_MSG(slot.dest_len == slot.total,
                       "unpack size " << slot.dest_len
                                      << " != rendezvous size "
                                      << slot.total);
        send_cts_locked(ps, fh, slot);
      }
      return;
    }
    case RdvTarget::Window: {
      // One-sided put: the destination is an exposed window — no
      // application receive exists, so the engine answers the CTS itself.
      const RmaWindow win =
          window_checked(rts.window, rts.offset, rts.total_len);
      RdvRx rx;
      rx.target = RdvTarget::Window;
      rx.base = win.base + rts.offset;
      rx.len = rts.total_len;
      rx.ack_token = rts.aux;
      if (cfg_.reliability && ps.rdv_rx.contains(rts.token)) {
        ps.stats.inc("rel.dup_drops");  // replayed RTS, transfer in progress
        return;
      }
      MADO_CHECK_MSG(ps.rdv_rx.emplace(rts.token, std::move(rx)).second,
                     "duplicate RTS token");
      ps.stats.inc("rx.rma_put_rts");
      send_auto_cts_locked(ps, fh, rts.token);
      return;
    }
    case RdvTarget::GetBuffer: {
      // Bulk reply to our own rma_get: route chunks into the requester's
      // destination buffer.
      if (cfg_.reliability && ps.rdv_rx.contains(rts.token)) {
        ps.stats.inc("rel.dup_drops");  // replayed RTS, transfer in progress
        return;
      }
      PendingGet* pg = ps.pending_gets.find(rts.aux);
      if (cfg_.reliability && !pg) {
        ps.stats.inc("rel.dup_drops");  // replayed RTS, get already finished
        return;
      }
      MADO_CHECK_MSG(pg != nullptr, "RTS for unknown get token " << rts.aux);
      MADO_CHECK_MSG(pg->len == rts.total_len, "get reply size mismatch");
      RdvRx rx;
      rx.target = RdvTarget::GetBuffer;
      rx.base = pg->dest;
      rx.len = rts.total_len;
      rx.get_token = rts.aux;
      MADO_CHECK_MSG(ps.rdv_rx.emplace(rts.token, std::move(rx)).second,
                     "duplicate RTS token");
      send_auto_cts_locked(ps, fh, rts.token);
      return;
    }
  }
}

void Engine::send_auto_cts_locked(PeerState& ps, const FragHeader& fh,
                                  std::uint64_t token) {
  TxFrag tf;
  tf.channel = fh.channel;
  tf.msg_seq = fh.msg_seq;
  tf.idx = fh.frag_idx;
  tf.nfrags_total = fh.nfrags_total;
  tf.kind = FragKind::RdvCts;
  tf.cls = TrafficClass::Control;
  tf.owned = ps.slab.take(CtsBody::kWireSize);
  encode_cts(tf.owned, CtsBody{token});
  tf.len = tf.owned.size();
  const Nanos t = std::max(timers_.now(), ps.last_drain_time);
  ps.last_drain_time = t;
  tf.submit_time = t;
  tf.order = next_submit_order_.fetch_add(1, std::memory_order_relaxed);
  const RailId rail = rail_for_class_locked(ps, TrafficClass::Control);
  ps.rails[rail]->backlog.push_control(std::move(tf));
  ps.stats.inc("tx.rdv_cts");
}

void Engine::send_cts_locked(PeerState& ps, const FragHeader& fh,
                             RxSlot& slot) {
  MADO_ASSERT(slot.is_rdv && !slot.cts_sent);
  slot.cts_sent = true;
  TxFrag tf;
  tf.channel = fh.channel;
  tf.msg_seq = fh.msg_seq;
  tf.idx = fh.frag_idx;
  tf.nfrags_total = fh.nfrags_total;
  tf.kind = FragKind::RdvCts;
  tf.cls = TrafficClass::Control;
  CtsBody body{slot.token};
  tf.owned = ps.slab.take(CtsBody::kWireSize);
  encode_cts(tf.owned, body);
  tf.len = tf.owned.size();
  const Nanos t = std::max(timers_.now(), ps.last_drain_time);
  ps.last_drain_time = t;
  tf.submit_time = t;
  tf.order = next_submit_order_.fetch_add(1, std::memory_order_relaxed);
  const RailId rail = rail_for_class_locked(ps, TrafficClass::Control);
  ps.rails[rail]->backlog.push_control(std::move(tf));
  ps.stats.inc("tx.rdv_cts");
  // Caller pumps (post_unpack and handle_eager_packet both do).
}

void Engine::handle_cts_locked(PeerState& ps, ByteSpan payload) {
  const CtsBody cts = decode_cts(payload);
  trace_locked(TraceEvent::RdvCts, ps.id, 0, cts.token);
  RdvTx* rdvp = ps.rdv_tx.find(cts.token);
  if (cfg_.reliability && !rdvp) {
    ps.stats.inc("rel.dup_drops");  // replayed CTS, rendezvous already done
    return;
  }
  MADO_CHECK_MSG(rdvp != nullptr, "CTS for unknown rendezvous");
  RdvTx& rdv = *rdvp;
  if (cfg_.reliability && rdv.cts_received) {
    ps.stats.inc("rel.dup_drops");  // replayed CTS, chunks already queued
    return;
  }
  MADO_CHECK_MSG(!rdv.cts_received, "duplicate CTS");
  rdv.cts_received = true;
  ps.stats.inc("rx.rdv_cts");
  // Handshake latency: RTS submitted → CTS back from the receiver.
  if (rdv.rts_timed) {
    const Nanos now = timers_.now();
    ps.stats.observe("lat.rdv_handshake", now - std::min(now, rdv.rts_time));
  }
  distribute_chunks_locked(ps, cts.token, rdv);
}

void Engine::distribute_chunks_locked(PeerState& ps, std::uint64_t token,
                                      RdvTx& rdv) {
  const std::size_t chunk_size = std::max<std::size_t>(1, cfg_.rdv_chunk);
  if (cfg_.multirail == MultirailPolicy::Stripe) {
    stripe_chunks_locked(ps, token, rdv, chunk_size);
    return;
  }
  for (std::uint64_t off = 0; off < rdv.total; off += chunk_size) {
    BulkChunk chunk;
    chunk.token = token;
    chunk.offset = off;
    chunk.len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(chunk_size, rdv.total - off));
    rdv.queued += chunk.len;
    switch (cfg_.multirail) {
      case MultirailPolicy::SingleRail: {
        const RailId r = rail_for_class_locked(ps, TrafficClass::Bulk);
        ps.rails[r]->bulk_q.push_back(chunk);
        break;
      }
      case MultirailPolicy::StaticSplit: {
        // Proportional-to-bandwidth assignment, decided up front.
        std::size_t best = 0;
        double best_cost = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < ps.rails.size(); ++i) {
          const double bw = ps.rails[i]->ep->caps().effective_bandwidth();
          const double cost =
              (static_cast<double>(ps.rails[i]->static_split_assigned) +
               chunk.len) /
              bw;
          if (cost < best_cost) {
            best_cost = cost;
            best = i;
          }
        }
        ps.rails[best]->static_split_assigned += chunk.len;
        ps.rails[best]->bulk_q.push_back(chunk);
        break;
      }
      case MultirailPolicy::DynamicSplit:
        // Shared pool: each idle bulk track pulls the next chunk, so faster
        // rails automatically take more (paper §2, dynamic load balancing).
        ps.shared_bulk.push_back(chunk);
        break;
      case MultirailPolicy::Stripe:
        MADO_CHECK_MSG(false, "Stripe handled by stripe_chunks_locked");
        break;
    }
  }
}

std::size_t Engine::rail_pending_bytes_locked(const Rail& rail) {
  std::size_t queued = 0;
  for (const BulkChunk& c : rail.bulk_q) queued += c.len;
  // inflight_bytes (until driver completion) and unacked_bytes (until
  // cumulative ack) cover overlapping sets of packets; take the larger so
  // a loaded rail is not charged twice for the same wire bytes.
  const std::size_t unacked =
      rail.rel[0].unacked_bytes + rail.rel[1].unacked_bytes;
  return queued + rail.backlog.byte_count() +
         std::max(rail.inflight_bytes, unacked);
}

void Engine::stripe_chunks_locked(PeerState& ps, std::uint64_t token,
                                  RdvTx& rdv, std::size_t chunk_size) {
  // Cost-model placement (the optimizing layer's stripe hook): split the
  // transfer into per-rail contiguous byte ranges sized so every rail's
  // predicted completion time — per-chunk injection cost (PIO/DMA), wire
  // occupancy at the rail's effective bandwidth, and the backlog it must
  // drain first — comes out equal. Work stealing in pop_bulk_chunk_locked
  // corrects whatever the prediction gets wrong.
  std::vector<strategy_detail::StripeRail> cands(ps.rails.size());
  for (std::size_t i = 0; i < ps.rails.size(); ++i) {
    const Rail& rail = *ps.rails[i];
    cands[i].caps = &rail.ep->caps();
    cands[i].backlog_bytes = rail_pending_bytes_locked(rail);
    cands[i].up = rail.state != RailState::Down;
  }
  std::vector<std::uint64_t> shares;
  const double imbalance = strategy_detail::stripe_shares(
      cands, rdv.total, chunk_size, cfg_.stripe.min_chunk, shares);
  const bool planned =
      std::count_if(shares.begin(), shares.end(),
                    [](std::uint64_t s) { return s > 0; }) > 0;
  if (!planned) {
    // No carrier survived the model (all rails down — failover handles the
    // rest): park everything on the Bulk class rail like SingleRail would.
    const RailId r = rail_for_class_locked(ps, TrafficClass::Bulk);
    shares.assign(ps.rails.size(), 0);
    shares[r] = rdv.total;
  }
  ps.stats.inc("stripe.transfers");
  // Histogram values are integral; record the predicted spread in percent.
  ps.stats.observe("stripe.imbalance_pct",
                   static_cast<std::uint64_t>(imbalance + 0.5));

  // Cut each rail's contiguous range into chunks on its queue. Offsets run
  // low-to-high across rails in index order; stripe ids are global over the
  // plan so traces can replay the placement.
  std::uint64_t off = 0;
  for (std::size_t i = 0; i < ps.rails.size(); ++i) {
    std::uint64_t left = shares[i];
    while (left > 0) {
      BulkChunk chunk;
      chunk.token = token;
      chunk.offset = off;
      chunk.len = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(chunk_size, left));
      chunk.stripe = rdv.next_stripe++;
      off += chunk.len;
      left -= chunk.len;
      rdv.queued += chunk.len;
      ps.rails[i]->bulk_q.push_back(chunk);
      ps.stats.inc("stripe.chunks");
    }
  }
  MADO_ASSERT(off == rdv.total);
}

// ---- bulk path -------------------------------------------------------------------

void Engine::handle_bulk_packet_locked(PeerState& ps, RailId rail_id,
                                       const Bytes& payload) {
  ByteSpan data;
  const BulkHeader bh = decode_bulk(ByteSpan(payload), data, cfg_.crc_check);
  Rail& rail = *ps.rails[rail_id];
  if (cfg_.reliability && (bh.flags & kPhFlagAck))
    process_acks_locked(ps, rail, bh.ack_eager, bh.ack_bulk);
  if (!rel_rx_accept_locked(ps, rail, 1, bh.flags, bh.pkt_seq)) return;
  RdvRx* rxp = ps.rdv_rx.find(bh.token);
  if (!rxp && rdv_was_done_locked(ps, bh.token)) {
    // A chunk delivered on a rail that then died was replayed on the
    // survivor (its ack was lost in the failover) after the rendezvous
    // finished: drop the second copy.
    ps.stats.inc("rel.dup_drops");
    return;
  }
  MADO_CHECK_MSG(rxp != nullptr, "bulk chunk for unknown rendezvous");
  RdvRx& rx = *rxp;
  if (cfg_.reliability && !rx.seen_offsets.insert(bh.offset)) {
    // Same story, rendezvous still in progress: the offset already landed.
    ps.stats.inc("rel.dup_drops");
    return;
  }
  ps.stats.inc("rx.bulk_chunks");
  ps.stats.inc("rx.bytes", payload.size());
  // Reassembly watermark: a chunk starting above the in-order front arrived
  // out of order — another rail (or a stolen chunk) ran ahead. The memcpy
  // below is offset-addressed, so OOO landing is free; the counter just
  // makes cross-rail interleaving observable.
  if (bh.offset > rx.next_contig)
    ps.stats.inc("stripe.reassembly_ooo");
  else
    rx.next_contig = std::max(rx.next_contig, bh.offset + bh.len);
  trace_locked(TraceEvent::BulkRx, ps.id, rail_id, bh.token, bh.offset,
               bh.len, bh.stripe);

  if (rx.target == RdvTarget::Message) {
    auto mit = ps.rx_msgs.find({rx.channel, rx.seq});
    MADO_CHECK(mit != ps.rx_msgs.end());
    RxMessage& msg = mit->second;
    RxSlot& slot = msg.slot(rx.idx);
    MADO_CHECK(slot.is_rdv && slot.posted);
    MADO_CHECK_MSG(bh.offset + bh.len <= slot.total,
                   "bulk chunk out of range");
    if (bh.len > 0)
      std::memcpy(slot.dest + bh.offset, data.data(), bh.len);
    slot.received += bh.len;
    MADO_ASSERT(slot.received <= slot.total);
    if (slot.received == slot.total) {
      mark_slot_done_locked(msg, slot);
      note_rdv_done_locked(ps, bh.token);
      ps.rdv_rx.erase(bh.token);
      ps.stats.inc("rx.rdv_completed");
      trace_locked(TraceEvent::RdvDone, ps.id, rail_id, bh.token,
                   slot.total);
    }
    return;
  }

  // Direct targets: one-sided window or get-reply buffer.
  MADO_CHECK_MSG(bh.offset + bh.len <= rx.len, "bulk chunk out of range");
  if (bh.len > 0) std::memcpy(rx.base + bh.offset, data.data(), bh.len);
  rx.received += bh.len;
  MADO_ASSERT(rx.received <= rx.len);
  if (rx.received < rx.len) return;

  if (rx.target == RdvTarget::Window) {
    push_rma_ack_locked(ps, rx.ack_token);
    ps.stats.inc("rx.rma_puts_completed");
  } else {
    PendingGet* pg = ps.pending_gets.find(rx.get_token);
    MADO_CHECK(pg != nullptr);
    if (pg->state->pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
      ps.stats.inc("rma.gets_completed");
    ps.pending_gets.erase(rx.get_token);
  }
  note_rdv_done_locked(ps, bh.token);
  trace_locked(TraceEvent::RdvDone, ps.id, rail_id, bh.token, rx.len);
  ps.rdv_rx.erase(bh.token);
}

// ---- RMA eager paths -----------------------------------------------------------

void Engine::push_rma_ack_locked(PeerState& ps, std::uint64_t ack_token) {
  TxFrag tf = make_rma_frag_locked(ps, FragKind::RmaAck);
  tf.owned = ps.slab.take(RmaAckBody::kWireSize);
  encode_rma_ack(tf.owned, RmaAckBody{ack_token});
  tf.len = tf.owned.size();
  const RailId rail = rail_for_class_locked(ps, TrafficClass::Control);
  ps.rails[rail]->backlog.push_control(std::move(tf));
  ps.stats.inc("tx.rma_acks");
}

void Engine::handle_rma_put_locked(PeerState& ps, ByteSpan payload) {
  ByteSpan data;
  const RmaPutBody b = decode_rma_put(payload, data);
  const RmaWindow win = window_checked(b.window, b.offset, data.size());
  if (!data.empty())
    std::memcpy(win.base + b.offset, data.data(), data.size());
  ps.stats.inc("rx.rma_puts");
  push_rma_ack_locked(ps, b.ack_token);
}

void Engine::handle_rma_get_locked(PeerState& ps, ByteSpan payload) {
  const RmaGetBody b = decode_rma_get(payload);
  const RmaWindow win = window_checked(b.window, b.offset, b.len);
  ps.stats.inc("rx.rma_gets");

  MADO_CHECK(!ps.rails.empty());
  const RailId rail_id = rail_for_class_locked(ps, TrafficClass::PutGet);
  Rail& rail = *ps.rails[rail_id];
  const std::size_t rdv_thr = cfg_.rdv_threshold_override != 0
                                  ? cfg_.rdv_threshold_override
                                  : rail.ep->caps().rdv_threshold;
  if (b.len >= rdv_thr) {
    // Bulk reply: rendezvous straight from the window into the requester's
    // get buffer (the requester auto-answers the CTS).
    const std::uint64_t token =
        next_rdv_token_.fetch_add(1, std::memory_order_relaxed);
    RdvTx rdv;
    rdv.peer = ps.id;
    rdv.channel = kRmaChannel;
    rdv.data = win.base + b.offset;
    rdv.total = b.len;
    rdv.state = nullptr;  // no local handle: the requester tracks completion
    rdv.rts_time = timers_.now();
    rdv.rts_timed = true;
    rdv.cls = TrafficClass::PutGet;
    ps.rdv_tx.emplace(token, std::move(rdv));
    trace_locked(TraceEvent::RdvRts, ps.id, rail_id, token, b.len);

    TxFrag tf = make_rma_frag_locked(ps, FragKind::RdvRts);
    RtsBody rts;
    rts.token = token;
    rts.total_len = b.len;
    rts.target = RdvTarget::GetBuffer;
    rts.aux = b.get_token;
    tf.owned = ps.slab.take(RtsBody::kWireSize);
    encode_rts(tf.owned, rts);
    tf.len = tf.owned.size();
    rail.backlog.push(std::move(tf));
  } else {
    TxFrag tf = make_rma_frag_locked(ps, FragKind::RmaGetData);
    tf.owned = ps.slab.take(RmaGetDataBody::kWireSize + b.len);
    encode_rma_get_data(tf.owned, RmaGetDataBody{b.get_token});
    tf.owned.insert(tf.owned.end(), win.base + b.offset,
                    win.base + b.offset + b.len);
    tf.len = tf.owned.size();
    rail.backlog.push(std::move(tf));
  }
}

void Engine::handle_rma_get_data_locked(PeerState& ps, ByteSpan payload) {
  ByteSpan data;
  const RmaGetDataBody b = decode_rma_get_data(payload, data);
  PendingGet* pg = ps.pending_gets.find(b.get_token);
  if (cfg_.reliability && !pg) {
    ps.stats.inc("rel.dup_drops");  // replayed reply, get already finished
    return;
  }
  MADO_CHECK_MSG(pg != nullptr,
                 "get reply for unknown token " << b.get_token);
  MADO_CHECK_MSG(pg->len == data.size(), "get reply size mismatch");
  std::memcpy(pg->dest, data.data(), data.size());
  if (pg->state->pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
    ps.stats.inc("rma.gets_completed");
  ps.pending_gets.erase(b.get_token);
}

void Engine::handle_rma_ack_locked(PeerState& ps, ByteSpan payload) {
  const RmaAckBody b = decode_rma_ack(payload);
  SendStateRef* sp = ps.rma_acks.find(b.ack_token);
  if (cfg_.reliability && !sp) {
    ps.stats.inc("rel.dup_drops");  // replayed ack, put already completed
    return;
  }
  MADO_CHECK_MSG(sp != nullptr, "unexpected RMA ack " << b.ack_token);
  if ((*sp)->pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
    ps.stats.inc("rma.puts_completed");
  ps.rma_acks.erase(b.ack_token);
}

// ---- application receive API ------------------------------------------------------

MsgSeq Engine::attach_recv(NodeId peer, ChannelId ch) {
  PeerState& ps = peer_ref(peer);
  std::lock_guard<std::mutex> lk(ps.mu);
  auto it = ps.channels.find(ch);
  MADO_CHECK_MSG(it != ps.channels.end(), "channel " << ch << " not open");
  return it->second.next_attach_seq++;
}

bool Engine::probe_recv(NodeId peer, ChannelId ch) const {
  const PeerState* ps = find_peer(peer);
  if (!ps) return false;
  std::lock_guard<std::mutex> lk(ps->mu);
  auto cit = ps->channels.find(ch);
  MADO_CHECK_MSG(cit != ps->channels.end(), "channel " << ch << " not open");
  auto it = ps->rx_msgs.find({ch, cit->second.next_attach_seq});
  return it != ps->rx_msgs.end() && it->second.nfrags_total != 0;
}

bool Engine::recv_complete(NodeId peer, ChannelId ch, MsgSeq seq) const {
  const PeerState* ps = find_peer(peer);
  if (!ps) return false;
  std::lock_guard<std::mutex> lk(ps->mu);
  auto it = ps->rx_msgs.find({ch, seq});
  return it != ps->rx_msgs.end() && it->second.complete();
}

void Engine::post_unpack(NodeId peer, ChannelId ch, MsgSeq seq, FragIdx idx,
                         void* buf, std::size_t len) {
  MADO_CHECK(buf != nullptr || len == 0);
  PeerState& ps = peer_ref(peer);
  {
    std::lock_guard<std::mutex> lk(ps.mu);
    RxMessage& msg = ps.rx_msgs[{ch, seq}];
    RxSlot& slot = msg.slot(idx);
    MADO_CHECK_MSG(!slot.posted, "fragment already unpacked");
    slot.posted = true;
    slot.dest = static_cast<Byte*>(buf);
    slot.dest_len = len;
    ++msg.posted_count;

    if (slot.have_data) {
      MADO_CHECK_MSG(slot.buffered.size() == len,
                     "unpack size " << len << " != fragment size "
                                    << slot.buffered.size());
      if (len > 0) std::memcpy(buf, slot.buffered.data(), len);
      mark_slot_done_locked(msg, slot);
    } else if (slot.is_rdv && !slot.cts_sent) {
      MADO_CHECK_MSG(slot.total == len,
                     "unpack size " << len << " != rendezvous size "
                                    << slot.total);
      FragHeader fh;
      fh.channel = ch;
      fh.msg_seq = seq;
      fh.frag_idx = idx;
      fh.nfrags_total = msg.nfrags_total;
      send_cts_locked(ps, fh, slot);
      pump_peer_locked(ps);
    }
  }
  wake_peer(ps);
}

void Engine::wait_frag(NodeId peer, ChannelId ch, MsgSeq seq, FragIdx idx) {
  PeerState& ps = peer_ref(peer);
  const bool ok = wait_peer_impl(
      ps,
      [&ps, ch, seq, idx] {
        std::lock_guard<std::mutex> lk(ps.mu);
        auto it = ps.rx_msgs.find({ch, seq});
        if (it == ps.rx_msgs.end()) return false;
        if (it->second.slots.size() <= idx) return false;
        return it->second.slots[idx].done;
      },
      kDefaultTimeout);
  MADO_CHECK_MSG(ok, "timed out waiting for fragment " << idx
                                                       << " of message "
                                                       << seq);
}

std::size_t Engine::wait_frag_size(NodeId peer, ChannelId ch, MsgSeq seq,
                                   FragIdx idx) {
  // A fragment's size is known once either its eager payload is buffered,
  // its unpack already completed, or — for rendezvous — the RTS arrived.
  PeerState& ps = peer_ref(peer);
  std::size_t size = 0;
  const bool ok = wait_peer_impl(
      ps,
      [&ps, ch, seq, idx, &size] {
        std::lock_guard<std::mutex> lk(ps.mu);
        auto it = ps.rx_msgs.find({ch, seq});
        if (it == ps.rx_msgs.end() || it->second.slots.size() <= idx)
          return false;
        const RxSlot& slot = it->second.slots[idx];
        if (slot.is_rdv) {
          size = slot.total;
          return true;
        }
        if (slot.have_data && !slot.done) {
          size = slot.buffered.size();
          return true;
        }
        if (slot.done) {
          size = slot.dest_len;
          return true;
        }
        return false;
      },
      kDefaultTimeout);
  MADO_CHECK_MSG(ok, "timed out waiting for fragment " << idx << " size");
  return size;
}

void Engine::finish_recv(NodeId peer, ChannelId ch, MsgSeq seq,
                         FragIdx nposted) {
  // First learn the message's fragment count (the first arrived fragment
  // carries it), then check the application consumed everything, then wait
  // for full delivery.
  PeerState& ps = peer_ref(peer);
  bool ok = wait_peer_impl(
      ps,
      [&ps, ch, seq] {
        std::lock_guard<std::mutex> lk(ps.mu);
        auto it = ps.rx_msgs.find({ch, seq});
        return it != ps.rx_msgs.end() && it->second.nfrags_total != 0;
      },
      kDefaultTimeout);
  MADO_CHECK_MSG(ok, "timed out waiting for message " << seq);
  {
    std::lock_guard<std::mutex> lk(ps.mu);
    const RxMessage& msg = ps.rx_msgs.at({ch, seq});
    MADO_CHECK_MSG(nposted == msg.nfrags_total,
                   "finish() after unpacking " << nposted << " of "
                                               << msg.nfrags_total
                                               << " fragments");
  }
  ok = wait_peer_impl(
      ps,
      [&ps, ch, seq] {
        std::lock_guard<std::mutex> lk(ps.mu);
        auto it = ps.rx_msgs.find({ch, seq});
        return it != ps.rx_msgs.end() && it->second.complete();
      },
      kDefaultTimeout);
  MADO_CHECK_MSG(ok, "timed out completing message " << seq);
  {
    std::lock_guard<std::mutex> lk(ps.mu);
    ps.rx_msgs.erase({ch, seq});
    auto cit = ps.channels.find(ch);
    if (cit != ps.channels.end() && seq >= cit->second.rx_done_floor)
      cit->second.rx_done_floor = seq + 1;  // dedup floor for rail replays
    ps.stats.inc("rx.msgs_completed");
  }
}

void Engine::flush_channel(NodeId peer, ChannelId ch) {
  PeerState* ps = find_peer(peer);
  if (!ps) return;  // peer never attached: trivially flushed
  const bool ok = wait_peer_impl(
      *ps,
      [ps, ch] {
        std::lock_guard<std::mutex> lk(ps->mu);
        auto it = ps->channels.find(ch);
        return it == ps->channels.end() ||
               (it->second.outstanding_sends == 0 &&
                (!ps->ring ||
                 ps->ring_pending.load(std::memory_order_acquire) == 0));
      },
      kDefaultTimeout);
  MADO_CHECK_MSG(ok, "timed out flushing channel " << ch);
}

}  // namespace mado::core
