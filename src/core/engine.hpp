// The communication engine: Figure 1 of the paper in code.
//
//   Application/middleware layer — Channel::post() appends fragments to the
//     collect-layer backlog and returns immediately.
//   Optimizing layer — when a NIC track becomes idle (send-completion
//     callback) the configured Strategy reorganizes the accumulated backlog
//     into the next packet. While a track is busy, the backlog grows — that
//     is the optimizer's lookahead pool.
//   Transfer layer — drv::DriverEndpoint rails (one or more per peer, of
//     possibly different technologies), each with eager and bulk tracks.
//
// Also implemented here: the rendezvous protocol (RTS travels as an
// aggregatable control fragment; data flows on bulk tracks, split over
// rails per MultirailPolicy), traffic classes with dynamic re-assignment,
// and the receive side (demultiplexing, unexpected-fragment buffering,
// incremental unpack).
//
// Threading model: one mutex guards all engine state. Driver callbacks are
// invoked without the lock (driver contract) and re-acquire it. In
// simulation the caller pumps the shared Fabric (set_external_progress);
// with real drivers a progress thread may be started instead.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/api.hpp"
#include "core/backlog.hpp"
#include "core/config.hpp"
#include "core/message.hpp"
#include "core/packet.hpp"
#include "core/payload_pool.hpp"
#include "core/strategy.hpp"
#include "core/timer_host.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"
#include "drivers/driver.hpp"
#include "util/stats.hpp"

namespace mado::core {

class Engine final {
 public:
  Engine(NodeId self, EngineConfig cfg, TimerHost& timers);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ---- topology -----------------------------------------------------

  /// Attach one rail (driver endpoint) toward `peer`. Rails are indexed in
  /// attach order. Must complete before traffic starts.
  RailId add_rail(NodeId peer, std::unique_ptr<drv::DriverEndpoint> ep);
  std::size_t rail_count(NodeId peer) const;

  /// Open a logical flow to `peer`. Both sides must use the same id.
  Channel open_channel(NodeId peer, ChannelId id,
                       TrafficClass cls = TrafficClass::SmallEager);

  // ---- progression ----------------------------------------------------

  /// Drain driver completions/arrivals and due timers once.
  void progress();

  /// Simulation mode: a callback that advances the shared world by one
  /// event (e.g. [&]{ return fabric.step(); }); wait loops call it instead
  /// of sleeping. Returns false when the world is idle.
  void set_external_progress(std::function<bool()> fn);

  /// Real-driver mode: spawn a thread that calls progress() continuously.
  void start_progress_thread();
  void stop_progress_thread();

  // ---- blocking helpers ----------------------------------------------

  bool send_done(const SendHandle& h) const;
  /// True once the engine gave up on the message (its rail died with no
  /// survivor to fail over to). wait_send() then returns false immediately.
  bool send_failed(const SendHandle& h) const;
  bool wait_send(const SendHandle& h, Nanos timeout = kDefaultTimeout);
  /// Wait until `pred` holds. `pred` is evaluated under the engine lock.
  bool wait_until(const std::function<bool()>& pred,
                  Nanos timeout = kDefaultTimeout);
  /// Wait until all backlogs, bulk queues and in-flight packets drain.
  bool flush(Nanos timeout = kDefaultTimeout);

  // ---- one-sided put/get (paper §2, "put/get transfers") ---------------

  using WindowId = std::uint32_t;

  /// Expose `len` bytes at `base` as window `id` for one-sided access by
  /// any connected peer. The memory must outlive the engine's traffic.
  void expose_window(WindowId id, void* base, std::size_t len);

  /// One-sided write into the peer's window. The handle completes on the
  /// peer's acknowledgement (remote completion). `data` must stay valid
  /// until then. Large puts flow through the rendezvous bulk path with an
  /// automatic CTS (no application involvement on the target).
  SendHandle rma_put(NodeId peer, WindowId window, std::uint64_t offset,
                     const void* data, std::size_t len,
                     TrafficClass cls = TrafficClass::PutGet);

  /// One-sided read from the peer's window into `dest`. The handle
  /// completes when all bytes have landed.
  SendHandle rma_get(NodeId peer, WindowId window, std::uint64_t offset,
                     void* dest, std::size_t len,
                     TrafficClass cls = TrafficClass::PutGet);

  // ---- traffic classes (paper §2) --------------------------------------

  void set_class_rail(TrafficClass cls, RailId rail);
  RailId class_rail(TrafficClass cls) const;
  /// One dynamic re-assignment step: move latency-sensitive classes
  /// (Control, SmallEager) to the currently least-loaded rail.
  void rebalance_classes();
  /// Re-run rebalance_classes() every `interval` until the engine dies.
  void set_auto_rebalance(Nanos interval);

  // ---- introspection ---------------------------------------------------

  StatsRegistry& stats() { return stats_; }

  /// Attach an event tracer (nullptr detaches). May be shared by several
  /// engines; must outlive the engine or be detached first. Safe to call
  /// while traffic is in flight: after set_tracer(nullptr) returns, no
  /// thread is still recording into the old tracer (it may be destroyed).
  void set_tracer(Tracer* tracer);
  /// Currently attached tracer (racy read; for diagnostics).
  Tracer* tracer() const { return tracer_.load(std::memory_order_acquire); }

  /// Thread-safe copy of all counters (taken under the engine lock) —
  /// usable from timer callbacks and monitoring threads while traffic is
  /// in flight, unlike stats() which hands out the live registry.
  std::map<std::string, std::uint64_t, std::less<>> counters_snapshot() const;

  const EngineConfig& config() const { return cfg_; }
  NodeId self() const { return self_; }
  std::string strategy_name() const { return strategy_->name(); }
  TimerHost& timers() { return timers_; }

  std::size_t backlog_frags(NodeId peer, RailId rail) const;
  std::size_t inflight_packets() const;
  std::size_t pending_bulk_chunks(NodeId peer) const;

  /// Consistent point-in-time view of all queues (for monitoring/tools).
  struct Snapshot {
    struct RailInfo {
      std::string driver;
      RailState state = RailState::Up;
      std::size_t backlog_frags = 0;
      std::size_t backlog_bytes = 0;
      std::size_t bulk_chunks = 0;
      std::size_t outstanding_packets = 0;
      std::size_t inflight_bytes = 0;
      std::size_t unacked_packets = 0;  ///< reliability: sent, not yet acked
    };
    struct PeerInfo {
      NodeId id = 0;
      std::vector<RailInfo> rails;
      std::size_t shared_bulk_chunks = 0;
      std::size_t open_channels = 0;
      std::size_t rx_pending_msgs = 0;
    };
    std::vector<PeerInfo> peers;
    std::size_t inflight_packets = 0;
    std::size_t rdv_tx_active = 0;
    std::size_t rdv_rx_active = 0;
    std::size_t windows_exposed = 0;
    std::size_t pending_gets = 0;

    bool quiescent() const;
    std::string to_string() const;
  };
  Snapshot snapshot() const;

  static constexpr Nanos kDefaultTimeout = 30ull * kNanosPerSec;

 private:
  friend class Channel;
  friend class IncomingMessage;

  // ---- internal types --------------------------------------------------

  struct Rail;

  /// Per-rail driver handler: forwards callbacks with (peer, rail) context.
  struct RailPort final : drv::EndpointHandler {
    Engine* engine = nullptr;
    NodeId peer = 0;
    RailId rail = 0;
    void on_send_complete(drv::TrackId track, std::uint64_t token) override {
      engine->on_send_complete(peer, rail, track, token);
    }
    void on_packet(drv::TrackId track, Bytes payload) override {
      engine->on_packet(peer, rail, track, std::move(payload));
    }
    void on_send_failed(drv::TrackId track, std::uint64_t token) override {
      engine->on_send_failed(peer, rail, track, token);
    }
    void on_link_down() override { engine->on_link_down(peer, rail); }
  };

  /// One pending rendezvous bulk chunk.
  struct BulkChunk {
    std::uint64_t token = 0;
    std::uint64_t offset = 0;
    std::uint32_t len = 0;
    /// Stripe sequence within the transfer's plan (Stripe policy; 0
    /// otherwise). Travels to the wire/trace for observability.
    std::uint32_t stripe = 0;
  };

  /// Per-(rail, reliable stream) go-back-N state. Stream 0 carries eager
  /// packets, stream 1 bulk chunks — independent of the physical track
  /// (shared-track rails multiplex both streams on track 0; per-stream
  /// sequence spaces keep them untangled). All guarded by the engine lock.
  struct RelTrack {
    // Sender.
    std::uint32_t next_seq = 0;  ///< next reliable seq to assign
    std::uint32_t acked = 0;     ///< cumulative: all seqs < acked are acked
    std::deque<std::uint64_t> unacked;  ///< inflight tokens, seq order
    std::size_t unacked_bytes = 0;      ///< wire bytes awaiting ack
    // Retransmit timer (TimerHost cannot cancel → generation counter, same
    // protocol as the nagle timer below).
    bool rto_pending = false;
    std::uint64_t rto_gen = 0;
    std::uint32_t armed_acked = 0;  ///< `acked` when the timer was armed
    Nanos rto = 0;                  ///< current backoff (0 = cfg initial)
    std::size_t retries = 0;        ///< consecutive no-progress timeouts
    // Receiver.
    std::uint32_t rx_next = 0;  ///< next expected seq from the peer
  };

  struct Rail {
    std::unique_ptr<drv::DriverEndpoint> ep;
    RailPort port;
    std::vector<std::size_t> outstanding;  // per track
    TxBacklog backlog;
    std::deque<BulkChunk> bulk_q;  // SingleRail / StaticSplit chunks
    bool bulk_turn = false;        // shared-track alternation
    RailState state = RailState::Up;
    RelTrack rel[2];       // [0] eager stream, [1] bulk stream
    bool ack_owed = false; // reliable data accepted since our last ack out
    // Nagle timer state. TimerHost cannot cancel a scheduled timer, so a
    // re-arm bumps the generation and the superseded callback no-ops on
    // the mismatch. `nagle_deadline` is only meaningful while
    // `nagle_timer_pending` is set.
    bool nagle_timer_pending = false;
    Nanos nagle_deadline = 0;
    std::uint64_t nagle_timer_gen = 0;
    std::uint64_t flow_index_ops_flushed = 0;  // backlog ops already counted
    std::uint32_t pkt_seq = 0;
    std::size_t inflight_bytes = 0;
    std::uint64_t static_split_assigned = 0;  // bytes, for StaticSplit

    drv::TrackId bulk_track() const {
      return ep->caps().track_count > 1 ? drv::kTrackBulk : drv::kTrackEager;
    }
    bool shared_track() const { return ep->caps().track_count == 1; }
    bool track_free(drv::TrackId t) const {
      return outstanding[t] < ep->caps().track_depth;
    }
  };

  struct ChannelState {
    TrafficClass cls = TrafficClass::SmallEager;
    MsgSeq next_tx_seq = 0;
    MsgSeq next_attach_seq = 0;
    std::uint32_t outstanding_sends = 0;
    /// Reliability: messages with seq below this finished delivery; frags
    /// replayed across rails after a failover that land late are dropped
    /// as duplicates instead of resurrecting a completed message.
    MsgSeq rx_done_floor = 0;
  };

  /// Receive-side state of one fragment.
  struct RxSlot {
    bool have_data = false;  // eager payload arrived (buffered or copied)
    Bytes buffered;          // payload when it arrived before the unpack
    Byte* dest = nullptr;
    std::size_t dest_len = 0;
    bool posted = false;
    bool done = false;
    // Rendezvous:
    bool is_rdv = false;
    bool cts_sent = false;
    std::uint64_t token = 0;
    std::uint64_t total = 0;
    std::uint64_t received = 0;
  };

  struct RxMessage {
    std::uint16_t nfrags_total = 0;  // 0 = not known yet
    std::vector<RxSlot> slots;
    std::uint16_t posted_count = 0;
    std::uint16_t done_count = 0;

    RxSlot& slot(FragIdx idx) {
      if (slots.size() <= idx) slots.resize(idx + std::size_t{1});
      return slots[idx];
    }
    bool complete() const {
      return nfrags_total != 0 && done_count == nfrags_total;
    }
  };

  using RxKey = std::pair<ChannelId, MsgSeq>;

  struct PeerState {
    NodeId id = 0;
    std::vector<std::unique_ptr<Rail>> rails;
    std::map<ChannelId, ChannelState> channels;
    std::map<RxKey, RxMessage> rx_msgs;
    std::deque<BulkChunk> shared_bulk;  // DynamicSplit chunk pool
  };

  /// Sender-side rendezvous state.
  struct RdvTx {
    NodeId peer = 0;
    ChannelId channel = 0;
    const Byte* data = nullptr;
    Bytes storage;  ///< keeps Safe-mode payload copies alive until sent
    std::uint64_t total = 0;
    std::uint64_t queued = 0;     // bytes cut into chunks so far
    std::uint64_t completed = 0;  // bytes whose chunk send completed
    std::uint32_t next_stripe = 0;  // next stripe id to assign (Stripe)
    bool cts_received = false;
    Nanos rts_time = 0;  ///< when the RTS was submitted (handshake latency)
    /// True once rts_time is a real timestamp. A plain `rts_time != 0`
    /// check would silently drop latency samples for transfers submitted at
    /// virtual time 0 — the very first message of every simulation.
    bool rts_timed = false;
    TrafficClass cls = TrafficClass::Bulk;
    /// Null for puts with remote acknowledgement (the handle then lives in
    /// rma_acks_ and completes on the RmaAck, not on local chunk completion).
    SendStateRef state;
  };

  /// Receiver-side rendezvous routing: where bulk chunks for (peer, token)
  /// land, and what happens when the last byte arrives.
  struct RdvRx {
    RdvTarget target = RdvTarget::Message;
    // Message target:
    ChannelId channel = 0;
    MsgSeq seq = 0;
    FragIdx idx = 0;
    // Direct targets (Window / GetBuffer):
    Byte* base = nullptr;
    std::uint64_t len = 0;
    std::uint64_t received = 0;
    std::uint64_t ack_token = 0;  ///< Window: RmaAck to send on completion
    std::uint64_t get_token = 0;  ///< GetBuffer: pending get to complete
    /// Reliability: chunk offsets already applied, so a chunk replayed on a
    /// surviving rail (delivered once, ack lost) is not double-counted.
    std::set<std::uint64_t> seen_offsets;
    /// Reassembly watermark: lowest offset not yet known-contiguous from 0.
    /// Chunks landing above it arrived out of order (another rail ran
    /// ahead) — counted as `stripe.reassembly_ooo`.
    std::uint64_t next_contig = 0;
  };

  struct RmaWindow {
    Byte* base = nullptr;
    std::size_t len = 0;
  };

  struct PendingGet {
    Byte* dest = nullptr;
    std::uint64_t len = 0;
    SendStateRef state;
  };

  /// One in-flight packet (owns header block + fragment payload storage).
  /// With reliability on, the record outlives driver completion: it is the
  /// retransmit buffer, erased only when acked AND no transmission is still
  /// inside the driver (gather segments must stay valid until completion).
  struct InFlight {
    NodeId peer = 0;
    RailId rail = 0;
    drv::TrackId track = 0;
    Bytes header_block;
    FragList frags;
    bool is_bulk = false;
    std::uint64_t rdv_token = 0;
    std::uint64_t chunk_off = 0;
    std::uint32_t chunk_len = 0;
    std::uint32_t chunk_stripe = 0;
    std::size_t wire_bytes = 0;
    // Reliability:
    bool reliable = false;       ///< occupies a slot in a rel seq stream
    std::uint8_t rel_stream = 0; ///< 0 eager, 1 bulk
    std::uint32_t rel_seq = 0;
    bool acked = false;
    std::uint32_t tx_outstanding = 0;  ///< driver sends not yet completed
  };

  // ---- submit path (called from handles) -------------------------------

  SendHandle submit(NodeId peer, ChannelId ch, Message msg);
  MsgSeq attach_recv(NodeId peer, ChannelId ch);
  bool probe_recv(NodeId peer, ChannelId ch) const;
  void post_unpack(NodeId peer, ChannelId ch, MsgSeq seq, FragIdx idx,
                   void* buf, std::size_t len);
  void wait_frag(NodeId peer, ChannelId ch, MsgSeq seq, FragIdx idx);
  std::size_t wait_frag_size(NodeId peer, ChannelId ch, MsgSeq seq,
                             FragIdx idx);
  void finish_recv(NodeId peer, ChannelId ch, MsgSeq seq, FragIdx nposted);
  void flush_channel(NodeId peer, ChannelId ch);

  // ---- driver callback entry (lock NOT held) ---------------------------

  void on_send_complete(NodeId peer, RailId rail, drv::TrackId track,
                        std::uint64_t token);
  void on_packet(NodeId peer, RailId rail, drv::TrackId track, Bytes payload);
  /// A queued send will never complete (the driver's wire broke under it).
  /// Treated as a link failure: the whole rail fails over in one sweep,
  /// which replays or fails this token's record along with the rest.
  void on_send_failed(NodeId peer, RailId rail, drv::TrackId track,
                      std::uint64_t token);
  void on_link_down(NodeId peer, RailId rail);

  // ---- locked internals -------------------------------------------------

  PeerState& peer_locked(NodeId peer);
  PeerState* find_peer_locked(NodeId peer);
  const PeerState* find_peer_locked(NodeId peer) const;
  RailId rail_for_class_locked(const PeerState& ps, TrafficClass cls) const;
  /// Rail choice for an eager submission (honors EagerRailPolicy).
  RailId rail_for_submit_locked(const PeerState& ps, TrafficClass cls) const;

  void pump_all_locked();
  void pump_peer_locked(PeerState& ps);
  void pump_rail_locked(PeerState& ps, Rail& rail);
  bool try_send_eager_locked(PeerState& ps, Rail& rail);
  bool try_send_bulk_locked(PeerState& ps, Rail& rail);
  void send_packet_locked(PeerState& ps, Rail& rail, FragList&& frags);
  void send_bulk_chunk_locked(PeerState& ps, Rail& rail, BulkChunk chunk);
  bool pop_bulk_chunk_locked(PeerState& ps, Rail& rail, BulkChunk& out);
  void schedule_nagle_timer_locked(PeerState& ps, Rail& rail, Nanos when);

  void complete_send_locked(PeerState& ps, Rail& rail, drv::TrackId track,
                            std::uint64_t token);
  void complete_frag_state_locked(PeerState& ps, ChannelId ch,
                                  const SendStateRef& state);
  /// Final bookkeeping of a fully-done InFlight record (frag states / rdv
  /// progress, buffer recycling). With reliability off this runs at driver
  /// completion; with it on, when acked and no transmission is in flight.
  void finalize_inflight_locked(PeerState& ps, InFlight& rec);

  // ---- reliability layer (all no-ops unless cfg_.reliability) -----------

  /// Serial-number comparison on the u32 sequence circle.
  static bool seq_less(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::int32_t>(a - b) < 0;
  }
  void process_acks_locked(PeerState& ps, Rail& rail, std::uint32_t ack_eager,
                           std::uint32_t ack_bulk);
  void arm_rto_locked(PeerState& ps, Rail& rail, int stream);
  void rto_expired_locked(PeerState& ps, Rail& rail, int stream);
  void retransmit_locked(Rail& rail, std::uint64_t token, InFlight& rec);
  /// Send a standalone (zero-fragment) cumulative-ack packet if one is owed
  /// and no data packet is about to piggyback it.
  void maybe_send_ack_locked(PeerState& ps, Rail& rail);
  /// Accept/dup/ooo decision for an arriving reliable packet; true = accept.
  bool rel_rx_accept_locked(Rail& rail, int stream, std::uint8_t flags,
                            std::uint32_t seq);
  /// Declare a rail dead: drain its un-acked in-flight records, backlog and
  /// bulk queue onto a surviving Up rail (or fail the sends if none).
  void fail_rail_locked(PeerState& ps, Rail& rail);
  /// Mark a send as failed (idempotent) and release its channel slot.
  void fail_state_locked(PeerState& ps, ChannelId ch,
                         const SendStateRef& state);
  /// Reliability: remember (peer, token) of a completed rendezvous so a
  /// replayed RTS/chunk for it is dropped as a duplicate, bounded in size.
  void note_rdv_done_locked(NodeId peer, std::uint64_t token);
  bool rdv_was_done_locked(NodeId peer, std::uint64_t token) const;

  void handle_eager_packet_locked(PeerState& ps, RailId rail,
                                  const Bytes& payload);
  void handle_bulk_packet_locked(PeerState& ps, RailId rail,
                                 const Bytes& payload);
  void deliver_data_frag_locked(PeerState& ps, const FragHeader& fh,
                                ByteSpan payload);
  void handle_rts_locked(PeerState& ps, const FragHeader& fh,
                         ByteSpan payload);
  void handle_cts_locked(PeerState& ps, ByteSpan payload);
  void note_nfrags_locked(RxMessage& msg, const FragHeader& fh);
  void send_cts_locked(PeerState& ps, const FragHeader& fh, RxSlot& slot);
  void distribute_chunks_locked(PeerState& ps, std::uint64_t token,
                                RdvTx& rdv);
  /// MultirailPolicy::Stripe placement: consult the cost model
  /// (strategy_detail::stripe_shares) to split the transfer into per-rail
  /// contiguous ranges, then cut each range into chunks on that rail's
  /// queue. Falls back to the Bulk class rail when fewer than two rails can
  /// carry traffic.
  void stripe_chunks_locked(PeerState& ps, std::uint64_t token, RdvTx& rdv,
                            std::size_t chunk_size);
  /// Bytes that must drain from `rail` before a newly-queued bulk chunk
  /// moves: queued bulk chunks + eager backlog + the larger of
  /// driver-in-flight and un-acked wire bytes (they overlap; counting both
  /// would double-charge a loaded rail).
  static std::size_t rail_pending_bytes_locked(const Rail& rail);
  void mark_slot_done_locked(RxMessage& msg, RxSlot& slot);

  // RMA internals.
  void handle_rma_put_locked(PeerState& ps, ByteSpan payload);
  void handle_rma_get_locked(PeerState& ps, ByteSpan payload);
  void handle_rma_get_data_locked(PeerState& ps, ByteSpan payload);
  void handle_rma_ack_locked(ByteSpan payload);
  void send_auto_cts_locked(PeerState& ps, const FragHeader& fh,
                            std::uint64_t token);
  void push_rma_ack_locked(PeerState& ps, std::uint64_t ack_token);
  const RmaWindow& window_locked(WindowId id, std::uint64_t offset,
                                 std::uint64_t len) const;
  TxFrag make_rma_frag_locked(FragKind kind);

  // ---- wait plumbing ---------------------------------------------------

  bool wait_until_impl(const std::function<bool()>& pred, Nanos timeout);

  /// Emit a trace record if a tracer is attached (callable under the lock).
  /// The pointer is loaded exactly once (acquire) so a concurrent
  /// set_tracer cannot tear the check-then-use pair; see set_tracer for the
  /// detach-quiescence guarantee.
  void trace_locked(TraceEvent ev, NodeId peer, RailId rail, std::uint64_t a,
                    std::uint64_t b = 0, std::uint64_t c = 0,
                    std::uint64_t d = 0) {
    Tracer* t = tracer_.load(std::memory_order_acquire);
    if (!t) return;
    TraceRecord rec;
    rec.time = timers_.now();
    rec.event = ev;
    rec.node = self_;
    rec.peer = peer;
    rec.rail = rail;
    rec.a = a;
    rec.b = b;
    rec.c = c;
    rec.d = d;
    t->record(rec);
  }

  // ---- data --------------------------------------------------------------

  mutable std::mutex mu_;
  std::condition_variable cv_;

  const NodeId self_;
  EngineConfig cfg_;
  TimerHost& timers_;
  std::unique_ptr<Strategy> strategy_;

  std::map<NodeId, std::unique_ptr<PeerState>> peers_;
  std::map<std::uint64_t, InFlight> inflight_;
  std::map<std::uint64_t, RdvTx> rdv_tx_;
  std::map<std::pair<NodeId, std::uint64_t>, RdvRx> rdv_rx_;
  std::map<WindowId, RmaWindow> windows_;
  std::map<std::uint64_t, PendingGet> pending_gets_;
  std::map<std::uint64_t, SendStateRef> rma_acks_;
  /// Reliability: recently completed receiver-side rendezvous (peer, token)
  /// pairs; dedup ring for cross-rail replays. Bounded (see note_rdv_done).
  std::set<std::pair<NodeId, std::uint64_t>> rdv_rx_done_;
  std::deque<std::pair<NodeId, std::uint64_t>> rdv_rx_done_fifo_;

  std::array<RailId, kTrafficClassCount> class_rail_{};
  StatsRegistry stats_;
  /// Free-listed buffers for payload copies, control bodies and header
  /// blocks. Declared after stats_ (it records its counters there).
  PayloadSlab slab_{&stats_};
  /// Atomic so attach/detach is race-free against hot-path reads (all trace
  /// sites hold mu_, but set_tracer also takes mu_ only to guarantee no
  /// in-progress record() outlives a detach — see set_tracer).
  std::atomic<Tracer*> tracer_{nullptr};

  std::uint64_t next_pkt_token_ = 1;
  std::uint64_t next_rdv_token_ = 1;
  std::uint64_t next_submit_order_ = 1;

  std::function<bool()> external_progress_;
  std::thread progress_thread_;
  std::atomic<bool> stop_progress_{false};
  std::shared_ptr<std::atomic<bool>> alive_;
  Nanos auto_rebalance_interval_ = 0;
  /// Owner of the self-re-arming rebalance tick. The scheduled copies hold
  /// only a weak_ptr back to it, so no reference cycle forms and the chain
  /// dies with the engine (see set_auto_rebalance).
  std::shared_ptr<std::function<void()>> rebalance_tick_;
};

}  // namespace mado::core
