// The communication engine: Figure 1 of the paper in code.
//
//   Application/middleware layer — Channel::post() appends fragments to the
//     collect-layer backlog and returns immediately.
//   Optimizing layer — when a NIC track becomes idle (send-completion
//     callback) the configured Strategy reorganizes the accumulated backlog
//     into the next packet. While a track is busy, the backlog grows — that
//     is the optimizer's lookahead pool.
//   Transfer layer — drv::DriverEndpoint rails (one or more per peer, of
//     possibly different technologies), each with eager and bulk tracks.
//
// Also implemented here: the rendezvous protocol (RTS travels as an
// aggregatable control fragment; data flows on bulk tracks, split over
// rails per MultirailPolicy), traffic classes with dynamic re-assignment,
// and the receive side (demultiplexing, unexpected-fragment buffering,
// incremental unpack).
//
// Threading model (sharded; docs/internals.md §1 has the full write-up):
// engine state is partitioned per peer. Each PeerState carries its own
// mutex guarding everything reachable from it (rails, backlogs, reliability
// windows, rendezvous tables, RX reassembly, in-flight records); the peer
// map itself is read-mostly behind a shared_mutex and peers are never
// erased, so a resolved PeerState* stays valid for the engine's lifetime.
// Application threads submitting to different peers never contend. The
// submit fast path does not even take the peer lock: fragments ride a
// bounded lock-free MPMC ring drained by whoever holds the peer lock next
// (flat combining).
//
// Progress runs on cfg.progress_threads shard-owning threads: every peer
// is statically assigned an owner (insertion order modulo thread count,
// all rails of the peer included — rail affinity), submit/RX activity
// wakes ONLY the owner's park slot, and a thread idle past its yield phase
// steals un-pumped shards from busy owners. A per-shard pump claim
// (PeerState::pumping) keeps driver progress() single-entrant per endpoint
// whichever thread — owner, stealer, or a manual progress() caller — runs
// the lap. Peer-scoped timers (nagle, RTO) fire on the shard's owner: a
// foreign thread defers the callback into the owner's queue and wakes it.
//
// Lock order: peers_mu_ (shared) → PeerState::mu → {windows_mu_, wait/park
// mutexes, ProgSlot::mu/defer_mu}; at most one peer lock is held at a
// time. Counters are sharded per peer and aggregated on read, so
// counters_snapshot() never stalls the hot path.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/api.hpp"
#include "core/backlog.hpp"
#include "core/config.hpp"
#include "core/message.hpp"
#include "core/packet.hpp"
#include "core/payload_pool.hpp"
#include "core/strategy.hpp"
#include "core/timer_host.hpp"
#include "core/token_table.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"
#include "drivers/driver.hpp"
#include "util/queues.hpp"
#include "util/stats.hpp"

namespace mado::core {

class Engine final {
 public:
  Engine(NodeId self, EngineConfig cfg, TimerHost& timers);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ---- topology -----------------------------------------------------

  /// Attach one rail (driver endpoint) toward `peer`. Rails are indexed in
  /// attach order. Must complete before traffic starts.
  RailId add_rail(NodeId peer, std::unique_ptr<drv::DriverEndpoint> ep);
  std::size_t rail_count(NodeId peer) const;

  /// Capabilities advertised by rail `rail` toward `peer` (cost-model input
  /// for planners; CHECK-fails on unknown peer/rail).
  drv::Capabilities rail_caps(NodeId peer, RailId rail) const;
  /// Current health of rail `rail` toward `peer`.
  RailState rail_state(NodeId peer, RailId rail) const;

  /// Open a logical flow to `peer`. Both sides must use the same id.
  /// The peer map is resolved ONCE here; the returned Channel caches the
  /// peer shard so post() never touches the map again.
  Channel open_channel(NodeId peer, ChannelId id,
                       TrafficClass cls = TrafficClass::SmallEager);

  // ---- progression ----------------------------------------------------

  /// Drain driver completions/arrivals, submit rings and due timers once.
  /// Returns true if any work was done (events applied, ring ops drained,
  /// or timers fired) — the progress thread's backoff feeds on this.
  bool progress();

  /// Simulation mode: a callback that advances the shared world by one
  /// event (e.g. [&]{ return fabric.step(); }); wait loops call it instead
  /// of sleeping. Returns false when the world is idle.
  void set_external_progress(std::function<bool()> fn);

  /// Real-driver mode: spawn cfg.progress_threads shard-owning threads,
  /// each pumping its peers continuously with adaptive spin → yield →
  /// parked-wait backoff when idle (counted per thread in prog.t<i>.* and
  /// in the prog.shard_laps / prog.steals / prog.wakeups / prog.idle_sleeps
  /// totals). stop_progress_thread() joins them and then runs one final
  /// drain so work staged in the stop window is never stranded.
  void start_progress_thread();
  void stop_progress_thread();

  // ---- blocking helpers ----------------------------------------------

  /// Lock-free: reads the handle's atomic completion state.
  bool send_done(const SendHandle& h) const;
  /// True once the engine gave up on the message (its rail died with no
  /// survivor to fail over to). wait_send() then returns false immediately.
  bool send_failed(const SendHandle& h) const;
  /// Blocks on the *destination peer's* condition variable, so completing
  /// one peer's send never wakes threads blocked on other peers.
  bool wait_send(const SendHandle& h, Nanos timeout = kDefaultTimeout);
  /// Wait until `pred` holds. `pred` is evaluated WITHOUT any engine lock
  /// held — it must do its own synchronization (e.g. via counters_snapshot
  /// or snapshot()).
  bool wait_until(const std::function<bool()>& pred,
                  Nanos timeout = kDefaultTimeout);
  /// Wait until all backlogs, submit rings, bulk queues and in-flight
  /// packets drain.
  bool flush(Nanos timeout = kDefaultTimeout);

  // ---- one-sided put/get (paper §2, "put/get transfers") ---------------

  using WindowId = std::uint32_t;

  /// Expose `len` bytes at `base` as window `id` for one-sided access by
  /// any connected peer. The memory must outlive the engine's traffic.
  void expose_window(WindowId id, void* base, std::size_t len);

  /// One-sided write into the peer's window. The handle completes on the
  /// peer's acknowledgement (remote completion). `data` must stay valid
  /// until then. Large puts flow through the rendezvous bulk path with an
  /// automatic CTS (no application involvement on the target).
  SendHandle rma_put(NodeId peer, WindowId window, std::uint64_t offset,
                     const void* data, std::size_t len,
                     TrafficClass cls = TrafficClass::PutGet);

  /// One-sided read from the peer's window into `dest`. The handle
  /// completes when all bytes have landed.
  SendHandle rma_get(NodeId peer, WindowId window, std::uint64_t offset,
                     void* dest, std::size_t len,
                     TrafficClass cls = TrafficClass::PutGet);

  // ---- traffic classes (paper §2) --------------------------------------

  void set_class_rail(TrafficClass cls, RailId rail);
  RailId class_rail(TrafficClass cls) const;
  /// One dynamic re-assignment step: move latency-sensitive classes
  /// (Control, SmallEager) to the currently least-loaded rail.
  void rebalance_classes();
  /// Re-run rebalance_classes() every `interval` until the engine dies.
  void set_auto_rebalance(Nanos interval);

  // ---- introspection ---------------------------------------------------

  /// Root stats registry: aggregates the per-peer shards on read. Reads
  /// (counter(), histogram(), to_string()) are thread-safe and engine-wide.
  StatsRegistry& stats() { return stats_; }

  /// Attach an event tracer (nullptr detaches). May be shared by several
  /// engines; must outlive the engine or be detached first. Safe to call
  /// while traffic is in flight: after set_tracer(nullptr) returns, no
  /// thread is still recording into the old tracer (it may be destroyed).
  void set_tracer(Tracer* tracer);
  /// Currently attached tracer (racy read; for diagnostics).
  Tracer* tracer() const { return tracer_.load(std::memory_order_acquire); }

  /// Aggregated copy of all counters from the per-peer shards. Takes no
  /// engine or peer lock — usable from timer callbacks and monitoring
  /// threads at any sampling rate without stalling TX.
  std::map<std::string, std::uint64_t, std::less<>> counters_snapshot() const;

  const EngineConfig& config() const { return cfg_; }
  NodeId self() const { return self_; }
  std::string strategy_name() const { return strategy_->name(); }
  TimerHost& timers() { return timers_; }

  std::size_t backlog_frags(NodeId peer, RailId rail) const;
  std::size_t inflight_packets() const;
  std::size_t pending_bulk_chunks(NodeId peer) const;

  /// Consistent point-in-time view of all queues (for monitoring/tools).
  /// Peer locks are taken one at a time, so the view is per-peer (not
  /// cross-peer) consistent — the same guarantee monitoring had before.
  struct Snapshot {
    struct RailInfo {
      std::string driver;
      RailState state = RailState::Up;
      std::size_t backlog_frags = 0;
      std::size_t backlog_bytes = 0;
      std::size_t bulk_chunks = 0;
      std::size_t outstanding_packets = 0;
      std::size_t inflight_bytes = 0;
      std::size_t unacked_packets = 0;  ///< reliability: sent, not yet acked
    };
    struct PeerInfo {
      NodeId id = 0;
      std::vector<RailInfo> rails;
      std::size_t shared_bulk_chunks = 0;
      std::size_t open_channels = 0;
      std::size_t rx_pending_msgs = 0;
      std::size_t submit_ring_pending = 0;  ///< ops enqueued, not drained
    };
    std::vector<PeerInfo> peers;
    std::size_t inflight_packets = 0;
    std::size_t rdv_tx_active = 0;
    std::size_t rdv_rx_active = 0;
    std::size_t windows_exposed = 0;
    std::size_t pending_gets = 0;

    bool quiescent() const;
    std::string to_string() const;
  };
  Snapshot snapshot() const;

  static constexpr Nanos kDefaultTimeout = 30ull * kNanosPerSec;

 private:
  friend class Channel;
  friend class IncomingMessage;

  // ---- internal types --------------------------------------------------

  struct Rail;

  /// Per-rail driver handler: forwards callbacks with (peer, rail) context.
  struct RailPort final : drv::EndpointHandler {
    Engine* engine = nullptr;
    NodeId peer = 0;
    RailId rail = 0;
    void on_send_complete(drv::TrackId track, std::uint64_t token) override {
      engine->on_send_complete(peer, rail, track, token);
    }
    void on_packet(drv::TrackId track, Bytes payload) override {
      engine->on_packet(peer, rail, track, std::move(payload));
    }
    void on_send_failed(drv::TrackId track, std::uint64_t token) override {
      engine->on_send_failed(peer, rail, track, token);
    }
    void on_link_down() override { engine->on_link_down(peer, rail); }
  };

  /// One pending rendezvous bulk chunk.
  struct BulkChunk {
    std::uint64_t token = 0;
    std::uint64_t offset = 0;
    std::uint32_t len = 0;
    /// Stripe sequence within the transfer's plan (Stripe policy; 0
    /// otherwise). Travels to the wire/trace for observability.
    std::uint32_t stripe = 0;
  };

  /// Per-(rail, reliable stream) go-back-N state. Stream 0 carries eager
  /// packets, stream 1 bulk chunks — independent of the physical track
  /// (shared-track rails multiplex both streams on track 0; per-stream
  /// sequence spaces keep them untangled). All guarded by the peer lock.
  struct RelTrack {
    // Sender.
    std::uint32_t next_seq = 0;  ///< next reliable seq to assign
    std::uint32_t acked = 0;     ///< cumulative: all seqs < acked are acked
    std::deque<std::uint64_t> unacked;  ///< inflight tokens, seq order
    std::size_t unacked_bytes = 0;      ///< wire bytes awaiting ack
    // Retransmit timer: a persistent cancellable handle (re-arms are O(1)
    // and allocation-free on the wheel; superseding arms physically remove
    // the old entry instead of leaving a dead deadline behind). The
    // callback is installed lazily on first arm (it needs the peer/rail
    // context) and stays for the rail's lifetime.
    TimerHandle rto_timer;
    std::uint32_t armed_acked = 0;  ///< `acked` when the timer was armed
    Nanos rto = 0;                  ///< current backoff (0 = cfg initial)
    std::size_t retries = 0;        ///< consecutive no-progress timeouts
    // Receiver.
    std::uint32_t rx_next = 0;  ///< next expected seq from the peer
  };

  struct Rail {
    std::unique_ptr<drv::DriverEndpoint> ep;
    RailPort port;
    std::vector<std::size_t> outstanding;  // per track
    TxBacklog backlog;
    std::deque<BulkChunk> bulk_q;  // SingleRail / StaticSplit chunks
    bool bulk_turn = false;        // shared-track alternation
    RailState state = RailState::Up;
    RelTrack rel[2];       // [0] eager stream, [1] bulk stream
    bool ack_owed = false; // reliable data accepted since our last ack out
    // Nagle hold timer: persistent cancellable handle, armed while a lone
    // small fragment waits for company and cancelled the moment the
    // backlog drains — an idle rail holds no timer state at all.
    TimerHandle nagle_timer;
    std::uint64_t flow_index_ops_flushed = 0;  // backlog ops already counted
    std::uint32_t pkt_seq = 0;
    std::size_t inflight_bytes = 0;
    std::uint64_t static_split_assigned = 0;  // bytes, for StaticSplit

    drv::TrackId bulk_track() const {
      return ep->caps().track_count > 1 ? drv::kTrackBulk : drv::kTrackEager;
    }
    bool shared_track() const { return ep->caps().track_count == 1; }
    bool track_free(drv::TrackId t) const {
      return outstanding[t] < ep->caps().track_depth;
    }
  };

  struct ChannelState {
    TrafficClass cls = TrafficClass::SmallEager;
    MsgSeq next_tx_seq = 0;
    MsgSeq next_attach_seq = 0;
    std::uint32_t outstanding_sends = 0;
    /// Reliability: messages with seq below this finished delivery; frags
    /// replayed across rails after a failover that land late are dropped
    /// as duplicates instead of resurrecting a completed message.
    MsgSeq rx_done_floor = 0;
  };

  /// Receive-side state of one fragment.
  struct RxSlot {
    bool have_data = false;  // eager payload arrived (buffered or copied)
    Bytes buffered;          // payload when it arrived before the unpack
    Byte* dest = nullptr;
    std::size_t dest_len = 0;
    bool posted = false;
    bool done = false;
    // Rendezvous:
    bool is_rdv = false;
    bool cts_sent = false;
    std::uint64_t token = 0;
    std::uint64_t total = 0;
    std::uint64_t received = 0;
  };

  struct RxMessage {
    std::uint16_t nfrags_total = 0;  // 0 = not known yet
    std::vector<RxSlot> slots;
    std::uint16_t posted_count = 0;
    std::uint16_t done_count = 0;

    RxSlot& slot(FragIdx idx) {
      if (slots.size() <= idx) slots.resize(idx + std::size_t{1});
      return slots[idx];
    }
    bool complete() const {
      return nfrags_total != 0 && done_count == nfrags_total;
    }
  };

  using RxKey = std::pair<ChannelId, MsgSeq>;

  /// Sender-side rendezvous state.
  struct RdvTx {
    NodeId peer = 0;
    ChannelId channel = 0;
    const Byte* data = nullptr;
    Bytes storage;  ///< keeps Safe-mode payload copies alive until sent
    std::uint64_t total = 0;
    std::uint64_t queued = 0;     // bytes cut into chunks so far
    std::uint64_t completed = 0;  // bytes whose chunk send completed
    std::uint32_t next_stripe = 0;  // next stripe id to assign (Stripe)
    bool cts_received = false;
    Nanos rts_time = 0;  ///< when the RTS was submitted (handshake latency)
    /// True once rts_time is a real timestamp. A plain `rts_time != 0`
    /// check would silently drop latency samples for transfers submitted at
    /// virtual time 0 — the very first message of every simulation.
    bool rts_timed = false;
    TrafficClass cls = TrafficClass::Bulk;
    /// Null for puts with remote acknowledgement (the handle then lives in
    /// rma_acks and completes on the RmaAck, not on local chunk completion).
    SendStateRef state;
  };

  /// Receiver-side rendezvous routing: where bulk chunks for `token` land,
  /// and what happens when the last byte arrives. Keyed by token alone —
  /// the table lives inside the sending peer's shard now.
  struct RdvRx {
    RdvTarget target = RdvTarget::Message;
    // Message target:
    ChannelId channel = 0;
    MsgSeq seq = 0;
    FragIdx idx = 0;
    // Direct targets (Window / GetBuffer):
    Byte* base = nullptr;
    std::uint64_t len = 0;
    std::uint64_t received = 0;
    std::uint64_t ack_token = 0;  ///< Window: RmaAck to send on completion
    std::uint64_t get_token = 0;  ///< GetBuffer: pending get to complete
    /// Reliability: chunk offsets already applied, so a chunk replayed on a
    /// surviving rail (delivered once, ack lost) is not double-counted.
    /// TokenSet: allocation-free while empty (the lossless-fabric common
    /// case), shrinks back after a reassembly burst.
    TokenSet seen_offsets;
    /// Reassembly watermark: lowest offset not yet known-contiguous from 0.
    /// Chunks landing above it arrived out of order (another rail ran
    /// ahead) — counted as `stripe.reassembly_ooo`.
    std::uint64_t next_contig = 0;
  };

  struct RmaWindow {
    Byte* base = nullptr;
    std::size_t len = 0;
  };

  struct PendingGet {
    Byte* dest = nullptr;
    std::uint64_t len = 0;
    SendStateRef state;
  };

  /// One in-flight packet (owns header block + fragment payload storage).
  /// With reliability on, the record outlives driver completion: it is the
  /// retransmit buffer, erased only when acked AND no transmission is still
  /// inside the driver (gather segments must stay valid until completion).
  struct InFlight {
    NodeId peer = 0;
    RailId rail = 0;
    drv::TrackId track = 0;
    Bytes header_block;
    FragList frags;
    bool is_bulk = false;
    std::uint64_t rdv_token = 0;
    std::uint64_t chunk_off = 0;
    std::uint32_t chunk_len = 0;
    std::uint32_t chunk_stripe = 0;
    std::size_t wire_bytes = 0;
    // Reliability:
    bool reliable = false;       ///< occupies a slot in a rel seq stream
    std::uint8_t rel_stream = 0; ///< 0 eager, 1 bulk
    std::uint32_t rel_seq = 0;
    bool acked = false;
    std::uint32_t tx_outstanding = 0;  ///< driver sends not yet completed
  };

  /// One application submit parked in the lock-free ring, waiting for the
  /// next peer-lock holder to drain it into the backlog.
  struct SubmitOp {
    ChannelId channel = 0;
    Message msg;
    SendStateRef state;
    Nanos enq_time = 0;
  };

  /// One driver event staged during a progress() lap, applied in batch
  /// under ONE peer-lock acquisition instead of one per callback.
  struct RxEvent {
    enum class Kind : std::uint8_t {
      SendComplete,
      Packet,
      SendFailed,
      LinkDown,
    };
    Kind kind = Kind::SendComplete;
    RailId rail = 0;
    drv::TrackId track = 0;
    std::uint64_t token = 0;
    Bytes payload;
  };

  /// All state for one peer, guarded by its own `mu`. Everything the wire
  /// protocols key by (peer, token) lives here keyed by token: rendezvous
  /// tables, in-flight records, pending gets, RMA acks — they were always
  /// peer-local by protocol; the sharding makes that locality structural.
  /// PeerStates are created at add_rail time and never destroyed before the
  /// engine, so raw pointers to them (Channel cache, timer captures) stay
  /// valid.
  struct PeerState {
    PeerState(NodeId peer, const EngineConfig& cfg, std::uint32_t owner_idx)
        : id(peer),
          owner(owner_idx),
          slab(&stats, PayloadSlab::Limits{cfg.slab_buffers,
                                           cfg.slab_max_capacity}),
          strategy(StrategyRegistry::instance().create(cfg.strategy)) {
      if (cfg.submit_ring > 0) {
        std::size_t cap = 2;
        while (cap < cfg.submit_ring) cap <<= 1;
        ring = std::make_unique<MpmcRing<SubmitOp>>(cap);
      }
      lock_acqs = &stats.handle("opt.lock_acquisitions");
      lock_wait_ns = &stats.handle("opt.lock_wait_ns");
      // State tables share one budget policy: start empty, grow in powers
      // of two, shrink back when a burst drains. Rehashes land in the
      // cap.* counters so a misbehaving workload is visible.
      TokenTableOpts topts;
      topts.min_capacity = cfg.table_min_capacity;
      topts.shrink = cfg.table_shrink;
      topts.growths = &stats.handle("cap.table_growths");
      topts.shrinks = &stats.handle("cap.table_shrinks");
      inflight.set_opts(topts);
      rdv_tx.set_opts(topts);
      rdv_rx.set_opts(topts);
      pending_gets.set_opts(topts);
      rma_acks.set_opts(topts);
      rdv_rx_done.set_opts(topts);
    }

    const NodeId id;

    /// Owning progress-thread index (static: insertion order modulo
    /// cfg.progress_threads). Submit/RX activity wakes only this thread's
    /// park slot; its laps pump every rail of this peer (rail affinity).
    const std::uint32_t owner;

    /// Pump claim: the thread that CASes this false→true drives the whole
    /// endpoint pump of this shard for one lap. Owners, stealers and manual
    /// progress() callers all contend here, so a driver endpoint is never
    /// progressed from two threads at once (not part of the driver
    /// contract) and "every peer is progressed by exactly one pumper per
    /// lap" holds by construction.
    std::atomic<bool> pumping{false};

    mutable std::mutex mu;  ///< guards every non-atomic member below

    /// Completion waiters parked on this peer (wait_send, wait_frag, ...).
    /// `cv` is notified only when `waiters` is non-zero; waits are bounded,
    /// so a racing lost notify costs one bounded nap, never a hang.
    mutable std::condition_variable cv;
    mutable std::mutex wait_mu;  ///< cv's mutex — NOT `mu`, so waiters
                                 ///< never contend with the hot path
    std::atomic<int> waiters{0};

    /// Per-peer stats shard (registered as a child of the engine root).
    StatsRegistry stats;
    PayloadSlab slab;
    std::unique_ptr<Strategy> strategy;  ///< strategies may be stateful

    /// Lock-free submit fast path (null when cfg.submit_ring == 0).
    std::unique_ptr<MpmcRing<SubmitOp>> ring;
    /// Ops pushed but not yet drained — flush()/quiescence must count them.
    std::atomic<std::size_t> ring_pending{0};
    /// False once every rail is Down: submits fail fast without a lock.
    std::atomic<bool> any_rail_up{false};

    std::vector<std::unique_ptr<Rail>> rails;
    std::map<ChannelId, ChannelState> channels;
    std::map<RxKey, RxMessage> rx_msgs;
    std::deque<BulkChunk> shared_bulk;  // DynamicSplit chunk pool
    /// Hot token-keyed state: open-addressing slabs (core/token_table.hpp),
    /// not std::map — O(1) probes, no per-entry allocation, and they shrink
    /// back when a flow burst drains so per-peer memory stays bounded.
    TokenTable<InFlight> inflight;
    TokenTable<RdvTx> rdv_tx;
    TokenTable<RdvRx> rdv_rx;
    TokenTable<PendingGet> pending_gets;
    TokenTable<SendStateRef> rma_acks;
    /// Reliability: recently completed receiver-side rendezvous tokens;
    /// dedup ring for cross-rail replays. Bounded (see note_rdv_done).
    TokenSet rdv_rx_done;
    std::deque<std::uint64_t> rdv_rx_done_fifo;

    /// Monotonic floor for drained submit times: ring enqueue timestamps
    /// from racing threads can arrive slightly out of order, but the
    /// backlog's flow index requires submit_time non-decreasing in `order`.
    Nanos last_drain_time = 0;

    /// Cached stats cells for the lock-contention instrumentation (hot:
    /// bumped on every peer-lock acquisition, so no name lookup).
    std::atomic<std::uint64_t>* lock_acqs = nullptr;
    std::atomic<std::uint64_t>* lock_wait_ns = nullptr;
  };

  /// RAII peer-lock with contention accounting: try_lock fast path; on
  /// contention the blocked time lands in opt.lock_wait_ns.
  class PeerLock {
   public:
    explicit PeerLock(PeerState& ps) : ps_(ps) {
      if (!ps.mu.try_lock()) {
        const auto t0 = std::chrono::steady_clock::now();
        ps.mu.lock();
        const auto dt = std::chrono::steady_clock::now() - t0;
        ps.lock_wait_ns->fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                    .count()),
            std::memory_order_relaxed);
      }
      ps.lock_acqs->fetch_add(1, std::memory_order_relaxed);
    }
    ~PeerLock() { ps_.mu.unlock(); }
    PeerLock(const PeerLock&) = delete;
    PeerLock& operator=(const PeerLock&) = delete;

   private:
    PeerState& ps_;
  };

  // ---- submit path (called from handles) -------------------------------

  SendHandle submit(NodeId peer, ChannelId ch, TrafficClass cls, Message msg,
                    void* peer_hint);
  MsgSeq attach_recv(NodeId peer, ChannelId ch);
  bool probe_recv(NodeId peer, ChannelId ch) const;
  bool recv_complete(NodeId peer, ChannelId ch, MsgSeq seq) const;
  void post_unpack(NodeId peer, ChannelId ch, MsgSeq seq, FragIdx idx,
                   void* buf, std::size_t len);
  void wait_frag(NodeId peer, ChannelId ch, MsgSeq seq, FragIdx idx);
  std::size_t wait_frag_size(NodeId peer, ChannelId ch, MsgSeq seq,
                             FragIdx idx);
  void finish_recv(NodeId peer, ChannelId ch, MsgSeq seq, FragIdx nposted);
  void flush_channel(NodeId peer, ChannelId ch);

  // ---- driver callback entry (no engine lock held) ---------------------

  void on_send_complete(NodeId peer, RailId rail, drv::TrackId track,
                        std::uint64_t token);
  void on_packet(NodeId peer, RailId rail, drv::TrackId track, Bytes payload);
  /// A queued send will never complete (the driver's wire broke under it).
  /// Treated as a link failure: the whole rail fails over in one sweep,
  /// which replays or fails this token's record along with the rest.
  void on_send_failed(NodeId peer, RailId rail, drv::TrackId track,
                      std::uint64_t token);
  void on_link_down(NodeId peer, RailId rail);

  // ---- peer resolution (peers_mu_, shared) ------------------------------

  /// Resolve a peer shard; the pointer stays valid for the engine's
  /// lifetime (peers are never erased). Returns nullptr if unknown.
  PeerState* find_peer(NodeId peer) const;
  /// Like find_peer but CHECK-fails on unknown peers.
  PeerState& peer_ref(NodeId peer) const;

  // ---- locked internals (callers hold ps.mu) ----------------------------

  RailId rail_for_class_locked(const PeerState& ps, TrafficClass cls) const;
  /// Rail choice for an eager submission (honors EagerRailPolicy).
  RailId rail_for_submit_locked(const PeerState& ps, TrafficClass cls) const;

  /// Drain the submit ring into the backlog (ring order), then return how
  /// many ops were applied. Called by every peer-lock holder before
  /// pumping, so parked submissions never strand.
  std::size_t drain_submit_ring_locked(PeerState& ps);
  /// The (former) body of submit(): assign the sequence, cut fragments,
  /// queue rendezvous, push to the chosen rail's backlog.
  void submit_locked(PeerState& ps, ChannelId ch, Message&& msg,
                     const SendStateRef& state, Nanos enq_time);

  void pump_peer_locked(PeerState& ps);
  void pump_rail_locked(PeerState& ps, Rail& rail);
  bool try_send_eager_locked(PeerState& ps, Rail& rail);
  bool try_send_bulk_locked(PeerState& ps, Rail& rail);
  void send_packet_locked(PeerState& ps, Rail& rail, FragList&& frags);
  void send_bulk_chunk_locked(PeerState& ps, Rail& rail, BulkChunk chunk);
  bool pop_bulk_chunk_locked(PeerState& ps, Rail& rail, BulkChunk& out);
  void schedule_nagle_timer_locked(PeerState& ps, Rail& rail, Nanos when);

  void complete_send_locked(PeerState& ps, Rail& rail, drv::TrackId track,
                            std::uint64_t token);
  void complete_frag_state_locked(PeerState& ps, ChannelId ch,
                                  const SendStateRef& state);
  /// Final bookkeeping of a fully-done InFlight record (frag states / rdv
  /// progress, buffer recycling). With reliability off this runs at driver
  /// completion; with it on, when acked and no transmission is in flight.
  void finalize_inflight_locked(PeerState& ps, InFlight& rec);

  /// Apply one staged driver event (batched drain) or one direct callback.
  void apply_send_complete_locked(PeerState& ps, RailId rail,
                                  drv::TrackId track, std::uint64_t token);
  void apply_packet_locked(PeerState& ps, RailId rail, const Bytes& payload);
  void apply_link_down_locked(PeerState& ps, RailId rail);

  // ---- reliability layer (all no-ops unless cfg_.reliability) -----------

  /// Serial-number comparison on the u32 sequence circle.
  static bool seq_less(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::int32_t>(a - b) < 0;
  }
  void process_acks_locked(PeerState& ps, Rail& rail, std::uint32_t ack_eager,
                           std::uint32_t ack_bulk);
  void arm_rto_locked(PeerState& ps, Rail& rail, int stream);
  void rto_expired_locked(PeerState& ps, Rail& rail, int stream);
  void retransmit_locked(PeerState& ps, Rail& rail, std::uint64_t token,
                         InFlight& rec);
  /// Send a standalone (zero-fragment) cumulative-ack packet if one is owed
  /// and no data packet is about to piggyback it.
  void maybe_send_ack_locked(PeerState& ps, Rail& rail);
  /// Accept/dup/ooo decision for an arriving reliable packet; true = accept.
  bool rel_rx_accept_locked(PeerState& ps, Rail& rail, int stream,
                            std::uint8_t flags, std::uint32_t seq);
  /// Declare a rail dead: drain its un-acked in-flight records, backlog and
  /// bulk queue onto a surviving Up rail (or fail the sends if none).
  void fail_rail_locked(PeerState& ps, Rail& rail);
  /// Mark a send as failed (idempotent) and release its channel slot.
  void fail_state_locked(PeerState& ps, ChannelId ch,
                         const SendStateRef& state);
  /// Reliability: remember the token of a completed rendezvous so a
  /// replayed RTS/chunk for it is dropped as a duplicate, bounded in size.
  void note_rdv_done_locked(PeerState& ps, std::uint64_t token);
  bool rdv_was_done_locked(const PeerState& ps, std::uint64_t token) const;

  void handle_eager_packet_locked(PeerState& ps, RailId rail,
                                  const Bytes& payload);
  void handle_bulk_packet_locked(PeerState& ps, RailId rail,
                                 const Bytes& payload);
  void deliver_data_frag_locked(PeerState& ps, const FragHeader& fh,
                                ByteSpan payload);
  void handle_rts_locked(PeerState& ps, const FragHeader& fh,
                         ByteSpan payload);
  void handle_cts_locked(PeerState& ps, ByteSpan payload);
  void note_nfrags_locked(RxMessage& msg, const FragHeader& fh);
  void send_cts_locked(PeerState& ps, const FragHeader& fh, RxSlot& slot);
  void distribute_chunks_locked(PeerState& ps, std::uint64_t token,
                                RdvTx& rdv);
  /// MultirailPolicy::Stripe placement: consult the cost model
  /// (strategy_detail::stripe_shares) to split the transfer into per-rail
  /// contiguous ranges, then cut each range into chunks on that rail's
  /// queue. Falls back to the Bulk class rail when fewer than two rails can
  /// carry traffic.
  void stripe_chunks_locked(PeerState& ps, std::uint64_t token, RdvTx& rdv,
                            std::size_t chunk_size);
  /// Bytes that must drain from `rail` before a newly-queued bulk chunk
  /// moves: queued bulk chunks + eager backlog + the larger of
  /// driver-in-flight and un-acked wire bytes (they overlap; counting both
  /// would double-charge a loaded rail).
  static std::size_t rail_pending_bytes_locked(const Rail& rail);
  void mark_slot_done_locked(RxMessage& msg, RxSlot& slot);

  // RMA internals.
  void handle_rma_put_locked(PeerState& ps, ByteSpan payload);
  void handle_rma_get_locked(PeerState& ps, ByteSpan payload);
  void handle_rma_get_data_locked(PeerState& ps, ByteSpan payload);
  void handle_rma_ack_locked(PeerState& ps, ByteSpan payload);
  void send_auto_cts_locked(PeerState& ps, const FragHeader& fh,
                            std::uint64_t token);
  void push_rma_ack_locked(PeerState& ps, std::uint64_t ack_token);
  /// Bounds-checked window lookup, BY VALUE under windows_mu_ (shared):
  /// callers hold a peer lock, never the window map's.
  RmaWindow window_checked(WindowId id, std::uint64_t offset,
                           std::uint64_t len) const;
  TxFrag make_rma_frag_locked(PeerState& ps, FragKind kind);

  // ---- wait plumbing ---------------------------------------------------

  /// Generic wait: pred synchronizes itself; sleeps on the GLOBAL cv.
  bool wait_until_impl(const std::function<bool()>& pred, Nanos timeout);
  /// Peer-scoped wait: pred synchronizes itself; sleeps on ps.cv so only
  /// completions on this peer wake it.
  bool wait_peer_impl(PeerState& ps, const std::function<bool()>& pred,
                      Nanos timeout);

  // ---- progress threads -------------------------------------------------

  /// One park/wakeup slot per progress thread. The armed/parked/ticket
  /// trio is an eventcount: the thread publishes `armed` (seq_cst), runs
  /// one last poll lap, then parks only if `ticket` did not move — so a
  /// waker that bumps the ticket between the final poll and the cv wait is
  /// never lost (the wait is skipped). Wakers notify under `mu` so the
  /// notify cannot slip into the gap between the parked-check and the wait.
  struct ProgSlot {
    std::mutex mu;               ///< cv's mutex (park protocol only)
    std::condition_variable cv;
    std::atomic<bool> armed{false};   ///< thread is in its pre-park window
    std::atomic<bool> parked{false};  ///< thread is inside cv.wait_for
    std::atomic<std::uint64_t> ticket{0};  ///< activity epoch while armed

    /// Timer callbacks deferred to this thread (peer-timer affinity: RTO
    /// and nagle deadlines fire on the shard's owner; see
    /// schedule_peer_timer). Drained at the top of every lap.
    std::mutex defer_mu;
    std::vector<std::function<void()>> deferred;

    // Cached per-thread counter cells (prog.t<i>.*).
    std::atomic<std::uint64_t>* laps = nullptr;
    std::atomic<std::uint64_t>* steals = nullptr;
    std::atomic<std::uint64_t>* wakeups = nullptr;
    std::atomic<std::uint64_t>* idle_sleeps = nullptr;
  };

  /// Unpark `s` if its thread is (about to go) idle. The armed gate keeps
  /// the hot path cheap: while the thread is actively polling, this is one
  /// relaxed-ish load and nothing else.
  void wake_slot(ProgSlot& s) {
    if (!s.armed.load(std::memory_order_seq_cst)) return;
    s.ticket.fetch_add(1, std::memory_order_seq_cst);
    if (s.parked.load(std::memory_order_seq_cst)) {
      // Lock/unlock before notifying: a notify issued while the parking
      // thread is between its parked-store and cv.wait would otherwise be
      // lost — exactly the race this slot protocol exists to close.
      { std::lock_guard<std::mutex> lk(s.mu); }
      s.cv.notify_one();
    }
  }

  /// Submit/RX activity on `ps`: route the wakeup to the owning thread's
  /// park slot only — other progress threads keep sleeping.
  void note_activity(PeerState& ps) { wake_slot(*prog_slots_[ps.owner]); }

  /// Pump one shard end-to-end (endpoint poll under a lap, then one locked
  /// batch apply + ring drain + pump + acks), guarded by the pump claim.
  /// `events`/`eps` are caller-owned scratch (capacity reuse across laps).
  /// Returns true if the shard produced work; false also when another
  /// thread holds the claim.
  bool pump_shard(PeerState& ps, std::vector<RxEvent>& events,
                  std::vector<drv::DriverEndpoint*>& eps);

  /// Body of progress thread `idx` (shard ownership, steal, park backoff).
  void progress_thread_main(std::size_t idx);

  /// Run deferred timer callbacks parked on `s`; returns how many ran.
  std::size_t drain_deferred(ProgSlot& s);

  /// Park bound: cfg_.prog_idle_wait clipped by the earliest scheduled
  /// timer deadline, so an RTO never waits out a full park.
  Nanos park_bound() const;

  /// Schedule a peer-scoped timer with owner affinity: when it fires on a
  /// foreign thread while progress threads run, the callback is deferred
  /// to the owning thread's queue (and the owner woken) instead of running
  /// in place.
  void schedule_peer_timer(Nanos when, std::uint32_t owner,
                           std::function<void()> fn);

  /// Wrap `fn` as a TimerHandle callback with the same owner affinity as
  /// schedule_peer_timer: fired on a foreign thread while progress threads
  /// run, it defers to the owner's queue and wakes it. Installed ONCE per
  /// handle; every subsequent re-arm reuses it (allocation-free).
  TimerHandle::Callback peer_timer_cb(std::uint32_t owner,
                                      std::function<void(std::uint64_t)> fn);

  /// Arm `h` via timers_ and wake the shard owner's park slot: a thread
  /// parked against the previous earliest deadline must re-derive its
  /// bound, or a new earlier timer would sleep out the full park interval.
  void arm_peer_timer(PeerState& ps, TimerHandle& h, Nanos when);

  /// Wake this peer's waiters and any global (flush / wait_until) waiters.
  /// Cheap when nobody waits: two relaxed atomic loads.
  void wake_peer(PeerState& ps) {
    if (ps.waiters.load(std::memory_order_acquire) > 0) ps.cv.notify_all();
    wake_global();
  }
  void wake_global() {
    if (global_waiters_.load(std::memory_order_acquire) > 0)
      cv_.notify_all();
  }

  /// Emit a trace record if a tracer is attached. Callable under any peer
  /// lock or peers_mu_; every trace site MUST hold one of those (that is
  /// what makes set_tracer's detach-quiescence sweep sufficient).
  void trace_locked(TraceEvent ev, NodeId peer, RailId rail, std::uint64_t a,
                    std::uint64_t b = 0, std::uint64_t c = 0,
                    std::uint64_t d = 0) {
    Tracer* t = tracer_.load(std::memory_order_acquire);
    if (!t) return;
    TraceRecord rec;
    rec.time = timers_.now();
    rec.event = ev;
    rec.node = self_;
    rec.peer = peer;
    rec.rail = rail;
    rec.a = a;
    rec.b = b;
    rec.c = c;
    rec.d = d;
    t->record(rec);
  }

  // ---- data --------------------------------------------------------------

  const NodeId self_;
  EngineConfig cfg_;
  /// Progress-thread count (cfg_.progress_threads floored at 1). Fixed at
  /// construction: shard→owner assignment must never move under a running
  /// thread.
  const std::size_t prog_nthreads_;
  TimerHost& timers_;
  /// Prototype instance (name/introspection); each peer owns its own.
  std::unique_ptr<Strategy> strategy_;

  /// Peer map: read-mostly. Unique lock only in add_rail (topology setup);
  /// everything else takes it shared. PeerStates are never erased.
  mutable std::shared_mutex peers_mu_;
  std::map<NodeId, std::unique_ptr<PeerState>> peers_;

  /// RMA windows: written by expose_window, read (shared) by RX handlers
  /// under a peer lock — lock order ps.mu → windows_mu_.
  mutable std::shared_mutex windows_mu_;
  std::map<WindowId, RmaWindow> windows_;

  /// Root stats: engine-level counters (sched.*, prog.*) plus aggregation
  /// over the per-peer shards registered as children.
  StatsRegistry stats_;
  /// Atomic so attach/detach is race-free against hot-path reads; see
  /// set_tracer for the detach-quiescence sweep.
  std::atomic<Tracer*> tracer_{nullptr};

  std::atomic<std::uint64_t> next_pkt_token_{1};
  std::atomic<std::uint64_t> next_rdv_token_{1};
  std::atomic<std::uint64_t> next_submit_order_{1};

  std::array<std::atomic<RailId>, kTrafficClassCount> class_rail_{};

  /// Global waiters (flush / generic wait_until). Peer-scoped waits use the
  /// per-peer cv instead, so one peer's completions don't wake the world.
  mutable std::mutex wait_mu_;
  mutable std::condition_variable cv_;
  std::atomic<int> global_waiters_{0};

  /// Park/wakeup slots, one per progress thread, created in the
  /// constructor so note_activity() never races start/stop of the threads.
  /// unique_ptr: slots hold mutexes/cvs and must never move.
  std::vector<std::unique_ptr<ProgSlot>> prog_slots_;

  /// Totals across threads (the per-thread cells live in each ProgSlot).
  std::atomic<std::uint64_t>* prog_laps_total_ = nullptr;
  std::atomic<std::uint64_t>* prog_steals_total_ = nullptr;
  std::atomic<std::uint64_t>* prog_wakeups_total_ = nullptr;
  std::atomic<std::uint64_t>* prog_idle_total_ = nullptr;
  /// wait_until/wait_peer pumped the engine themselves (no progress thread
  /// attached) — stays 0 while threads run (the double-pump bugfix).
  std::atomic<std::uint64_t>* prog_self_pumps_ = nullptr;

  /// Cached timer.* cells (engine-level: timers are host-wide, not
  /// per-peer). arms = every (re-)arm; cancelled = retired before firing;
  /// stale_fires = callbacks that found their generation superseded (a
  /// cancel/re-arm raced an in-flight firing — rare by construction now
  /// that cancellation physically unlinks).
  std::atomic<std::uint64_t>* timer_arms_ = nullptr;
  std::atomic<std::uint64_t>* timer_cancelled_ = nullptr;
  std::atomic<std::uint64_t>* timer_stale_ = nullptr;

  /// Guards the odds and ends below (external progress hook, rebalance
  /// interval/chain).
  mutable std::mutex misc_mu_;
  std::function<bool()> external_progress_;
  Nanos auto_rebalance_interval_ = 0;
  /// Owner of the self-re-arming rebalance tick. The scheduled copies hold
  /// only a weak_ptr back to it, so no reference cycle forms and the chain
  /// dies with the engine (see set_auto_rebalance).
  std::shared_ptr<std::function<void()>> rebalance_tick_;

  std::vector<std::thread> progress_threads_;
  std::atomic<bool> stop_progress_{false};
  /// True between start_progress_thread() and the end of
  /// stop_progress_thread(): wait loops park instead of self-pumping, and
  /// peer timers defer to their owners, only while this holds.
  std::atomic<bool> prog_running_{false};
  std::shared_ptr<std::atomic<bool>> alive_;
};

}  // namespace mado::core
