// Timer facility abstraction.
//
// The optimizer needs timers (Nagle-style artificial delays, periodic class
// rebalancing). In simulation, timers are fabric events in virtual time; in
// real (socket) mode they are a min-heap polled from the progress loop.
// Engine code only sees TimerHost.
#pragma once

#include <algorithm>
#include <functional>
#include <mutex>
#include <vector>

#include "sim/fabric.hpp"
#include "util/clock.hpp"

namespace mado::core {

class TimerHost {
 public:
  virtual ~TimerHost() = default;
  virtual Nanos now() const = 0;
  /// Run `fn` at absolute time `t` (or as soon after as the host pumps).
  /// `fn` is invoked WITHOUT any engine lock held.
  virtual void schedule_at(Nanos t, std::function<void()> fn) = 0;

  /// Execute due timers now (no-op for hosts whose timers run elsewhere,
  /// like the simulation fabric). Called from Engine::progress().
  virtual std::size_t run_due() { return 0; }

  /// Sentinel for next_deadline(): no timer is scheduled.
  static constexpr Nanos kNoDeadline = static_cast<Nanos>(-1);

  /// Earliest scheduled deadline, or kNoDeadline. Parked progress threads
  /// bound their sleep by this so a due timer never waits out a full park
  /// interval (RTO deadlines must fire on time even on an idle engine).
  virtual Nanos next_deadline() const { return kNoDeadline; }
};

/// Virtual-time timers: delegate to the simulation fabric.
class SimTimerHost final : public TimerHost {
 public:
  explicit SimTimerHost(sim::Fabric& fabric) : fabric_(fabric) {}
  Nanos now() const override { return fabric_.now(); }
  void schedule_at(Nanos t, std::function<void()> fn) override {
    fabric_.post_at(t, std::move(fn));
  }

 private:
  sim::Fabric& fabric_;
};

/// Wall-clock timers: a heap drained by run_due() from the progress loop.
class RealTimerHost final : public TimerHost {
 public:
  Nanos now() const override { return clock_.now(); }

  void schedule_at(Nanos t, std::function<void()> fn) override {
    std::lock_guard<std::mutex> lk(mu_);
    heap_.push_back(Entry{t, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Execute all timers whose deadline has passed. Returns count run.
  std::size_t run_due() override {
    std::size_t n = 0;
    for (;;) {
      std::function<void()> fn;
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (heap_.empty() || heap_.front().when > clock_.now()) break;
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        fn = std::move(heap_.back().fn);
        heap_.pop_back();
      }
      fn();  // outside the heap lock: fn may schedule more timers
      ++n;
    }
    return n;
  }

  bool has_pending() const {
    std::lock_guard<std::mutex> lk(mu_);
    return !heap_.empty();
  }

  Nanos next_deadline() const override {
    std::lock_guard<std::mutex> lk(mu_);
    return heap_.empty() ? kNoDeadline : heap_.front().when;
  }

 private:
  struct Entry {
    Nanos when;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.when > b.when;
    }
  };
  SteadyClock clock_;
  mutable std::mutex mu_;
  std::vector<Entry> heap_;
};

}  // namespace mado::core
