// Timer facility abstraction.
//
// The optimizer needs timers (Nagle-style artificial delays, retransmit
// timeouts, periodic class rebalancing). In simulation, timers are fabric
// events in virtual time; in real (socket) mode they live in a hierarchical
// timing wheel polled from the progress loop. Engine code only sees
// TimerHost.
//
// Two scheduling APIs coexist:
//
//   schedule_at(t, fn)   — fire-and-forget one-shots (rebalance tick, stats
//                          sampler). Cannot be cancelled.
//   arm(handle, t) /     — cancellable, re-armable timers backed by a
//   cancel(handle)         persistent TimerHandle. This is the engine's
//                          per-rail nagle / per-stream RTO protocol: the
//                          callback is installed once, every re-arm is O(1)
//                          and allocation-free on RealTimerHost, and cancel
//                          physically removes the entry (no dead deadlines
//                          lingering in next_deadline(), no stale closures
//                          accumulating until their deadline passes).
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/fabric.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"

namespace mado::core {

class TimerHost;

/// A cancellable, re-armable timer. The owner installs the callback once
/// (set_callback), then arms/cancels through a TimerHost. Arming bumps an
/// internal generation; the callback receives the generation of the arm it
/// belongs to, so a firing that raced a concurrent re-arm or cancel can be
/// detected by the owner (`gen != handle.gen()`) under its own lock — the
/// callback itself runs with NO host or caller locks held.
///
/// Lifetime: the handle's state block is shared_ptr-owned, so a callback in
/// flight (or a superseded simulation-fabric closure) never dangles even if
/// the handle is destroyed. The destructor cancels a still-armed timer; the
/// host passed to arm() must outlive the handle.
///
/// Thread-safety: arm/cancel/fire on the SAME handle must be serialized by
/// the owner (the engine holds the peer lock around them); the accessors
/// are atomic reads and safe from anywhere.
class TimerHandle {
 public:
  /// `gen` is the arm-generation this firing belongs to; compare against
  /// gen() to detect a superseding arm/cancel that raced the firing.
  using Callback = std::function<void(std::uint64_t gen)>;

  TimerHandle() : core_(std::make_shared<Core>()) {}
  ~TimerHandle();
  TimerHandle(const TimerHandle&) = delete;
  TimerHandle& operator=(const TimerHandle&) = delete;

  /// Install the callback. Must not be called while armed.
  void set_callback(Callback fn) { core_->fn = std::move(fn); }
  bool has_callback() const { return static_cast<bool>(core_->fn); }

  bool armed() const {
    return core_->armed.load(std::memory_order_acquire);
  }
  /// Deadline of the current arm (meaningful only while armed()).
  Nanos deadline() const {
    return core_->deadline.load(std::memory_order_acquire);
  }
  /// Current arm generation (bumped by every arm and cancel).
  std::uint64_t gen() const {
    return core_->gen.load(std::memory_order_acquire);
  }

 private:
  friend class TimerHost;
  friend class RealTimerHost;

  /// Shared state block. The wheel links armed Cores intrusively (prev /
  /// next / level / slot, guarded by the wheel mutex); `self` keeps the
  /// block alive while armed or firing so unlink never races destruction.
  struct Core {
    Callback fn;
    std::atomic<std::uint64_t> gen{0};
    std::atomic<bool> armed{false};
    std::atomic<Nanos> deadline{0};
    // Intrusive wheel links (RealTimerHost only; wheel-mutex guarded).
    Core* prev = nullptr;
    Core* next = nullptr;
    std::uint64_t expire_tick = 0;
    std::uint8_t level = 0;
    std::uint8_t slot = 0;
    bool pooled = false;  ///< wheel-owned one-shot (schedule_at path)
    std::shared_ptr<Core> self;  ///< keep-alive while armed (wheel only)
  };

  std::shared_ptr<Core> core_;
  TimerHost* host_ = nullptr;  ///< set by arm(); used by the auto-cancel
};

class TimerHost {
 public:
  virtual ~TimerHost() = default;
  virtual Nanos now() const = 0;
  /// Run `fn` at absolute time `t` (or as soon after as the host pumps).
  /// `fn` is invoked WITHOUT any engine lock held. One-shot, uncancellable.
  virtual void schedule_at(Nanos t, std::function<void()> fn) = 0;

  /// Execute due timers now (no-op for hosts whose timers run elsewhere,
  /// like the simulation fabric). Called from Engine::progress().
  virtual std::size_t run_due() { return 0; }

  /// Sentinel for next_deadline(): no timer is scheduled.
  static constexpr Nanos kNoDeadline = static_cast<Nanos>(-1);

  /// Lower bound on the earliest scheduled deadline, or kNoDeadline.
  /// Parked progress threads bound their sleep by this so a due timer never
  /// waits out a full park interval (RTO deadlines must fire on time even
  /// on an idle engine). May be earlier than the true earliest deadline
  /// (the wheel reports window starts for coarse levels) — never later.
  virtual Nanos next_deadline() const { return kNoDeadline; }

  /// (Re-)arm `h` to fire at absolute time `t`. O(1) and allocation-free on
  /// RealTimerHost once the handle's callback is installed. The default
  /// implementation rides schedule_at: the superseded closure is retired
  /// logically by the generation check (fine in virtual time, where stale
  /// events cost nothing).
  virtual void arm(TimerHandle& h, Nanos t);

  /// Cancel a pending arm. Returns true if the timer was armed (and is now
  /// guaranteed not to fire for that generation); false if it was idle or
  /// its firing already left the host. EITHER WAY the generation is bumped,
  /// so a firing that was already extracted when the cancel landed is
  /// suppressed at the host layer (run_due re-checks the generation before
  /// invoking) — the owner never sees a callback for a cancelled arm.
  /// RealTimerHost additionally physically unlinks the entry, so
  /// has_pending()/next_deadline() forget it immediately.
  virtual bool cancel(TimerHandle& h);
};

inline void TimerHost::arm(TimerHandle& h, Nanos t) {
  auto core = h.core_;
  h.host_ = this;
  const std::uint64_t gen =
      core->gen.fetch_add(1, std::memory_order_acq_rel) + 1;
  core->deadline.store(t, std::memory_order_release);
  core->armed.store(true, std::memory_order_release);
  schedule_at(t, [core, gen] {
    if (core->gen.load(std::memory_order_acquire) != gen) return;
    core->armed.store(false, std::memory_order_release);
    if (core->fn) core->fn(gen);
  });
}

inline bool TimerHost::cancel(TimerHandle& h) {
  TimerHandle::Core& core = *h.core_;
  // Retire any in-flight closure UNCONDITIONALLY: if the firing already
  // cleared `armed` but has not run its callback yet, only the generation
  // bump stops it. Cancelling an idle handle is harmless (the next arm
  // bumps again).
  core.gen.fetch_add(1, std::memory_order_acq_rel);
  if (!core.armed.load(std::memory_order_acquire)) return false;
  core.armed.store(false, std::memory_order_release);
  return true;
}

inline TimerHandle::~TimerHandle() {
  if (host_ && core_->armed.load(std::memory_order_acquire))
    host_->cancel(*this);
}

/// Virtual-time timers: delegate to the simulation fabric. arm/cancel use
/// the generation-checked default (stale fabric events are free in virtual
/// time and keep the fabric's determinism intact).
class SimTimerHost final : public TimerHost {
 public:
  explicit SimTimerHost(sim::Fabric& fabric) : fabric_(fabric) {}
  Nanos now() const override { return fabric_.now(); }
  void schedule_at(Nanos t, std::function<void()> fn) override {
    fabric_.post_at(t, std::move(fn));
  }

 private:
  sim::Fabric& fabric_;
};

/// Wall-clock timers: a hierarchical timing wheel drained by run_due() from
/// the progress loop.
///
/// Layout: kLevels levels of 64 slots. A tick is 2^kTickShift ns (~1 µs);
/// level k slots span 64^k ticks, so the wheel covers 64^kLevels ticks
/// (~19.5 hours) before the unsorted overflow list takes over. An armed
/// entry lives at the LOWEST level whose 64-slot window around the cursor
/// contains its deadline; when the cursor reaches a coarse slot's window
/// start, its entries cascade down and re-distribute. arm() and cancel()
/// are O(1) list splices plus a bitmap update; run_due() jumps the cursor
/// directly between occupied ticks (per-level occupancy bitmaps), so an
/// idle wheel costs two atomic loads per poll no matter how many timers
/// are parked in it.
///
/// Deadlines are quantized DOWN to the tick, so a timer can fire up to one
/// tick (~1 µs) early — harmless for the engine's timers (nagle holds and
/// RTOs are tens of µs and self-validate under the peer lock), and it keeps
/// the old heap's "schedule inside a callback runs in the same run_due"
/// behavior intact.
class RealTimerHost final : public TimerHost {
 public:
  RealTimerHost() : now_fn_([clock = SteadyClock{}] { return clock.now(); }) {
    init();
  }
  /// Test seam: inject a fake time source (the wheel's cascade logic spans
  /// hours — tests cannot sleep that out on a steady clock).
  explicit RealTimerHost(std::function<Nanos()> now_fn)
      : now_fn_(std::move(now_fn)) {
    init();
  }
  ~RealTimerHost() override {
    // Orphaned armed entries (handles outliving the host are a usage error,
    // but pooled one-shots legitimately remain): break the self keep-alive
    // so their Cores release.
    std::lock_guard<std::mutex> lk(mu_);
    auto release = [](Core* head) {
      for (Core* c = head; c != nullptr;) {
        Core* next = c->next;
        c->armed.store(false, std::memory_order_release);
        c->self.reset();  // may destroy *c — take `next` first
        c = next;
      }
    };
    for (auto& level : slots_)
      for (auto& slot : level) release(slot.head);
    release(overflow_);
  }

  Nanos now() const override { return now_fn_(); }

  void schedule_at(Nanos t, std::function<void()> fn) override {
    // One-shot path: wrap the closure in a pooled Core so the wheel node
    // itself is recycled (the std::function capture may still allocate —
    // persistent-handle arm() is the allocation-free path).
    std::shared_ptr<Core> core;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!pool_.empty()) {
        core = std::move(pool_.back());
        pool_.pop_back();
      }
    }
    if (!core) core = std::make_shared<Core>();
    core->pooled = true;
    core->fn = [f = std::move(fn)](std::uint64_t) { f(); };
    std::lock_guard<std::mutex> lk(mu_);
    arm_core_locked(core, t);
  }

  void arm(TimerHandle& h, Nanos t) override {
    h.host_ = this;
    std::lock_guard<std::mutex> lk(mu_);
    arm_core_locked(h.core_, t);
  }

  bool cancel(TimerHandle& h) override {
    std::shared_ptr<Core> released;
    {
      std::lock_guard<std::mutex> lk(mu_);
      Core& core = *h.core_;
      // The cancel window: advance_locked may have ALREADY extracted this
      // entry into a caller's `due` batch (armed is false, the callback
      // has not run). Bumping the generation unconditionally is what
      // suppresses that in-flight fire — run_due re-checks the generation
      // under no lock right before invoking. Without this bump a cancel
      // that lost the race returned false and the callback ran anyway,
      // leaving every owner to re-derive staleness semantically.
      core.gen.fetch_add(1, std::memory_order_release);
      if (!core.armed.load(std::memory_order_relaxed)) return false;
      unlink_locked(&core);
      core.armed.store(false, std::memory_order_release);
      armed_count_.fetch_sub(1, std::memory_order_release);
      ++cancelled_;
      released = std::move(core.self);
      refresh_hint_locked();
    }
    // `released` drops outside the lock (it may be the last reference).
    return true;
  }

  /// Execute all timers whose deadline has passed. Returns count run.
  std::size_t run_due() override {
    std::size_t total = 0;
    std::vector<Fired> due;
    for (;;) {
      // Idle fast path: two atomic loads, no lock, regardless of how many
      // timers are parked in the wheel.
      if (armed_count_.load(std::memory_order_acquire) == 0) break;
      const std::uint64_t now_tick = tick_of(now_fn_());
      if (now_tick < next_tick_.load(std::memory_order_acquire)) break;
      due.clear();
      {
        std::lock_guard<std::mutex> lk(mu_);
        advance_locked(now_tick, due);
      }
      if (due.empty()) break;  // the event was a cascade, nothing due yet
      for (Fired& f : due) {
        // Suppress fires whose arm was cancelled (or superseded by a
        // re-arm) after extraction — the generation moved on. Pooled
        // one-shots are uncancellable, so their generation never moves.
        if (f.core->gen.load(std::memory_order_acquire) != f.gen) {
          stale_suppressed_.fetch_add(1, std::memory_order_relaxed);
        } else if (f.core->fn) {
          f.core->fn(f.gen);
        }
        if (f.core->pooled) recycle_pooled(std::move(f.core));
      }
      total += due.size();
      // Callbacks may have armed new, already-due timers: loop re-checks.
    }
    return total;
  }

  bool has_pending() const {
    return armed_count_.load(std::memory_order_acquire) > 0;
  }

  Nanos next_deadline() const override {
    if (armed_count_.load(std::memory_order_acquire) == 0) return kNoDeadline;
    const std::uint64_t t = next_tick_.load(std::memory_order_acquire);
    if (t == kNoTick) return kNoDeadline;
    return t0_ + (t << kTickShift);
  }

  /// Timers physically removed by cancel() before firing (diagnostics).
  std::uint64_t cancelled_count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return cancelled_;
  }

  /// Fires suppressed because cancel() (or a re-arm) bumped the handle's
  /// generation after the entry was extracted for firing but before the
  /// callback ran. This is the cancel window the timer layer now closes
  /// itself; owners no longer need semantic guards against it.
  std::uint64_t stale_suppressed_count() const {
    return stale_suppressed_.load(std::memory_order_relaxed);
  }

 private:
  using Core = TimerHandle::Core;

  static constexpr int kSlotBits = 6;
  static constexpr std::size_t kSlots = 1u << kSlotBits;  // 64
  static constexpr int kLevels = 6;                       // ~19.5 h horizon
  static constexpr int kTickShift = 10;                   // 1024 ns ticks
  static constexpr std::uint64_t kNoTick = ~std::uint64_t{0};
  static constexpr std::uint8_t kOverflowLevel = 0xff;

  struct Slot {
    Core* head = nullptr;
    Core* tail = nullptr;
  };
  struct Fired {
    std::shared_ptr<Core> core;
    std::uint64_t gen = 0;
  };

  void init() {
    t0_ = now_fn_();
    pool_.reserve(64);
  }

  std::uint64_t tick_of(Nanos t) const {
    return t <= t0_ ? 0 : (t - t0_) >> kTickShift;
  }

  /// Lowest level whose window around `cur` contains `expire`: the level-k
  /// placement invariant is "expire and cur share their level-(k+1) digit
  /// prefix", which guarantees every occupied slot sits AHEAD of the
  /// cursor in its window (no wrap ambiguity, exact cascade points).
  static int level_for(std::uint64_t expire, std::uint64_t cur) {
    const std::uint64_t diff = expire ^ cur;
    int k = 0;
    while (k + 1 <= kLevels && (diff >> (kSlotBits * (k + 1))) != 0) ++k;
    return k;  // == kLevels means beyond the horizon (overflow list)
  }

  void arm_core_locked(const std::shared_ptr<Core>& corep, Nanos t) {
    Core& core = *corep;
    if (core.armed.load(std::memory_order_relaxed)) {
      unlink_locked(&core);  // re-arm in place: O(1) splice, no alloc
    } else {
      armed_count_.fetch_add(1, std::memory_order_release);
      core.self = corep;
    }
    core.gen.fetch_add(1, std::memory_order_release);
    core.deadline.store(t, std::memory_order_release);
    core.expire_tick = std::max(tick_of(t), cur_tick_);
    core.armed.store(true, std::memory_order_release);
    link_locked(&core);
    refresh_hint_locked();
  }

  void link_locked(Core* c) {
    const int lvl = level_for(c->expire_tick, cur_tick_);
    if (lvl >= kLevels) {
      c->level = kOverflowLevel;
      c->prev = nullptr;
      c->next = overflow_;
      if (overflow_) overflow_->prev = c;
      overflow_ = c;
      return;
    }
    const auto slot = static_cast<std::uint8_t>(
        (c->expire_tick >> (kSlotBits * lvl)) & (kSlots - 1));
    c->level = static_cast<std::uint8_t>(lvl);
    c->slot = slot;
    Slot& s = slots_[lvl][slot];
    c->prev = s.tail;
    c->next = nullptr;
    if (s.tail)
      s.tail->next = c;
    else
      s.head = c;
    s.tail = c;
    occ_[lvl] |= std::uint64_t{1} << slot;
  }

  void unlink_locked(Core* c) {
    if (c->level == kOverflowLevel) {
      if (c->prev)
        c->prev->next = c->next;
      else
        overflow_ = c->next;
      if (c->next) c->next->prev = c->prev;
    } else {
      Slot& s = slots_[c->level][c->slot];
      if (c->prev)
        c->prev->next = c->next;
      else
        s.head = c->next;
      if (c->next)
        c->next->prev = c->prev;
      else
        s.tail = c->prev;
      if (s.head == nullptr)
        occ_[c->level] &= ~(std::uint64_t{1} << c->slot);
    }
    c->prev = c->next = nullptr;
  }

  /// Absolute tick of the next event — a level-0 deadline, a coarse-slot
  /// cascade point, or the overflow rescan boundary. kNoTick when empty.
  std::uint64_t next_event_tick_locked() const {
    std::uint64_t best = kNoTick;
    for (int k = 0; k < kLevels; ++k) {
      if (occ_[k] == 0) continue;
      const int shift = kSlotBits * k;
      const auto cslot =
          static_cast<unsigned>((cur_tick_ >> shift) & (kSlots - 1));
      // Placement invariant: occupied slots are at indices >= the cursor's
      // digit at this level, inside the cursor's level-(k+1) window.
      const std::uint64_t ahead =
          occ_[k] & ~((std::uint64_t{1} << cslot) - 1);
      MADO_ASSERT(ahead != 0);
      const auto s = static_cast<unsigned>(std::countr_zero(ahead));
      const std::uint64_t winbase =
          (cur_tick_ >> (shift + kSlotBits)) << (shift + kSlotBits);
      best = std::min(best, winbase + (std::uint64_t{s} << shift));
    }
    if (overflow_ != nullptr) {
      const int top = kSlotBits * kLevels;
      best = std::min(best, ((cur_tick_ >> top) + 1) << top);
    }
    return best;
  }

  void refresh_hint_locked() {
    next_tick_.store(next_event_tick_locked(), std::memory_order_release);
  }

  /// Re-distribute every entry of level `lvl`, slot `slot` relative to the
  /// (just advanced) cursor: entries land at finer levels or, when due this
  /// tick, at level 0 where the caller fires them.
  void cascade_locked(int lvl, unsigned slot) {
    Slot& s = slots_[lvl][slot];
    Core* c = s.head;
    s.head = s.tail = nullptr;
    occ_[lvl] &= ~(std::uint64_t{1} << slot);
    while (c != nullptr) {
      Core* next = c->next;
      c->prev = c->next = nullptr;
      link_locked(c);
      c = next;
    }
  }

  void advance_locked(std::uint64_t now_tick, std::vector<Fired>& due) {
    for (;;) {
      const std::uint64_t e = next_event_tick_locked();
      if (e == kNoTick || e > now_tick) {
        cur_tick_ = std::max(cur_tick_, now_tick);
        break;
      }
      cur_tick_ = std::max(cur_tick_, e);
      // Cascade coarse slots whose window starts exactly here, top-down so
      // a level-k entry can fall through several levels in one step.
      if (overflow_ != nullptr &&
          (e & ((std::uint64_t{1} << (kSlotBits * kLevels)) - 1)) == 0) {
        Core* c = overflow_;
        overflow_ = nullptr;
        while (c != nullptr) {
          Core* next = c->next;
          c->prev = c->next = nullptr;
          link_locked(c);
          c = next;
        }
      }
      for (int k = kLevels - 1; k >= 1; --k) {
        const std::uint64_t span_mask =
            (std::uint64_t{1} << (kSlotBits * k)) - 1;
        if ((e & span_mask) != 0) continue;
        const auto slot =
            static_cast<unsigned>((e >> (kSlotBits * k)) & (kSlots - 1));
        if (occ_[k] & (std::uint64_t{1} << slot)) cascade_locked(k, slot);
      }
      // Fire level 0 at the cursor's slot: all entries there expire now.
      const auto slot0 = static_cast<unsigned>(e & (kSlots - 1));
      if (occ_[0] & (std::uint64_t{1} << slot0)) {
        Slot& s = slots_[0][slot0];
        Core* c = s.head;
        s.head = s.tail = nullptr;
        occ_[0] &= ~(std::uint64_t{1} << slot0);
        std::size_t fired = 0;
        while (c != nullptr) {
          Core* next = c->next;
          c->prev = c->next = nullptr;
          MADO_ASSERT(c->expire_tick == e);
          c->armed.store(false, std::memory_order_release);
          Fired f;
          f.gen = c->gen.load(std::memory_order_relaxed);
          f.core = std::move(c->self);  // transfer keep-alive to the caller
          due.push_back(std::move(f));
          ++fired;
          c = next;
        }
        armed_count_.fetch_sub(fired, std::memory_order_release);
      }
      // Tick `e` is fully processed (cascades relinked strictly-later
      // entries, the level-0 slot fired). Step past it and re-derive.
      if (e >= now_tick) break;
      cur_tick_ = e + 1;
    }
    refresh_hint_locked();
  }

  void recycle_pooled(std::shared_ptr<Core>&& core) {
    core->fn = nullptr;  // release the closure outside the wheel lock
    std::lock_guard<std::mutex> lk(mu_);
    if (pool_.size() < kSlots) pool_.push_back(std::move(core));
  }

  std::function<Nanos()> now_fn_;
  Nanos t0_ = 0;

  mutable std::mutex mu_;
  std::uint64_t cur_tick_ = 0;  ///< all ticks < cur_tick_ are processed
  Slot slots_[kLevels][kSlots];
  std::uint64_t occ_[kLevels] = {};
  Core* overflow_ = nullptr;  ///< beyond-horizon entries, rescanned at top
  std::vector<std::shared_ptr<Core>> pool_;  ///< recycled one-shot nodes
  std::uint64_t cancelled_ = 0;
  std::atomic<std::uint64_t> stale_suppressed_{0};

  /// Lock-free fast-path state: armed entries, and a lower bound on the
  /// next event tick (exact for level-0 deadlines, a window start for
  /// coarse ones — park bounds may wake early, never late).
  std::atomic<std::size_t> armed_count_{0};
  std::atomic<std::uint64_t> next_tick_{kNoTick};
};

}  // namespace mado::core
