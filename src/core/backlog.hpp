// Collect layer: the per-(peer, rail) transmit backlog.
//
// The application enqueues fragments here and "immediately returns to
// computing" (paper §3, Figure 1). The optimizer consumes the backlog when
// a NIC track becomes idle. While a track is busy, fragments accumulate —
// that accumulation IS the lookahead pool the optimizer exploits.
//
// Structure: one high-priority control queue (rendezvous CTS and similar
// engine-generated fragments) plus one FIFO queue per flow. Strategies may
// interleave *across* flows arbitrarily but only consume each flow's queue
// from the head, which enforces the intra-message ordering constraint.
//
// Hot-path contract: the optimizer consults the backlog on EVERY NIC
// idle→backlog transition, so lookups must be allocation-free. Instead of
// rebuilding and sorting a flow list per decision, an oldest-head-first
// flow index is maintained incrementally on push/pop: a small sorted array
// of (head order, channel) entries (cache-resident for realistic flow
// counts; O(log F) search + O(F) contiguous shift per update, no heap
// traffic once the inline/retained capacity is warm). `flow_index()`
// exposes it as a zero-allocation iteration range, `oldest_flow()` /
// `oldest_submit_time()` are O(1).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/packet.hpp"
#include "core/types.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"
#include "util/small_vector.hpp"
#include "util/wire.hpp"

namespace mado::core {

/// Completion state shared between the engine and SendHandle.
///
/// `pending`/`failed` are atomics so send_done()/send_failed() are lock-free
/// reads from any thread: the sharded engine completes fragments under a
/// *per-peer* lock, and application threads polling a handle must not have
/// to take it. The remaining fields are written once at submit (before the
/// handle escapes to the application) and read-only afterwards.
struct SendState {
  std::atomic<std::uint32_t> pending{0};  ///< fragments not yet fully sent
  std::atomic<bool> failed{false};
  // Latency instrumentation (set at submit; read when pending hits 0 to
  // feed the lat.complete.* histograms, split by traffic class).
  Nanos submit_time = 0;
  TrafficClass cls = TrafficClass::SmallEager;
  NodeId peer = 0;  ///< destination; routes wait_send() to the peer's cv
};
using SendStateRef = std::shared_ptr<SendState>;

/// One fragment queued for transmission.
struct TxFrag {
  ChannelId channel = 0;
  MsgSeq msg_seq = 0;
  FragIdx idx = 0;
  std::uint16_t nfrags_total = 0;
  FragKind kind = FragKind::Data;
  TrafficClass cls = TrafficClass::SmallEager;
  bool last = false;

  Bytes owned;                 ///< payload when copied / engine-generated
  const Byte* ext = nullptr;   ///< payload when referenced (Later mode)
  std::size_t len = 0;

  std::uint64_t rdv_token = 0;   ///< RdvRts: matching rendezvous token
  SendStateRef state;            ///< null for engine-internal fragments

  Nanos submit_time = 0;
  std::uint64_t order = 0;  ///< global submit order (for FIFO fairness)

  const Byte* data() const { return owned.empty() ? ext : owned.data(); }

  FragHeader header() const {
    FragHeader fh;
    fh.channel = channel;
    fh.msg_seq = msg_seq;
    fh.frag_idx = idx;
    fh.nfrags_total = nfrags_total;
    fh.kind = kind;
    fh.flags = last ? kFlagLastFrag : std::uint8_t{0};
    fh.len = static_cast<std::uint32_t>(len);
    return fh;
  }
};

class TxBacklog {
 public:
  /// Inline-capacity flow scratch shared by strategies: holds the typical
  /// active-flow count without heap traffic.
  using FlowList = mado::SmallVector<ChannelId, 16>;

  /// One flow-index slot: the flow and its head fragment's submit order.
  struct IndexEntry {
    std::uint64_t order = 0;  ///< head fragment's global submit order
    ChannelId channel = 0;
  };

  /// Zero-allocation iteration over active flows, oldest head first.
  /// Invalidated by push/pop (like any container iteration).
  class FlowIndexView {
   public:
    struct iterator {
      const IndexEntry* entry = nullptr;
      ChannelId operator*() const { return entry->channel; }
      iterator& operator++() {
        ++entry;
        return *this;
      }
      bool operator!=(const iterator& o) const { return entry != o.entry; }
      bool operator==(const iterator& o) const { return entry == o.entry; }
    };
    iterator begin() const { return {first_}; }
    iterator end() const { return {last_}; }
    std::size_t size() const {
      return static_cast<std::size_t>(last_ - first_);
    }
    bool empty() const { return first_ == last_; }

   private:
    friend class TxBacklog;
    const IndexEntry* first_ = nullptr;
    const IndexEntry* last_ = nullptr;
  };

  void push(TxFrag f) {
    total_bytes_ += f.len;
    ++total_frags_;
    auto& q = flows_[f.channel];
    if (q.empty()) index_insert(f.order, f.channel);
    q.push_back(std::move(f));
  }

  void push_control(TxFrag f) {
    total_bytes_ += f.len;
    ++total_frags_;
    control_.push_back(std::move(f));
  }

  bool empty() const { return total_frags_ == 0; }
  std::size_t frag_count() const { return total_frags_; }
  std::size_t byte_count() const { return total_bytes_; }

  bool has_control() const { return !control_.empty(); }
  const TxFrag& peek_control() const { return control_.front(); }
  TxFrag pop_control() {
    MADO_ASSERT(!control_.empty());
    TxFrag f = std::move(control_.front());
    control_.pop_front();
    account_pop(f);
    return f;
  }

  /// Active flows ordered by their head fragment's global submit order
  /// (oldest first) — the fair scan order for strategies. Allocation-free;
  /// invalidated by the next push/pop.
  FlowIndexView flow_index() const {
    FlowIndexView v;
    v.first_ = index_.data();
    v.last_ = index_.data() + index_.size();
    return v;
  }

  std::size_t active_flow_count() const { return index_.size(); }

  /// The flow whose head fragment is globally oldest (O(1)).
  /// Precondition: at least one data fragment is queued.
  ChannelId oldest_flow() const {
    MADO_ASSERT(!index_.empty());
    return index_.front().channel;
  }

  /// Compatibility/testing helper: materialize flow_index() into a vector.
  /// Strategies on the decision path should iterate flow_index() instead.
  std::vector<ChannelId> active_flows() const {
    std::vector<ChannelId> out;
    out.reserve(index_.size());
    for (const IndexEntry& e : index_) out.push_back(e.channel);
    return out;
  }

  std::size_t flow_depth(ChannelId ch) const {
    auto it = flows_.find(ch);
    return it == flows_.end() ? 0 : it->second.size();
  }

  const TxFrag& peek(ChannelId ch, std::size_t depth = 0) const {
    auto it = flows_.find(ch);
    MADO_ASSERT(it != flows_.end() && depth < it->second.size());
    return it->second[depth];
  }

  /// Direct read view of one flow's queue, so a strategy scanning several
  /// fragments of the same flow pays ONE hash lookup instead of one per
  /// peek. Precondition: the flow exists (i.e. `ch` came from flow_index()
  /// or flow_depth(ch) > 0). Invalidated by push/pop on that flow.
  const std::deque<TxFrag>& flow(ChannelId ch) const {
    auto it = flows_.find(ch);
    MADO_ASSERT(it != flows_.end());
    return it->second;
  }

  /// Pop the first `n` fragments of `ch` into `out` (appending, in order).
  /// Equivalent to n single pop() calls but with one hash lookup and one
  /// flow-index erase/insert pair — the fast path for strategies that
  /// consume a planned per-flow prefix.
  template <typename OutVec>
  void pop_n(ChannelId ch, std::size_t n, OutVec& out) {
    if (n == 0) return;
    auto it = flows_.find(ch);
    MADO_ASSERT(it != flows_.end() && n <= it->second.size());
    auto& q = it->second;
    const std::uint64_t head_order = q.front().order;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(q.front()));
      account_pop(out.back());
      q.pop_front();
    }
    index_erase(head_order);
    if (!q.empty()) index_insert(q.front().order, ch);
  }

  TxFrag pop(ChannelId ch) {
    auto it = flows_.find(ch);
    MADO_ASSERT(it != flows_.end() && !it->second.empty());
    TxFrag f = std::move(it->second.front());
    it->second.pop_front();
    // Drained flow entries are retained (empty) so a flow that reactivates
    // does not pay a hash-map insert; only the index entry is maintained.
    index_erase(f.order);
    if (!it->second.empty()) index_insert(it->second.front().order, ch);
    account_pop(f);
    return f;
  }

  /// Submit time of the oldest fragment (control or data); 0 if empty.
  /// Uses the flow index: requires submit_time to be non-decreasing in
  /// `order`, which the engine guarantees (both are assigned together,
  /// under the engine lock, at submit time).
  Nanos oldest_submit_time() const {
    bool found = false;
    Nanos best = 0;
    if (!control_.empty()) {
      best = control_.front().submit_time;
      found = true;
    }
    if (!index_.empty()) {
      const Nanos t = peek(index_.front().channel).submit_time;
      if (!found || t < best) best = t;
      found = true;
    }
    return found ? best : 0;
  }

  /// Cumulative count of flow-index maintenance operations (inserts +
  /// erases). The engine surfaces deltas as the `opt.flow_index_ops`
  /// counter so index cost stays observable.
  std::uint64_t flow_index_ops() const { return index_ops_; }

 private:
  void index_insert(std::uint64_t order, ChannelId ch) {
    ++index_ops_;
    auto it = std::lower_bound(
        index_.begin(), index_.end(), order,
        [](const IndexEntry& e, std::uint64_t o) { return e.order < o; });
    index_.insert(it, IndexEntry{order, ch});
  }

  void index_erase(std::uint64_t order) {
    ++index_ops_;
    auto it = std::lower_bound(
        index_.begin(), index_.end(), order,
        [](const IndexEntry& e, std::uint64_t o) { return e.order < o; });
    MADO_ASSERT(it != index_.end() && it->order == order);
    index_.erase(it);
  }

  void account_pop(const TxFrag& f) {
    MADO_ASSERT(total_frags_ > 0 && total_bytes_ >= f.len);
    total_bytes_ -= f.len;
    --total_frags_;
  }

  std::deque<TxFrag> control_;
  std::unordered_map<ChannelId, std::deque<TxFrag>> flows_;
  mado::SmallVector<IndexEntry, 16> index_;  ///< sorted by order, ascending
  std::uint64_t index_ops_ = 0;
  std::size_t total_frags_ = 0;
  std::size_t total_bytes_ = 0;
};

}  // namespace mado::core
