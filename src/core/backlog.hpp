// Collect layer: the per-(peer, rail) transmit backlog.
//
// The application enqueues fragments here and "immediately returns to
// computing" (paper §3, Figure 1). The optimizer consumes the backlog when
// a NIC track becomes idle. While a track is busy, fragments accumulate —
// that accumulation IS the lookahead pool the optimizer exploits.
//
// Structure: one high-priority control queue (rendezvous CTS and similar
// engine-generated fragments) plus one FIFO queue per flow. Strategies may
// interleave *across* flows arbitrarily but only consume each flow's queue
// from the head, which enforces the intra-message ordering constraint.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "core/packet.hpp"
#include "core/types.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"
#include "util/wire.hpp"

namespace mado::core {

/// Completion state shared between the engine and SendHandle.
/// All fields are guarded by the owning engine's lock.
struct SendState {
  std::uint32_t pending = 0;  ///< fragments not yet fully transmitted
  bool failed = false;
};
using SendStateRef = std::shared_ptr<SendState>;

/// One fragment queued for transmission.
struct TxFrag {
  ChannelId channel = 0;
  MsgSeq msg_seq = 0;
  FragIdx idx = 0;
  std::uint16_t nfrags_total = 0;
  FragKind kind = FragKind::Data;
  TrafficClass cls = TrafficClass::SmallEager;
  bool last = false;

  Bytes owned;                 ///< payload when copied / engine-generated
  const Byte* ext = nullptr;   ///< payload when referenced (Later mode)
  std::size_t len = 0;

  std::uint64_t rdv_token = 0;   ///< RdvRts: matching rendezvous token
  SendStateRef state;            ///< null for engine-internal fragments

  Nanos submit_time = 0;
  std::uint64_t order = 0;  ///< global submit order (for FIFO fairness)

  const Byte* data() const { return owned.empty() ? ext : owned.data(); }

  FragHeader header() const {
    FragHeader fh;
    fh.channel = channel;
    fh.msg_seq = msg_seq;
    fh.frag_idx = idx;
    fh.nfrags_total = nfrags_total;
    fh.kind = kind;
    fh.flags = last ? kFlagLastFrag : std::uint8_t{0};
    fh.len = static_cast<std::uint32_t>(len);
    return fh;
  }
};

class TxBacklog {
 public:
  void push(TxFrag f) {
    total_bytes_ += f.len;
    ++total_frags_;
    flows_[f.channel].push_back(std::move(f));
  }

  void push_control(TxFrag f) {
    total_bytes_ += f.len;
    ++total_frags_;
    control_.push_back(std::move(f));
  }

  bool empty() const { return total_frags_ == 0; }
  std::size_t frag_count() const { return total_frags_; }
  std::size_t byte_count() const { return total_bytes_; }

  bool has_control() const { return !control_.empty(); }
  const TxFrag& peek_control() const { return control_.front(); }
  TxFrag pop_control() {
    MADO_ASSERT(!control_.empty());
    TxFrag f = std::move(control_.front());
    control_.pop_front();
    account_pop(f);
    return f;
  }

  /// Flows with pending fragments, ordered by their head fragment's global
  /// submit order (oldest first) — the fair scan order for strategies.
  std::vector<ChannelId> active_flows() const {
    std::vector<ChannelId> out;
    out.reserve(flows_.size());
    for (const auto& [ch, q] : flows_)
      if (!q.empty()) out.push_back(ch);
    std::sort(out.begin(), out.end(), [this](ChannelId a, ChannelId b) {
      return flows_.at(a).front().order < flows_.at(b).front().order;
    });
    return out;
  }

  std::size_t flow_depth(ChannelId ch) const {
    auto it = flows_.find(ch);
    return it == flows_.end() ? 0 : it->second.size();
  }

  const TxFrag& peek(ChannelId ch, std::size_t depth = 0) const {
    auto it = flows_.find(ch);
    MADO_ASSERT(it != flows_.end() && depth < it->second.size());
    return it->second[depth];
  }

  TxFrag pop(ChannelId ch) {
    auto it = flows_.find(ch);
    MADO_ASSERT(it != flows_.end() && !it->second.empty());
    TxFrag f = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) flows_.erase(it);
    account_pop(f);
    return f;
  }

  /// Submit time of the oldest fragment (control or data); 0 if empty.
  Nanos oldest_submit_time() const {
    Nanos best = 0;
    bool found = false;
    if (!control_.empty()) {
      best = control_.front().submit_time;
      found = true;
    }
    for (const auto& [ch, q] : flows_) {
      if (q.empty()) continue;
      if (!found || q.front().submit_time < best) best = q.front().submit_time;
      found = true;
    }
    return best;
  }

 private:
  void account_pop(const TxFrag& f) {
    MADO_ASSERT(total_frags_ > 0 && total_bytes_ >= f.len);
    total_bytes_ -= f.len;
    --total_frags_;
  }

  std::deque<TxFrag> control_;
  std::map<ChannelId, std::deque<TxFrag>> flows_;
  std::size_t total_frags_ = 0;
  std::size_t total_bytes_ = 0;
};

}  // namespace mado::core
