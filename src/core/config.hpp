// Engine configuration. Every knob the paper discusses (strategy selection,
// lookahead window, Nagle-style delay, rearrangement evaluation budget,
// multirail policy) is a field here so benchmarks can sweep them.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "core/types.hpp"
#include "util/clock.hpp"

namespace mado::core {

/// Tuning for MultirailPolicy::Stripe (heterogeneous multi-rail bulk
/// striping with cost-model placement and rail work-stealing).
struct StripePolicy {
  /// Smallest chunk the splitter will cut. A rail whose cost-model share
  /// comes out below this is dropped from the stripe and its bytes folded
  /// into the fastest rail — a 100:1 rail pair should not pay a rendezvous
  /// round just to move a handful of bytes on the slow NIC.
  std::size_t min_chunk = 8 * 1024;

  /// Idle rails steal queued chunks from the most-loaded rail toward the
  /// same peer (from the tail of its queue, so the victim keeps streaming
  /// its head undisturbed).
  bool steal = true;

  /// A rail only becomes a steal victim while it still has at least this
  /// many queued bulk bytes (0 = any non-empty queue may be robbed).
  std::size_t steal_min_bytes = 0;
};

struct EngineConfig {
  /// Name of the optimization strategy, resolved via the StrategyRegistry
  /// ("the database of predefined strategies can be easily extended").
  std::string strategy = "aggreg";

  /// Lookahead window: the maximum number of backlog fragments the strategy
  /// may examine/combine per packet decision. 0 means unbounded. The
  /// paper's future work #1 is experimenting with this value (bench E4).
  std::size_t lookahead_window = 16;

  /// Evaluation budget for search-based strategies: the maximum number of
  /// candidate rearrangements scored per decision. The paper's future work
  /// #2 is bounding this value (bench E5).
  std::size_t eval_budget = 64;

  /// Artificial submission delay for the "nagle" strategy: a lone small
  /// fragment is held up to this long in the hope of aggregation (paper §3,
  /// "in a TCP Nagle's algorithm fashion"). Ignored by other strategies.
  Nanos nagle_delay = 0;

  /// Fragments at least this large use rendezvous regardless of driver
  /// capabilities; 0 defers entirely to Capabilities::rdv_threshold.
  std::size_t rdv_threshold_override = 0;

  /// Bulk data is cut into chunks of this size for multirail distribution.
  std::size_t rdv_chunk = 64 * 1024;

  MultirailPolicy multirail = MultirailPolicy::DynamicSplit;

  /// Tuning for MultirailPolicy::Stripe (ignored by the other policies).
  StripePolicy stripe;

  /// Rail selection for eager messages at submit time.
  EagerRailPolicy eager_rail = EagerRailPolicy::ClassPinned;

  /// SendMode::Cheaper copies fragments up to this size (larger ones are
  /// referenced in place, as SendMode::Later).
  std::size_t cheaper_copy_bound = 4096;

  /// Initial traffic-class → rail assignment (index = TrafficClass value).
  /// Rails beyond the actual rail count wrap modulo rail count.
  std::array<RailId, kTrafficClassCount> class_rail = {0, 0, 0, 0};

  /// Verify header CRCs on packet decode.
  bool crc_check = true;

  // --- Reliability layer (off by default: lossless fabrics pay nothing) ---

  /// Per-rail ack/retransmit: reliable sequence numbers on every packet,
  /// cumulative (piggybacked + standalone) acks, retransmit timers with
  /// exponential backoff, duplicate/out-of-order suppression on RX, and
  /// failover of un-acked traffic when a rail dies.
  bool reliability = false;

  /// Additionally protect packet *payloads* with CRC-32 (headers always
  /// are). A payload CRC mismatch drops the packet (`rel.payload_crc_drops`)
  /// and lets retransmission repair it. Requires `reliability`.
  bool payload_crc = false;

  /// Go-back-N send window per (rail, stream): packets sent but not yet
  /// cumulatively acked. Bounds both the retransmit burst after a loss (a
  /// drop resends at most this many packets) and the retained-payload
  /// memory. Standalone acks are unsequenced and never count against it.
  std::size_t rel_window = 64;

  /// Initial retransmit timeout for un-acked packets. The armed deadline
  /// additionally includes the cost model's estimate of draining all
  /// un-acked bytes, so a slow fat chunk does not trip a spurious timeout.
  Nanos rel_rto_initial = 200 * kNanosPerMicro;

  /// Ceiling for the exponential RTO backoff.
  Nanos rel_rto_max = 10 * kNanosPerMilli;

  /// Consecutive timeout rounds (backoffs without forward progress) before
  /// a rail is declared Down and its traffic fails over.
  std::size_t rel_max_retries = 10;

  // --- Per-peer memory budgets (million-flow capacity; cap.* counters) -----

  /// Payload-slab free-list depth per peer. Completed buffers beyond this
  /// are released immediately (counted as cap.slab_sheds).
  std::size_t slab_buffers = 64;

  /// Largest buffer the payload slab retains; bigger ones are never pooled.
  std::size_t slab_max_capacity = 64 * 1024;

  /// Smallest slot-array capacity (rounded up to a power of two) for the
  /// per-peer token tables (inflight, rendezvous, pending gets, ...).
  std::size_t table_min_capacity = 16;

  /// Shrink token tables back toward table_min_capacity when a flow burst
  /// drains (<= 1/8 load). Rehashes are counted as cap.table_shrinks /
  /// cap.table_growths.
  bool table_shrink = true;

  /// Reliability: how many recently-completed rendezvous tokens each peer
  /// remembers for cross-rail replay dedup. Older tokens are evicted FIFO
  /// (counted as cap.rdv_done_evictions).
  std::size_t rdv_done_window = 1024;

  // --- Threading: submit ring + progress threads ---------------------------

  /// Number of progress threads started by start_progress_thread(). Peer
  /// shards are statically assigned to threads (insertion order modulo
  /// this count) with rail affinity: every rail of a peer is pumped by the
  /// shard's single owner, keeping per-lap hot structures cache-resident.
  /// Idle threads steal un-pumped shards from busy owners. 1 (the default)
  /// preserves the single-pump behavior exactly.
  std::size_t progress_threads = 1;

  /// Capacity (rounded up to a power of two) of the per-peer lock-free
  /// submit ring. Uncontended posts take the peer lock and submit inline
  /// (no ring traffic); when the shard is busy, application threads
  /// enqueue here and return immediately — whoever holds the peer lock
  /// (progressor or a flat-combining submitter) drains it. Contention thus
  /// widens the optimizer's lookahead window exactly as the paper intends:
  /// submissions batch up between NIC-idle instants. 0 disables the ring:
  /// every submit blocks on the peer lock (useful for A/B tests).
  std::size_t submit_ring = 256;

  /// Progress-thread adaptive backoff: after this many consecutive idle
  /// laps the thread stops spinning and starts yielding.
  std::size_t prog_spin_laps = 64;

  /// After this many further idle yield laps it parks on the activity
  /// condition variable (bounded by prog_idle_wait).
  std::size_t prog_yield_laps = 64;

  /// Upper bound for one parked wait. Submit/completion activity notifies
  /// the cv, but driver IO threads cannot (they only feed queues that
  /// progress() polls), so the park must stay bounded.
  Nanos prog_idle_wait = 100 * kNanosPerMicro;
};

}  // namespace mado::core
