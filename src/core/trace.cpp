#include "core/trace.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace mado::core {

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  MADO_CHECK(capacity > 0);
  ring_.resize(capacity);
}

void Tracer::record(const TraceRecord& rec) {
  std::lock_guard<std::mutex> lk(mu_);
  ring_[head_] = rec;
  head_ = (head_ + 1) % capacity_;
  if (count_ < capacity_) {
    ++count_;
  } else {
    ++dropped_;
  }
}

std::vector<TraceRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TraceRecord> out;
  out.reserve(count_);
  const std::size_t start = (head_ + capacity_ - count_) % capacity_;
  for (std::size_t i = 0; i < count_; ++i)
    out.push_back(ring_[(start + i) % capacity_]);
  return out;
}

std::size_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return count_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  head_ = count_ = dropped_ = 0;
}

const char* Tracer::event_name(TraceEvent ev) {
  switch (ev) {
    case TraceEvent::MsgSubmit: return "MsgSubmit";
    case TraceEvent::Decision: return "Decision";
    case TraceEvent::PacketTx: return "PacketTx";
    case TraceEvent::PacketRx: return "PacketRx";
    case TraceEvent::BulkTx: return "BulkTx";
    case TraceEvent::BulkRx: return "BulkRx";
    case TraceEvent::RdvRts: return "RdvRts";
    case TraceEvent::RdvCts: return "RdvCts";
    case TraceEvent::RdvDone: return "RdvDone";
    case TraceEvent::NagleWait: return "NagleWait";
    case TraceEvent::Rebalance: return "Rebalance";
    case TraceEvent::RmaOp: return "RmaOp";
    case TraceEvent::RelRetx: return "RelRetx";
    case TraceEvent::RailDown: return "RailDown";
    case TraceEvent::BulkSteal: return "BulkSteal";
  }
  return "?";
}

std::string Tracer::render(const TraceRecord& rec) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%12.3fus  n%u->%u r%u  %-10s a=%llu b=%llu c=%llu",
                to_usec(rec.time), rec.node, rec.peer, rec.rail,
                event_name(rec.event),
                static_cast<unsigned long long>(rec.a),
                static_cast<unsigned long long>(rec.b),
                static_cast<unsigned long long>(rec.c));
  return buf;
}

std::string Tracer::render_all() const {
  std::string out;
  for (const TraceRecord& rec : snapshot()) {
    out += render(rec);
    out += '\n';
  }
  return out;
}

}  // namespace mado::core
