#include "core/trace_export.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <tuple>
#include <utility>

namespace mado::core {

namespace {

// ---- low-level JSON emission ------------------------------------------------
//
// The document is assembled by appending one event object per line. All
// field names and values we emit are plain ASCII (event names are compile-
// time literals, ids are formatted numbers), so no string escaping is
// needed; keeping the writer this small is what lets the exporter stay
// dependency-free.

constexpr std::uint64_t kTidBase = 256;  // tid = peer * kTidBase + rail

std::uint64_t tid_of(const TraceRecord& r) {
  return static_cast<std::uint64_t>(r.peer) * kTidBase + r.rail;
}

double usec_ts(Nanos t) { return to_usec(t); }

class Writer {
 public:
  explicit Writer(std::string& out) : out_(out) {}

  void begin_doc() { out_ += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"; }
  void end_doc() { out_ += "\n]}\n"; }

  /// Start one event object with the fields every record shares.
  void begin(const char* name, const char* cat, char ph, double ts,
             std::uint64_t pid, std::uint64_t tid) {
    if (!first_) out_ += ",\n";
    first_ = false;
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                  "\"ts\":%.3f,\"pid\":%llu,\"tid\":%llu",
                  name, cat, ph, ts, static_cast<unsigned long long>(pid),
                  static_cast<unsigned long long>(tid));
    out_ += buf;
  }
  void field_f(const char* key, double v) {
    char buf[96];
    std::snprintf(buf, sizeof buf, ",\"%s\":%.3f", key, v);
    out_ += buf;
  }
  void field_u(const char* key, std::uint64_t v) {
    char buf[96];
    std::snprintf(buf, sizeof buf, ",\"%s\":%llu", key,
                  static_cast<unsigned long long>(v));
    out_ += buf;
  }
  void field_s(const char* key, const std::string& v) {
    out_ += ",\"";
    out_ += key;
    out_ += "\":\"";
    out_ += v;
    out_ += '"';
  }
  /// args object from up to four (key, value) pairs; null keys skipped.
  void args(const char* k1, std::uint64_t v1, const char* k2 = nullptr,
            std::uint64_t v2 = 0, const char* k3 = nullptr,
            std::uint64_t v3 = 0, const char* k4 = nullptr,
            std::uint64_t v4 = 0) {
    out_ += ",\"args\":{";
    char buf[96];
    std::snprintf(buf, sizeof buf, "\"%s\":%llu", k1,
                  static_cast<unsigned long long>(v1));
    out_ += buf;
    if (k2) {
      std::snprintf(buf, sizeof buf, ",\"%s\":%llu", k2,
                    static_cast<unsigned long long>(v2));
      out_ += buf;
    }
    if (k3) {
      std::snprintf(buf, sizeof buf, ",\"%s\":%llu", k3,
                    static_cast<unsigned long long>(v3));
      out_ += buf;
    }
    if (k4) {
      std::snprintf(buf, sizeof buf, ",\"%s\":%llu", k4,
                    static_cast<unsigned long long>(v4));
      out_ += buf;
    }
    out_ += '}';
  }
  void end() { out_ += '}'; }

  /// process_name / thread_name metadata event.
  void metadata(const char* what, std::uint64_t pid, std::uint64_t tid,
                const std::string& label) {
    begin(what, "__metadata", 'M', 0.0, pid, tid);
    out_ += ",\"args\":{\"name\":\"";
    out_ += label;
    out_ += "\"}";
    end();
  }

  /// Instant event (thread scope) straight from a record.
  void instant(const char* name, const TraceRecord& r) {
    begin(name, "engine", 'i', usec_ts(r.time), r.node, tid_of(r));
    out_ += ",\"s\":\"t\"";
    args("a", r.a, "b", r.b, "c", r.c);
    end();
  }

 private:
  std::string& out_;
  bool first_ = true;
};

/// A complete ("X") span; durations below 1ns are clamped so zero-length
/// spans stay visible and bindable by flow events.
void span(Writer& w, const char* name, const char* cat, Nanos start,
          Nanos end_t, std::uint64_t pid, std::uint64_t tid) {
  w.begin(name, cat, 'X', usec_ts(start), pid, tid);
  const double dur = end_t > start ? to_usec(end_t - start) : 0.0;
  w.field_f("dur", dur > 0.001 ? dur : 0.001);
}

// ---- pairing state ----------------------------------------------------------

struct RdvLife {
  bool has_rts = false, has_cts = false, has_done = false;
  Nanos rts = 0, cts = 0, done = 0;
  NodeId peer = 0;
  RailId rail = 0;
  std::uint64_t total = 0;
};

}  // namespace

std::string to_chrome_trace(const std::vector<TraceRecord>& records,
                            const ChromeTraceOptions& opts) {
  std::string out;
  out.reserve(256 + records.size() * 160);
  Writer w(out);
  w.begin_doc();

  // ---- pass 1: name the tracks, index the pairable records ----------------
  std::set<NodeId> nodes;
  std::set<std::tuple<NodeId, NodeId, RailId>> tracks;
  // (src, dst, rail, pkt_seq) -> rx record index, for PacketTx->PacketRx.
  std::map<std::tuple<NodeId, NodeId, RailId, std::uint64_t>, std::size_t>
      pkt_rx;
  std::set<std::tuple<NodeId, NodeId, RailId, std::uint64_t>> pkt_tx;
  // (src, dst, token, offset) -> rx record index, for BulkTx->BulkRx.
  std::map<std::tuple<NodeId, NodeId, std::uint64_t, std::uint64_t>,
           std::size_t>
      bulk_rx;
  std::set<std::tuple<NodeId, NodeId, std::uint64_t, std::uint64_t>> bulk_tx;
  // (node, token) -> rendezvous lifecycle marks.
  std::map<std::pair<NodeId, std::uint64_t>, RdvLife> rdv;

  for (std::size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& r = records[i];
    nodes.insert(r.node);
    tracks.insert({r.node, r.peer, r.rail});
    switch (r.event) {
      case TraceEvent::PacketTx:
        pkt_tx.insert({r.node, r.peer, r.rail, r.d});
        break;
      case TraceEvent::PacketRx:
        // node received from peer: flow key is (sender, receiver, ...).
        pkt_rx[{r.peer, r.node, r.rail, r.d}] = i;
        break;
      case TraceEvent::BulkTx:
        bulk_tx.insert({r.node, r.peer, r.a, r.b});
        break;
      case TraceEvent::BulkRx:
        bulk_rx[{r.peer, r.node, r.a, r.b}] = i;
        break;
      case TraceEvent::RdvRts: {
        RdvLife& l = rdv[{r.node, r.a}];
        l.has_rts = true;
        l.rts = r.time;
        l.peer = r.peer;
        l.rail = r.rail;
        l.total = r.b;
        break;
      }
      case TraceEvent::RdvCts: {
        RdvLife& l = rdv[{r.node, r.a}];
        l.has_cts = true;
        l.cts = r.time;
        if (!l.has_rts) {
          l.peer = r.peer;
          l.rail = r.rail;
        }
        break;
      }
      case TraceEvent::RdvDone: {
        RdvLife& l = rdv[{r.node, r.a}];
        l.has_done = true;
        l.done = r.time;
        if (!l.has_rts && !l.has_cts) {
          l.peer = r.peer;
          l.rail = r.rail;
        }
        if (l.total == 0) l.total = r.b;
        break;
      }
      default:
        break;
    }
  }

  // ---- metadata: name processes and per-(peer,rail) tracks ----------------
  for (NodeId n : nodes) {
    char label[48];
    std::snprintf(label, sizeof label, "node %u", n);
    w.metadata("process_name", n, 0, label);
  }
  for (const auto& [node, peer, rail] : tracks) {
    char label[64];
    std::snprintf(label, sizeof label, "peer %u rail %u", peer, rail);
    w.metadata("thread_name", node,
               static_cast<std::uint64_t>(peer) * kTidBase + rail, label);
  }

  // ---- pass 2: per-record events ------------------------------------------
  // Retransmit-episode accumulation: (node, peer, rail) -> open episode.
  struct Episode {
    Nanos start = 0, last = 0;
    std::uint64_t count = 0;
  };
  std::map<std::tuple<NodeId, NodeId, RailId>, Episode> episodes;
  auto flush_episode = [&](const std::tuple<NodeId, NodeId, RailId>& key,
                           const Episode& e) {
    span(w, "retx.episode", "reliability", e.start, e.last,
         std::get<0>(key),
         static_cast<std::uint64_t>(std::get<1>(key)) * kTidBase +
             std::get<2>(key));
    w.args("retransmits", e.count);
    w.end();
  };

  for (std::size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& r = records[i];
    switch (r.event) {
      case TraceEvent::MsgSubmit:
        w.begin("MsgSubmit", "engine", 'i', usec_ts(r.time), r.node,
                tid_of(r));
        out += ",\"s\":\"t\"";
        w.args("channel", r.a, "nfrags", r.b, "bytes", r.c);
        w.end();
        break;
      case TraceEvent::Decision:
        w.begin(r.a == 0   ? "Decision.send"
                : r.a == 1 ? "Decision.wait"
                           : "Decision.idle",
                "optimizer", 'i', usec_ts(r.time), r.node, tid_of(r));
        out += ",\"s\":\"t\"";
        w.args("frags", r.b, "bytes", r.c);
        w.end();
        break;
      case TraceEvent::PacketTx: {
        // A thin slice (so the flow arrow has something to bind to)...
        span(w, "PacketTx", "packet", r.time, r.time, r.node, tid_of(r));
        w.args("token", r.a, "bytes", r.b, "nfrags", r.c);
        w.end();
        // ...plus the flow start toward the peer's PacketRx.
        if (opts.flow_events) {
          auto it = pkt_rx.find({r.node, r.peer, r.rail, r.d});
          if (it != pkt_rx.end()) {
            char id[64];
            std::snprintf(id, sizeof id, "pkt:%u-%u:r%u:%llu", r.node,
                          r.peer, r.rail,
                          static_cast<unsigned long long>(r.d));
            w.begin("pkt", "flow", 's', usec_ts(r.time), r.node, tid_of(r));
            w.field_s("id", id);
            w.end();
          }
        }
        break;
      }
      case TraceEvent::PacketRx: {
        span(w, "PacketRx", "packet", r.time, r.time, r.node, tid_of(r));
        w.args("nfrags", r.a, "bytes", r.b);
        w.end();
        if (opts.flow_events) {
          // Only finish flows whose start exists in this trace, and only
          // from the record the rx index points at (dedup).
          auto it = pkt_rx.find({r.peer, r.node, r.rail, r.d});
          const bool have_tx =
              pkt_tx.count({r.peer, r.node, r.rail, r.d}) > 0;
          if (it != pkt_rx.end() && it->second == i && have_tx) {
            char id[64];
            std::snprintf(id, sizeof id, "pkt:%u-%u:r%u:%llu", r.peer,
                          r.node, r.rail,
                          static_cast<unsigned long long>(r.d));
            w.begin("pkt", "flow", 'f', usec_ts(r.time), r.node, tid_of(r));
            w.field_s("bp", "e");
            w.field_s("id", id);
            w.end();
          }
        }
        break;
      }
      case TraceEvent::BulkTx: {
        span(w, "BulkTx", "bulk", r.time, r.time, r.node, tid_of(r));
        w.args("token", r.a, "offset", r.b, "len", r.c, "stripe", r.d);
        w.end();
        if (opts.flow_events) {
          auto it = bulk_rx.find({r.node, r.peer, r.a, r.b});
          if (it != bulk_rx.end()) {
            char id[80];
            std::snprintf(id, sizeof id, "bulk:%u-%u:t%llu:o%llu", r.node,
                          r.peer, static_cast<unsigned long long>(r.a),
                          static_cast<unsigned long long>(r.b));
            w.begin("bulk", "flow", 's', usec_ts(r.time), r.node,
                    tid_of(r));
            w.field_s("id", id);
            w.end();
          }
        }
        break;
      }
      case TraceEvent::BulkRx: {
        span(w, "BulkRx", "bulk", r.time, r.time, r.node, tid_of(r));
        w.args("token", r.a, "offset", r.b, "len", r.c, "stripe", r.d);
        w.end();
        if (opts.flow_events) {
          auto it = bulk_rx.find({r.peer, r.node, r.a, r.b});
          const bool have_tx = bulk_tx.count({r.peer, r.node, r.a, r.b}) > 0;
          if (it != bulk_rx.end() && it->second == i && have_tx) {
            char id[80];
            std::snprintf(id, sizeof id, "bulk:%u-%u:t%llu:o%llu", r.peer,
                          r.node, static_cast<unsigned long long>(r.a),
                          static_cast<unsigned long long>(r.b));
            w.begin("bulk", "flow", 'f', usec_ts(r.time), r.node,
                    tid_of(r));
            w.field_s("bp", "e");
            w.field_s("id", id);
            w.end();
          }
        }
        break;
      }
      case TraceEvent::RdvRts:
        w.instant("RdvRts", r);
        break;
      case TraceEvent::RdvCts:
        w.instant("RdvCts", r);
        break;
      case TraceEvent::RdvDone:
        w.instant("RdvDone", r);
        break;
      case TraceEvent::NagleWait:
        w.instant("NagleWait", r);
        break;
      case TraceEvent::Rebalance:
        w.instant("Rebalance", r);
        break;
      case TraceEvent::RmaOp:
        w.instant(r.a == 0 ? "RmaPut" : "RmaGet", r);
        break;
      case TraceEvent::RailDown:
        w.instant("RailDown", r);
        break;
      case TraceEvent::BulkSteal:
        w.instant("BulkSteal", r);
        break;
      case TraceEvent::RelRetx: {
        w.instant("RelRetx", r);
        const std::tuple<NodeId, NodeId, RailId> key{r.node, r.peer,
                                                     r.rail};
        auto [it, fresh] = episodes.try_emplace(key);
        Episode& e = it->second;
        if (!fresh && r.time > e.last + opts.retx_episode_gap) {
          flush_episode(key, e);
          e = Episode{};
          e.start = r.time;
        } else if (fresh) {
          e.start = r.time;
        }
        e.last = r.time;
        ++e.count;
        break;
      }
    }
  }
  for (const auto& [key, e] : episodes)
    if (e.count > 0) flush_episode(key, e);

  // ---- rendezvous lifecycle spans -----------------------------------------
  for (const auto& [key, l] : rdv) {
    const NodeId node = key.first;
    const std::uint64_t token = key.second;
    const std::uint64_t tid =
        static_cast<std::uint64_t>(l.peer) * kTidBase + l.rail;
    if (l.has_rts && l.has_cts && l.cts >= l.rts) {
      span(w, "rdv.handshake", "rendezvous", l.rts, l.cts, node, tid);
      w.args("token", token, "total", l.total);
      w.end();
    }
    if (l.has_cts && l.has_done && l.done >= l.cts) {
      span(w, "rdv.transfer", "rendezvous", l.cts, l.done, node, tid);
      w.args("token", token, "total", l.total);
      w.end();
    }
    if (l.has_rts && !l.has_cts && l.has_done && l.done >= l.rts) {
      // Receiver side: RTS seen, bytes landed (the CTS it *sent* is not a
      // traced arrival on this node).
      span(w, "rdv.recv", "rendezvous", l.rts, l.done, node, tid);
      w.args("token", token, "total", l.total);
      w.end();
    }
  }

  w.end_doc();
  return out;
}

bool write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceRecord>& records,
                             const ChromeTraceOptions& opts) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  os << to_chrome_trace(records, opts);
  return static_cast<bool>(os);
}

}  // namespace mado::core
