#include "core/strategy.hpp"

#include "core/strategies.hpp"
#include "util/assert.hpp"

namespace mado::core {

StrategyRegistry& StrategyRegistry::instance() {
  static StrategyRegistry reg;
  return reg;
}

StrategyRegistry::StrategyRegistry() { register_builtin_strategies(*this); }

void StrategyRegistry::register_strategy(const std::string& name,
                                         Factory factory) {
  MADO_CHECK_MSG(!name.empty(), "strategy name must be non-empty");
  MADO_CHECK(factory != nullptr);
  std::lock_guard<std::mutex> lk(mu_);
  factories_[name] = std::move(factory);
}

bool StrategyRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  return factories_.count(name) != 0;
}

std::unique_ptr<Strategy> StrategyRegistry::create(
    const std::string& name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = factories_.find(name);
    MADO_CHECK_MSG(it != factories_.end(), "unknown strategy: " << name);
    factory = it->second;  // run outside the lock
  }
  auto s = factory();
  MADO_CHECK(s != nullptr);
  return s;
}

std::vector<std::string> StrategyRegistry::names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, _] : factories_) out.push_back(name);
  return out;
}

namespace strategy_detail {

std::size_t take_controls(TxBacklog& backlog, std::size_t budget,
                          FragList& out) {
  std::size_t used = 0;
  while (backlog.has_control()) {
    const std::size_t need =
        FragHeader::kWireSize + backlog.peek_control().len;
    if (!out.empty() && used + need > budget) break;
    used += need;
    out.push_back(backlog.pop_control());
  }
  return used;
}

Nanos packet_cost(const drv::Capabilities& caps, std::size_t payload_bytes,
                  std::size_t payload_segs, std::size_t header_bytes) {
  const sim::NicModel model(caps.cost);
  const std::size_t total = payload_bytes + header_bytes;
  const std::size_t segs = 1 + payload_segs;  // header block + payloads
  if (caps.gather_scatter && segs <= caps.max_gather_segments)
    return model.busy_time(total, segs);
  return model.copy_time(total) + model.busy_time(total, 1);
}

}  // namespace strategy_detail
}  // namespace mado::core
