#include "core/strategy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/packet.hpp"
#include "core/strategies.hpp"
#include "util/assert.hpp"

namespace mado::core {

StrategyRegistry& StrategyRegistry::instance() {
  static StrategyRegistry reg;
  return reg;
}

StrategyRegistry::StrategyRegistry() { register_builtin_strategies(*this); }

void StrategyRegistry::register_strategy(const std::string& name,
                                         Factory factory) {
  MADO_CHECK_MSG(!name.empty(), "strategy name must be non-empty");
  MADO_CHECK(factory != nullptr);
  std::lock_guard<std::mutex> lk(mu_);
  factories_[name] = std::move(factory);
}

bool StrategyRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  return factories_.count(name) != 0;
}

std::unique_ptr<Strategy> StrategyRegistry::create(
    const std::string& name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = factories_.find(name);
    MADO_CHECK_MSG(it != factories_.end(), "unknown strategy: " << name);
    factory = it->second;  // run outside the lock
  }
  auto s = factory();
  MADO_CHECK(s != nullptr);
  return s;
}

std::vector<std::string> StrategyRegistry::names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, _] : factories_) out.push_back(name);
  return out;
}

namespace strategy_detail {

std::size_t take_controls(TxBacklog& backlog, std::size_t budget,
                          FragList& out) {
  std::size_t used = 0;
  while (backlog.has_control()) {
    const std::size_t need =
        FragHeader::kWireSize + backlog.peek_control().len;
    if (!out.empty() && used + need > budget) break;
    used += need;
    out.push_back(backlog.pop_control());
  }
  return used;
}

Nanos packet_cost(const drv::Capabilities& caps, std::size_t payload_bytes,
                  std::size_t payload_segs, std::size_t header_bytes) {
  const sim::NicModel model(caps.cost);
  const std::size_t total = payload_bytes + header_bytes;
  const std::size_t segs = 1 + payload_segs;  // header block + payloads
  if (caps.gather_scatter && segs <= caps.max_gather_segments)
    return model.busy_time(total, segs);
  return model.copy_time(total) + model.busy_time(total, 1);
}

// ---- stripe hook -----------------------------------------------------------

double stripe_rail_rate(const drv::Capabilities& caps, std::size_t chunk) {
  if (chunk == 0) chunk = 1;
  const sim::NicModel model(caps.cost);
  const std::size_t wire_bytes = chunk + BulkHeader::kWireSize;
  // Injection setup per chunk (header block + one data segment). uses_pio /
  // dma_overhead come straight from the NicModelParams so a PIO-heavy NIC
  // is charged its per-byte host cost on small chunks.
  const Nanos inject = model.injection_time(wire_bytes, 2);
  // Wire occupancy at the *effective* bandwidth: the per-rail hint wins
  // over the profile's nominal link rate when set.
  const double bw = caps.effective_bandwidth();  // bytes/us
  const auto wire = static_cast<Nanos>(
      static_cast<double>(wire_bytes) * 1000.0 / std::max(bw, 1e-9));
  const Nanos per_chunk = std::max(inject, wire) + model.gap();
  return static_cast<double>(chunk) /
         static_cast<double>(std::max<Nanos>(per_chunk, 1));
}

double stripe_shares(const std::vector<StripeRail>& rails,
                     std::uint64_t total, std::size_t chunk,
                     std::size_t min_chunk,
                     std::vector<std::uint64_t>& shares) {
  shares.assign(rails.size(), 0);
  if (total == 0) return 0.0;

  struct Cand {
    std::size_t idx;
    double rate;        // bytes/ns
    double drain_time;  // ns until the existing backlog clears
  };
  std::vector<Cand> cands;
  cands.reserve(rails.size());
  for (std::size_t i = 0; i < rails.size(); ++i) {
    if (!rails[i].up || rails[i].caps == nullptr) continue;
    const double rate = stripe_rail_rate(*rails[i].caps, chunk);
    if (rate <= 0.0) continue;
    cands.push_back(
        {i, rate, static_cast<double>(rails[i].backlog_bytes) / rate});
  }
  if (cands.empty()) return 0.0;

  // Water-filling: find the common finish time T with
  //   sum_i max(0, (T - drain_i) * rate_i) == total.
  // Process rails in drain-time order; a rail whose backlog already reaches
  // past T is excluded (it would finish late even with zero new bytes).
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) {
              return a.drain_time < b.drain_time;
            });
  double rate_sum = 0.0, weighted = 0.0;
  double finish = std::numeric_limits<double>::infinity();
  std::size_t active = 0;
  for (std::size_t k = 0; k < cands.size(); ++k) {
    rate_sum += cands[k].rate;
    weighted += cands[k].drain_time * cands[k].rate;
    const double t = (static_cast<double>(total) + weighted) / rate_sum;
    // Valid iff every rail past k would start later than t finishes.
    if (k + 1 < cands.size() && cands[k + 1].drain_time < t) continue;
    finish = t;
    active = k + 1;
    break;
  }
  MADO_ASSERT(active > 0);

  // Integer shares, fastest rail absorbs the rounding remainder and any
  // below-min_chunk crumbs (no rail should join the stripe for a pittance).
  std::size_t fastest = cands[0].idx;
  double fastest_rate = cands[0].rate;
  for (std::size_t k = 1; k < active; ++k)
    if (cands[k].rate > fastest_rate) {
      fastest_rate = cands[k].rate;
      fastest = cands[k].idx;
    }
  std::uint64_t assigned = 0;
  for (std::size_t k = 0; k < active; ++k) {
    const double raw = (finish - cands[k].drain_time) * cands[k].rate;
    auto share = static_cast<std::uint64_t>(std::max(raw, 0.0));
    share = std::min<std::uint64_t>(share, total - assigned);
    if (share < min_chunk && cands[k].idx != fastest) share = 0;
    shares[cands[k].idx] = share;
    assigned += share;
  }
  shares[fastest] += total - assigned;
  if (shares[fastest] != 0 && shares[fastest] < min_chunk &&
      cands.size() > 1) {
    // The remainder landed on the fastest rail as a crumb while another
    // rail carries real volume: merge it there instead of paying a chunk.
    std::size_t biggest = fastest;
    for (std::size_t k = 0; k < active; ++k)
      if (shares[cands[k].idx] > shares[biggest]) biggest = cands[k].idx;
    if (biggest != fastest) {
      shares[biggest] += shares[fastest];
      shares[fastest] = 0;
    }
  }

  // Predicted completion-time spread after rounding, in percent.
  double lo = std::numeric_limits<double>::infinity(), hi = 0.0;
  std::size_t carriers = 0;
  for (const Cand& c : cands) {
    if (shares[c.idx] == 0) continue;
    ++carriers;
    const double t =
        c.drain_time + static_cast<double>(shares[c.idx]) / c.rate;
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  if (carriers < 2 || hi <= 0.0) return 0.0;
  return (hi - lo) / hi * 100.0;
}

// ---- rate pricing ----------------------------------------------------------

Nanos chunked_span(const drv::Capabilities& caps, std::uint64_t bytes,
                   std::size_t chunk) {
  if (bytes == 0) return 0;
  if (chunk == 0 || chunk > bytes)
    chunk = static_cast<std::size_t>(bytes);
  const std::uint64_t full = bytes / chunk;
  const std::uint64_t tail = bytes % chunk;
  double span = 0.0;
  if (full > 0) {
    const double rate = stripe_rail_rate(caps, chunk);  // bytes/ns
    span += static_cast<double>(full) * static_cast<double>(chunk) /
            std::max(rate, 1e-12);
  }
  if (tail > 0) {
    const double rate =
        stripe_rail_rate(caps, static_cast<std::size_t>(tail));
    span += static_cast<double>(tail) / std::max(rate, 1e-12);
  }
  return static_cast<Nanos>(span);
}

Nanos striped_span(const std::vector<StripeRail>& rails, std::uint64_t bytes,
                   std::size_t chunk, std::size_t min_chunk) {
  if (bytes == 0) return 0;
  std::vector<std::uint64_t> shares;
  stripe_shares(rails, bytes, chunk, min_chunk, shares);
  double worst = 0.0;
  std::uint64_t carried = 0;
  for (std::size_t i = 0; i < rails.size(); ++i) {
    if (shares[i] == 0) continue;
    carried += shares[i];
    const double rate = stripe_rail_rate(*rails[i].caps, chunk);
    const double t = (static_cast<double>(rails[i].backlog_bytes) +
                      static_cast<double>(shares[i])) /
                     std::max(rate, 1e-12);
    worst = std::max(worst, t);
  }
  if (carried == 0) return 0;
  return static_cast<Nanos>(worst);
}

std::size_t pipeline_chunk(const drv::Capabilities& caps, std::uint64_t bytes,
                           std::size_t depth, std::size_t min_chunk) {
  min_chunk = std::max<std::size_t>(min_chunk, 1);
  if (depth <= 1 || bytes <= min_chunk)
    return static_cast<std::size_t>(std::max<std::uint64_t>(bytes, 1));
  auto cost = [&](std::size_t c) {
    const auto units = (bytes + c - 1) / c;
    const double rate = stripe_rail_rate(caps, c);
    const double per = static_cast<double>(c) / std::max(rate, 1e-12);
    return (static_cast<double>(depth - 1) + static_cast<double>(units)) *
           per;
  };
  auto best = static_cast<std::size_t>(bytes);
  double best_cost = cost(best);
  for (std::size_t c = min_chunk; c < bytes; c *= 2) {
    const double t = cost(c);
    if (t < best_cost) {
      best_cost = t;
      best = c;
    }
    if (c > (std::numeric_limits<std::size_t>::max() / 2)) break;
  }
  return best;
}

}  // namespace strategy_detail
}  // namespace mado::core
