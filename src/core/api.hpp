// Public user-facing handles: SendHandle, Channel, IncomingMessage.
//
// Quickstart shape (see examples/quickstart.cpp):
//
//   Channel ch = engine.open_channel(peer, /*id=*/7, TrafficClass::SmallEager);
//   Message m;
//   m.pack(&hdr, sizeof hdr, SendMode::Safe);     // header fragment
//   m.pack(body.data(), body.size());             // payload fragment
//   SendHandle h = ch.post(std::move(m));         // enqueue; returns at once
//   ...compute...
//   engine.wait_send(h);
//
//   IncomingMessage im = ch.begin_recv();
//   im.unpack(&hdr, sizeof hdr, RecvMode::Express);   // blocks for header
//   im.unpack(body.data(), body.size(), RecvMode::Cheaper);
//   im.finish();                                      // blocks for the rest
#pragma once

#include <cstddef>

#include "core/backlog.hpp"
#include "core/message.hpp"
#include "core/types.hpp"

namespace mado::core {

class Engine;

/// Completion handle for one posted message (all of its fragments).
class SendHandle {
 public:
  SendHandle() = default;
  bool valid() const { return state_ != nullptr; }

 private:
  friend class Engine;
  explicit SendHandle(SendStateRef state) : state_(std::move(state)) {}
  SendStateRef state_;
};

/// Incremental receive handle for one incoming structured message.
/// unpack() consumes fragments in pack order; finish() completes the
/// message and checks that every fragment was consumed.
class IncomingMessage {
 public:
  /// Receive the next fragment into `buf` (which must be exactly the
  /// packed fragment's size — checked). Express blocks until the data is
  /// here; Cheaper registers the buffer and defers to finish().
  void unpack(void* buf, std::size_t len, RecvMode mode = RecvMode::Express);

  /// Size of the next fragment, blocking until it is known (the fragment
  /// header has arrived — for rendezvous fragments this is the RTS, so it
  /// does NOT wait for the bulk data). Lets receivers consume messages
  /// whose fragment sizes are not agreed upon out of band.
  std::size_t next_size();

  /// Convenience: next_size() + allocate + express unpack.
  Bytes unpack_bytes();

  /// Block until the whole message (including Cheaper fragments) is
  /// delivered, then release the message. Throws CheckError if the
  /// application unpacked fewer fragments than the sender packed.
  void finish();

  /// Non-blocking: true once every fragment (including Cheaper-registered
  /// ones) has been fully delivered, i.e. finish() would not wait. Lets
  /// cooperative state machines overlap in-flight receives instead of
  /// blocking inside finish() one at a time.
  bool ready() const;

  FragIdx fragments_unpacked() const { return next_; }
  MsgSeq sequence() const { return seq_; }

 private:
  friend class Channel;
  IncomingMessage(Engine* eng, NodeId peer, ChannelId ch, MsgSeq seq)
      : eng_(eng), peer_(peer), ch_(ch), seq_(seq) {}
  Engine* eng_ = nullptr;
  NodeId peer_ = 0;
  ChannelId ch_ = 0;
  MsgSeq seq_ = 0;
  FragIdx next_ = 0;
  bool finished_ = false;
};

/// A logical communication flow to one peer. Channels are the flows the
/// optimizer mixes: each middleware (or application stream) opens its own.
/// Both sides must open the same channel id. Lightweight, copyable.
class Channel {
 public:
  Channel() = default;

  /// Enqueue a message into the collect layer and return immediately.
  SendHandle post(Message msg);

  /// Attach to the next incoming message on this channel (non-blocking;
  /// data may arrive later — unpack()/finish() wait as needed).
  IncomingMessage begin_recv();

  /// Block until every message posted on this channel has completed.
  void flush();

  /// True if the next incoming message on this channel has (at least
  /// partially) arrived — i.e. begin_recv()+unpack would not block long.
  bool probe() const;

  ChannelId id() const { return id_; }
  NodeId peer() const { return peer_; }
  TrafficClass traffic_class() const { return cls_; }
  bool valid() const { return eng_ != nullptr; }

 private:
  friend class Engine;
  Channel(Engine* eng, NodeId peer, ChannelId id, TrafficClass cls,
          void* peer_cache)
      : eng_(eng), peer_(peer), id_(id), cls_(cls), peer_cache_(peer_cache) {}
  Engine* eng_ = nullptr;
  NodeId peer_ = 0;
  ChannelId id_ = 0;
  TrafficClass cls_ = TrafficClass::SmallEager;
  /// Peer shard resolved once at open_channel (opaque: the shard type is
  /// private to Engine). post() hands it back so the submit fast path never
  /// touches the peer map.
  void* peer_cache_ = nullptr;
};

}  // namespace mado::core
