#include "core/strategies.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/assert.hpp"

namespace mado::core {
namespace {

using strategy_detail::packet_cost;
using strategy_detail::take_controls;

/// Wire footprint of a fragment inside an eager packet.
std::size_t frag_footprint(const TxFrag& f) {
  return FragHeader::kWireSize + f.len;
}

/// Whether adding `f` keeps the packet within the eager budget. The first
/// fragment is always admissible so oversized-but-still-eager fragments
/// (between max_eager and the rendezvous threshold) can leave as
/// single-fragment packets.
bool fits(std::size_t used, std::size_t count, std::size_t budget,
          const TxFrag& f) {
  if (count == 0) return true;
  return used + frag_footprint(f) <= budget;
}

/// A planned packet: per-flow take counts in scan order. Inline capacity
/// matches the default lookahead window so planning allocates nothing on
/// the steady-state decision path.
struct Plan {
  mado::SmallVector<std::pair<ChannelId, std::size_t>, 16> takes;
  std::size_t bytes = 0;  // payload + frag header footprint
  std::size_t count = 0;  // data fragments
};

/// Greedy fill: scan flows oldest-head-first, take head fragments while
/// they fit and the lookahead window is not exhausted.
Plan plan_greedy(const TxBacklog& backlog, const StrategyEnv& env,
                 std::size_t used_already, std::size_t count_already) {
  Plan plan;
  std::size_t used = used_already;
  std::size_t count = count_already;
  const std::size_t window = env.lookahead_window;
  for (ChannelId ch : backlog.flow_index()) {
    // One hash lookup per flow; the scan then walks the deque directly.
    const auto& q = backlog.flow(ch);
    std::size_t take = 0;
    while (take < q.size()) {
      if (window != 0 && count >= window) break;
      const TxFrag& f = q[take];
      if (!fits(used, count, env.caps.max_eager, f)) break;
      used += frag_footprint(f);
      ++count;
      ++take;
    }
    if (take > 0) {
      plan.takes.emplace_back(ch, take);
      if (window != 0 && count >= window) break;
    }
    // A flow whose head does not fit leaves room checks to later flows:
    // smaller heads elsewhere may still fit (cross-flow freedom).
  }
  plan.bytes = used - used_already;
  plan.count = count - count_already;
  return plan;
}

void pop_plan(TxBacklog& backlog, const Plan& plan, FragList& out) {
  for (const auto& [ch, take] : plan.takes) backlog.pop_n(ch, take, out);
}

// NOTE: strategies fill `PacketDecision::frags` in place rather than
// building a local list and moving it in. FragList's inline storage makes
// a container move element-wise, so each avoided hand-off saves a full
// pass of TxFrag moves on the decision path.

// --------------------------------------------------------------------------
// fifo: previous-Madeleine baseline. Deterministic: strictly follows global
// submit order; aggregates only consecutive fragments of the same message.
// --------------------------------------------------------------------------
class FifoStrategy final : public Strategy {
 public:
  std::string name() const override { return "fifo"; }

  PacketDecision next_packet(TxBacklog& backlog,
                             const StrategyEnv& env) override {
    PacketDecision d;
    std::size_t used = take_controls(backlog, env.caps.max_eager, d.frags);
    if (!d.frags.empty()) {
      d.action = PacketDecision::Action::Send;
      return d;
    }
    if (backlog.empty()) return d;

    const ChannelId ch = backlog.oldest_flow();  // globally oldest head
    const auto& q = backlog.flow(ch);
    const MsgSeq msg = q.front().msg_seq;
    std::size_t take = 0;
    while (take < q.size()) {
      const TxFrag& head = q[take];
      if (head.msg_seq != msg) break;  // never aggregates across messages
      if (!fits(used, take, env.caps.max_eager, head)) break;
      used += frag_footprint(head);
      ++take;
    }
    backlog.pop_n(ch, take, d.frags);
    d.action = PacketDecision::Action::Send;
    return d;
  }
};

// --------------------------------------------------------------------------
// aggreg: greedy cross-flow aggregation.
// --------------------------------------------------------------------------
class AggregStrategy final : public Strategy {
 public:
  std::string name() const override { return "aggreg"; }

  PacketDecision next_packet(TxBacklog& backlog,
                             const StrategyEnv& env) override {
    PacketDecision d;
    const std::size_t used =
        take_controls(backlog, env.caps.max_eager, d.frags);
    const Plan plan = plan_greedy(backlog, env, used, 0);
    pop_plan(backlog, plan, d.frags);
    if (d.frags.empty()) return d;
    if (env.stats && plan.count > 1) env.stats->inc("opt.aggregated_packets");
    d.action = PacketDecision::Action::Send;
    return d;
  }
};

// --------------------------------------------------------------------------
// aggreg_exhaustive: bounded search over candidate packings.
//
// Candidates are per-flow prefix take counts (t_1..t_m), honoring byte
// budget and lookahead window. Each candidate is scored by an average-
// fragment-completion model: the candidate packet goes first, then the
// remaining visible fragments drain as greedy per-flow packets. Aggregating
// many small fragments wins (one transaction instead of k); aggregating
// large fragments loses (a later fragment's data is delayed behind bytes it
// does not need — the "pipeline effect" of paper §1). The search evaluates
// at most env.eval_budget candidates — the paper's future work #2.
// --------------------------------------------------------------------------
class AggregExhaustiveStrategy final : public Strategy {
 public:
  std::string name() const override { return "aggreg_exhaustive"; }

  PacketDecision next_packet(TxBacklog& backlog,
                             const StrategyEnv& env) override {
    PacketDecision d;
    const std::size_t ctrl_used =
        take_controls(backlog, env.caps.max_eager, d.frags);
    if (backlog.empty()) {
      if (!d.frags.empty()) d.action = PacketDecision::Action::Send;
      return d;
    }

    // Visible window: per-flow depth caps so the total number of visible
    // fragments is at most the lookahead window, oldest first. Scratch is
    // inline (SmallVector) so the search allocates nothing for realistic
    // flow counts.
    TxBacklog::FlowList flows;
    FlowQueues flowq;
    for (ChannelId ch : backlog.flow_index()) {
      flows.push_back(ch);
      flowq.push_back(&backlog.flow(ch));  // one hash lookup per flow
    }
    CountList max_take;
    max_take.resize(flows.size());
    {
      std::size_t visible = 0;
      const std::size_t window = env.lookahead_window == 0
                                     ? std::numeric_limits<std::size_t>::max()
                                     : env.lookahead_window;
      for (std::size_t i = 0; i < flows.size() && visible < window; ++i) {
        const std::size_t depth = flowq[i]->size();
        max_take[i] = std::min(depth, window - visible);
        visible += max_take[i];
      }
    }

    Search search{env, flowq, max_take, ctrl_used, {}, {}};
    search.run();
    if (env.stats) env.stats->inc("opt.evals", search.evals);

    if (search.best_total == 0) {
      // Nothing fit beside the controls (or budget 0): fall back to the
      // oldest head so the engine always makes progress.
      if (d.frags.empty()) d.frags.push_back(backlog.pop(flows.front()));
      d.action = PacketDecision::Action::Send;
      return d;
    }
    for (std::size_t i = 0; i < flows.size(); ++i)
      backlog.pop_n(flows[i], search.best[i], d.frags);
    d.action = PacketDecision::Action::Send;
    return d;
  }

 private:
  using CountList = mado::SmallVector<std::size_t, 16>;
  /// Cached per-flow queue views: the search inspects every visible
  /// fragment many times, so it must not pay a hash lookup per peek.
  using FlowQueues = mado::SmallVector<const std::deque<TxFrag>*, 16>;

  struct Search {
    const StrategyEnv& env;
    const FlowQueues& flowq;
    const CountList& max_take;
    std::size_t ctrl_used;

    CountList cur, best;
    std::size_t evals = 0;
    double best_score = std::numeric_limits<double>::infinity();
    std::size_t best_total = 0;

    void run() {
      cur.clear();
      cur.resize(flowq.size());
      best.clear();
      best.resize(flowq.size());
      dfs(0, ctrl_used, 0);
    }

    bool budget_left() const {
      return env.eval_budget == 0 || evals < env.eval_budget;
    }

    /// Enumerate take counts flow by flow, trying the largest take first so
    /// the greedy-like candidates are scored before the evaluation budget
    /// runs out.
    void dfs(std::size_t i, std::size_t used, std::size_t count) {
      if (!budget_left()) return;
      if (i == flowq.size()) {
        if (count == 0) return;  // progress guarantee: at least one fragment
        evaluate(used, count);
        return;
      }
      const std::deque<TxFrag>& q = *flowq[i];
      // Largest admissible take for this flow given bytes already used.
      std::size_t admissible = 0;
      std::size_t u = used;
      while (admissible < max_take[i]) {
        const TxFrag& f = q[admissible];
        if (!fits(u, count + admissible, env.caps.max_eager, f)) break;
        u += frag_footprint(f);
        ++admissible;
      }
      for (std::size_t take = admissible + 1; take-- > 0 && budget_left();) {
        cur[i] = take;
        std::size_t bytes = used;
        for (std::size_t k = 0; k < take; ++k)
          bytes += frag_footprint(q[k]);
        dfs(i + 1, bytes, count + take);
      }
      cur[i] = 0;
    }

    void evaluate(std::size_t used, std::size_t count) {
      ++evals;
      // Completion model: this packet finishes at t1; every fragment in it
      // completes then. The remaining visible fragments drain afterwards as
      // one greedy packet per flow (per-flow prefixes stay intact).
      const Nanos t1 = packet_cost(env.caps, used, count + ctrl_frag_count(),
                                   PacketHeader::kWireSize);
      double score = static_cast<double>(t1) * static_cast<double>(count);
      Nanos t = t1;
      for (std::size_t i = 0; i < flowq.size(); ++i) {
        const std::deque<TxFrag>& q = *flowq[i];
        std::size_t rem = max_take[i] - cur[i];
        std::size_t off = cur[i];
        while (rem > 0) {
          std::size_t bytes = 0, n = 0;
          while (n < rem) {
            const TxFrag& f = q[off + n];
            if (!fits(bytes, n, env.caps.max_eager, f)) break;
            bytes += frag_footprint(f);
            ++n;
          }
          t += packet_cost(env.caps, bytes, n, PacketHeader::kWireSize);
          score += static_cast<double>(t) * static_cast<double>(n);
          rem -= n;
          off += n;
        }
      }
      if (score < best_score ||
          (score == best_score && count > best_total)) {
        best_score = score;
        best = cur;
        best_total = count;
      }
    }

    std::size_t ctrl_frag_count() const {
      return ctrl_used == 0 ? 0 : 1;  // header-footprint already in ctrl_used
    }
  };
};

// --------------------------------------------------------------------------
// nagle: greedy aggregation, but a sparse backlog is artificially delayed —
// up to env.nagle_delay past the oldest fragment's submission — in the hope
// that more fragments arrive to aggregate (paper §3).
// --------------------------------------------------------------------------
class NagleStrategy final : public Strategy {
 public:
  std::string name() const override { return "nagle"; }

  PacketDecision next_packet(TxBacklog& backlog,
                             const StrategyEnv& env) override {
    // Control fragments are latency-critical (rendezvous handshakes):
    // their presence flushes immediately.
    if (backlog.has_control() || env.nagle_delay == 0)
      return aggreg_.next_packet(backlog, env);
    if (backlog.empty()) return {};

    const Plan plan = plan_greedy(backlog, env, 0, 0);
    const bool window_full =
        env.lookahead_window != 0 && plan.count >= env.lookahead_window;
    const bool packet_full = plan.bytes * 2 >= env.caps.max_eager;
    const Nanos oldest = backlog.oldest_submit_time();
    const Nanos deadline = oldest + env.nagle_delay;
    if (window_full || packet_full || env.now >= deadline) {
      PacketDecision d;
      pop_plan(backlog, plan, d.frags);
      if (!d.frags.empty()) d.action = PacketDecision::Action::Send;
      return d;
    }
    PacketDecision d;
    d.action = PacketDecision::Action::Wait;
    d.wait_until = deadline;
    if (env.stats) env.stats->inc("opt.nagle_waits");
    return d;
  }

 private:
  AggregStrategy aggreg_;
};

// --------------------------------------------------------------------------
// priority: class-aware aggregation. Like aggreg, but flow heads are
// scanned in (traffic class, age) order — Control before SmallEager before
// PutGet before Bulk — so latency-critical fragments overtake bulk
// fragments queued earlier on the SAME rail. This is the paper's traffic-
// class idea applied within one multiplexing unit, complementing the
// class→rail assignment that separates them across units.
// --------------------------------------------------------------------------
class PriorityStrategy final : public Strategy {
 public:
  std::string name() const override { return "priority"; }

  PacketDecision next_packet(TxBacklog& backlog,
                             const StrategyEnv& env) override {
    PacketDecision d;
    std::size_t used = take_controls(backlog, env.caps.max_eager, d.frags);
    std::size_t count = 0;
    const std::size_t window = env.lookahead_window;

    // Flow index is already oldest-head-first; sort into (class, age) order
    // with a precomputed composite key: one head lookup per flow instead of
    // one per comparison. std::sort on the composite key is equivalent to
    // the former stable_sort-by-class (head submit order breaks ties
    // deterministically) but performs no heap allocation — stable_sort may
    // allocate a temporary buffer.
    struct Key {
      int cls;
      std::uint64_t order;
      ChannelId ch;
    };
    mado::SmallVector<Key, 16> keys;
    for (ChannelId ch : backlog.flow_index()) {
      const TxFrag& head = backlog.flow(ch).front();
      keys.push_back(Key{class_order(head.cls), head.order, ch});
    }
    std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
      return a.cls != b.cls ? a.cls < b.cls : a.order < b.order;
    });
    for (const Key& key : keys) {
      const ChannelId ch = key.ch;
      const auto& q = backlog.flow(ch);
      std::size_t take = 0;
      while (take < q.size()) {
        if (window != 0 && count >= window) break;
        const TxFrag& head = q[take];
        const std::size_t need = FragHeader::kWireSize + head.len;
        if (count > 0 && used + need > env.caps.max_eager) break;
        used += need;
        ++count;
        ++take;
      }
      backlog.pop_n(ch, take, d.frags);
      if (window != 0 && count >= window) break;
    }
    if (!d.frags.empty()) d.action = PacketDecision::Action::Send;
    return d;
  }

 private:
  static int class_order(TrafficClass cls) {
    switch (cls) {
      case TrafficClass::Control: return 0;
      case TrafficClass::SmallEager: return 1;
      case TrafficClass::PutGet: return 2;
      case TrafficClass::Bulk: return 3;
    }
    return 4;
  }
};

// --------------------------------------------------------------------------
// adaptive: dynamic policy selection. An EWMA of the observed fragment
// inter-arrival gap decides whether holding a lone fragment is worth it:
// the Nagle-style delay "increases the potential of interesting
// aggregations" (paper §3) only if a companion fragment is likely to arrive
// *within* the hold window. So:
//   gap << hold  → hold lone fragments (a companion is coming; trade a
//                  little latency for one transaction instead of two);
//   gap >> hold  → send immediately (nothing will come; a static nagle
//                  strategy would pay the full delay for no aggregation);
//   backlog > 1  → aggregate immediately (no need to wait).
// This self-tunes the policy as the application's traffic evolves —
// paper §2's "selecting different policies, as the needs of the
// application evolve".
// --------------------------------------------------------------------------
class AdaptiveStrategy final : public Strategy {
 public:
  std::string name() const override { return "adaptive"; }

  PacketDecision next_packet(TxBacklog& backlog,
                             const StrategyEnv& env) override {
    observe(backlog, env);
    if (backlog.has_control()) return aggreg_.next_packet(backlog, env);
    if (backlog.empty()) return {};

    const Nanos hold = hold_window(env);
    // O(1) oldest-flow lookup: with exactly one data fragment queued, the
    // oldest flow IS the flow holding it (the old active_flows().front()
    // rebuilt and heap-allocated the whole flow list just to find it).
    if (companion_likely_ && backlog.frag_count() == 1 &&
        backlog.peek(backlog.oldest_flow()).len * 4 < env.caps.max_eager) {
      const Nanos deadline = backlog.oldest_submit_time() + hold;
      if (env.now < deadline) {
        PacketDecision d;
        d.action = PacketDecision::Action::Wait;
        d.wait_until = deadline;
        if (env.stats) env.stats->inc("opt.adaptive_holds");
        return d;
      }
    }
    return aggreg_.next_packet(backlog, env);
  }

 private:
  static Nanos hold_window(const StrategyEnv& env) {
    return env.nagle_delay != 0 ? env.nagle_delay : usec(2);
  }

  void observe(const TxBacklog& backlog, const StrategyEnv& env) {
    // Gap sample: elapsed time since the previous decision over the
    // fragments now visible (plus the one that triggered that decision).
    if (last_now_ != 0 && env.now > last_now_) {
      const double dt = static_cast<double>(env.now - last_now_);
      const double arrivals =
          static_cast<double>(backlog.frag_count()) + 1.0;
      const double gap = dt / arrivals;
      mean_gap_ = mean_gap_ == 0 ? gap : 0.8 * mean_gap_ + 0.2 * gap;
      companion_likely_ =
          mean_gap_ < static_cast<double>(hold_window(env));
    }
    last_now_ = env.now;
  }

  AggregStrategy aggreg_;
  Nanos last_now_ = 0;
  double mean_gap_ = 0;
  bool companion_likely_ = false;
};

}  // namespace

std::unique_ptr<Strategy> make_fifo_strategy() {
  return std::make_unique<FifoStrategy>();
}
std::unique_ptr<Strategy> make_aggreg_strategy() {
  return std::make_unique<AggregStrategy>();
}
std::unique_ptr<Strategy> make_aggreg_exhaustive_strategy() {
  return std::make_unique<AggregExhaustiveStrategy>();
}
std::unique_ptr<Strategy> make_nagle_strategy() {
  return std::make_unique<NagleStrategy>();
}
std::unique_ptr<Strategy> make_adaptive_strategy() {
  return std::make_unique<AdaptiveStrategy>();
}
std::unique_ptr<Strategy> make_priority_strategy() {
  return std::make_unique<PriorityStrategy>();
}

void register_builtin_strategies(StrategyRegistry& reg) {
  reg.register_strategy("fifo", make_fifo_strategy);
  reg.register_strategy("aggreg", make_aggreg_strategy);
  reg.register_strategy("aggreg_exhaustive", make_aggreg_exhaustive_strategy);
  reg.register_strategy("nagle", make_nagle_strategy);
  reg.register_strategy("adaptive", make_adaptive_strategy);
  reg.register_strategy("priority", make_priority_strategy);
}

}  // namespace mado::core
