#include "core/world.hpp"

#include <cstdlib>

#include "drivers/shm_driver.hpp"
#include "drivers/sim_driver.hpp"
#include "drivers/socket_driver.hpp"
#include "util/assert.hpp"

namespace mado::core {

namespace {
/// MADO_PROGRESS_THREADS=N re-runs the whole threaded-world test matrix
/// (socket/shm suites, lossy, stripe) under N progress threads without
/// recompiling — CI's TSan job uses 4. Applies only to the worlds that
/// start progress threads; SimWorld is cooperative and has none.
EngineConfig threaded_config(EngineConfig cfg) {
  if (const char* env = std::getenv("MADO_PROGRESS_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) cfg.progress_threads = static_cast<std::size_t>(n);
  }
  return cfg;
}
}  // namespace

SimWorld::SimWorld(std::size_t nodes, const EngineConfig& cfg)
    : SimWorld(std::vector<EngineConfig>(nodes, cfg)) {}

SimWorld::SimWorld(const std::vector<EngineConfig>& configs)
    : timers_(fabric_) {
  MADO_CHECK_MSG(!configs.empty(), "world needs at least one node");
  engines_.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    engines_.push_back(std::make_unique<Engine>(static_cast<NodeId>(i),
                                                configs[i], timers_));
    engines_.back()->set_external_progress([this] { return fabric_.step(); });
  }
}

RailId SimWorld::connect(NodeId a, NodeId b, const drv::Capabilities& caps) {
  return connect(a, b, caps, caps);
}

RailId SimWorld::connect(NodeId a, NodeId b, const drv::Capabilities& caps_a,
                         const drv::Capabilities& caps_b) {
  MADO_CHECK(a != b && a < engines_.size() && b < engines_.size());
  auto pair = drv::SimEndpoint::make_pair(fabric_, caps_a, caps_b);
  drv::SimEndpoint* side_a = pair.a.get();
  drv::SimEndpoint* side_b = pair.b.get();
  const RailId ra = engines_[a]->add_rail(b, std::move(pair.a));
  const RailId rb = engines_[b]->add_rail(a, std::move(pair.b));
  MADO_CHECK_MSG(ra == rb, "asymmetric rail counts between nodes");
  endpoints_[{a, b, ra}] = side_a;
  endpoints_[{b, a, rb}] = side_b;
  return ra;
}

RailId SimWorld::connect(NodeId a, NodeId b, const drv::Capabilities& caps,
                         const drv::FaultPlan& plan_ab,
                         const drv::FaultPlan& plan_ba) {
  const RailId rail = connect(a, b, caps, caps);
  endpoint(a, b, rail).set_fault_plan(plan_ab);
  endpoint(b, a, rail).set_fault_plan(plan_ba);
  return rail;
}

drv::SimEndpoint& SimWorld::endpoint(NodeId a, NodeId b, RailId rail) {
  auto it = endpoints_.find({a, b, rail});
  MADO_CHECK_MSG(it != endpoints_.end(),
                 "no sim rail " << int(rail) << " between " << a << " and "
                                << b);
  return *it->second;
}

SocketWorld::SocketWorld(const EngineConfig& cfg,
                         const drv::Capabilities& caps, std::size_t rails) {
  const EngineConfig tcfg = threaded_config(cfg);
  for (NodeId i = 0; i < 2; ++i) {
    timers_.push_back(std::make_unique<RealTimerHost>());
    engines_.push_back(std::make_unique<Engine>(i, tcfg, *timers_.back()));
  }
  for (std::size_t r = 0; r < rails; ++r) {
    auto pair = drv::SocketEndpoint::make_pair(caps);
    engines_[0]->add_rail(1, std::move(pair.a));
    engines_[1]->add_rail(0, std::move(pair.b));
  }
  engines_[0]->start_progress_thread();
  engines_[1]->start_progress_thread();
}

SocketWorld::~SocketWorld() {
  engines_[0]->stop_progress_thread();
  engines_[1]->stop_progress_thread();
}

ShmWorld::ShmWorld(const EngineConfig& cfg, std::size_t rails) {
  const EngineConfig tcfg = threaded_config(cfg);
  for (NodeId i = 0; i < 2; ++i) {
    timers_.push_back(std::make_unique<RealTimerHost>());
    engines_.push_back(std::make_unique<Engine>(i, tcfg, *timers_.back()));
  }
  for (std::size_t r = 0; r < rails; ++r) {
    auto pair = drv::ShmEndpoint::make_pair();
    engines_[0]->add_rail(1, std::move(pair.a));
    engines_[1]->add_rail(0, std::move(pair.b));
  }
  engines_[0]->start_progress_thread();
  engines_[1]->start_progress_thread();
}

ShmWorld::~ShmWorld() {
  engines_[0]->stop_progress_thread();
  engines_[1]->stop_progress_thread();
}

UdpWorld::UdpWorld(const EngineConfig& cfg, std::size_t rails,
                   const drv::UdpConfig& ucfg) {
  EngineConfig tcfg = threaded_config(cfg);
  // UDP rails are lossy: the engine's reliability layer IS the loss
  // recovery, so it is not optional here (add_rail would refuse).
  tcfg.reliability = true;
  for (NodeId i = 0; i < 2; ++i) {
    timers_.push_back(std::make_unique<RealTimerHost>());
    engines_.push_back(std::make_unique<Engine>(i, tcfg, *timers_.back()));
  }
  endpoints_.resize(2);
  const drv::Capabilities caps = drv::udp_loopback_profile();
  for (std::size_t r = 0; r < rails; ++r) {
    auto pair = drv::UdpEndpoint::make_pair(caps, ucfg);
    endpoints_[0].push_back(pair.a.get());
    endpoints_[1].push_back(pair.b.get());
    engines_[0]->add_rail(1, std::move(pair.a));
    engines_[1]->add_rail(0, std::move(pair.b));
  }
  engines_[0]->start_progress_thread();
  engines_[1]->start_progress_thread();
}

UdpWorld::~UdpWorld() {
  engines_[0]->stop_progress_thread();
  engines_[1]->stop_progress_thread();
}

}  // namespace mado::core
