// Batched completion drain: thread-local lap context shared by engine.cpp
// and engine_rx.cpp.
//
// While a progress thread pumps one peer shard's driver endpoints, the
// driver callbacks (on_send_complete / on_packet / on_link_down) do not
// take the peer lock once per event — they append to a thread-local staging
// vector and return. When every endpoint of the shard has been pumped, the
// pumper takes the peer lock ONCE and applies the whole batch in arrival
// order.
//
// With cfg.progress_threads > 1 several laps run concurrently, one per
// thread, each over a different shard: the per-shard pump claim
// (PeerState::pumping) guarantees at most one lap references a given peer
// at any instant, so the thread-local (engine, peer) match below stays
// unambiguous no matter which thread — owner or stealer — runs the lap.
//
// The context is deliberately type-erased (void*): the event vector's
// element type (Engine::RxEvent) is private to Engine, and only Engine
// member functions — which can name it — ever dereference `events`. The
// `engine` / `peer` fields let a callback detect that it belongs to the lap
// currently running on this thread; callbacks from any other source (the
// simulation fabric delivering directly, a different engine sharing the
// thread) fall back to the classic lock-per-event path.
#pragma once

#include "core/types.hpp"

namespace mado::core::detail {

struct ProgressLap {
  const void* engine = nullptr;  ///< the Engine running the lap
  NodeId peer = 0;               ///< the peer whose endpoints are pumped
  void* events = nullptr;        ///< std::vector<Engine::RxEvent>*
};

/// Non-null only between a lap's "pump endpoints" and "apply batch" phases
/// on the pumping thread.
extern thread_local ProgressLap* t_progress_lap;

/// RAII setter for the thread-local lap context (exception-safe reset).
struct LapScope {
  explicit LapScope(ProgressLap* lap) { t_progress_lap = lap; }
  ~LapScope() { t_progress_lap = nullptr; }
  LapScope(const LapScope&) = delete;
  LapScope& operator=(const LapScope&) = delete;
};

}  // namespace mado::core::detail
