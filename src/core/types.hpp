// Core identifier and mode types shared across the engine.
#pragma once

#include <cstdint>

#include "util/clock.hpp"

namespace mado::core {

/// Process/endpoint identity within one communication world.
using NodeId = std::uint32_t;

/// Logical communication flow (Madeleine "channel"). Channel ids are chosen
/// by the application — both sides of a connection must open a channel with
/// the same id, like an MPI tag agreed upon out of band.
using ChannelId = std::uint32_t;

/// Per-channel message sequence number, assigned at submit time.
using MsgSeq = std::uint32_t;

/// Index of a fragment inside one structured message.
using FragIdx = std::uint16_t;

/// Physical rail (NIC) index toward one peer.
using RailId = std::uint8_t;

/// How the sender hands a buffer to the library (Madeleine send modes).
enum class SendMode : std::uint8_t {
  /// Buffer is copied at pack() time; reusable immediately.
  Safe,
  /// Buffer is read when the optimizer builds the packet; it must stay
  /// valid until the send completes. Cheapest for large payloads.
  Later,
  /// Library picks: small fragments are copied, large ones behave as Later.
  Cheaper,
};

/// How the receiver consumes a fragment (Madeleine receive modes).
enum class RecvMode : std::uint8_t {
  /// unpack() blocks until this fragment's data is available. Used for
  /// header fragments whose content determines how to receive the rest —
  /// the "message internal dependencies" the optimizer must respect.
  Express,
  /// unpack() just registers the destination; completion is awaited at
  /// finish(). Gives the library the most freedom (e.g. zero-copy rdv).
  Cheaper,
};

/// Traffic classes the scheduler can assign to networking resources
/// (paper §2: large synchronous sends, put/get transfers, control and
/// signalling messages as distinct classes).
enum class TrafficClass : std::uint8_t {
  Control = 0,
  SmallEager = 1,
  Bulk = 2,
  PutGet = 3,
};
constexpr std::size_t kTrafficClassCount = 4;

/// Health of one rail (NIC) toward a peer, as tracked by the engine.
enum class RailState : std::uint8_t {
  /// Healthy: scheduled normally.
  Up = 0,
  /// Lossy: at least one retransmit timeout is outstanding. Still
  /// scheduled, but a candidate for load shedding.
  Degraded = 1,
  /// Dead: link-down reported or retry budget exhausted. Never scheduled;
  /// its un-acked traffic has been drained to surviving rails.
  Down = 2,
};

inline const char* to_string(RailState s) {
  switch (s) {
    case RailState::Up: return "up";
    case RailState::Degraded: return "degraded";
    case RailState::Down: return "down";
  }
  return "?";
}

/// How eager (small-message) traffic picks a rail at submit time.
enum class EagerRailPolicy : std::uint8_t {
  /// Use the rail assigned to the message's traffic class (default; the
  /// class map itself may be re-assigned dynamically).
  ClassPinned,
  /// Pick the rail with the least queued+in-flight bytes at submit time —
  /// per-message dynamic load balancing across rails.
  LeastLoaded,
};

/// How rendezvous bulk data is spread over multiple rails.
enum class MultirailPolicy : std::uint8_t {
  /// All bulk chunks use the Bulk class's rail.
  SingleRail,
  /// Chunks pre-assigned round-robin weighted by link bandwidth.
  StaticSplit,
  /// Chunks sit in one shared queue; each idle bulk track pulls the next
  /// (self-balancing across heterogeneous rails).
  DynamicSplit,
  /// Cost-model striping: the optimizer splits the transfer into per-rail
  /// contiguous byte ranges sized so every rail's *predicted completion
  /// time* (NicModel PIO/DMA thresholds + per-rail backlog) is equal, then
  /// cuts each range into chunks on that rail's queue. Idle rails steal
  /// queued chunks from loaded ones (the paper's "NIC becomes idle"
  /// activation, generalized across rails), so prediction error and
  /// mid-transfer load shifts self-correct. Tuned by StripePolicy.
  Stripe,
};

}  // namespace mado::core
