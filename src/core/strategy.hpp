// Optimization strategies — the paper's "extendable packet optimization
// engine" with its "database of predefined strategies".
//
// A Strategy is consulted whenever an eager track is idle and the backlog is
// non-empty. It examines the backlog (bounded by the lookahead window) and
// decides the next packet: which fragments to combine, or to wait a little
// longer (Nagle-style), or that nothing should be sent now.
//
// Constraints every strategy MUST honor (checked by tests):
//   * control fragments (rendezvous CTS, …) are included before data;
//   * fragments are consumed from each flow's head only (per-flow FIFO),
//     which preserves intra-message ordering;
//   * the packet payload never exceeds Capabilities::max_eager.
//
// New strategies are added by registering a factory under a name; the
// engine resolves EngineConfig::strategy through this registry, so a
// downstream user extends the database without touching engine code.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/backlog.hpp"
#include "core/config.hpp"
#include "drivers/capabilities.hpp"
#include "util/small_vector.hpp"
#include "util/stats.hpp"

namespace mado::core {

/// Fragments selected for one packet. Inline capacity covers the default
/// lookahead window (16), so building a packet decision performs no heap
/// allocation on the steady-state optimizer path.
using FragList = mado::SmallVector<TxFrag, 16>;

/// Everything a strategy may consult when deciding the next packet.
struct StrategyEnv {
  const drv::Capabilities& caps;
  Nanos now = 0;
  std::size_t lookahead_window = 0;  ///< 0 = unbounded
  std::size_t eval_budget = 0;       ///< 0 = unbounded
  Nanos nagle_delay = 0;
  StatsRegistry* stats = nullptr;    ///< may be null
};

struct PacketDecision {
  enum class Action : std::uint8_t {
    Send,  ///< transmit `frags` as one packet now
    Wait,  ///< hold off until `wait_until` hoping for aggregation
    Idle,  ///< nothing to do (backlog empty or unsendable)
  };
  Action action = Action::Idle;
  FragList frags;
  Nanos wait_until = 0;
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual std::string name() const = 0;

  /// Decide the next packet for an idle eager track. May pop fragments from
  /// `backlog` only if it returns Action::Send (and exactly the popped
  /// fragments must appear in `frags`, in packet order).
  virtual PacketDecision next_packet(TxBacklog& backlog,
                                     const StrategyEnv& env) = 0;
};

/// Name → factory database. Built-in strategies ("fifo", "aggreg",
/// "aggreg_exhaustive", "nagle", "adaptive", "priority") are registered on
/// first access; users add their own with register_strategy (replacing is
/// allowed, so a user can even override a built-in). Thread-safe: engines
/// may be constructed concurrently with registrations.
class StrategyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Strategy>()>;

  static StrategyRegistry& instance();

  void register_strategy(const std::string& name, Factory factory);
  bool contains(const std::string& name) const;
  std::unique_ptr<Strategy> create(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  StrategyRegistry();  // registers the built-ins
  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

/// Helpers shared by built-in strategies (exposed for custom strategies and
/// tests).
namespace strategy_detail {

/// Pop as many control fragments as fit into `out` within `budget` bytes.
/// Returns bytes consumed.
std::size_t take_controls(TxBacklog& backlog, std::size_t budget,
                          FragList& out);

/// Estimated NIC busy time for a packet of `payload_bytes` over
/// `payload_segs` payload segments (plus the header block) under `caps`.
Nanos packet_cost(const drv::Capabilities& caps, std::size_t payload_bytes,
                  std::size_t payload_segs, std::size_t header_bytes);

// ---- stripe hook (MultirailPolicy::Stripe) ---------------------------------
//
// The optimizer-side half of heterogeneous bulk striping: given every Up
// rail's capabilities and current backlog, split a transfer into per-rail
// byte shares such that all rails are *predicted* to finish simultaneously.
// Pure functions of the cost model — exercised directly by the model-based
// striping tests, and by the engine at CTS time.

/// One candidate rail as seen by the stripe planner.
struct StripeRail {
  const drv::Capabilities* caps = nullptr;
  /// Bytes already queued/in flight on the rail (bulk queue + eager backlog
  /// + un-acked wire bytes) that must drain before new chunks move.
  std::size_t backlog_bytes = 0;
  bool up = true;  ///< Down rails must receive a zero share.
};

/// Predicted effective bulk throughput of `caps` in bytes/ns when streaming
/// `chunk`-byte rendezvous chunks back to back: per-chunk injection setup
/// (PIO below the threshold, DMA above — the classic tradeoff the paper
/// says optimizations must be parameterized by), wire occupancy at the
/// effective bandwidth (honors Capabilities::bandwidth_hint_bytes_per_us),
/// and the inter-injection gap.
double stripe_rail_rate(const drv::Capabilities& caps, std::size_t chunk);

/// Split `total` bytes over `rails` proportionally to predicted completion
/// time: rail i receives share_i such that
///   backlog_i/rate_i + share_i/rate_i  is equal across participating rails
/// (classic water-filling; a rail whose backlog already exceeds the common
/// finish time gets 0). Shares below `min_chunk` are folded into the
/// fastest rail. Down rails always get 0. Guarantees sum(shares) == total
/// and shares.size() == rails.size(). Returns the predicted completion-time
/// imbalance in percent (spread between the earliest- and latest-finishing
/// participating rail after integer rounding; 0 when one rail carries all).
double stripe_shares(const std::vector<StripeRail>& rails,
                     std::uint64_t total, std::size_t chunk,
                     std::size_t min_chunk,
                     std::vector<std::uint64_t>& shares);

// ---- rate pricing (collective planner hook) --------------------------------
//
// The same per-chunk cost model stripe_rail_rate prices rails with, exposed
// as span predictions so schedule planners (mw::CollectivePlanner) can price
// candidate schedules and pick pipeline chunk sizes without re-deriving the
// NIC arithmetic.

/// Predicted span (ns) to push `bytes` through `caps` as back-to-back
/// `chunk`-byte units, each priced like a stripe chunk (injection setup,
/// wire occupancy at the effective bandwidth, inter-injection gap). The
/// tail unit is priced at its actual size.
Nanos chunked_span(const drv::Capabilities& caps, std::uint64_t bytes,
                   std::size_t chunk);

/// Aggregate span (ns) when `bytes` are water-filled across `rails` via
/// stripe_shares: the slowest participating rail's drain+share time. Down
/// rails receive no share; returns 0 when nothing can carry the bytes.
Nanos striped_span(const std::vector<StripeRail>& rails, std::uint64_t bytes,
                   std::size_t chunk, std::size_t min_chunk);

/// Chunk size minimizing the classic pipeline bound
///   (depth - 1 + ceil(bytes/c)) * per_chunk_time(c)
/// over power-of-two candidates in [min_chunk, bytes], where per-chunk time
/// comes from stripe_rail_rate pricing. `depth` is the number of pipeline
/// hops (tree depth or chain length); returns `bytes` (no chunking) when
/// bytes <= min_chunk or depth <= 1 leaves nothing to overlap.
std::size_t pipeline_chunk(const drv::Capabilities& caps, std::uint64_t bytes,
                           std::size_t depth, std::size_t min_chunk);

}  // namespace strategy_detail

}  // namespace mado::core
