// Payload slab: a free list of byte buffers for small-eager payload copies,
// engine-generated control bodies, and packet header blocks.
//
// Every eager submit in Safe/Cheaper-copy mode used to heap-allocate a
// fresh Bytes for the payload copy, and every packet allocated a header
// block — both freed when the packet completed. Under steady-state traffic
// the engine cycles through similarly-sized buffers, so those allocations
// are pure churn on the submit/decision path. The slab retains completed
// buffers (depth- and capacity-capped) and hands them back to the next
// taker: steady state performs zero heap allocations for payload copies or
// header blocks.
//
// Counters (when a StatsRegistry is attached):
//   opt.slab_hits    — takes satisfied from the free list
//   opt.slab_misses  — takes that had to allocate a fresh buffer
//   opt.alloc_bytes  — bytes heap-reserved by takes (misses + regrows)
//
// Not thread-safe by design: owned by one engine, used under its lock.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/stats.hpp"
#include "util/wire.hpp"

namespace mado::core {

class PayloadSlab {
 public:
  struct Limits {
    std::size_t max_buffers;   ///< free-list depth
    std::size_t max_capacity;  ///< larger buffers are not retained
  };
  static constexpr Limits kDefaultLimits{64, 64 * 1024};

  explicit PayloadSlab(StatsRegistry* stats = nullptr,
                       Limits limits = kDefaultLimits)
      : stats_(stats), limits_(limits) {
    free_.reserve(limits_.max_buffers);
  }

  /// An empty buffer with capacity >= `reserve_hint`. Reuses a retained
  /// buffer when possible; otherwise allocates and accounts the bytes
  /// under opt.alloc_bytes.
  Bytes take(std::size_t reserve_hint) {
    if (!free_.empty()) {
      Bytes b = std::move(free_.back());
      free_.pop_back();
      if (stats_) stats_->inc("opt.slab_hits");
      if (b.capacity() < reserve_hint) {
        if (stats_) stats_->inc("opt.alloc_bytes", reserve_hint);
        b.reserve(reserve_hint);
      }
      return b;
    }
    if (stats_) {
      stats_->inc("opt.slab_misses");
      stats_->inc("opt.alloc_bytes", reserve_hint);
    }
    Bytes b;
    b.reserve(reserve_hint);
    return b;
  }

  /// Return a completed buffer for reuse. Empty buffers are ignored;
  /// buffers above the capacity cap and overflow beyond the depth cap are
  /// freed immediately (retaining them would pin memory) and counted as
  /// cap.slab_sheds — the budget enforcement working as intended, but a
  /// high rate means the limits are too tight for the workload.
  void recycle(Bytes&& b) {
    if (b.capacity() == 0) return;
    if (b.capacity() > limits_.max_capacity ||
        free_.size() >= limits_.max_buffers) {
      if (stats_) stats_->inc("cap.slab_sheds");
      Bytes{}.swap(b);  // release now
      return;
    }
    b.clear();
    free_.push_back(std::move(b));
  }

  std::size_t retained() const { return free_.size(); }
  const Limits& limits() const { return limits_; }

 private:
  StatsRegistry* stats_ = nullptr;
  Limits limits_;
  std::vector<Bytes> free_;
};

}  // namespace mado::core
