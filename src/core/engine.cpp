#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace mado::core {

Engine::Engine(NodeId self, EngineConfig cfg, TimerHost& timers)
    : self_(self), cfg_(std::move(cfg)), timers_(timers),
      strategy_(StrategyRegistry::instance().create(cfg_.strategy)),
      class_rail_(cfg_.class_rail),
      alive_(std::make_shared<std::atomic<bool>>(true)) {}

Engine::~Engine() {
  stop_progress_thread();
  alive_->store(false);
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [id, ps] : peers_)
    for (auto& rail : ps->rails)
      if (rail->ep) rail->ep->close();
}

// ---- topology -------------------------------------------------------------

RailId Engine::add_rail(NodeId peer, std::unique_ptr<drv::DriverEndpoint> ep) {
  MADO_CHECK(ep != nullptr);
  std::lock_guard<std::mutex> lk(mu_);
  auto& ps_ptr = peers_[peer];
  if (!ps_ptr) {
    ps_ptr = std::make_unique<PeerState>();
    ps_ptr->id = peer;
  }
  PeerState& ps = *ps_ptr;
  MADO_CHECK_MSG(ps.rails.size() < 255, "too many rails");
  const RailId id = static_cast<RailId>(ps.rails.size());
  auto rail = std::make_unique<Rail>();
  rail->ep = std::move(ep);
  rail->port.engine = this;
  rail->port.peer = peer;
  rail->port.rail = id;
  rail->outstanding.assign(rail->ep->caps().track_count, 0);
  rail->ep->set_handler(&rail->port);
  ps.rails.push_back(std::move(rail));
  return id;
}

std::size_t Engine::rail_count(NodeId peer) const {
  std::lock_guard<std::mutex> lk(mu_);
  const PeerState* ps = find_peer_locked(peer);
  return ps ? ps->rails.size() : 0;
}

Channel Engine::open_channel(NodeId peer, ChannelId id, TrafficClass cls) {
  MADO_CHECK_MSG(id != kRmaChannel,
                 "channel id is reserved for engine-internal RMA traffic");
  std::lock_guard<std::mutex> lk(mu_);
  PeerState& ps = peer_locked(peer);
  MADO_CHECK_MSG(!ps.rails.empty(), "no rails toward peer " << peer);
  auto [it, inserted] = ps.channels.emplace(id, ChannelState{});
  MADO_CHECK_MSG(inserted, "channel " << id << " already open to peer "
                                      << peer);
  it->second.cls = cls;
  return Channel(this, peer, id, cls);
}

Engine::PeerState& Engine::peer_locked(NodeId peer) {
  auto it = peers_.find(peer);
  MADO_CHECK_MSG(it != peers_.end(), "unknown peer " << peer);
  return *it->second;
}

Engine::PeerState* Engine::find_peer_locked(NodeId peer) {
  auto it = peers_.find(peer);
  return it == peers_.end() ? nullptr : it->second.get();
}

const Engine::PeerState* Engine::find_peer_locked(NodeId peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? nullptr : it->second.get();
}

RailId Engine::rail_for_class_locked(const PeerState& ps,
                                     TrafficClass cls) const {
  MADO_ASSERT(!ps.rails.empty());
  const RailId wanted = class_rail_[static_cast<std::size_t>(cls)];
  return static_cast<RailId>(wanted % ps.rails.size());
}

RailId Engine::rail_for_submit_locked(const PeerState& ps,
                                      TrafficClass cls) const {
  if (cfg_.eager_rail == EagerRailPolicy::ClassPinned ||
      ps.rails.size() < 2)
    return rail_for_class_locked(ps, cls);
  // LeastLoaded: queued + in-flight bytes, normalized by link bandwidth so
  // a loaded fast rail can still beat an idle slow one.
  std::size_t best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < ps.rails.size(); ++i) {
    const Rail& r = *ps.rails[i];
    const double load =
        static_cast<double>(r.backlog.byte_count() + r.inflight_bytes);
    const double cost = load / r.ep->caps().cost.link_bytes_per_us;
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  return static_cast<RailId>(best);
}

// ---- submit path -----------------------------------------------------------

SendHandle Engine::submit(NodeId peer, ChannelId ch, Message msg) {
  MADO_CHECK_MSG(!msg.empty(), "cannot post an empty message");
  std::lock_guard<std::mutex> lk(mu_);
  PeerState& ps = peer_locked(peer);
  auto cit = ps.channels.find(ch);
  MADO_CHECK_MSG(cit != ps.channels.end(), "channel " << ch << " not open");
  ChannelState& cs = cit->second;

  const MsgSeq seq = cs.next_tx_seq++;
  const auto nfrags = static_cast<std::uint16_t>(msg.fragment_count());
  auto state = std::make_shared<SendState>();
  state->pending = nfrags;
  ++cs.outstanding_sends;

  const RailId rail_id = rail_for_submit_locked(ps, cs.cls);
  Rail& rail = *ps.rails[rail_id];
  const drv::Capabilities& caps = rail.ep->caps();
  const std::size_t rdv_thr = cfg_.rdv_threshold_override != 0
                                  ? cfg_.rdv_threshold_override
                                  : caps.rdv_threshold;

  auto& frags = msg.fragments();
  for (std::size_t i = 0; i < frags.size(); ++i) {
    Message::Fragment& mf = frags[i];
    TxFrag tf;
    tf.channel = ch;
    tf.msg_seq = seq;
    tf.idx = static_cast<FragIdx>(i);
    tf.nfrags_total = nfrags;
    tf.cls = cs.cls;
    tf.last = (i + 1 == frags.size());
    tf.state = state;
    tf.submit_time = timers_.now();
    tf.order = next_submit_order_++;

    if (mf.len >= rdv_thr) {
      // Rendezvous: the RTS control fragment takes this fragment's place in
      // the eager stream (so intra-message ordering of headers vs payload
      // is preserved); the bytes flow on bulk tracks after the CTS.
      const std::uint64_t token = next_rdv_token_++;
      RdvTx rdv;
      rdv.peer = peer;
      rdv.channel = ch;
      rdv.total = mf.len;
      rdv.state = state;
      if (!mf.owned.empty()) {
        rdv.storage = std::move(mf.owned);  // Safe mode: keep the copy alive
        rdv.data = rdv.storage.data();
      } else {
        rdv.data = mf.ext;
      }
      rdv_tx_.emplace(token, std::move(rdv));

      tf.kind = FragKind::RdvRts;
      tf.rdv_token = token;
      RtsBody body{token, mf.len};
      tf.owned = slab_.take(RtsBody::kWireSize);
      encode_rts(tf.owned, body);
      tf.len = tf.owned.size();
      stats_.inc("tx.rdv_rts");
    } else {
      tf.kind = FragKind::Data;
      const bool copy =
          mf.mode == SendMode::Safe ||
          (mf.mode == SendMode::Cheaper && mf.len <= cfg_.cheaper_copy_bound);
      if (copy) {
        if (!mf.owned.empty()) {
          tf.owned = std::move(mf.owned);  // Safe: already copied at pack()
        } else if (mf.len > 0) {
          // Cheaper-mode copy: reuse a slab buffer instead of allocating a
          // fresh vector per fragment (pure churn in steady state).
          tf.owned = slab_.take(mf.len);
          tf.owned.insert(tf.owned.end(), mf.ext, mf.ext + mf.len);
        }
      } else {
        tf.ext = mf.ext ? mf.ext : mf.owned.data();
        if (!mf.owned.empty()) {
          // Later-mode fragment packed with owned bytes cannot happen
          // (pack() only copies for Safe), but keep the copy if it does.
          tf.owned = std::move(mf.owned);
          tf.ext = nullptr;
        }
      }
      tf.len = mf.len;
    }
    rail.backlog.push(std::move(tf));
  }

  stats_.inc("tx.msgs");
  stats_.inc("tx.frags_submitted", nfrags);
  trace_locked(TraceEvent::MsgSubmit, peer, rail_id, ch, nfrags,
               msg.total_bytes());
  pump_rail_locked(ps, rail);
  return SendHandle(state);
}

// ---- optimizer pump ---------------------------------------------------------

void Engine::pump_all_locked() {
  for (auto& [id, ps] : peers_) pump_peer_locked(*ps);
}

void Engine::pump_peer_locked(PeerState& ps) {
  for (auto& rail : ps.rails) pump_rail_locked(ps, *rail);
}

void Engine::pump_rail_locked(PeerState& ps, Rail& rail) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    if (!rail.shared_track()) {
      while (rail.track_free(rail.bulk_track())) {
        if (!try_send_bulk_locked(ps, rail)) break;
        progressed = true;
      }
      if (rail.track_free(drv::kTrackEager))
        if (try_send_eager_locked(ps, rail)) progressed = true;
    } else {
      // Single multiplexing unit: alternate eager and bulk so neither
      // starves the other (relevant for the E8 "shared track" policy).
      if (!rail.track_free(drv::kTrackEager)) break;
      bool sent;
      if (rail.bulk_turn) {
        sent = try_send_bulk_locked(ps, rail) ||
               try_send_eager_locked(ps, rail);
      } else {
        sent = try_send_eager_locked(ps, rail) ||
               try_send_bulk_locked(ps, rail);
      }
      if (sent) {
        rail.bulk_turn = !rail.bulk_turn;
        progressed = true;
      }
    }
  }
}

bool Engine::try_send_eager_locked(PeerState& ps, Rail& rail) {
  if (rail.backlog.empty()) return false;
  StrategyEnv env{rail.ep->caps(), timers_.now(), cfg_.lookahead_window,
                  cfg_.eval_budget, cfg_.nagle_delay, &stats_};
  PacketDecision d = strategy_->next_packet(rail.backlog, env);
  stats_.inc("opt.decisions");
  // Surface the incremental flow-index maintenance cost (delta since the
  // last decision on this rail) so it stays observable.
  const std::uint64_t idx_ops = rail.backlog.flow_index_ops();
  if (idx_ops != rail.flow_index_ops_flushed) {
    stats_.inc("opt.flow_index_ops", idx_ops - rail.flow_index_ops_flushed);
    rail.flow_index_ops_flushed = idx_ops;
  }
  if (tracer_) {
    std::size_t bytes = 0;
    for (const TxFrag& f : d.frags) bytes += f.len;
    trace_locked(TraceEvent::Decision, ps.id, rail.port.rail,
                 static_cast<std::uint64_t>(d.action), d.frags.size(),
                 bytes);
  }
  switch (d.action) {
    case PacketDecision::Action::Send:
      MADO_CHECK_MSG(!d.frags.empty(), "strategy sent an empty packet");
      send_packet_locked(ps, rail, std::move(d.frags));
      return true;
    case PacketDecision::Action::Wait:
      schedule_nagle_timer_locked(ps, rail, d.wait_until);
      return false;
    case PacketDecision::Action::Idle:
      return false;
  }
  return false;
}

bool Engine::try_send_bulk_locked(PeerState& ps, Rail& rail) {
  if (!rail.track_free(rail.bulk_track())) return false;
  BulkChunk chunk;
  if (!pop_bulk_chunk_locked(ps, rail, chunk)) return false;
  send_bulk_chunk_locked(ps, rail, chunk);
  return true;
}

bool Engine::pop_bulk_chunk_locked(PeerState& ps, Rail& rail,
                                   BulkChunk& out) {
  if (!rail.bulk_q.empty()) {
    out = rail.bulk_q.front();
    rail.bulk_q.pop_front();
    return true;
  }
  if (cfg_.multirail == MultirailPolicy::DynamicSplit &&
      !ps.shared_bulk.empty()) {
    out = ps.shared_bulk.front();
    ps.shared_bulk.pop_front();
    return true;
  }
  return false;
}

void Engine::send_packet_locked(PeerState& ps, Rail& rail, FragList&& frags) {
  const std::uint64_t token = next_pkt_token_++;
  auto [it, inserted] = inflight_.emplace(token, InFlight{});
  MADO_ASSERT(inserted);
  InFlight& rec = it->second;
  rec.peer = ps.id;
  rec.rail = rail.port.rail;
  rec.track = drv::kTrackEager;
  rec.frags = std::move(frags);

  PacketHeader ph;
  ph.nfrags = static_cast<std::uint16_t>(rec.frags.size());
  ph.pkt_seq = rail.pkt_seq++;
  ph.src_node = self_;
  mado::SmallVector<FragHeader, 16> fhs;
  fhs.reserve(rec.frags.size());
  for (const TxFrag& f : rec.frags) fhs.push_back(f.header());
  rec.header_block = slab_.take(PacketHeader::kWireSize +
                                FragHeader::kWireSize * fhs.size());
  encode_header_block(rec.header_block, ph,
                      std::span<const FragHeader>(fhs.data(), fhs.size()));

  GatherList gl;
  gl.add(rec.header_block.data(), rec.header_block.size());
  for (const TxFrag& f : rec.frags) gl.add(f.data(), f.len);
  rec.wire_bytes = gl.total_bytes();

  ++rail.outstanding[drv::kTrackEager];
  rail.inflight_bytes += rec.wire_bytes;
  stats_.inc("tx.packets");
  stats_.inc("tx.bytes", rec.wire_bytes);
  stats_.inc("tx.frags", rec.frags.size());
  stats_.observe("tx.pkt_frags", rec.frags.size());
  stats_.observe("tx.pkt_bytes", rec.wire_bytes);
  MADO_TRACE("node " << self_ << " tx packet " << token << " nfrags="
                     << rec.frags.size() << " bytes=" << rec.wire_bytes);
  trace_locked(TraceEvent::PacketTx, ps.id, rail.port.rail, token,
               rec.wire_bytes, rec.frags.size());
  rail.ep->send(drv::kTrackEager, gl, token);
}

void Engine::send_bulk_chunk_locked(PeerState& ps, Rail& rail,
                                    BulkChunk chunk) {
  auto rit = rdv_tx_.find(chunk.token);
  MADO_CHECK(rit != rdv_tx_.end());
  RdvTx& rdv = rit->second;

  const std::uint64_t token = next_pkt_token_++;
  auto [it, inserted] = inflight_.emplace(token, InFlight{});
  MADO_ASSERT(inserted);
  InFlight& rec = it->second;
  rec.peer = ps.id;
  rec.rail = rail.port.rail;
  rec.track = rail.bulk_track();
  rec.is_bulk = true;
  rec.rdv_token = chunk.token;
  rec.chunk_len = chunk.len;

  BulkHeader bh;
  bh.src_node = self_;
  bh.token = chunk.token;
  bh.offset = chunk.offset;
  bh.len = chunk.len;
  rec.header_block = slab_.take(BulkHeader::kWireSize);
  encode_bulk_header(rec.header_block, bh);

  GatherList gl;
  gl.add(rec.header_block.data(), rec.header_block.size());
  gl.add(rdv.data + chunk.offset, chunk.len);
  rec.wire_bytes = gl.total_bytes();

  ++rail.outstanding[rec.track];
  rail.inflight_bytes += rec.wire_bytes;
  stats_.inc("tx.bulk_chunks");
  stats_.inc("tx.bytes", rec.wire_bytes);
  trace_locked(TraceEvent::BulkTx, ps.id, rail.port.rail, chunk.token,
               chunk.offset, chunk.len);
  rail.ep->send(rec.track, gl, token);
}

void Engine::schedule_nagle_timer_locked(PeerState& ps, Rail& rail,
                                         Nanos when) {
  // Keep the earliest requested deadline. The old behavior dropped `when`
  // whenever a timer was already pending, so a strategy that asked for an
  // EARLIER wake-up (new traffic shortening its hold window) kept sleeping
  // until the stale, later deadline — inflating latency by the difference.
  // TimerHost cannot cancel, so re-arming bumps the generation; the
  // superseded callback no-ops when its generation no longer matches.
  if (rail.nagle_timer_pending && when >= rail.nagle_deadline) return;
  rail.nagle_timer_pending = true;
  rail.nagle_deadline = when;
  const std::uint64_t gen = ++rail.nagle_timer_gen;
  trace_locked(TraceEvent::NagleWait, ps.id, rail.port.rail, when);
  const NodeId peer = ps.id;
  const RailId rail_id = rail.port.rail;
  timers_.schedule_at(when, [this, alive = alive_, peer, rail_id, gen] {
    if (!alive->load()) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      PeerState* p = find_peer_locked(peer);
      if (!p || rail_id >= p->rails.size()) return;
      Rail& r = *p->rails[rail_id];
      if (r.nagle_timer_gen != gen) return;  // superseded by a re-arm
      r.nagle_timer_pending = false;
      pump_rail_locked(*p, r);
    }
    cv_.notify_all();
  });
}

// ---- completion path --------------------------------------------------------

void Engine::on_send_complete(NodeId peer, RailId rail_id, drv::TrackId track,
                              std::uint64_t token) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    PeerState* ps = find_peer_locked(peer);
    if (!ps) return;  // torn down
    Rail& rail = *ps->rails[rail_id];
    complete_send_locked(*ps, rail, track, token);
    // The NIC became idle: this is the optimizer's trigger (paper §3).
    pump_rail_locked(*ps, rail);
  }
  cv_.notify_all();
}

void Engine::complete_send_locked(PeerState& ps, Rail& rail,
                                  drv::TrackId track, std::uint64_t token) {
  auto it = inflight_.find(token);
  MADO_CHECK_MSG(it != inflight_.end(), "completion for unknown packet");
  InFlight rec = std::move(it->second);
  inflight_.erase(it);
  MADO_ASSERT(rec.track == track);
  MADO_ASSERT(rail.outstanding[track] > 0);
  --rail.outstanding[track];
  MADO_ASSERT(rail.inflight_bytes >= rec.wire_bytes);
  rail.inflight_bytes -= rec.wire_bytes;
  slab_.recycle(std::move(rec.header_block));

  if (rec.is_bulk) {
    auto rit = rdv_tx_.find(rec.rdv_token);
    MADO_CHECK(rit != rdv_tx_.end());
    RdvTx& rdv = rit->second;
    rdv.completed += rec.chunk_len;
    MADO_ASSERT(rdv.completed <= rdv.total);
    if (rdv.completed == rdv.total) {
      // Null state: a one-sided transfer whose completion is tracked by the
      // remote side (put ack) or the requester (get buffer) — only the
      // local buffer hold is released here.
      if (rdv.state)
        complete_frag_state_locked(ps, rdv.channel, rdv.state);
      stats_.inc("tx.rdv_completed");
      rdv_tx_.erase(rit);
    }
    return;
  }
  for (TxFrag& f : rec.frags) {
    if (f.kind == FragKind::Data && f.state)
      complete_frag_state_locked(ps, f.channel, f.state);
    // Return the payload copy (or control body) for reuse by future
    // submits; referenced (Later-mode) fragments have nothing to recycle.
    slab_.recycle(std::move(f.owned));
  }
}

void Engine::complete_frag_state_locked(PeerState& ps, ChannelId ch,
                                        const SendStateRef& state) {
  MADO_ASSERT(state->pending > 0);
  if (--state->pending == 0) {
    auto it = ps.channels.find(ch);
    if (it != ps.channels.end()) {
      MADO_ASSERT(it->second.outstanding_sends > 0);
      --it->second.outstanding_sends;
    }
    stats_.inc("tx.msgs_completed");
  }
}

// ---- progression / waiting -------------------------------------------------

void Engine::progress() {
  std::vector<drv::DriverEndpoint*> eps;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [id, ps] : peers_)
      for (auto& rail : ps->rails) eps.push_back(rail->ep.get());
  }
  for (auto* ep : eps) ep->progress();
  timers_.run_due();
}

void Engine::set_external_progress(std::function<bool()> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  external_progress_ = std::move(fn);
}

void Engine::set_tracer(Tracer* tracer) {
  std::lock_guard<std::mutex> lk(mu_);
  tracer_ = tracer;
}

void Engine::start_progress_thread() {
  MADO_CHECK_MSG(!progress_thread_.joinable(),
                 "progress thread already running");
  stop_progress_.store(false);
  progress_thread_ = std::thread([this] {
    while (!stop_progress_.load(std::memory_order_acquire)) {
      progress();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
}

void Engine::stop_progress_thread() {
  if (!progress_thread_.joinable()) return;
  stop_progress_.store(true, std::memory_order_release);
  progress_thread_.join();
}

bool Engine::wait_until(const std::function<bool()>& pred, Nanos timeout) {
  return wait_until_impl(pred, timeout);
}

bool Engine::wait_until_impl(const std::function<bool()>& pred,
                             Nanos timeout) {
  std::function<bool()> ext;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ext = external_progress_;
  }
  if (ext) {
    // Cooperative simulation mode: pump the world until pred holds or the
    // event queue drains (virtual time — wall timeout does not apply).
    for (;;) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (pred()) return true;
      }
      if (!ext()) {
        std::lock_guard<std::mutex> lk(mu_);
        return pred();
      }
    }
  }
  const Nanos deadline = timers_.now() + timeout;
  for (;;) {
    progress();
    std::unique_lock<std::mutex> lk(mu_);
    if (pred()) return true;
    if (timers_.now() > deadline) return false;
    cv_.wait_for(lk, std::chrono::microseconds(200));
  }
}

bool Engine::send_done(const SendHandle& h) const {
  MADO_CHECK(h.valid());
  std::lock_guard<std::mutex> lk(mu_);
  return h.state_->pending == 0;
}

bool Engine::wait_send(const SendHandle& h, Nanos timeout) {
  MADO_CHECK(h.valid());
  const SendStateRef state = h.state_;
  return wait_until_impl([&state] { return state->pending == 0; }, timeout);
}

bool Engine::flush(Nanos timeout) {
  return wait_until_impl(
      [this] {
        if (!inflight_.empty() || !rdv_tx_.empty()) return false;
        for (const auto& [id, ps] : peers_) {
          if (!ps->shared_bulk.empty()) return false;
          for (const auto& rail : ps->rails)
            if (!rail->backlog.empty() || !rail->bulk_q.empty()) return false;
        }
        return true;
      },
      timeout);
}

// ---- one-sided put/get -------------------------------------------------------

void Engine::expose_window(WindowId id, void* base, std::size_t len) {
  MADO_CHECK(base != nullptr && len > 0);
  std::lock_guard<std::mutex> lk(mu_);
  const auto [it, inserted] =
      windows_.emplace(id, RmaWindow{static_cast<Byte*>(base), len});
  MADO_CHECK_MSG(inserted, "window " << id << " already exposed");
}

const Engine::RmaWindow& Engine::window_locked(WindowId id,
                                               std::uint64_t offset,
                                               std::uint64_t len) const {
  auto it = windows_.find(id);
  MADO_CHECK_MSG(it != windows_.end(), "unknown RMA window " << id);
  MADO_CHECK_MSG(offset + len <= it->second.len,
                 "RMA access [" << offset << ", " << offset + len
                                << ") outside window " << id << " of size "
                                << it->second.len);
  return it->second;
}

TxFrag Engine::make_rma_frag_locked(FragKind kind) {
  TxFrag tf;
  tf.channel = kRmaChannel;
  tf.msg_seq = 0;
  tf.idx = 0;
  tf.nfrags_total = 1;
  tf.last = true;
  tf.kind = kind;
  tf.submit_time = timers_.now();
  tf.order = next_submit_order_++;
  return tf;
}

SendHandle Engine::rma_put(NodeId peer, WindowId window, std::uint64_t offset,
                           const void* data, std::size_t len,
                           TrafficClass cls) {
  MADO_CHECK(data != nullptr && len > 0);
  std::lock_guard<std::mutex> lk(mu_);
  PeerState& ps = peer_locked(peer);
  MADO_CHECK_MSG(!ps.rails.empty(), "no rails toward peer " << peer);
  const RailId rail_id = rail_for_class_locked(ps, cls);
  Rail& rail = *ps.rails[rail_id];
  const std::size_t rdv_thr = cfg_.rdv_threshold_override != 0
                                  ? cfg_.rdv_threshold_override
                                  : rail.ep->caps().rdv_threshold;

  auto state = std::make_shared<SendState>();
  state->pending = 1;  // completes on the peer's RmaAck
  const std::uint64_t ack_token = next_rdv_token_++;
  rma_acks_.emplace(ack_token, state);

  if (len >= rdv_thr) {
    RdvTx rdv;
    rdv.peer = peer;
    rdv.channel = kRmaChannel;
    rdv.data = static_cast<const Byte*>(data);
    rdv.total = len;
    rdv.state = nullptr;  // handle completes on the ack, not on chunks
    rdv_tx_.emplace(ack_token, std::move(rdv));

    TxFrag tf = make_rma_frag_locked(FragKind::RdvRts);
    RtsBody body;
    body.token = ack_token;
    body.total_len = len;
    body.target = RdvTarget::Window;
    body.window = window;
    body.offset = offset;
    body.aux = ack_token;
    tf.owned = slab_.take(RtsBody::kWireSize);
    encode_rts(tf.owned, body);
    tf.len = tf.owned.size();
    rail.backlog.push(std::move(tf));
  } else {
    TxFrag tf = make_rma_frag_locked(FragKind::RmaPut);
    tf.owned = slab_.take(RmaPutBody::kWireSize + len);
    encode_rma_put(tf.owned, RmaPutBody{window, offset, ack_token});
    const auto* p = static_cast<const Byte*>(data);
    tf.owned.insert(tf.owned.end(), p, p + len);
    tf.len = tf.owned.size();
    rail.backlog.push(std::move(tf));
  }
  stats_.inc("rma.puts");
  trace_locked(TraceEvent::RmaOp, peer, rail_id, 0, window, len);
  pump_rail_locked(ps, rail);
  return SendHandle(state);
}

SendHandle Engine::rma_get(NodeId peer, WindowId window, std::uint64_t offset,
                           void* dest, std::size_t len, TrafficClass cls) {
  MADO_CHECK(dest != nullptr && len > 0);
  std::lock_guard<std::mutex> lk(mu_);
  PeerState& ps = peer_locked(peer);
  MADO_CHECK_MSG(!ps.rails.empty(), "no rails toward peer " << peer);
  const RailId rail_id = rail_for_class_locked(ps, cls);
  Rail& rail = *ps.rails[rail_id];

  auto state = std::make_shared<SendState>();
  state->pending = 1;  // completes when all requested bytes landed
  const std::uint64_t get_token = next_rdv_token_++;
  pending_gets_.emplace(get_token,
                        PendingGet{static_cast<Byte*>(dest), len, state});

  TxFrag tf = make_rma_frag_locked(FragKind::RmaGet);
  tf.owned = slab_.take(RmaGetBody::kWireSize);
  encode_rma_get(tf.owned, RmaGetBody{window, offset, len, get_token});
  tf.len = tf.owned.size();
  rail.backlog.push(std::move(tf));
  stats_.inc("rma.gets");
  trace_locked(TraceEvent::RmaOp, peer, rail_id, 1, window, len);
  pump_rail_locked(ps, rail);
  return SendHandle(state);
}

// ---- traffic classes --------------------------------------------------------

void Engine::set_class_rail(TrafficClass cls, RailId rail) {
  std::lock_guard<std::mutex> lk(mu_);
  class_rail_[static_cast<std::size_t>(cls)] = rail;
}

RailId Engine::class_rail(TrafficClass cls) const {
  std::lock_guard<std::mutex> lk(mu_);
  return class_rail_[static_cast<std::size_t>(cls)];
}

void Engine::rebalance_classes() {
  std::lock_guard<std::mutex> lk(mu_);
  // Load per rail index, summed over peers: queued + in-flight bytes.
  std::vector<std::size_t> load;
  for (const auto& [id, ps] : peers_) {
    if (ps->rails.size() > load.size()) load.resize(ps->rails.size(), 0);
    for (std::size_t i = 0; i < ps->rails.size(); ++i) {
      const Rail& r = *ps->rails[i];
      std::size_t bulk_bytes = 0;
      for (const BulkChunk& c : r.bulk_q) bulk_bytes += c.len;
      load[i] += r.backlog.byte_count() + r.inflight_bytes + bulk_bytes;
    }
  }
  if (load.size() < 2) return;  // nothing to balance
  const auto lightest = static_cast<RailId>(
      std::min_element(load.begin(), load.end()) - load.begin());
  // Latency-sensitive classes follow the least-loaded rail; bulk classes
  // keep their assignment (their chunks already spread per MultirailPolicy).
  class_rail_[static_cast<std::size_t>(TrafficClass::Control)] = lightest;
  class_rail_[static_cast<std::size_t>(TrafficClass::SmallEager)] = lightest;
  stats_.inc("sched.rebalances");
  trace_locked(TraceEvent::Rebalance, 0, lightest, lightest);
}

void Engine::set_auto_rebalance(Nanos interval) {
  MADO_CHECK(interval > 0);
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto_rebalance_interval_ = interval;
  }
  // Self-re-arming tick. NOTE: in simulation this keeps the fabric event
  // queue non-empty forever; drive such runs with run_until()/wait_until()
  // rather than run_until_idle().
  //
  // Ownership: the engine holds the only strong reference
  // (rebalance_tick_); the scheduled copies capture a weak_ptr. Capturing
  // `tick` strongly here would make the closure own itself — a shared_ptr
  // cycle that leaks the function and keeps a superseded chain re-arming
  // after a second set_auto_rebalance call.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, alive = alive_,
           weak = std::weak_ptr<std::function<void()>>(tick)] {
    if (!alive->load()) return;
    rebalance_classes();
    Nanos period;
    {
      std::lock_guard<std::mutex> lk(mu_);
      period = auto_rebalance_interval_;
    }
    auto self = weak.lock();  // null once the engine dropped the chain
    if (period > 0 && self)
      timers_.schedule_at(timers_.now() + period, *self);
  };
  {
    std::lock_guard<std::mutex> lk(mu_);
    rebalance_tick_ = tick;
  }
  timers_.schedule_at(timers_.now() + interval, *tick);
}

// ---- introspection ----------------------------------------------------------

std::size_t Engine::backlog_frags(NodeId peer, RailId rail) const {
  std::lock_guard<std::mutex> lk(mu_);
  const PeerState* ps = find_peer_locked(peer);
  MADO_CHECK(ps && rail < ps->rails.size());
  return ps->rails[rail]->backlog.frag_count();
}

std::size_t Engine::inflight_packets() const {
  std::lock_guard<std::mutex> lk(mu_);
  return inflight_.size();
}

std::size_t Engine::pending_bulk_chunks(NodeId peer) const {
  std::lock_guard<std::mutex> lk(mu_);
  const PeerState* ps = find_peer_locked(peer);
  MADO_CHECK(ps != nullptr);
  std::size_t n = ps->shared_bulk.size();
  for (const auto& rail : ps->rails) n += rail->bulk_q.size();
  return n;
}

Engine::Snapshot Engine::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot s;
  for (const auto& [id, ps] : peers_) {
    Snapshot::PeerInfo pi;
    pi.id = id;
    pi.shared_bulk_chunks = ps->shared_bulk.size();
    pi.open_channels = ps->channels.size();
    pi.rx_pending_msgs = ps->rx_msgs.size();
    for (const auto& rail : ps->rails) {
      Snapshot::RailInfo ri;
      ri.driver = rail->ep->caps().name;
      ri.backlog_frags = rail->backlog.frag_count();
      ri.backlog_bytes = rail->backlog.byte_count();
      ri.bulk_chunks = rail->bulk_q.size();
      for (std::size_t n : rail->outstanding) ri.outstanding_packets += n;
      ri.inflight_bytes = rail->inflight_bytes;
      pi.rails.push_back(std::move(ri));
    }
    s.peers.push_back(std::move(pi));
  }
  s.inflight_packets = inflight_.size();
  s.rdv_tx_active = rdv_tx_.size();
  s.rdv_rx_active = rdv_rx_.size();
  s.windows_exposed = windows_.size();
  s.pending_gets = pending_gets_.size();
  return s;
}

bool Engine::Snapshot::quiescent() const {
  if (inflight_packets || rdv_tx_active || rdv_rx_active || pending_gets)
    return false;
  for (const auto& p : peers) {
    if (p.shared_bulk_chunks) return false;
    for (const auto& r : p.rails)
      if (r.backlog_frags || r.bulk_chunks || r.outstanding_packets)
        return false;
  }
  return true;
}

std::string Engine::Snapshot::to_string() const {
  std::ostringstream os;
  os << "inflight=" << inflight_packets << " rdv_tx=" << rdv_tx_active
     << " rdv_rx=" << rdv_rx_active << " windows=" << windows_exposed
     << " pending_gets=" << pending_gets << "\n";
  for (const auto& p : peers) {
    os << "peer " << p.id << ": channels=" << p.open_channels
       << " rx_pending=" << p.rx_pending_msgs
       << " shared_bulk=" << p.shared_bulk_chunks << "\n";
    for (std::size_t i = 0; i < p.rails.size(); ++i) {
      const auto& r = p.rails[i];
      os << "  rail " << i << " (" << r.driver << "): backlog="
         << r.backlog_frags << " frags/" << r.backlog_bytes
         << " B, bulk_q=" << r.bulk_chunks << ", outstanding="
         << r.outstanding_packets << " pkts/" << r.inflight_bytes << " B\n";
    }
  }
  return os.str();
}

// ---- handle plumbing ---------------------------------------------------------

SendHandle Channel::post(Message msg) {
  MADO_CHECK(valid());
  return eng_->submit(peer_, id_, std::move(msg));
}

IncomingMessage Channel::begin_recv() {
  MADO_CHECK(valid());
  return IncomingMessage(eng_, peer_, id_, eng_->attach_recv(peer_, id_));
}

void Channel::flush() {
  MADO_CHECK(valid());
  eng_->flush_channel(peer_, id_);
}

bool Channel::probe() const {
  MADO_CHECK(valid());
  return eng_->probe_recv(peer_, id_);
}

void IncomingMessage::unpack(void* buf, std::size_t len, RecvMode mode) {
  MADO_CHECK_MSG(!finished_, "unpack after finish");
  eng_->post_unpack(peer_, ch_, seq_, next_, buf, len);
  if (mode == RecvMode::Express) eng_->wait_frag(peer_, ch_, seq_, next_);
  ++next_;
}

std::size_t IncomingMessage::next_size() {
  MADO_CHECK_MSG(!finished_, "next_size after finish");
  return eng_->wait_frag_size(peer_, ch_, seq_, next_);
}

Bytes IncomingMessage::unpack_bytes() {
  Bytes out(next_size());
  unpack(out.data(), out.size(), RecvMode::Express);
  return out;
}

void IncomingMessage::finish() {
  MADO_CHECK_MSG(!finished_, "finish called twice");
  eng_->finish_recv(peer_, ch_, seq_, next_);
  finished_ = true;
}

}  // namespace mado::core
