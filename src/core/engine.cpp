#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>
#include <thread>

#include "core/progress_lap.hpp"
#include "util/assert.hpp"
#include "util/crc32.hpp"
#include "util/log.hpp"

namespace mado::core {

namespace detail {
thread_local ProgressLap* t_progress_lap = nullptr;
}  // namespace detail

namespace {
/// Per-traffic-class latency histogram names. StatsRegistry::observe takes
/// a transparent string_view key, so passing these literals stays
/// allocation-free after the first use of each — the same contract the
/// zero-alloc decision loop relies on for counters.
constexpr const char* kLatHold[kTrafficClassCount] = {
    "lat.hold.control", "lat.hold.small_eager", "lat.hold.bulk",
    "lat.hold.putget"};
constexpr const char* kLatComplete[kTrafficClassCount] = {
    "lat.complete.control", "lat.complete.small_eager", "lat.complete.bulk",
    "lat.complete.putget"};

/// Which engine's progress thread (if any) is executing on this thread.
/// Lets a timer callback decide "am I already on the shard's owner?"
/// without any lock; distinct engines sharing a thread never confuse each
/// other because the engine pointer is part of the identity.
struct ProgThreadId {
  const void* engine = nullptr;
  std::size_t idx = 0;
};
thread_local ProgThreadId t_prog_id;
}  // namespace

Engine::Engine(NodeId self, EngineConfig cfg, TimerHost& timers)
    : self_(self), cfg_(std::move(cfg)),
      prog_nthreads_(cfg_.progress_threads == 0 ? 1 : cfg_.progress_threads),
      timers_(timers),
      strategy_(StrategyRegistry::instance().create(cfg_.strategy)),
      alive_(std::make_shared<std::atomic<bool>>(true)) {
  for (std::size_t i = 0; i < kTrafficClassCount; ++i)
    class_rail_[i].store(cfg_.class_rail[i], std::memory_order_relaxed);
  // Park slots exist for the engine's whole lifetime (not just while the
  // threads run): note_activity() may race start/stop_progress_thread.
  prog_slots_.reserve(prog_nthreads_);
  for (std::size_t i = 0; i < prog_nthreads_; ++i) {
    auto slot = std::make_unique<ProgSlot>();
    const std::string prefix = "prog.t" + std::to_string(i) + ".";
    slot->laps = &stats_.handle(prefix + "shard_laps");
    slot->steals = &stats_.handle(prefix + "steals");
    slot->wakeups = &stats_.handle(prefix + "wakeups");
    slot->idle_sleeps = &stats_.handle(prefix + "idle_sleeps");
    prog_slots_.push_back(std::move(slot));
  }
  prog_laps_total_ = &stats_.handle("prog.shard_laps");
  prog_steals_total_ = &stats_.handle("prog.steals");
  prog_wakeups_total_ = &stats_.handle("prog.wakeups");
  prog_idle_total_ = &stats_.handle("prog.idle_sleeps");
  prog_self_pumps_ = &stats_.handle("prog.self_pumps");
  timer_arms_ = &stats_.handle("timer.arms");
  timer_cancelled_ = &stats_.handle("timer.cancelled");
  timer_stale_ = &stats_.handle("timer.stale_fires");
}

Engine::~Engine() {
  stop_progress_thread();
  alive_->store(false);
  std::unique_lock<std::shared_mutex> lk(peers_mu_);
  for (auto& [id, ps] : peers_) {
    std::lock_guard<std::mutex> plk(ps->mu);
    for (auto& rail : ps->rails)
      if (rail->ep) rail->ep->close();
  }
}

// ---- topology -------------------------------------------------------------

RailId Engine::add_rail(NodeId peer, std::unique_ptr<drv::DriverEndpoint> ep) {
  MADO_CHECK(ep != nullptr);
  // A lossy datagram rail without the go-back-N layer would silently lose
  // traffic — refuse it loudly at wiring time instead.
  MADO_CHECK_MSG(ep->caps().lossless || cfg_.reliability,
                 "rail '" << ep->caps().name
                          << "' is lossy; enable cfg.reliability");
  PeerState* psp = nullptr;
  {
    std::unique_lock<std::shared_mutex> lk(peers_mu_);
    auto& slot = peers_[peer];
    if (!slot) {
      // Static shard→thread assignment: insertion order modulo thread
      // count. All rails added to this peer later share the owner (rail
      // affinity) — the owner's lap pumps the whole shard.
      const auto owner = static_cast<std::uint32_t>((peers_.size() - 1) %
                                                    prog_nthreads_);
      slot = std::make_unique<PeerState>(peer, cfg_, owner);
      // Register the shard: the root registry aggregates it on every read.
      stats_.add_child(&slot->stats);
    }
    psp = slot.get();
  }
  PeerState& ps = *psp;
  std::lock_guard<std::mutex> lk(ps.mu);
  MADO_CHECK_MSG(ps.rails.size() < 255, "too many rails");
  const RailId id = static_cast<RailId>(ps.rails.size());
  auto rail = std::make_unique<Rail>();
  rail->ep = std::move(ep);
  rail->port.engine = this;
  rail->port.peer = peer;
  rail->port.rail = id;
  rail->outstanding.assign(rail->ep->caps().track_count, 0);
  rail->ep->set_handler(&rail->port);
  ps.rails.push_back(std::move(rail));
  ps.any_rail_up.store(true, std::memory_order_release);
  return id;
}

std::size_t Engine::rail_count(NodeId peer) const {
  PeerState* ps = find_peer(peer);
  if (!ps) return 0;
  std::lock_guard<std::mutex> lk(ps->mu);
  return ps->rails.size();
}

drv::Capabilities Engine::rail_caps(NodeId peer, RailId rail) const {
  PeerState* ps = find_peer(peer);
  MADO_CHECK_MSG(ps != nullptr, "unknown peer " << peer);
  std::lock_guard<std::mutex> lk(ps->mu);
  MADO_CHECK_MSG(rail < ps->rails.size(), "no rail " << unsigned(rail)
                                                     << " toward " << peer);
  return ps->rails[rail]->ep->caps();
}

RailState Engine::rail_state(NodeId peer, RailId rail) const {
  PeerState* ps = find_peer(peer);
  MADO_CHECK_MSG(ps != nullptr, "unknown peer " << peer);
  std::lock_guard<std::mutex> lk(ps->mu);
  MADO_CHECK_MSG(rail < ps->rails.size(), "no rail " << unsigned(rail)
                                                     << " toward " << peer);
  return ps->rails[rail]->state;
}

Channel Engine::open_channel(NodeId peer, ChannelId id, TrafficClass cls) {
  MADO_CHECK_MSG(id != kRmaChannel,
                 "channel id is reserved for engine-internal RMA traffic");
  PeerState& ps = peer_ref(peer);
  std::lock_guard<std::mutex> lk(ps.mu);
  MADO_CHECK_MSG(!ps.rails.empty(), "no rails toward peer " << peer);
  auto [it, inserted] = ps.channels.emplace(id, ChannelState{});
  MADO_CHECK_MSG(inserted, "channel " << id << " already open to peer "
                                      << peer);
  it->second.cls = cls;
  // The peer shard is resolved exactly once, here; post() reuses it.
  return Channel(this, peer, id, cls, &ps);
}

Engine::PeerState* Engine::find_peer(NodeId peer) const {
  std::shared_lock<std::shared_mutex> lk(peers_mu_);
  auto it = peers_.find(peer);
  return it == peers_.end() ? nullptr : it->second.get();
}

Engine::PeerState& Engine::peer_ref(NodeId peer) const {
  PeerState* ps = find_peer(peer);
  MADO_CHECK_MSG(ps != nullptr, "unknown peer " << peer);
  return *ps;
}

RailId Engine::rail_for_class_locked(const PeerState& ps,
                                     TrafficClass cls) const {
  MADO_ASSERT(!ps.rails.empty());
  const RailId wanted = static_cast<RailId>(
      class_rail_[static_cast<std::size_t>(cls)].load(
          std::memory_order_relaxed) %
      ps.rails.size());
  if (ps.rails[wanted]->state != RailState::Down) return wanted;
  // Pinned rail is dead: fail over to any surviving rail.
  for (std::size_t i = 0; i < ps.rails.size(); ++i)
    if (ps.rails[i]->state != RailState::Down) return static_cast<RailId>(i);
  return wanted;  // every rail is dead — callers fail the operation
}

RailId Engine::rail_for_submit_locked(const PeerState& ps,
                                      TrafficClass cls) const {
  if (cfg_.eager_rail == EagerRailPolicy::ClassPinned ||
      ps.rails.size() < 2)
    return rail_for_class_locked(ps, cls);
  // LeastLoaded: queued + in-flight bytes, normalized by the rail's
  // effective bandwidth (per-rail hint wins over the profile's nominal
  // rate) so a loaded fast rail can still beat an idle slow one.
  bool found = false;
  std::size_t best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < ps.rails.size(); ++i) {
    const Rail& r = *ps.rails[i];
    if (r.state == RailState::Down) continue;
    const double load =
        static_cast<double>(r.backlog.byte_count() + r.inflight_bytes);
    const double cost = load / r.ep->caps().effective_bandwidth();
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
      found = true;
    }
  }
  if (!found) return rail_for_class_locked(ps, cls);  // all rails dead
  return static_cast<RailId>(best);
}

// ---- submit path -----------------------------------------------------------

SendHandle Engine::submit(NodeId peer, ChannelId ch, TrafficClass cls,
                          Message msg, void* peer_hint) {
  MADO_CHECK_MSG(!msg.empty(), "cannot post an empty message");
  PeerState& ps = peer_hint != nullptr ? *static_cast<PeerState*>(peer_hint)
                                       : peer_ref(peer);
  const auto nfrags = static_cast<std::uint16_t>(msg.fragment_count());
  auto state = std::make_shared<SendState>();
  state->pending.store(nfrags, std::memory_order_relaxed);
  state->submit_time = timers_.now();
  state->cls = cls;
  state->peer = peer;

  if (!ps.any_rail_up.load(std::memory_order_acquire)) {
    // Every rail toward the peer is dead: fail fast instead of queueing onto
    // a corpse (wait_send() then returns false immediately).
    state->failed.store(true, std::memory_order_release);
    ps.stats.inc("rel.failed_sends");
    return SendHandle(state);
  }

  if (ps.ring) {
    if (ps.mu.try_lock()) {
      // Uncontended fast path (flat combining): nobody holds the shard, so
      // skip the ring round-trip entirely — drain whatever racing threads
      // parked, then submit inline. A single application thread always
      // lands here, so post() latency with the ring enabled is identical
      // to the ring-disabled engine (and to the pre-sharding locked path).
      ps.lock_acqs->fetch_add(1, std::memory_order_relaxed);
      drain_submit_ring_locked(ps);
      submit_locked(ps, ch, std::move(msg), state, state->submit_time);
      ps.mu.unlock();
      // Even an inline submit leaves driver completions to poll (e.g. the
      // shm driver queues them locally): wake the shard's owner if parked.
      note_activity(ps);
      return SendHandle(state);
    }
    // Shard busy: park the message in the submit ring and return without
    // blocking. The current lock holder (the progressor, or a combining
    // submitter) drains it into the backlog at the next NIC-idle instant.
    // Between those instants parked submissions accumulate — widening the
    // optimizer's lookahead window exactly as the paper intends.
    SubmitOp op;
    op.channel = ch;
    op.msg = std::move(msg);
    op.state = state;
    op.enq_time = state->submit_time;
    if (ps.ring->try_push(std::move(op))) {
      ps.ring_pending.fetch_add(1, std::memory_order_release);
      note_activity(ps);
      if (ps.mu.try_lock()) {
        // The holder may have released between our failed try_lock and the
        // push landing; re-check so the op cannot linger un-drained until
        // the next pump.
        ps.lock_acqs->fetch_add(1, std::memory_order_relaxed);
        drain_submit_ring_locked(ps);
        ps.mu.unlock();
      }
      return SendHandle(state);
    }
    // Ring full: fall through to the locked path (which drains the ring
    // first, preserving submit order). `op` still owns the message — a
    // failed try_push does not consume its argument.
    ps.stats.inc("submit.ring_full");
    msg = std::move(op.msg);
  }

  {
    PeerLock lk(ps);
    drain_submit_ring_locked(ps);
    submit_locked(ps, ch, std::move(msg), state, state->submit_time);
  }
  note_activity(ps);
  return SendHandle(state);
}

std::size_t Engine::drain_submit_ring_locked(PeerState& ps) {
  if (!ps.ring) return 0;
  std::size_t n = 0;
  while (auto op = ps.ring->try_pop()) {
    submit_locked(ps, op->channel, std::move(op->msg), op->state,
                  op->enq_time);
    ps.ring_pending.fetch_sub(1, std::memory_order_release);
    ++n;
  }
  if (n > 0) ps.stats.inc("submit.ring_ops", n);
  return n;
}

void Engine::submit_locked(PeerState& ps, ChannelId ch, Message&& msg,
                           const SendStateRef& state, Nanos enq_time) {
  auto cit = ps.channels.find(ch);
  MADO_CHECK_MSG(cit != ps.channels.end(), "channel " << ch << " not open");
  ChannelState& cs = cit->second;

  const auto nfrags = static_cast<std::uint16_t>(msg.fragment_count());
  const RailId rail_id = rail_for_submit_locked(ps, cs.cls);
  Rail& rail = *ps.rails[rail_id];
  if (rail.state == RailState::Down) {
    // Every rail died between the submit-side fast check and this drain:
    // fail the message (its pending count never reaches zero, the failed
    // flag routes wait_send() to false).
    if (!state->failed.exchange(true, std::memory_order_acq_rel))
      ps.stats.inc("rel.failed_sends");
    return;
  }

  // Monotonic submit-time floor: ring enqueue timestamps from racing
  // threads can drain slightly out of clock order, but the backlog's flow
  // index requires submit_time non-decreasing in `order`.
  const Nanos sub_time = std::max(enq_time, ps.last_drain_time);
  ps.last_drain_time = sub_time;

  const MsgSeq seq = cs.next_tx_seq++;
  ++cs.outstanding_sends;

  const drv::Capabilities& caps = rail.ep->caps();
  const std::size_t rdv_thr = cfg_.rdv_threshold_override != 0
                                  ? cfg_.rdv_threshold_override
                                  : caps.rdv_threshold;

  auto& frags = msg.fragments();
  for (std::size_t i = 0; i < frags.size(); ++i) {
    Message::Fragment& mf = frags[i];
    TxFrag tf;
    tf.channel = ch;
    tf.msg_seq = seq;
    tf.idx = static_cast<FragIdx>(i);
    tf.nfrags_total = nfrags;
    tf.cls = cs.cls;
    tf.last = (i + 1 == frags.size());
    tf.state = state;
    tf.submit_time = sub_time;
    tf.order = next_submit_order_.fetch_add(1, std::memory_order_relaxed);

    if (mf.len >= rdv_thr) {
      // Rendezvous: the RTS control fragment takes this fragment's place in
      // the eager stream (so intra-message ordering of headers vs payload
      // is preserved); the bytes flow on bulk tracks after the CTS.
      const std::uint64_t token =
          next_rdv_token_.fetch_add(1, std::memory_order_relaxed);
      RdvTx rdv;
      rdv.peer = ps.id;
      rdv.channel = ch;
      rdv.total = mf.len;
      rdv.state = state;
      rdv.rts_time = sub_time;
      rdv.rts_timed = true;
      rdv.cls = cs.cls;
      if (!mf.owned.empty()) {
        rdv.storage = std::move(mf.owned);  // Safe mode: keep the copy alive
        rdv.data = rdv.storage.data();
      } else {
        rdv.data = mf.ext;
      }
      ps.rdv_tx.emplace(token, std::move(rdv));

      tf.kind = FragKind::RdvRts;
      tf.rdv_token = token;
      RtsBody body{token, mf.len};
      tf.owned = ps.slab.take(RtsBody::kWireSize);
      encode_rts(tf.owned, body);
      tf.len = tf.owned.size();
      ps.stats.inc("tx.rdv_rts");
      trace_locked(TraceEvent::RdvRts, ps.id, rail_id, token, mf.len);
    } else {
      tf.kind = FragKind::Data;
      const bool copy =
          mf.mode == SendMode::Safe ||
          (mf.mode == SendMode::Cheaper && mf.len <= cfg_.cheaper_copy_bound);
      if (copy) {
        if (!mf.owned.empty()) {
          tf.owned = std::move(mf.owned);  // Safe: already copied at pack()
        } else if (mf.len > 0) {
          // Cheaper-mode copy: reuse a slab buffer instead of allocating a
          // fresh vector per fragment (pure churn in steady state).
          tf.owned = ps.slab.take(mf.len);
          tf.owned.insert(tf.owned.end(), mf.ext, mf.ext + mf.len);
        }
      } else {
        tf.ext = mf.ext ? mf.ext : mf.owned.data();
        if (!mf.owned.empty()) {
          // Later-mode fragment packed with owned bytes cannot happen
          // (pack() only copies for Safe), but keep the copy if it does.
          tf.owned = std::move(mf.owned);
          tf.ext = nullptr;
        }
      }
      tf.len = mf.len;
    }
    rail.backlog.push(std::move(tf));
  }

  ps.stats.inc("tx.msgs");
  ps.stats.inc("tx.frags_submitted", nfrags);
  trace_locked(TraceEvent::MsgSubmit, ps.id, rail_id, ch, nfrags,
               msg.total_bytes());
  pump_rail_locked(ps, rail);
}

// ---- optimizer pump ---------------------------------------------------------

void Engine::pump_peer_locked(PeerState& ps) {
  for (auto& rail : ps.rails) pump_rail_locked(ps, *rail);
}

void Engine::pump_rail_locked(PeerState& ps, Rail& rail) {
  if (rail.state == RailState::Down) return;  // drained by the failover
  bool progressed = true;
  while (progressed) {
    progressed = false;
    if (!rail.shared_track()) {
      while (rail.track_free(rail.bulk_track())) {
        if (!try_send_bulk_locked(ps, rail)) break;
        progressed = true;
      }
      if (rail.track_free(drv::kTrackEager))
        if (try_send_eager_locked(ps, rail)) progressed = true;
    } else {
      // Single multiplexing unit: alternate eager and bulk so neither
      // starves the other (relevant for the E8 "shared track" policy).
      if (!rail.track_free(drv::kTrackEager)) break;
      bool sent;
      if (rail.bulk_turn) {
        sent = try_send_bulk_locked(ps, rail) ||
               try_send_eager_locked(ps, rail);
      } else {
        sent = try_send_eager_locked(ps, rail) ||
               try_send_bulk_locked(ps, rail);
      }
      if (sent) {
        rail.bulk_turn = !rail.bulk_turn;
        progressed = true;
      }
    }
  }
  // The backlog drained with a nagle hold still armed (the held fragment
  // got aggregated into an earlier packet, or a flush consumed it): cancel
  // the timer. A logically idle engine must hold no pending deadline —
  // otherwise has_pending() stays true and parked progress threads keep
  // waking for a timer that has nothing to do.
  if (rail.backlog.empty() && timers_.cancel(rail.nagle_timer))
    timer_cancelled_->fetch_add(1, std::memory_order_relaxed);
}

bool Engine::try_send_eager_locked(PeerState& ps, Rail& rail) {
  if (rail.backlog.empty()) return false;
  // Reliability window: hold new packets while a full go-back-N window is
  // awaiting acks (acks re-pump on arrival).
  if (cfg_.reliability && rail.rel[0].unacked.size() >= cfg_.rel_window)
    return false;
  StrategyEnv env{rail.ep->caps(), timers_.now(), cfg_.lookahead_window,
                  cfg_.eval_budget, cfg_.nagle_delay, &ps.stats};
  PacketDecision d = ps.strategy->next_packet(rail.backlog, env);
  ps.stats.inc("opt.decisions");
  // Surface the incremental flow-index maintenance cost (delta since the
  // last decision on this rail) so it stays observable.
  const std::uint64_t idx_ops = rail.backlog.flow_index_ops();
  if (idx_ops != rail.flow_index_ops_flushed) {
    ps.stats.inc("opt.flow_index_ops", idx_ops - rail.flow_index_ops_flushed);
    rail.flow_index_ops_flushed = idx_ops;
  }
  if (tracer_.load(std::memory_order_acquire)) {
    std::size_t bytes = 0;
    for (const TxFrag& f : d.frags) bytes += f.len;
    trace_locked(TraceEvent::Decision, ps.id, rail.port.rail,
                 static_cast<std::uint64_t>(d.action), d.frags.size(),
                 bytes);
  }
  switch (d.action) {
    case PacketDecision::Action::Send:
      MADO_CHECK_MSG(!d.frags.empty(), "strategy sent an empty packet");
      send_packet_locked(ps, rail, std::move(d.frags));
      return true;
    case PacketDecision::Action::Wait:
      schedule_nagle_timer_locked(ps, rail, d.wait_until);
      return false;
    case PacketDecision::Action::Idle:
      return false;
  }
  return false;
}

bool Engine::try_send_bulk_locked(PeerState& ps, Rail& rail) {
  if (!rail.track_free(rail.bulk_track())) return false;
  if (cfg_.reliability && rail.rel[1].unacked.size() >= cfg_.rel_window)
    return false;
  BulkChunk chunk;
  if (!pop_bulk_chunk_locked(ps, rail, chunk)) return false;
  send_bulk_chunk_locked(ps, rail, chunk);
  return true;
}

bool Engine::pop_bulk_chunk_locked(PeerState& ps, Rail& rail,
                                   BulkChunk& out) {
  if (!rail.bulk_q.empty()) {
    out = rail.bulk_q.front();
    rail.bulk_q.pop_front();
    return true;
  }
  if (cfg_.multirail == MultirailPolicy::DynamicSplit &&
      !ps.shared_bulk.empty()) {
    out = ps.shared_bulk.front();
    ps.shared_bulk.pop_front();
    return true;
  }
  if (cfg_.multirail == MultirailPolicy::Stripe && cfg_.stripe.steal) {
    // Work stealing: this rail went idle while a sibling still has queued
    // stripe chunks — the paper's "NIC becomes idle" activation generalized
    // across rails. Rob the tail of the most-loaded Up victim so its head
    // keeps streaming undisturbed; prediction error and mid-transfer load
    // shifts self-correct this way.
    Rail* victim = nullptr;
    std::size_t victim_bytes = 0;
    for (const auto& other : ps.rails) {
      if (other.get() == &rail || other->state == RailState::Down) continue;
      if (other->bulk_q.empty()) continue;
      std::size_t bytes = 0;
      for (const BulkChunk& c : other->bulk_q) bytes += c.len;
      if (bytes < cfg_.stripe.steal_min_bytes) continue;
      if (victim == nullptr || bytes > victim_bytes) {
        victim = other.get();
        victim_bytes = bytes;
      }
    }
    if (victim != nullptr) {
      out = victim->bulk_q.back();
      victim->bulk_q.pop_back();
      ps.stats.inc("stripe.steals");
      ps.stats.inc("stripe.steal_bytes", out.len);
      trace_locked(TraceEvent::BulkSteal, ps.id, rail.port.rail, out.token,
                   out.offset, out.len, victim->port.rail);
      return true;
    }
  }
  return false;
}

void Engine::send_packet_locked(PeerState& ps, Rail& rail, FragList&& frags) {
  const std::uint64_t token =
      next_pkt_token_.fetch_add(1, std::memory_order_relaxed);
  auto [recp, inserted] = ps.inflight.emplace(token);
  MADO_ASSERT(inserted);
  InFlight& rec = *recp;
  rec.peer = ps.id;
  rec.rail = rail.port.rail;
  rec.track = drv::kTrackEager;
  rec.frags = std::move(frags);

  PacketHeader ph;
  ph.nfrags = static_cast<std::uint16_t>(rec.frags.size());
  ph.src_node = self_;
  if (cfg_.reliability) {
    RelTrack& rt = rail.rel[0];
    ph.flags |= kPhFlagRelSeq | kPhFlagAck;
    ph.pkt_seq = rt.next_seq++;
    ph.ack_eager = rail.rel[0].rx_next;
    ph.ack_bulk = rail.rel[1].rx_next;
    rail.ack_owed = false;
    if (cfg_.payload_crc) {
      Crc32 crc;
      for (const TxFrag& f : rec.frags) crc.update(f.data(), f.len);
      ph.flags |= kPhFlagPayloadCrc;
      ph.payload_crc = crc.value();
    }
    rec.reliable = true;
    rec.rel_stream = 0;
    rec.rel_seq = ph.pkt_seq;
    rec.tx_outstanding = 1;
    rt.unacked.push_back(token);
  } else {
    ph.pkt_seq = rail.pkt_seq++;
  }
  mado::SmallVector<FragHeader, 16> fhs;
  fhs.reserve(rec.frags.size());
  for (const TxFrag& f : rec.frags) fhs.push_back(f.header());
  rec.header_block = ps.slab.take(PacketHeader::kWireSize +
                                  FragHeader::kWireSize * fhs.size());
  encode_header_block(rec.header_block, ph,
                      std::span<const FragHeader>(fhs.data(), fhs.size()));

  GatherList gl;
  gl.add(rec.header_block.data(), rec.header_block.size());
  for (const TxFrag& f : rec.frags) gl.add(f.data(), f.len);
  rec.wire_bytes = gl.total_bytes();
  if (rec.reliable) rail.rel[0].unacked_bytes += rec.wire_bytes;

  ++rail.outstanding[drv::kTrackEager];
  rail.inflight_bytes += rec.wire_bytes;
  ps.stats.inc("tx.packets");
  ps.stats.inc("tx.bytes", rec.wire_bytes);
  ps.stats.inc("tx.frags", rec.frags.size());
  ps.stats.observe("tx.pkt_frags", rec.frags.size());
  ps.stats.observe("tx.pkt_bytes", rec.wire_bytes);
  // Optimizer hold: how long each fragment waited in the collect layer
  // before leaving in a packet — submit → first favorable decision, split
  // by traffic class (nanoseconds).
  {
    const Nanos now = timers_.now();
    for (const TxFrag& f : rec.frags)
      ps.stats.observe(kLatHold[static_cast<std::size_t>(f.cls)],
                       now - std::min(now, f.submit_time));
  }
  MADO_TRACE("node " << self_ << " tx packet " << token << " nfrags="
                     << rec.frags.size() << " bytes=" << rec.wire_bytes);
  trace_locked(TraceEvent::PacketTx, ps.id, rail.port.rail, token,
               rec.wire_bytes, rec.frags.size(), ph.pkt_seq);
  rail.ep->send(drv::kTrackEager, gl, token);
  if (cfg_.reliability) arm_rto_locked(ps, rail, 0);
}

void Engine::send_bulk_chunk_locked(PeerState& ps, Rail& rail,
                                    BulkChunk chunk) {
  RdvTx* rdvp = ps.rdv_tx.find(chunk.token);
  MADO_CHECK(rdvp != nullptr);
  RdvTx& rdv = *rdvp;

  const std::uint64_t token =
      next_pkt_token_.fetch_add(1, std::memory_order_relaxed);
  auto [recp, inserted] = ps.inflight.emplace(token);
  MADO_ASSERT(inserted);
  InFlight& rec = *recp;
  rec.peer = ps.id;
  rec.rail = rail.port.rail;
  rec.track = rail.bulk_track();
  rec.is_bulk = true;
  rec.rdv_token = chunk.token;
  rec.chunk_off = chunk.offset;
  rec.chunk_len = chunk.len;
  rec.chunk_stripe = chunk.stripe;

  BulkHeader bh;
  bh.src_node = self_;
  bh.token = chunk.token;
  bh.offset = chunk.offset;
  bh.len = chunk.len;
  bh.stripe = chunk.stripe;
  if (cfg_.reliability) {
    RelTrack& rt = rail.rel[1];
    bh.flags |= kPhFlagRelSeq | kPhFlagAck;
    bh.pkt_seq = rt.next_seq++;
    bh.ack_eager = rail.rel[0].rx_next;
    bh.ack_bulk = rail.rel[1].rx_next;
    rail.ack_owed = false;
    if (cfg_.payload_crc) {
      bh.flags |= kPhFlagPayloadCrc;
      bh.payload_crc = Crc32::of(rdv.data + chunk.offset, chunk.len);
    }
    rec.reliable = true;
    rec.rel_stream = 1;
    rec.rel_seq = bh.pkt_seq;
    rec.tx_outstanding = 1;
    rt.unacked.push_back(token);
  }
  rec.header_block = ps.slab.take(BulkHeader::kWireSize);
  encode_bulk_header(rec.header_block, bh);

  GatherList gl;
  gl.add(rec.header_block.data(), rec.header_block.size());
  gl.add(rdv.data + chunk.offset, chunk.len);
  rec.wire_bytes = gl.total_bytes();
  if (rec.reliable) rail.rel[1].unacked_bytes += rec.wire_bytes;

  ++rail.outstanding[rec.track];
  rail.inflight_bytes += rec.wire_bytes;
  ps.stats.inc("tx.bulk_chunks");
  ps.stats.inc("tx.bytes", rec.wire_bytes);
  trace_locked(TraceEvent::BulkTx, ps.id, rail.port.rail, chunk.token,
               chunk.offset, chunk.len, chunk.stripe);
  rail.ep->send(rec.track, gl, token);
  if (cfg_.reliability) arm_rto_locked(ps, rail, 1);
}

void Engine::schedule_nagle_timer_locked(PeerState& ps, Rail& rail,
                                         Nanos when) {
  // Keep the earliest requested deadline: a strategy asking for an EARLIER
  // wake-up (new traffic shortening its hold window) moves the timer; a
  // later request while one is pending is a no-op. Re-arming physically
  // relocates the wheel entry in O(1) — no superseded closure lingers, no
  // dead deadline pollutes next_deadline().
  if (rail.nagle_timer.armed() && when >= rail.nagle_timer.deadline())
    return;
  trace_locked(TraceEvent::NagleWait, ps.id, rail.port.rail, when);
  if (!rail.nagle_timer.has_callback()) {
    const NodeId peer = ps.id;
    const RailId rail_id = rail.port.rail;
    rail.nagle_timer.set_callback(peer_timer_cb(
        ps.owner, [this, peer, rail_id](std::uint64_t gen) {
          PeerState* p = find_peer(peer);
          if (!p) return;
          {
            PeerLock lk(*p);
            if (rail_id >= p->rails.size()) return;
            Rail& r = *p->rails[rail_id];
            if (r.nagle_timer.gen() != gen) {
              // A re-arm or cancel raced this firing out of the wheel.
              timer_stale_->fetch_add(1, std::memory_order_relaxed);
              return;
            }
            drain_submit_ring_locked(*p);
            pump_rail_locked(*p, r);
          }
          wake_peer(*p);
        }));
  }
  timer_arms_->fetch_add(1, std::memory_order_relaxed);
  arm_peer_timer(ps, rail.nagle_timer, when);
}

// ---- completion path --------------------------------------------------------

void Engine::on_send_complete(NodeId peer, RailId rail_id, drv::TrackId track,
                              std::uint64_t token) {
  if (detail::ProgressLap* lap = detail::t_progress_lap;
      lap && lap->engine == this && lap->peer == peer) {
    // Batched drain: progress() is pumping this peer's endpoints — stage
    // the event and let it apply the batch under ONE lock acquisition.
    auto* evs = static_cast<std::vector<RxEvent>*>(lap->events);
    RxEvent ev;
    ev.kind = RxEvent::Kind::SendComplete;
    ev.rail = rail_id;
    ev.track = track;
    ev.token = token;
    evs->push_back(std::move(ev));
    return;
  }
  PeerState* ps = find_peer(peer);
  if (!ps) return;  // torn down
  {
    PeerLock lk(*ps);
    apply_send_complete_locked(*ps, rail_id, track, token);
    drain_submit_ring_locked(*ps);
    if (rail_id < ps->rails.size()) {
      Rail& rail = *ps->rails[rail_id];
      if (rail.state != RailState::Down) {
        // The NIC became idle: this is the optimizer's trigger (paper §3).
        pump_rail_locked(*ps, rail);
        maybe_send_ack_locked(*ps, rail);
      }
    }
  }
  wake_peer(*ps);
  // Out-of-lap delivery (a driver IO thread, not a progress lap): follow-up
  // work — acks owed, tracks freed — belongs to the shard's owner.
  note_activity(*ps);
}

void Engine::apply_send_complete_locked(PeerState& ps, RailId rail_id,
                                        drv::TrackId track,
                                        std::uint64_t token) {
  if (rail_id >= ps.rails.size()) return;
  Rail& rail = *ps.rails[rail_id];
  // A dead rail's in-flight records were drained by the failover; late
  // completions from its driver refer to nothing and carry no news.
  if (rail.state == RailState::Down) return;
  complete_send_locked(ps, rail, track, token);
}

void Engine::complete_send_locked(PeerState& ps, Rail& rail,
                                  drv::TrackId track, std::uint64_t token) {
  InFlight* livep = ps.inflight.find(token);
  MADO_CHECK_MSG(livep != nullptr, "completion for unknown packet");
  InFlight& live = *livep;
  MADO_ASSERT(live.track == track);
  MADO_ASSERT(rail.outstanding[track] > 0);
  --rail.outstanding[track];
  MADO_ASSERT(rail.inflight_bytes >= live.wire_bytes);
  rail.inflight_bytes -= live.wire_bytes;
  if (cfg_.reliability && live.reliable) {
    // The record doubles as the retransmit buffer: it survives driver
    // completion until the peer's cumulative ack covers its sequence (and
    // every transmission has left the driver — gather segments must stay
    // valid until their completion fires).
    MADO_ASSERT(live.tx_outstanding > 0);
    --live.tx_outstanding;
    if (!live.acked || live.tx_outstanding > 0) return;
  }
  InFlight rec = std::move(live);
  ps.inflight.erase(token);
  finalize_inflight_locked(ps, rec);
}

void Engine::finalize_inflight_locked(PeerState& ps, InFlight& rec) {
  ps.slab.recycle(std::move(rec.header_block));

  if (rec.is_bulk) {
    RdvTx* rdvp = ps.rdv_tx.find(rec.rdv_token);
    MADO_CHECK(rdvp != nullptr);
    RdvTx& rdv = *rdvp;
    rdv.completed += rec.chunk_len;
    MADO_ASSERT(rdv.completed <= rdv.total);
    if (rdv.completed == rdv.total) {
      // Null state: a one-sided transfer whose completion is tracked by the
      // remote side (put ack) or the requester (get buffer) — only the
      // local buffer hold is released here.
      if (rdv.state)
        complete_frag_state_locked(ps, rdv.channel, rdv.state);
      ps.stats.inc("tx.rdv_completed");
      if (rdv.rts_timed) {
        const Nanos now = timers_.now();
        ps.stats.observe("lat.rdv_complete",
                         now - std::min(now, rdv.rts_time));
      }
      trace_locked(TraceEvent::RdvDone, ps.id, 0, rec.rdv_token, rdv.total);
      ps.rdv_tx.erase(rec.rdv_token);
    }
    return;
  }
  for (TxFrag& f : rec.frags) {
    if (f.kind == FragKind::Data && f.state)
      complete_frag_state_locked(ps, f.channel, f.state);
    // Return the payload copy (or control body) for reuse by future
    // submits; referenced (Later-mode) fragments have nothing to recycle.
    ps.slab.recycle(std::move(f.owned));
  }
}

void Engine::complete_frag_state_locked(PeerState& ps, ChannelId ch,
                                        const SendStateRef& state) {
  const std::uint32_t prev =
      state->pending.fetch_sub(1, std::memory_order_acq_rel);
  MADO_ASSERT(prev > 0);
  if (prev != 1) return;
  // A failed message already released its channel slot in
  // fail_state_locked; a late completion must not double-release.
  if (state->failed.load(std::memory_order_acquire)) return;
  auto it = ps.channels.find(ch);
  if (it != ps.channels.end()) {
    MADO_ASSERT(it->second.outstanding_sends > 0);
    --it->second.outstanding_sends;
  }
  ps.stats.inc("tx.msgs_completed");
  // submit → every fragment fully transmitted, split by traffic class.
  const Nanos now = timers_.now();
  ps.stats.observe(kLatComplete[static_cast<std::size_t>(state->cls)],
                   now - std::min(now, state->submit_time));
}

// ---- reliability layer -------------------------------------------------------
//
// Per-(rail, stream) go-back-N. Stream 0 carries eager packets, stream 1
// bulk chunks; each has an independent u32 sequence space compared on the
// serial-number circle (seq_less). Acks are cumulative ("next expected
// seq") and piggyback on every reliable data packet; a standalone ack
// packet (zero fragments, kPhFlagAck without kPhFlagRelSeq — so it is
// never acked itself) goes out only when nothing else is about to carry
// one. The retransmit timer is a persistent cancellable TimerHandle per
// (rail, stream): ack progress cancels or restarts it in O(1), and the
// handle's generation guards the one remaining race (a firing that left
// the wheel before a concurrent cancel/re-arm). Everything below is inert
// unless cfg_.reliability.

void Engine::process_acks_locked(PeerState& ps, Rail& rail,
                                 std::uint32_t ack_eager,
                                 std::uint32_t ack_bulk) {
  const std::uint32_t acks[2] = {ack_eager, ack_bulk};
  bool progressed = false;
  for (int s = 0; s < 2; ++s) {
    RelTrack& rt = rail.rel[s];
    const std::uint32_t a = acks[s];
    // Cumulative + serial comparison: stale acks (retransmitted headers
    // carry the values current at first transmit) are simply no news.
    if (!seq_less(rt.acked, a)) continue;
    while (!rt.unacked.empty()) {
      const std::uint64_t token = rt.unacked.front();
      InFlight* recp = ps.inflight.find(token);
      MADO_ASSERT(recp != nullptr);
      InFlight& rec = *recp;
      if (!seq_less(rec.rel_seq, a)) break;
      rec.acked = true;
      rt.unacked.pop_front();
      rt.unacked_bytes -= std::min(rt.unacked_bytes, rec.wire_bytes);
      if (rec.tx_outstanding == 0) {
        // All transmissions left the driver: safe to release the record
        // (gather segments no longer referenced).
        InFlight done = std::move(rec);
        ps.inflight.erase(token);
        finalize_inflight_locked(ps, done);
      }
    }
    rt.acked = a;
    rt.retries = 0;
    rt.rto = cfg_.rel_rto_initial;
    // Ack progress retires the pending timeout. Fully acked: cancel — the
    // wheel entry is removed NOW, so an idle engine holds no RTO deadline
    // (the old gen-counter idiom left it to fire into a no-op, keeping
    // has_pending() true and waking parked threads for nothing). A tail
    // remains: restart the clock for it (cancel + fresh arm, both O(1)).
    if (timers_.cancel(rt.rto_timer))
      timer_cancelled_->fetch_add(1, std::memory_order_relaxed);
    if (!rt.unacked.empty()) arm_rto_locked(ps, rail, s);
    progressed = true;
  }
  // The peer is demonstrably hearing us again.
  if (progressed && rail.state == RailState::Degraded)
    rail.state = RailState::Up;
}

void Engine::arm_rto_locked(PeerState& ps, Rail& rail, int stream) {
  RelTrack& rt = rail.rel[stream];
  if (rt.rto_timer.armed() || rt.unacked.empty()) return;
  if (rt.rto == 0) rt.rto = cfg_.rel_rto_initial;
  rt.armed_acked = rt.acked;
  if (!rt.rto_timer.has_callback()) {
    // Installed once per (rail, stream) for the rail's lifetime; every
    // subsequent re-arm is an O(1), allocation-free wheel splice. The
    // armed_acked check below stays even though cancel() is now physical:
    // a firing that already left the wheel when the ack-path cancel ran
    // (cancel returned false, generation unchanged) still reaches this
    // callback — progress since arming means "not a timeout".
    const NodeId peer = ps.id;
    const RailId rail_id = rail.port.rail;
    rt.rto_timer.set_callback(peer_timer_cb(
        ps.owner, [this, peer, rail_id, stream](std::uint64_t gen) {
          PeerState* p = find_peer(peer);
          if (!p) return;
          {
            PeerLock lk(*p);
            if (rail_id >= p->rails.size()) return;
            Rail& r = *p->rails[rail_id];
            RelTrack& t = r.rel[stream];
            if (t.rto_timer.gen() != gen) {
              // A re-arm or cancel raced this firing out of the wheel.
              timer_stale_->fetch_add(1, std::memory_order_relaxed);
              return;
            }
            if (r.state == RailState::Down || t.unacked.empty()) return;
            if (t.armed_acked != t.acked) {
              // Acks advanced since arming: not a timeout — restart the
              // clock for the remaining tail.
              arm_rto_locked(*p, r, stream);
            } else {
              rto_expired_locked(*p, r, stream);
            }
            drain_submit_ring_locked(*p);
            // rto_expired may have failed the rail over: pump the whole
            // peer so replayed traffic starts flowing on the survivor at
            // once.
            pump_peer_locked(*p);
          }
          wake_peer(*p);
        }));
  }
  // Floor the deadline with the cost model's estimate of draining every
  // un-acked byte on the rail (both streams share the physical link) plus
  // an ack round trip. A bare fixed RTO fires spuriously the moment one
  // bulk chunk's serialization time exceeds it; the optimizer and the
  // driver share the NIC cost model, so the engine can know the drain time
  // without measuring it (the paper's "parameterized by the capabilities
  // of the underlying network drivers").
  const sim::NicModel model = rail.ep->caps().model();
  const std::size_t pending_bytes =
      rail.rel[0].unacked_bytes + rail.rel[1].unacked_bytes;
  const Nanos wire_floor =
      model.busy_time(pending_bytes, 1) + 2 * model.propagation_latency();
  timer_arms_->fetch_add(1, std::memory_order_relaxed);
  arm_peer_timer(ps, rt.rto_timer, timers_.now() + rt.rto + wire_floor);
}

void Engine::rto_expired_locked(PeerState& ps, Rail& rail, int stream) {
  RelTrack& rt = rail.rel[stream];
  ++rt.retries;
  ps.stats.inc("rel.rto_backoffs");
  if (rt.retries > cfg_.rel_max_retries) {
    // The link is not coming back: give up and fail over.
    fail_rail_locked(ps, rail);
    return;
  }
  if (rail.state == RailState::Up) rail.state = RailState::Degraded;
  // Go-back-N: resend every unacked packet on this stream, oldest first
  // (the receiver discards anything past the first gap, so the whole tail
  // needs to fly again).
  for (const std::uint64_t token : rt.unacked) {
    InFlight* rec = ps.inflight.find(token);
    MADO_ASSERT(rec != nullptr);
    retransmit_locked(ps, rail, token, *rec);
  }
  rt.rto = std::min<Nanos>(rt.rto * 2, cfg_.rel_rto_max);
  arm_rto_locked(ps, rail, stream);
}

void Engine::retransmit_locked(PeerState& ps, Rail& rail, std::uint64_t token,
                               InFlight& rec) {
  // Rebuild the gather list from the retained record; the driver token is
  // reused so every completion (original or retransmit) finds the record.
  GatherList gl;
  gl.add(rec.header_block.data(), rec.header_block.size());
  if (rec.is_bulk) {
    RdvTx* rdv = ps.rdv_tx.find(rec.rdv_token);
    MADO_CHECK(rdv != nullptr);
    gl.add(rdv->data + rec.chunk_off, rec.chunk_len);
  } else {
    for (const TxFrag& f : rec.frags) gl.add(f.data(), f.len);
  }
  ++rec.tx_outstanding;
  ++rail.outstanding[rec.track];
  rail.inflight_bytes += rec.wire_bytes;
  ps.stats.inc("rel.retransmits");
  ps.stats.inc("tx.bytes", rec.wire_bytes);
  trace_locked(TraceEvent::RelRetx, rec.peer, rec.rail, token,
               rec.rel_stream, rail.rel[rec.rel_stream].retries);
  MADO_TRACE("node " << self_ << " retransmit token=" << token << " stream="
                     << int(rec.rel_stream) << " seq=" << rec.rel_seq);
  rail.ep->send(rec.track, gl, token);
}

void Engine::maybe_send_ack_locked(PeerState& ps, Rail& rail) {
  if (!cfg_.reliability || !rail.ack_owed) return;
  if (rail.state == RailState::Down) return;
  // A queued data packet will piggyback the ack for free; only spend a
  // standalone packet when the stream toward the peer is otherwise silent.
  if (!rail.backlog.empty()) return;
  if (!rail.track_free(drv::kTrackEager)) return;

  const std::uint64_t token =
      next_pkt_token_.fetch_add(1, std::memory_order_relaxed);
  auto [recp, inserted] = ps.inflight.emplace(token);
  MADO_ASSERT(inserted);
  InFlight& rec = *recp;
  rec.peer = ps.id;
  rec.rail = rail.port.rail;
  rec.track = drv::kTrackEager;

  PacketHeader ph;
  ph.flags = kPhFlagAck;  // no RelSeq: acks are never themselves acked
  ph.nfrags = 0;
  ph.src_node = self_;
  ph.ack_eager = rail.rel[0].rx_next;
  ph.ack_bulk = rail.rel[1].rx_next;
  rail.ack_owed = false;
  rec.header_block = ps.slab.take(PacketHeader::kWireSize);
  encode_header_block(rec.header_block, ph, std::span<const FragHeader>());

  GatherList gl;
  gl.add(rec.header_block.data(), rec.header_block.size());
  rec.wire_bytes = gl.total_bytes();
  ++rail.outstanding[drv::kTrackEager];
  rail.inflight_bytes += rec.wire_bytes;
  ps.stats.inc("rel.acks_tx");
  ps.stats.inc("tx.bytes", rec.wire_bytes);
  rail.ep->send(drv::kTrackEager, gl, token);
}

bool Engine::rel_rx_accept_locked(PeerState& ps, Rail& rail, int stream,
                                  std::uint8_t flags, std::uint32_t seq) {
  if (!cfg_.reliability || !(flags & kPhFlagRelSeq)) return true;
  RelTrack& rt = rail.rel[stream];
  if (seq == rt.rx_next) {
    ++rt.rx_next;
    rail.ack_owed = true;
    return true;
  }
  rail.ack_owed = true;  // re-ack either way so the sender resynchronizes
  if (seq_less(seq, rt.rx_next)) {
    // Retransmitted copy of something already delivered (our ack was lost
    // or late): suppress the duplicate, refresh the ack.
    ps.stats.inc("rel.dup_drops");
  } else {
    // Gap: a go-back-N receiver drops past the first hole; the sender's
    // timeout resends the whole tail in order.
    ps.stats.inc("rel.ooo_drops");
  }
  return false;
}

void Engine::fail_state_locked(PeerState& ps, ChannelId ch,
                               const SendStateRef& state) {
  if (!state) return;
  if (state->failed.exchange(true, std::memory_order_acq_rel)) return;
  ps.stats.inc("rel.failed_sends");
  if (ch == kRmaChannel) return;
  auto it = ps.channels.find(ch);
  if (it != ps.channels.end() && it->second.outstanding_sends > 0)
    --it->second.outstanding_sends;  // the message is over, unsuccessfully
}

void Engine::note_rdv_done_locked(PeerState& ps, std::uint64_t token) {
  if (!cfg_.reliability) return;
  if (!ps.rdv_rx_done.insert(token)) return;
  ps.rdv_rx_done_fifo.push_back(token);
  // Bounded by cfg_.rdv_done_window: old entries age out. A replay can
  // only arrive while its sender still holds the un-acked record, which is
  // far fresher than the retention horizon here.
  while (ps.rdv_rx_done_fifo.size() > cfg_.rdv_done_window) {
    ps.rdv_rx_done.erase(ps.rdv_rx_done_fifo.front());
    ps.rdv_rx_done_fifo.pop_front();
    ps.stats.inc("cap.rdv_done_evictions");
  }
}

bool Engine::rdv_was_done_locked(const PeerState& ps,
                                 std::uint64_t token) const {
  return cfg_.reliability && ps.rdv_rx_done.contains(token);
}

void Engine::on_link_down(NodeId peer, RailId rail_id) {
  if (detail::ProgressLap* lap = detail::t_progress_lap;
      lap && lap->engine == this && lap->peer == peer) {
    auto* evs = static_cast<std::vector<RxEvent>*>(lap->events);
    RxEvent ev;
    ev.kind = RxEvent::Kind::LinkDown;
    ev.rail = rail_id;
    evs->push_back(std::move(ev));
    return;
  }
  PeerState* ps = find_peer(peer);
  if (!ps) return;
  {
    PeerLock lk(*ps);
    apply_link_down_locked(*ps, rail_id);
    drain_submit_ring_locked(*ps);
    pump_peer_locked(*ps);
  }
  wake_peer(*ps);
  note_activity(*ps);  // failover queued replays for the owner to pump
}

void Engine::apply_link_down_locked(PeerState& ps, RailId rail_id) {
  if (rail_id >= ps.rails.size()) return;
  Rail& rail = *ps.rails[rail_id];
  if (rail.state == RailState::Down) return;
  MADO_WARN("node " << self_ << ": rail " << int(rail_id) << " to peer "
                    << ps.id << " is down");
  fail_rail_locked(ps, rail);
}

void Engine::fail_rail_locked(PeerState& ps, Rail& rail) {
  if (rail.state == RailState::Down) return;
  rail.state = RailState::Down;
  ps.stats.inc("rel.rail_failovers");

  // Cancel every pending timer on this rail (nagle + both RTOs). Physical
  // cancellation: the wheel entries are unlinked here, not left to fire
  // into no-ops at their dead deadlines.
  if (timers_.cancel(rail.nagle_timer))
    timer_cancelled_->fetch_add(1, std::memory_order_relaxed);
  for (auto& rt : rail.rel)
    if (timers_.cancel(rt.rto_timer))
      timer_cancelled_->fetch_add(1, std::memory_order_relaxed);
  rail.ack_owed = false;

  Rail* survivor = nullptr;
  for (auto& r : ps.rails)
    if (r.get() != &rail && r->state != RailState::Down) {
      survivor = r.get();
      break;
    }
  // Submit-side fail-fast flag: once no rail is left, post()/rma() return
  // dead handles without even taking the peer lock.
  ps.any_rail_up.store(survivor != nullptr, std::memory_order_release);

  std::size_t replayed_frags = 0, replayed_chunks = 0, failed_sends = 0;
  const RailId rail_id = rail.port.rail;

  // Replayed fragments re-enter the collect layer "now" with fresh orders
  // (the flow index requires monotone (order, submit_time) pairs).
  const Nanos replay_time = std::max(timers_.now(), ps.last_drain_time);
  ps.last_drain_time = replay_time;

  // 1. In-flight records on this rail. Acked ones are finalized (the peer
  //    has the bytes; only the driver completion is lost with the link).
  //    Un-acked reliable ones replay onto the survivor in send order —
  //    their payload storage lives in the record, so replay is a re-queue,
  //    not a copy. Without reliability (or a survivor) the sends fail.
  std::vector<std::uint64_t> tokens;
  ps.inflight.for_each([&](std::uint64_t token, const InFlight& rec) {
    if (rec.rail == rail_id) tokens.push_back(token);
  });
  for (auto& rt : rail.rel) {
    rt.unacked.clear();
    rt.unacked_bytes = 0;
  }

  for (const std::uint64_t token : tokens) {
    InFlight* recp = ps.inflight.find(token);
    InFlight rec = std::move(*recp);
    ps.inflight.erase(token);
    if (rec.reliable && rec.acked) {
      finalize_inflight_locked(ps, rec);
      continue;
    }
    if (rec.reliable && survivor && cfg_.reliability) {
      if (rec.is_bulk) {
        // Re-queue the chunk; it rides the survivor's bulk stream with a
        // fresh sequence number.
        BulkChunk chunk{rec.rdv_token, rec.chunk_off, rec.chunk_len,
                        rec.chunk_stripe};
        if (cfg_.multirail == MultirailPolicy::DynamicSplit)
          ps.shared_bulk.push_back(chunk);
        else
          survivor->bulk_q.push_back(chunk);
        ++replayed_chunks;
        ps.stats.inc("rel.replayed_chunks");
      } else {
        for (TxFrag& f : rec.frags) {
          f.submit_time = replay_time;
          f.order = next_submit_order_.fetch_add(1, std::memory_order_relaxed);
          ++replayed_frags;
          ps.stats.inc("rel.replayed_frags");
          if (f.kind == FragKind::RdvCts || f.kind == FragKind::RmaAck)
            survivor->backlog.push_control(std::move(f));
          else
            survivor->backlog.push(std::move(f));
        }
        rec.frags.clear();
      }
      ps.slab.recycle(std::move(rec.header_block));
      continue;
    }
    // No survivor (or reliability off): the bytes are gone.
    ++failed_sends;
    if (rec.is_bulk) {
      if (RdvTx* rdv = ps.rdv_tx.find(rec.rdv_token))
        fail_state_locked(ps, rdv->channel, rdv->state);
    } else {
      for (TxFrag& f : rec.frags) {
        fail_state_locked(ps, f.channel, f.state);
        ps.slab.recycle(std::move(f.owned));
      }
    }
    ps.slab.recycle(std::move(rec.header_block));
  }

  // 2. The dead rail's backlog: control first (CTS/acks unblock the peer),
  //    then data flows oldest-head-first — the same order the optimizer
  //    would have consumed them in.
  while (rail.backlog.has_control()) {
    TxFrag f = rail.backlog.pop_control();
    if (survivor) {
      f.submit_time = replay_time;
      f.order = next_submit_order_.fetch_add(1, std::memory_order_relaxed);
      ++replayed_frags;
      survivor->backlog.push_control(std::move(f));
    } else {
      ++failed_sends;
      fail_state_locked(ps, f.channel, f.state);
      ps.slab.recycle(std::move(f.owned));
    }
  }
  while (!rail.backlog.empty()) {
    TxFrag f = rail.backlog.pop(rail.backlog.oldest_flow());
    if (survivor) {
      f.submit_time = replay_time;
      f.order = next_submit_order_.fetch_add(1, std::memory_order_relaxed);
      ++replayed_frags;
      survivor->backlog.push(std::move(f));
    } else {
      ++failed_sends;
      fail_state_locked(ps, f.channel, f.state);
      ps.slab.recycle(std::move(f.owned));
    }
  }

  // 3. Queued bulk chunks follow their policy onto the survivor.
  while (!rail.bulk_q.empty()) {
    BulkChunk chunk = rail.bulk_q.front();
    rail.bulk_q.pop_front();
    if (survivor) {
      if (cfg_.multirail == MultirailPolicy::DynamicSplit)
        ps.shared_bulk.push_back(chunk);
      else
        survivor->bulk_q.push_back(chunk);
      ++replayed_chunks;
    }
  }

  // 4. No survivor: purge everything that would wedge flush() — the sends
  //    already failed above, keeping their queues would just hang waiters.
  if (!survivor) {
    ps.shared_bulk.clear();
    // fail_state_locked touches channels/send states only, never rdv_tx
    // itself — safe inside for_each (no same-table mutation).
    ps.rdv_tx.for_each([&](std::uint64_t, RdvTx& rdv) {
      fail_state_locked(ps, rdv.channel, rdv.state);
    });
    ps.rdv_tx.clear();
  }

  // The driver may still deliver late completions for this rail; they are
  // ignored (apply_send_complete early-returns on Down), so the accounting
  // is reset here in one stroke.
  rail.outstanding.assign(rail.outstanding.size(), 0);
  rail.inflight_bytes = 0;

  trace_locked(TraceEvent::RailDown, ps.id, rail_id, replayed_frags,
               replayed_chunks, failed_sends);
  MADO_WARN("node " << self_ << ": failover off rail " << int(rail_id)
                    << " to peer " << ps.id << ": replayed "
                    << replayed_frags << " frags, " << replayed_chunks
                    << " chunks, failed " << failed_sends << " sends"
                    << (survivor ? "" : " (no surviving rail)"));
}

// ---- progression / waiting -------------------------------------------------

bool Engine::pump_shard(PeerState& ps, std::vector<RxEvent>& events,
                        std::vector<drv::DriverEndpoint*>& eps) {
  // Claim the shard: whoever wins drives the whole pump. A lost claim means
  // another thread (owner, stealer, or a manual progress() caller) is
  // already on it — skipping is correct, not a missed lap.
  bool expected = false;
  if (!ps.pumping.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel))
    return false;
  events.clear();
  eps.clear();
  {
    // Brief: snapshot the endpoint pointers (rails vector only grows, but
    // add_rail may be concurrent during setup).
    std::lock_guard<std::mutex> lk(ps.mu);
    for (auto& rail : ps.rails) eps.push_back(rail->ep.get());
  }
  // Pump every endpoint with the lap context active: driver callbacks
  // stage into `events` instead of taking the peer lock per event.
  {
    detail::ProgressLap lap;
    lap.engine = this;
    lap.peer = ps.id;
    lap.events = &events;
    detail::LapScope scope(&lap);
    for (auto* ep : eps) ep->progress();
  }
  const bool have_ring = ps.ring_pending.load(std::memory_order_acquire) > 0;
  bool did_work = false;
  if (!events.empty() || have_ring) {
    did_work = true;
    {
      // ONE peer-lock acquisition applies the whole batch in arrival
      // order, drains parked submissions, pumps, and settles owed acks.
      PeerLock lk(ps);
      for (RxEvent& ev : events) {
        switch (ev.kind) {
          case RxEvent::Kind::SendComplete:
            apply_send_complete_locked(ps, ev.rail, ev.track, ev.token);
            break;
          case RxEvent::Kind::Packet:
            apply_packet_locked(ps, ev.rail, ev.payload);
            break;
          case RxEvent::Kind::SendFailed:
          case RxEvent::Kind::LinkDown:
            apply_link_down_locked(ps, ev.rail);
            break;
        }
      }
      drain_submit_ring_locked(ps);
      pump_peer_locked(ps);
      if (cfg_.reliability)
        for (auto& rail : ps.rails) maybe_send_ack_locked(ps, *rail);
    }
    wake_peer(ps);
  }
  ps.pumping.store(false, std::memory_order_release);
  return did_work;
}

bool Engine::progress() {
  bool did_work = false;
  // Snapshot the peer list (read-mostly map; shards are never erased).
  std::vector<PeerState*> peers;
  {
    std::shared_lock<std::shared_mutex> lk(peers_mu_);
    peers.reserve(peers_.size());
    for (auto& [id, ps] : peers_) peers.push_back(ps.get());
  }
  std::vector<RxEvent> events;
  std::vector<drv::DriverEndpoint*> eps;
  for (PeerState* ps : peers)
    if (pump_shard(*ps, events, eps)) did_work = true;
  // With no progress threads attached, the manual caller also owns the
  // deferred timer queues (nothing else would ever drain them).
  if (!prog_running_.load(std::memory_order_acquire))
    for (auto& slot : prog_slots_)
      if (drain_deferred(*slot) > 0) did_work = true;
  if (timers_.run_due() > 0) did_work = true;
  return did_work;
}

std::size_t Engine::drain_deferred(ProgSlot& s) {
  std::vector<std::function<void()>> fns;
  {
    std::lock_guard<std::mutex> lk(s.defer_mu);
    fns.swap(s.deferred);
  }
  for (auto& fn : fns) fn();  // outside defer_mu: fn may defer again
  return fns.size();
}

Nanos Engine::park_bound() const {
  Nanos bound = cfg_.prog_idle_wait;
  const Nanos next = timers_.next_deadline();
  if (next != TimerHost::kNoDeadline) {
    const Nanos now = timers_.now();
    bound = std::min(bound, next > now ? next - now : Nanos{1});
  }
  return std::max(bound, Nanos{1});
}

void Engine::schedule_peer_timer(Nanos when, std::uint32_t owner,
                                 std::function<void()> fn) {
  timers_.schedule_at(when, [this, alive = alive_, owner,
                             fn = std::move(fn)]() mutable {
    if (!alive->load()) return;
    // Owner affinity: run_due() may execute this on any progress thread
    // (or an application thread self-pumping). If that is not the shard's
    // owner while progress threads run, hand the callback to the owner —
    // the shard's hot state stays on one core and the timer contends with
    // exactly the thread that owns the peer lock anyway.
    if (prog_running_.load(std::memory_order_acquire) && prog_nthreads_ > 1 &&
        !(t_prog_id.engine == this && t_prog_id.idx == owner)) {
      ProgSlot& s = *prog_slots_[owner];
      {
        std::lock_guard<std::mutex> lk(s.defer_mu);
        s.deferred.push_back(std::move(fn));
      }
      wake_slot(s);
      return;
    }
    fn();
  });
}

TimerHandle::Callback Engine::peer_timer_cb(
    std::uint32_t owner, std::function<void(std::uint64_t)> fn) {
  // Same affinity policy as schedule_peer_timer, but built once per handle:
  // steady-state re-arms reuse this closure, so the per-packet RTO path
  // never allocates. (The foreign-thread defer below copies fn — that path
  // only runs under multi-threaded progress, never in the arm itself.)
  return [this, alive = alive_, owner,
          fn = std::move(fn)](std::uint64_t gen) {
    if (!alive->load()) return;
    if (prog_running_.load(std::memory_order_acquire) && prog_nthreads_ > 1 &&
        !(t_prog_id.engine == this && t_prog_id.idx == owner)) {
      ProgSlot& s = *prog_slots_[owner];
      {
        std::lock_guard<std::mutex> lk(s.defer_mu);
        s.deferred.push_back([fn, gen] { fn(gen); });
      }
      wake_slot(s);
      return;
    }
    fn(gen);
  };
}

void Engine::arm_peer_timer(PeerState& ps, TimerHandle& h, Nanos when) {
  timers_.arm(h, when);
  // A thread parked against the previous earliest deadline (park_bound
  // snapshotted BEFORE this arm) would sleep out its full bound and fire
  // this timer late. Wake the shard's owner so it re-derives the bound.
  // Slot mutexes sit below the peer lock in the lock order, so notifying
  // from under ps.mu is legal (same precedent as note_activity in rma_put).
  wake_slot(*prog_slots_[ps.owner]);
}

void Engine::set_external_progress(std::function<bool()> fn) {
  std::lock_guard<std::mutex> lk(misc_mu_);
  external_progress_ = std::move(fn);
}

void Engine::set_tracer(Tracer* tracer) {
  tracer_.store(tracer, std::memory_order_release);
  // Detach quiescence: every trace site runs under some peer lock or under
  // peers_mu_. Sweeping all of them (one at a time) guarantees that when we
  // return, no thread still references the previous tracer — the caller may
  // destroy it.
  std::unique_lock<std::shared_mutex> lk(peers_mu_);
  for (auto& [id, ps] : peers_) {
    std::lock_guard<std::mutex> plk(ps->mu);
  }
}

std::map<std::string, std::uint64_t, std::less<>> Engine::counters_snapshot()
    const {
  // Sharded counters aggregate on read: no engine or peer lock, so any
  // sampling rate is safe against the hot path.
  return stats_.counters();
}

void Engine::on_send_failed(NodeId peer, RailId rail_id, drv::TrackId track,
                            std::uint64_t token) {
  (void)track;
  (void)token;
  // A send the driver will never complete means the wire under the rail is
  // gone. Failing over the whole rail replays or fails this token's record
  // together with everything else queued behind it — and is idempotent, so
  // the burst of failures a draining tx thread emits (followed by the
  // driver's own on_link_down) collapses into one failover.
  on_link_down(peer, rail_id);
}

void Engine::progress_thread_main(std::size_t idx) {
  t_prog_id = ProgThreadId{this, idx};
  ProgSlot& slot = *prog_slots_[idx];

  // Ownership partition, re-snapshotted only when add_rail grows the map
  // (peers are never erased, so a stale snapshot is merely incomplete).
  std::vector<PeerState*> mine, others;
  std::size_t seen_peers = 0;
  std::vector<RxEvent> events;
  std::vector<drv::DriverEndpoint*> eps;

  // One full poll pass: deferred timers first (they were routed here for
  // affinity), then every owned shard, then — only when idle and past the
  // yield phase — at most one stolen shard, then due timers.
  auto lap = [&](bool steal_ok) {
    {
      std::shared_lock<std::shared_mutex> lk(peers_mu_);
      if (peers_.size() != seen_peers) {
        seen_peers = peers_.size();
        mine.clear();
        others.clear();
        for (auto& [id, ps] : peers_)
          (ps->owner == idx ? mine : others).push_back(ps.get());
      }
    }
    bool work = drain_deferred(slot) > 0;
    for (PeerState* ps : mine)
      if (pump_shard(*ps, events, eps)) work = true;
    if (steal_ok && !work) {
      // Work stealing: this thread has nothing of its own — help a busy
      // (or wedged) owner by pumping ONE of its shards. One per lap keeps
      // the help incremental; the victim's shards stay primarily its own.
      for (PeerState* ps : others) {
        if (pump_shard(*ps, events, eps)) {
          work = true;
          slot.steals->fetch_add(1, std::memory_order_relaxed);
          prog_steals_total_->fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    }
    if (timers_.run_due() > 0) work = true;
    slot.laps->fetch_add(1, std::memory_order_relaxed);
    prog_laps_total_->fetch_add(1, std::memory_order_relaxed);
    return work;
  };

  // Adaptive backoff: spin (immediate re-poll) while work is fresh, yield
  // the core when a burst ends, then park on the slot's cv. The park stays
  // bounded (park_bound) because driver IO threads cannot notify — they
  // only feed queues the lap polls — and due timers must not oversleep.
  const std::size_t spin_laps = cfg_.prog_spin_laps;
  const std::size_t yield_laps = spin_laps + cfg_.prog_yield_laps;
  std::size_t idle = 0;
  while (!stop_progress_.load(std::memory_order_acquire)) {
    if (lap(idle >= yield_laps)) {
      idle = 0;
      continue;
    }
    ++idle;
    if (idle <= spin_laps) continue;
    if (idle <= yield_laps) {
      std::this_thread::yield();
      continue;
    }
    // Eventcount park (closes the lost-wakeup race the old global park
    // had): record the ticket, arm the slot, poll ONCE more — activity
    // published before the arm is caught by that poll; activity after it
    // bumps the ticket, which the check under the lock sees. Either way a
    // submit racing the park costs at most one lap, never a full
    // prog_idle_wait.
    const std::uint64_t ticket =
        slot.ticket.load(std::memory_order_seq_cst);
    slot.armed.store(true, std::memory_order_seq_cst);
    if (lap(true)) {
      slot.armed.store(false, std::memory_order_seq_cst);
      idle = 0;
      continue;
    }
    {
      std::unique_lock<std::mutex> lk(slot.mu);
      if (stop_progress_.load(std::memory_order_acquire)) {
        slot.armed.store(false, std::memory_order_seq_cst);
        break;
      }
      if (slot.ticket.load(std::memory_order_seq_cst) == ticket) {
        slot.idle_sleeps->fetch_add(1, std::memory_order_relaxed);
        prog_idle_total_->fetch_add(1, std::memory_order_relaxed);
        slot.parked.store(true, std::memory_order_seq_cst);
        slot.cv.wait_for(lk, std::chrono::nanoseconds(park_bound()));
        slot.parked.store(false, std::memory_order_seq_cst);
      }
    }
    slot.armed.store(false, std::memory_order_seq_cst);
    slot.wakeups->fetch_add(1, std::memory_order_relaxed);
    prog_wakeups_total_->fetch_add(1, std::memory_order_relaxed);
    // Resume in the yield phase: if still idle we re-park quickly instead
    // of burning a fresh spin window.
    idle = yield_laps;
  }
  // Teardown: one last pass over the owned shards so RxEvents and ring ops
  // staged while the stop flag was being raised drain before the join.
  lap(false);
  t_prog_id = ProgThreadId{};
}

void Engine::start_progress_thread() {
  MADO_CHECK_MSG(progress_threads_.empty(), "progress threads already running");
  stop_progress_.store(false);
  prog_running_.store(true, std::memory_order_release);
  progress_threads_.reserve(prog_nthreads_);
  for (std::size_t i = 0; i < prog_nthreads_; ++i)
    progress_threads_.emplace_back([this, i] { progress_thread_main(i); });
}

void Engine::stop_progress_thread() {
  if (progress_threads_.empty()) return;
  stop_progress_.store(true, std::memory_order_seq_cst);
  for (auto& slot : prog_slots_) {
    { std::lock_guard<std::mutex> lk(slot->mu); }
    slot->cv.notify_all();
  }
  for (auto& t : progress_threads_) t.join();
  progress_threads_.clear();
  prog_running_.store(false, std::memory_order_release);
  // Teardown ordering: a submit, arrival or timer can land between a
  // thread's final lap and the join. Now that no thread owns anything, one
  // manual pass delivers every staged event, parked ring op and deferred
  // timer callback — callers observe a fully drained engine after stop.
  progress();
}

bool Engine::wait_until(const std::function<bool()>& pred, Nanos timeout) {
  return wait_until_impl(pred, timeout);
}

bool Engine::wait_until_impl(const std::function<bool()>& pred,
                             Nanos timeout) {
  std::function<bool()> ext;
  {
    std::lock_guard<std::mutex> lk(misc_mu_);
    ext = external_progress_;
  }
  if (ext) {
    // Cooperative simulation mode: pump the world until pred holds or the
    // event queue drains (virtual time — wall timeout does not apply).
    // pred synchronizes itself.
    for (;;) {
      if (pred()) return true;
      if (!ext()) return pred();
    }
  }
  const Nanos deadline = timers_.now() + timeout;
  global_waiters_.fetch_add(1, std::memory_order_acq_rel);
  bool ok = false;
  for (;;) {
    // Self-pump only when no progress thread is attached: with one (or N)
    // running, a waiter pumping too would double-poll endpoints and
    // contend every shard lock it touches (inflating opt.lock_wait_ns for
    // nothing) — park on the cv and let the owners work instead. Checked
    // every iteration so a stop_progress_thread() mid-wait hands the
    // pumping duty back to the waiter.
    if (!prog_running_.load(std::memory_order_acquire)) {
      progress();
      prog_self_pumps_->fetch_add(1, std::memory_order_relaxed);
    }
    if (pred()) {
      ok = true;
      break;
    }
    if (timers_.now() > deadline) break;
    std::unique_lock<std::mutex> lk(wait_mu_);
    cv_.wait_for(lk, std::chrono::microseconds(200));
  }
  global_waiters_.fetch_sub(1, std::memory_order_acq_rel);
  return ok;
}

bool Engine::wait_peer_impl(PeerState& ps, const std::function<bool()>& pred,
                            Nanos timeout) {
  std::function<bool()> ext;
  {
    std::lock_guard<std::mutex> lk(misc_mu_);
    ext = external_progress_;
  }
  if (ext) {
    for (;;) {
      if (pred()) return true;
      if (!ext()) return pred();
    }
  }
  const Nanos deadline = timers_.now() + timeout;
  ps.waiters.fetch_add(1, std::memory_order_acq_rel);
  bool ok = false;
  for (;;) {
    // Same self-pump gate as wait_until_impl: pump only when no progress
    // thread is attached, park on the peer's cv otherwise.
    if (!prog_running_.load(std::memory_order_acquire)) {
      progress();
      prog_self_pumps_->fetch_add(1, std::memory_order_relaxed);
    }
    if (pred()) {
      ok = true;
      break;
    }
    if (timers_.now() > deadline) break;
    std::unique_lock<std::mutex> lk(ps.wait_mu);
    ps.cv.wait_for(lk, std::chrono::microseconds(200));
  }
  ps.waiters.fetch_sub(1, std::memory_order_acq_rel);
  return ok;
}

bool Engine::send_done(const SendHandle& h) const {
  MADO_CHECK(h.valid());
  return h.state_->pending.load(std::memory_order_acquire) == 0;
}

bool Engine::send_failed(const SendHandle& h) const {
  MADO_CHECK(h.valid());
  return h.state_->failed.load(std::memory_order_acquire);
}

bool Engine::wait_send(const SendHandle& h, Nanos timeout) {
  MADO_CHECK(h.valid());
  const SendStateRef state = h.state_;
  bool ok = false;
  const auto pred = [&state, &ok] {
    ok = state->pending.load(std::memory_order_acquire) == 0;
    // failed: stop waiting, report false
    return ok || state->failed.load(std::memory_order_acquire);
  };
  PeerState* ps = find_peer(state->peer);
  if (ps)
    wait_peer_impl(*ps, pred, timeout);
  else
    wait_until_impl(pred, timeout);
  return ok;
}

bool Engine::flush(Nanos timeout) {
  return wait_until_impl(
      [this] {
        std::shared_lock<std::shared_mutex> plk(peers_mu_);
        for (const auto& [id, ps] : peers_) {
          // Check parked submissions BEFORE the queues: a drained ring op's
          // fragments are visible under the lock taken just below.
          if (ps->ring_pending.load(std::memory_order_acquire) > 0)
            return false;
          std::lock_guard<std::mutex> lk(ps->mu);
          if (!ps->inflight.empty() || !ps->rdv_tx.empty() ||
              !ps->shared_bulk.empty())
            return false;
          for (const auto& rail : ps->rails)
            if (!rail->backlog.empty() || !rail->bulk_q.empty()) return false;
        }
        return true;
      },
      timeout);
}

// ---- one-sided put/get -------------------------------------------------------

void Engine::expose_window(WindowId id, void* base, std::size_t len) {
  MADO_CHECK(base != nullptr && len > 0);
  std::unique_lock<std::shared_mutex> lk(windows_mu_);
  const auto [it, inserted] =
      windows_.emplace(id, RmaWindow{static_cast<Byte*>(base), len});
  MADO_CHECK_MSG(inserted, "window " << id << " already exposed");
}

Engine::RmaWindow Engine::window_checked(WindowId id, std::uint64_t offset,
                                         std::uint64_t len) const {
  std::shared_lock<std::shared_mutex> lk(windows_mu_);
  auto it = windows_.find(id);
  MADO_CHECK_MSG(it != windows_.end(), "unknown RMA window " << id);
  MADO_CHECK_MSG(offset + len <= it->second.len,
                 "RMA access [" << offset << ", " << offset + len
                                << ") outside window " << id << " of size "
                                << it->second.len);
  return it->second;
}

TxFrag Engine::make_rma_frag_locked(PeerState& ps, FragKind kind) {
  TxFrag tf;
  tf.channel = kRmaChannel;
  tf.msg_seq = 0;
  tf.idx = 0;
  tf.nfrags_total = 1;
  tf.last = true;
  tf.kind = kind;
  tf.cls = kind == FragKind::RmaAck ? TrafficClass::Control
                                    : TrafficClass::PutGet;
  const Nanos t = std::max(timers_.now(), ps.last_drain_time);
  ps.last_drain_time = t;
  tf.submit_time = t;
  tf.order = next_submit_order_.fetch_add(1, std::memory_order_relaxed);
  return tf;
}

SendHandle Engine::rma_put(NodeId peer, WindowId window, std::uint64_t offset,
                           const void* data, std::size_t len,
                           TrafficClass cls) {
  MADO_CHECK(data != nullptr && len > 0);
  PeerState& ps = peer_ref(peer);
  auto state = std::make_shared<SendState>();
  state->pending.store(1, std::memory_order_relaxed);  // peer's RmaAck
  state->submit_time = timers_.now();
  state->cls = cls;
  state->peer = peer;

  PeerLock lk(ps);
  drain_submit_ring_locked(ps);
  MADO_CHECK_MSG(!ps.rails.empty(), "no rails toward peer " << peer);
  const RailId rail_id = rail_for_class_locked(ps, cls);
  Rail& rail = *ps.rails[rail_id];
  if (rail.state == RailState::Down) {
    state->failed.store(true, std::memory_order_release);
    ps.stats.inc("rel.failed_sends");  // every rail toward the peer is dead
    return SendHandle(state);
  }
  const std::size_t rdv_thr = cfg_.rdv_threshold_override != 0
                                  ? cfg_.rdv_threshold_override
                                  : rail.ep->caps().rdv_threshold;

  const std::uint64_t ack_token =
      next_rdv_token_.fetch_add(1, std::memory_order_relaxed);
  ps.rma_acks.emplace(ack_token, state);

  if (len >= rdv_thr) {
    RdvTx rdv;
    rdv.peer = peer;
    rdv.channel = kRmaChannel;
    rdv.data = static_cast<const Byte*>(data);
    rdv.total = len;
    rdv.state = nullptr;  // handle completes on the ack, not on chunks
    rdv.rts_time = timers_.now();
    rdv.rts_timed = true;
    rdv.cls = cls;
    ps.rdv_tx.emplace(ack_token, std::move(rdv));
    trace_locked(TraceEvent::RdvRts, peer, rail_id, ack_token, len);

    TxFrag tf = make_rma_frag_locked(ps, FragKind::RdvRts);
    RtsBody body;
    body.token = ack_token;
    body.total_len = len;
    body.target = RdvTarget::Window;
    body.window = window;
    body.offset = offset;
    body.aux = ack_token;
    tf.owned = ps.slab.take(RtsBody::kWireSize);
    encode_rts(tf.owned, body);
    tf.len = tf.owned.size();
    rail.backlog.push(std::move(tf));
  } else {
    TxFrag tf = make_rma_frag_locked(ps, FragKind::RmaPut);
    tf.owned = ps.slab.take(RmaPutBody::kWireSize + len);
    encode_rma_put(tf.owned, RmaPutBody{window, offset, ack_token});
    const auto* p = static_cast<const Byte*>(data);
    tf.owned.insert(tf.owned.end(), p, p + len);
    tf.len = tf.owned.size();
    rail.backlog.push(std::move(tf));
  }
  ps.stats.inc("rma.puts");
  trace_locked(TraceEvent::RmaOp, peer, rail_id, 0, window, len);
  pump_rail_locked(ps, rail);
  // Wake the shard's owner for the completion poll (slot mutexes sit below
  // ps.mu in the lock order, so notifying under the peer lock is fine).
  note_activity(ps);
  return SendHandle(state);
}

SendHandle Engine::rma_get(NodeId peer, WindowId window, std::uint64_t offset,
                           void* dest, std::size_t len, TrafficClass cls) {
  MADO_CHECK(dest != nullptr && len > 0);
  PeerState& ps = peer_ref(peer);
  auto state = std::make_shared<SendState>();
  state->pending.store(1, std::memory_order_relaxed);  // all bytes landed
  state->submit_time = timers_.now();
  state->cls = cls;
  state->peer = peer;

  PeerLock lk(ps);
  drain_submit_ring_locked(ps);
  MADO_CHECK_MSG(!ps.rails.empty(), "no rails toward peer " << peer);
  const RailId rail_id = rail_for_class_locked(ps, cls);
  Rail& rail = *ps.rails[rail_id];
  if (rail.state == RailState::Down) {
    state->failed.store(true, std::memory_order_release);
    ps.stats.inc("rel.failed_sends");  // every rail toward the peer is dead
    return SendHandle(state);
  }
  const std::uint64_t get_token =
      next_rdv_token_.fetch_add(1, std::memory_order_relaxed);
  ps.pending_gets.emplace(get_token,
                          PendingGet{static_cast<Byte*>(dest), len, state});

  TxFrag tf = make_rma_frag_locked(ps, FragKind::RmaGet);
  tf.owned = ps.slab.take(RmaGetBody::kWireSize);
  encode_rma_get(tf.owned, RmaGetBody{window, offset, len, get_token});
  tf.len = tf.owned.size();
  rail.backlog.push(std::move(tf));
  ps.stats.inc("rma.gets");
  trace_locked(TraceEvent::RmaOp, peer, rail_id, 1, window, len);
  pump_rail_locked(ps, rail);
  note_activity(ps);  // wake the shard's owner for the completion poll
  return SendHandle(state);
}

// ---- traffic classes --------------------------------------------------------

void Engine::set_class_rail(TrafficClass cls, RailId rail) {
  class_rail_[static_cast<std::size_t>(cls)].store(rail,
                                                   std::memory_order_relaxed);
}

RailId Engine::class_rail(TrafficClass cls) const {
  return class_rail_[static_cast<std::size_t>(cls)].load(
      std::memory_order_relaxed);
}

void Engine::rebalance_classes() {
  std::shared_lock<std::shared_mutex> plk(peers_mu_);
  // Load per rail index, summed over peers: queued + in-flight bytes. A
  // rail that is Down toward ANY peer is ineligible — pinning a class to it
  // would strand every peer sharing that index. Peer locks are taken one at
  // a time; the view is per-peer consistent, which is all a heuristic needs.
  std::vector<std::size_t> load;
  std::vector<bool> dead;
  for (const auto& [id, ps] : peers_) {
    std::lock_guard<std::mutex> lk(ps->mu);
    if (ps->rails.size() > load.size()) {
      load.resize(ps->rails.size(), 0);
      dead.resize(ps->rails.size(), false);
    }
    for (std::size_t i = 0; i < ps->rails.size(); ++i) {
      const Rail& r = *ps->rails[i];
      if (r.state == RailState::Down) dead[i] = true;
      std::size_t bulk_bytes = 0;
      for (const BulkChunk& c : r.bulk_q) bulk_bytes += c.len;
      load[i] += r.backlog.byte_count() + r.inflight_bytes + bulk_bytes;
    }
  }
  if (load.size() < 2) return;  // nothing to balance
  std::size_t best = load.size();
  for (std::size_t i = 0; i < load.size(); ++i) {
    if (dead[i]) continue;
    if (best == load.size() || load[i] < load[best]) best = i;
  }
  if (best == load.size()) return;  // every rail is dead
  const auto lightest = static_cast<RailId>(best);
  // Latency-sensitive classes follow the least-loaded rail; bulk classes
  // keep their assignment (their chunks already spread per MultirailPolicy).
  class_rail_[static_cast<std::size_t>(TrafficClass::Control)].store(
      lightest, std::memory_order_relaxed);
  class_rail_[static_cast<std::size_t>(TrafficClass::SmallEager)].store(
      lightest, std::memory_order_relaxed);
  stats_.inc("sched.rebalances");
  trace_locked(TraceEvent::Rebalance, 0, lightest, lightest);
}

void Engine::set_auto_rebalance(Nanos interval) {
  MADO_CHECK(interval > 0);
  {
    std::lock_guard<std::mutex> lk(misc_mu_);
    auto_rebalance_interval_ = interval;
  }
  // Self-re-arming tick. NOTE: in simulation this keeps the fabric event
  // queue non-empty forever; drive such runs with run_until()/wait_until()
  // rather than run_until_idle().
  //
  // Ownership: the engine holds the only strong reference
  // (rebalance_tick_); the scheduled copies capture a weak_ptr. Capturing
  // `tick` strongly here would make the closure own itself — a shared_ptr
  // cycle that leaks the function and keeps a superseded chain re-arming
  // after a second set_auto_rebalance call.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, alive = alive_,
           weak = std::weak_ptr<std::function<void()>>(tick)] {
    if (!alive->load()) return;
    rebalance_classes();
    Nanos period;
    {
      std::lock_guard<std::mutex> lk(misc_mu_);
      period = auto_rebalance_interval_;
    }
    auto self = weak.lock();  // null once the engine dropped the chain
    if (period > 0 && self)
      timers_.schedule_at(timers_.now() + period, *self);
  };
  {
    std::lock_guard<std::mutex> lk(misc_mu_);
    rebalance_tick_ = tick;
  }
  timers_.schedule_at(timers_.now() + interval, *tick);
}

// ---- introspection ----------------------------------------------------------

std::size_t Engine::backlog_frags(NodeId peer, RailId rail) const {
  PeerState* ps = find_peer(peer);
  MADO_CHECK(ps != nullptr);
  std::lock_guard<std::mutex> lk(ps->mu);
  MADO_CHECK(rail < ps->rails.size());
  return ps->rails[rail]->backlog.frag_count();
}

std::size_t Engine::inflight_packets() const {
  std::shared_lock<std::shared_mutex> plk(peers_mu_);
  std::size_t n = 0;
  for (const auto& [id, ps] : peers_) {
    std::lock_guard<std::mutex> lk(ps->mu);
    n += ps->inflight.size();
  }
  return n;
}

std::size_t Engine::pending_bulk_chunks(NodeId peer) const {
  PeerState* ps = find_peer(peer);
  MADO_CHECK(ps != nullptr);
  std::lock_guard<std::mutex> lk(ps->mu);
  std::size_t n = ps->shared_bulk.size();
  for (const auto& rail : ps->rails) n += rail->bulk_q.size();
  return n;
}

Engine::Snapshot Engine::snapshot() const {
  Snapshot s;
  std::shared_lock<std::shared_mutex> plk(peers_mu_);
  for (const auto& [id, ps] : peers_) {
    std::lock_guard<std::mutex> lk(ps->mu);
    Snapshot::PeerInfo pi;
    pi.id = id;
    pi.shared_bulk_chunks = ps->shared_bulk.size();
    pi.open_channels = ps->channels.size();
    pi.rx_pending_msgs = ps->rx_msgs.size();
    pi.submit_ring_pending =
        ps->ring_pending.load(std::memory_order_acquire);
    for (const auto& rail : ps->rails) {
      Snapshot::RailInfo ri;
      ri.driver = rail->ep->caps().name;
      ri.state = rail->state;
      ri.backlog_frags = rail->backlog.frag_count();
      ri.backlog_bytes = rail->backlog.byte_count();
      ri.bulk_chunks = rail->bulk_q.size();
      for (std::size_t n : rail->outstanding) ri.outstanding_packets += n;
      ri.inflight_bytes = rail->inflight_bytes;
      ri.unacked_packets =
          rail->rel[0].unacked.size() + rail->rel[1].unacked.size();
      pi.rails.push_back(std::move(ri));
    }
    s.inflight_packets += ps->inflight.size();
    s.rdv_tx_active += ps->rdv_tx.size();
    s.rdv_rx_active += ps->rdv_rx.size();
    s.pending_gets += ps->pending_gets.size();
    s.peers.push_back(std::move(pi));
  }
  plk.unlock();
  {
    std::shared_lock<std::shared_mutex> wlk(windows_mu_);
    s.windows_exposed = windows_.size();
  }
  return s;
}

bool Engine::Snapshot::quiescent() const {
  if (inflight_packets || rdv_tx_active || rdv_rx_active || pending_gets)
    return false;
  for (const auto& p : peers) {
    if (p.shared_bulk_chunks || p.submit_ring_pending) return false;
    for (const auto& r : p.rails)
      if (r.backlog_frags || r.bulk_chunks || r.outstanding_packets)
        return false;
  }
  return true;
}

std::string Engine::Snapshot::to_string() const {
  std::ostringstream os;
  os << "inflight=" << inflight_packets << " rdv_tx=" << rdv_tx_active
     << " rdv_rx=" << rdv_rx_active << " windows=" << windows_exposed
     << " pending_gets=" << pending_gets << "\n";
  for (const auto& p : peers) {
    os << "peer " << p.id << ": channels=" << p.open_channels
       << " rx_pending=" << p.rx_pending_msgs
       << " shared_bulk=" << p.shared_bulk_chunks
       << " ring_pending=" << p.submit_ring_pending << "\n";
    for (std::size_t i = 0; i < p.rails.size(); ++i) {
      const auto& r = p.rails[i];
      os << "  rail " << i << " (" << r.driver << "): state="
         << core::to_string(r.state) << ", backlog=" << r.backlog_frags
         << " frags/" << r.backlog_bytes << " B, bulk_q=" << r.bulk_chunks
         << ", outstanding=" << r.outstanding_packets << " pkts/"
         << r.inflight_bytes << " B, unacked=" << r.unacked_packets << "\n";
    }
  }
  return os.str();
}

// ---- handle plumbing ---------------------------------------------------------

SendHandle Channel::post(Message msg) {
  MADO_CHECK(valid());
  return eng_->submit(peer_, id_, cls_, std::move(msg), peer_cache_);
}

IncomingMessage Channel::begin_recv() {
  MADO_CHECK(valid());
  return IncomingMessage(eng_, peer_, id_, eng_->attach_recv(peer_, id_));
}

void Channel::flush() {
  MADO_CHECK(valid());
  eng_->flush_channel(peer_, id_);
}

bool Channel::probe() const {
  MADO_CHECK(valid());
  return eng_->probe_recv(peer_, id_);
}

void IncomingMessage::unpack(void* buf, std::size_t len, RecvMode mode) {
  MADO_CHECK_MSG(!finished_, "unpack after finish");
  eng_->post_unpack(peer_, ch_, seq_, next_, buf, len);
  if (mode == RecvMode::Express) eng_->wait_frag(peer_, ch_, seq_, next_);
  ++next_;
}

std::size_t IncomingMessage::next_size() {
  MADO_CHECK_MSG(!finished_, "next_size after finish");
  return eng_->wait_frag_size(peer_, ch_, seq_, next_);
}

Bytes IncomingMessage::unpack_bytes() {
  Bytes out(next_size());
  unpack(out.data(), out.size(), RecvMode::Express);
  return out;
}

void IncomingMessage::finish() {
  MADO_CHECK_MSG(!finished_, "finish called twice");
  eng_->finish_recv(peer_, ch_, seq_, next_);
  finished_ = true;
}

bool IncomingMessage::ready() const {
  MADO_CHECK_MSG(!finished_, "ready after finish");
  return eng_->recv_complete(peer_, ch_, seq_);
}

}  // namespace mado::core
