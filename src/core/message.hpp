// Structured outgoing message (the Madeleine pack interface).
//
// A message is a sequence of fragments. Middlewares typically pack one or
// more header fragments describing the request, then the payload — these
// "message internal dependencies" are what constrains the optimizer: the
// fragments of one message are never reordered relative to each other,
// while fragments of different flows may be freely interleaved.
//
// Buffer lifetime per SendMode:
//   Safe    — copied inside pack(); caller may reuse the buffer immediately.
//   Later   — referenced; must stay valid until the send completes.
//   Cheaper — the library copies small fragments at submit time and
//             references large ones (same lifetime rule as Later).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/types.hpp"
#include "util/assert.hpp"
#include "util/wire.hpp"

namespace mado::core {

class Message {
 public:
  Message() = default;
  Message(Message&&) = default;
  Message& operator=(Message&&) = default;
  Message(const Message&) = delete;
  Message& operator=(const Message&) = delete;

  /// Append one fragment. Fragments are sent and received in pack order.
  void pack(const void* data, std::size_t len,
            SendMode mode = SendMode::Cheaper) {
    MADO_CHECK_MSG(len <= std::numeric_limits<std::uint32_t>::max(),
                   "fragment too large");
    MADO_CHECK_MSG(frags_.size() <
                       std::numeric_limits<std::uint16_t>::max(),
                   "too many fragments in one message");
    MADO_CHECK_MSG(len == 0 || data != nullptr, "null fragment data");
    Fragment f;
    f.mode = mode;
    f.len = len;
    if (mode == SendMode::Safe) {
      const auto* p = static_cast<const Byte*>(data);
      f.owned.assign(p, p + len);
    } else {
      f.ext = static_cast<const Byte*>(data);
    }
    frags_.push_back(std::move(f));
  }

  std::size_t fragment_count() const { return frags_.size(); }
  std::size_t total_bytes() const {
    std::size_t n = 0;
    for (const auto& f : frags_) n += f.len;
    return n;
  }
  bool empty() const { return frags_.empty(); }

  /// Engine-internal fragment view (moved out at submit).
  struct Fragment {
    SendMode mode = SendMode::Cheaper;
    Bytes owned;                 // Safe mode: copied payload
    const Byte* ext = nullptr;   // Later/Cheaper: caller buffer
    std::size_t len = 0;

    const Byte* data() const { return owned.empty() ? ext : owned.data(); }
  };
  std::vector<Fragment>& fragments() { return frags_; }
  const std::vector<Fragment>& fragments() const { return frags_; }

 private:
  std::vector<Fragment> frags_;
};

}  // namespace mado::core
