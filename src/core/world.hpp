// Ready-made multi-node worlds for tests, benchmarks and examples.
//
// SimWorld: N engines sharing one discrete-event fabric; fully
// deterministic, driven cooperatively (every blocking engine call pumps the
// fabric through the external-progress hook).
//
// SocketWorld: two engines over real socketpair rails with progress
// threads; used to validate the engine against genuine asynchrony.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "core/engine.hpp"
#include "core/timer_host.hpp"
#include "drivers/capabilities.hpp"
#include "drivers/sim_driver.hpp"
#include "drivers/udp_driver.hpp"
#include "sim/fabric.hpp"

namespace mado::core {

class SimWorld {
 public:
  /// All nodes share `cfg`.
  explicit SimWorld(std::size_t nodes, const EngineConfig& cfg = {});
  /// Per-node configs (nodes = configs.size()).
  explicit SimWorld(const std::vector<EngineConfig>& configs);

  /// Add one rail between nodes a and b (callable repeatedly for multirail).
  /// Returns the rail index (identical on both sides by construction).
  RailId connect(NodeId a, NodeId b, const drv::Capabilities& caps);
  RailId connect(NodeId a, NodeId b, const drv::Capabilities& caps_a,
                 const drv::Capabilities& caps_b);
  /// Lossy variant: `plan_ab` faults packets a→b, `plan_ba` faults b→a.
  RailId connect(NodeId a, NodeId b, const drv::Capabilities& caps,
                 const drv::FaultPlan& plan_ab, const drv::FaultPlan& plan_ba);

  /// The a-side simulated endpoint of rail `rail` between a and b (for
  /// fault plans / fault stats in tests).
  drv::SimEndpoint& endpoint(NodeId a, NodeId b, RailId rail);

  /// Hard-kill rail `rail` between a and b (both directions).
  void fail_link(NodeId a, NodeId b, RailId rail) {
    endpoint(a, b, rail).fail_link();
  }

  Engine& node(NodeId i) { return *engines_.at(i); }
  std::size_t size() const { return engines_.size(); }
  sim::Fabric& fabric() { return fabric_; }
  Nanos now() const { return fabric_.now(); }

  /// Drain all pending events (bounded); returns events executed.
  std::size_t run(std::size_t max_events = 100'000'000) {
    return fabric_.run_until_idle(max_events);
  }
  /// Run until `pred` holds or the fabric drains; returns pred().
  bool run_until(const std::function<bool()>& pred) {
    return fabric_.run_while_pending(pred);
  }

 private:
  sim::Fabric fabric_;
  SimTimerHost timers_;
  std::vector<std::unique_ptr<Engine>> engines_;
  /// (owner node, peer node, rail) → the owner-side endpoint. Raw pointers
  /// stay valid: the engines own the endpoints and outlive this map.
  std::map<std::tuple<NodeId, NodeId, RailId>, drv::SimEndpoint*> endpoints_;
};

class SocketWorld {
 public:
  /// Two nodes (ids 0 and 1) joined by `rails` socketpair rails carrying
  /// `caps`. Progress threads start immediately.
  explicit SocketWorld(const EngineConfig& cfg,
                       const drv::Capabilities& caps, std::size_t rails = 1);
  ~SocketWorld();

  Engine& node(NodeId i) { return *engines_.at(i); }

 private:
  std::vector<std::unique_ptr<RealTimerHost>> timers_;
  std::vector<std::unique_ptr<Engine>> engines_;
};

/// Two engines on one node talking through the shared-memory driver (the
/// intra-node transport); progress threads start immediately. Use for
/// thread-to-thread communication within one process.
class ShmWorld {
 public:
  explicit ShmWorld(const EngineConfig& cfg, std::size_t rails = 1);
  ~ShmWorld();

  Engine& node(NodeId i) { return *engines_.at(i); }

 private:
  std::vector<std::unique_ptr<RealTimerHost>> timers_;
  std::vector<std::unique_ptr<Engine>> engines_;
};

/// Two engines joined by real UDP loopback rails (lossy datagrams, ordered
/// release in the driver, loss recovered by the engine's go-back-N layer —
/// reliability is forced on because Engine::add_rail rejects a lossy rail
/// without it). Progress threads start immediately. Exposes the raw
/// endpoints so tests can inject receive-side loss or link failures.
class UdpWorld {
 public:
  explicit UdpWorld(const EngineConfig& cfg, std::size_t rails = 1,
                    const drv::UdpConfig& ucfg = {});
  ~UdpWorld();

  Engine& node(NodeId i) { return *engines_.at(i); }
  /// The `node`-side endpoint of rail `rail` (0-based, in creation order).
  drv::UdpEndpoint& endpoint(NodeId node, std::size_t rail = 0) {
    return *endpoints_.at(node).at(rail);
  }

 private:
  std::vector<std::unique_ptr<RealTimerHost>> timers_;
  std::vector<std::unique_ptr<Engine>> engines_;
  /// endpoints_[node][rail], non-owning (engines own them).
  std::vector<std::vector<drv::UdpEndpoint*>> endpoints_;
};

}  // namespace mado::core
