// Chrome-trace-event / Perfetto export of Tracer records.
//
// `to_chrome_trace` turns a `Tracer::snapshot()` into the JSON object
// format understood by Perfetto (https://ui.perfetto.dev) and the legacy
// chrome://tracing viewer:
//
//   * one *process* per engine (pid = node id, named "node N");
//   * one *track* per (peer, rail) pair (tid = peer*256 + rail), so each
//     physical link direction gets its own swim lane;
//   * instant events for submissions, optimizer decisions, nagle waits,
//     class re-assignments, RMA ops, retransmits and rail failures;
//   * duration ("X") spans for the rendezvous lifecycle — RdvRts→RdvCts
//     (handshake) and RdvCts→RdvDone (bulk transfer) on the sender,
//     RdvRts→RdvDone on the receiver — and for retransmit episodes
//     (consecutive RelRetx records on one link, split on quiet gaps);
//   * flow events ("s"/"f") linking each PacketTx to the matching
//     PacketRx on the peer engine (paired by the wire pkt_seq carried in
//     TraceRecord::d) and each BulkTx to its BulkRx (paired by rendezvous
//     token + offset) — the cross-engine arrows in the viewer.
//
// Timestamps are virtual nanoseconds in simulation, wall nanoseconds with
// real drivers; the JSON `ts` field is microseconds (fractional), as the
// format requires. Share one Tracer between both engines of a world to get
// both ends of every flow into a single file (see examples/timeline.cpp
// and docs/tracing.md).
#pragma once

#include <string>
#include <vector>

#include "core/trace.hpp"

namespace mado::core {

struct ChromeTraceOptions {
  /// Consecutive RelRetx records on one (node, peer, rail) closer than this
  /// merge into one "retx.episode" span; a longer quiet gap starts a new one.
  Nanos retx_episode_gap = kNanosPerMilli;
  /// Emit PacketTx→PacketRx / BulkTx→BulkRx flow ("s"/"f") events.
  bool flow_events = true;
};

/// Render records (chronological, as returned by Tracer::snapshot()) as a
/// complete Chrome trace JSON document.
std::string to_chrome_trace(const std::vector<TraceRecord>& records,
                            const ChromeTraceOptions& opts = {});

/// Convenience: write to_chrome_trace(records) to `path`. Returns false if
/// the file could not be written.
bool write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceRecord>& records,
                             const ChromeTraceOptions& opts = {});

}  // namespace mado::core
