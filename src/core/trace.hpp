// Event tracing: a bounded ring of timestamped engine events (submissions,
// optimizer decisions, packet/bulk transmissions and arrivals, rendezvous
// handshakes, Nagle waits, class re-assignments).
//
// Attach one Tracer to one or more engines with Engine::set_tracer; in
// simulation the timestamps are virtual time, so the rendered timeline is
// an exact, reproducible account of what the optimizer did — see
// examples/timeline.cpp.
//
// The ring overwrites the oldest records when full (dropped() counts).
// Thread-safe: a single Tracer may be shared by several engines.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/clock.hpp"

namespace mado::core {

enum class TraceEvent : std::uint8_t {
  MsgSubmit,    // a=channel, b=nfrags, c=bytes
  Decision,     // a=action(0 send,1 wait,2 idle), b=frags, c=bytes
  PacketTx,     // a=token, b=bytes, c=nfrags
  PacketRx,     // a=nfrags, b=bytes
  BulkTx,       // a=token, b=offset, c=len, d=stripe
  BulkRx,       // a=token, b=offset, c=len, d=stripe
  RdvRts,       // a=token, b=total (tx side: queued; rx side: seen)
  RdvCts,       // a=token
  RdvDone,      // a=token, b=total (transfer fully sent / fully landed)
  NagleWait,    // a=wait_until
  Rebalance,    // a=new control rail
  RmaOp,        // a=0 put / 1 get, b=window, c=len
  RelRetx,      // a=token, b=stream, c=retries (reliability retransmit)
  RailDown,     // a=replayed frags, b=replayed chunks, c=failed sends
  BulkSteal,    // a=token, b=offset, c=len, d=victim rail (rail=thief)
};

struct TraceRecord {
  Nanos time = 0;
  TraceEvent event = TraceEvent::MsgSubmit;
  NodeId node = 0;
  NodeId peer = 0;
  RailId rail = 0;
  std::uint64_t a = 0, b = 0, c = 0;
  // Auxiliary correlation id. For PacketTx/PacketRx this is the wire
  // `pkt_seq`, which is the only identifier shared by the sending and the
  // receiving engine — the exporter uses it to link the two ends of a
  // packet flight across processes (drivers' send tokens are sender-local).
  std::uint64_t d = 0;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 4096);

  void record(const TraceRecord& rec);

  /// All retained records in chronological (recording) order.
  std::vector<TraceRecord> snapshot() const;
  std::size_t dropped() const;
  std::size_t size() const;
  void clear();

  static const char* event_name(TraceEvent ev);
  /// One human-readable line per record ("  12.400us n0->1 r0 PacketTx ...").
  static std::string render(const TraceRecord& rec);
  /// Render the whole buffer as a timeline.
  std::string render_all() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceRecord> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;   // next write slot
  std::size_t count_ = 0;  // records currently retained
  std::size_t dropped_ = 0;
};

}  // namespace mado::core
