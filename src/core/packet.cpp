#include "core/packet.hpp"

#include "util/assert.hpp"
#include "util/crc32.hpp"

namespace mado::core {

namespace {

void write_frag_header(WireWriter& w, const FragHeader& fh) {
  w.u32(fh.channel);
  w.u32(fh.msg_seq);
  w.u16(fh.frag_idx);
  w.u16(fh.nfrags_total);
  w.u8(static_cast<std::uint8_t>(fh.kind));
  w.u8(fh.flags);
  w.u16(0);  // reserved
  w.u32(fh.len);
}

FragHeader read_frag_header(WireReader& r) {
  FragHeader fh;
  fh.channel = r.u32();
  fh.msg_seq = r.u32();
  fh.frag_idx = r.u16();
  fh.nfrags_total = r.u16();
  const std::uint8_t kind = r.u8();
  MADO_CHECK_MSG(kind <= static_cast<std::uint8_t>(kMaxFragKind),
                 "bad fragment kind " << int(kind));
  fh.kind = static_cast<FragKind>(kind);
  fh.flags = r.u8();
  r.skip(2);  // reserved
  fh.len = r.u32();
  return fh;
}

}  // namespace

void encode_header_block(Bytes& out, const PacketHeader& ph,
                         std::span<const FragHeader> frags) {
  MADO_CHECK(frags.size() == ph.nfrags);
  const std::size_t base = out.size();
  WireWriter w(out);
  w.u32(kPacketMagic);
  w.u8(kWireVersion);
  w.u8(ph.flags);
  w.u16(ph.nfrags);
  w.u32(ph.pkt_seq);
  w.u32(ph.src_node);
  w.u32(ph.ack_eager);
  w.u32(ph.ack_bulk);
  w.u32(ph.payload_crc);
  const std::size_t crc_at = w.size();
  w.u32(0);  // CRC placeholder
  for (const FragHeader& fh : frags) write_frag_header(w, fh);

  // CRC covers everything in the block except the CRC field itself.
  Crc32 crc;
  crc.update(out.data() + base, crc_at - base);
  crc.update(out.data() + crc_at + 4, out.size() - crc_at - 4);
  w.patch_u32(crc_at, crc.value());
}

DecodedPacket parse_packet(ByteSpan packet, bool crc_check) {
  WireReader r(packet);
  DecodedPacket out;
  MADO_CHECK_MSG(r.u32() == kPacketMagic, "bad packet magic");
  MADO_CHECK_MSG(r.u8() == kWireVersion, "bad wire version");
  out.header.flags = r.u8();
  out.header.nfrags = r.u16();
  out.header.pkt_seq = r.u32();
  out.header.src_node = r.u32();
  out.header.ack_eager = r.u32();
  out.header.ack_bulk = r.u32();
  out.header.payload_crc = r.u32();
  const std::size_t crc_at = r.position();
  const std::uint32_t wire_crc = r.u32();

  out.frags.reserve(out.header.nfrags);
  for (std::uint16_t i = 0; i < out.header.nfrags; ++i)
    out.frags.push_back(read_frag_header(r));

  if (crc_check) {
    Crc32 crc;
    crc.update(packet.data(), crc_at);
    crc.update(packet.data() + crc_at + 4, r.position() - crc_at - 4);
    MADO_CHECK_MSG(crc.value() == wire_crc, "packet header CRC mismatch");
  }

  const std::size_t payload_at = r.position();
  out.payloads.reserve(out.header.nfrags);
  for (const FragHeader& fh : out.frags) out.payloads.push_back(r.bytes(fh.len));
  MADO_CHECK_MSG(r.at_end(), "trailing bytes after packet payloads");

  if (crc_check && (out.header.flags & kPhFlagPayloadCrc) != 0) {
    const std::uint32_t got =
        Crc32::of(packet.data() + payload_at, packet.size() - payload_at);
    if (got != out.header.payload_crc)
      throw PayloadCrcError("packet payload CRC mismatch");
  }
  return out;
}

void encode_rts(Bytes& out, const RtsBody& rts) {
  WireWriter w(out);
  w.u64(rts.token);
  w.u64(rts.total_len);
  w.u8(static_cast<std::uint8_t>(rts.target));
  w.u32(rts.window);
  w.u64(rts.offset);
  w.u64(rts.aux);
}

RtsBody decode_rts(ByteSpan payload) {
  WireReader r(payload);
  RtsBody b;
  b.token = r.u64();
  b.total_len = r.u64();
  const std::uint8_t target = r.u8();
  MADO_CHECK_MSG(target <= static_cast<std::uint8_t>(RdvTarget::GetBuffer),
                 "bad rendezvous target " << int(target));
  b.target = static_cast<RdvTarget>(target);
  b.window = r.u32();
  b.offset = r.u64();
  b.aux = r.u64();
  MADO_CHECK_MSG(r.at_end(), "trailing bytes in RTS body");
  return b;
}

void encode_rma_put(Bytes& out, const RmaPutBody& b) {
  WireWriter w(out);
  w.u32(b.window);
  w.u64(b.offset);
  w.u64(b.ack_token);
}

RmaPutBody decode_rma_put(ByteSpan payload, ByteSpan& data) {
  WireReader r(payload);
  RmaPutBody b;
  b.window = r.u32();
  b.offset = r.u64();
  b.ack_token = r.u64();
  data = r.bytes(r.remaining());
  return b;
}

void encode_rma_get(Bytes& out, const RmaGetBody& b) {
  WireWriter w(out);
  w.u32(b.window);
  w.u64(b.offset);
  w.u64(b.len);
  w.u64(b.get_token);
}

RmaGetBody decode_rma_get(ByteSpan payload) {
  WireReader r(payload);
  RmaGetBody b;
  b.window = r.u32();
  b.offset = r.u64();
  b.len = r.u64();
  b.get_token = r.u64();
  MADO_CHECK_MSG(r.at_end(), "trailing bytes in RMA get body");
  return b;
}

void encode_rma_get_data(Bytes& out, const RmaGetDataBody& b) {
  WireWriter w(out);
  w.u64(b.get_token);
}

RmaGetDataBody decode_rma_get_data(ByteSpan payload, ByteSpan& data) {
  WireReader r(payload);
  RmaGetDataBody b;
  b.get_token = r.u64();
  data = r.bytes(r.remaining());
  return b;
}

void encode_rma_ack(Bytes& out, const RmaAckBody& b) {
  WireWriter w(out);
  w.u64(b.ack_token);
}

RmaAckBody decode_rma_ack(ByteSpan payload) {
  WireReader r(payload);
  RmaAckBody b;
  b.ack_token = r.u64();
  MADO_CHECK_MSG(r.at_end(), "trailing bytes in RMA ack body");
  return b;
}

void encode_cts(Bytes& out, const CtsBody& cts) {
  WireWriter w(out);
  w.u64(cts.token);
}

CtsBody decode_cts(ByteSpan payload) {
  WireReader r(payload);
  CtsBody b;
  b.token = r.u64();
  MADO_CHECK_MSG(r.at_end(), "trailing bytes in CTS body");
  return b;
}

void encode_bulk_header(Bytes& out, const BulkHeader& bh) {
  const std::size_t base = out.size();
  WireWriter w(out);
  w.u32(kBulkMagic);
  w.u8(bh.flags);
  w.u32(bh.src_node);
  w.u64(bh.token);
  w.u64(bh.offset);
  w.u32(bh.len);
  w.u32(bh.pkt_seq);
  w.u32(bh.ack_eager);
  w.u32(bh.ack_bulk);
  w.u32(bh.payload_crc);
  w.u32(bh.stripe);
  const std::size_t crc_at = w.size();
  w.u32(0);
  w.patch_u32(crc_at, Crc32::of(out.data() + base, crc_at - base));
}

BulkHeader decode_bulk(ByteSpan packet, ByteSpan& data, bool crc_check) {
  WireReader r(packet);
  BulkHeader b;
  MADO_CHECK_MSG(r.u32() == kBulkMagic, "bad bulk magic");
  b.flags = r.u8();
  b.src_node = r.u32();
  b.token = r.u64();
  b.offset = r.u64();
  b.len = r.u32();
  b.pkt_seq = r.u32();
  b.ack_eager = r.u32();
  b.ack_bulk = r.u32();
  b.payload_crc = r.u32();
  b.stripe = r.u32();
  const std::size_t crc_at = r.position();
  const std::uint32_t wire_crc = r.u32();
  if (crc_check)
    MADO_CHECK_MSG(Crc32::of(packet.data(), crc_at) == wire_crc,
                   "bulk header CRC mismatch");
  data = r.bytes(b.len);
  MADO_CHECK_MSG(r.at_end(), "trailing bytes after bulk payload");
  if (crc_check && (b.flags & kPhFlagPayloadCrc) != 0) {
    if (Crc32::of(data) != b.payload_crc)
      throw PayloadCrcError("bulk payload CRC mismatch");
  }
  return b;
}

}  // namespace mado::core
