#include "core/stats_sampler.hpp"

#include <cstdio>
#include <functional>
#include <set>
#include <sstream>
#include <utility>

#include "core/engine.hpp"
#include "util/assert.hpp"

namespace mado::core {

namespace {

/// Per-interval delta for `name` between two cumulative snapshots. A counter
/// missing from a snapshot simply has not been bumped yet — it reads as 0.
std::uint64_t delta_of(
    const std::map<std::string, std::uint64_t, std::less<>>& prev,
    const std::map<std::string, std::uint64_t, std::less<>>& cur,
    const std::string& name) {
  const auto ci = cur.find(name);
  const std::uint64_t c = ci == cur.end() ? 0 : ci->second;
  const auto pi = prev.find(name);
  const std::uint64_t p = pi == prev.end() ? 0 : pi->second;
  // Counters are monotonic, but be defensive: a reset() between ticks must
  // not wrap around to a huge delta.
  return c >= p ? c - p : c;
}

}  // namespace

StatsSampler::StatsSampler(Engine& engine, Nanos interval)
    : engine_(engine), interval_(interval) {
  MADO_CHECK(interval > 0);
}

StatsSampler::~StatsSampler() { stop(); }

void StatsSampler::start() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    MADO_CHECK_MSG(!started_, "StatsSampler::start called twice");
    started_ = true;
    baseline_.time = engine_.timers().now();
    baseline_.counters = engine_.counters_snapshot();
  }
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, alive = alive_,
           weak = std::weak_ptr<std::function<void()>>(tick)] {
    if (!alive->load()) return;
    record_tick();
    auto self = weak.lock();  // null once the sampler dropped the chain
    if (self && alive->load())
      engine_.timers().schedule_at(engine_.timers().now() + interval_, *self);
  };
  tick_ = tick;
  engine_.timers().schedule_at(engine_.timers().now() + interval_, *tick);
}

void StatsSampler::stop() {
  alive_->store(false);
  std::lock_guard<std::mutex> lk(mu_);
  tick_.reset();  // break the re-arm chain; in-flight copies see !alive
}

void StatsSampler::record_tick() {
  Sample s;
  s.time = engine_.timers().now();
  s.counters = engine_.counters_snapshot();
  std::lock_guard<std::mutex> lk(mu_);
  samples_.push_back(std::move(s));
}

std::vector<StatsSampler::Sample> StatsSampler::samples() const {
  std::lock_guard<std::mutex> lk(mu_);
  return samples_;
}

std::string StatsSampler::to_csv() const {
  std::vector<Sample> samples;
  Sample baseline;
  {
    std::lock_guard<std::mutex> lk(mu_);
    samples = samples_;
    baseline = baseline_;
  }
  // Union of counter names across all ticks: counters created mid-run get a
  // column too (reading 0 before they first appear).
  std::set<std::string> names;
  for (const auto& s : samples)
    for (const auto& [name, v] : s.counters) names.insert(name);

  std::ostringstream os;
  os << "time_ns";
  for (const auto& name : names) os << "," << name;
  os << "\n";
  const auto* prev = &baseline.counters;
  for (const auto& s : samples) {
    os << s.time;
    for (const auto& name : names)
      os << "," << delta_of(*prev, s.counters, name);
    os << "\n";
    prev = &s.counters;
  }
  return os.str();
}

std::string StatsSampler::to_json() const {
  std::vector<Sample> samples;
  Sample baseline;
  {
    std::lock_guard<std::mutex> lk(mu_);
    samples = samples_;
    baseline = baseline_;
  }
  std::ostringstream os;
  os << "{\"interval_ns\":" << interval_ << ",\"samples\":[";
  const auto* prev = &baseline.counters;
  bool first_sample = true;
  for (const auto& s : samples) {
    if (!first_sample) os << ",";
    first_sample = false;
    os << "{\"t\":" << s.time << ",\"counters\":{";
    bool first_counter = true;
    for (const auto& [name, v] : s.counters) {
      if (!first_counter) os << ",";
      first_counter = false;
      // Counter names are engine-chosen ASCII identifiers ("tx.packets");
      // no JSON escaping is required.
      os << "\"" << name << "\":" << delta_of(*prev, s.counters, name);
    }
    os << "}}";
    prev = &s.counters;
  }
  os << "]}";
  return os.str();
}

}  // namespace mado::core
