// Built-in optimization strategies.
//
//   fifo              — the previous-Madeleine baseline: deterministic,
//                       per-flow, send-as-submitted; aggregates only the
//                       fragments of one message, never across flows.
//   aggreg            — greedy cross-flow aggregation: fill each packet up
//                       to the driver's eager limit from all flow heads,
//                       oldest first (the paper's headline optimization).
//   aggreg_exhaustive — bounded search over candidate packings scored with
//                       the NIC cost model; captures the aggregate-versus-
//                       pipeline tradeoff and the paper's future work on
//                       bounding the number of rearrangements evaluated.
//   nagle             — aggreg plus an artificial delay for sparse traffic
//                       ("in a TCP Nagle's algorithm fashion", paper §3).
//   adaptive          — dynamic policy selection (paper §2: "dynamically
//                       change the assignment ... thus selecting different
//                       policies, as the needs of the application evolve"):
//                       tracks the recent fragment arrival rate and behaves
//                       like aggreg under load but holds lone fragments
//                       Nagle-style when traffic turns sparse.
//   priority          — class-aware aggregation: latency-critical traffic
//                       classes overtake bulk classes within one rail.
#pragma once

#include <memory>

#include "core/strategy.hpp"

namespace mado::core {

std::unique_ptr<Strategy> make_fifo_strategy();
std::unique_ptr<Strategy> make_aggreg_strategy();
std::unique_ptr<Strategy> make_aggreg_exhaustive_strategy();
std::unique_ptr<Strategy> make_nagle_strategy();
std::unique_ptr<Strategy> make_adaptive_strategy();
std::unique_ptr<Strategy> make_priority_strategy();

/// Called by StrategyRegistry's constructor.
void register_builtin_strategies(StrategyRegistry& reg);

}  // namespace mado::core
